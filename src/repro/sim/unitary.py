"""Extract the full unitary matrix of a circuit.

Only used for small circuits (tests, analytic checks): cost is
``O(4^n · gates)`` time and ``O(4^n)`` memory.  The simulator applies the
circuit to each identity column simultaneously by treating the matrix as a
batch of statevectors — one tensordot per gate, no Python loop over columns.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.circuit import Circuit
from repro.config import COMPLEX_DTYPE
from repro.linalg.tensor import apply_matrix_to_axes

__all__ = ["circuit_unitary"]


def circuit_unitary(circuit: Circuit) -> np.ndarray:
    """Return the ``2^n × 2^n`` unitary of ``circuit`` (little-endian)."""
    n = circuit.num_qubits
    dim = 1 << n
    # Rows as a batch: qubit axes 0..n-1 (axis i = qubit i, little-endian)
    # plus one trailing batch axis of size 2^n for the columns.
    rev = tuple(range(n - 1, -1, -1))
    u = np.eye(dim, dtype=COMPLEX_DTYPE).reshape((2,) * n + (dim,))
    u = u.transpose(rev + (n,))
    for inst in circuit:
        if inst.name == "barrier":
            continue
        u = apply_matrix_to_axes(u, inst.gate.matrix(), inst.qubits)
    u = u.transpose(rev + (n,))
    return np.ascontiguousarray(u.reshape(dim, dim))
