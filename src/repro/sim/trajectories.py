"""Monte-Carlo quantum-trajectory simulation of noisy circuits.

The density-matrix engine costs ``O(4^n)`` memory; quantum trajectories
unravel the same channel dynamics into an ensemble of *pure* states at
``O(2^n)`` each: after every noisy gate, one Kraus operator ``K_i`` is
sampled with probability ``‖K_i|ψ⟩‖²`` and the state is renormalised.
Averaging outcome distributions over trajectories converges to the density
matrix's (Lindblad-equivalent) result — cross-validated against
:mod:`repro.sim.density` in the test suite.

For the ≤ 7-qubit devices of the paper either engine works; trajectories
are the door to wider noisy studies (and a nice independent check that the
noise plumbing is right).
"""

from __future__ import annotations

import numpy as np

from repro.circuits.circuit import Circuit
from repro.exceptions import SimulationError
from repro.noise.model import NoiseModel
from repro.sim.statevector import Statevector
from repro.utils.rng import as_generator

__all__ = ["simulate_trajectory", "trajectory_probabilities"]


def simulate_trajectory(
    circuit: Circuit,
    noise_model: NoiseModel,
    rng: np.random.Generator,
) -> Statevector:
    """One stochastic pure-state trajectory through the noisy circuit."""
    sv = Statevector(circuit.num_qubits)
    for inst in circuit:
        if inst.name == "barrier":
            continue
        sv.apply_matrix(inst.gate.matrix(), inst.qubits)
        for channel, qubits in noise_model.channels_for(inst.name, inst.qubits):
            _apply_stochastic_channel(sv, channel, qubits, rng)
    return sv


def _apply_stochastic_channel(sv, channel, qubits, rng) -> None:
    """Sample one Kraus branch with its Born weight and renormalise.

    Branch weights are ``⟨ψ|K_i†K_i|ψ⟩`` — expectation values of the
    channel's cached small :meth:`~repro.linalg.channels.KrausChannel.gram_matrices`
    — so no branch state ``K_i|ψ⟩`` is materialised before the draw; only
    the sampled operator is applied, one state write per noisy gate instead
    of one full copy per Kraus term.
    """
    weights = [
        max(float(sv.expectation(g, qubits).real), 0.0)
        for g in channel.gram_matrices()
    ]
    total = sum(weights)
    if total <= 0:
        raise SimulationError("trajectory hit a zero-norm channel output")
    probs = np.asarray(weights) / total
    choice = int(rng.choice(len(weights), p=probs))
    sv.apply_matrix(channel.operators[choice], qubits)
    sv._tensor /= np.sqrt(max(weights[choice], 1e-300))


def trajectory_probabilities(
    circuit: Circuit,
    noise_model: NoiseModel,
    num_trajectories: int = 200,
    seed: "int | np.random.Generator | None" = None,
) -> np.ndarray:
    """Ensemble-averaged outcome distribution over stochastic trajectories.

    Converges to the density-matrix simulation at rate
    ``O(1/√num_trajectories)``; with a trivial noise model a single
    trajectory is exact and no more are run.
    """
    if num_trajectories <= 0:
        raise SimulationError("need at least one trajectory")
    rng = as_generator(seed)
    if noise_model.is_trivial():
        return simulate_trajectory(circuit, noise_model, rng).probabilities()
    acc = np.zeros(1 << circuit.num_qubits)
    for _ in range(num_trajectories):
        acc += simulate_trajectory(circuit, noise_model, rng).probabilities()
    return acc / num_trajectories
