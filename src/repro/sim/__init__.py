"""Simulators: statevector, density matrix, unitary extraction, sampling."""

from repro.sim.statevector import (
    Statevector,
    apply_circuit_to_tensor,
    simulate_statevector,
)
from repro.sim.density import DensityMatrix, simulate_density
from repro.sim.unitary import circuit_unitary
from repro.sim.sampler import (
    counts_to_probs,
    probs_to_counts,
    sample_counts,
    sample_sparse_counts,
)
from repro.sim.expectation import expectation_from_probs, expectation_of_observable
from repro.sim.trajectories import simulate_trajectory, trajectory_probabilities

__all__ = [
    "Statevector",
    "apply_circuit_to_tensor",
    "simulate_statevector",
    "DensityMatrix",
    "simulate_density",
    "circuit_unitary",
    "sample_counts",
    "sample_sparse_counts",
    "counts_to_probs",
    "probs_to_counts",
    "expectation_from_probs",
    "expectation_of_observable",
    "simulate_trajectory",
    "trajectory_probabilities",
]
