"""Dense density-matrix simulator (the noisy engine).

The state is a rank-2n tensor of shape ``(2,)*2n``: ket axes ``0..n-1``,
bra axes ``n..2n-1``.  A unitary U on qubits ``qs`` is applied as
``U ρ U†`` via two tensordots (U on the ket axes, ``U*`` on the bra axes);
Kraus channels reuse :func:`repro.linalg.channels.apply_channel`.

Memory is ``16 · 4^n`` bytes, fine for the ≤ 8-qubit devices of the paper's
experiments.  The fake-hardware backend interleaves noise channels between
gates according to its :class:`~repro.noise.model.NoiseModel`.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.circuits.circuit import Circuit
from repro.config import COMPLEX_DTYPE
from repro.exceptions import SimulationError
from repro.linalg.channels import KrausChannel, apply_channel
from repro.linalg.tensor import apply_matrix_to_axes, flat_from_tensor

def _dm_tensor_from_matrix(mat: np.ndarray, n: int) -> np.ndarray:
    """(2^n, 2^n) little-endian matrix -> rank-2n tensor, ket/bra axis i = qubit i."""
    t = mat.reshape((2,) * (2 * n))
    ket = tuple(range(n - 1, -1, -1))
    bra = tuple(range(2 * n - 1, n - 1, -1))
    return t.transpose(ket + bra)


def _dm_matrix_from_tensor(tensor: np.ndarray, n: int) -> np.ndarray:
    """Inverse of :func:`_dm_tensor_from_matrix` (contiguous copy)."""
    ket = tuple(range(n - 1, -1, -1))
    bra = tuple(range(2 * n - 1, n - 1, -1))
    dim = 1 << n
    return np.ascontiguousarray(tensor.transpose(ket + bra).reshape(dim, dim))

__all__ = [
    "DensityMatrix",
    "evolve_noisy_tensor",
    "probabilities_from_tensor",
    "simulate_density",
    "zero_density_tensor",
]


def zero_density_tensor(num_qubits: int) -> np.ndarray:
    """Rank-2n tensor of ``|0..0⟩⟨0..0|`` — the canonical evolution input."""
    t = np.zeros((2,) * (2 * num_qubits), dtype=COMPLEX_DTYPE)
    t[(0,) * (2 * num_qubits)] = 1.0
    return t


def probabilities_from_tensor(
    tensor: np.ndarray, num_qubits: int, clip: bool = True
) -> np.ndarray:
    """Computational-basis probabilities of a rank-2n density tensor.

    Pairs ket axis ``i`` with bra axis ``n + i`` via one einsum — never
    building the flat ``(2^n, 2^n)`` matrix — and returns the little-endian
    real diagonal.  Trailing batch axes are preserved: a tensor of shape
    ``(2,)*2n + (B,)`` yields probabilities of shape ``(B, 2^n)``.

    ``clip=False`` keeps tiny roundoff negatives — for consumers that
    combine several diagonals linearly *before* flooring (the noisy
    fragment cache's response columns), so clipping happens once on the
    combined result exactly as per-variant execution would do it.
    """
    n = num_qubits
    ket = list(range(n))
    batch = list(range(n, tensor.ndim - n))  # labels for trailing batch axes
    diag = np.einsum(tensor, ket + ket + batch, ket + batch)
    probs = diag.real.astype(np.float64)
    if clip:
        # numerical floor: tiny negatives from roundoff
        np.clip(probs, 0.0, None, out=probs)
    if batch:
        flat = probs.reshape((2,) * n + (-1,))
        flat = flat.transpose(tuple(range(n - 1, -1, -1)) + (n,))
        return np.ascontiguousarray(flat.reshape(1 << n, -1).T)
    return flat_from_tensor(probs)


def evolve_noisy_tensor(
    tensor: np.ndarray, circuit: Circuit, noise_model, num_qubits: int
) -> np.ndarray:
    """Push a rank-2n density tensor through a circuit with interleaved noise.

    ``noise_model`` is any object with the
    :meth:`~repro.noise.model.NoiseModel.channels_for` protocol.  Extra
    trailing axes of ``tensor`` are batch dimensions, so a whole bank of
    initial states can share one noisy evolution — the engine behind
    :class:`repro.cutting.noisy_cache.NoisyFragmentSimCache`'s ``4^K``
    cut-basis response columns.
    """
    n = num_qubits
    for inst in circuit:
        if inst.name == "barrier":
            continue
        m = inst.gate.matrix()
        ket_axes = list(inst.qubits)
        bra_axes = [q + n for q in inst.qubits]
        tensor = apply_matrix_to_axes(tensor, m, ket_axes)
        tensor = apply_matrix_to_axes(tensor, m.conj(), bra_axes)
        for channel, qubits in noise_model.channels_for(inst.name, inst.qubits):
            tensor = apply_channel(tensor, channel, qubits, n)
    return tensor


class DensityMatrix:
    """Mutable n-qubit mixed state."""

    __slots__ = ("num_qubits", "_tensor")

    def __init__(self, num_qubits: int, data: np.ndarray | None = None) -> None:
        self.num_qubits = int(num_qubits)
        dim = 1 << num_qubits
        if data is None:
            t = np.zeros((dim, dim), dtype=COMPLEX_DTYPE)
            t[0, 0] = 1.0
            # |0..0><0..0| is invariant under the endianness transpose.
            self._tensor = t.reshape((2,) * (2 * num_qubits))
        else:
            data = np.asarray(data, dtype=COMPLEX_DTYPE)
            if data.ndim == 1:
                if data.size != dim:
                    raise SimulationError("statevector length mismatch")
                mat = np.outer(data, data.conj())
            else:
                if data.shape != (dim, dim):
                    raise SimulationError(
                        f"density matrix shape {data.shape} mismatch for "
                        f"{num_qubits} qubits"
                    )
                mat = data
            self._tensor = _dm_tensor_from_matrix(mat, num_qubits).copy()

    # ------------------------------------------------------------------
    @classmethod
    def from_statevector(cls, vec: np.ndarray) -> "DensityMatrix":
        n = int(np.log2(vec.size))
        return cls(n, np.asarray(vec))

    def copy(self) -> "DensityMatrix":
        out = DensityMatrix.__new__(DensityMatrix)
        out.num_qubits = self.num_qubits
        out._tensor = self._tensor.copy()
        return out

    # ------------------------------------------------------------------
    def apply_matrix(self, matrix: np.ndarray, qubits: Sequence[int]) -> None:
        """Conjugate by a unitary on the listed qubits: ``ρ → U ρ U†``."""
        n = self.num_qubits
        ket_axes = list(qubits)
        bra_axes = [q + n for q in qubits]
        t = apply_matrix_to_axes(self._tensor, matrix, ket_axes)
        self._tensor = apply_matrix_to_axes(t, matrix.conj(), bra_axes)

    def apply_channel(self, channel: KrausChannel, qubits: Sequence[int]) -> None:
        self._tensor = apply_channel(self._tensor, channel, qubits, self.num_qubits)

    def apply_instruction(self, inst) -> None:
        if inst.name == "barrier":
            return
        self.apply_matrix(inst.gate.matrix(), inst.qubits)

    def apply_circuit(self, circuit: Circuit) -> "DensityMatrix":
        if circuit.num_qubits != self.num_qubits:
            raise SimulationError("circuit width mismatch")
        for inst in circuit:
            self.apply_instruction(inst)
        return self

    # ------------------------------------------------------------------
    def matrix(self) -> np.ndarray:
        """Flat ``(2^n, 2^n)`` little-endian copy of the state."""
        return _dm_matrix_from_tensor(self._tensor, self.num_qubits)

    def probabilities(self) -> np.ndarray:
        """Diagonal of ρ — computational-basis outcome probabilities.

        Read directly off the rank-2n tensor by pairing each ket axis with
        its bra axis, so no ``(2^n, 2^n)`` matrix is materialised (the old
        path paid a transposing copy of the whole state just to look at its
        diagonal).
        """
        return probabilities_from_tensor(self._tensor, self.num_qubits)

    def trace(self) -> float:
        return float(self.probabilities().sum())

    def expectation(self, matrix: np.ndarray, qubits: Sequence[int]) -> complex:
        """``tr(M ρ)`` for an operator on a subset of qubits."""
        n = self.num_qubits
        work = apply_matrix_to_axes(self._tensor, matrix, list(qubits))
        ket = list(range(n))
        return complex(np.einsum(work, ket + ket))

    def purity(self) -> float:
        m = self.matrix()
        return float(np.real(np.einsum("ij,ji->", m, m)))


def simulate_density(
    circuit: Circuit, initial: np.ndarray | None = None
) -> DensityMatrix:
    """Run ``circuit`` noiselessly on a density matrix (for cross-checks)."""
    dm = (
        DensityMatrix(circuit.num_qubits)
        if initial is None
        else DensityMatrix(circuit.num_qubits, initial)
    )
    return dm.apply_circuit(circuit)
