"""Dense density-matrix simulator (the noisy engine).

The state is a rank-2n tensor of shape ``(2,)*2n``: ket axes ``0..n-1``,
bra axes ``n..2n-1``.  A unitary U on qubits ``qs`` is applied as
``U ρ U†`` via two tensordots (U on the ket axes, ``U*`` on the bra axes);
Kraus channels reuse :func:`repro.linalg.channels.apply_channel`.

Memory is ``16 · 4^n`` bytes, fine for the ≤ 8-qubit devices of the paper's
experiments.  The fake-hardware backend interleaves noise channels between
gates according to its :class:`~repro.noise.model.NoiseModel`.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.circuits.circuit import Circuit
from repro.config import COMPLEX_DTYPE
from repro.exceptions import SimulationError
from repro.linalg.channels import KrausChannel, apply_channel
from repro.linalg.tensor import apply_matrix_to_axes

def _dm_tensor_from_matrix(mat: np.ndarray, n: int) -> np.ndarray:
    """(2^n, 2^n) little-endian matrix -> rank-2n tensor, ket/bra axis i = qubit i."""
    t = mat.reshape((2,) * (2 * n))
    ket = tuple(range(n - 1, -1, -1))
    bra = tuple(range(2 * n - 1, n - 1, -1))
    return t.transpose(ket + bra)


def _dm_matrix_from_tensor(tensor: np.ndarray, n: int) -> np.ndarray:
    """Inverse of :func:`_dm_tensor_from_matrix` (contiguous copy)."""
    ket = tuple(range(n - 1, -1, -1))
    bra = tuple(range(2 * n - 1, n - 1, -1))
    dim = 1 << n
    return np.ascontiguousarray(tensor.transpose(ket + bra).reshape(dim, dim))

__all__ = ["DensityMatrix", "simulate_density"]


class DensityMatrix:
    """Mutable n-qubit mixed state."""

    __slots__ = ("num_qubits", "_tensor")

    def __init__(self, num_qubits: int, data: np.ndarray | None = None) -> None:
        self.num_qubits = int(num_qubits)
        dim = 1 << num_qubits
        if data is None:
            t = np.zeros((dim, dim), dtype=COMPLEX_DTYPE)
            t[0, 0] = 1.0
            # |0..0><0..0| is invariant under the endianness transpose.
            self._tensor = t.reshape((2,) * (2 * num_qubits))
        else:
            data = np.asarray(data, dtype=COMPLEX_DTYPE)
            if data.ndim == 1:
                if data.size != dim:
                    raise SimulationError("statevector length mismatch")
                mat = np.outer(data, data.conj())
            else:
                if data.shape != (dim, dim):
                    raise SimulationError(
                        f"density matrix shape {data.shape} mismatch for "
                        f"{num_qubits} qubits"
                    )
                mat = data
            self._tensor = _dm_tensor_from_matrix(mat, num_qubits).copy()

    # ------------------------------------------------------------------
    @classmethod
    def from_statevector(cls, vec: np.ndarray) -> "DensityMatrix":
        n = int(np.log2(vec.size))
        return cls(n, np.asarray(vec))

    def copy(self) -> "DensityMatrix":
        out = DensityMatrix.__new__(DensityMatrix)
        out.num_qubits = self.num_qubits
        out._tensor = self._tensor.copy()
        return out

    # ------------------------------------------------------------------
    def apply_matrix(self, matrix: np.ndarray, qubits: Sequence[int]) -> None:
        """Conjugate by a unitary on the listed qubits: ``ρ → U ρ U†``."""
        n = self.num_qubits
        ket_axes = list(qubits)
        bra_axes = [q + n for q in qubits]
        t = apply_matrix_to_axes(self._tensor, matrix, ket_axes)
        self._tensor = apply_matrix_to_axes(t, matrix.conj(), bra_axes)

    def apply_channel(self, channel: KrausChannel, qubits: Sequence[int]) -> None:
        self._tensor = apply_channel(self._tensor, channel, qubits, self.num_qubits)

    def apply_instruction(self, inst) -> None:
        if inst.name == "barrier":
            return
        self.apply_matrix(inst.gate.matrix(), inst.qubits)

    def apply_circuit(self, circuit: Circuit) -> "DensityMatrix":
        if circuit.num_qubits != self.num_qubits:
            raise SimulationError("circuit width mismatch")
        for inst in circuit:
            self.apply_instruction(inst)
        return self

    # ------------------------------------------------------------------
    def matrix(self) -> np.ndarray:
        """Flat ``(2^n, 2^n)`` little-endian copy of the state."""
        return _dm_matrix_from_tensor(self._tensor, self.num_qubits)

    def probabilities(self) -> np.ndarray:
        """Diagonal of ρ — computational-basis outcome probabilities."""
        diag = np.einsum("ii->i", self.matrix())
        probs = diag.real.astype(np.float64)
        # numerical floor: tiny negatives from roundoff
        np.clip(probs, 0.0, None, out=probs)
        return probs

    def trace(self) -> float:
        return float(self.probabilities().sum())

    def expectation(self, matrix: np.ndarray, qubits: Sequence[int]) -> complex:
        """``tr(M ρ)`` for an operator on a subset of qubits."""
        n = self.num_qubits
        work = apply_matrix_to_axes(self._tensor, matrix, list(qubits))
        dim = 1 << n
        return complex(np.einsum("ii->", work.reshape(dim, dim)))

    def purity(self) -> float:
        m = self.matrix()
        return float(np.real(np.einsum("ij,ji->", m, m)))


def simulate_density(
    circuit: Circuit, initial: np.ndarray | None = None
) -> DensityMatrix:
    """Run ``circuit`` noiselessly on a density matrix (for cross-checks)."""
    dm = (
        DensityMatrix(circuit.num_qubits)
        if initial is None
        else DensityMatrix(circuit.num_qubits, initial)
    )
    return dm.apply_circuit(circuit)
