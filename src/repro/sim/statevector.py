"""Dense statevector simulator.

The state of ``n`` qubits is a ``complex128`` ndarray of shape ``(2,)*n``
(axis ``i`` = qubit ``i``).  Gate application is a tensordot against the
targeted axes — the k-qubit gate costs ``O(2^n · 2^k)`` and never builds a
``2^n × 2^n`` matrix.  This is the reference "Aer simulator" stand-in of the
reproduction (DESIGN.md §2) and also the exact engine behind the analytic
golden-cut finder.

Hot-path engineering (shared with :mod:`repro.cutting.cache`):

* :func:`apply_circuit_to_tensor` fuses runs of single-qubit gates into one
  2×2 product per qubit before touching the state, and accepts tensors with
  trailing batch axes, so a whole bank of initial states can be pushed
  through a circuit in one pass;
* gate matrices come from the read-only cache in
  :mod:`repro.circuits.gates`;
* :meth:`Statevector.probabilities` squares amplitudes in tensor layout and
  pays a single copy for the little-endian flattening instead of a complex
  flat round-trip.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.circuits.circuit import Circuit
from repro.config import ATOL, COMPLEX_DTYPE
from repro.exceptions import SimulationError
from repro.linalg.tensor import (
    apply_matrix_to_axes,
    flat_from_tensor,
    tensor_from_flat,
)

__all__ = ["Statevector", "apply_circuit_to_tensor", "simulate_statevector"]


def apply_circuit_to_tensor(
    tensor: np.ndarray, circuit: Circuit, fuse: bool = True
) -> np.ndarray:
    """Apply a circuit to an axis-i=qubit-i tensor, fusing 1q-gate runs.

    Axes beyond the circuit's qubits are batch dimensions: a tensor of shape
    ``(2,)*n + (B,)`` simulates ``B`` initial states at once (the downstream
    preparation-basis bank of :class:`repro.cutting.cache.FragmentSimCache`).

    With ``fuse=True`` consecutive single-qubit gates on the same wire are
    multiplied into one 2×2 matrix before being applied; single-qubit gates
    on *different* wires commute, so deferring them past each other is exact
    as long as every pending matrix is flushed before a multi-qubit gate
    touches its wire.
    """
    pending: dict[int, np.ndarray] = {}
    for inst in circuit:
        if inst.name == "barrier":
            continue
        qubits = inst.qubits
        if fuse and len(qubits) == 1:
            q = qubits[0]
            m = inst.gate.matrix()
            prev = pending.get(q)
            pending[q] = m if prev is None else m @ prev
            continue
        for q in qubits:
            m = pending.pop(q, None)
            if m is not None:
                tensor = apply_matrix_to_axes(tensor, m, (q,))
        tensor = apply_matrix_to_axes(tensor, inst.gate.matrix(), inst.qubits)
    for q, m in pending.items():
        tensor = apply_matrix_to_axes(tensor, m, (q,))
    return tensor


class Statevector:
    """Mutable n-qubit pure state with vectorised gate application."""

    __slots__ = ("num_qubits", "_tensor")

    def __init__(self, num_qubits: int, data: np.ndarray | None = None) -> None:
        self.num_qubits = int(num_qubits)
        if data is None:
            t = np.zeros((2,) * num_qubits, dtype=COMPLEX_DTYPE)
            t[(0,) * num_qubits] = 1.0
            self._tensor = t
        else:
            data = np.asarray(data, dtype=COMPLEX_DTYPE)
            if data.size != 1 << num_qubits:
                raise SimulationError(
                    f"data size {data.size} mismatch for {num_qubits} qubits"
                )
            self._tensor = tensor_from_flat(data.reshape(-1), num_qubits).copy()

    # ------------------------------------------------------------------
    @classmethod
    def from_vector(cls, vec: np.ndarray) -> "Statevector":
        n = int(np.log2(vec.size))
        if vec.size != 1 << n:
            raise SimulationError("vector length is not a power of two")
        return cls(n, vec)

    def copy(self) -> "Statevector":
        out = Statevector.__new__(Statevector)
        out.num_qubits = self.num_qubits
        out._tensor = self._tensor.copy()
        return out

    # ------------------------------------------------------------------
    def apply_matrix(self, matrix: np.ndarray, qubits: Sequence[int]) -> None:
        """Apply a ``2^k x 2^k`` unitary to the listed qubits, in place."""
        self._tensor = apply_matrix_to_axes(self._tensor, matrix, list(qubits))

    def apply_instruction(self, inst) -> None:
        if inst.name == "barrier":
            return
        self.apply_matrix(inst.gate.matrix(), inst.qubits)

    def apply_circuit(self, circuit: Circuit, fuse: bool = True) -> "Statevector":
        if circuit.num_qubits != self.num_qubits:
            raise SimulationError(
                f"circuit width {circuit.num_qubits} != state width {self.num_qubits}"
            )
        self._tensor = apply_circuit_to_tensor(self._tensor, circuit, fuse=fuse)
        return self

    # ------------------------------------------------------------------
    @property
    def tensor(self) -> np.ndarray:
        """The internal axis-i=qubit-i amplitude tensor (not a copy).

        Exposed for zero-copy consumers (the fragment-simulation cache);
        treat it as read-only.
        """
        return self._tensor

    def vector(self) -> np.ndarray:
        """Flat ``(2^n,)`` little-endian copy of the amplitudes."""
        return flat_from_tensor(self._tensor)

    def probabilities(self) -> np.ndarray:
        """Born-rule probabilities over the ``2^n`` basis states.

        Computed in tensor layout (one real array, no complex flat copy),
        then flattened little-endian with a single transpose-copy.
        """
        t = self._tensor
        p = np.square(t.real) + np.square(t.imag)
        return flat_from_tensor(p)

    def norm(self) -> float:
        return float(np.sqrt(self.probabilities().sum()))

    def normalize(self) -> "Statevector":
        n = self.norm()
        if n < ATOL:
            raise SimulationError("cannot normalise a zero state")
        self._tensor /= n
        return self

    def is_real(self, atol: float = 1e-9) -> bool:
        """True iff every amplitude is real up to a global phase.

        Real states are the precondition for Y-golden cuts; the detector
        uses this as a fast structural check before the exact test.
        """
        flat = self.vector()
        k = int(np.argmax(np.abs(flat)))
        phase = flat[k] / abs(flat[k])
        return bool(np.max(np.abs((flat / phase).imag)) < atol)

    def expectation(self, matrix: np.ndarray, qubits: Sequence[int]) -> complex:
        """``⟨ψ|M|ψ⟩`` for an operator on a subset of qubits."""
        bra = self._tensor.conj()
        ket = apply_matrix_to_axes(self._tensor, matrix, list(qubits))
        return complex(np.tensordot(bra, ket, axes=self.num_qubits))

    def project(self, qubit: int, bit: int, renormalize: bool = False) -> float:
        """Project ``qubit`` onto ``|bit⟩`` in place; return outcome probability."""
        idx = [slice(None)] * self.num_qubits
        idx[qubit] = 1 - bit
        t = self._tensor
        keep = t.copy()
        keep[tuple(idx)] = 0.0
        prob = float(np.vdot(keep, keep).real)
        self._tensor = keep
        if renormalize:
            if prob < ATOL:
                raise SimulationError("projection onto zero-probability branch")
            self._tensor /= np.sqrt(prob)
        return prob


def simulate_statevector(
    circuit: Circuit, initial: np.ndarray | None = None
) -> Statevector:
    """Run ``circuit`` from ``|0..0⟩`` (or ``initial``) and return the state."""
    sv = (
        Statevector(circuit.num_qubits)
        if initial is None
        else Statevector(circuit.num_qubits, initial)
    )
    return sv.apply_circuit(circuit)
