"""Expectation values from probability vectors and exact states.

The paper's experiments estimate expectations of *diagonal* projector
observables ``Π_b = |b⟩⟨b|`` from computational-basis sampling (Eq. 16);
these helpers cover that case plus general Pauli strings via the simulators.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.circuit import Circuit
from repro.exceptions import SimulationError
from repro.linalg.paulis import PauliString, pauli_basis_change
from repro.sim.statevector import simulate_statevector

__all__ = ["expectation_from_probs", "expectation_of_observable"]


def expectation_from_probs(probs: np.ndarray, diagonal: np.ndarray) -> float:
    """``Σ_b diagonal[b] · p[b]`` — expectation of a diagonal observable."""
    probs = np.asarray(probs, dtype=np.float64)
    diagonal = np.asarray(diagonal)
    if probs.shape != diagonal.shape:
        raise SimulationError(
            f"shape mismatch: probs {probs.shape} vs diagonal {diagonal.shape}"
        )
    if np.iscomplexobj(diagonal):
        if np.max(np.abs(diagonal.imag)) > 1e-9:
            raise SimulationError("diagonal observable must be real")
        diagonal = diagonal.real
    return float(np.dot(probs, diagonal))


def expectation_of_observable(circuit: Circuit, observable: PauliString) -> float:
    """Exact ``⟨ψ|P|ψ⟩`` for the output state of ``circuit``.

    Non-diagonal Pauli factors are handled by rotating the final state into
    the observable's eigenbasis (the same trick hardware uses, but in the
    exact infinite-shot limit) and evaluating the resulting diagonal string.
    """
    if observable.num_qubits != circuit.num_qubits:
        raise SimulationError("observable width mismatch")
    sv = simulate_statevector(circuit)
    diag_labels = []
    for q, label in enumerate(observable.labels):
        if label in ("I", "Z"):
            diag_labels.append(label)
        else:
            sv.apply_matrix(pauli_basis_change(label), (q,))
            diag_labels.append("Z")
    probs = sv.probabilities()
    diag = PauliString.from_label("".join(diag_labels), observable.phase).diagonal()
    return expectation_from_probs(probs, diag)
