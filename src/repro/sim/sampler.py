"""Finite-shot sampling utilities.

Counts are dictionaries mapping display bitstrings (qubit 0 leftmost — see
:mod:`repro.utils.bits`) to integer occurrence counts.  Sampling uses one
``multinomial`` draw over the full probability vector: O(2^n + shots) and a
single RNG consumption point, which keeps parallel fragment runs reproducible.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import SimulationError
from repro.utils.bits import bitstring_to_index, format_bitstring
from repro.utils.rng import as_generator

__all__ = [
    "sample_counts",
    "sample_sparse_counts",
    "counts_to_probs",
    "probs_to_counts",
]


def sample_counts(
    probs: np.ndarray,
    shots: int,
    seed: "int | np.random.Generator | None" = None,
    num_qubits: int | None = None,
) -> dict[str, int]:
    """Draw ``shots`` outcomes from a probability vector.

    The vector is renormalised if it deviates from 1 by less than 1e-6
    (accumulated float error from long noisy simulations); larger deviations
    raise, since they indicate a real bug upstream.
    """
    probs = np.asarray(probs, dtype=np.float64)
    if num_qubits is None:
        num_qubits = int(np.log2(probs.size))
    if probs.size != 1 << num_qubits:
        raise SimulationError("probability vector length is not 2^n")
    if shots <= 0:
        raise SimulationError(f"shots must be positive, got {shots}")
    total = probs.sum()
    if abs(total - 1.0) > 1e-6:
        raise SimulationError(f"probabilities sum to {total}, not 1")
    p = probs / total
    rng = as_generator(seed)
    draws = rng.multinomial(shots, p)
    hit = np.nonzero(draws)[0]
    return {format_bitstring(int(i), num_qubits): int(draws[i]) for i in hit}


def sample_sparse_counts(
    indices: np.ndarray,
    probs: np.ndarray,
    shots: int,
    num_qubits: int,
    seed: "int | np.random.Generator | None" = None,
) -> dict[str, int]:
    """Draw ``shots`` outcomes from a sparse distribution — no dense vector.

    ``indices`` are little-endian basis indices and ``probs`` the already
    normalised probabilities aligned with them.  One ``multinomial`` draw
    over the ``nnz`` kept entries: O(nnz + shots) in time and memory, so a
    20+-qubit sparse reconstruction samples without ever materialising its
    ``2^n`` vector.  The RNG consumption (one multinomial call) matches
    :func:`sample_counts`.
    """
    indices = np.asarray(indices, dtype=np.int64)
    probs = np.asarray(probs, dtype=np.float64)
    if indices.shape != probs.shape or indices.ndim != 1:
        raise SimulationError("indices and probs must be 1-D and aligned")
    if shots <= 0:
        raise SimulationError(f"shots must be positive, got {shots}")
    total = probs.sum()
    if abs(total - 1.0) > 1e-6:
        raise SimulationError(f"probabilities sum to {total}, not 1")
    rng = as_generator(seed)
    draws = rng.multinomial(shots, probs / total)
    hit = np.nonzero(draws)[0]
    return {
        format_bitstring(int(indices[j]), num_qubits): int(draws[j])
        for j in hit
    }


def counts_to_probs(counts: dict[str, int], num_qubits: int) -> np.ndarray:
    """Empirical probability vector from a counts dictionary."""
    probs = np.zeros(1 << num_qubits, dtype=np.float64)
    total = 0
    for bitstring, c in counts.items():
        if len(bitstring) != num_qubits:
            raise SimulationError(
                f"bitstring {bitstring!r} length != {num_qubits} qubits"
            )
        if c < 0:
            raise SimulationError(f"negative count for {bitstring!r}")
        probs[bitstring_to_index(bitstring)] += c
        total += c
    if total == 0:
        raise SimulationError("counts dictionary is empty")
    return probs / total


def probs_to_counts(
    probs: np.ndarray, shots: int, num_qubits: int | None = None
) -> dict[str, int]:
    """Deterministic 'expected counts' (rounded), for ideal-limit tests."""
    probs = np.asarray(probs, dtype=np.float64)
    if num_qubits is None:
        num_qubits = int(np.log2(probs.size))
    # np.round matches the old per-entry round() (both half-to-even)
    raw = np.round(probs * shots)
    hit = np.nonzero(raw > 0)[0]
    return {format_bitstring(int(i), num_qubits): int(raw[i]) for i in hit}
