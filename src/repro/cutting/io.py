"""Persistence for fragment measurement data.

Device runs are the expensive part of circuit cutting — on real clouds they
are queued for hours.  ``save_fragment_data``/``load_fragment_data`` archive
every variant's statistics (plus the bipartition book-keeping needed for
reconstruction) into a single ``.npz`` file, so reconstruction and golden
analysis can be re-run offline without touching the backend again.

The circuit structure itself is stored as the text-QASM dialect of
:mod:`repro.circuits.qasm`, making archives self-contained and
human-inspectable (``numpy.savez`` of arrays + a JSON header).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.circuits.qasm import circuit_from_qasm, circuit_to_qasm
from repro.cutting.cut import CutPoint, CutSpec
from repro.cutting.execution import FragmentData
from repro.cutting.fragments import FragmentPair
from repro.exceptions import ReconstructionError

__all__ = ["save_fragment_data", "load_fragment_data"]

_FORMAT_VERSION = 1


def save_fragment_data(data: FragmentData, path: "str | Path") -> Path:
    """Archive fragment data (and its bipartition) to ``path`` (.npz)."""
    path = Path(path)
    pair = data.pair
    header = {
        "format_version": _FORMAT_VERSION,
        "num_cuts": pair.num_cuts,
        "up_cut_local": pair.up_cut_local,
        "down_cut_local": pair.down_cut_local,
        "up_out_local": pair.up_out_local,
        "up_out_original": pair.up_out_original,
        "down_out_local": pair.down_out_local,
        "down_out_original": pair.down_out_original,
        "cuts": [[c.wire, c.gate_index] for c in pair.spec.cuts]
        if pair.spec
        else [],
        "upstream_qasm": circuit_to_qasm(pair.upstream),
        "downstream_qasm": circuit_to_qasm(pair.downstream),
        "shots_per_variant": data.shots_per_variant,
        "modeled_seconds": data.modeled_seconds,
        "upstream_keys": [list(k) for k in data.upstream],
        "downstream_keys": [list(k) for k in data.downstream],
    }
    arrays = {"__header__": np.frombuffer(json.dumps(header).encode(), dtype=np.uint8)}
    for i, (key, arr) in enumerate(data.upstream.items()):
        arrays[f"up_{i}"] = arr
    for i, (key, vec) in enumerate(data.downstream.items()):
        arrays[f"down_{i}"] = vec
    np.savez_compressed(path, **arrays)
    return path


def load_fragment_data(path: "str | Path") -> FragmentData:
    """Restore a :class:`FragmentData` archive written by ``save``."""
    path = Path(path)
    with np.load(path) as archive:
        try:
            header = json.loads(bytes(archive["__header__"]).decode())
        except KeyError:
            raise ReconstructionError(f"{path} is not a fragment archive") from None
        if header.get("format_version") != _FORMAT_VERSION:
            raise ReconstructionError(
                f"unsupported archive version {header.get('format_version')}"
            )
        upstream = {
            tuple(key): archive[f"up_{i}"]
            for i, key in enumerate(header["upstream_keys"])
        }
        downstream = {
            tuple(key): archive[f"down_{i}"]
            for i, key in enumerate(header["downstream_keys"])
        }
    spec = (
        CutSpec(tuple(CutPoint(w, g) for w, g in header["cuts"]))
        if header["cuts"]
        else None
    )
    pair = FragmentPair(
        upstream=circuit_from_qasm(header["upstream_qasm"]),
        downstream=circuit_from_qasm(header["downstream_qasm"]),
        num_cuts=header["num_cuts"],
        up_cut_local=list(header["up_cut_local"]),
        down_cut_local=list(header["down_cut_local"]),
        up_out_local=list(header["up_out_local"]),
        up_out_original=list(header["up_out_original"]),
        down_out_local=list(header["down_out_local"]),
        down_out_original=list(header["down_out_original"]),
        spec=spec,
    )
    return FragmentData(
        pair=pair,
        upstream=upstream,
        downstream=downstream,
        shots_per_variant=int(header["shots_per_variant"]),
        modeled_seconds=float(header["modeled_seconds"]),
        metadata={"loaded_from": str(path)},
    )
