"""Persistence for fragment measurement data.

Device runs are the expensive part of circuit cutting — on real clouds they
are queued for hours.  ``save_fragment_data``/``load_fragment_data`` archive
every variant's statistics (plus the bipartition book-keeping needed for
reconstruction) into a single ``.npz`` file, so reconstruction and golden
analysis can be re-run offline without touching the backend again.

The circuit structure itself is stored as the text-QASM dialect of
:mod:`repro.circuits.qasm`, making archives self-contained and
human-inspectable (``numpy.savez`` of arrays + a JSON header).

:class:`TreeCheckpoint` is the resumable flavour for tree runs: a
directory holding one ``.npz`` per *completed* fragment plus a manifest
pinning the tree structure and shot budget.
:func:`~repro.cutting.execution.run_tree_fragments` persists each
fragment's records as it finishes and, on resume, loads finished fragments
instead of re-executing them (their RNG streams are still burned, so the
remaining fragments sample exactly what an uninterrupted run would).
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

import numpy as np

from repro.circuits.qasm import circuit_from_qasm, circuit_to_qasm
from repro.cutting.cut import CutPoint, CutSpec
from repro.cutting.execution import FragmentData
from repro.cutting.fragments import FragmentPair
from repro.exceptions import ReconstructionError

__all__ = [
    "TreeCheckpoint",
    "load_fragment_data",
    "save_fragment_data",
    "tree_run_signature",
]

_FORMAT_VERSION = 1


def save_fragment_data(data: FragmentData, path: "str | Path") -> Path:
    """Archive fragment data (and its bipartition) to ``path`` (.npz)."""
    path = Path(path)
    pair = data.pair
    header = {
        "format_version": _FORMAT_VERSION,
        "num_cuts": pair.num_cuts,
        "up_cut_local": pair.up_cut_local,
        "down_cut_local": pair.down_cut_local,
        "up_out_local": pair.up_out_local,
        "up_out_original": pair.up_out_original,
        "down_out_local": pair.down_out_local,
        "down_out_original": pair.down_out_original,
        "cuts": [[c.wire, c.gate_index] for c in pair.spec.cuts]
        if pair.spec
        else [],
        "upstream_qasm": circuit_to_qasm(pair.upstream),
        "downstream_qasm": circuit_to_qasm(pair.downstream),
        "shots_per_variant": data.shots_per_variant,
        "modeled_seconds": data.modeled_seconds,
        "upstream_keys": [list(k) for k in data.upstream],
        "downstream_keys": [list(k) for k in data.downstream],
    }
    arrays = {"__header__": np.frombuffer(json.dumps(header).encode(), dtype=np.uint8)}
    for i, (key, arr) in enumerate(data.upstream.items()):
        arrays[f"up_{i}"] = arr
    for i, (key, vec) in enumerate(data.downstream.items()):
        arrays[f"down_{i}"] = vec
    np.savez_compressed(path, **arrays)
    return path


def load_fragment_data(path: "str | Path") -> FragmentData:
    """Restore a :class:`FragmentData` archive written by ``save``."""
    path = Path(path)
    with np.load(path) as archive:
        try:
            header = json.loads(bytes(archive["__header__"]).decode())
        except KeyError:
            raise ReconstructionError(f"{path} is not a fragment archive") from None
        if header.get("format_version") != _FORMAT_VERSION:
            raise ReconstructionError(
                f"unsupported archive version {header.get('format_version')}"
            )
        upstream = {
            tuple(key): archive[f"up_{i}"]
            for i, key in enumerate(header["upstream_keys"])
        }
        downstream = {
            tuple(key): archive[f"down_{i}"]
            for i, key in enumerate(header["downstream_keys"])
        }
    spec = (
        CutSpec(tuple(CutPoint(w, g) for w, g in header["cuts"]))
        if header["cuts"]
        else None
    )
    pair = FragmentPair(
        upstream=circuit_from_qasm(header["upstream_qasm"]),
        downstream=circuit_from_qasm(header["downstream_qasm"]),
        num_cuts=header["num_cuts"],
        up_cut_local=list(header["up_cut_local"]),
        down_cut_local=list(header["down_cut_local"]),
        up_out_local=list(header["up_out_local"]),
        up_out_original=list(header["up_out_original"]),
        down_out_local=list(header["down_out_local"]),
        down_out_original=list(header["down_out_original"]),
        spec=spec,
    )
    return FragmentData(
        pair=pair,
        upstream=upstream,
        downstream=downstream,
        shots_per_variant=int(header["shots_per_variant"]),
        modeled_seconds=float(header["modeled_seconds"]),
        metadata={"loaded_from": str(path)},
    )


def tree_run_signature(tree, shots: int) -> str:
    """Content hash pinning a checkpoint to one (tree, shot budget).

    Covers every fragment's circuit (QASM), wire bookkeeping and group
    topology plus the per-variant shot budget — anything that would change
    the records a resumed run must splice in.
    """
    payload = {
        "shots": int(shots),
        "group_sizes": list(tree.group_sizes),
        "fragments": [
            {
                "qasm": circuit_to_qasm(f.circuit),
                "prep_local": list(f.prep_local),
                "cut_local": list(f.cut_local),
                "out_local": list(f.out_local),
                "out_original": list(f.out_original),
                "in_group": f.in_group,
                "meas_groups": list(f.meas_groups),
                "cut_local_by_group": {
                    str(g): list(w) for g, w in sorted(f.cut_local_by_group.items())
                },
                # joint-prep DAG nodes carry the per-group entering split;
                # single-parent fragments omit the keys so historical tree
                # signatures (and their checkpoints) stay valid
                **(
                    {
                        "in_groups": list(f.in_groups),
                        "prep_local_by_group": {
                            str(g): list(w)
                            for g, w in sorted(f.prep_local_by_group.items())
                        },
                    }
                    if f.num_parents > 1
                    else {}
                ),
            }
            for f in tree.fragments
        ],
    }
    blob = json.dumps(payload, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()


class TreeCheckpoint:
    """Resumable per-fragment archive of a tree execution.

    One directory per run: ``manifest.json`` pins the
    :func:`tree_run_signature`; ``fragment_<i>.npz`` holds fragment ``i``'s
    split records (and any degraded variants) once it completed.  Opening
    an existing checkpoint for a *different* tree or shot budget raises —
    splicing foreign records into a run would be silently wrong.

    Writes are atomic (tmp file + ``os.replace``), so a run killed
    mid-fragment leaves only whole fragments behind.
    """

    def __init__(self, path: "str | Path", tree, shots: int) -> None:
        self.path = Path(path)
        self.path.mkdir(parents=True, exist_ok=True)
        self.signature = tree_run_signature(tree, shots)
        manifest = self.path / "manifest.json"
        if manifest.exists():
            stored = json.loads(manifest.read_text())
            if stored.get("format_version") != _FORMAT_VERSION:
                raise ReconstructionError(
                    f"unsupported checkpoint version {stored.get('format_version')}"
                )
            if stored.get("signature") != self.signature:
                raise ReconstructionError(
                    f"checkpoint {self.path} was written for a different "
                    "tree or shot budget"
                )
        else:
            manifest.write_text(
                json.dumps(
                    {
                        "format_version": _FORMAT_VERSION,
                        "signature": self.signature,
                        "shots": int(shots),
                        "num_fragments": tree.num_fragments,
                    }
                )
            )

    # ------------------------------------------------------------------
    def _fragment_path(self, index: int) -> Path:
        return self.path / f"fragment_{index}.npz"

    def has_fragment(self, index: int) -> bool:
        return self._fragment_path(index).exists()

    def completed_fragments(self) -> list[int]:
        return sorted(
            int(p.stem.split("_", 1)[1]) for p in self.path.glob("fragment_*.npz")
        )

    def save_fragment(self, index: int, records: dict, dead=()) -> Path:
        """Persist fragment ``index``'s records (atomic write)."""
        keys = list(records)
        header = {
            "keys": [[list(a), list(s)] for a, s in keys],
            "dead": [[list(a), list(s)] for a, s in dead],
        }
        arrays = {
            "__header__": np.frombuffer(json.dumps(header).encode(), dtype=np.uint8)
        }
        for j, key in enumerate(keys):
            arrays[f"rec_{j}"] = records[key]
        target = self._fragment_path(index)
        tmp = target.with_name(target.name + ".tmp")
        with open(tmp, "wb") as fh:
            np.savez_compressed(fh, **arrays)
        os.replace(tmp, target)
        return target

    def load_fragment(self, index: int, combos, dtype=np.float64):
        """Load fragment ``index`` if completed; ``None`` otherwise.

        Returns ``(records, dead)``.  The stored variant set (records plus
        degraded variants) must equal ``combos`` — a mismatch means the
        checkpoint belongs to a different variant plan and raises.
        """
        target = self._fragment_path(index)
        if not target.exists():
            return None
        with np.load(target) as archive:
            header = json.loads(bytes(archive["__header__"]).decode())
            keys = [
                (tuple(a), tuple(s)) for a, s in header["keys"]
            ]
            dead = [(tuple(a), tuple(s)) for a, s in header["dead"]]
            records = {
                key: archive[f"rec_{j}"].astype(dtype, copy=False)
                for j, key in enumerate(keys)
            }
        if set(keys) | set(dead) != {(tuple(a), tuple(s)) for a, s in combos}:
            raise ReconstructionError(
                f"checkpoint fragment {index} was written for a different "
                "variant plan"
            )
        return records, dead

    def clear(self) -> None:
        """Delete every fragment archive and the manifest."""
        for p in self.path.glob("fragment_*.npz"):
            p.unlink()
        manifest = self.path / "manifest.json"
        if manifest.exists():
            manifest.unlink()
