"""Measurement and preparation circuit variants for wire cutting.

Per cut wire the protocol needs (paper §II):

* **upstream**: measure the cut qubit in each Pauli basis.  ``I`` and ``Z``
  share the computational measurement, so the physical settings are
  ``{X, Y, Z}`` — realised by appending ``H`` (for X), ``S† H`` (for Y) or
  nothing (for Z) before the terminal measurement;
* **downstream**: initialise the entering qubit in each eigenstate of each
  basis.  ``I`` and ``Z`` share eigenstates ``{|0⟩, |1⟩}``, so the physical
  preparations are the six states ``Z+ Z− X+ X− Y+ Y−``, realised by the
  prefix gates listed in :data:`PREPARATION_STATES`.

Variants are labelled by tuples over the cuts (cut k → k-th tuple entry):
settings by basis letters, preparations by ``"<basis><sign>"`` codes.
"""

from __future__ import annotations

import itertools
from typing import Sequence

from repro.circuits.circuit import Circuit
from repro.circuits.gates import Gate
from repro.circuits.instruction import Instruction
from repro.cutting.fragments import FragmentPair
from repro.exceptions import CutError


def _fence(num_qubits: int) -> Instruction:
    """Full-width barrier separating a fragment body from its variant gates.

    Simulators skip barriers, so ideal results are untouched; the transpile
    pipeline keeps them as optimisation fences, so the physical circuit of
    any variant is exactly ``transpile(body)`` plus the lowered variant
    gates.  That factorisation is what
    :class:`repro.cutting.noisy_cache.NoisyFragmentSimCache` relies on to
    serve every noisy variant from one transpiled, once-evolved body — and
    it also mirrors hardware reality: tomography rotations and preparation
    pulses are separately calibrated operations, not part of the body's
    optimisation scope.
    """
    return Instruction(Gate("barrier"), tuple(range(num_qubits)))

__all__ = [
    "MEASUREMENT_SETTINGS",
    "PREPARATION_STATES",
    "upstream_setting_tuples",
    "downstream_init_tuples",
    "upstream_variant",
    "downstream_variant",
    "chain_variant",
    "chain_variant_tuples",
    "tree_variant",
    "tree_variant_tuples",
    "preparations_for_bases",
]

#: Physical upstream measurement settings per cut.
MEASUREMENT_SETTINGS: tuple[str, ...] = ("X", "Y", "Z")

#: Preparation-state code -> gate sequence building it from |0⟩.
#: (Applied in list order: e.g. Y− is X then H then S: S·H·X|0⟩ = (|0⟩−i|1⟩)/√2.)
PREPARATION_STATES: dict[str, tuple[str, ...]] = {
    "Z+": (),
    "Z-": ("x",),
    "X+": ("h",),
    "X-": ("x", "h"),
    "Y+": ("h", "s"),
    "Y-": ("x", "h", "s"),
}

#: Which preparation codes each Pauli basis needs downstream.
_BASIS_PREPS: dict[str, tuple[str, ...]] = {
    "I": ("Z+", "Z-"),
    "Z": ("Z+", "Z-"),
    "X": ("X+", "X-"),
    "Y": ("Y+", "Y-"),
}


def upstream_setting_tuples(
    num_cuts: int, allowed: Sequence[Sequence[str]] | None = None
) -> list[tuple[str, ...]]:
    """All physical measurement-setting tuples (default: {X,Y,Z}^K).

    ``allowed[k]`` restricts the settings of cut ``k`` (golden cuts drop
    their neglected basis — see :mod:`repro.core.neglect`).
    """
    pools = (
        [MEASUREMENT_SETTINGS] * num_cuts
        if allowed is None
        else [tuple(a) for a in allowed]
    )
    for k, pool in enumerate(pools):
        bad = set(pool) - set(MEASUREMENT_SETTINGS)
        if bad:
            raise CutError(f"invalid measurement settings {bad} for cut {k}")
        if not pool:
            raise CutError(f"cut {k} has an empty measurement-setting pool")
    return list(itertools.product(*pools))


def preparations_for_bases(bases: Sequence[str]) -> tuple[str, ...]:
    """Distinct preparation codes needed to cover the given Pauli bases."""
    out: list[str] = []
    for b in bases:
        for code in _BASIS_PREPS[b]:
            if code not in out:
                out.append(code)
    return tuple(out)


def downstream_init_tuples(
    num_cuts: int, allowed_bases: Sequence[Sequence[str]] | None = None
) -> list[tuple[str, ...]]:
    """All preparation-state tuples (default: 6^K).

    ``allowed_bases[k]`` lists the Pauli bases cut ``k`` participates in;
    the preparation pool is the union of their eigenstates (so dropping
    basis Y removes ``Y±`` — 6 states → 4 — while dropping Z removes
    nothing when I remains, matching the cost model in
    :mod:`repro.core.costs`).
    """
    if allowed_bases is None:
        allowed_bases = [("I", "X", "Y", "Z")] * num_cuts
    pools = [preparations_for_bases(b) for b in allowed_bases]
    for k, pool in enumerate(pools):
        if not pool:
            raise CutError(f"cut {k} has an empty preparation pool")
    return list(itertools.product(*pools))


def upstream_variant(pair: FragmentPair, setting: Sequence[str]) -> Circuit:
    """Upstream fragment with basis-change gates for one setting tuple.

    The returned circuit is measured on *all* its qubits by the backend;
    cut-qubit bits then resolve the tomography outcome, remaining bits the
    fragment's output (split by :mod:`repro.cutting.execution`).
    """
    if len(setting) != pair.num_cuts:
        raise CutError("setting tuple length != number of cuts")
    qc = pair.upstream.copy()
    qc.name = f"{pair.upstream.name}[{','.join(setting)}]"
    qc.append(_fence(pair.n_up))
    for k, basis in enumerate(setting):
        q = pair.up_cut_local[k]
        if basis == "X":
            qc.h(q)
        elif basis == "Y":
            qc.sdg(q).h(q)
        elif basis == "Z":
            pass
        else:
            raise CutError(f"invalid measurement basis {basis!r}")
    return qc


def tree_variant_tuples(
    tree,
    index: int,
    allowed_prep_bases: "Sequence[Sequence[str]] | None" = None,
    allowed_settings: "Sequence[Sequence[str]] | None" = None,
) -> list[tuple[tuple[str, ...], tuple[str, ...]]]:
    """All ``(inits, setting)`` combos of one tree (or chain) fragment.

    The root has an empty init side, leaves an empty setting side; interior
    fragments take the full product (``6^{K_prev} · 3^{K}`` by default,
    with ``K`` the node's *flat* exiting cut count — the union of its child
    groups' wires — and reduced pools via the ``allowed_*`` arguments
    exactly as in :func:`downstream_init_tuples` /
    :func:`upstream_setting_tuples`, in flat cut order).
    """
    frag = tree.fragments[index]
    inits = (
        downstream_init_tuples(frag.num_prep, allowed_prep_bases)
        if frag.num_prep
        else [()]
    )
    settings = (
        upstream_setting_tuples(frag.num_meas, allowed_settings)
        if frag.num_meas
        else [()]
    )
    return [(i, s) for i in inits for s in settings]


def tree_variant(
    tree, index: int, inits: Sequence[str], setting: Sequence[str]
) -> Circuit:
    """One tree (or chain) fragment with preparation prefix and measurement
    suffix.

    Structure: preparation gates on the entering cut wires, a fence, the
    fragment body, a fence, basis-change gates on the exiting cut wires (in
    the node's flat cut order, spanning every child group) — the
    superposition of :func:`downstream_variant` and
    :func:`upstream_variant` (either side collapses away at the root /
    leaves).  The fences keep the body a standalone transpile unit, which
    is what lets the noisy tree cache serve every combined variant from one
    transpiled body.
    """
    frag = tree.fragments[index]
    if len(inits) != frag.num_prep:
        raise CutError("init tuple length != number of entering cuts")
    if len(setting) != frag.num_meas:
        raise CutError("setting tuple length != number of exiting cuts")
    label = f"{','.join(inits)}|{','.join(setting)}"
    qc = Circuit(frag.num_qubits, name=f"{frag.circuit.name}[{label}]")
    for k, code in enumerate(inits):
        try:
            gates = PREPARATION_STATES[code]
        except KeyError:
            raise CutError(f"invalid preparation code {code!r}") from None
        q = frag.prep_local[k]
        for g in gates:
            qc.add_gate(g, (q,))
    if inits:
        qc.append(_fence(frag.num_qubits))
    for inst in frag.circuit:
        qc.append(inst)
    if setting:
        qc.append(_fence(frag.num_qubits))
    for k, basis in enumerate(setting):
        q = frag.cut_local[k]
        if basis == "X":
            qc.h(q)
        elif basis == "Y":
            qc.sdg(q).h(q)
        elif basis != "Z":
            raise CutError(f"invalid measurement basis {basis!r}")
    return qc


#: Chains are linear trees; the chain names remain as aliases of the single
#: tree implementation.
chain_variant = tree_variant
chain_variant_tuples = tree_variant_tuples


def downstream_variant(pair: FragmentPair, inits: Sequence[str]) -> Circuit:
    """Downstream fragment prefixed with preparation gates for one tuple."""
    if len(inits) != pair.num_cuts:
        raise CutError("init tuple length != number of cuts")
    qc = Circuit(pair.n_down, name=f"{pair.downstream.name}[{','.join(inits)}]")
    for k, code in enumerate(inits):
        try:
            gates = PREPARATION_STATES[code]
        except KeyError:
            raise CutError(f"invalid preparation code {code!r}") from None
        q = pair.down_cut_local[k]
        for g in gates:
            qc.add_gate(g, (q,))
    qc.append(_fence(pair.n_down))
    for inst in pair.downstream:
        qc.append(inst)
    return qc
