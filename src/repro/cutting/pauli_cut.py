"""Cutting with general (non-diagonal) Pauli observables — paper Eq. 14.

The paper's experiments use computational-basis projectors, but Eq. 14 is
stated for any observable that splits across the bipartition, noting that
"expansions using Pauli strings would yield a linear combination of
operators that are qubit-wise separable".  This module implements that
general case:

* a Pauli string `O = O_f1 ⊗ O_f2` is measured by appending basis-change
  gates on each fragment's *output* qubits (X → H, Y → H·S†) — exactly the
  trick hardware uses — after which the observable is diagonal and the
  standard reconstruction applies;
* a Pauli *sum* (Hamiltonian) is evaluated group-wise: qubit-wise-commuting
  terms share one set of fragment executions
  (:meth:`~repro.observables.pauli_obs.PauliSumObservable.measurement_groups`),
  so the execution cost is `groups × variants`, not `terms × variants`.

Golden cutting composes transparently: Definition 1 depends on the
upstream observable factor, so the analytic finder / detector simply run on
the *rotated* fragment pair.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

import numpy as np

from repro.backends.base import Backend
from repro.circuits.circuit import Circuit
from repro.core.golden import find_golden_bases_analytic
from repro.core.neglect import (
    reduced_bases,
    reduced_init_tuples,
    reduced_setting_tuples,
)
from repro.cutting.cut import CutSpec
from repro.cutting.execution import run_fragments
from repro.cutting.fragments import FragmentPair, bipartition
from repro.cutting.reconstruction import reconstruct_expectation
from repro.exceptions import CutError, ReproError
from repro.linalg.paulis import PauliString
from repro.observables.pauli_obs import PauliSumObservable
from repro.utils.rng import as_generator, derive_rng

__all__ = [
    "rotated_fragment_pair",
    "fragment_diagonals",
    "cut_pauli_expectation",
    "cut_pauli_sum_expectation",
]

_ROTATIONS: dict[str, tuple[str, ...]] = {
    # circuit-order gate sequences realising the basis change V with
    # V M V† = Z:  X -> H;  Y -> S† then H.
    "I": (),
    "Z": (),
    "X": ("h",),
    "Y": ("sdg", "h"),
}


def _append_rotations(
    circuit: Circuit, out_local: Sequence[int], labels: Sequence[str]
) -> Circuit:
    out = circuit.copy()
    for q, label in zip(out_local, labels):
        for g in _ROTATIONS[label]:
            out.add_gate(g, (q,))
    return out


def rotated_fragment_pair(
    pair: FragmentPair, observable: PauliString
) -> FragmentPair:
    """Fragment pair with output qubits rotated into ``observable``'s basis.

    The returned pair has identical cut/output book-keeping; only the
    fragment circuits gain terminal single-qubit rotations on output wires
    (never on cut wires — those keep the tomography protocol).
    """
    if observable.num_qubits != len(pair.output_order()):
        raise ReproError(
            f"observable width {observable.num_qubits} != circuit width "
            f"{len(pair.output_order())}"
        )
    up_labels = [observable.labels[q] for q in pair.up_out_original]
    down_labels = [observable.labels[q] for q in pair.down_out_original]
    return replace(
        pair,
        upstream=_append_rotations(pair.upstream, pair.up_out_local, up_labels),
        downstream=_append_rotations(
            pair.downstream, pair.down_out_local, down_labels
        ),
    )


def fragment_diagonals(
    pair: FragmentPair, observable: PauliString
) -> tuple[np.ndarray, np.ndarray]:
    """Post-rotation diagonal factors ``(diag_up, diag_down)``.

    After the basis change every non-identity label contributes a Z, so
    each factor is the ``{I,Z}`` reduction of the observable restricted to
    that fragment's outputs.  The string's scalar phase multiplies the
    upstream factor (it must be real for a Hermitian expectation).
    """
    if abs(observable.phase.imag) > 1e-12:
        raise ReproError("observable phase must be real for an expectation")
    z_or_i = ["I" if c == "I" else "Z" for c in observable.labels]
    up = PauliString(
        tuple(z_or_i[q] for q in pair.up_out_original),
        phase=float(observable.phase.real),
    )
    down = PauliString(tuple(z_or_i[q] for q in pair.down_out_original))
    diag_up = up.diagonal().real if up.num_qubits else np.array([up.phase.real])
    diag_down = (
        down.diagonal().real if down.num_qubits else np.array([1.0])
    )
    return diag_up, diag_down


def cut_pauli_expectation(
    circuit: Circuit,
    cuts: CutSpec,
    backend: Backend,
    observable: PauliString,
    shots: int = 1000,
    golden: str = "off",
    seed: "int | np.random.Generator | None" = None,
) -> float:
    """⟨O⟩ of ``circuit`` for one Pauli string, evaluated via cutting.

    ``golden``: ``"off"`` or ``"analytic"`` (the finder runs on the rotated
    pair, since goldenness is observable-dependent).
    """
    pair = rotated_fragment_pair(bipartition(circuit, cuts), observable)
    diag_up, diag_down = fragment_diagonals(pair, observable)
    settings = inits = bases = None
    if golden == "analytic":
        found = find_golden_bases_analytic(pair)
        gm = {k: bs[0] for k, bs in found.items() if bs}
        if gm:
            settings = reduced_setting_tuples(pair.num_cuts, gm)
            inits = reduced_init_tuples(pair.num_cuts, gm)
            bases = reduced_bases(pair.num_cuts, gm)
    elif golden != "off":
        raise CutError('golden must be "off" or "analytic" here')
    data = run_fragments(
        pair, backend, shots=shots, settings=settings, inits=inits, seed=seed
    )
    return reconstruct_expectation(data, diag_up, diag_down, bases=bases)


def cut_pauli_sum_expectation(
    circuit: Circuit,
    cuts: CutSpec,
    backend: Backend,
    hamiltonian: PauliSumObservable,
    shots: int = 1000,
    seed: "int | np.random.Generator | None" = None,
) -> tuple[float, dict]:
    """⟨H⟩ of a Pauli sum via cutting, sharing runs across commuting terms.

    Returns ``(energy, info)`` where ``info`` reports the measurement-group
    structure and total fragment executions.  Each qubit-wise-commuting
    group is executed once (standard protocol; golden reduction per group
    could be layered on identically to :func:`cut_pauli_expectation`).
    """
    if hamiltonian.num_qubits != circuit.num_qubits:
        raise ReproError("hamiltonian width mismatch")
    rng = as_generator(seed)
    base_pair = bipartition(circuit, cuts)
    groups = hamiltonian.measurement_groups()
    energy = 0.0
    executions = 0
    for gi, members in enumerate(groups):
        # group basis: the union of the members' non-I labels
        basis = ["I"] * hamiltonian.num_qubits
        for idx in members:
            for q, c in enumerate(hamiltonian.terms[idx][1].labels):
                if c != "I":
                    basis[q] = c
        group_string = PauliString(tuple(basis))
        pair = rotated_fragment_pair(base_pair, group_string)
        data = run_fragments(
            pair, backend, shots=shots, seed=derive_rng(rng, gi)
        )
        executions += data.total_shots
        for idx in members:
            coeff, term = hamiltonian.terms[idx]
            diag_up, diag_down = fragment_diagonals(pair, term)
            energy += coeff * reconstruct_expectation(data, diag_up, diag_down)
    info = {
        "num_groups": len(groups),
        "num_terms": hamiltonian.num_terms,
        "total_executions": executions,
    }
    return energy, info
