"""Pauli-basis wire cutting (the CutQC-style baseline of the paper).

This package implements the standard tomography-based reconstruction the
paper builds on (refs [16], [18]); the paper's contribution — golden cutting
points — lives in :mod:`repro.core` and reuses everything here with reduced
basis sets.
"""

from repro.cutting.cut import CutPoint, CutSpec, find_cuts
from repro.cutting.search import (
    CutSearchResult,
    find_cut_specs,
    search_cut_specs,
)
from repro.cutting.fragments import FragmentPair, bipartition
from repro.cutting.chain import (
    ChainFragment,
    FragmentChain,
    chain_from_pair,
    partition_chain,
)
from repro.cutting.tree import (
    FragmentTree,
    TreeFragment,
    partition_tree,
)
from repro.cutting.variants import (
    PREPARATION_STATES,
    chain_variant,
    chain_variant_tuples,
    downstream_init_tuples,
    downstream_variant,
    tree_variant,
    tree_variant_tuples,
    upstream_setting_tuples,
    upstream_variant,
)
from repro.cutting.cache import (
    ChainCachePool,
    ChainFragmentSimCache,
    FragmentSimCache,
    TreeCachePool,
    TreeFragmentSimCache,
)
from repro.cutting.execution import (
    ChainFragmentData,
    FragmentData,
    TreeFragmentData,
    exact_chain_data,
    exact_tree_data,
    run_chain_fragments,
    run_fragments,
    run_tree_fragments,
)
from repro.cutting.noisy_cache import (
    NoisyChainFragmentSimCache,
    NoisyFragmentSimCache,
    NoisyTreeFragmentSimCache,
)
from repro.cutting.reconstruction import (
    build_chain_fragment_tensor,
    build_chain_fragment_tensor_reference,
    build_tree_fragment_tensor,
    build_tree_fragment_tensor_reference,
    build_downstream_tensor,
    build_downstream_tensor_reference,
    build_upstream_tensor,
    build_upstream_tensor_reference,
    reconstruct_chain_distribution,
    reconstruct_chain_distribution_reference,
    reconstruct_counts,
    reconstruct_distribution,
    reconstruct_expectation,
    reconstruct_tree_distribution,
    reconstruct_tree_distribution_reference,
)
from repro.cutting.sparse import (
    PrunePolicy,
    SparseDistribution,
    postprocess_sparse,
    threshold,
    top_k,
)
from repro.cutting.io import (
    TreeCheckpoint,
    load_fragment_data,
    save_fragment_data,
    tree_run_signature,
)
from repro.cutting.resilience import (
    AttemptLedger,
    AttemptRecord,
    CircuitBreaker,
    RetryEngine,
    RetryPolicy,
    degradation_tv_penalty,
    plan_degradation,
    required_tree_variants,
    site_key,
)
from repro.cutting.pauli_cut import (
    cut_pauli_expectation,
    cut_pauli_sum_expectation,
    rotated_fragment_pair,
)
from repro.cutting.shots import (
    allocate_chain_shots,
    allocate_shots,
    allocate_tree_shots,
    reallocate_shots,
)
from repro.cutting.variance import (
    chain_predicted_stddev_tv,
    chain_reconstruction_variance,
    predicted_stddev_tv,
    reconstruction_variance,
    tree_predicted_stddev_tv,
    tree_reconstruction_variance,
    tree_tv_bound,
)
from repro.cutting.allocation import AllocationPlan, suggest_allocation

__all__ = [
    "CutPoint",
    "CutSpec",
    "find_cuts",
    "CutSearchResult",
    "find_cut_specs",
    "search_cut_specs",
    "FragmentPair",
    "bipartition",
    "ChainFragment",
    "FragmentChain",
    "chain_from_pair",
    "partition_chain",
    "TreeFragment",
    "FragmentTree",
    "partition_tree",
    "PREPARATION_STATES",
    "upstream_setting_tuples",
    "downstream_init_tuples",
    "upstream_variant",
    "downstream_variant",
    "chain_variant",
    "chain_variant_tuples",
    "tree_variant",
    "tree_variant_tuples",
    "FragmentData",
    "ChainFragmentData",
    "TreeFragmentData",
    "FragmentSimCache",
    "ChainFragmentSimCache",
    "TreeFragmentSimCache",
    "ChainCachePool",
    "TreeCachePool",
    "NoisyFragmentSimCache",
    "NoisyChainFragmentSimCache",
    "NoisyTreeFragmentSimCache",
    "run_fragments",
    "run_chain_fragments",
    "run_tree_fragments",
    "exact_chain_data",
    "exact_tree_data",
    "build_upstream_tensor",
    "build_downstream_tensor",
    "build_upstream_tensor_reference",
    "build_downstream_tensor_reference",
    "build_chain_fragment_tensor",
    "build_chain_fragment_tensor_reference",
    "build_tree_fragment_tensor",
    "build_tree_fragment_tensor_reference",
    "reconstruct_distribution",
    "reconstruct_chain_distribution",
    "reconstruct_chain_distribution_reference",
    "reconstruct_tree_distribution",
    "reconstruct_tree_distribution_reference",
    "reconstruct_counts",
    "reconstruct_expectation",
    "PrunePolicy",
    "SparseDistribution",
    "postprocess_sparse",
    "threshold",
    "top_k",
    "save_fragment_data",
    "load_fragment_data",
    "TreeCheckpoint",
    "tree_run_signature",
    "AttemptLedger",
    "AttemptRecord",
    "CircuitBreaker",
    "RetryEngine",
    "RetryPolicy",
    "degradation_tv_penalty",
    "plan_degradation",
    "required_tree_variants",
    "site_key",
    "cut_pauli_expectation",
    "cut_pauli_sum_expectation",
    "rotated_fragment_pair",
    "allocate_shots",
    "allocate_chain_shots",
    "allocate_tree_shots",
    "reallocate_shots",
    "reconstruction_variance",
    "chain_reconstruction_variance",
    "tree_reconstruction_variance",
    "predicted_stddev_tv",
    "chain_predicted_stddev_tv",
    "tree_predicted_stddev_tv",
    "tree_tv_bound",
    "AllocationPlan",
    "suggest_allocation",
]
