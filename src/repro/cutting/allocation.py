"""Variance-aware shot-budget planning across fragment variants.

The paper allocates shots uniformly (1000 per (sub)circuit).  Uniform is
not optimal: variants contribute unequally to the reconstruction variance —
a downstream preparation feeding many basis rows, or an upstream setting
whose outcomes are nearly deterministic, deserve different budgets.  This
module plans a better split from pilot data using the classic Neyman rule:
for a total budget ``B`` minimising ``Σ_v c_v / N_v`` subject to
``Σ_v N_v = B`` gives ``N_v ∝ √c_v``.

The per-variant variance coefficients ``c_v`` come from the same
delta-method model as :mod:`repro.cutting.variance`:

* upstream setting ``S``: ``c_S = 4^{-K} Σ_{M: S(M)=S} w_A(M) · ‖B̂[M]‖²``
  with ``w_A(M) = Σ_{b₁} (mass − Â²)`` the multinomial row coefficient;
* downstream init ``T``: ``c_T = 4^{-K} Σ_{M: T∈inits(M)} ‖Â[M]‖² ·
  Σ_{b₂} p_T(1−p_T)``.

This is a *planning* tool: it returns the recommended integer allocation
and the predicted total-variance ratio vs uniform; executing heterogeneous
budgets is then a sequence of plain ``run_fragments`` calls per variant
subset (the reconstruction only consumes normalised probabilities, so
mixed shot counts are sound).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cutting.execution import FragmentData
from repro.cutting.reconstruction import (
    _basis_rows,
    _normalise_bases,
    _signs_for,
    build_downstream_tensor,
    build_upstream_tensor,
)
from repro.exceptions import CutError

__all__ = ["AllocationPlan", "suggest_allocation"]

_PREP_OF = {
    "I": ("Z+", "Z-"),
    "Z": ("Z+", "Z-"),
    "X": ("X+", "X-"),
    "Y": ("Y+", "Y-"),
}


@dataclass(frozen=True)
class AllocationPlan:
    """Recommended per-variant budgets and their predicted payoff."""

    #: upstream setting tuple -> recommended shots
    upstream: dict
    #: downstream init tuple -> recommended shots
    downstream: dict
    #: Σ c_v / N_v under this plan
    predicted_variance: float
    #: same under the uniform split of the same total
    uniform_variance: float
    total_shots: int

    @property
    def improvement(self) -> float:
        """uniform / planned predicted variance (≥ 1 when the plan helps)."""
        if self.predicted_variance <= 0:
            return float("inf")
        return self.uniform_variance / self.predicted_variance

    def as_rows(self) -> list[dict]:
        rows = [
            {"variant": "meas " + ",".join(k), "shots": v}
            for k, v in self.upstream.items()
        ]
        rows += [
            {"variant": "prep " + ",".join(k), "shots": v}
            for k, v in self.downstream.items()
        ]
        return rows


def _variance_coefficients(
    data: FragmentData, bases=None
) -> tuple[dict, dict]:
    """Per-variant coefficients c_v of the Var = Σ c_v / N_v model."""
    K = data.pair.num_cuts
    bases = _normalise_bases(bases, K)
    rows = _basis_rows(bases)
    A, _ = build_upstream_tensor(data, bases)
    B, _ = build_downstream_tensor(data, bases)
    scale = 1.0 / float(4**K)

    settings = data.upstream_settings()
    pools = [sorted({s[k] for s in settings}) for k in range(K)]
    fallback = ["Z" if "Z" in p else p[0] for p in pools]

    up_coeff = {s: 0.0 for s in settings}
    down_coeff = {t: 0.0 for t in data.downstream_inits()}
    for i, row in enumerate(rows):
        setting = tuple(m if m != "I" else fallback[k] for k, m in enumerate(row))
        arr = data.upstream[setting]
        mask = sum(1 << k for k, m in enumerate(row) if m != "I")
        mean = arr @ _signs_for(mask, K)
        w_a = float(np.clip(arr.sum(axis=1) - mean**2, 0.0, None).sum())
        up_coeff[setting] += scale * w_a * float(np.dot(B[i], B[i]))
        a_norm = float(np.dot(A[i], A[i]))
        for s in range(1 << K):
            init = tuple(_PREP_OF[m][(s >> k) & 1] for k, m in enumerate(row))
            vec = data.downstream[init]
            w_b = float((vec * (1.0 - vec)).sum())
            down_coeff[init] += scale * a_norm * w_b
    return up_coeff, down_coeff


def suggest_allocation(
    pilot: FragmentData,
    total_shots: int,
    bases=None,
    min_shots: int = 16,
) -> AllocationPlan:
    """Neyman allocation of ``total_shots`` across all fragment variants.

    ``pilot`` supplies the coefficient estimates (a few hundred shots per
    variant suffice); ``min_shots`` floors every variant so no estimator is
    starved by a pilot fluke.
    """
    if pilot.shots_per_variant <= 0:
        raise CutError("allocation planning needs finite-shot pilot data")
    up_c, down_c = _variance_coefficients(pilot, bases)
    keys = list(up_c) + list(down_c)
    coeffs = np.array([up_c[k] for k in up_c] + [down_c[k] for k in down_c])
    n_var = len(keys)
    if total_shots < n_var * min_shots:
        raise CutError(
            f"budget {total_shots} below the floor {n_var * min_shots}"
        )
    weights = np.sqrt(np.clip(coeffs, 1e-15, None))
    raw = weights / weights.sum() * (total_shots - n_var * min_shots)
    alloc = raw.astype(int) + min_shots
    # distribute the rounding remainder to the largest fractional parts
    remainder = total_shots - int(alloc.sum())
    if remainder > 0:
        order = np.argsort(-(raw - raw.astype(int)))
        for i in order[:remainder]:
            alloc[i] += 1

    def plan_variance(counts: np.ndarray) -> float:
        return float(np.sum(coeffs / np.maximum(counts, 1)))

    uniform = np.full(n_var, total_shots // n_var)
    n_up = len(up_c)
    return AllocationPlan(
        upstream={k: int(v) for k, v in zip(keys[:n_up], alloc[:n_up])},
        downstream={k: int(v) for k, v in zip(keys[n_up:], alloc[n_up:])},
        predicted_variance=plan_variance(alloc),
        uniform_variance=plan_variance(uniform),
        total_shots=total_shots,
    )
