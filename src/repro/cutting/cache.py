"""Shared-prefix fragment simulation cache.

Every upstream measurement variant of a fragment pair is the *same* circuit
followed by terminal single-qubit basis rotations, and every downstream
preparation variant is the same circuit preceded by single-qubit state
preparations on the cut wires.  Simulating each of the ``3^K`` settings and
``6^K`` preparations from scratch therefore repeats the expensive body
simulation exponentially many times.  :class:`FragmentSimCache` removes that
redundancy:

* **upstream** — the fragment body is simulated **once**; each setting's
  pre-measurement state is the cached tensor with per-cut ``H`` / ``H·S†``
  rotations applied to the cut axes (``3^K`` full simulations → ``1``
  simulation plus cheap axis rotations);
* **downstream** — preparation states live in the cut wires'
  ``2^K``-dimensional computational subspace, so the body is pushed over the
  ``2^K`` basis initialisations **once** (a single batched simulation, see
  :func:`repro.sim.statevector.apply_circuit_to_tensor`); every preparation
  tuple — the standard ``6^K`` pool or any future basis pool — is then a
  linear combination of the cached response columns, one GEMV (or one GEMM
  for a whole batch) away.

The cache is consumed by :func:`repro.cutting.execution.exact_fragment_data`,
the ideal backend's :meth:`~repro.backends.ideal.IdealBackend.run_variants`
fast path, :func:`repro.parallel.executor.run_fragments_parallel`, and the
analytic golden-cut finder.  After :meth:`warm` (or eager use) the cache is
read-only and therefore safe to share across worker threads.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.circuits.gates import gate_matrix
from repro.config import COMPLEX_DTYPE
from repro.cutting.fragments import FragmentPair
from repro.cutting.variants import PREPARATION_STATES
from repro.exceptions import CutError
from repro.sim.statevector import apply_circuit_to_tensor, simulate_statevector
from repro.linalg.tensor import apply_matrix_to_axes, flat_from_tensor

__all__ = [
    "ChainCachePool",
    "ChainFragmentSimCache",
    "FragmentSimCache",
    "PREPARATION_AMPLITUDES",
    "TreeCachePool",
    "TreeFragmentSimCache",
]


def _prep_amplitudes() -> dict[str, np.ndarray]:
    """Preparation-state code -> amplitudes in the computational basis.

    Derived from the *same* gate sequences the physical circuits use
    (:data:`repro.cutting.variants.PREPARATION_STATES`), so the cached
    linear-response path cannot drift from the circuit path — the
    downstream response is linear in the state, so relative phases between
    basis columns matter.
    """
    out: dict[str, np.ndarray] = {}
    for code, gates in PREPARATION_STATES.items():
        v = np.array([1.0, 0.0], dtype=COMPLEX_DTYPE)
        for g in gates:
            v = gate_matrix(g) @ v
        v.setflags(write=False)
        out[code] = v
    return out


PREPARATION_AMPLITUDES: dict[str, np.ndarray] = _prep_amplitudes()

#: Measurement basis -> terminal rotation matrix (None = computational),
#: matching the gate sequences appended by ``upstream_variant`` (S† then H
#: for Y), built from the gate registry rather than re-stated literals.
MEASUREMENT_ROTATIONS: dict[str, "np.ndarray | None"] = {
    "X": gate_matrix("h"),
    "Y": gate_matrix("h") @ gate_matrix("sdg"),
    "Z": None,
}
for _m in MEASUREMENT_ROTATIONS.values():
    if _m is not None:
        _m.setflags(write=False)


class FragmentSimCache:
    """Lazy per-pair cache of fragment-body simulations.

    All derived quantities (per-setting joint tensors, per-preparation
    output distributions) are memoised, so repeated queries — e.g. a pilot
    detection pass followed by the production run, or the analytic golden
    finder followed by execution — cost one body simulation total.
    """

    __slots__ = (
        "pair",
        "_up_tensor",
        "_up_axes",
        "_down_columns",
        "_up_ptensor",
        "_up_joint",
        "_up_probs",
        "_down_probs",
    )

    def __init__(self, pair: FragmentPair) -> None:
        self.pair = pair
        self._up_tensor: "np.ndarray | None" = None
        #: transpose order mapping the upstream probability tensor onto
        #: ``(b_out, b_cut)`` little-endian axes (qubit 0 of each group
        #: fastest ⇒ groups listed most-significant-axis first).
        self._up_axes = tuple(reversed(pair.up_out_local)) + tuple(
            reversed(pair.up_cut_local)
        )
        self._down_columns: "np.ndarray | None" = None
        self._up_ptensor: dict[tuple[str, ...], np.ndarray] = {}
        self._up_joint: dict[tuple[str, ...], np.ndarray] = {}
        self._up_probs: dict[tuple[str, ...], np.ndarray] = {}
        self._down_probs: dict[tuple[str, ...], np.ndarray] = {}

    # ------------------------------------------------------------- upstream
    def _upstream_body(self) -> np.ndarray:
        """Pre-measurement upstream state tensor (simulated once)."""
        if self._up_tensor is None:
            self._up_tensor = simulate_statevector(self.pair.upstream).tensor
        return self._up_tensor

    def _rotated_probs_tensor(self, setting: tuple[str, ...]) -> np.ndarray:
        out = self._up_ptensor.get(setting)
        if out is not None:
            return out
        if len(setting) != self.pair.num_cuts:
            raise CutError("setting tuple length != number of cuts")
        t = self._upstream_body()
        for k, basis in enumerate(setting):
            try:
                rot = MEASUREMENT_ROTATIONS[basis]
            except KeyError:
                raise CutError(f"invalid measurement basis {basis!r}") from None
            if rot is not None:
                t = apply_matrix_to_axes(t, rot, (self.pair.up_cut_local[k],))
        out = np.square(t.real) + np.square(t.imag)
        out.setflags(write=False)
        self._up_ptensor[setting] = out
        return out

    def upstream_probabilities(self, setting: Sequence[str]) -> np.ndarray:
        """Full little-endian distribution over the upstream register."""
        key = tuple(setting)
        out = self._up_probs.get(key)
        if out is None:
            out = flat_from_tensor(self._rotated_probs_tensor(key))
            out.setflags(write=False)
            self._up_probs[key] = out
        return out

    def upstream_joint(self, setting: Sequence[str]) -> np.ndarray:
        """Joint ``A[b_out, b_cut]`` tensor for one measurement setting."""
        key = tuple(setting)
        out = self._up_joint.get(key)
        if out is None:
            p = self._rotated_probs_tensor(key)
            out = np.ascontiguousarray(
                p.transpose(self._up_axes).reshape(
                    1 << self.pair.n_up_out, 1 << self.pair.num_cuts
                )
            )
            out.setflags(write=False)
            self._up_joint[key] = out
        return out

    # ----------------------------------------------------------- downstream
    def _response_columns(self) -> np.ndarray:
        """Downstream output amplitudes per cut-basis initialisation.

        Shape ``(2^{n_down}, 2^K)``: column ``j`` is the little-endian final
        state when the cut wires start in the computational state with cut
        ``k`` carrying bit ``k`` of ``j`` (one batched body simulation).
        """
        if self._down_columns is None:
            pair = self.pair
            n, K = pair.n_down, pair.num_cuts
            B = 1 << K
            js = np.arange(B)
            init = np.zeros((2,) * n + (B,), dtype=COMPLEX_DTYPE)
            cut_pos = {q: k for k, q in enumerate(pair.down_cut_local)}
            coords = tuple(
                ((js >> cut_pos[q]) & 1) if q in cut_pos else np.zeros(B, dtype=np.int64)
                for q in range(n)
            )
            init[coords + (js,)] = 1.0
            t = apply_circuit_to_tensor(init, pair.downstream)
            cols = t.transpose(tuple(range(n - 1, -1, -1)) + (n,)).reshape(1 << n, B)
            cols = np.ascontiguousarray(cols)
            cols.setflags(write=False)
            self._down_columns = cols
        return self._down_columns

    def _prep_coefficients(self, inits: tuple[str, ...]) -> np.ndarray:
        """Expansion of a preparation product state over the basis columns."""
        if len(inits) != self.pair.num_cuts:
            raise CutError("init tuple length != number of cuts")
        B = 1 << self.pair.num_cuts
        js = np.arange(B)
        c = np.ones(B, dtype=COMPLEX_DTYPE)
        for k, code in enumerate(inits):
            try:
                amp = PREPARATION_AMPLITUDES[code]
            except KeyError:
                raise CutError(f"invalid preparation code {code!r}") from None
            c *= amp[(js >> k) & 1]
        return c

    def downstream_probabilities(self, inits: Sequence[str]) -> np.ndarray:
        """Little-endian output distribution for one preparation tuple."""
        key = tuple(inits)
        out = self._down_probs.get(key)
        if out is None:
            psi = self._response_columns() @ self._prep_coefficients(key)
            out = np.square(psi.real) + np.square(psi.imag)
            out.setflags(write=False)
            self._down_probs[key] = out
        return out

    def downstream_probabilities_batch(
        self, inits: Sequence[Sequence[str]]
    ) -> np.ndarray:
        """All preparation tuples at once: one GEMM, shape ``(len, 2^n)``.

        Results are memoised per tuple, so later single-tuple queries are
        free.
        """
        keys = [tuple(i) for i in inits]
        missing = [k for k in keys if k not in self._down_probs]
        if missing:
            C = np.stack([self._prep_coefficients(k) for k in missing], axis=1)
            psi = self._response_columns() @ C  # (2^n, len(missing))
            probs = np.square(psi.real) + np.square(psi.imag)
            for j, k in enumerate(missing):
                p = np.ascontiguousarray(probs[:, j])
                p.setflags(write=False)
                self._down_probs[k] = p
        return np.stack([self._down_probs[k] for k in keys])

    # ---------------------------------------------------------------- misc
    def warm(
        self,
        settings: Iterable[Sequence[str]] = (),
        inits: Iterable[Sequence[str]] = (),
    ) -> "FragmentSimCache":
        """Precompute entries so later reads are lock-free and thread-safe.

        Warms the full per-setting/per-init *distributions* — what sampling
        workers read.  Joint ``A[b_out, b_cut]`` tensors stay lazy (they are
        cheap transposes of the memoised probability tensors and the
        parallel sampling path never consumes them).
        """
        inits = list(inits)
        if inits:
            self.downstream_probabilities_batch(inits)
        for s in settings:
            self.upstream_probabilities(s)
        return self


class TreeFragmentSimCache:
    """Lazy per-tree-fragment cache of ideal body simulations.

    The topology-general version of :class:`FragmentSimCache`: one fragment
    may have *both* a preparation side (the entering cut group) and a
    measurement side (the union of its exiting cut groups' wires — one
    group on a chain interior, several at a tree branching node; the flat
    ``cut_local`` layout of :class:`~repro.cutting.tree.TreeFragment` makes
    the distinction invisible here).  The two existing techniques compose
    because they touch different ends of the same linear map:

    * the body is simulated **once**, batched over the ``2^{K_prev}``
      computational initialisations of the entering cut wires (amplitude
      response columns, as in the pair cache's downstream half);
    * each measurement setting rotates the cut axes of that whole cached
      column bank (as in the pair cache's upstream half) — memoised per
      setting, or produced for a whole setting *pool* in one stacked
      tensor contraction by :meth:`warm_rotations`;
    * any preparation tuple is a linear combination of the rotated columns,
      one GEMV (or GEMM per batch) away, *before* squaring — amplitudes mix
      linearly, probabilities do not.

    Cost: ``6^{K_prev} · 3^{K}`` full variant simulations collapse to one
    batched body simulation plus ``3^{K}`` cheap axis rotations.

    ``dtype`` is the precision of the *probability outputs* (the amplitude
    simulation always runs in :data:`~repro.config.COMPLEX_DTYPE`): the
    float64 default serves bit-identical results to the historical cache;
    float32 halves the memory of every served distribution and record for
    the reconstruction fast path (pinned at ≤ 1e-6 by the test suite).
    """

    __slots__ = (
        "fragment",
        "dtype",
        "_columns_box",
        "_rotated",
        "_probs",
        "_joint",
        "_axes",
    )

    def __init__(self, fragment, dtype=np.float64) -> None:
        self.fragment = fragment
        self.dtype = np.dtype(dtype)
        #: one-slot shared box for the response columns — a box, not a
        #: plain attribute, so rebound clones see a body simulation that
        #: happens after the rebind (the box is shared, its content mutates)
        self._columns_box: list = [None]
        #: setting -> rotated amplitude bank, shape ``(2,)*n + (2^{K_prev},)``
        self._rotated: dict[tuple[str, ...], np.ndarray] = {}
        self._probs: dict[tuple, np.ndarray] = {}
        self._joint: dict[tuple, np.ndarray] = {}
        #: transpose order mapping a probability tensor onto (b_out, b_cut)
        self._axes = tuple(reversed(fragment.out_local)) + tuple(
            reversed(fragment.cut_local)
        )

    @property
    def _columns(self) -> "np.ndarray | None":
        return self._columns_box[0]

    @_columns.setter
    def _columns(self, value) -> None:
        self._columns_box[0] = value

    # ------------------------------------------------------------------
    def _response_columns(self) -> np.ndarray:
        """Body output amplitudes per entering-cut initialisation.

        Shape ``(2,)*n + (2^{K_prev},)``: batch column ``j`` is the final
        state when entering cut ``k`` starts in computational state bit
        ``k`` of ``j`` (a single batched body simulation; ``K_prev = 0``
        degenerates to one plain body run).
        """
        if self._columns is None:
            frag = self.fragment
            n, B = frag.num_qubits, 1 << frag.num_prep
            js = np.arange(B)
            init = np.zeros((2,) * n + (B,), dtype=COMPLEX_DTYPE)
            pos = {q: k for k, q in enumerate(frag.prep_local)}
            coords = tuple(
                ((js >> pos[q]) & 1) if q in pos else np.zeros(B, dtype=np.int64)
                for q in range(n)
            )
            init[coords + (js,)] = 1.0
            cols = apply_circuit_to_tensor(init, frag.circuit)
            cols.setflags(write=False)
            self._columns = cols
        return self._columns

    def _rotated_columns(self, setting: tuple[str, ...]) -> np.ndarray:
        """The response bank with one setting's terminal rotations applied."""
        out = self._rotated.get(setting)
        if out is not None:
            return out
        if len(setting) != self.fragment.num_meas:
            raise CutError("setting tuple length != number of exiting cuts")
        t = self._response_columns()
        for k, basis in enumerate(setting):
            try:
                rot = MEASUREMENT_ROTATIONS[basis]
            except KeyError:
                raise CutError(f"invalid measurement basis {basis!r}") from None
            if rot is not None:
                t = apply_matrix_to_axes(t, rot, (self.fragment.cut_local[k],))
        t.setflags(write=False)
        self._rotated[setting] = t
        return t

    def _prep_coefficients(self, inits: tuple[str, ...]) -> np.ndarray:
        """Expansion of a preparation product state over the basis columns."""
        if len(inits) != self.fragment.num_prep:
            raise CutError("init tuple length != number of entering cuts")
        B = 1 << self.fragment.num_prep
        js = np.arange(B)
        c = np.ones(B, dtype=COMPLEX_DTYPE)
        for k, code in enumerate(inits):
            try:
                amp = PREPARATION_AMPLITUDES[code]
            except KeyError:
                raise CutError(f"invalid preparation code {code!r}") from None
            c *= amp[(js >> k) & 1]
        return c

    # ------------------------------------------------------------------
    def _probs_tensor(
        self, inits: tuple[str, ...], setting: tuple[str, ...]
    ) -> np.ndarray:
        rot = self._rotated_columns(setting)
        n = self.fragment.num_qubits
        psi = np.tensordot(rot, self._prep_coefficients(inits), axes=([n], [0]))
        # astype is a no-op on the default float64 path (copy=False)
        return (np.square(psi.real) + np.square(psi.imag)).astype(
            self.dtype, copy=False
        )

    def probabilities(
        self, inits: Sequence[str], setting: Sequence[str]
    ) -> np.ndarray:
        """Full little-endian distribution of one ``(inits, setting)`` variant."""
        key = (tuple(inits), tuple(setting))
        out = self._probs.get(key)
        if out is None:
            out = flat_from_tensor(self._probs_tensor(*key))
            out.setflags(write=False)
            self._probs[key] = out
        return out

    def joint(self, inits: Sequence[str], setting: Sequence[str]) -> np.ndarray:
        """Joint ``A[b_out, b_cut]`` record (``b_cut`` dimension 1 at chain end)."""
        key = (tuple(inits), tuple(setting))
        out = self._joint.get(key)
        if out is None:
            frag = self.fragment
            p = self._probs_tensor(*key)
            out = np.ascontiguousarray(
                p.transpose(self._axes).reshape(
                    1 << frag.n_out, 1 << frag.num_meas
                )
            )
            out.setflags(write=False)
            self._joint[key] = out
        return out

    def warm_rotations(
        self, settings: Iterable[Sequence[str]]
    ) -> "TreeFragmentSimCache":
        """Batched upstream rotation application (ROADMAP lever).

        Rather than rotating the cached column bank once per setting
        (``3^K`` separate passes over the full tensor), every requested
        setting's rotated bank is produced by **one stacked tensor op per
        cut**: cut ``k`` contributes a ``(P_k, 2, 2)`` stack of its
        distinct rotation matrices, contracted against the bank's cut axis
        so a new ``P_k`` batch axis accumulates.  After ``K`` contractions
        the tensor holds the banks of the whole per-cut-letter *product*;
        the requested settings are sliced out and memoised.  The win grows
        with ``K`` (each per-setting pass re-reads the whole bank;
        benchmarked at K = 4 in ``benchmarks/bench_fragments.py``).
        """
        missing = sorted(
            {tuple(s) for s in settings} - set(self._rotated)
        )
        if not missing:
            return self
        Kn = self.fragment.num_meas
        for s in missing:
            if len(s) != Kn:
                raise CutError("setting tuple length != number of exiting cuts")
        pools = [sorted({s[k] for s in missing}) for k in range(Kn)]
        product_size = 1
        for pool in pools:
            product_size *= len(pool)
        # the stacked pass computes the whole per-cut-letter product; for a
        # sparse request (product much larger than asked) the per-setting
        # loop is cheaper and holds no oversized transient
        if len(missing) == 1 or Kn == 0 or product_size > 2 * len(missing):
            for s in missing:
                self._rotated_columns(s)
            return self
        eye = np.eye(2, dtype=COMPLEX_DTYPE)
        t = self._response_columns()
        for k, pool in enumerate(pools):
            mats = []
            for basis in pool:
                try:
                    rot = MEASUREMENT_ROTATIONS[basis]
                except KeyError:
                    raise CutError(
                        f"invalid measurement basis {basis!r}"
                    ) from None
                mats.append(eye if rot is None else rot)
            M = np.stack(mats).astype(COMPLEX_DTYPE)
            ax = self.fragment.cut_local[k]
            # contract the bank's cut axis with the whole rotation stack at
            # once; restore the fresh 2-axis to the cut position and push
            # the new P_k batch axis to the back
            t = np.tensordot(M, t, axes=([2], [ax]))
            t = np.moveaxis(t, 1, ax + 1)
            t = np.moveaxis(t, 0, -1)
        # t axes: (2,)*n state, 2^{K_prev} batch, P_0, ..., P_{Kn-1}
        for s in missing:
            idx = tuple(pools[k].index(s[k]) for k in range(Kn))
            bank = np.ascontiguousarray(t[(Ellipsis,) + idx])
            bank.setflags(write=False)
            self._rotated[s] = bank
        return self

    def warm(
        self, combos: Iterable[tuple[Sequence[str], Sequence[str]]] = ()
    ) -> "TreeFragmentSimCache":
        """Precompute distributions so later reads are lock-free/thread-safe.

        Distinct settings are rotated in one batched pass
        (:meth:`warm_rotations`) before the per-combo distributions are
        filled in.
        """
        combos = [(tuple(a), tuple(s)) for a, s in combos]
        if combos:
            self.warm_rotations({s for _, s in combos})
        for inits, setting in combos:
            self.probabilities(inits, setting)
        return self

    # ------------------------------------------------------------------
    # Cross-process state transfer (the process-pool executor's substrate).
    def export_arrays(self) -> tuple[dict, dict]:
        """Warmed state as ``(arrays, meta)`` for cross-process transfer.

        ``arrays`` maps stable names to the large read-only banks (the
        response columns, per-setting rotated banks, and memoised flat
        distributions) — suitable for a shared-memory segment so every
        worker process maps one copy.  ``meta`` is a small picklable
        manifest pairing those names back to their dict keys.  ``_joint``
        records are derivable and deliberately not shipped.
        """
        arrays: dict[str, np.ndarray] = {}
        meta = {"dtype": self.dtype.str, "rotated": [], "probs": []}
        if self._columns is not None:
            arrays["columns"] = self._columns
        for j, setting in enumerate(sorted(self._rotated)):
            arrays[f"rot{j}"] = self._rotated[setting]
            meta["rotated"].append(setting)
        for j, key in enumerate(sorted(self._probs)):
            arrays[f"p{j}"] = self._probs[key]
            meta["probs"].append(key)
        return arrays, meta

    @classmethod
    def from_arrays(cls, fragment, arrays, meta) -> "TreeFragmentSimCache":
        """Rebuild a warmed cache around ``fragment`` from exported state.

        The inverse of :meth:`export_arrays`.  ``fragment`` must be the
        worker's own (pickled) copy of the same fragment — backends compare
        cache identity with ``cache.fragment is frag`` before serving from
        it, so the restored cache binds to the consumer's object, not the
        exporter's.
        """
        cache = cls(fragment, dtype=np.dtype(meta["dtype"]))
        cache._columns = arrays.get("columns")
        cache._rotated = {
            tuple(s): arrays[f"rot{j}"] for j, s in enumerate(meta["rotated"])
        }
        cache._probs = {
            (tuple(a), tuple(s)): arrays[f"p{j}"]
            for j, (a, s) in enumerate(meta["probs"])
        }
        return cache

    def rebind(self, fragment) -> "TreeFragmentSimCache":
        """A cache serving ``fragment`` from this cache's warmed state.

        The content-addressed fragment store hands one warmed cache to many
        structurally-identical fragments from different requests; the clone
        *shares* the memo dicts and the response-column box, so anything
        either copy warms benefits both (the cross-request cache-hit law)
        no matter which clone computes first.  Rebinding to the cache's own
        fragment is the identity.
        """
        if fragment is self.fragment:
            return self
        clone = type(self)(fragment, dtype=self.dtype)
        clone._columns_box = self._columns_box
        clone._rotated = self._rotated
        clone._probs = self._probs
        clone._joint = self._joint
        return clone


class TreeCachePool:
    """One per-fragment simulation cache per tree node.

    The tree analogue of handing a single per-pair cache to every consumer:
    ``pool[i]`` is fragment ``i``'s cache (ideal
    :class:`TreeFragmentSimCache` or noisy
    :class:`~repro.cutting.noisy_cache.NoisyTreeFragmentSimCache`,
    whichever the backend's
    :meth:`~repro.backends.base.Backend.make_tree_cache_pool` built), keyed
    by node index — i.e. by the node's entering group, since those are in
    bijection.  An ``N``-node tree therefore costs exactly ``N`` body
    transpiles/simulations however many variants are served.  After
    :meth:`warm` every cache is read-only, so the whole pool is safe to
    share across worker threads — exactly like the per-pair caches.
    Chains are linear trees, so chain pipelines use the same pool class
    (``ChainCachePool`` is an alias).
    """

    __slots__ = ("tree", "caches")

    def __init__(self, tree, caches: Sequence) -> None:
        if len(caches) != tree.num_fragments:
            raise CutError("cache pool needs one cache per tree fragment")
        self.tree = tree
        self.caches = list(caches)

    @property
    def chain(self):
        """Alias of :attr:`tree` (chains are linear trees)."""
        return self.tree

    def __len__(self) -> int:
        return len(self.caches)

    def __getitem__(self, index: int):
        return self.caches[index]

    def __iter__(self):
        return iter(self.caches)

    def warm(self, variants_per_fragment: Sequence[Sequence[tuple]]) -> "TreeCachePool":
        """Warm every fragment's cache with its variant combos.

        ``None`` entries mark fragments skipped by a partial pass (see
        :func:`repro.cutting.execution.run_chain_fragments`) — their caches
        are left cold.
        """
        if len(variants_per_fragment) != len(self.caches):
            raise CutError("need one variant list per fragment")
        for cache, combos in zip(self.caches, variants_per_fragment):
            if combos is not None:
                cache.warm(combos)
        return self


#: Chains are linear trees; the chain names remain as aliases so existing
#: imports and isinstance checks keep working on the single tree engine.
ChainFragmentSimCache = TreeFragmentSimCache
ChainCachePool = TreeCachePool
