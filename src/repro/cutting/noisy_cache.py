"""Shared-body simulation cache for *noisy* (density-matrix) backends.

:class:`~repro.cutting.cache.FragmentSimCache` collapsed the ideal backend's
``3^K + 6^K`` fragment-variant simulations into one body simulation plus a
``2^K``-column linear response.  The noisy path — the one that produces the
paper's Fig. 3 accuracy and Fig. 5 hardware numbers — still paid a full
transpile *and* a full density-matrix evolution per variant.  Both are
redundant, for the same structural reason:

* **one transpile per fragment body** — variant circuits differ from the
  body only by terminal measurement rotations (upstream) or initial
  preparation gates (downstream), fenced off by a ``barrier``.  The
  transpile pipeline never optimises across a fence, so the physical
  variant circuit is *exactly* ``transpile(body)`` plus the lowered variant
  gates (gate for gate, angle for angle — pinned by
  ``tests/test_noisy_fast_path_equivalence.py``);
* **upstream: one noisy evolution** — the body's output density matrix is
  evolved once; each of the ``3^K`` settings conjugates it by its lowered
  terminal rotations (with their own gate noise) — a handful of single-qubit
  operations instead of a full re-evolution;
* **downstream: a ``4^K``-column superoperator linear response** — quantum
  channels are linear in ρ, and a 2×2 density matrix lives in the real span
  of the four states ``{|0⟩⟨0|, |1⟩⟨1|, |+⟩⟨+|, |y+⟩⟨y+|}``.  The noisy body
  channel is evolved once over the ``4^K`` product initialisations of that
  Hermitian basis (a single batched evolution), and the *noisy* prepared
  state of any preparation tuple — computed exactly, including the
  preparation gates' own noise, from tiny 2×2 evolutions — is a real linear
  combination of them.  Any of the ``6^K`` (or reduced) preparation
  variants is then one GEMV over the cached response columns.

Net effect: ``3^K + 6^K`` transpiles + evolutions become ``2`` transpiles +
``1 + 4^K`` evolutions per (pair, device), matching the per-variant
reference path to ≤ 1e-9.  This compounds with the paper's neglect scheme:
"Efficient Quantum Circuit Cutting by Neglecting Basis Elements" shrinks
the variant *set*; this cache makes each remaining variant nearly free.

The cache is consumed by
:meth:`repro.backends.fake_hardware.FakeHardwareBackend.run_variants`, by
:func:`repro.parallel.executor.run_fragments_parallel` (via
:meth:`~repro.backends.base.Backend.make_variant_cache`), and by
:func:`repro.core.pipeline.cut_and_run`, which shares one instance across
pilot, golden and production stages.  After :meth:`warm` the cache is
read-only and safe to share across worker threads.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.circuits.circuit import Circuit
from repro.circuits.gates import Gate
from repro.circuits.instruction import Instruction
from repro.config import COMPLEX_DTYPE
from repro.cutting.fragments import FragmentPair
from repro.cutting.variants import PREPARATION_STATES
from repro.exceptions import CutError
from repro.backends.fake_hardware import finalize_physical_probs
from repro.linalg.channels import apply_channel
from repro.sim.density import (
    evolve_noisy_tensor,
    probabilities_from_tensor,
    zero_density_tensor,
)
from repro.transpile.basis import decompose_to_basis
from repro.transpile.coupling import CouplingMap
from repro.transpile.passes import cancel_adjacent_inverses, merge_single_qubit_runs
from repro.transpile.pipeline import transpile

__all__ = [
    "HERMITIAN_BASIS_STATES",
    "NoisyChainFragmentSimCache",
    "NoisyFragmentSimCache",
    "NoisyTreeFragmentSimCache",
]

_SQ2 = 1.0 / np.sqrt(2.0)

#: The four single-qubit states whose real span is all of Herm(2):
#: ``|0⟩⟨0|, |1⟩⟨1|, |+⟩⟨+|, |y+⟩⟨y+|``.  Each is a genuine density matrix,
#: so every response column below is a physically valid noisy run.
HERMITIAN_BASIS_STATES: tuple[np.ndarray, ...] = tuple(
    np.outer(v, v.conj()).astype(COMPLEX_DTYPE)
    for v in (
        np.array([1.0, 0.0]),
        np.array([0.0, 1.0]),
        np.array([_SQ2, _SQ2]),
        np.array([_SQ2, 1j * _SQ2]),
    )
)
for _b in HERMITIAN_BASIS_STATES:
    _b.setflags(write=False)


def _expand_in_basis(rho: np.ndarray) -> np.ndarray:
    """Real coefficients of a 2×2 Hermitian matrix over the state basis.

    With ``ρ = (t·I + x·X + y·Y + z·Z) / 2`` the expansion over
    :data:`HERMITIAN_BASIS_STATES` is ``c = (c₀, c₁, x, y)`` with
    ``c₀ = (t − x − y + z)/2`` and ``c₁ = (t − x − y − z)/2`` — derived by
    matching Pauli components; the coefficients sum to ``tr ρ``.
    """
    t = float(rho[0, 0].real + rho[1, 1].real)
    z = float(rho[0, 0].real - rho[1, 1].real)
    x = float(2.0 * rho[0, 1].real)
    y = float(-2.0 * rho[0, 1].imag)
    return np.array(
        [(t - x - y + z) / 2.0, (t - x - y - z) / 2.0, x, y], dtype=np.float64
    )


def _lower_1q(circuit: Circuit) -> Circuit:
    """Lower a circuit of bare 1q gates exactly as the transpile tail does.

    ``decompose → merge → cancel`` is the portion of the pipeline a fenced
    run of single-qubit gates experiences (routing maps wires but inserts
    nothing for 1q gates), so the emitted ``rz``/``sx`` sequence is
    gate-identical to what :func:`repro.transpile.pipeline.transpile`
    produces for those gates inside a full variant circuit.
    """
    return cancel_adjacent_inverses(merge_single_qubit_runs(decompose_to_basis(circuit)))


class NoisyFragmentSimCache:
    """Lazy per-(pair, device) cache of noisy fragment-body evolutions.

    Parameters
    ----------
    pair:
        The fragment bipartition.
    coupling:
        Physical topology of the target device (drives the one-time
        transpile of each body).
    noise_model:
        The device's :class:`~repro.noise.model.NoiseModel`; gate channels
        are interleaved into the cached evolutions and the readout
        confusion matrices are applied per served distribution, exactly as
        the per-variant execution path would.

    ``stats`` counts the expensive operations actually performed —
    ``transpiles`` (≤ 2: one per fragment body), ``up_evolutions`` (≤ 1)
    and ``down_columns`` (≤ ``4^K``, all evolved in one batched pass) — so
    tests can pin the ``2 + (1 + 4^K)`` law.
    """

    __slots__ = (
        "pair",
        "coupling",
        "noise_model",
        "stats",
        "_up",
        "_down",
        "_up_probs",
        "_up_phys",
        "_down_probs",
        "_down_phys",
        "_prep_lowered",
        "_prep_coeff",
    )

    def __init__(
        self,
        pair: FragmentPair,
        coupling: CouplingMap,
        noise_model,
    ) -> None:
        self.pair = pair
        self.coupling = coupling
        self.noise_model = noise_model
        self.stats = {"transpiles": 0, "up_evolutions": 0, "down_columns": 0}
        self._up: "tuple | None" = None  # (physical, layout, rho_tensor)
        self._down: "tuple | None" = None  # (physical, layout, raw_diag (4^K, 2^n))
        self._up_probs: dict[tuple[str, ...], np.ndarray] = {}
        self._up_phys: dict[tuple[str, ...], Circuit] = {}
        self._down_probs: dict[tuple[str, ...], np.ndarray] = {}
        self._down_phys: dict[tuple[str, ...], Circuit] = {}
        self._prep_lowered: dict[str, Circuit] = {}
        self._prep_coeff: dict[tuple[str, int], np.ndarray] = {}

    # ------------------------------------------------------------- helpers
    def _finalize(
        self, probs: np.ndarray, layout: Sequence[int], logical_width: int
    ) -> np.ndarray:
        """Clip/trace-check a raw physical diagonal, then the shared
        readout → un-permute → marginalise tail of per-variant execution."""
        probs = np.clip(probs, 0.0, None)
        total = probs.sum()
        if abs(total - 1.0) > 1e-6:
            # CPTP channels preserve trace; drift means a bug upstream.
            raise RuntimeError(f"noisy simulation lost trace: {total}")
        probs = finalize_physical_probs(
            probs / total, self.noise_model.readout, layout, logical_width
        )
        probs.setflags(write=False)
        return probs

    def _fence(self, layout: Sequence[int], logical_width: int) -> Instruction:
        """The body/variant barrier as it appears in the physical circuit."""
        return Instruction(
            Gate("barrier"), tuple(layout[q] for q in range(logical_width))
        )

    # ------------------------------------------------------------- upstream
    def _upstream_state(self) -> tuple:
        """Transpile + evolve the noisy upstream body (once)."""
        if self._up is None:
            physical, layout = transpile(self.pair.upstream, self.coupling)
            self.stats["transpiles"] += 1
            n = physical.num_qubits
            t = evolve_noisy_tensor(
                zero_density_tensor(n), physical, self.noise_model, n
            )
            self.stats["up_evolutions"] += 1
            self._up = (physical, layout, t)
        return self._up

    def _rotation_circuit(
        self, setting: tuple[str, ...], layout: Sequence[int], n_phys: int
    ) -> Circuit:
        """Lowered terminal rotations of one setting, on physical wires."""
        rot = Circuit(n_phys, name="rot")
        for k, basis in enumerate(setting):
            p = layout[self.pair.up_cut_local[k]]
            if basis == "X":
                rot.h(p)
            elif basis == "Y":
                rot.sdg(p).h(p)
            elif basis != "Z":
                raise CutError(f"invalid measurement basis {basis!r}")
        return _lower_1q(rot)

    def upstream_probabilities(self, setting: Sequence[str]) -> np.ndarray:
        """Noisy outcome distribution of one measurement setting (logical)."""
        key = tuple(setting)
        out = self._up_probs.get(key)
        if out is not None:
            return out
        if len(key) != self.pair.num_cuts:
            raise CutError("setting tuple length != number of cuts")
        physical, layout, rho = self._upstream_state()
        n = physical.num_qubits
        rot = self._rotation_circuit(key, layout, n)
        t = evolve_noisy_tensor(rho, rot, self.noise_model, n)
        out = self._finalize(
            probabilities_from_tensor(t, n, clip=False), layout, self.pair.n_up
        )
        self._up_probs[key] = out
        return out

    def upstream_physical(self, setting: Sequence[str]) -> Circuit:
        """The physical circuit of one upstream variant (for timing/metadata).

        Identical, instruction for instruction, to transpiling the variant
        circuit from scratch — the factorisation invariant of the fenced
        transpile pipeline.
        """
        key = tuple(setting)
        out = self._up_phys.get(key)
        if out is None:
            physical, layout, _ = self._upstream_state()
            rot = self._rotation_circuit(key, layout, physical.num_qubits)
            # named like the logical variant so virtual-clock ledger labels
            # match per-circuit execution
            out = Circuit(
                physical.num_qubits,
                name=f"{self.pair.upstream.name}[{','.join(key)}]",
            )
            for inst in physical:
                out.append(inst)
            out.append(self._fence(layout, self.pair.n_up))
            for inst in rot:
                out.append(inst)
            self._up_phys[key] = out
        return out

    # ----------------------------------------------------------- downstream
    def _downstream_state(self) -> tuple:
        """Transpile the downstream body and evolve the 4^K response bank."""
        if self._down is None:
            pair = self.pair
            physical, layout = transpile(pair.downstream, self.coupling)
            self.stats["transpiles"] += 1
            n = physical.num_qubits
            K = pair.num_cuts
            B = 1 << (2 * K)
            init = np.zeros((2,) * (2 * n) + (B,), dtype=COMPLEX_DTYPE)
            # preparation gates act before any routing SWAP, so cut wires sit
            # at their logical physical positions
            cuts = list(pair.down_cut_local)
            sl: list = [0] * (2 * n)
            for q in cuts:
                sl[q] = slice(None)
                sl[q + n] = slice(None)
            order = sorted(range(K), key=lambda k: cuts[k])
            for j in range(B):
                operands: list = []
                for a, k in enumerate(order):
                    d = (j >> (2 * k)) & 3
                    operands += [HERMITIAN_BASIS_STATES[d], [a, K + a]]
                block = np.einsum(*operands, list(range(2 * K)))
                init[tuple(sl) + (j,)] = block
            t = evolve_noisy_tensor(init, physical, self.noise_model, n)
            self.stats["down_columns"] += B
            self._down = (
                physical,
                layout,
                probabilities_from_tensor(t, n, clip=False),
            )
        return self._down

    def _lowered_prep(self, code: str) -> Circuit:
        """One preparation code's gates through the 1q transpile tail."""
        out = self._prep_lowered.get(code)
        if out is None:
            try:
                gates = PREPARATION_STATES[code]
            except KeyError:
                raise CutError(f"invalid preparation code {code!r}") from None
            qc = Circuit(1)
            for g in gates:
                qc.add_gate(g, (0,))
            out = _lower_1q(qc)
            self._prep_lowered[code] = out
        return out

    def _prep_coefficients(self, code: str, qubit: int) -> np.ndarray:
        """Hermitian-basis expansion of the *noisy* prepared state.

        The 2×2 state after the lowered preparation gates **and their noise
        channels** on the given physical wire — preparation pulses are noisy
        operations too, and the linear response must carry that noise to
        match per-variant execution exactly.
        """
        key = (code, qubit)
        out = self._prep_coeff.get(key)
        if out is None:
            rho = np.zeros((2, 2), dtype=COMPLEX_DTYPE)
            rho[0, 0] = 1.0
            for inst in self._lowered_prep(code):
                m = inst.gate.matrix()
                rho = m @ rho @ m.conj().T
                for channel, _ in self.noise_model.channels_for(
                    inst.name, (qubit,)
                ):
                    rho = apply_channel(rho, channel, (0,), 1)
            out = _expand_in_basis(rho)
            out.setflags(write=False)
            self._prep_coeff[key] = out
        return out

    def _init_coefficients(self, inits: tuple[str, ...]) -> np.ndarray:
        """Response-column coefficients of one preparation tuple (length 4^K)."""
        if len(inits) != self.pair.num_cuts:
            raise CutError("init tuple length != number of cuts")
        K = self.pair.num_cuts
        js = np.arange(1 << (2 * K))
        c = np.ones(js.size, dtype=np.float64)
        for k, code in enumerate(inits):
            ck = self._prep_coefficients(code, self.pair.down_cut_local[k])
            c *= ck[(js >> (2 * k)) & 3]
        return c

    def downstream_probabilities(self, inits: Sequence[str]) -> np.ndarray:
        """Noisy output distribution of one preparation tuple (logical)."""
        key = tuple(inits)
        out = self._down_probs.get(key)
        if out is None:
            _, layout, diag = self._downstream_state()
            raw = self._init_coefficients(key) @ diag
            out = self._finalize(raw, layout, self.pair.n_down)
            self._down_probs[key] = out
        return out

    def downstream_physical(self, inits: Sequence[str]) -> Circuit:
        """The physical circuit of one downstream variant."""
        key = tuple(inits)
        out = self._down_phys.get(key)
        if out is None:
            pair = self.pair
            physical, layout, _ = self._downstream_state()
            prep = Circuit(physical.num_qubits)
            for k, code in enumerate(key):
                q = pair.down_cut_local[k]
                for g in PREPARATION_STATES[code]:
                    prep.add_gate(g, (q,))
            out = Circuit(
                physical.num_qubits,
                name=f"{pair.downstream.name}[{','.join(key)}]",
            )
            for inst in _lower_1q(prep):
                out.append(inst)
            out.append(
                Instruction(Gate("barrier"), tuple(range(pair.n_down)))
            )
            for inst in physical:
                out.append(inst)
            self._down_phys[key] = out
        return out

    # ---------------------------------------------------------------- misc
    def upstream_layout(self) -> list[int]:
        """Final logical→physical layout of the transpiled upstream body."""
        return list(self._upstream_state()[1])

    def downstream_layout(self) -> list[int]:
        """Final logical→physical layout of the transpiled downstream body."""
        return list(self._downstream_state()[1])

    def warm(
        self,
        settings: Iterable[Sequence[str]] = (),
        inits: Iterable[Sequence[str]] = (),
    ) -> "NoisyFragmentSimCache":
        """Precompute entries so later reads are lock-free and thread-safe."""
        for s in settings:
            self.upstream_probabilities(s)
            self.upstream_physical(s)
        for i in inits:
            self.downstream_probabilities(i)
            self.downstream_physical(i)
        return self


class NoisyTreeFragmentSimCache:
    """Lazy per-(tree fragment, device) cache of noisy body evolutions.

    The topology-general version of :class:`NoisyFragmentSimCache`: one
    fragment may both receive preparations (its entering cut group) and
    measure cut wires (the flat union of its exiting groups — one group on
    a chain interior, several at a tree branching node).  The same two
    linear-response arguments compose:

    * **one transpile per fragment body** — preparation gates and terminal
      rotations are fenced off, so the physical variant is exactly
      ``lowered preps + transpile(body) + lowered rotations``;
    * the body channel is evolved **once**, batched over the ``4^{K_prev}``
      Hermitian cut-basis product initialisations of the entering wires
      (``K_prev = 0`` degenerates to the single upstream-body evolution);
    * each measurement setting conjugates the *whole cached batch* by its
      lowered terminal rotations (with their own gate noise) — one batched
      rotation evolution per distinct setting, memoised;
    * any preparation tuple is a real linear combination of the rotated
      batch's diagonals, with coefficients from exact noisy 2×2 prep-state
      evolutions.

    Cost per fragment: ``6^{K_prev} · 3^{K}`` transpiles + evolutions become
    ``1`` transpile + ``4^{K_prev}`` body evolutions + ``3^{K}`` batched
    rotation passes.  Across an ``N``-node tree (chains included) that is
    exactly ``N`` body transpiles — the law pinned by
    ``tests/test_noisy_fast_path_equivalence.py`` and
    ``tests/test_tree_equivalence.py``.
    """

    __slots__ = (
        "fragment",
        "coupling",
        "noise_model",
        "stats",
        "_body_box",
        "_rotated_diag",
        "_probs",
        "_phys",
        "_prep_lowered",
        "_prep_coeff",
    )

    def __init__(self, fragment, coupling: CouplingMap, noise_model) -> None:
        self.fragment = fragment
        self.coupling = coupling
        self.noise_model = noise_model
        self.stats = {
            "transpiles": 0,
            "body_evolutions": 0,
            "rotation_evolutions": 0,
        }
        #: one-slot shared box for (physical, layout, rho batch) — a box,
        #: not a plain attribute, so rebound clones see a warm that happens
        #: after the rebind (the box is shared, the value inside mutates)
        self._body_box: list = [None]
        #: setting -> raw diagonals, shape (4^{K_prev}, 2^{n_phys})
        self._rotated_diag: dict[tuple[str, ...], np.ndarray] = {}
        self._probs: dict[tuple, np.ndarray] = {}
        self._phys: dict[tuple, Circuit] = {}
        self._prep_lowered: dict[str, Circuit] = {}
        self._prep_coeff: dict[tuple[str, int], np.ndarray] = {}

    # ------------------------------------------------------------- helpers
    _finalize = NoisyFragmentSimCache._finalize
    _lowered_prep = NoisyFragmentSimCache._lowered_prep
    _prep_coefficients = NoisyFragmentSimCache._prep_coefficients

    @property
    def _body(self) -> "tuple | None":
        return self._body_box[0]

    @_body.setter
    def _body(self, value) -> None:
        self._body_box[0] = value

    # ------------------------------------------------------------------
    def _body_state(self) -> tuple:
        """Transpile the body and evolve the Hermitian response batch once."""
        if self._body is None:
            frag = self.fragment
            physical, layout = transpile(frag.circuit, self.coupling)
            self.stats["transpiles"] += 1
            n = physical.num_qubits
            Kp = frag.num_prep
            B = 1 << (2 * Kp)
            init = np.zeros((2,) * (2 * n) + (B,), dtype=COMPLEX_DTYPE)
            # preparation gates act before any routing SWAP, so entering
            # cut wires sit at their logical physical positions
            preps = list(frag.prep_local)
            sl: list = [0] * (2 * n)
            for q in preps:
                sl[q] = slice(None)
                sl[q + n] = slice(None)
            order = sorted(range(Kp), key=lambda k: preps[k])
            for j in range(B):
                if Kp:
                    operands: list = []
                    for a, k in enumerate(order):
                        d = (j >> (2 * k)) & 3
                        operands += [HERMITIAN_BASIS_STATES[d], [a, Kp + a]]
                    init[tuple(sl) + (j,)] = np.einsum(
                        *operands, list(range(2 * Kp))
                    )
                else:
                    init[tuple(sl) + (j,)] = 1.0
            t = evolve_noisy_tensor(init, physical, self.noise_model, n)
            self.stats["body_evolutions"] += B
            self._body = (physical, layout, t)
        return self._body

    def _rotation_circuit(
        self, setting: tuple[str, ...], layout: Sequence[int], n_phys: int
    ) -> Circuit:
        """Lowered terminal rotations of one setting, on physical wires."""
        rot = Circuit(n_phys, name="rot")
        for k, basis in enumerate(setting):
            p = layout[self.fragment.cut_local[k]]
            if basis == "X":
                rot.h(p)
            elif basis == "Y":
                rot.sdg(p).h(p)
            elif basis != "Z":
                raise CutError(f"invalid measurement basis {basis!r}")
        return _lower_1q(rot)

    def _setting_diag(self, setting: tuple[str, ...]) -> np.ndarray:
        """Raw physical diagonals of the rotated response batch."""
        out = self._rotated_diag.get(setting)
        if out is not None:
            return out
        if len(setting) != self.fragment.num_meas:
            raise CutError("setting tuple length != number of exiting cuts")
        physical, layout, rho = self._body_state()
        n = physical.num_qubits
        if setting:
            rot = self._rotation_circuit(setting, layout, n)
            rho = evolve_noisy_tensor(rho, rot, self.noise_model, n)
            self.stats["rotation_evolutions"] += 1
        out = probabilities_from_tensor(rho, n, clip=False)
        out = out.reshape(1 << (2 * self.fragment.num_prep), 1 << n)
        out.setflags(write=False)
        self._rotated_diag[setting] = out
        return out

    def _init_coefficients(self, inits: tuple[str, ...]) -> np.ndarray:
        """Response-row coefficients of one preparation tuple (length 4^{K_prev})."""
        if len(inits) != self.fragment.num_prep:
            raise CutError("init tuple length != number of entering cuts")
        Kp = self.fragment.num_prep
        js = np.arange(1 << (2 * Kp))
        c = np.ones(js.size, dtype=np.float64)
        for k, code in enumerate(inits):
            ck = self._prep_coefficients(code, self.fragment.prep_local[k])
            c *= ck[(js >> (2 * k)) & 3]
        return c

    def probabilities(
        self, inits: Sequence[str], setting: Sequence[str]
    ) -> np.ndarray:
        """Noisy logical distribution of one ``(inits, setting)`` variant."""
        key = (tuple(inits), tuple(setting))
        out = self._probs.get(key)
        if out is None:
            _, layout, _ = self._body_state()
            raw = self._init_coefficients(key[0]) @ self._setting_diag(key[1])
            out = self._finalize(raw, layout, self.fragment.num_qubits)
            self._probs[key] = out
        return out

    def physical(self, inits: Sequence[str], setting: Sequence[str]) -> Circuit:
        """The physical circuit of one chain variant (for timing/metadata).

        Identical, instruction for instruction, to transpiling the logical
        :func:`~repro.cutting.variants.chain_variant` from scratch — the
        fenced-transpile factorisation invariant.
        """
        key = (tuple(inits), tuple(setting))
        out = self._phys.get(key)
        if out is None:
            frag = self.fragment
            physical, layout, _ = self._body_state()
            n = physical.num_qubits
            prep = Circuit(n)
            for k, code in enumerate(key[0]):
                q = frag.prep_local[k]
                for g in PREPARATION_STATES[code]:
                    prep.add_gate(g, (q,))
            label = f"{','.join(key[0])}|{','.join(key[1])}"
            out = Circuit(n, name=f"{frag.circuit.name}[{label}]")
            for inst in _lower_1q(prep):
                out.append(inst)
            if key[0]:
                out.append(
                    Instruction(Gate("barrier"), tuple(range(frag.num_qubits)))
                )
            for inst in physical:
                out.append(inst)
            if key[1]:
                out.append(
                    Instruction(
                        Gate("barrier"),
                        tuple(layout[q] for q in range(frag.num_qubits)),
                    )
                )
            for inst in self._rotation_circuit(key[1], layout, n):
                out.append(inst)
            self._phys[key] = out
        return out

    def layout(self) -> list[int]:
        """Final logical→physical layout of the transpiled body."""
        return list(self._body_state()[1])

    def warm(
        self, combos: Iterable[tuple[Sequence[str], Sequence[str]]] = ()
    ) -> "NoisyTreeFragmentSimCache":
        """Precompute entries so later reads are lock-free and thread-safe."""
        for inits, setting in combos:
            self.probabilities(inits, setting)
            self.physical(inits, setting)
        return self

    # ------------------------------------------------------------------
    # Cross-process state transfer (the process-pool executor's substrate).
    def export_arrays(self) -> tuple[dict, dict]:
        """Warmed state as ``(arrays, meta)`` for cross-process transfer.

        ``arrays`` holds the large numeric banks — the batched body
        response tensor, the per-setting rotated diagonals, and memoised
        logical distributions — which the process pool places in shared
        memory so the one-transpile-per-body law survives fan-out: workers
        map the evolved body instead of re-transpiling and re-evolving it.
        ``meta`` is a small picklable manifest carrying the transpiled
        physical circuit, its layout, and the memoised variant circuits.
        """
        arrays: dict[str, np.ndarray] = {}
        meta: dict = {"body": None, "rotated": [], "probs": [], "phys": []}
        if self._body is not None:
            physical, layout, rho = self._body
            arrays["body_rho"] = rho
            meta["body"] = (physical, list(layout))
        for j, setting in enumerate(sorted(self._rotated_diag)):
            arrays[f"diag{j}"] = self._rotated_diag[setting]
            meta["rotated"].append(setting)
        for j, key in enumerate(sorted(self._probs)):
            arrays[f"p{j}"] = self._probs[key]
            meta["probs"].append(key)
        meta["phys"] = sorted(self._phys.items())
        return arrays, meta

    @classmethod
    def from_arrays(
        cls, fragment, coupling, noise_model, arrays, meta
    ) -> "NoisyTreeFragmentSimCache":
        """Rebuild a warmed cache around ``fragment`` from exported state.

        The inverse of :meth:`export_arrays`.  The restored cache performs
        **zero** transpiles (``stats`` start at zero and stay there for any
        already-warmed variant) — the assertion behind the per-worker
        warm-once tests.  Unwarmed variants still work: the body tensor
        travels with the export, so a cold setting costs one rotation
        evolution, never a new transpile.
        """
        cache = cls(fragment, coupling, noise_model)
        if meta["body"] is not None:
            physical, layout = meta["body"]
            cache._body = (physical, list(layout), arrays["body_rho"])
        cache._rotated_diag = {
            tuple(s): arrays[f"diag{j}"] for j, s in enumerate(meta["rotated"])
        }
        cache._probs = {
            (tuple(a), tuple(s)): arrays[f"p{j}"]
            for j, (a, s) in enumerate(meta["probs"])
        }
        cache._phys = {
            (tuple(a), tuple(s)): circ for (a, s), circ in meta["phys"]
        }
        return cache

    def rebind(self, fragment) -> "NoisyTreeFragmentSimCache":
        """A cache serving ``fragment`` from this cache's warmed state.

        Used by the content-addressed fragment store to hand one warmed
        device cache to structurally-identical fragments from different
        requests.  Memo dicts, ``stats`` *and the body box* are shared, so
        warming accumulates across requests no matter which clone computes
        first, and the transpile count stays one per distinct body however
        many requests hit it.  Rebinding to the cache's own fragment is the
        identity.
        """
        if fragment is self.fragment:
            return self
        clone = type(self)(fragment, self.coupling, self.noise_model)
        clone.stats = self.stats
        clone._body_box = self._body_box
        clone._rotated_diag = self._rotated_diag
        clone._probs = self._probs
        clone._phys = self._phys
        clone._prep_lowered = self._prep_lowered
        clone._prep_coeff = self._prep_coeff
        return clone


#: Chains are linear trees; the chain name remains an alias so existing
#: imports and isinstance checks keep working on the single tree engine.
NoisyChainFragmentSimCache = NoisyTreeFragmentSimCache
