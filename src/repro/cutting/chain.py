"""Multi-fragment chain cutting (>2 partitions).

A :class:`FragmentChain` generalises :class:`~repro.cutting.fragments.FragmentPair`
to an ordered sequence of ``N ≥ 2`` fragments connected by ``N − 1`` *cut
groups*: cut group ``g`` severs the wires flowing from fragment ``g`` into
fragment ``g + 1``.  The first fragment only *measures* its cut wires (in
tomography bases, exactly like a pair's upstream half), the last fragment
only *receives preparations* (like a pair's downstream half), and every
interior fragment does both — it is downstream of group ``g − 1`` *and*
upstream of group ``g`` simultaneously, so its circuit variants combine a
preparation tuple with a measurement-setting tuple.

:func:`partition_chain` builds a chain by repeated bipartition: the circuit
is split along the first :class:`~repro.cutting.cut.CutSpec`, the downstream
remainder along the second, and so on.  Every spec is given in the
coordinates of the **original** circuit; the function translates wires and
instruction indices into each successive remainder via the book-keeping
:func:`~repro.cutting.fragments.bipartition` records
(``down_out_original`` / ``down_node_indices``).  A ``CutError`` is raised
when the specs do not induce a chain — e.g. when a group-``g`` cut wire
skips fragment ``g + 1`` entirely (that would be a tree, not a chain).

A two-fragment chain is exactly a :class:`FragmentPair` in chain clothing;
``tests/test_multi_fragment_equivalence.py`` pins that the generalised
reconstruction agrees with the pair path on it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.circuits.circuit import Circuit
from repro.cutting.cut import CutSpec
from repro.cutting.fragments import FragmentPair, bipartition
from repro.exceptions import CutError

__all__ = [
    "ChainFragment",
    "FragmentChain",
    "chain_from_pair",
    "partition_chain",
]


@dataclass
class ChainFragment:
    """One link of a fragment chain.

    Attributes
    ----------
    circuit:
        The fragment's local circuit.
    index:
        Position in the chain (0-based).
    prep_local:
        Local qubits receiving preparation states, ordered by cut index of
        group ``index − 1`` (empty for the first fragment).
    cut_local:
        Local qubits measured in tomography bases, ordered by cut index of
        group ``index`` (empty for the last fragment).
    out_local:
        Local output qubits (everything not in ``cut_local``), ordered by
        original label.
    out_original:
        Original-circuit labels of the outputs (same order as ``out_local``).
    """

    circuit: Circuit
    index: int
    prep_local: list[int]
    cut_local: list[int]
    out_local: list[int]
    out_original: list[int]

    @property
    def num_qubits(self) -> int:
        return self.circuit.num_qubits

    @property
    def n_out(self) -> int:
        return len(self.out_local)

    @property
    def num_prep(self) -> int:
        return len(self.prep_local)

    @property
    def num_meas(self) -> int:
        return len(self.cut_local)


@dataclass
class FragmentChain:
    """An ordered chain of fragments connected by cut groups."""

    #: the fragments, first (pure upstream) to last (pure downstream)
    fragments: list[ChainFragment]
    #: number of cuts per group; ``group_sizes[g]`` links fragment g → g+1
    group_sizes: list[int]
    #: the cut specs the chain was built from (original-circuit coordinates)
    specs: list[CutSpec] = field(repr=False, default_factory=list)

    def __post_init__(self) -> None:
        if len(self.fragments) < 2:
            raise CutError("a fragment chain needs at least two fragments")
        if len(self.group_sizes) != len(self.fragments) - 1:
            raise CutError("chain needs one cut group per adjacent pair")
        for i, frag in enumerate(self.fragments):
            want_prep = 0 if i == 0 else self.group_sizes[i - 1]
            want_meas = 0 if i == len(self.fragments) - 1 else self.group_sizes[i]
            if frag.num_prep != want_prep or frag.num_meas != want_meas:
                raise CutError(
                    f"fragment {i} has {frag.num_prep} prep / {frag.num_meas} "
                    f"cut wires, expected {want_prep}/{want_meas}"
                )

    @property
    def num_fragments(self) -> int:
        return len(self.fragments)

    @property
    def num_groups(self) -> int:
        return len(self.group_sizes)

    @property
    def total_cuts(self) -> int:
        return sum(self.group_sizes)

    def output_order(self) -> list[int]:
        """Original qubit labels, fragment by fragment, first fragment first."""
        out: list[int] = []
        for frag in self.fragments:
            out.extend(frag.out_original)
        return out

    def describe(self) -> str:
        widths = "+".join(str(f.num_qubits) for f in self.fragments)
        groups = ",".join(str(k) for k in self.group_sizes)
        return (
            f"FragmentChain(N={self.num_fragments}, widths {widths}q, "
            f"cut groups [{groups}])"
        )


def chain_from_pair(pair: FragmentPair) -> FragmentChain:
    """View a :class:`FragmentPair` as a two-fragment chain."""
    first = ChainFragment(
        circuit=pair.upstream,
        index=0,
        prep_local=[],
        cut_local=list(pair.up_cut_local),
        out_local=list(pair.up_out_local),
        out_original=list(pair.up_out_original),
    )
    last = ChainFragment(
        circuit=pair.downstream,
        index=1,
        prep_local=list(pair.down_cut_local),
        cut_local=[],
        out_local=list(pair.down_out_local),
        out_original=list(pair.down_out_original),
    )
    specs = [pair.spec] if pair.spec is not None else []
    return FragmentChain(
        fragments=[first, last], group_sizes=[pair.num_cuts], specs=specs
    )


def partition_chain(
    circuit: Circuit, specs: Sequence[CutSpec]
) -> FragmentChain:
    """Split ``circuit`` into an ``len(specs) + 1``-fragment chain.

    Every spec is expressed in **original-circuit** coordinates (wire labels
    and instruction indices of ``circuit``); the bipartition cascade
    translates them stage by stage.  Stage ``g`` cuts the current remainder
    along ``specs[g]``: the upstream half becomes fragment ``g``, the
    downstream half the next remainder.  The chain condition — every
    group-``g`` cut wire must continue *into fragment g+1* (not skip ahead)
    — is validated at each stage.
    """
    specs = list(specs)
    if not specs:
        raise CutError("partition_chain needs at least one cut spec")

    remainder = circuit
    #: remainder-local wire -> original wire label
    wire_orig = list(range(circuit.num_qubits))
    #: remainder-local instruction index -> original instruction index
    inst_orig = list(range(len(circuit)))

    fragments: list[ChainFragment] = []
    group_sizes: list[int] = []
    prev_cut_wires: list[int] = []  # remainder-local wires fed by group g-1

    for g, spec in enumerate(specs):
        local_spec = _translate_spec(spec, g, wire_orig, inst_orig)
        pair = bipartition(remainder, local_spec)

        q_up = sorted(
            set(pair.up_out_original) | {c.wire for c in local_spec.cuts}
        )
        up_map = {w: i for i, w in enumerate(q_up)}
        prep_local: list[int] = []
        for k, w in enumerate(prev_cut_wires):
            if w not in up_map:
                raise CutError(
                    f"cut {k} of group {g - 1} feeds a wire that skips "
                    f"fragment {g}; the specs induce a tree, not a chain"
                )
            prep_local.append(up_map[w])

        fragments.append(
            ChainFragment(
                circuit=pair.upstream,
                index=g,
                prep_local=prep_local,
                cut_local=list(pair.up_cut_local),
                out_local=list(pair.up_out_local),
                out_original=[wire_orig[w] for w in pair.up_out_original],
            )
        )
        group_sizes.append(pair.num_cuts)

        prev_cut_wires = list(pair.down_cut_local)
        inst_orig = [inst_orig[i] for i in pair.down_node_indices]
        wire_orig = [wire_orig[w] for w in pair.down_out_original]
        remainder = pair.downstream

    fragments.append(
        ChainFragment(
            circuit=remainder,
            index=len(specs),
            prep_local=prev_cut_wires,
            cut_local=[],
            out_local=list(range(remainder.num_qubits)),
            out_original=list(wire_orig),
        )
    )
    return FragmentChain(
        fragments=fragments, group_sizes=group_sizes, specs=specs
    )


def _translate_spec(
    spec: CutSpec, stage: int, wire_orig: list[int], inst_orig: list[int]
) -> CutSpec:
    """Re-express an original-coordinate spec in remainder-local coordinates."""
    from repro.cutting.cut import CutPoint

    wire_map = {orig: loc for loc, orig in enumerate(wire_orig)}
    inst_map = {orig: loc for loc, orig in enumerate(inst_orig)}
    points = []
    for c in spec.cuts:
        if c.wire not in wire_map:
            raise CutError(
                f"cut group {stage}: wire {c.wire} was consumed by an "
                "earlier fragment"
            )
        if c.gate_index not in inst_map:
            raise CutError(
                f"cut group {stage}: instruction {c.gate_index} was consumed "
                "by an earlier fragment"
            )
        points.append(CutPoint(wire_map[c.wire], inst_map[c.gate_index]))
    return CutSpec(tuple(points))
