"""Multi-fragment chain cutting (>2 partitions) — the one-child tree case.

A :class:`FragmentChain` is the degenerate :class:`~repro.cutting.tree.FragmentTree`
in which every node has at most one child: cut group ``g`` severs the wires
flowing from fragment ``g`` into fragment ``g + 1``.  The first fragment
only *measures* its cut wires (in tomography bases, exactly like a pair's
upstream half), the last fragment only *receives preparations* (like a
pair's downstream half), and every interior fragment does both — it is
downstream of group ``g − 1`` *and* upstream of group ``g`` simultaneously,
so its circuit variants combine a preparation tuple with a
measurement-setting tuple.

Since the tree refactor there is **one partitioning/reconstruction engine**:
:func:`partition_chain` delegates to
:func:`~repro.cutting.tree.partition_tree` and merely validates the chain
shape, and every chain consumer (caches, execution, reconstruction, golden
detection) runs on the tree path with the chain as a linear tree.  Specs
that genuinely branch are rejected here with a pointer to
``partition_tree`` — they are fully supported, just not as a chain.

A two-fragment chain is exactly a :class:`FragmentPair` in chain clothing;
``tests/test_multi_fragment_equivalence.py`` pins that the generalised
reconstruction agrees with the pair path on it.
"""

from __future__ import annotations

from typing import Sequence

from repro.circuits.circuit import Circuit
from repro.cutting.cut import CutSpec
from repro.cutting.fragments import FragmentPair
from repro.cutting.tree import FragmentTree, TreeFragment, partition_tree
from repro.exceptions import CutError

__all__ = [
    "ChainFragment",
    "FragmentChain",
    "chain_from_pair",
    "partition_chain",
]

#: One link of a fragment chain — simply a tree node whose chain-shape
#: fields (``in_group = index − 1``, ``meas_groups = [index]``) are filled
#: in by :class:`FragmentChain` when omitted, so pre-tree constructor calls
#: keep working unchanged.
ChainFragment = TreeFragment


class FragmentChain(FragmentTree):
    """An ordered chain of fragments connected by cut groups.

    The linear special case of :class:`~repro.cutting.tree.FragmentTree`:
    node ``i``'s entering group is ``i − 1`` and its only exiting group is
    ``i``.  Construction normalises fragments built without tree fields
    (e.g. by :func:`chain_from_pair`) and then runs the full tree
    validation.
    """

    def __post_init__(self) -> None:
        n = len(self.fragments)
        if n < 2:
            raise CutError("a fragment chain needs at least two fragments")
        if len(self.group_sizes) != n - 1:
            raise CutError("chain needs one cut group per adjacent pair")
        for i, frag in enumerate(self.fragments):
            if i > 0 and frag.in_group is None:
                frag.in_group = i - 1
            if i < n - 1 and not frag.meas_groups:
                frag.meas_groups = [i]
                frag.cut_local_by_group = {i: list(frag.cut_local)}
        super().__post_init__()
        if not self.is_chain:
            raise CutError(
                "the fragments do not form a chain; build a FragmentTree "
                "for branched topologies"
            )

    def describe(self) -> str:
        widths = "+".join(str(f.num_qubits) for f in self.fragments)
        groups = ",".join(str(k) for k in self.group_sizes)
        return (
            f"FragmentChain(N={self.num_fragments}, widths {widths}q, "
            f"cut groups [{groups}])"
        )


def chain_from_pair(pair: FragmentPair) -> FragmentChain:
    """View a :class:`FragmentPair` as a two-fragment chain."""
    first = ChainFragment(
        circuit=pair.upstream,
        index=0,
        prep_local=[],
        cut_local=list(pair.up_cut_local),
        out_local=list(pair.up_out_local),
        out_original=list(pair.up_out_original),
    )
    last = ChainFragment(
        circuit=pair.downstream,
        index=1,
        prep_local=list(pair.down_cut_local),
        cut_local=[],
        out_local=list(pair.down_out_local),
        out_original=list(pair.down_out_original),
    )
    specs = [pair.spec] if pair.spec is not None else []
    return FragmentChain(
        fragments=[first, last], group_sizes=[pair.num_cuts], specs=specs
    )


def partition_chain(
    circuit: Circuit, specs: Sequence[CutSpec]
) -> FragmentChain:
    """Split ``circuit`` into a ``len(specs) + 1``-fragment chain.

    Every spec is expressed in **original-circuit** coordinates (wire labels
    and instruction indices of ``circuit``).  The partitioning itself is
    the tree engine's worklist bipartition
    (:func:`~repro.cutting.tree.partition_tree`); this wrapper additionally
    enforces the chain condition — every group-``g`` cut wire must continue
    *into fragment g+1* (not skip ahead).  Branched specs are not an error
    of the library any more, only of this entry point: use
    :func:`~repro.cutting.tree.partition_tree` for them.
    """
    tree = partition_tree(circuit, specs)
    if not tree.is_chain:
        for g in range(tree.num_groups):
            if tree.group_src[g] != g or tree.group_dst[g] != g + 1:
                raise CutError(
                    f"cut group {g} links fragment {tree.group_src[g]} to "
                    f"fragment {tree.group_dst[g]}; the specs induce a "
                    "tree, not a chain — use partition_tree, which supports "
                    "branched topologies"
                )
    return FragmentChain(
        fragments=tree.fragments,
        group_sizes=tree.group_sizes,
        specs=tree.specs,
    )
