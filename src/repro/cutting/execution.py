"""Executing fragment variants and organising their measurement records.

:func:`run_fragments` submits every upstream setting and downstream
preparation variant to a backend and returns a :class:`FragmentData` holding,
for each variant, the *joint empirical distribution* split into (output bits,
cut bits).  Submission goes through :meth:`repro.backends.base.Backend.run_variants`,
so backends with an exact simulation engine can serve all variants from one
shared per-pair cache instead of re-simulating ``3^K + 6^K`` circuits: the
ideal backend from a :class:`~repro.cutting.cache.FragmentSimCache`, the
noisy fake-hardware backend from a
:class:`~repro.cutting.noisy_cache.NoisyFragmentSimCache` (one transpile
and ``1 + 4^K`` density evolutions per fragment body).

:func:`exact_fragment_data` computes the same tensors in the infinite-shot
limit directly from the cache — used by exactness tests and by the analytic
golden-cut finder — at the cost of **one** upstream body simulation plus one
batched downstream simulation over the ``2^K`` cut-basis initialisations.

Fragment trees (and chains, their one-child case) run through
:func:`run_tree_fragments` / :func:`exact_tree_data`: one
:class:`TreeFragmentData` record dict per node, every node served from the
backend's per-node cache pool, so an ``N``-node tree costs exactly ``N``
body transpiles/simulations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.backends.base import Backend
from repro.cutting.cache import FragmentSimCache
from repro.cutting.fragments import FragmentPair
from repro.cutting.variants import (
    downstream_init_tuples,
    upstream_setting_tuples,
)
from repro.exceptions import CutError
from repro.utils.bits import split_index

__all__ = [
    "ChainFragmentData",
    "FragmentData",
    "TreeFragmentData",
    "exact_chain_data",
    "exact_fragment_data",
    "exact_tree_data",
    "run_chain_fragments",
    "run_fragments",
    "run_tree_fragments",
]


@dataclass
class FragmentData:
    """Measurement records of every fragment variant.

    Attributes
    ----------
    pair:
        The bipartition the data belongs to.
    upstream:
        setting tuple → array ``A[b_out, b_cut]`` of shape
        ``(2^{n_up_out}, 2^K)``: joint probability of reading output bits
        ``b_out`` and cut bits ``b_cut`` under that measurement setting.
        Cut bit ``k`` is the little-endian bit ``k`` of ``b_cut`` (0 ↔ +1
        eigenvalue, 1 ↔ −1).
    downstream:
        init tuple → probability vector of length ``2^{n_down}``.
    shots_per_variant:
        Shot budget each variant was run with (0 for exact data).
    modeled_seconds:
        Total device-model wall time charged by the backend.
    """

    pair: FragmentPair
    upstream: dict[tuple[str, ...], np.ndarray]
    downstream: dict[tuple[str, ...], np.ndarray]
    shots_per_variant: int
    modeled_seconds: float = 0.0
    metadata: dict = field(default_factory=dict)

    @property
    def num_variants(self) -> int:
        return len(self.upstream) + len(self.downstream)

    @property
    def total_shots(self) -> int:
        return self.shots_per_variant * self.num_variants

    def upstream_settings(self) -> list[tuple[str, ...]]:
        return list(self.upstream)

    def downstream_inits(self) -> list[tuple[str, ...]]:
        return list(self.downstream)


def _split_joint_probs(
    probs: np.ndarray,
    out_local: Sequence[int],
    cut_local: Sequence[int],
    dtype=np.float64,
) -> np.ndarray:
    """Rearrange a full fragment distribution into ``A[b_out, b_cut]``.

    ``b_cut`` is little-endian in the cut index; an empty ``cut_local``
    yields a single column (pure-output fragments at the chain end).
    ``dtype`` is the record precision (float64 default — bit-identical to
    the historical records; float32 is the reconstruction fast path).
    """
    n = len(out_local) + len(cut_local)
    idx = np.arange(1 << n)
    sub_out, sub_cut = split_index(idx, [out_local, cut_local])
    out = np.zeros((1 << len(out_local), 1 << len(cut_local)), dtype=dtype)
    np.add.at(out, (sub_out, sub_cut), probs)
    return out


def _split_upstream_probs(
    probs: np.ndarray, pair: FragmentPair
) -> np.ndarray:
    """Rearrange a full upstream distribution into ``A[b_out, b_cut]``."""
    return _split_joint_probs(probs, pair.up_out_local, pair.up_cut_local)


def run_fragments(
    pair: FragmentPair,
    backend: Backend,
    shots: int,
    settings: Sequence[tuple[str, ...]] | None = None,
    inits: Sequence[tuple[str, ...]] | None = None,
    seed: "int | np.random.Generator | None" = None,
    cache: "FragmentSimCache | None" = None,
    retry=None,
    ledger=None,
) -> FragmentData:
    """Execute all (or the given) fragment variants on ``backend``.

    ``settings``/``inits`` default to the full standard sets
    (``{X,Y,Z}^K`` and ``6^K``); golden pipelines pass reduced sets.
    ``cache`` may carry a pre-built variant cache from
    :meth:`~repro.backends.base.Backend.make_variant_cache` for backends
    whose fast path consumes one (ignored by circuit-level backends).

    ``retry`` (a :class:`~repro.cutting.resilience.RetryPolicy`) turns on
    the resilient path: one batched attempt bit-identical to the retry-free
    call, per-variant replay with backoff on transient faults, attempts
    logged to ``ledger``.  Exhaustion always raises here — graceful
    degradation is a tree-pipeline notion.
    """
    if settings is None:
        settings = upstream_setting_tuples(pair.num_cuts)
    if inits is None:
        inits = downstream_init_tuples(pair.num_cuts)
    settings = [tuple(s) for s in settings]
    inits = [tuple(i) for i in inits]
    if not settings or not inits:
        raise CutError("empty variant sets")

    t0 = backend.clock.now
    if retry is None:
        results = backend.run_variants(
            pair, settings, inits, shots=shots, seed=seed, cache=cache
        )
    else:
        from repro.cutting.resilience import RetryEngine
        from repro.utils.rng import spawn_seed_sequences

        engine = RetryEngine(retry, ledger=ledger)
        if cache is None:
            cache = backend.make_variant_cache(pair)
        jobs = [("up", s) for s in settings] + [("down", a) for a in inits]
        sites = [("pair", kind, label) for kind, label in jobs]
        children = spawn_seed_sequences(seed, len(jobs))

        def batch_call(streams):
            return backend.run_variants(
                pair, settings, inits, shots=shots, seed=streams, cache=cache
            )

        def single_call(j, stream):
            kind, label = jobs[j]
            ups = [label] if kind == "up" else []
            downs = [label] if kind == "down" else []
            return backend.run_variants(
                pair, ups, downs, shots=shots, seed=[stream], cache=cache
            )[0]

        widths = [pair.n_up] * len(settings) + [pair.n_down] * len(inits)
        results, _ = engine.run_batch(
            sites,
            children,
            batch_call,
            single_call,
            expected_shots=shots,
            expected_qubits=widths,
            clock=backend.clock,
            breaker_key="pair",
            on_exhausted="raise",
        )
    seconds = backend.clock.now - t0

    upstream: dict[tuple[str, ...], np.ndarray] = {}
    for s, res in zip(settings, results[: len(settings)]):
        upstream[s] = _split_upstream_probs(res.probabilities(), pair)
    downstream: dict[tuple[str, ...], np.ndarray] = {}
    for i, res in zip(inits, results[len(settings) :]):
        downstream[i] = res.probabilities()

    return FragmentData(
        pair=pair,
        upstream=upstream,
        downstream=downstream,
        shots_per_variant=shots,
        modeled_seconds=seconds,
        metadata={
            "backend": getattr(backend, "name", "backend"),
            "num_upstream": len(settings),
            "num_downstream": len(inits),
        },
    )


@dataclass
class TreeFragmentData:
    """Measurement records of every variant of every tree fragment.

    Attributes
    ----------
    tree:
        The :class:`~repro.cutting.tree.FragmentTree` (or
        :class:`~repro.cutting.chain.FragmentChain`, a linear tree) the
        data belongs to.
    records:
        One dict per fragment: ``(inits, setting) → A[b_out, b_cut]`` of
        shape ``(2^{n_out}, 2^{K})`` with ``K`` the fragment's *flat*
        exiting cut count (the union of its child groups' wires; leaves'
        records have one column).  The root's keys carry an empty init
        tuple, leaves an empty setting tuple.
    shots_per_variant:
        Shot budget each variant was run with (0 for exact data).
    modeled_seconds:
        Total device-model wall time charged by the backend.
    """

    tree: object
    records: list[dict[tuple[tuple[str, ...], tuple[str, ...]], np.ndarray]]
    shots_per_variant: int
    modeled_seconds: float = 0.0
    metadata: dict = field(default_factory=dict)

    @property
    def chain(self):
        """Alias of :attr:`tree` for chain-shaped data."""
        return self.tree

    @property
    def num_variants(self) -> int:
        return sum(len(r) for r in self.records)

    @property
    def total_shots(self) -> int:
        return self.shots_per_variant * self.num_variants

    def fragment_variants(
        self, index: int
    ) -> list[tuple[tuple[str, ...], tuple[str, ...]]]:
        return list(self.records[index])


class ChainFragmentData(TreeFragmentData):
    """Chain-flavoured constructor for :class:`TreeFragmentData`.

    A chain is a linear tree; this subclass only keeps the historical
    ``chain=`` keyword (and ``isinstance`` checks on the chain entry
    points' results) working.
    """

    def __init__(
        self,
        chain,
        records,
        shots_per_variant,
        modeled_seconds: float = 0.0,
        metadata: "dict | None" = None,
    ) -> None:
        super().__init__(
            tree=chain,
            records=records,
            shots_per_variant=shots_per_variant,
            modeled_seconds=modeled_seconds,
            metadata=metadata if metadata is not None else {},
        )

    @classmethod
    def _from_tree_data(cls, data: TreeFragmentData) -> "ChainFragmentData":
        """Re-badge a tree result produced by a chain entry point."""
        return cls(
            chain=data.tree,
            records=data.records,
            shots_per_variant=data.shots_per_variant,
            modeled_seconds=data.modeled_seconds,
            metadata=data.metadata,
        )


def _tree_variant_lists(tree, variants):
    """Normalise the per-fragment variant lists (default: full pools).

    ``variants[i] = None`` marks fragment ``i`` as *skipped* — it is not
    executed and its record dict stays empty.  Partial passes are what
    pilot detection runs: a group's verdict only needs its source
    fragment's measurements, so the sweep submits one fragment at a time
    and leaf fragments (no exiting cuts) never run at all.  An explicitly
    empty list is still an error: it would mean a fragment that *should*
    run has nothing to run.
    """
    from repro.cutting.variants import tree_variant_tuples

    if variants is None:
        variants = [
            tree_variant_tuples(tree, i) for i in range(tree.num_fragments)
        ]
    if len(variants) != tree.num_fragments:
        raise CutError("need one variant list per tree fragment")
    out = []
    for i, combos in enumerate(variants):
        if combos is None:
            out.append(None)
            continue
        combos = [(tuple(a), tuple(s)) for a, s in combos]
        if not combos:
            raise CutError(f"fragment {i} has an empty variant set")
        out.append(combos)
    if not any(c for c in out):
        raise CutError("every tree fragment is skipped; nothing to run")
    return out


#: chains are linear trees; the historical name remains for its importers
_chain_variant_lists = _tree_variant_lists


def run_tree_fragments(
    tree,
    backend: Backend,
    shots: int,
    variants: "Sequence[Sequence[tuple]] | None" = None,
    seed: "int | np.random.Generator | None" = None,
    pool=None,
    dtype=np.float64,
    retry=None,
    ledger=None,
    on_exhausted: str = "raise",
    checkpoint=None,
) -> TreeFragmentData:
    """Execute every tree fragment's variants on ``backend``.

    The tree analogue of :func:`run_fragments`: fragment ``i``'s combos
    (default: the full ``6^{K_in} · 3^{K_out}`` product over its entering
    group and flat exiting cuts; golden pipelines pass reduced lists) are
    submitted through
    :meth:`~repro.backends.base.Backend.run_tree_variants`, so backends
    with an exact engine serve them from the per-fragment cache ``pool[i]``
    (built by :meth:`~repro.backends.base.Backend.make_tree_cache_pool`)
    instead of re-simulating the body per variant.  Chains run through
    this exact code path (per-fragment RNG streams included), so
    :func:`run_chain_fragments` results are bit-identical to what they
    were before the tree refactor.  ``dtype`` sets the record precision
    (float64 default — bit-identical; float32 halves record memory for
    the sparse/fast reconstruction path and never changes the sampling
    law, which draws before the cast).

    Resilience knobs:

    ``retry``
        A :class:`~repro.cutting.resilience.RetryPolicy`.  The healthy
        path stays one batched call per fragment with the exact streams
        the retry-free call spawns (bit-identical counts); transient
        faults replay only the failing variants with backoff, logged to
        ``ledger``.
    ``on_exhausted``
        ``"raise"`` (default) propagates
        :class:`~repro.exceptions.RetryExhaustedError`; ``"degrade"``
        records exhausted variants in metadata ``degraded_sites`` as
        ``(fragment, combo)`` pairs and leaves them out of the records —
        the pipeline demotes their basis rows and widens the bound.
    ``checkpoint``
        A :class:`~repro.cutting.io.TreeCheckpoint`; completed fragments
        are persisted as they finish and skipped (records loaded, RNG
        stream still burned) on resume, so an aborted run never re-executes
        finished fragments.
    """
    from repro.utils.rng import as_generator, derive_rng

    variants = _tree_variant_lists(tree, variants)
    if on_exhausted not in ("raise", "degrade"):
        raise CutError(f"on_exhausted must be 'raise' or 'degrade', got {on_exhausted!r}")
    if on_exhausted == "degrade" and retry is None:
        raise CutError("on_exhausted='degrade' requires a retry policy")
    engine = None
    if retry is not None:
        from repro.cutting.resilience import RetryEngine

        engine = RetryEngine(retry, ledger=ledger)
        if pool is None:
            pool = backend.make_tree_cache_pool(tree, dtype=dtype)
    rng = as_generator(seed)
    records: list[dict] = []
    degraded: list[tuple[int, tuple]] = []
    t0 = backend.clock.now
    for i, combos in enumerate(variants):
        # always burn fragment i's stream so skips/resumes never shift
        # later fragments' RNG streams
        frag_rng = derive_rng(rng, 0x60 + i)
        if combos is None:  # skipped fragment (partial/pilot pass)
            records.append({})
            continue
        frag = tree.fragments[i]
        cache = pool[i] if pool is not None else None
        if checkpoint is not None:
            stored = checkpoint.load_fragment(i, combos, dtype=dtype)
            if stored is not None:
                rec, dead = stored
                records.append(rec)
                degraded.extend((i, combo) for combo in dead)
                continue
        if engine is None:
            results = backend.run_tree_variants(
                tree, i, combos, shots=shots, seed=frag_rng, cache=cache
            )
            rec = {
                combo: _split_joint_probs(
                    res.probabilities(), frag.out_local, frag.cut_local, dtype
                )
                for combo, res in zip(combos, results)
            }
            dead = []
        else:
            from repro.utils.rng import spawn_seed_sequences

            children = spawn_seed_sequences(frag_rng, len(combos))
            sites = [("tree", i, a, s) for a, s in combos]

            def batch_call(streams, i=i, combos=combos, cache=cache):
                return backend.run_tree_variants(
                    tree, i, combos, shots=shots, seed=streams, cache=cache
                )

            def single_call(j, stream, i=i, combos=combos, cache=cache):
                return backend.run_tree_variants(
                    tree, i, [combos[j]], shots=shots, seed=[stream], cache=cache
                )[0]

            results, dead_idx = engine.run_batch(
                sites,
                children,
                batch_call,
                single_call,
                expected_shots=shots,
                expected_qubits=frag.num_qubits,
                clock=backend.clock,
                breaker_key=i,
                on_exhausted=on_exhausted,
            )
            rec = {
                combo: _split_joint_probs(
                    res.probabilities(), frag.out_local, frag.cut_local, dtype
                )
                for combo, res in zip(combos, results)
                if res is not None
            }
            dead = [combos[j] for j in dead_idx]
            degraded.extend((i, combo) for combo in dead)
        records.append(rec)
        if checkpoint is not None:
            checkpoint.save_fragment(i, rec, dead)
    seconds = backend.clock.now - t0

    metadata = {
        "backend": getattr(backend, "name", "backend"),
        "variants_per_fragment": [
            0 if c is None else len(c) for c in variants
        ],
    }
    if degraded:
        metadata["degraded_sites"] = degraded
    if engine is not None:
        metadata["retry"] = engine.ledger.summary()
    return TreeFragmentData(
        tree=tree,
        records=records,
        shots_per_variant=shots,
        modeled_seconds=seconds,
        metadata=metadata,
    )


def run_chain_fragments(
    chain,
    backend: Backend,
    shots: int,
    variants: "Sequence[Sequence[tuple]] | None" = None,
    seed: "int | np.random.Generator | None" = None,
    pool=None,
    dtype=np.float64,
    retry=None,
    ledger=None,
    on_exhausted: str = "raise",
    checkpoint=None,
) -> ChainFragmentData:
    """Execute every chain fragment's variants (chains are linear trees).

    Same engine, records, RNG streams and resilience knobs as
    :func:`run_tree_fragments`; only the result's historical
    :class:`ChainFragmentData` type is kept.
    """
    return ChainFragmentData._from_tree_data(
        run_tree_fragments(
            chain,
            backend,
            shots,
            variants=variants,
            seed=seed,
            pool=pool,
            dtype=dtype,
            retry=retry,
            ledger=ledger,
            on_exhausted=on_exhausted,
            checkpoint=checkpoint,
        )
    )


def exact_tree_data(
    tree,
    variants: "Sequence[Sequence[tuple]] | None" = None,
    pool=None,
    dtype=np.float64,
) -> TreeFragmentData:
    """Infinite-shot tree fragment data from the shared (ideal) cache pool.

    ``pool`` must hold :class:`~repro.cutting.cache.TreeFragmentSimCache`
    instances (e.g. from :meth:`IdealBackend.make_tree_cache_pool`) — exact
    data is an ideal-simulation notion, so a noisy backend's pool is
    rejected rather than silently served.  ``dtype`` sets the record
    precision when this call builds the pool itself (a supplied pool keeps
    its own dtype).
    """
    from repro.cutting.cache import TreeCachePool, TreeFragmentSimCache

    variants = _tree_variant_lists(tree, variants)
    if pool is None:
        pool = TreeCachePool(
            tree,
            [TreeFragmentSimCache(f, dtype=dtype) for f in tree.fragments],
        )
    elif not all(isinstance(c, TreeFragmentSimCache) for c in pool):
        raise CutError(
            "exact_tree_data needs ideal TreeFragmentSimCache caches; "
            "got a pool of a different flavour (noisy pools serve "
            "run_tree_fragments, not exact data)"
        )
    elif any(
        c.fragment is not f for c, f in zip(pool, tree.fragments)
    ):
        raise CutError(
            "cache pool was built for a different tree; build one with "
            "make_tree_cache_pool(tree) for this tree"
        )
    records: list[dict] = []
    for i, combos in enumerate(variants):
        if combos is None:  # skipped fragment (partial/pilot pass)
            records.append({})
            continue
        cache = pool[i]
        records.append(
            {combo: cache.joint(*combo) for combo in combos}
        )
    return TreeFragmentData(
        tree=tree,
        records=records,
        shots_per_variant=0,
        modeled_seconds=0.0,
        metadata={"backend": "exact"},
    )


def exact_chain_data(
    chain,
    variants: "Sequence[Sequence[tuple]] | None" = None,
    pool=None,
    dtype=np.float64,
) -> ChainFragmentData:
    """Infinite-shot chain fragment data (chains are linear trees)."""
    return ChainFragmentData._from_tree_data(
        exact_tree_data(chain, variants=variants, pool=pool, dtype=dtype)
    )


def exact_fragment_data(
    pair: FragmentPair,
    settings: Sequence[tuple[str, ...]] | None = None,
    inits: Sequence[tuple[str, ...]] | None = None,
    cache: "FragmentSimCache | None" = None,
) -> FragmentData:
    """Infinite-shot fragment data from the shared simulation cache."""
    if settings is None:
        settings = upstream_setting_tuples(pair.num_cuts)
    if inits is None:
        inits = downstream_init_tuples(pair.num_cuts)
    if cache is None:
        cache = FragmentSimCache(pair)
    upstream = {tuple(s): cache.upstream_joint(s) for s in settings}
    inits = [tuple(i) for i in inits]
    down_probs = cache.downstream_probabilities_batch(inits) if inits else []
    downstream = {i: p for i, p in zip(inits, down_probs)}
    return FragmentData(
        pair=pair,
        upstream=upstream,
        downstream=downstream,
        shots_per_variant=0,
        modeled_seconds=0.0,
        metadata={"backend": "exact"},
    )
