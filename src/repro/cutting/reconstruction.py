"""Classical reconstruction of the uncut circuit from fragment data.

Implements paper Eq. 13/14.  For each Pauli-basis tuple ``M`` over the cuts,
define the *reduced fragment tensors*

.. math::

    \\hat A[M, b_1] = \\sum_r \\Big(\\prod_k w_k(r_k)\\Big)\\,
        \\hat p_{S(M)}(b_1, r), \\qquad
    \\hat B[M, b_2] = \\sum_s \\Big(\\prod_k w_k(s_k)\\Big)\\,
        \\hat p_{\\mathrm{init}(M,s)}(b_2),

with weights ``w_k = +1`` for ``M_k = I`` and the outcome eigenvalue
``(1 - 2 bit)`` otherwise.  Then the joint distribution over the two
fragments' outputs is one GEMM:

.. math::

    p[b_1, b_2] = \\frac{1}{2^K} \\sum_M \\hat A[M, b_1]\\, \\hat B[M, b_2].

Both tensor builders are *fully factorised over the cuts*: the measured
data is stacked into a tensor with one axis per cut, and each cut
contributes a small per-cut transfer matrix (basis → setting/eigenvalue
weights upstream, basis → preparation weights downstream) that is
contracted in with a single ``tensordot`` — no Python loop over the
``4^K`` basis rows or the ``2^K`` preparation index.  Golden cutting
points drop basis elements from individual cuts' pools, which simply
*slices rows off the per-cut transfer matrices*: the paper's
``O(4^{K_r} 3^{K_g})`` term count falls out of the factorisation for free
(see :mod:`repro.core`).  The pre-vectorisation implementations are kept as
``*_reference`` functions — they define the semantics and anchor the
equivalence tests in ``tests/test_fast_path_equivalence.py``.

Finite shots can leave small negative quasi-probabilities; ``postprocess``
chooses between returning them (``"raw"``), clipping + renormalising
(``"clip"``, the default) or the Euclidean projection onto the probability
simplex (``"simplex"``, the maximum-likelihood-flavoured choice of the
paper's ref [19]).
"""

from __future__ import annotations

import itertools
from typing import Sequence

import numpy as np

from repro.cutting.execution import FragmentData, TreeFragmentData
from repro.cutting.sparse import (
    PrunePolicy,
    SparseDistribution,
    postprocess_sparse,
)
from repro.exceptions import ReconstructionError
from repro.utils.bits import permute_probability_axes

__all__ = [
    "build_upstream_tensor",
    "build_downstream_tensor",
    "build_upstream_tensor_reference",
    "build_downstream_tensor_reference",
    "build_chain_fragment_tensor",
    "build_chain_fragment_tensor_reference",
    "build_tree_fragment_tensor",
    "build_tree_fragment_tensor_reference",
    "reconstruct_distribution",
    "reconstruct_chain_distribution",
    "reconstruct_chain_distribution_reference",
    "reconstruct_tree_distribution",
    "reconstruct_tree_distribution_reference",
    "reconstruct_counts",
    "reconstruct_expectation",
    "project_to_simplex",
    "DEFAULT_DTYPE",
    "FULL_BASES",
]

#: dense reconstructions accumulate in this dtype unless told otherwise
DEFAULT_DTYPE = np.float64

#: Default basis pool per cut (paper Eq. 1).
FULL_BASES: tuple[str, ...] = ("I", "X", "Y", "Z")

_PREP_OF = {
    "I": ("Z+", "Z-"),
    "Z": ("Z+", "Z-"),
    "X": ("X+", "X-"),
    "Y": ("Y+", "Y-"),
}


def _basis_rows(bases: Sequence[Sequence[str]]) -> list[tuple[str, ...]]:
    for k, pool in enumerate(bases):
        bad = set(pool) - set(FULL_BASES)
        if bad:
            raise ReconstructionError(f"invalid bases {bad} for cut {k}")
        if not pool:
            raise ReconstructionError(f"cut {k} has an empty basis pool")
    return list(itertools.product(*bases))


def _signs_for(mask: int, num_cuts: int) -> np.ndarray:
    """Vector over outcomes r∈{0,1}^K of ``Π_{k in mask} (1-2 r_k)``.

    Branch-free: the sign is the parity (popcount mod 2) of ``r & mask``,
    computed by xor-folding the masked bits — no Python loop over ``K``.
    """
    m = np.arange(1 << num_cuts) & mask
    m ^= m >> 16
    m ^= m >> 8
    m ^= m >> 4
    m ^= m >> 2
    m ^= m >> 1
    return 1.0 - 2.0 * (m & 1)


def _normalise_bases(
    bases: Sequence[Sequence[str]] | None, num_cuts: int
) -> list[tuple[str, ...]]:
    if bases is None:
        return [FULL_BASES] * num_cuts
    if len(bases) != num_cuts:
        raise ReconstructionError("bases list length != number of cuts")
    return [tuple(b) for b in bases]


def _upstream_pools(data: FragmentData) -> tuple[list[list[str]], list[str]]:
    """Per-cut physically available settings and the ``I``-row fallback."""
    K = data.pair.num_cuts
    settings = data.upstream_settings()
    if not settings:
        raise ReconstructionError("no upstream data")
    pools = [sorted({s[k] for s in settings}) for k in range(K)]
    fallback = ["Z" if "Z" in p else p[0] for p in pools]
    return pools, fallback


def build_upstream_tensor(
    data: FragmentData, bases: Sequence[Sequence[str]] | None = None
) -> tuple[np.ndarray, list[tuple[str, ...]]]:
    """Â over all basis rows: shape ``(R, 2^{n_up_out})``.

    For rows containing ``I`` the estimator reuses any available physical
    setting for that cut (preferring Z) — the ``I`` component is the outcome
    *marginal*, which every setting estimates.

    Vectorised: the per-setting joint tensors are stacked into
    ``A[t_0..t_{K-1}, b_out, r_0..r_{K-1}]`` and each cut's transfer tensor
    ``U_k[m, t, r] = δ(t = setting(m)) · w_m(r)`` is contracted in with one
    ``tensordot``; the basis-row axes accumulate in product order.
    """
    K = data.pair.num_cuts
    bases = _normalise_bases(bases, K)
    rows = _basis_rows(bases)
    _, fallback = _upstream_pools(data)

    # Per-cut physical letters actually referenced by the requested pools.
    letters: list[list[str]] = []
    for k, pool in enumerate(bases):
        need: list[str] = []
        for m in pool:
            s = m if m != "I" else fallback[k]
            if s not in need:
                need.append(s)
        letters.append(need)

    needed = list(itertools.product(*letters))
    for setting in needed:
        if setting not in data.upstream:
            row = tuple(
                next(
                    m
                    for m in bases[k]
                    if (m if m != "I" else fallback[k]) == setting[k]
                )
                for k in range(K)
            )
            raise ReconstructionError(
                f"row {row} needs upstream setting {setting}, which was not run"
            )

    n_out_dim = 1 << data.pair.n_up_out
    T = np.stack([data.upstream[s] for s in needed])
    T = T.reshape(tuple(len(l) for l in letters) + (n_out_dim,) + (2,) * K)
    # C-order split of b_cut yields bit axes most-significant first; reverse
    # them so trailing axis j = cut j.
    T = T.transpose(tuple(range(K + 1)) + tuple(range(2 * K, K, -1)))

    for k in range(K):
        pool, need = bases[k], letters[k]
        U = np.zeros((len(pool), len(need), 2))
        for i, m in enumerate(pool):
            t = need.index(m if m != "I" else fallback[k])
            U[i, t, 0] = 1.0
            U[i, t, 1] = 1.0 if m == "I" else -1.0
        nt = K - k  # remaining setting axes; r_k sits just past b_out
        T = np.moveaxis(np.tensordot(U, T, axes=([1, 2], [0, nt + 1])), 0, -1)

    # T axes: (b_out, m_0..m_{K-1}) -> (rows, b_out)
    out = np.ascontiguousarray(np.moveaxis(T, 0, -1).reshape(len(rows), n_out_dim))
    return out, rows


def build_downstream_tensor(
    data: FragmentData, bases: Sequence[Sequence[str]] | None = None
) -> tuple[np.ndarray, list[tuple[str, ...]]]:
    """B̂ over all basis rows: shape ``(R, 2^{n_down})``.

    Vectorised like :func:`build_upstream_tensor`: preparation records are
    stacked into ``D[c_0..c_{K-1}, b_2]`` and each cut's transfer matrix
    ``V_k[m, c] = ±1`` (eigenvalue weight of preparation ``c`` in basis
    ``m``; 0 when unused) is contracted in with one ``tensordot``.
    """
    K = data.pair.num_cuts
    bases = _normalise_bases(bases, K)
    rows = _basis_rows(bases)

    codes: list[list[str]] = []
    for pool in bases:
        need: list[str] = []
        for m in pool:
            for c in _PREP_OF[m]:
                if c not in need:
                    need.append(c)
        codes.append(need)

    needed = list(itertools.product(*codes))
    for init in needed:
        if init not in data.downstream:
            row = tuple(
                next(m for m in bases[k] if init[k] in _PREP_OF[m])
                for k in range(K)
            )
            raise ReconstructionError(
                f"row {row} needs downstream init {init}, which was not run"
            )

    n_down_dim = 1 << data.pair.n_down
    T = np.stack([data.downstream[c] for c in needed])
    T = T.reshape(tuple(len(c) for c in codes) + (n_down_dim,))

    for k in range(K):
        pool, need = bases[k], codes[k]
        V = np.zeros((len(pool), len(need)))
        for i, m in enumerate(pool):
            plus, minus = _PREP_OF[m]
            V[i, need.index(plus)] = 1.0
            V[i, need.index(minus)] = 1.0 if m == "I" else -1.0
        T = np.moveaxis(np.tensordot(V, T, axes=([1], [0])), 0, -1)

    out = np.ascontiguousarray(np.moveaxis(T, 0, -1).reshape(len(rows), n_down_dim))
    return out, rows


# ---------------------------------------------------------------------------
# Reference (pre-vectorisation) kernels.  These are the semantic ground
# truth: one Python iteration per basis row (and per preparation index
# downstream), straight from paper Eq. 13.  Kept for equivalence tests,
# benchmarks, and as executable documentation of the factorised kernels.


def build_upstream_tensor_reference(
    data: FragmentData, bases: Sequence[Sequence[str]] | None = None
) -> tuple[np.ndarray, list[tuple[str, ...]]]:
    """Row-by-row Â builder (reference semantics for the vectorised kernel)."""
    K = data.pair.num_cuts
    bases = _normalise_bases(bases, K)
    rows = _basis_rows(bases)
    _, fallback = _upstream_pools(data)

    n_out = data.pair.n_up_out
    out = np.empty((len(rows), 1 << n_out))
    for i, row in enumerate(rows):
        setting = tuple(
            m if m != "I" else fallback[k] for k, m in enumerate(row)
        )
        A = data.upstream.get(setting)
        if A is None:
            raise ReconstructionError(
                f"row {row} needs upstream setting {setting}, which was not run"
            )
        mask = sum(1 << k for k, m in enumerate(row) if m != "I")
        out[i] = A @ _signs_for(mask, K)
    return out, rows


def build_downstream_tensor_reference(
    data: FragmentData, bases: Sequence[Sequence[str]] | None = None
) -> tuple[np.ndarray, list[tuple[str, ...]]]:
    """Row-by-row B̂ builder (reference semantics for the vectorised kernel)."""
    K = data.pair.num_cuts
    bases = _normalise_bases(bases, K)
    rows = _basis_rows(bases)
    n_down = data.pair.n_down
    out = np.zeros((len(rows), 1 << n_down))
    for i, row in enumerate(rows):
        for s in range(1 << K):
            init = tuple(
                _PREP_OF[m][(s >> k) & 1] for k, m in enumerate(row)
            )
            vec = data.downstream.get(init)
            if vec is None:
                raise ReconstructionError(
                    f"row {row} needs downstream init {init}, which was not run"
                )
            mask = sum(1 << k for k, m in enumerate(row) if m != "I")
            sign = 1.0 - 2.0 * (bin(s & mask).count("1") & 1)
            out[i] += sign * vec
    return out, rows


# ---------------------------------------------------------------------------
# Fragment-tree reconstruction (chains are the one-child case).  With nodes
# F_0 .. F_{N-1} and cut groups g = 0 .. N-2 (group g linking its source
# node to its destination node), the joint output distribution is the
# tree-order contraction
#
#     p[b_0..b_{N-1}] = (Π_g 2^{-K_g}) Σ_{M_0..M_{N-2}}
#         Π_i T_i[M_{in(i)}, M_{out_1(i)}, .., M_{out_C(i)}, b_i]
#
# where T_i is node i's *reduced tensor*: its prep side is contracted like
# B̂ (signed sum over preparation eigenstates of the entering group's basis
# row) and its measure side like Â (eigenvalue-weighted outcome sum), with
# **one row axis per exiting child group**.  Each side factorises over its
# cuts into the same per-cut transfer matrices the pair builders use, so
# neglected pools still just slice rows off individual cuts' factors — the
# paper's O(4^{K_r} 3^{K_g}) reduction applies per cut group.  The
# contraction runs leaves to root, one tensordot per edge, so per-group row
# counts only ever meet their neighbours and never multiply globally.  A
# chain is the tree in which every node has one child, and the chain entry
# points below are thin wrappers over this single engine.


def _tree_of(data):
    """The :class:`~repro.cutting.tree.FragmentTree` behind a data record."""
    return data.tree


def _normalise_chain_bases(bases, group_sizes: Sequence[int]):
    """Per-group basis pools: ``bases[g][k]`` is cut k of group g's pool."""
    if bases is None:
        return [[FULL_BASES] * k for k in group_sizes]
    if len(bases) != len(group_sizes):
        raise ReconstructionError("bases list length != number of cut groups")
    return [
        _normalise_bases(pools, k) for pools, k in zip(bases, group_sizes)
    ]


def _chain_fallback(
    records: dict, num_meas: int
) -> list[str]:
    """Per-cut ``I``-row fallback letters from the settings actually run."""
    settings = {s for _, s in records}
    if not settings:
        raise ReconstructionError("no fragment data")
    pools = [sorted({s[k] for s in settings}) for k in range(num_meas)]
    return ["Z" if "Z" in p else p[0] for p in pools]


def _chain_rows(data, index: int, bases):
    """Shared per-fragment row bookkeeping of all tree/chain builders.

    Returns ``(frag, records, prev_bases, next_bases, rows_prev, rows_next,
    fallback)`` — the **flat** entering pools (every entering group's
    per-cut pools concatenated in the node's group order; one group on a
    tree node, several at a joint-prep DAG node) and the **flat** exiting
    pools (every child group's per-cut pools concatenated the same way)
    resolved from ``bases``, their basis-row products (``[()]`` at the root
    / leaves) and the per-cut ``I``-row fallback letters.  On a chain node
    this is exactly the pre-tree bookkeeping; at a branching node
    ``rows_next`` runs over the product of the child groups' rows, and at
    a joint-prep node ``rows_prev`` over the product of the entering
    groups' rows.
    """
    tree = _tree_of(data)
    frag = tree.fragments[index]
    records = data.records[index]
    group_bases = _normalise_chain_bases(bases, tree.group_sizes)
    prev_bases = [
        pool for h in frag.in_groups for pool in group_bases[h]
    ]
    next_bases = [
        pool for h in frag.meas_groups for pool in group_bases[h]
    ]
    rows_prev = list(itertools.product(*prev_bases)) if prev_bases else [()]
    rows_next = list(itertools.product(*next_bases)) if next_bases else [()]
    fallback = _chain_fallback(records, frag.num_meas)
    return frag, records, prev_bases, next_bases, rows_prev, rows_next, fallback


def _chain_row_runs(index, frag, records, rows_prev, rows_next, fallback):
    """Iterate every record one fragment's reduced rows consume.

    Yields ``(a, b, sign, signs_n, A)``: for entering row ``rows_prev[a]``
    and exiting row ``rows_next[b]``, each preparation-eigenstate run with
    its entering-side sign, the exiting-side eigenvalue weight vector and
    the measured record ``A[b_out, b_cut]``.  This is the *single*
    definition of which variant serves which row (``I``-fallback
    substitution included) — shared by the reference tensor builder and the
    variance model so the two cannot drift.
    """
    Kp, Kn = frag.num_prep, frag.num_meas
    for a, row_p in enumerate(rows_prev):
        mask_p = sum(1 << k for k, m in enumerate(row_p) if m != "I")
        for b, row_n in enumerate(rows_next):
            setting = tuple(
                m if m != "I" else fallback[k] for k, m in enumerate(row_n)
            )
            mask_n = sum(1 << k for k, m in enumerate(row_n) if m != "I")
            signs_n = _signs_for(mask_n, Kn)
            for s in range(1 << Kp):
                init = tuple(
                    _PREP_OF[m][(s >> k) & 1] for k, m in enumerate(row_p)
                )
                A = records.get((init, setting))
                if A is None:
                    raise ReconstructionError(
                        f"fragment {index} is missing variant "
                        f"{(init, setting)}"
                    )
                sign = 1.0 - 2.0 * (bin(s & mask_p).count("1") & 1)
                yield a, b, sign, signs_n, A


def _contract_tree(
    tensors: Sequence[np.ndarray], tree
) -> tuple[np.ndarray, list[int]]:
    """Leaves-to-root contraction of per-node reduced tensors.

    ``tensors[i]`` has shape ``(R_in, R_out_1, .., R_out_C, D_i)`` (child
    row axes in node ``i``'s exiting-group order).  Nodes are processed in
    reverse topological order: each child's accumulated subtree vector is
    contracted into its parent's tensor over the shared group-row axis, so
    the cost per edge is (parent rows) × (child rows) and per-group row
    counts never multiply globally.  Returns the joint vector over all
    outputs together with the original-qubit label of every bit (the
    contraction's own accumulation order) — callers permute with
    :func:`~repro.utils.bits.permute_probability_axes`.  Shared kernel of
    :func:`reconstruct_tree_distribution` and the tree variance model.
    """
    acc: dict[int, np.ndarray] = {}
    order: dict[int, list[int]] = {}
    for i in reversed(range(tree.num_fragments)):
        frag = tree.fragments[i]
        t = tensors[i]
        labels = list(frag.out_original)
        for h in frag.meas_groups:
            child = tree.group_dst[h]
            # t axes: (R_in, <remaining child rows>, D_i, <done subtrees>);
            # the next child's row axis is always axis 1, and tensordot
            # appends the child's subtree bits at the end
            t = np.tensordot(t, acc.pop(child), axes=([1], [0]))
            labels.extend(order.pop(child))
        C = frag.num_children
        # (R_in, D_i, d_1..d_C) -> (R_in, d_C..d_1, D_i): C-order ravel then
        # leaves D_i fastest, keeping the node's own bits least significant
        perm = (0,) + tuple(range(C + 1, 1, -1)) + (1,)
        t = t.transpose(perm)
        acc[i] = np.ascontiguousarray(t).reshape(t.shape[0], -1)
        order[i] = labels
    return acc[0][0], order[0]


def _contract_tree_pruned(
    data, tree, bases, prune: PrunePolicy, dtype
) -> tuple[np.ndarray, np.ndarray, list[int], float]:
    """Leaves-to-root contraction with outcome pruning at every step.

    The sparse twin of :func:`_contract_tree`: each subtree's accumulator
    is a matrix over its *kept* outcome columns plus an aligned ``int64``
    array of their little-endian value indices (own bits least
    significant, child subtrees appended — the same bit bookkeeping as the
    dense labels).  The node's own output axis is pruned at build time
    (:func:`build_tree_fragment_tensor`), and after **each** child
    contraction the combined outcome axis is re-pruned, so intermediate
    widths stay ~``k × 2^{n_out}`` instead of multiplying across children.
    One tensordot per edge is preserved, over exactly the kept slices.

    Pruning scores are the all-``I``-row mixed-input marginals; each
    step's discarded bound mass (see :mod:`repro.cutting.sparse`)
    accumulates into the returned ``prune_bound``.  When nothing is
    pruned the arithmetic — tensordot operands, summation order, final
    division — is the very sequence the dense kernel runs, so
    ``top_k(2^n)`` is bit-identical to the dense reconstruction.

    Returns ``(indices, values, order, prune_bound)`` with ``order`` the
    original-qubit label of each value-index bit, as in the dense kernel.
    """
    group_bases = _normalise_chain_bases(bases, tree.group_sizes)
    irow = [_identity_row_index(pools) for pools in group_bases]
    acc: dict[int, np.ndarray] = {}
    vals: dict[int, np.ndarray] = {}
    nbits: dict[int, int] = {}
    order: dict[int, list[int]] = {}
    kin: dict[int, int] = {}
    bound = 0.0
    for i in reversed(range(tree.num_fragments)):
        frag = tree.fragments[i]
        t, _, _, keep, eps = build_tree_fragment_tensor(
            data, i, bases, dtype, prune
        )
        bound += max(eps, 0.0)
        v = keep.astype(np.int64)
        nb = frag.n_out
        labels = list(frag.out_original)
        in_row = irow[frag.in_group] if frag.in_group is not None else 0
        scale_in = float(
            1 << tree.group_sizes[frag.in_group]
            if frag.in_group is not None
            else 1
        )
        k_inside = 0
        for j, h in enumerate(frag.meas_groups):
            child = tree.group_dst[h]
            # axes: (R_in, <remaining child rows>, kept, child kept) — the
            # next child's row axis is always axis 1, as in the dense kernel
            t = np.tensordot(t, acc.pop(child), axes=([1], [0]))
            v = (v[:, None] | (vals.pop(child) << nb)[None, :]).ravel()
            nb += nbits.pop(child)
            labels.extend(order.pop(child))
            t = t.reshape(t.shape[:-2] + (t.shape[-2] * t.shape[-1],))
            k_inside += tree.group_sizes[h] + kin.pop(child)
            # prune the partial combination: its all-I rows (entering group
            # + not-yet-contracted exit groups) are 2^{K_in} × the partial
            # subtree's mixed-input marginal once the contracted cuts'
            # 2^{k_inside} normalisation is divided out
            sel = (in_row,) + tuple(
                irow[h2] for h2 in frag.meas_groups[j + 1 :]
            )
            mass = np.maximum(t[sel] / float(1 << k_inside), 0.0)
            keep = prune.select(mass / scale_in)
            if keep.size < mass.size:
                bound += max(float(mass.sum() - mass[keep].sum()), 0.0)
                t = np.ascontiguousarray(t[..., keep])
                v = v[keep]
        acc[i] = t.reshape(t.shape[0], -1)
        vals[i] = v
        nbits[i] = nb
        order[i] = labels
        kin[i] = k_inside
    values = acc[0][0] / float(1 << tree.total_cuts)
    return vals[0], values, order[0], bound


def _resolve_plan(tree, bases, plan):
    """Normalise the ``plan=`` knob of the tree/DAG reconstruction.

    ``None`` on a pure tree keeps the historical leaves-to-root kernels
    (bit-identical); ``None`` on a DAG searches a plan automatically
    (``"auto"``).  A method string (``"auto"``/``"fixed"``/``"greedy"``/
    ``"dp"``) searches with that planner; an explicit
    :class:`~repro.cutting.contraction.ContractionPlan` is validated and
    used as given.  Returns ``None`` exactly when the historical tree
    kernels should run.
    """
    from repro.cutting.contraction import (
        ContractionPlan,
        network_spec_for_tree,
        search_plan,
    )

    if plan is None:
        if tree.is_tree:
            return None
        plan = "auto"
    if isinstance(plan, ContractionPlan):
        plan.validate(tree.num_fragments)
        return plan
    return search_plan(network_spec_for_tree(tree, bases), plan)


class _NetCluster:
    """One cluster of the generic network contraction.

    ``groups`` lists the open cut groups, one leading tensor axis each
    (same order); the trailing axis is the flat joint output, bit ``j``
    carrying original qubit ``labels[j]``.  ``k_closed`` counts the cuts
    of groups contracted *inside* the cluster (normalisation bookkeeping
    of the pruning bound), ``members`` the fragment indices absorbed.
    """

    __slots__ = ("groups", "t", "labels", "members", "k_closed", "v")

    def __init__(self, groups, t, labels, members, k_closed=0, v=None):
        self.groups = groups
        self.t = t
        self.labels = labels
        self.members = members
        self.k_closed = k_closed
        self.v = v


def _network_clusters(tensors, tree, group_bases, vals=None):
    """Initial one-fragment clusters with per-group row axes.

    ``tensors[i]`` comes from :func:`build_tree_fragment_tensor` —
    ``(R_in_flat, R_out_1, .., R_out_C, D_i)`` — and the flat entering
    axis is split into one axis per entering group (C-order, so the
    first entering group is slowest, matching the flat row product).
    ``vals`` (pruned path) carries each node's kept output indices.
    """
    rows = [
        int(np.prod([len(p) for p in pools])) if pools else 1
        for pools in group_bases
    ]
    clusters = {}
    for i in range(tree.num_fragments):
        frag = tree.fragments[i]
        t = tensors[i]
        shape = (
            tuple(rows[h] for h in frag.in_groups)
            + t.shape[1:]
        )
        clusters[i] = _NetCluster(
            groups=list(frag.in_groups) + list(frag.meas_groups),
            t=t.reshape(shape),
            labels=list(frag.out_original),
            members={i},
            v=None if vals is None else vals[i],
        )
    return clusters


def _merge_clusters(a: "_NetCluster", b: "_NetCluster", group_sizes):
    """Contract two clusters over their shared open group axes.

    Shared axes are summed by one ``tensordot``; surviving group axes
    stay leading in ``a``-then-``b`` order and the two output axes merge
    into one flat axis with ``a``'s bits least significant
    (``labels = a.labels + b.labels``).  On the dense path the column
    index *is* the outcome value, so ``a``'s axis is raveled fastest; on
    the pruned path the kept columns' values live in ``v`` instead
    (``v_b`` shifted past ``a``'s bits) and the ravel keeps ``a``
    slowest, mirroring the tree kernel's child-append order.  With no
    shared group (disconnected halves of a multi-source DAG) the merge
    degenerates to an outer product.
    """
    shared = [g for g in a.groups if g in b.groups]
    ia = [a.groups.index(g) for g in shared]
    ib = [b.groups.index(g) for g in shared]
    t = np.tensordot(a.t, b.t, axes=(ia, ib))
    na = len(a.groups) - len(shared)
    # tensordot axes: (gA.., D_a, gB.., D_b)
    if a.v is None:
        # dense: (.., D_b, D_a) so the C-order reshape leaves a's bits
        # least significant in the flat column index
        t = np.moveaxis(t, na, -1)
        v = None
    else:
        # pruned: (.., kept_a, kept_b) matching the v merge's ravel order
        t = np.moveaxis(t, na, -2)
        v = (a.v[:, None] | (b.v << len(a.labels))[None, :]).ravel()
    t = t.reshape(t.shape[:-2] + (t.shape[-2] * t.shape[-1],))
    return _NetCluster(
        groups=[g for g in a.groups if g not in shared]
        + [g for g in b.groups if g not in shared],
        t=t,
        labels=a.labels + b.labels,
        members=a.members | b.members,
        k_closed=a.k_closed
        + b.k_closed
        + sum(group_sizes[g] for g in shared),
        v=v,
    )


def _contract_network(
    tensors, tree, plan, bases
) -> tuple[np.ndarray, list[int]]:
    """Planned pairwise contraction of a fragment network (dense).

    The DAG-general counterpart of :func:`_contract_tree`: node tensors
    are split into one row axis per incident group and merged pairwise in
    ``plan`` order; each merge is one ``tensordot`` over the groups the
    two clusters share.  Returns the joint output vector and the original
    qubit label of each bit, exactly like the tree kernel — on a pure
    tree with the fixed plan the merge sequence coincides with the
    historical order (equality to ≤ 1e-9; the tree kernel remains the
    bit-identical default).
    """
    group_bases = _normalise_chain_bases(bases, tree.group_sizes)
    clusters = _network_clusters(tensors, tree, group_bases)
    rep = list(range(tree.num_fragments))

    def find(x: int) -> int:
        while rep[x] != x:
            rep[x] = rep[rep[x]]
            x = rep[x]
        return x

    for a, b in plan.steps:
        ra, rb = find(a), find(b)
        if ra == rb:
            raise ReconstructionError(
                f"contraction plan merges cluster of fragment {a} with "
                "itself"
            )
        clusters[ra] = _merge_clusters(
            clusters[ra], clusters.pop(rb), tree.group_sizes
        )
        rep[rb] = ra
    (last,) = clusters.values()
    if last.groups:
        raise ReconstructionError(
            f"contraction plan leaves groups {last.groups} open"
        )
    return last.t, last.labels


def _contract_network_pruned(
    data, tree, bases, prune: PrunePolicy, dtype, plan
) -> tuple[np.ndarray, np.ndarray, list[int], float]:
    """Planned pairwise network contraction with outcome pruning.

    The DAG-general counterpart of :func:`_contract_tree_pruned`: after
    every merge the combined outcome axis is re-pruned by its
    mixed-input marginal — the all-``I`` row over every *open* group
    axis, normalised by the ``2^{k_closed}`` of the cuts contracted
    inside the cluster and scored against ``2^{Σ K_g}`` over the open
    groups *entering* the cluster (their joint state obeys
    ``ρ ≤ 2^{K}·I/2^{K}``; open exiting groups' ``I`` rows are plain
    outcome marginals and carry no scale).  Discarded mass accumulates
    into the returned rigorous ``prune_bound`` exactly as on the tree
    path.
    """
    group_bases = _normalise_chain_bases(bases, tree.group_sizes)
    irow = [_identity_row_index(pools) for pools in group_bases]
    tensors = []
    vals = []
    bound = 0.0
    for i in range(tree.num_fragments):
        t, _, _, keep, eps = build_tree_fragment_tensor(
            data, i, bases, dtype, prune
        )
        bound += max(eps, 0.0)
        tensors.append(t)
        vals.append(keep.astype(np.int64))
    clusters = _network_clusters(tensors, tree, group_bases, vals=vals)
    rep = list(range(tree.num_fragments))

    def find(x: int) -> int:
        while rep[x] != x:
            rep[x] = rep[rep[x]]
            x = rep[x]
        return x

    for a, b in plan.steps:
        ra, rb = find(a), find(b)
        if ra == rb:
            raise ReconstructionError(
                f"contraction plan merges cluster of fragment {a} with "
                "itself"
            )
        merged = _merge_clusters(
            clusters[ra], clusters.pop(rb), tree.group_sizes
        )
        rep[rb] = ra
        if merged.groups:
            sel = tuple(irow[g] for g in merged.groups)
            mass = np.maximum(
                merged.t[sel] / float(1 << merged.k_closed), 0.0
            )
            k_open_prep = sum(
                tree.group_sizes[g]
                for g in merged.groups
                if tree.group_dst[g] in merged.members
            )
            keep = prune.select(mass / float(1 << k_open_prep))
            if keep.size < mass.size:
                bound += max(float(mass.sum() - mass[keep].sum()), 0.0)
                merged.t = np.ascontiguousarray(merged.t[..., keep])
                merged.v = merged.v[keep]
        clusters[ra] = merged
    (last,) = clusters.values()
    if last.groups:
        raise ReconstructionError(
            f"contraction plan leaves groups {last.groups} open"
        )
    values = last.t / float(1 << tree.total_cuts)
    return last.v, values, last.labels, bound


def build_chain_fragment_tensor(
    data, index: int, bases=None, dtype=DEFAULT_DTYPE
) -> tuple[np.ndarray, list, list]:
    """Reduced tensor of one chain fragment: shape ``(R_prev, R_next, 2^{n_out})``.

    ``bases`` lists the per-group basis pools (see
    :func:`reconstruct_chain_distribution`); ``R_prev``/``R_next`` run over
    the basis rows of the entering/exiting cut group (dimension 1 at the
    chain ends).  Vectorised exactly like the pair builders: the fragment's
    records are stacked into one array with an axis per entering
    preparation code and exiting setting letter, then each exiting cut's
    ``U_k[m, t, r]`` and each entering cut's ``V_k[m, c]`` transfer matrix
    is contracted in with a single ``tensordot``.

    ``dtype`` is the accumulation precision: the default ``float64`` is
    bit-identical to the historical builder; ``float32`` halves memory
    traffic and is pinned to the float64 result at ≤ 1e-6 by the test
    suite (quasi-probabilities are O(1) and the contractions are short, so
    single precision loses no physics).
    """
    frag, records, prev_bases, next_bases, rows_prev, rows_next, fallback = (
        _chain_rows(data, index, bases)
    )
    Kp, Kn = frag.num_prep, frag.num_meas

    # entering side: preparation codes referenced by each cut's basis pool
    codes: list[list[str]] = []
    for pool in prev_bases:
        need: list[str] = []
        for m in pool:
            for c in _PREP_OF[m]:
                if c not in need:
                    need.append(c)
        codes.append(need)
    # exiting side: physical setting letters referenced by each pool
    letters: list[list[str]] = []
    for k, pool in enumerate(next_bases):
        need = []
        for m in pool:
            s = m if m != "I" else fallback[k]
            if s not in need:
                need.append(s)
        letters.append(need)

    needed = list(
        itertools.product(
            itertools.product(*codes), itertools.product(*letters)
        )
    )
    for combo in needed:
        if combo not in records:
            raise ReconstructionError(
                f"fragment {index} is missing variant {combo}"
            )

    n_out_dim = 1 << frag.n_out
    # astype is a no-op on the default float64 path (copy=False), keeping
    # it bit-identical; float32 converts once, before the heavy contractions
    T = np.stack([records[c] for c in needed]).astype(dtype, copy=False)
    shape = (
        tuple(len(c) for c in codes)
        + tuple(len(l) for l in letters)
        + (n_out_dim,)
        + (2,) * Kn
    )
    T = T.reshape(shape)
    # C-order split of b_cut yields bit axes most-significant first; reverse
    # them so trailing axis j = exiting cut j.
    lead = Kp + Kn + 1
    T = T.transpose(
        tuple(range(lead)) + tuple(range(lead + Kn - 1, lead - 1, -1))
    )

    # exiting cuts: U_k[m, t, r] = δ(t = setting(m)) · w_m(r)
    for k in range(Kn):
        pool, need = next_bases[k], letters[k]
        U = np.zeros((len(pool), len(need), 2), dtype=dtype)
        for i, m in enumerate(pool):
            t = need.index(m if m != "I" else fallback[k])
            U[i, t, 0] = 1.0
            U[i, t, 1] = 1.0 if m == "I" else -1.0
        nt = Kn - k  # remaining setting axes; r_k sits just past b_out
        T = np.moveaxis(
            np.tensordot(U, T, axes=([1, 2], [Kp, Kp + nt + 1])), 0, -1
        )
    # entering cuts: V_k[m, c] = eigenvalue weight of preparation c in m
    for k in range(Kp):
        pool, need = prev_bases[k], codes[k]
        V = np.zeros((len(pool), len(need)), dtype=dtype)
        for i, m in enumerate(pool):
            plus, minus = _PREP_OF[m]
            V[i, need.index(plus)] = 1.0
            V[i, need.index(minus)] = 1.0 if m == "I" else -1.0
        T = np.moveaxis(np.tensordot(V, T, axes=([1], [0])), 0, -1)

    # T axes: (b_out, m_next_0..m_next_{Kn-1}, m_prev_0..m_prev_{Kp-1})
    # -> (rows_prev, rows_next, b_out)
    T = np.moveaxis(T, 0, -1)
    T = T.transpose(
        tuple(range(Kn, Kn + Kp)) + tuple(range(Kn)) + (Kn + Kp,)
    )
    out = np.ascontiguousarray(
        T.reshape(len(rows_prev), len(rows_next), n_out_dim)
    )
    return out, rows_prev, rows_next


def build_chain_fragment_tensor_reference(
    data, index: int, bases=None
) -> tuple[np.ndarray, list, list]:
    """Row-by-row chain fragment tensor (reference semantics).

    One Python iteration per (entering row, exiting row) pair and per
    preparation eigenstate index — straight from the paper's Eq. 13 applied
    to both sides of the fragment.  Semantic ground truth for
    :func:`build_chain_fragment_tensor`.
    """
    frag, records, _, _, rows_prev, rows_next, fallback = _chain_rows(
        data, index, bases
    )
    out = np.zeros((len(rows_prev), len(rows_next), 1 << frag.n_out))
    for a, b, sign, signs_n, A in _chain_row_runs(
        index, frag, records, rows_prev, rows_next, fallback
    ):
        out[a, b] += sign * (A @ signs_n)
    return out, rows_prev, rows_next


def _identity_row_index(pools) -> int:
    """Flat index of the all-``I`` basis row in a C-order pool product.

    The ``I`` component of every cut's transfer factor is the *marginal*
    (entering side: unsigned sum over preparation eigenstates; exiting
    side: unsigned sum over outcome bits), so this row of any reduced /
    accumulated tensor is the mixed-input marginal the pruning policies
    score — see :mod:`repro.cutting.sparse`.  Golden neglect never drops
    ``I`` (:func:`repro.core.neglect.reduced_bases`), so the row exists
    for every reduced pool; a custom pool without ``I`` cannot be pruned.
    """
    idx = 0
    for pool in pools:
        if "I" not in pool:
            raise ReconstructionError(
                f"prune= needs the 'I' basis in every pool, missing in {pool}"
            )
        idx = idx * len(pool) + pool.index("I")
    return idx


def build_tree_fragment_tensor(
    data, index: int, bases=None, dtype=DEFAULT_DTYPE, prune=None
):
    """Reduced tensor of one tree node: one row axis per child group.

    Shape ``(R_in, R_out_1, .., R_out_C, 2^{n_out})`` with the child axes
    in the node's exiting-group order.  The heavy lifting is the flat
    kernel of :func:`build_chain_fragment_tensor` — the node's exiting
    basis rows are the product over its child groups' rows in flat cut
    order, so splitting the flat row axis into per-group axes is a C-order
    reshape.  Returns ``(tensor, rows_in, rows_per_group)``.

    ``dtype`` selects the accumulation precision (float64 default, exactly
    the historical result; float32 fast path pinned at ≤ 1e-6).  With a
    ``prune=`` policy (:func:`repro.cutting.sparse.threshold` /
    :func:`~repro.cutting.sparse.top_k`) the node's own output axis is
    pruned by its mixed-input marginal — the all-``I`` row over the
    entering *and* exiting pools — and the return grows to ``(tensor,
    rows_in, rows_per_group, kept, eps)``: ``kept`` are the surviving
    output indices (sorted, little-endian over ``frag.out_original``
    order) and ``eps`` the accumulated error-bound mass of everything
    discarded, in final-probability units (the true final mass any
    discarded outcome could carry is at most its entry of the all-``I``
    row, because the entering state obeys ``ρ ≤ 2^{K_in}·I/2^{K_in}``
    and the rest of the reconstruction is completely positive).
    """
    tree = _tree_of(data)
    frag = tree.fragments[index]
    T, rows_prev, _ = build_chain_fragment_tensor(data, index, bases, dtype)
    group_bases = _normalise_chain_bases(bases, tree.group_sizes)
    rows_per_group = [
        list(itertools.product(*group_bases[h])) for h in frag.meas_groups
    ]
    shape = (
        (len(rows_prev),)
        + tuple(len(r) for r in rows_per_group)
        + (1 << frag.n_out,)
    )
    T = T.reshape(shape)
    if prune is None:
        return T, rows_prev, rows_per_group

    in_pools = [
        pool for h in frag.in_groups for pool in group_bases[h]
    ]
    sel = (_identity_row_index(in_pools),) + tuple(
        _identity_row_index(group_bases[h]) for h in frag.meas_groups
    )
    # bound-units mass: 2^{K_in} × the node's mixed-input output marginal
    # (exiting cut bits marginalised by the exit I rows)
    mass = np.maximum(T[sel], 0.0)
    scale_in = float(1 << len(in_pools))
    keep = prune.select(mass / scale_in)
    eps = float(mass.sum() - mass[keep].sum())
    if keep.size < T.shape[-1]:
        T = np.ascontiguousarray(T[..., keep])
    return T, rows_prev, rows_per_group, keep, eps


def build_tree_fragment_tensor_reference(
    data, index: int, bases=None
) -> tuple[np.ndarray, list, list[list]]:
    """Row-by-row tree node tensor (reference semantics).

    The brute-force counterpart of :func:`build_tree_fragment_tensor`: one
    Python iteration per (entering row, flat exiting row) pair and per
    preparation eigenstate index, via
    :func:`build_chain_fragment_tensor_reference` — the same Eq. 13 row
    loop, with the flat row axis split into per-group axes afterwards
    (exact reshape, no arithmetic).
    """
    tree = _tree_of(data)
    frag = tree.fragments[index]
    T, rows_prev, _ = build_chain_fragment_tensor_reference(data, index, bases)
    group_bases = _normalise_chain_bases(bases, tree.group_sizes)
    rows_per_group = [
        list(itertools.product(*group_bases[h])) for h in frag.meas_groups
    ]
    shape = (
        (len(rows_prev),)
        + tuple(len(r) for r in rows_per_group)
        + (1 << frag.n_out,)
    )
    return T.reshape(shape), rows_prev, rows_per_group


def reconstruct_tree_distribution(
    data,
    bases=None,
    postprocess: str = "clip",
    prune: "PrunePolicy | None" = None,
    dtype=DEFAULT_DTYPE,
    plan=None,
):
    """Full output distribution of an uncut circuit from tree fragment data.

    The single reconstruction engine: every node's reduced tensor is built
    once, then the tree is contracted leaves to root — each edge is one
    ``tensordot`` over the shared cut-group row axis, so the cost is linear
    in the number of fragments and per-group row counts multiply only
    pairwise along edges, never globally.  ``bases`` lists per-group
    per-cut basis pools (``bases[g][k]``; ``None`` = full ``{I,X,Y,Z}``),
    letting golden cuts neglect elements group by group — each group's
    Kronecker factors are sliced independently.  Chains run through this
    engine via :func:`reconstruct_chain_distribution`.

    ``prune=None`` (default) returns the dense ``2^n`` vector exactly as
    before.  With a policy (:func:`repro.cutting.sparse.threshold` /
    :func:`~repro.cutting.sparse.top_k`) the contraction prunes outcome
    columns as it goes and returns a
    :class:`~repro.cutting.sparse.SparseDistribution` whose
    ``prune_bound`` rigorously bounds the L1 (hence TV) distance to the
    dense result of the same data; ``top_k(2^n)`` (or ``threshold(0)`` on
    non-negative data) keeps everything and is bit-identical to dense.
    ``dtype`` selects float64 (default, bit-identical to the historical
    path) or the float32 fast path (pinned at ≤ 1e-6).

    ``plan=`` selects the contraction order.  ``None`` keeps the
    historical leaves-to-root kernels on pure trees (bit-identical) and
    searches a :class:`~repro.cutting.contraction.ContractionPlan`
    automatically on DAGs; a method string (``"auto"``/``"fixed"``/
    ``"greedy"``/``"dp"``) forces a search with that planner, and an
    explicit plan object is validated and used as given (planned
    contraction is pinned at ≤ 1e-9 of the tree kernels).
    """
    tree = _tree_of(data)
    plan = _resolve_plan(tree, bases, plan)
    if prune is not None:
        if plan is not None:
            idx, values, order, bound = _contract_network_pruned(
                data, tree, bases, prune, dtype, plan
            )
        else:
            idx, values, order, bound = _contract_tree_pruned(
                data, tree, bases, prune, dtype
            )
        # value-index bit j carries original qubit order[j]: the sparse
        # counterpart of permute_probability_axes' dense reshuffle
        final = np.zeros_like(idx)
        for j, q in enumerate(order):
            final |= ((idx >> j) & 1) << q
        srt = np.argsort(final)
        sd = SparseDistribution(
            num_qubits=len(order),
            indices=final[srt],
            values=values[srt],
            prune_bound=bound,
        )
        return postprocess_sparse(sd, postprocess)
    # adjacent fragments share their group's rows by construction: both
    # sides are itertools.product over the same per-group pools in `bases`
    tensors = [
        build_tree_fragment_tensor(data, i, bases, dtype)[0]
        for i in range(tree.num_fragments)
    ]
    if plan is not None:
        v, order = _contract_network(tensors, tree, plan, bases)
    else:
        v, order = _contract_tree(tensors, tree)
    full = permute_probability_axes(
        v / float(1 << tree.total_cuts), order
    )
    return _postprocess(full, postprocess)


def reconstruct_chain_distribution(
    data,
    bases=None,
    postprocess: str = "clip",
    prune: "PrunePolicy | None" = None,
    dtype=DEFAULT_DTYPE,
    plan=None,
):
    """Full output distribution from chain fragment data.

    Thin wrapper over :func:`reconstruct_tree_distribution` — a chain is
    the linear tree, and since the tree refactor there is one contraction
    engine, not two.  ``prune=``/``dtype=``/``plan=`` carry the same
    semantics.
    """
    return reconstruct_tree_distribution(
        data,
        bases=bases,
        postprocess=postprocess,
        prune=prune,
        dtype=dtype,
        plan=plan,
    )


def reconstruct_tree_distribution_reference(
    data,
    bases=None,
    postprocess: str = "raw",
) -> np.ndarray:
    """Brute-force tree reconstruction (reference semantics).

    One Python iteration per element of the *full basis-row product across
    all cut groups* (``Π_g R_g`` terms — the cost the tree contraction
    avoids), each term an outer product of per-node reduced-row vectors
    taken from :func:`build_tree_fragment_tensor_reference`, with every
    node indexed by its entering group's row and each child group's row.
    Ground truth for ``tests/test_tree_equivalence.py``.
    """
    tree = _tree_of(data)
    tensors = []
    group_rows: list = [None] * tree.num_groups
    for i in range(tree.num_fragments):
        frag = tree.fragments[i]
        T, _, rows_per_group = build_tree_fragment_tensor_reference(
            data, i, bases
        )
        tensors.append(T)
        for h, rows in zip(frag.meas_groups, rows_per_group):
            group_rows[h] = rows

    n_total = len(tree.output_order())
    joint = np.zeros(1 << n_total)
    for combo in itertools.product(*[range(len(r)) for r in group_rows]):
        vec = None
        for i in range(tree.num_fragments):
            frag = tree.fragments[i]
            # flat entering row: C-order product over the entering groups
            # (later groups fastest), matching the flat pool concatenation
            a = 0
            for h in frag.in_groups:
                a = a * len(group_rows[h]) + combo[h]
            sel = tuple(combo[h] for h in frag.meas_groups)
            term = tensors[i][(a,) + sel]
            # outer product keeps earlier nodes least significant
            vec = term if vec is None else np.multiply.outer(term, vec).ravel()
        joint += vec
    joint /= float(1 << tree.total_cuts)
    full = permute_probability_axes(joint, tree.output_order())
    return _postprocess(full, postprocess)


def reconstruct_chain_distribution_reference(
    data,
    bases=None,
    postprocess: str = "raw",
) -> np.ndarray:
    """Brute-force chain reconstruction (reference semantics).

    Thin wrapper over :func:`reconstruct_tree_distribution_reference`
    (a chain is the linear tree); ground truth for
    ``tests/test_multi_fragment_equivalence.py``.
    """
    return reconstruct_tree_distribution_reference(
        data, bases=bases, postprocess=postprocess
    )


def reconstruct_distribution(
    data: FragmentData,
    bases: Sequence[Sequence[str]] | None = None,
    postprocess: str = "clip",
) -> np.ndarray:
    """Full output distribution of the uncut circuit (little-endian).

    This is the paper's main reconstruction: both fragment tensors are built
    and contracted with a single matrix product, then the joint is permuted
    back into the original register order.
    """
    A, rows_a = build_upstream_tensor(data, bases)
    B, rows_b = build_downstream_tensor(data, bases)
    if rows_a != rows_b:
        raise ReconstructionError("fragment tensors disagree on basis rows")
    K = data.pair.num_cuts
    joint = (A.T @ B) / float(1 << K)  # (2^{n1_out}, 2^{n2})
    # combined little-endian vector over (up outputs, down outputs)
    v = joint.ravel(order="F")
    perm = data.pair.output_order()
    full = permute_probability_axes(v, perm)
    return _postprocess(full, postprocess)


def reconstruct_expectation(
    data: FragmentData,
    diag_up: np.ndarray,
    diag_down: np.ndarray,
    bases: Sequence[Sequence[str]] | None = None,
) -> float:
    """Expectation of a separable diagonal observable (paper Eq. 14).

    ``diag_up`` / ``diag_down`` are the observable factors over the upstream
    and downstream *output* qubits (little-endian in
    ``pair.up_out_original`` / ``pair.down_out_original`` order), e.g. from
    :func:`repro.observables.decompose.split_diagonal_observable`.
    """
    A, rows_a = build_upstream_tensor(data, bases)
    B, rows_b = build_downstream_tensor(data, bases)
    if rows_a != rows_b:
        raise ReconstructionError("fragment tensors disagree on basis rows")
    diag_up = np.asarray(diag_up, dtype=np.float64)
    diag_down = np.asarray(diag_down, dtype=np.float64)
    if diag_up.shape != (A.shape[1],) or diag_down.shape != (B.shape[1],):
        raise ReconstructionError("observable factor shapes mismatch fragments")
    K = data.pair.num_cuts
    a = A @ diag_up
    b = B @ diag_down
    return float(np.dot(a, b) / (1 << K))


def reconstruct_counts(
    data,
    shots: int,
    bases=None,
    postprocess: str = "clip",
    prune: "PrunePolicy | None" = None,
    dtype=DEFAULT_DTYPE,
    seed: "int | np.random.Generator | None" = None,
    plan=None,
) -> dict[str, int]:
    """Reconstruction rendered as a counts dictionary.

    A convenience for downstream code written against backend ``counts``
    interfaces.  ``data`` may be pair :class:`FragmentData` or tree/chain
    :class:`~repro.cutting.execution.TreeFragmentData` (the latter accepts
    the ``prune=``/``dtype=`` knobs of
    :func:`reconstruct_tree_distribution`).  With ``seed=None`` (default)
    the distribution is scaled to ``shots`` and rounded — deterministic,
    no RNG is created or consumed, exactly the historical dense behaviour.
    Passing a seed draws one multinomial sample instead; on a pruned
    reconstruction the draw runs over the kept outcomes only, so the
    dense ``2^n`` vector is never materialised.
    """
    from repro.sim.sampler import probs_to_counts, sample_counts

    if isinstance(data, TreeFragmentData):
        probs = reconstruct_tree_distribution(
            data,
            bases=bases,
            postprocess=postprocess,
            prune=prune,
            dtype=dtype,
            plan=plan,
        )
        if isinstance(probs, SparseDistribution):
            if seed is None:
                return probs.to_counts(shots)
            return probs.sample_counts(shots, seed)
    else:
        if prune is not None:
            raise ReconstructionError(
                "prune= needs tree/chain fragment data; pair data is dense"
            )
        if plan is not None:
            raise ReconstructionError(
                "plan= needs tree/chain fragment data; pair data has no "
                "fragment network"
            )
        probs = reconstruct_distribution(
            data, bases=bases, postprocess=postprocess
        )
    n = int(np.log2(probs.size))
    if seed is None:
        return probs_to_counts(probs, shots, n)
    return sample_counts(probs, shots, seed, n)


# ---------------------------------------------------------------------------


def project_to_simplex(v: np.ndarray) -> np.ndarray:
    """Euclidean projection of a vector onto the probability simplex.

    Standard O(n log n) algorithm (Held–Wolfe–Crowder): sort, find the
    largest prefix whose water-filling threshold keeps entries positive.
    """
    v = np.asarray(v, dtype=np.float64)
    u = np.sort(v)[::-1]
    css = np.cumsum(u) - 1.0
    rho_idx = np.nonzero(u - css / (np.arange(v.size) + 1) > 0)[0]
    if rho_idx.size == 0:
        out = np.zeros_like(v)
        out[np.argmax(v)] = 1.0
        return out
    rho = rho_idx[-1]
    tau = css[rho] / (rho + 1.0)
    return np.clip(v - tau, 0.0, None)


def _postprocess(vec, mode: str):
    if isinstance(vec, SparseDistribution):
        return postprocess_sparse(vec, mode)
    if mode == "raw":
        return vec
    if mode == "clip":
        out = np.clip(vec, 0.0, None)
        s = out.sum()
        if s <= 0:
            raise ReconstructionError("reconstruction clipped to zero mass")
        return out / s
    if mode == "simplex":
        return project_to_simplex(vec)
    raise ReconstructionError(f"unknown postprocess mode {mode!r}")
