"""Cut specifications and the single-bipartition cut search entry point.

A :class:`CutPoint` severs one qubit wire immediately *after* a given
instruction; a :class:`CutSpec` is an ordered collection of such points
(order defines the cut index ``k`` used by reconstruction tensors).
:func:`find_cuts` finds one bipartition under a fragment-width budget; it
is a thin ``num_fragments=2`` wrapper over the multi-fragment searcher in
:mod:`repro.cutting.search`, which solves small circuits exactly and falls
back to a greedy DAG-prefix heuristic on wider ones.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuits.circuit import Circuit
from repro.exceptions import CutError

__all__ = ["CutPoint", "CutSpec", "find_cuts"]


@dataclass(frozen=True, order=True)
class CutPoint:
    """Cut wire ``wire`` right after instruction index ``gate_index``.

    ``gate_index`` must be an instruction acting on ``wire`` and must not be
    the last instruction on that wire (cutting after the final gate would
    sever nothing).
    """

    wire: int
    gate_index: int

    def validate(self, circuit: Circuit) -> None:
        if not 0 <= self.wire < circuit.num_qubits:
            raise CutError(f"cut wire {self.wire} outside circuit")
        if not 0 <= self.gate_index < len(circuit):
            raise CutError(f"cut gate index {self.gate_index} outside circuit")
        if self.wire not in circuit[self.gate_index].qubits:
            raise CutError(
                f"instruction {self.gate_index} does not touch wire {self.wire}"
            )
        last_on_wire = max(
            i for i, inst in enumerate(circuit) if self.wire in inst.qubits
        )
        if self.gate_index == last_on_wire:
            raise CutError(
                f"cut after instruction {self.gate_index} severs nothing: "
                f"it is the last instruction on wire {self.wire}"
            )


@dataclass(frozen=True)
class CutSpec:
    """An ordered tuple of cut points defining one bipartition."""

    cuts: tuple[CutPoint, ...]

    def __post_init__(self) -> None:
        wires = [c.wire for c in self.cuts]
        if len(set(wires)) != len(wires):
            raise CutError(
                "multiple cuts on one wire are not supported (the paper "
                "restricts to bipartitions; see DESIGN.md)"
            )
        if not self.cuts:
            raise CutError("CutSpec needs at least one cut")

    @property
    def num_cuts(self) -> int:
        return len(self.cuts)

    @property
    def wires(self) -> tuple[int, ...]:
        return tuple(c.wire for c in self.cuts)

    def validate(self, circuit: Circuit) -> None:
        for c in self.cuts:
            c.validate(circuit)


def find_cuts(
    circuit: Circuit,
    max_fragment_qubits: int,
    max_cuts: int = 3,
) -> CutSpec:
    """Search for a valid cut set that fits both fragments in the budget.

    A ``num_fragments=2`` front end for
    :func:`repro.cutting.search.find_cut_specs` with the CutQC-style
    ``"width"`` objective (fewest cuts first, then smallest
    larger-fragment width): small circuits are solved by the exhaustive
    reference engine, wider ones by the greedy DAG-prefix heuristic with
    hill-climbing.  Raises :class:`CutError` when no such cut exists.
    """
    from repro.cutting.search import find_cut_specs  # cycle-free local import

    specs = find_cut_specs(
        circuit,
        max_fragment_qubits,
        num_fragments=2,
        max_cuts=max_cuts,
        objective="width",
    )
    return specs[0]
