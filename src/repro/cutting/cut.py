"""Cut specifications and automatic cut search.

A :class:`CutPoint` severs one qubit wire immediately *after* a given
instruction; a :class:`CutSpec` is an ordered collection of such points
(order defines the cut index ``k`` used by reconstruction tensors).
:func:`find_cuts` searches for a valid bipartition under a fragment-width
budget by brute force over wire positions — tractable because the paper's
circuits are narrow; a greedy DAG-balance heuristic prunes the search on
wider circuits.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.circuits.circuit import Circuit
from repro.circuits.dag import CircuitDag
from repro.exceptions import CutError

__all__ = ["CutPoint", "CutSpec", "find_cuts"]


@dataclass(frozen=True, order=True)
class CutPoint:
    """Cut wire ``wire`` right after instruction index ``gate_index``.

    ``gate_index`` must be an instruction acting on ``wire`` and must not be
    the last instruction on that wire (cutting after the final gate would
    sever nothing).
    """

    wire: int
    gate_index: int

    def validate(self, circuit: Circuit) -> None:
        if not 0 <= self.wire < circuit.num_qubits:
            raise CutError(f"cut wire {self.wire} outside circuit")
        if not 0 <= self.gate_index < len(circuit):
            raise CutError(f"cut gate index {self.gate_index} outside circuit")
        if self.wire not in circuit[self.gate_index].qubits:
            raise CutError(
                f"instruction {self.gate_index} does not touch wire {self.wire}"
            )


@dataclass(frozen=True)
class CutSpec:
    """An ordered tuple of cut points defining one bipartition."""

    cuts: tuple[CutPoint, ...]

    def __post_init__(self) -> None:
        wires = [c.wire for c in self.cuts]
        if len(set(wires)) != len(wires):
            raise CutError(
                "multiple cuts on one wire are not supported (the paper "
                "restricts to bipartitions; see DESIGN.md)"
            )
        if not self.cuts:
            raise CutError("CutSpec needs at least one cut")

    @property
    def num_cuts(self) -> int:
        return len(self.cuts)

    @property
    def wires(self) -> tuple[int, ...]:
        return tuple(c.wire for c in self.cuts)

    def validate(self, circuit: Circuit) -> None:
        for c in self.cuts:
            c.validate(circuit)


def find_cuts(
    circuit: Circuit,
    max_fragment_qubits: int,
    max_cuts: int = 3,
) -> CutSpec:
    """Search for a valid cut set that fits both fragments in the budget.

    Tries all combinations of up to ``max_cuts`` single-wire cut positions
    (smallest cut count first, then smallest larger-fragment width) and
    returns the first whose bipartition is valid and fits.  Raises
    :class:`CutError` when no such cut exists.
    """
    from repro.cutting.fragments import bipartition  # cycle-free local import

    dag = CircuitDag(circuit)
    candidates: list[CutPoint] = []
    for wire in range(circuit.num_qubits):
        segs = dag.wire_segments(wire)
        for g in segs[:-1]:  # cutting after the last gate severs nothing
            candidates.append(CutPoint(wire, g))

    best: tuple[tuple[int, int], CutSpec] | None = None
    for k in range(1, max_cuts + 1):
        for combo in itertools.combinations(candidates, k):
            wires = [c.wire for c in combo]
            if len(set(wires)) != len(wires):
                continue
            spec = CutSpec(tuple(combo))
            try:
                pair = bipartition(circuit, spec)
            except CutError:
                continue
            n1 = pair.upstream.num_qubits
            n2 = pair.downstream.num_qubits
            if max(n1, n2) > max_fragment_qubits:
                continue
            key = (k, max(n1, n2))
            if best is None or key < best[0]:
                best = (key, spec)
        if best is not None:
            return best[1]
    raise CutError(
        f"no bipartition with <= {max_cuts} cuts fits fragments of "
        f"<= {max_fragment_qubits} qubits"
    )
