"""Shot-budget allocation across fragment variants.

The paper uses a *uniform* allocation — every (sub)circuit variant gets the
same number of shots (e.g. 1000 per variant in Figs. 4–5) — so that is the
default.  Two refinements are provided for the ablation benches:

* ``proportional``: weight upstream settings equally but give downstream
  variants a share proportional to the number of reconstruction rows that
  consume them (variants feeding more rows earn more shots);
* ``fixed_total``: divide a global budget evenly, rounding down.
"""

from __future__ import annotations

from typing import Sequence

from repro.exceptions import CutError

__all__ = [
    "allocate_chain_pilot_shots",
    "allocate_chain_shots",
    "allocate_shots",
    "allocate_tree_pilot_shots",
    "allocate_tree_shots",
    "reallocate_shots",
]

#: default pilot sizing (matches ``cut_and_run``'s detect mode): a quarter
#: of the production per-variant budget, but never fewer than this floor.
PILOT_FRACTION = 0.25
PILOT_FLOOR = 100


def allocate_shots(
    num_upstream: int,
    num_downstream: int,
    shots_per_variant: int | None = None,
    total_shots: int | None = None,
    scheme: str = "uniform",
    inits: "Sequence[tuple[str, ...]] | None" = None,
) -> tuple[int, dict]:
    """Return ``(shots_per_variant, report)`` for the requested scheme.

    Exactly one of ``shots_per_variant`` and ``total_shots`` must be given.
    The report dictionary summarises the resulting budget (used by the
    benchmark tables: total executions is the paper's 4.5e5 vs 3.0e5 claim).

    ``scheme="proportional"`` divides ``total_shots`` by reconstruction-row
    fan-in: every upstream setting feeds the same ``2^K`` rows and is
    weighted equally, while a downstream preparation variant earns a share
    proportional to the number of rows consuming it — ``2^{#Z±}``, because
    the ``Z±`` eigenstates serve both the ``I`` and ``Z`` rows of their cut
    whereas ``X±``/``Y±`` serve only their own basis row.  ``inits`` names
    the downstream preparation tuples (e.g. a golden-reduced pool); when
    omitted the counts must be the full ``3^K`` / ``6^K`` pools.  The
    returned scalar is the *smallest* per-variant allocation; the exact
    per-variant split is in ``report["upstream_shots"]`` /
    ``report["downstream_shots"]``.
    """
    n_var = num_upstream + num_downstream
    if n_var <= 0:
        raise CutError("no variants to allocate shots to")
    if (shots_per_variant is None) == (total_shots is None):
        raise CutError("specify exactly one of shots_per_variant / total_shots")
    if scheme not in ("uniform", "fixed_total", "proportional"):
        raise CutError(f"unknown allocation scheme {scheme!r}")

    if scheme == "proportional":
        return _allocate_proportional(
            num_upstream, num_downstream, shots_per_variant, total_shots, inits
        )

    if shots_per_variant is None:
        per = total_shots // n_var
        if per <= 0:
            raise CutError(
                f"total budget {total_shots} too small for {n_var} variants"
            )
    else:
        per = shots_per_variant
        if per <= 0:
            raise CutError("shots_per_variant must be positive")

    report = {
        "scheme": scheme,
        "num_upstream": num_upstream,
        "num_downstream": num_downstream,
        "shots_per_variant": per,
        "total_executions": per * n_var,
    }
    return per, report


def _largest_remainder(weights: "list[float]", total: int) -> list[int]:
    """Apportion ``total`` integer shots by weight, conserving the sum."""
    scale = sum(weights)
    raw = [total * w / scale for w in weights]
    alloc = [int(x) for x in raw]
    leftover = total - sum(alloc)
    by_fraction = sorted(
        range(len(raw)), key=lambda i: (alloc[i] - raw[i], i)
    )
    for i in by_fraction[:leftover]:
        alloc[i] += 1
    return alloc


def _allocate_proportional(
    num_upstream: int,
    num_downstream: int,
    shots_per_variant: "int | None",
    total_shots: "int | None",
    inits: "Sequence[tuple[str, ...]] | None",
) -> tuple[int, dict]:
    """The row-fan-in weighted split documented on :func:`allocate_shots`."""
    if total_shots is None:
        raise CutError(
            "proportional allocation divides a global budget; pass "
            "total_shots, not shots_per_variant"
        )
    if inits is None:
        num_cuts = 0
        while 3**num_cuts < num_upstream:
            num_cuts += 1
        if 3**num_cuts != num_upstream or 6**num_cuts != num_downstream:
            raise CutError(
                "proportional allocation needs the downstream preparation "
                "tuples (inits=) when the variant counts are not the full "
                "3^K / 6^K pools"
            )
        from repro.cutting.variants import downstream_init_tuples

        inits = downstream_init_tuples(num_cuts)
    else:
        inits = [tuple(i) for i in inits]
        if len(inits) != num_downstream:
            raise CutError(
                f"got {len(inits)} preparation tuples for {num_downstream} "
                "downstream variants"
            )
        num_cuts = len(inits[0]) if inits else 0
    # each setting feeds all 2^K rows; a preparation feeds 2 rows (I and Z)
    # per Z± entry and 1 row (its own basis) per X±/Y± entry.
    up_weight = float(2**num_cuts)
    down_weights = [
        float(2 ** sum(1 for code in init if code.startswith("Z")))
        for init in inits
    ]
    alloc = _largest_remainder(
        [up_weight] * num_upstream + down_weights, total_shots
    )
    if min(alloc) <= 0:
        raise CutError(
            f"total budget {total_shots} too small to give every variant a "
            "positive proportional share"
        )
    upstream_shots = alloc[:num_upstream]
    downstream_shots = dict(zip(inits, alloc[num_upstream:]))
    report = {
        "scheme": "proportional",
        "num_upstream": num_upstream,
        "num_downstream": num_downstream,
        "shots_per_variant": min(alloc),
        "upstream_shots": upstream_shots,
        "downstream_shots": downstream_shots,
        "total_executions": sum(alloc),
    }
    return min(alloc), report


def allocate_tree_shots(
    variants_per_fragment: Sequence[int],
    shots_per_variant: int | None = None,
    total_shots: int | None = None,
    scheme: str = "uniform",
) -> tuple[int, dict]:
    """Shot budget for a fragment tree: ``(shots_per_variant, report)``.

    The tree generalisation of :func:`allocate_shots` —
    ``variants_per_fragment[i]`` counts fragment ``i``'s ``(inits, setting)``
    combos (interior fragments pay the ``6^{K_in} · 3^{K_out}`` product over
    their entering group and flat exiting cuts, which is why neglecting
    bases per cut group matters more as trees grow).  The report carries the
    per-fragment breakdown for cost tables.  Chains are linear trees;
    :func:`allocate_chain_shots` is an alias.
    """
    counts = [int(c) for c in variants_per_fragment]
    if len(counts) < 2:
        raise CutError("a fragment tree has at least two fragments")
    if any(c <= 0 for c in counts):
        raise CutError("every tree fragment needs at least one variant")
    if scheme == "proportional":
        raise CutError(
            "the proportional scheme weighs one bipartition's "
            "upstream/downstream pools; tree allocation is per-variant "
            "uniform (see allocate_shots)"
        )
    per, report = allocate_shots(
        counts[0],
        sum(counts[1:]),
        shots_per_variant=shots_per_variant,
        total_shots=total_shots,
        scheme=scheme,
    )
    report = {
        "scheme": report["scheme"],
        "variants_per_fragment": counts,
        "num_variants": sum(counts),
        "shots_per_variant": per,
        "total_executions": per * sum(counts),
    }
    return per, report


def allocate_tree_pilot_shots(
    pilot_variants_per_fragment: Sequence[int],
    shots_per_variant: int,
    pilot_shots: int | None = None,
) -> tuple[int, dict]:
    """Pilot budget for tree golden detection: ``(pilot_shots, report)``.

    ``pilot_variants_per_fragment[i]`` counts the *pilot* combos fragment
    ``i`` runs during the detection sweep — zero for fragments the sweep
    skips (always the leaves, which have no exiting cuts and therefore
    nothing to test).  ``pilot_shots=None`` derives the paper-mode default
    from the production per-variant budget:
    ``max(PILOT_FLOOR, shots_per_variant · PILOT_FRACTION)``, the same rule
    :func:`~repro.core.pipeline.cut_and_run` applies to bipartitions.  The
    report feeds the pipeline's cost accounting (pilot executions are kept
    separate from production ones, mirroring the pair path's bookkeeping).
    Chains are linear trees; :func:`allocate_chain_pilot_shots` is an
    alias.
    """
    counts = [int(c) for c in pilot_variants_per_fragment]
    if len(counts) < 2:
        raise CutError("a fragment tree has at least two fragments")
    if any(c < 0 for c in counts):
        raise CutError("pilot variant counts cannot be negative")
    if sum(counts) == 0:
        raise CutError("no pilot variants to allocate shots to")
    if pilot_shots is None:
        if shots_per_variant <= 0:
            raise CutError("shots_per_variant must be positive")
        pilot_shots = max(PILOT_FLOOR, int(shots_per_variant * PILOT_FRACTION))
    if pilot_shots <= 0:
        raise CutError("pilot_shots must be positive")
    report = {
        "pilot_shots_per_variant": pilot_shots,
        "pilot_variants_per_fragment": counts,
        "pilot_num_variants": sum(counts),
        "pilot_executions": pilot_shots * sum(counts),
    }
    return pilot_shots, report


def reallocate_shots(
    variants_per_fragment: Sequence[int],
    failed_per_fragment: Sequence[int],
    shots_per_variant: int,
) -> tuple[int, dict]:
    """Fold dead variant families' shot budget back into the survivors.

    When graceful degradation retires variants, the shots they would have
    consumed are not free capacity to waste: redistributing the *original
    total budget* evenly over the surviving variants gives each survivor
    ``total // survivors`` shots.  Returns ``(boosted_shots_per_variant,
    report)``; the pipeline surfaces the report so a re-run (or a serving
    layer topping up live) knows the boosted budget that keeps total device
    time flat.
    """
    totals = [int(c) for c in variants_per_fragment]
    failed = [int(f) for f in failed_per_fragment]
    if len(totals) != len(failed):
        raise CutError("variant and failure counts must align per fragment")
    if shots_per_variant <= 0:
        raise CutError("shots_per_variant must be positive")
    if any(f < 0 or f > c for f, c in zip(failed, totals)):
        raise CutError("failed variant counts must be within [0, variants]")
    survivors_per_fragment = [c - f for c, f in zip(totals, failed)]
    if any(s <= 0 for s in survivors_per_fragment):
        raise CutError(
            "a fragment lost every variant; reallocation cannot recover it"
        )
    survivors = sum(survivors_per_fragment)
    budget = shots_per_variant * sum(totals)
    per = budget // survivors
    report = {
        "shots_per_variant": per,
        "original_shots_per_variant": shots_per_variant,
        "survivors": survivors,
        "failed": sum(failed),
        "total_budget": budget,
        "boost_factor": per / shots_per_variant,
    }
    return per, report


#: Chains are linear trees; the chain names remain as aliases of the single
#: tree implementation.
allocate_chain_shots = allocate_tree_shots
allocate_chain_pilot_shots = allocate_tree_pilot_shots
