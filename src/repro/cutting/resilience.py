"""Retry, backoff, deadlines, and graceful degradation for fragment runs.

One :class:`RetryEngine` serves both the serial execution path
(:func:`~repro.cutting.execution.run_tree_fragments`) and the threaded one
(:func:`~repro.parallel.executor.run_tree_fragments_parallel`), so retry
semantics, ledger records, and RNG handling cannot drift between them.

**Bit-identity contract.**  The healthy fast path of :meth:`RetryEngine
.run_batch` issues exactly one batched backend call whose per-variant
streams are the :func:`~repro.utils.rng.spawn_seed_sequences` children the
retry-free call would have spawned internally — so with no fault the counts
are bit-identical to a run without the resilience layer.  When a variant
fails, only *that* variant is replayed: every attempt rebuilds the
variant's generator fresh from its SeedSequence child, so a retried
execution samples the same stream the batch would have, and survivors are
untouched.

**Degradation bound.**  When a variant family is permanently dead,
:func:`plan_degradation` demotes basis letters out of the reconstruction
pools until no dead variant is required.  Dropping the basis set
``D_c`` at cut ``c`` removes the CPTP-factored channel terms
``Φ_M(ρ) = ½ Tr_w[(M ⊗ I) ρ] ⊗ M`` for ``M ∈ D_c`` from the exact identity
``ρ = Σ_M Φ_M(ρ)``.  Each ``Φ_M`` has 1→1 trace-norm at most 1 (the Pauli
``M`` has trace norm 2, the ½ and the contractive partial trace give
``‖Φ_M‖₁→₁ ≤ 1``), so telescoping the product over cuts bounds the
total-variation error of the degraded reconstruction by

    TV  ≤  ½ · ( Π_c (1 + |D_c|) − 1 ),

i.e. ½ per single demoted basis, compounding multiplicatively across cuts.
:func:`degradation_tv_penalty` implements exactly this;
``TreeRunResult.tv_bound()`` adds it to the sampling and pruning terms so a
degraded answer is still a bounded answer.
"""

from __future__ import annotations

import hashlib
import itertools
import threading
import time as _time
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.backends.base import ExecutionResult, validate_execution_result
from repro.exceptions import (
    CircuitBreakerOpenError,
    CorruptedResultError,
    DeadlineExceededError,
    RetryExhaustedError,
    TransientBackendError,
)

__all__ = [
    "AttemptLedger",
    "AttemptRecord",
    "CircuitBreaker",
    "RetryEngine",
    "RetryPolicy",
    "degradation_tv_penalty",
    "plan_degradation",
    "required_tree_variants",
    "site_key",
]


def site_key(site) -> int:
    """Stable 64-bit integer identity of an execution site."""
    digest = hashlib.sha256(repr(site).encode()).digest()
    return int.from_bytes(digest[:8], "little")


# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RetryPolicy:
    """How hard to try before giving up.

    Attributes
    ----------
    max_attempts:
        Attempts per variant (first try included).
    base_delay / max_delay:
        Bounds of the decorrelated-jitter backoff, in modelled seconds.
    deadline:
        Total modelled-seconds budget (attempt latencies + backoff) across
        the whole ledger; ``None`` = unlimited.  Measured from the shared
        :class:`AttemptLedger` rather than any one backend clock so the
        threaded executor's per-worker clocks agree on it.
    attempt_timeout:
        A single attempt whose modelled latency exceeds this is treated as
        a hung transient and retried; ``None`` disables hang detection.
    breaker_threshold:
        Consecutive failures on one fragment before its circuit breaker
        opens and remaining variants fail fast; ``None`` disables.
    jitter_seed:
        Seed of the backoff jitter stream.  Delays are deterministic per
        ``(jitter_seed, site, attempt)`` so serial and threaded runs charge
        identical backoff.
    sleep:
        Really ``time.sleep`` the backoff (off by default — backoff is
        charged to the ledger as modelled time, keeping tests instant).
    validate:
        Boundary-validate every payload via
        :func:`~repro.backends.base.validate_execution_result`.
    retry_on:
        Exception classes treated as retryable.
    """

    max_attempts: int = 4
    base_delay: float = 0.05
    max_delay: float = 2.0
    deadline: float | None = None
    attempt_timeout: float | None = None
    breaker_threshold: int | None = None
    jitter_seed: int = 0
    sleep: bool = False
    validate: bool = True
    retry_on: tuple = (TransientBackendError,)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.base_delay < 0 or self.max_delay < self.base_delay:
            raise ValueError("need 0 <= base_delay <= max_delay")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError("deadline must be positive")
        if self.attempt_timeout is not None and self.attempt_timeout <= 0:
            raise ValueError("attempt_timeout must be positive")
        if self.breaker_threshold is not None and self.breaker_threshold < 1:
            raise ValueError("breaker_threshold must be at least 1")
        object.__setattr__(self, "retry_on", tuple(self.retry_on))

    def backoff_delay(self, site, attempt: int, prev_delay: float) -> float:
        """Decorrelated-jitter backoff: uniform in [base, min(max, 3·prev)].

        Deterministic per ``(jitter_seed, site, attempt)`` — the keystone
        of serial == thread ledger identity.
        """
        rng = np.random.default_rng(
            np.random.SeedSequence([self.jitter_seed, site_key(site), attempt])
        )
        lo = self.base_delay
        hi = max(lo, min(self.max_delay, max(prev_delay, lo) * 3.0))
        return float(rng.uniform(lo, hi))


# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AttemptRecord:
    """One execution attempt: where, which try, how it went, what it cost."""

    site: tuple
    attempt: int
    outcome: str  # ok | transient | corrupt | exhausted | breaker_open | batch_fault
    latency: float = 0.0
    backoff: float = 0.0
    error: str | None = None


class AttemptLedger:
    """Thread-safe append-only log of every execution attempt.

    The ledger is both the observability surface (``summary()``) and the
    deadline meter: ``elapsed()`` sums modelled latencies and backoff, so
    one budget spans serial and threaded execution alike.  ``canonical()``
    returns an order-insensitive form for comparing a threaded run's ledger
    against a serial one.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._records: list[AttemptRecord] = []

    def record(
        self,
        site,
        attempt: int,
        outcome: str,
        latency: float = 0.0,
        backoff: float = 0.0,
        error: str | None = None,
    ) -> None:
        rec = AttemptRecord(
            site=site,
            attempt=attempt,
            outcome=outcome,
            latency=float(latency),
            backoff=float(backoff),
            error=error,
        )
        with self._lock:
            self._records.append(rec)

    @property
    def records(self) -> list[AttemptRecord]:
        with self._lock:
            return list(self._records)

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def elapsed(self) -> float:
        """Modelled seconds consumed so far (latencies + backoff)."""
        with self._lock:
            return sum(r.latency + r.backoff for r in self._records)

    def attempts_for(self, site) -> list[AttemptRecord]:
        return [r for r in self.records if r.site == site]

    def canonical(self) -> tuple:
        """Execution-order-insensitive form for serial == thread checks."""
        return tuple(
            sorted(
                (
                    repr(r.site),
                    r.attempt,
                    r.outcome,
                    round(r.latency, 9),
                    round(r.backoff, 9),
                    r.error or "",
                )
                for r in self.records
            )
        )

    def summary(self) -> dict:
        records = self.records
        outcomes: dict[str, int] = {}
        for r in records:
            outcomes[r.outcome] = outcomes.get(r.outcome, 0) + 1
        return {
            "attempts": len(records),
            "sites": len({repr(r.site) for r in records}),
            "retries": sum(1 for r in records if r.attempt > 1),
            "failures": sum(1 for r in records if r.outcome != "ok"),
            "outcomes": outcomes,
            "total_latency": sum(r.latency for r in records),
            "total_backoff": sum(r.backoff for r in records),
        }


class CircuitBreaker:
    """Per-key count of failures since the last success."""

    def __init__(self, threshold: int | None) -> None:
        self.threshold = threshold
        self._lock = threading.Lock()
        self._failures: dict = {}

    def is_open(self, key) -> bool:
        if self.threshold is None:
            return False
        with self._lock:
            return self._failures.get(key, 0) >= self.threshold

    def failure(self, key) -> None:
        with self._lock:
            self._failures[key] = self._failures.get(key, 0) + 1

    def success(self, key) -> None:
        with self._lock:
            self._failures[key] = 0


# ----------------------------------------------------------------------
class RetryEngine:
    """The shared retry/backoff/deadline executor.

    Stateless apart from its ledger and per-fragment breaker counts; safe
    to call concurrently from the threaded executor's workers.
    """

    def __init__(self, policy: RetryPolicy, ledger: AttemptLedger | None = None):
        self.policy = policy
        self.ledger = ledger if ledger is not None else AttemptLedger()
        self.breaker = CircuitBreaker(policy.breaker_threshold)

    # ------------------------------------------------------------------
    def _check_deadline(self) -> None:
        deadline = self.policy.deadline
        if deadline is not None:
            elapsed = self.ledger.elapsed()
            if elapsed >= deadline:
                raise DeadlineExceededError(
                    f"modelled-time budget of {deadline}s exhausted "
                    f"({elapsed:.3f}s consumed)"
                )

    def run_single(
        self,
        site,
        call: Callable[[], ExecutionResult],
        expected_shots: int,
        expected_qubits: int,
        clock,
        breaker_key=None,
        on_exhausted: str = "raise",
    ) -> ExecutionResult | None:
        """Execute one variant with retries.

        ``call`` must rebuild the variant's RNG stream from scratch on each
        invocation (e.g. ``default_rng(seed_sequence_child)``) so retries
        re-sample the exact stream the healthy run would have used.
        Returns ``None`` instead of raising when ``on_exhausted="degrade"``
        and the variant is exhausted or breaker-blocked; deadline errors
        always raise.
        """
        policy = self.policy
        prev_delay = 0.0
        for attempt in range(1, policy.max_attempts + 1):
            self._check_deadline()
            if breaker_key is not None and self.breaker.is_open(breaker_key):
                self.ledger.record(site, attempt, "breaker_open")
                if on_exhausted == "degrade":
                    return None
                raise CircuitBreakerOpenError(
                    f"circuit breaker open for fragment {breaker_key!r}; "
                    f"failing {site!r} fast"
                )
            start = clock.now
            try:
                result = call()
                latency = clock.now - start
                if (
                    policy.attempt_timeout is not None
                    and latency > policy.attempt_timeout
                ):
                    raise TransientBackendError(
                        f"attempt latency {latency:.3f}s exceeded timeout "
                        f"{policy.attempt_timeout}s (treating as hang)",
                        site=site,
                        attempt=attempt,
                    )
                if policy.validate:
                    validate_execution_result(result, expected_shots, expected_qubits)
            except policy.retry_on as exc:
                latency = clock.now - start
                final = attempt == policy.max_attempts
                delay = (
                    0.0 if final else policy.backoff_delay(site, attempt, prev_delay)
                )
                outcome = (
                    "exhausted"
                    if final
                    else ("corrupt" if isinstance(exc, CorruptedResultError) else "transient")
                )
                self.ledger.record(
                    site, attempt, outcome, latency=latency, backoff=delay,
                    error=str(exc),
                )
                if breaker_key is not None:
                    self.breaker.failure(breaker_key)
                if final:
                    if on_exhausted == "degrade":
                        return None
                    raise RetryExhaustedError(
                        f"variant {site!r} failed after {attempt} attempts: {exc}",
                        site=site,
                    ) from exc
                prev_delay = delay
                if policy.sleep and delay > 0:
                    _time.sleep(delay)
                continue
            self.ledger.record(site, attempt, "ok", latency=latency)
            if breaker_key is not None:
                self.breaker.success(breaker_key)
            return result
        raise AssertionError("unreachable")  # pragma: no cover

    def run_batch(
        self,
        sites: Sequence[tuple],
        children: Sequence[np.random.SeedSequence],
        batch_call: Callable[[list], list],
        single_call: Callable[[int, np.random.Generator], ExecutionResult],
        expected_shots: int,
        expected_qubits,
        clock,
        breaker_key=None,
        on_exhausted: str = "raise",
    ) -> tuple[list, list[int]]:
        """Batch-first execution: one batched attempt, per-variant replay.

        The healthy path is a single ``batch_call`` with explicit
        per-variant generators — bit-identical to the retry-free batched
        call.  On any retryable failure (or payload validation failure) the
        whole family is replayed variant-by-variant through
        :meth:`run_single`; survivors re-sample their original streams so
        only genuinely faulted variants cost extra attempts.  Returns
        ``(results, dead)`` where ``results[j]`` is ``None`` for exhausted
        variants (``on_exhausted="degrade"`` only) and ``dead`` lists their
        indices.
        """
        n = len(sites)
        widths = (
            list(expected_qubits)
            if isinstance(expected_qubits, (list, tuple))
            else [expected_qubits] * n
        )
        policy = self.policy
        self._check_deadline()
        if not (breaker_key is not None and self.breaker.is_open(breaker_key)):
            start = clock.now
            try:
                results = list(
                    batch_call([np.random.default_rng(c) for c in children])
                )
                latency = clock.now - start
                if (
                    policy.attempt_timeout is not None
                    and latency > policy.attempt_timeout * max(n, 1)
                ):
                    raise TransientBackendError(
                        f"batched latency {latency:.3f}s exceeded "
                        f"{policy.attempt_timeout}s per variant",
                        site=("batch", breaker_key),
                    )
                if policy.validate:
                    for result, width in zip(results, widths):
                        validate_execution_result(result, expected_shots, width)
            except policy.retry_on as exc:
                latency = clock.now - start
                fault_site = getattr(exc, "site", None) or ("batch", breaker_key)
                self.ledger.record(
                    fault_site, 1, "batch_fault", latency=latency, error=str(exc)
                )
            else:
                per_variant = latency / n if n else 0.0
                for site in sites:
                    self.ledger.record(site, 1, "ok", latency=per_variant)
                if breaker_key is not None:
                    self.breaker.success(breaker_key)
                return results, []
        out: list = [None] * n
        dead: list[int] = []
        for j, site in enumerate(sites):
            result = self.run_single(
                site,
                lambda j=j: single_call(j, np.random.default_rng(children[j])),
                expected_shots,
                widths[j],
                clock,
                breaker_key=breaker_key,
                on_exhausted=on_exhausted,
            )
            if result is None:
                dead.append(j)
            out[j] = result
        return out, dead


# ----------------------------------------------------------------------
# Graceful degradation: demote dead basis rows into the neglect pool.


def degradation_tv_penalty(demotions: dict) -> float:
    """Rigorous TV widening for demoted bases: ``½(Π_c(1+d_c) − 1)``.

    ``demotions`` maps ``(group, cut) → iterable of demoted letters``; see
    the module docstring for the superoperator-norm derivation.  A single
    demoted basis costs exactly ½; demotions compound multiplicatively
    across cuts.
    """
    product = 1.0
    for letters in demotions.values():
        product *= 1.0 + len(tuple(letters))
    return 0.5 * (product - 1.0)


def _flat_cut_group(frag, k: int) -> tuple[int, int]:
    """Map flat exiting-cut index ``k`` to ``(child group, cut-in-group)``."""
    offset = 0
    for h in frag.meas_groups:
        size = len(frag.cut_local_by_group[h])
        if k < offset + size:
            return h, k - offset
        offset += size
    raise ValueError(f"cut index {k} out of range for fragment")


def _flat_prep_group(frag, c: int) -> tuple[int, int]:
    """Map flat entering-prep index ``c`` to ``(parent group, cut-in-group)``."""
    offset = 0
    for h in frag.in_groups:
        size = len(frag.prep_local_by_group[h])
        if c < offset + size:
            return h, c - offset
        offset += size
    raise ValueError(f"prep index {c} out of range for fragment")


def required_tree_variants(tree, index: int, group_pools, fallback) -> set:
    """Every ``(inits, setting)`` record fragment ``index`` needs.

    Mirrors the enumeration of
    :func:`~repro.cutting.reconstruction._chain_row_runs` (``I`` rows
    resolved through ``fallback``, preparations expanded through the
    eigenstate pairs) for the given per-group basis pools — the exact
    demand set reconstruction will place on the fragment's records.
    """
    from repro.cutting.reconstruction import _PREP_OF

    frag = tree.fragments[index]
    prev = [pool for h in frag.in_groups for pool in group_pools[h]]
    nxt = [pool for h in frag.meas_groups for pool in group_pools[h]]
    rows_prev = list(itertools.product(*prev)) if prev else [()]
    rows_next = list(itertools.product(*nxt)) if nxt else [()]
    required = set()
    for row_n in rows_next:
        setting = tuple(
            m if m != "I" else fallback[k] for k, m in enumerate(row_n)
        )
        for row_p in rows_prev:
            for s in range(1 << frag.num_prep):
                init = tuple(
                    _PREP_OF[m][(s >> k) & 1] for k, m in enumerate(row_p)
                )
                required.add((init, setting))
    return required


def plan_degradation(tree, records, pools, dead_sites):
    """Demote basis letters until no dead variant is demanded.

    Parameters
    ----------
    tree:
        The :class:`~repro.cutting.tree.FragmentTree` being reconstructed.
    records:
        Per-fragment surviving record dicts (dead variants absent).
    pools:
        Current per-group basis pools, ``pools[g][c]`` = cut ``c`` of group
        ``g``.
    dead_sites:
        ``[(fragment_index, (inits, setting)), ...]`` of exhausted
        variants.

    Returns ``(new_pools, demotions, penalty)`` where ``demotions`` maps
    ``(group, cut) → tuple of demoted letters`` and ``penalty`` is the
    rigorous TV widening from :func:`degradation_tv_penalty`.

    Strategy: greedy cover.  Each round recomputes the exact record-demand
    set per fragment (fallbacks included), collects the demotion candidates
    that would release each still-demanded dead variant — its setting
    letters on the owning cut, and entering ``X``/``Y`` preparation bases
    (``Z±`` preparations also serve the undemotable ``I`` row, so a dead
    ``Z``-preparation family is unrecoverable) — and demotes the letter
    covering the most dead variants (deterministic tie-break).  Raises
    :class:`~repro.exceptions.RetryExhaustedError` when no demotion can
    release a demanded dead variant or a fragment has no surviving records.
    """
    from repro.cutting.reconstruction import _chain_fallback

    pools = [[tuple(pool) for pool in group] for group in pools]
    dead_by_frag: dict[int, set] = {}
    for index, combo in dead_sites:
        inits, setting = combo
        dead_by_frag.setdefault(index, set()).add((tuple(inits), tuple(setting)))

    def fallback_of(index):
        if not records[index]:
            raise RetryExhaustedError(
                f"fragment {index} has no surviving variants; cannot degrade"
            )
        return _chain_fallback(records[index], tree.fragments[index].num_meas)

    demotions: dict[tuple[int, int], set] = {}
    max_rounds = sum(len(group) for group in pools) * 4 + 1
    for _ in range(max_rounds):
        demanded: list[tuple[int, tuple]] = []
        for index, dead in sorted(dead_by_frag.items()):
            required = required_tree_variants(
                tree, index, pools, fallback_of(index)
            )
            demanded.extend((index, combo) for combo in sorted(dead) if combo in required)
        if not demanded:
            break
        tally: dict[tuple[int, int, str], int] = {}
        for index, (inits, setting) in demanded:
            frag = tree.fragments[index]
            for k, letter in enumerate(setting):
                if letter == "I":
                    continue
                h, c = _flat_cut_group(frag, k)
                if letter in pools[h][c]:
                    tally[(h, c, letter)] = tally.get((h, c, letter), 0) + 1
            for c, prep in enumerate(inits):
                basis = prep[0]
                if basis not in ("X", "Y"):
                    continue
                hp, cp = _flat_prep_group(frag, c)
                if basis in pools[hp][cp]:
                    key = (hp, cp, basis)
                    tally[key] = tally.get(key, 0) + 1
        if not tally:
            raise RetryExhaustedError(
                "dead variant families cannot be demoted (Z-preparation "
                "families serve the I row and are unrecoverable): "
                f"{demanded[:3]}"
            )
        h, c, letter = min(tally, key=lambda key: (-tally[key], key))
        demotions.setdefault((h, c), set()).add(letter)
        pools[h][c] = tuple(m for m in pools[h][c] if m != letter)
    else:  # pragma: no cover - bounded by construction
        raise RetryExhaustedError("degradation planning did not converge")

    for index in range(tree.num_fragments):
        if not records[index]:
            continue
        required = required_tree_variants(tree, index, pools, fallback_of(index))
        missing = sorted(required - set(records[index]))
        if missing:
            raise RetryExhaustedError(
                f"degraded pools still demand unavailable variants of "
                f"fragment {index}: {missing[:3]}"
            )
    demotions_out = {key: tuple(sorted(vals)) for key, vals in demotions.items()}
    return pools, demotions_out, degradation_tv_penalty(demotions_out)
