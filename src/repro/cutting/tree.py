"""Topology-general fragment trees and DAGs (chains are the one-child case).

A :class:`FragmentTree` generalises :class:`~repro.cutting.chain.FragmentChain`
to an arbitrary rooted graph of ``N ≥ 2`` fragments connected by ``G ≥
N − 1`` *cut groups*: cut group ``g`` severs the wires flowing from one
fragment (its *source*) into exactly one other fragment (its
*destination*).  Every non-root fragment receives preparation states on
the wires of **one or more** entering groups (several entering groups make
the node a *joint-prep* fragment and the structure a DAG rather than a
tree); a fragment may likewise emit cut wires to several child groups —
its measurement side then covers the union of those groups' wires.  The
root only measures, sinks only receive, a tree is the case where every
node has at most one entering group, and a chain is the degenerate tree in
which every node has at most one child.

:func:`partition_tree` builds the structure by *worklist bipartition*: the
circuit starts as one piece; each :class:`~repro.cutting.cut.CutSpec`
(given in **original-circuit** coordinates) finds the piece holding its
cut points and splits it in two, with per-piece bookkeeping tracking where
every earlier group's preparation and measurement wires ended up.  Unlike
the chain cascade, the upstream half of a split can be re-cut later
(branching nodes), and the downstream half of a split can receive the
preparation wires of several earlier groups (joint-prep DAG nodes) —
multi-source DAGs, where a later split leaves an upstream half with no
entering group, are fine too.  A ``CutError`` is raised when the specs do
not induce a connected DAG — a group's wires split across fragments.
Genuinely *cyclic* structures cannot come out of the worklist (each split
keeps a group's source piece ahead of its destination piece); the loud
topological-order error in :meth:`FragmentTree._link` guards
directly-constructed graphs.

Node indices are topological (parents precede children, the root is node
0); cut groups keep the order of ``specs``.  The flat little-endian layout
of a fragment's measured cut bits concatenates its exiting groups'
wires in ascending group order (``TreeFragment.cut_local``), and the flat
layout of its preparation wires concatenates its entering groups' wires
the same way (``TreeFragment.prep_local``) — the record layouts every
downstream consumer — caches, execution, golden detection and the
reconstruction — shares.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.circuits.circuit import Circuit
from repro.cutting.cut import CutSpec
from repro.cutting.fragments import bipartition
from repro.exceptions import CutError

__all__ = [
    "FragmentTree",
    "TreeFragment",
    "partition_tree",
]


@dataclass
class TreeFragment:
    """One node of a fragment tree.

    Attributes
    ----------
    circuit:
        The fragment's local circuit.
    index:
        Node position in the tree's topological order (root = 0).
    prep_local:
        Local qubits receiving preparation states — the **flat** layout:
        each entering group's wires (in cut order) concatenated in
        ascending group order (empty at the root).  Preparation slot ``k``
        of a variant's init tuple addresses qubit ``k`` of this list.
    cut_local:
        Local qubits measured in tomography bases — the **flat** layout:
        each exiting group's wires (in cut order) concatenated in ascending
        group order.  Cut bit ``k`` of a measurement record is bit ``k`` of
        this list.
    out_local:
        Local output qubits (everything not in ``cut_local``), ordered by
        original label.
    out_original:
        Original-circuit labels of the outputs (same order as ``out_local``).
    in_group:
        Id of the single entering cut group (``None`` at the root **and**
        at multi-parent DAG nodes — the legacy tree-only field, kept so
        every historical consumer keeps reading the value it always did).
    in_groups:
        Ids of all entering cut groups, ascending (empty at the root; more
        than one makes this a joint-prep DAG node).
    prep_local_by_group:
        Entering group id → that group's local wires in cut order
        (concatenating them in ``in_groups`` order yields ``prep_local``).
    meas_groups:
        Ids of the exiting cut groups, ascending (empty at a leaf).
    cut_local_by_group:
        Exiting group id → that group's local wires in cut order
        (concatenating them in ``meas_groups`` order yields ``cut_local``).
    parent:
        Parent node index (filled in by :class:`FragmentTree`; the lowest
        entering group's source at a multi-parent node).
    """

    circuit: Circuit
    index: int
    prep_local: list[int]
    cut_local: list[int]
    out_local: list[int]
    out_original: list[int]
    in_group: "int | None" = None
    meas_groups: list[int] = field(default_factory=list)
    cut_local_by_group: dict[int, list[int]] = field(default_factory=dict)
    parent: "int | None" = field(default=None, repr=False)
    in_groups: list[int] = field(default_factory=list)
    prep_local_by_group: dict[int, list[int]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._sync_entering()

    def _sync_entering(self) -> None:
        """Reconcile the legacy ``in_group`` field with the general form.

        Constructors predating DAG support pass ``in_group=``/``prep_local=``
        only; the general form is derived from them (and vice versa for a
        one-entry ``in_groups``).  Idempotent — also run by
        :meth:`FragmentTree._link` so post-construction mutation of
        ``in_group`` (the chain constructor's compatibility path) is
        picked up.
        """
        if self.in_group is not None:
            self.in_groups = [self.in_group]
            self.prep_local_by_group = {self.in_group: list(self.prep_local)}
        else:
            self.in_groups = sorted(self.in_groups)
            if len(self.in_groups) == 1:
                self.in_group = self.in_groups[0]
                if not self.prep_local_by_group:
                    self.prep_local_by_group = {
                        self.in_group: list(self.prep_local)
                    }

    @property
    def num_qubits(self) -> int:
        return self.circuit.num_qubits

    @property
    def n_out(self) -> int:
        return len(self.out_local)

    @property
    def num_prep(self) -> int:
        return len(self.prep_local)

    @property
    def num_meas(self) -> int:
        return len(self.cut_local)

    @property
    def num_children(self) -> int:
        return len(self.meas_groups)

    @property
    def num_parents(self) -> int:
        return len(self.in_groups)

    def group_offset(self, group: int) -> int:
        """Position of ``group``'s first cut bit in the flat ``cut_local``."""
        off = 0
        for h in self.meas_groups:
            if h == group:
                return off
            off += len(self.cut_local_by_group[h])
        raise CutError(f"group {group} does not exit fragment {self.index}")

    def prep_offset(self, group: int) -> int:
        """Position of ``group``'s first prep slot in the flat ``prep_local``."""
        off = 0
        for h in self.in_groups:
            if h == group:
                return off
            off += len(self.prep_local_by_group[h])
        raise CutError(f"group {group} does not enter fragment {self.index}")


@dataclass
class FragmentTree:
    """A rooted tree of fragments connected by cut groups."""

    #: the fragments in topological order (root first, parents before children)
    fragments: list[TreeFragment]
    #: number of cuts per group, in spec order
    group_sizes: list[int]
    #: the cut specs the tree was built from (original-circuit coordinates)
    specs: list[CutSpec] = field(repr=False, default_factory=list)
    #: group id → node measuring that group's wires (derived)
    group_src: list[int] = field(init=False, repr=False)
    #: group id → node receiving that group's preparations (derived)
    group_dst: list[int] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._link()

    def _link(self) -> None:
        if len(self.fragments) < 2:
            raise CutError("a fragment tree needs at least two fragments")
        G = len(self.group_sizes)
        if G < len(self.fragments) - 1:
            raise CutError(
                "a fragment tree needs at least one cut group per non-root "
                "fragment"
            )
        src: list = [None] * G
        dst: list = [None] * G
        for i, frag in enumerate(self.fragments):
            frag._sync_entering()
            if i == 0 and frag.in_groups:
                raise CutError(
                    "the root fragment (node 0) may not have an entering "
                    "cut group"
                )
            flat_prep: list[int] = []
            for g in frag.in_groups:
                if not 0 <= g < G:
                    raise CutError(f"entering group {g} out of range")
                if dst[g] is not None:
                    raise CutError(
                        f"cut group {g} enters two fragments; a group's "
                        "preparation wires live in a single fragment"
                    )
                dst[g] = i
                wires = frag.prep_local_by_group.get(g)
                if wires is None or len(wires) != self.group_sizes[g]:
                    raise CutError(
                        f"fragment {i} group {g} has "
                        f"{0 if wires is None else len(wires)} preparation "
                        f"wires, expected {self.group_sizes[g]}"
                    )
                flat_prep.extend(wires)
            if flat_prep != list(frag.prep_local):
                raise CutError(
                    f"fragment {i}: prep_local is not the group-ordered "
                    "concatenation of prep_local_by_group"
                )
            flat: list[int] = []
            for g in frag.meas_groups:
                if not 0 <= g < G:
                    raise CutError(f"exiting group {g} out of range")
                if src[g] is not None:
                    raise CutError(
                        f"cut group {g} exits two fragments; the structure "
                        "is not a tree"
                    )
                src[g] = i
                wires = frag.cut_local_by_group.get(g)
                if wires is None or len(wires) != self.group_sizes[g]:
                    raise CutError(
                        f"fragment {i} group {g} wire list mismatches the "
                        f"group size {self.group_sizes[g]}"
                    )
                flat.extend(wires)
            if flat != list(frag.cut_local):
                raise CutError(
                    f"fragment {i}: cut_local is not the group-ordered "
                    "concatenation of cut_local_by_group"
                )
        for g in range(G):
            if src[g] is None or dst[g] is None:
                raise CutError(f"cut group {g} is not attached to the tree")
            if not src[g] < dst[g]:
                raise CutError(
                    f"cut group {g}: source node {src[g]} must precede "
                    f"destination node {dst[g]} (topological order); the "
                    "fragment graph is cyclic or mis-ordered"
                )
        # one connected component: union-find over the group edges (a
        # multi-source DAG is fine, a disconnected forest is not)
        uf = list(range(len(self.fragments)))

        def find(x: int) -> int:
            while uf[x] != x:
                uf[x] = uf[uf[x]]
                x = uf[x]
            return x

        for g in range(G):
            uf[find(src[g])] = find(dst[g])
        root = find(0)
        for i in range(len(self.fragments)):
            if find(i) != root:
                raise CutError(
                    f"fragment {i} is disconnected from the rest of the "
                    "fragment graph"
                )
        self.group_src = src
        self.group_dst = dst
        for i, frag in enumerate(self.fragments):
            frag.parent = (
                src[frag.in_groups[0]] if frag.in_groups else None
            )

    # ------------------------------------------------------------------
    @property
    def num_fragments(self) -> int:
        return len(self.fragments)

    @property
    def num_groups(self) -> int:
        return len(self.group_sizes)

    @property
    def total_cuts(self) -> int:
        return sum(self.group_sizes)

    @property
    def is_chain(self) -> bool:
        """True when every group links node ``g`` to node ``g + 1``."""
        return all(s == g for g, s in enumerate(self.group_src)) and all(
            d == g + 1 for g, d in enumerate(self.group_dst)
        )

    @property
    def is_tree(self) -> bool:
        """True when this is a single-root tree (one entering group per
        non-root fragment, no extra sources).

        The pure-tree case runs the historical leaves-to-root contraction
        kernels bit-identically; joint-prep and multi-source DAG nodes
        route through the planned network contraction (see
        :mod:`repro.cutting.contraction`).
        """
        return all(
            f.num_parents == (1 if i else 0)
            for i, f in enumerate(self.fragments)
        )

    def children(self, index: int) -> list[int]:
        """Child node indices of one fragment, in exiting-group order."""
        return [self.group_dst[g] for g in self.fragments[index].meas_groups]

    def parents(self, index: int) -> list[int]:
        """Parent node indices of one fragment, in entering-group order."""
        return [self.group_src[g] for g in self.fragments[index].in_groups]

    def output_order(self) -> list[int]:
        """Original qubit labels, node by node, root first."""
        out: list[int] = []
        for frag in self.fragments:
            out.extend(frag.out_original)
        return out

    def describe(self) -> str:
        widths = "+".join(str(f.num_qubits) for f in self.fragments)
        edges = ",".join(
            f"{self.group_src[g]}→{self.group_dst[g]}(K={k})"
            for g, k in enumerate(self.group_sizes)
        )
        return (
            f"FragmentTree(N={self.num_fragments}, widths {widths}q, "
            f"groups [{edges}])"
        )


# ---------------------------------------------------------------------------
# worklist bipartition
# ---------------------------------------------------------------------------


@dataclass
class _Piece:
    """One not-yet-final fragment of the worklist partition.

    ``wire_orig``/``inst_orig`` map piece-local coordinates back to the
    original circuit; ``entering`` carries the local wires (cut order) of
    every group preparing into this piece, ``exiting`` the local wires of
    every group measured on this piece.
    """

    circuit: Circuit
    wire_orig: list[int]
    inst_orig: list[int]
    entering: dict[int, list[int]]
    exiting: dict[int, list[int]]


def partition_tree(circuit: Circuit, specs: Sequence[CutSpec]) -> FragmentTree:
    """Split ``circuit`` into a ``len(specs) + 1``-fragment tree or DAG.

    Every spec is expressed in **original-circuit** coordinates; each is
    applied to the piece currently holding its cut points, so earlier
    groups' fragments can branch — the upstream half of one split may be
    split again by a later spec, giving its node several child groups —
    and earlier groups' *downstream* fragments can merge destinations: a
    piece already receiving preparations may be cut so that a second group
    prepares into the same half, giving that node several entering (joint
    prep) groups and the structure a DAG shape.  Chains come out
    bit-identical to the repeated-bipartition cascade of
    :func:`~repro.cutting.chain.partition_chain` (which now delegates
    here), and pure trees to the pre-DAG engine.
    """
    specs = list(specs)
    if not specs:
        raise CutError("partition_tree needs at least one cut spec")
    pieces = [
        _Piece(
            circuit=circuit,
            wire_orig=list(range(circuit.num_qubits)),
            inst_orig=list(range(len(circuit))),
            entering={},
            exiting={},
        )
    ]
    done: set[int] = set()
    for g in range(len(specs)):
        if g in done:
            continue
        j = _find_piece(pieces, specs[g], g)
        group_set = _cocut_groups(pieces[j], specs, g, done)
        pieces[j : j + 1] = _cut_piece(
            pieces[j], {h: specs[h] for h in group_set}
        )
        done.update(group_set)
    pieces = [c for p in pieces for c in _split_components(p)]
    return _assemble(pieces, specs)


def _uncut_crossing_wires(
    circuit: Circuit, spec: CutSpec, reserved: "set[int]" = frozenset()
) -> set[int]:
    """Wires a spec's bipartition frontier would sever without cutting.

    Replays :func:`~repro.cutting.fragments.bipartition`'s closure —
    dependency reachability plus whole-wire absorption — but keeps the
    cut anchors' *ancestors* pinned upstream (absorbing one would later
    fail the "cut lies downstream" check).  A wire holding both a pinned
    gate and a downstream gate cannot be absorbed and must be cut: on a
    DAG these are exactly the wires of the other groups entering the
    same destination, which must be co-cut in the same split.

    ``reserved`` wires are additionally barred from absorption (flagged
    crossing as soon as they hold a downstream gate): a sibling group's
    upstream block placed *after* the anchors is not an ancestor, so
    plain absorption would silently swallow it and mis-attribute the
    frontier to whatever third wire that block touches — the second
    detection pass of :func:`_cocut_groups` reserves every pending
    group's cut wires to surface the true co-cut candidates instead.
    """
    from repro.circuits.dag import CircuitDag

    dag = CircuitDag(circuit)
    down: set[int] = set()
    for cut in spec.cuts:
        down |= dag.downstream_of_cut(cut.wire, cut.gate_index)
    must_up = {c.gate_index for c in spec.cuts}
    stack = list(must_up)
    while stack:
        for p in dag.predecessors(stack.pop()):
            if p not in must_up:
                must_up.add(p)
                stack.append(p)
    cut_wires = {c.wire for c in spec.cuts}
    segs = {w: dag.wire_segments(w) for w in range(circuit.num_qubits)}
    crossing: set[int] = set()
    while True:
        # dependency closure: one topological pass per round
        for node in dag.topological_order():
            if node not in down and any(
                p in down for p in dag.predecessors(node)
            ):
                down.add(node)
        added = False
        for w, seq in segs.items():
            if w in cut_wires or w in crossing:
                continue
            if not any(i in down for i in seq):
                continue
            if any(i in must_up for i in seq) or w in reserved:
                crossing.add(w)  # unabsorbable: the wire needs a cut
            else:
                for i in seq:
                    if i not in down:
                        down.add(i)
                        added = True
        if not added:
            return crossing


def _cocut_groups(
    piece: _Piece, specs: list[CutSpec], g: int, done: set[int]
) -> list[int]:
    """Groups that must be severed in the same split as group ``g``.

    On trees and chains a single group always forms a complete frontier
    and this returns ``[g]`` — the historical one-group-per-split
    cascade.  On a DAG, sibling groups feeding the same joint-prep
    destination cross each other's frontier; the fixpoint loop pulls
    every pending group whose cut wires the current frontier severs into
    the split, so one ``bipartition`` call cuts the full frontier.
    """
    chosen = [g]
    while True:
        combined = CutSpec(
            tuple(
                pt
                for h in chosen
                for pt in _translate_spec(
                    specs[h], h, piece.wire_orig, piece.inst_orig
                ).cuts
            )
        )
        crossing = _uncut_crossing_wires(piece.circuit, combined)
        if not crossing:
            return chosen
        added = False
        for h in range(len(specs)):
            if h in done or h in chosen:
                continue
            try:
                loc = _translate_spec(
                    specs[h], h, piece.wire_orig, piece.inst_orig
                )
            except CutError:
                continue
            if any(c.wire in crossing for c in loc.cuts):
                chosen.append(h)
                added = True
        if not added:
            # second pass: a sibling block placed after the anchors is no
            # ancestor, so pass one absorbed it and blamed a third wire.
            # Re-detect with every pending group's cut wires barred from
            # absorption and co-cut, per crossing wire, the *earliest*
            # pending cut on it (later cuts on the same wire belong to
            # later cascade rounds).
            pending = {}
            for h in range(len(specs)):
                if h in done or h in chosen:
                    continue
                try:
                    pending[h] = _translate_spec(
                        specs[h], h, piece.wire_orig, piece.inst_orig
                    )
                except CutError:
                    continue
            reserved = {
                c.wire for loc in pending.values() for c in loc.cuts
            }
            crossing = _uncut_crossing_wires(
                piece.circuit, combined, reserved
            )
            for w in sorted(crossing):
                best = None
                for h, loc in sorted(pending.items()):
                    for c in loc.cuts:
                        if c.wire == w and (
                            best is None or c.gate_index < best[1]
                        ):
                            best = (h, c.gate_index)
                if best is not None and best[0] not in chosen:
                    chosen.append(best[0])
                    added = True
            if not added:
                # no pending group covers the crossing wires — hand the
                # piece to bipartition, whose frontier diagnostics are
                # the loud error
                return chosen
        chosen.sort()


def _split_components(piece: _Piece) -> "list[_Piece]":
    """Split a piece into its weakly connected components.

    Co-cutting a DAG frontier can strand two gate-disjoint blocks in one
    half (e.g. both middle nodes of a diamond); each becomes its own
    fragment.  Wires are connected through shared gates and through
    joint membership in one group's wire list (a group prepares into /
    measures out of a single fragment); idle wires with neither gates nor
    group membership stay with the first component.  The split happens
    **only** when every gated or grouped component holds an entering
    group of its own — each part is then a well-formed non-root fragment.
    Anything else (in particular every piece the historical tree/chain
    cascade produces, however loosely its gates couple internally) stays
    one fragment, exactly as before.  Components are ordered by earliest
    original instruction — no group connects two components of the same
    piece, so any order is topologically sound.
    """
    nw = piece.circuit.num_qubits
    parent = list(range(nw))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(a: int, b: int) -> None:
        parent[find(a)] = find(b)

    for inst in piece.circuit:
        qs = list(inst.qubits)
        for a, b in zip(qs, qs[1:]):
            union(a, b)
    for wires in list(piece.entering.values()) + list(
        piece.exiting.values()
    ):
        for a, b in zip(wires, wires[1:]):
            union(a, b)
    roots = sorted({find(w) for w in range(nw)})
    if len(roots) == 1:
        return [piece]
    comp_wires = {
        r: [w for w in range(nw) if find(w) == r] for r in roots
    }
    comp_insts: dict[int, list[int]] = {r: [] for r in roots}
    for idx, inst in enumerate(piece.circuit):
        comp_insts[find(inst.qubits[0])].append(idx)
    group_roots = {
        find(ws[0])
        for ws in list(piece.entering.values())
        + list(piece.exiting.values())
        if ws
    }
    entering_roots = {
        find(ws[0]) for ws in piece.entering.values() if ws
    }
    live = [r for r in roots if comp_insts[r] or r in group_roots]
    if len(live) <= 1 or any(r not in entering_roots for r in live):
        return [piece]

    def comp_key(r: int):
        if comp_insts[r]:
            return (0, piece.inst_orig[comp_insts[r][0]])
        return (1, min(piece.wire_orig[w] for w in comp_wires[r]))

    live.sort(key=comp_key)
    idle = [w for r in roots if r not in live for w in comp_wires[r]]
    comp_wires[live[0]] = sorted(comp_wires[live[0]] + idle)
    out = []
    for r in live:
        wires = comp_wires[r]
        wmap = {w: i for i, w in enumerate(wires)}
        sub = Circuit(len(wires), name=piece.circuit.name)
        for idx in comp_insts[r]:
            sub.append(piece.circuit[idx].remap(wmap))
        out.append(
            _Piece(
                circuit=sub,
                wire_orig=[piece.wire_orig[w] for w in wires],
                inst_orig=[piece.inst_orig[i] for i in comp_insts[r]],
                entering={
                    h: [wmap[w] for w in ws]
                    for h, ws in piece.entering.items()
                    if ws and find(ws[0]) == r
                },
                exiting={
                    h: [wmap[w] for w in ws]
                    for h, ws in piece.exiting.items()
                    if ws and find(ws[0]) == r
                },
            )
        )
    return out


def _find_piece(pieces: list[_Piece], spec: CutSpec, stage: int) -> int:
    """Index of the piece holding every cut point of one spec."""
    owners: set[int] = set()
    for c in spec.cuts:
        owner = next(
            (i for i, p in enumerate(pieces) if c.gate_index in p.inst_orig),
            None,
        )
        if owner is None:
            raise CutError(
                f"cut group {stage}: instruction {c.gate_index} was consumed "
                "by an earlier fragment"
            )
        owners.add(owner)
    if len(owners) > 1:
        raise CutError(
            f"cut group {stage}: cut points span {len(owners)} fragments; "
            "every group must sever wires of a single fragment"
        )
    return owners.pop()


def _translate_spec(
    spec: CutSpec, stage: int, wire_orig: list[int], inst_orig: list[int]
) -> CutSpec:
    """Re-express an original-coordinate spec in piece-local coordinates."""
    from repro.cutting.cut import CutPoint

    wire_map = {orig: loc for loc, orig in enumerate(wire_orig)}
    inst_map = {orig: loc for loc, orig in enumerate(inst_orig)}
    points = []
    for c in spec.cuts:
        if c.wire not in wire_map:
            raise CutError(
                f"cut group {stage}: wire {c.wire} was consumed by an "
                "earlier fragment"
            )
        if c.gate_index not in inst_map:
            raise CutError(
                f"cut group {stage}: instruction {c.gate_index} was consumed "
                "by an earlier fragment"
            )
        points.append(CutPoint(wire_map[c.wire], inst_map[c.gate_index]))
    return CutSpec(tuple(points))


def _cut_piece(
    piece: _Piece, specs_by_group: "dict[int, CutSpec]"
) -> list[_Piece]:
    """Bipartition one piece along one or more co-cut groups at once.

    The combined spec concatenates the groups' cut points in ascending
    group order (one frontier, one :func:`bipartition` call); the flat
    cut-wire lists slice back into per-group lists positionally.  Earlier
    groups' wires must land whole in one half: a preparation wire lives
    where the wire *starts* (the up half when a new spec re-cuts it), a
    measurement wire where it *ends* (the down half in that case).
    """
    order = sorted(specs_by_group)
    local = {
        h: _translate_spec(
            specs_by_group[h], h, piece.wire_orig, piece.inst_orig
        )
        for h in order
    }
    label = "cut group " + ", ".join(str(h) for h in order)
    combined = CutSpec(tuple(pt for h in order for pt in local[h].cuts))
    pair = bipartition(piece.circuit, combined)
    cut_wires = {c.wire for c in combined.cuts}
    q_up = sorted(set(pair.up_out_original) | cut_wires)
    up_map = {w: i for i, w in enumerate(q_up)}
    down_map = {w: i for i, w in enumerate(pair.down_out_original)}
    down_nodes = set(pair.down_node_indices)
    up_nodes = [i for i in range(len(piece.circuit)) if i not in down_nodes]

    up_exiting: dict[int, list[int]] = {}
    down_exiting: dict[int, list[int]] = {}
    for h, wires in piece.exiting.items():
        # measure end of a wire re-cut by this split lives in the down half
        locs = {"down" if w in down_map else "up" for w in wires}
        if len(locs) > 1:
            raise CutError(
                f"{label} splits the measured wires of cut group {h} "
                "across two fragments; the specs do not induce a tree"
            )
        if locs == {"up"}:
            up_exiting[h] = [up_map[w] for w in wires]
        else:
            down_exiting[h] = [down_map[w] for w in wires]

    up_entering: dict[int, list[int]] = {}
    down_entering: dict[int, list[int]] = {}
    for h, wires in piece.entering.items():
        # a preparation applies at the wire start, which stays in the up
        # half when this split re-cuts the wire
        locs = {"up" if w in up_map else "down" for w in wires}
        if len(locs) > 1:
            raise CutError(
                f"{label} splits the preparation wires of cut group "
                f"{h} across two fragments; the specs do not induce a "
                "fragment DAG"
            )
        if locs == {"up"}:
            up_entering[h] = [up_map[w] for w in wires]
        else:
            # group h's preparations land whole in the down half: that
            # fragment now receives wires from h and the new groups — a
            # joint-prep DAG node (this used to raise "a DAG, not a tree")
            down_entering[h] = [down_map[w] for w in wires]
    off = 0
    for h in order:
        k = local[h].num_cuts
        up_exiting[h] = list(pair.up_cut_local[off : off + k])
        down_entering[h] = list(pair.down_cut_local[off : off + k])
        off += k

    up_piece = _Piece(
        circuit=pair.upstream,
        wire_orig=[piece.wire_orig[w] for w in q_up],
        inst_orig=[piece.inst_orig[i] for i in up_nodes],
        entering=up_entering,
        exiting=up_exiting,
    )
    down_piece = _Piece(
        circuit=pair.downstream,
        wire_orig=[piece.wire_orig[w] for w in pair.down_out_original],
        inst_orig=[piece.inst_orig[i] for i in pair.down_node_indices],
        entering=down_entering,
        exiting=down_exiting,
    )
    return [up_piece, down_piece]


def _assemble(pieces: list[_Piece], specs: list[CutSpec]) -> FragmentTree:
    fragments: list[TreeFragment] = []
    for i, p in enumerate(pieces):
        meas_groups = sorted(p.exiting)
        by_group = {h: list(p.exiting[h]) for h in meas_groups}
        cut_flat = [w for h in meas_groups for w in by_group[h]]
        cut_set = set(cut_flat)
        out_local = [
            q for q in range(p.circuit.num_qubits) if q not in cut_set
        ]
        in_groups = sorted(p.entering)
        prep_by_group = {h: list(p.entering[h]) for h in in_groups}
        fragments.append(
            TreeFragment(
                circuit=p.circuit,
                index=i,
                prep_local=[w for h in in_groups for w in prep_by_group[h]],
                cut_local=cut_flat,
                out_local=out_local,
                out_original=[p.wire_orig[q] for q in out_local],
                in_group=in_groups[0] if len(in_groups) == 1 else None,
                meas_groups=meas_groups,
                cut_local_by_group=by_group,
                in_groups=in_groups,
                prep_local_by_group=prep_by_group,
            )
        )
    return FragmentTree(
        fragments=fragments,
        group_sizes=[spec.num_cuts for spec in specs],
        specs=list(specs),
    )
