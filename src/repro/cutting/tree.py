"""Topology-general fragment trees (chains are the one-child case).

A :class:`FragmentTree` generalises :class:`~repro.cutting.chain.FragmentChain`
to an arbitrary rooted tree of ``N ≥ 2`` fragments connected by ``N − 1``
*cut groups*: cut group ``g`` severs the wires flowing from one fragment
(its *source*) into exactly one other fragment (its *destination*).  Every
non-root fragment receives preparation states on the wires of its single
entering group; a fragment may emit cut wires to **several** child groups —
its measurement side then covers the union of those groups' wires.  The
root only measures, leaves only receive, and a chain is the degenerate tree
in which every node has at most one child.

:func:`partition_tree` builds a tree by *worklist bipartition*: the circuit
starts as one piece; each :class:`~repro.cutting.cut.CutSpec` (given in
**original-circuit** coordinates) finds the piece holding its cut points
and splits it in two, with per-piece bookkeeping tracking where every
earlier group's preparation and measurement wires ended up.  Unlike the
chain cascade, the upstream half of a split can be re-cut later, which is
exactly what a branching node needs.  A ``CutError`` is raised when the
specs do not induce a tree — a group's wires split across fragments, or a
fragment would receive wires from two different groups (a DAG).

Node indices are topological (parents precede children, the root is node
0); cut groups keep the order of ``specs``.  The flat little-endian layout
of a fragment's measured cut bits concatenates its exiting groups'
wires in ascending group order (``TreeFragment.cut_local``), which is the
record layout every downstream consumer — caches, execution, golden
detection and the tree-order reconstruction — shares.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.circuits.circuit import Circuit
from repro.cutting.cut import CutSpec
from repro.cutting.fragments import bipartition
from repro.exceptions import CutError

__all__ = [
    "FragmentTree",
    "TreeFragment",
    "partition_tree",
]


@dataclass
class TreeFragment:
    """One node of a fragment tree.

    Attributes
    ----------
    circuit:
        The fragment's local circuit.
    index:
        Node position in the tree's topological order (root = 0).
    prep_local:
        Local qubits receiving preparation states, ordered by cut index of
        the entering group (empty at the root).
    cut_local:
        Local qubits measured in tomography bases — the **flat** layout:
        each exiting group's wires (in cut order) concatenated in ascending
        group order.  Cut bit ``k`` of a measurement record is bit ``k`` of
        this list.
    out_local:
        Local output qubits (everything not in ``cut_local``), ordered by
        original label.
    out_original:
        Original-circuit labels of the outputs (same order as ``out_local``).
    in_group:
        Id of the cut group entering from the parent (``None`` at the root).
    meas_groups:
        Ids of the exiting cut groups, ascending (empty at a leaf).
    cut_local_by_group:
        Exiting group id → that group's local wires in cut order
        (concatenating them in ``meas_groups`` order yields ``cut_local``).
    parent:
        Parent node index (filled in by :class:`FragmentTree`).
    """

    circuit: Circuit
    index: int
    prep_local: list[int]
    cut_local: list[int]
    out_local: list[int]
    out_original: list[int]
    in_group: "int | None" = None
    meas_groups: list[int] = field(default_factory=list)
    cut_local_by_group: dict[int, list[int]] = field(default_factory=dict)
    parent: "int | None" = field(default=None, repr=False)

    @property
    def num_qubits(self) -> int:
        return self.circuit.num_qubits

    @property
    def n_out(self) -> int:
        return len(self.out_local)

    @property
    def num_prep(self) -> int:
        return len(self.prep_local)

    @property
    def num_meas(self) -> int:
        return len(self.cut_local)

    @property
    def num_children(self) -> int:
        return len(self.meas_groups)

    def group_offset(self, group: int) -> int:
        """Position of ``group``'s first cut bit in the flat ``cut_local``."""
        off = 0
        for h in self.meas_groups:
            if h == group:
                return off
            off += len(self.cut_local_by_group[h])
        raise CutError(f"group {group} does not exit fragment {self.index}")


@dataclass
class FragmentTree:
    """A rooted tree of fragments connected by cut groups."""

    #: the fragments in topological order (root first, parents before children)
    fragments: list[TreeFragment]
    #: number of cuts per group, in spec order
    group_sizes: list[int]
    #: the cut specs the tree was built from (original-circuit coordinates)
    specs: list[CutSpec] = field(repr=False, default_factory=list)
    #: group id → node measuring that group's wires (derived)
    group_src: list[int] = field(init=False, repr=False)
    #: group id → node receiving that group's preparations (derived)
    group_dst: list[int] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._link()

    def _link(self) -> None:
        if len(self.fragments) < 2:
            raise CutError("a fragment tree needs at least two fragments")
        G = len(self.group_sizes)
        if G != len(self.fragments) - 1:
            raise CutError(
                "a fragment tree needs exactly one cut group per non-root "
                "fragment"
            )
        src: list = [None] * G
        dst: list = [None] * G
        for i, frag in enumerate(self.fragments):
            if (frag.in_group is None) != (i == 0):
                raise CutError(
                    "exactly the root fragment (node 0) may lack an "
                    "entering cut group"
                )
            if frag.in_group is not None:
                g = frag.in_group
                if not 0 <= g < G:
                    raise CutError(f"entering group {g} out of range")
                if dst[g] is not None:
                    raise CutError(
                        f"cut group {g} enters two fragments; the structure "
                        "is not a tree"
                    )
                dst[g] = i
                if frag.num_prep != self.group_sizes[g]:
                    raise CutError(
                        f"fragment {i} has {frag.num_prep} preparation "
                        f"wires, expected {self.group_sizes[g]} from group {g}"
                    )
            flat: list[int] = []
            for g in frag.meas_groups:
                if not 0 <= g < G:
                    raise CutError(f"exiting group {g} out of range")
                if src[g] is not None:
                    raise CutError(
                        f"cut group {g} exits two fragments; the structure "
                        "is not a tree"
                    )
                src[g] = i
                wires = frag.cut_local_by_group.get(g)
                if wires is None or len(wires) != self.group_sizes[g]:
                    raise CutError(
                        f"fragment {i} group {g} wire list mismatches the "
                        f"group size {self.group_sizes[g]}"
                    )
                flat.extend(wires)
            if flat != list(frag.cut_local):
                raise CutError(
                    f"fragment {i}: cut_local is not the group-ordered "
                    "concatenation of cut_local_by_group"
                )
        for g in range(G):
            if src[g] is None or dst[g] is None:
                raise CutError(f"cut group {g} is not attached to the tree")
            if not src[g] < dst[g]:
                raise CutError(
                    f"cut group {g}: source node {src[g]} must precede "
                    f"destination node {dst[g]} (topological order)"
                )
        self.group_src = src
        self.group_dst = dst
        for i, frag in enumerate(self.fragments):
            frag.parent = None if i == 0 else src[frag.in_group]

    # ------------------------------------------------------------------
    @property
    def num_fragments(self) -> int:
        return len(self.fragments)

    @property
    def num_groups(self) -> int:
        return len(self.group_sizes)

    @property
    def total_cuts(self) -> int:
        return sum(self.group_sizes)

    @property
    def is_chain(self) -> bool:
        """True when every group links node ``g`` to node ``g + 1``."""
        return all(s == g for g, s in enumerate(self.group_src)) and all(
            d == g + 1 for g, d in enumerate(self.group_dst)
        )

    def children(self, index: int) -> list[int]:
        """Child node indices of one fragment, in exiting-group order."""
        return [self.group_dst[g] for g in self.fragments[index].meas_groups]

    def output_order(self) -> list[int]:
        """Original qubit labels, node by node, root first."""
        out: list[int] = []
        for frag in self.fragments:
            out.extend(frag.out_original)
        return out

    def describe(self) -> str:
        widths = "+".join(str(f.num_qubits) for f in self.fragments)
        edges = ",".join(
            f"{self.group_src[g]}→{self.group_dst[g]}(K={k})"
            for g, k in enumerate(self.group_sizes)
        )
        return (
            f"FragmentTree(N={self.num_fragments}, widths {widths}q, "
            f"groups [{edges}])"
        )


# ---------------------------------------------------------------------------
# worklist bipartition
# ---------------------------------------------------------------------------


@dataclass
class _Piece:
    """One not-yet-final fragment of the worklist partition.

    ``wire_orig``/``inst_orig`` map piece-local coordinates back to the
    original circuit; ``entering`` carries the id and local wires (cut
    order) of the group preparing into this piece, ``exiting`` the local
    wires of every group measured on this piece.
    """

    circuit: Circuit
    wire_orig: list[int]
    inst_orig: list[int]
    entering: "tuple[int, list[int]] | None"
    exiting: dict[int, list[int]]


def partition_tree(circuit: Circuit, specs: Sequence[CutSpec]) -> FragmentTree:
    """Split ``circuit`` into a ``len(specs) + 1``-fragment tree.

    Every spec is expressed in **original-circuit** coordinates; each is
    applied to the piece currently holding its cut points, so earlier
    groups' fragments can branch — the upstream half of one split may be
    split again by a later spec, giving its node several child groups.
    Chains come out bit-identical to the repeated-bipartition cascade of
    :func:`~repro.cutting.chain.partition_chain` (which now delegates
    here).
    """
    specs = list(specs)
    if not specs:
        raise CutError("partition_tree needs at least one cut spec")
    pieces = [
        _Piece(
            circuit=circuit,
            wire_orig=list(range(circuit.num_qubits)),
            inst_orig=list(range(len(circuit))),
            entering=None,
            exiting={},
        )
    ]
    for g, spec in enumerate(specs):
        j = _find_piece(pieces, spec, g)
        pieces[j : j + 1] = _cut_piece(pieces[j], spec, g)
    return _assemble(pieces, specs)


def _find_piece(pieces: list[_Piece], spec: CutSpec, stage: int) -> int:
    """Index of the piece holding every cut point of one spec."""
    owners: set[int] = set()
    for c in spec.cuts:
        owner = next(
            (i for i, p in enumerate(pieces) if c.gate_index in p.inst_orig),
            None,
        )
        if owner is None:
            raise CutError(
                f"cut group {stage}: instruction {c.gate_index} was consumed "
                "by an earlier fragment"
            )
        owners.add(owner)
    if len(owners) > 1:
        raise CutError(
            f"cut group {stage}: cut points span {len(owners)} fragments; "
            "every group must sever wires of a single fragment"
        )
    return owners.pop()


def _translate_spec(
    spec: CutSpec, stage: int, wire_orig: list[int], inst_orig: list[int]
) -> CutSpec:
    """Re-express an original-coordinate spec in piece-local coordinates."""
    from repro.cutting.cut import CutPoint

    wire_map = {orig: loc for loc, orig in enumerate(wire_orig)}
    inst_map = {orig: loc for loc, orig in enumerate(inst_orig)}
    points = []
    for c in spec.cuts:
        if c.wire not in wire_map:
            raise CutError(
                f"cut group {stage}: wire {c.wire} was consumed by an "
                "earlier fragment"
            )
        if c.gate_index not in inst_map:
            raise CutError(
                f"cut group {stage}: instruction {c.gate_index} was consumed "
                "by an earlier fragment"
            )
        points.append(CutPoint(wire_map[c.wire], inst_map[c.gate_index]))
    return CutSpec(tuple(points))


def _cut_piece(piece: _Piece, spec: CutSpec, g: int) -> list[_Piece]:
    """Bipartition one piece along spec ``g``, re-homing its group wires.

    Earlier groups' wires must land whole in one half: a preparation wire
    lives where the wire *starts* (the up half when the new spec re-cuts
    it), a measurement wire where it *ends* (the down half in that case).
    """
    local_spec = _translate_spec(spec, g, piece.wire_orig, piece.inst_orig)
    pair = bipartition(piece.circuit, local_spec)
    cut_wires = {c.wire for c in local_spec.cuts}
    q_up = sorted(set(pair.up_out_original) | cut_wires)
    up_map = {w: i for i, w in enumerate(q_up)}
    down_map = {w: i for i, w in enumerate(pair.down_out_original)}
    down_nodes = set(pair.down_node_indices)
    up_nodes = [i for i in range(len(piece.circuit)) if i not in down_nodes]

    up_exiting: dict[int, list[int]] = {}
    down_exiting: dict[int, list[int]] = {}
    for h, wires in piece.exiting.items():
        # measure end of a wire re-cut by spec g lives in the down half
        locs = {"down" if w in down_map else "up" for w in wires}
        if len(locs) > 1:
            raise CutError(
                f"cut group {g} splits the measured wires of cut group {h} "
                "across two fragments; the specs do not induce a tree"
            )
        if locs == {"up"}:
            up_exiting[h] = [up_map[w] for w in wires]
        else:
            down_exiting[h] = [down_map[w] for w in wires]
    up_exiting[g] = list(pair.up_cut_local)

    up_entering = None
    if piece.entering is not None:
        h, wires = piece.entering
        # a preparation applies at the wire start, which stays in the up
        # half when spec g re-cuts the wire
        locs = {"up" if w in up_map else "down" for w in wires}
        if len(locs) > 1:
            raise CutError(
                f"cut group {g} splits the preparation wires of cut group "
                f"{h} across two fragments; the specs do not induce a tree"
            )
        if locs == {"down"}:
            raise CutError(
                f"one fragment would receive cut wires from both group {h} "
                f"and group {g}; the specs induce a DAG, not a tree"
            )
        up_entering = (h, [up_map[w] for w in wires])

    up_piece = _Piece(
        circuit=pair.upstream,
        wire_orig=[piece.wire_orig[w] for w in q_up],
        inst_orig=[piece.inst_orig[i] for i in up_nodes],
        entering=up_entering,
        exiting=up_exiting,
    )
    down_piece = _Piece(
        circuit=pair.downstream,
        wire_orig=[piece.wire_orig[w] for w in pair.down_out_original],
        inst_orig=[piece.inst_orig[i] for i in pair.down_node_indices],
        entering=(g, list(pair.down_cut_local)),
        exiting=down_exiting,
    )
    return [up_piece, down_piece]


def _assemble(pieces: list[_Piece], specs: list[CutSpec]) -> FragmentTree:
    fragments: list[TreeFragment] = []
    for i, p in enumerate(pieces):
        if (p.entering is None) != (i == 0):
            raise CutError(
                "the cut specs do not connect the fragments into a tree"
            )
        meas_groups = sorted(p.exiting)
        by_group = {h: list(p.exiting[h]) for h in meas_groups}
        cut_flat = [w for h in meas_groups for w in by_group[h]]
        cut_set = set(cut_flat)
        out_local = [
            q for q in range(p.circuit.num_qubits) if q not in cut_set
        ]
        fragments.append(
            TreeFragment(
                circuit=p.circuit,
                index=i,
                prep_local=list(p.entering[1]) if p.entering else [],
                cut_local=cut_flat,
                out_local=out_local,
                out_original=[p.wire_orig[q] for q in out_local],
                in_group=p.entering[0] if p.entering else None,
                meas_groups=meas_groups,
                cut_local_by_group=by_group,
            )
        )
    return FragmentTree(
        fragments=fragments,
        group_sizes=[spec.num_cuts for spec in specs],
        specs=list(specs),
    )
