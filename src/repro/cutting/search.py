"""Automatic cut-point search over the circuit DAG.

:func:`find_cut_specs` turns "hand me any circuit" into a list of
:class:`~repro.cutting.cut.CutSpec` consumable by
:func:`~repro.cutting.tree.partition_tree` — chains *and* trees, not just
bipartitions.  Two engines sit behind the one API:

* ``"exhaustive"`` — the reference: depth-first over every way of
  recursively bipartitioning the worklist pieces with up to ``max_cuts``
  total cuts, deduplicating partition states, scoring every feasible
  partition and returning the optimum.  Tractable for the paper-scale
  circuits; a hard state cap guards against misuse.
* ``"greedy"`` — the heuristic for wider circuits: per piece, candidate
  splits are *topological-prefix* cuts of the instruction list (any
  downward-closed prefix induces a valid bipartition whose cut points are
  the last-prefix instruction on each crossing wire), enumerated over the
  canonical order plus orders biased by a Kernighan–Lin balanced min-cut
  of the qubit-interaction graph
  (:meth:`~repro.circuits.dag.CircuitDag.balanced_qubit_bisection`).
  A small beam of first splits is completed by best-first recursion with
  backtracking, the best completion is chosen by the objective, and a
  hill-climb then shifts individual cut points along their wires (and
  tries dropping whole groups) while improvement lasts.

Objectives (``objective=``):

* ``"width"`` — CutQC-style: ``(total cuts, max fragment width, number of
  fragments)``, lexicographic.
* ``"cost"`` — the cost model this repo is uniquely placed to have:
  predicted reconstruction stddev (:func:`~repro.cutting.variance
  .tree_predicted_stddev_tv` on exact fragment data at the production
  per-variant budget) × total variant-shot cost
  (:func:`~repro.cutting.shots.allocate_tree_shots` executions — interior
  fragments pay ``6^{K_in} · 3^{K_out}``).  ``golden_discount=True``
  additionally prices in analytic golden-neglect savings
  (:func:`~repro.core.golden.find_tree_golden_bases_analytic` on the
  ideal path): a candidate whose cuts are golden runs fewer variants
  *and* fewer reconstruction rows, and the searcher sees both.

``topology="chain"`` restricts the search to linear trees (only the tail
piece is ever re-split) for :func:`~repro.core.pipeline.cut_and_run_chain`;
``topology="tree"`` (the default) keeps single-parent trees, and
``topology="dag"`` admits joint-prep candidates — the cost objective then
prices DAG partitions exactly like trees (the variance model and shot
allocator both understand multi-parent fragments).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.circuits.circuit import Circuit
from repro.circuits.dag import CircuitDag
from repro.cutting.cut import CutPoint, CutSpec
# The searcher deliberately reuses the worklist-bipartition internals of
# partition_tree (same package): every split it explores is exactly one
# _cut_piece step, so an emitted spec sequence replays identically.
from repro.cutting.tree import (
    FragmentTree,
    _assemble,
    _cut_piece,
    _Piece,
    partition_tree,
)
from repro.exceptions import CutError

__all__ = ["CutSearchResult", "find_cut_specs", "search_cut_specs"]

#: exhaustive-engine guard rails: auto-selection threshold on the estimated
#: first-split combination count, and the hard cap on visited partition
#: states when the engine *is* chosen (misuse raises, it never spins).
_AUTO_EXHAUSTIVE_COMBOS = 800
_MAX_EXHAUSTIVE_STATES = 200_000

#: greedy-engine shape: first-split beam width, per-piece branching during
#: completion, and hill-climb round cap.
_BEAM_WIDTH = 8
_BRANCH_WIDTH = 6
_HILL_CLIMB_ROUNDS = 8


@dataclass
class CutSearchResult:
    """Everything one cut search produced (``find_cut_specs`` returns
    ``.specs``; benches and tests read the rest)."""

    #: the winning cut groups, in application order (original coordinates)
    specs: list[CutSpec]
    #: the fragment tree those specs induce
    tree: FragmentTree
    #: objective that was optimised ("width" or "cost")
    objective: str
    #: engine that produced the winner ("exhaustive" or "greedy")
    engine: str
    #: the winner's objective value — a lexicographic tuple for "width",
    #: stddev × executions for "cost"
    value: "tuple | float"
    #: number of feasible partitions scored
    evaluations: int
    #: search knobs and statistics (budget, cut caps, candidate counts)
    report: dict = field(default_factory=dict)


def find_cut_specs(
    circuit: Circuit,
    max_fragment_qubits: int,
    num_fragments: "int | None" = None,
    max_cuts: "int | None" = None,
    objective: str = "width",
    engine: str = "auto",
    topology: str = "tree",
    golden_discount: bool = False,
    shots: int = 1000,
    seed: "int | None" = None,
) -> list[CutSpec]:
    """Find cut groups splitting ``circuit`` into budget-fitting fragments.

    The returned list feeds :func:`~repro.cutting.tree.partition_tree`
    directly (and :func:`~repro.cutting.chain.partition_chain` when
    ``topology="chain"``).  Every fragment of the induced partition has at
    most ``max_fragment_qubits`` qubits; ``num_fragments`` pins the exact
    fragment count (default: whatever the objective prefers), ``max_cuts``
    caps the total cut count (default: ``3 · (F − 1)`` for the minimum
    feasible fragment count ``F``).  ``engine="auto"`` picks the
    exhaustive reference when the candidate space is small and the greedy
    heuristic otherwise.  Raises :class:`CutError` when no cut set fits.

    See the module docstring for the ``objective`` / ``golden_discount`` /
    ``topology`` semantics; :func:`search_cut_specs` returns the full
    :class:`CutSearchResult` when the objective value matters.
    """
    return search_cut_specs(
        circuit,
        max_fragment_qubits,
        num_fragments=num_fragments,
        max_cuts=max_cuts,
        objective=objective,
        engine=engine,
        topology=topology,
        golden_discount=golden_discount,
        shots=shots,
        seed=seed,
    ).specs


def search_cut_specs(
    circuit: Circuit,
    max_fragment_qubits: int,
    num_fragments: "int | None" = None,
    max_cuts: "int | None" = None,
    objective: str = "width",
    engine: str = "auto",
    topology: str = "tree",
    golden_discount: bool = False,
    shots: int = 1000,
    seed: "int | None" = None,
) -> CutSearchResult:
    """:func:`find_cut_specs` returning the full :class:`CutSearchResult`."""
    if objective not in ("width", "cost"):
        raise CutError(f'objective must be "width" or "cost", got {objective!r}')
    if engine not in ("auto", "exhaustive", "greedy"):
        raise CutError(
            f'engine must be "auto"/"exhaustive"/"greedy", got {engine!r}'
        )
    if topology not in ("tree", "chain", "dag"):
        raise CutError(
            f'topology must be "tree", "chain" or "dag", got {topology!r}'
        )
    if max_fragment_qubits < 1:
        raise CutError("max_fragment_qubits must be at least 1")
    if num_fragments is not None and num_fragments < 2:
        raise CutError("a cut circuit has at least two fragments")
    if shots <= 0:
        raise CutError("shots must be positive")
    if not len(circuit):
        raise CutError("cannot cut a circuit with no instructions")

    min_fragments = num_fragments or max(
        2, -(-circuit.num_qubits // max_fragment_qubits)
    )
    if max_cuts is None:
        max_cuts = 3 * (min_fragments - 1)
    if max_cuts < min_fragments - 1:
        raise CutError(
            f"max_cuts={max_cuts} cannot produce {min_fragments} fragments "
            f"(each split spends at least one cut)"
        )

    ctx = _SearchContext(
        circuit=circuit,
        budget=max_fragment_qubits,
        num_fragments=num_fragments,
        max_cuts=max_cuts,
        objective=objective,
        topology=topology,
        golden_discount=golden_discount,
        shots=shots,
        seed=seed,
    )

    positions = len(CircuitDag(circuit).wire_cut_positions())
    first_split_combos = sum(
        math.comb(positions, k) for k in range(1, min(max_cuts, 3) + 1)
    )
    if engine == "auto":
        engine = (
            "exhaustive"
            if first_split_combos <= _AUTO_EXHAUSTIVE_COMBOS
            and min_fragments <= 3
            and max_cuts <= 4
            else "greedy"
        )

    if engine == "exhaustive":
        best = _exhaustive(ctx)
    else:
        best = _greedy(ctx)
        if best is None and first_split_combos <= 25 * _AUTO_EXHAUSTIVE_COMBOS:
            # rescue pass: the prefix heuristic found nothing but the
            # candidate space is small enough to settle it exactly.
            best = _exhaustive(ctx)
            if best is not None:
                engine = "exhaustive"

    if best is None:
        raise CutError(
            f"no cut set with <= {max_cuts} cuts fits every fragment in "
            f"<= {max_fragment_qubits} qubits"
            + (
                f" with exactly {num_fragments} fragments"
                if num_fragments is not None
                else ""
            )
        )
    value, specs, tree = best
    return CutSearchResult(
        specs=specs,
        tree=tree,
        objective=objective,
        engine=engine,
        value=value,
        evaluations=ctx.evaluations,
        report={
            "budget": max_fragment_qubits,
            "num_fragments": num_fragments,
            "max_cuts": max_cuts,
            "topology": topology,
            "golden_discount": golden_discount,
            "candidate_positions": positions,
            "first_split_combos": first_split_combos,
        },
    )


# ---------------------------------------------------------------------------
# shared search state
# ---------------------------------------------------------------------------


@dataclass
class _SearchContext:
    """Knobs plus evaluation memo shared by both engines."""

    circuit: Circuit
    budget: int
    num_fragments: "int | None"
    max_cuts: int
    objective: str
    topology: str
    golden_discount: bool
    shots: int
    seed: "int | None"
    evaluations: int = 0
    _memo: dict = field(default_factory=dict)

    def root_piece(self) -> _Piece:
        return _Piece(
            circuit=self.circuit,
            wire_orig=list(range(self.circuit.num_qubits)),
            inst_orig=list(range(len(self.circuit))),
            entering={},
            exiting={},
        )

    # -- feasibility -----------------------------------------------------
    def feasible_tree(self, tree: FragmentTree) -> bool:
        if any(f.num_qubits > self.budget for f in tree.fragments):
            return False
        if (
            self.num_fragments is not None
            and tree.num_fragments != self.num_fragments
        ):
            return False
        if tree.total_cuts > self.max_cuts:
            return False
        if self.topology == "chain" and not tree.is_chain:
            return False
        if self.topology == "tree" and not tree.is_tree:
            # partition_tree accepts DAG spec sets now; a tree-topology
            # search must still reject them (topology="dag" scores them)
            return False
        return True

    # -- scoring ---------------------------------------------------------
    def evaluate(
        self, specs: "list[CutSpec]", pieces: "list[_Piece] | None" = None
    ):
        """Score one candidate spec sequence.

        Returns ``(value, tree)``, or ``None`` when the specs do not induce
        a feasible partition.  ``pieces`` skips the partition replay when
        the caller already holds the worklist state the specs produced.
        """
        key = tuple(
            tuple((c.wire, c.gate_index) for c in s.cuts) for s in specs
        )
        if key in self._memo:
            return self._memo[key]
        try:
            tree = (
                _assemble(pieces, list(specs))
                if pieces is not None
                else partition_tree(self.circuit, specs)
            )
        except CutError:
            self._memo[key] = None
            return None
        if not self.feasible_tree(tree):
            self._memo[key] = None
            return None
        self.evaluations += 1
        if self.objective == "width":
            value = (
                tree.total_cuts,
                max(f.num_qubits for f in tree.fragments),
                tree.num_fragments,
            )
        else:
            value = _cost_objective(
                tree, self.shots, self.golden_discount
            )
        out = (value, list(specs), tree)
        self._memo[key] = out
        return out


def _cost_objective(
    tree: FragmentTree, shots: int, golden_discount: bool
) -> float:
    """Predicted stddev × total executions for one candidate tree.

    Exact fragment data is cheap on paper-scale fragments (one statevector
    body per node, variants derived from the cache), and evaluating the
    delta-method variance on it *at the production shot budget* prices the
    reconstruction error a finite-shot run of this tree would pay.
    """
    from repro.core.neglect import tree_reduced_variants
    from repro.cutting.execution import exact_tree_data
    from repro.cutting.shots import allocate_tree_shots
    from repro.cutting.variance import tree_predicted_stddev_tv

    golden_used: list = [None] * tree.num_groups
    if golden_discount:
        from repro.core.golden import find_tree_golden_bases_analytic

        _, selected = find_tree_golden_bases_analytic(tree)
        golden_used = [sel if sel else None for sel in selected]
    if any(golden_used):
        bases, variants = tree_reduced_variants(tree, golden_used)
    else:
        bases = variants = None
    data = exact_tree_data(tree, variants=variants)
    # exact records at a finite per-variant budget = the predicted noise of
    # the production run (shots_per_variant=0 would report exactly zero)
    data.shots_per_variant = shots
    sigma = tree_predicted_stddev_tv(data, bases=bases)
    counts = [len(r) for r in data.records]
    _, report = allocate_tree_shots(counts, shots_per_variant=shots)
    return float(sigma) * float(report["total_executions"])


def _split_piece(piece: _Piece, local_points, group: int):
    """Split one worklist piece at piece-local ``(wire, gate)`` points.

    Returns ``(orig_spec, [up_piece, down_piece])`` with the spec lifted to
    original-circuit coordinates (so the final sequence replays through
    :func:`partition_tree`), or raises :class:`CutError` when the points do
    not induce a valid tree-preserving bipartition.
    """
    orig_spec = CutSpec(
        tuple(
            CutPoint(piece.wire_orig[w], piece.inst_orig[g])
            for w, g in local_points
        )
    )
    return orig_spec, _cut_piece(piece, {group: orig_spec})


# ---------------------------------------------------------------------------
# exhaustive reference engine
# ---------------------------------------------------------------------------


def _exhaustive(ctx: _SearchContext):
    """Optimal search over recursive bipartitions (small circuits)."""
    import itertools

    best: "list | None" = [None]
    seen: set = set()

    def piece_splits(piece: _Piece, group: int, cut_cap: int):
        dag = CircuitDag(piece.circuit)
        positions = dag.wire_cut_positions()
        out = []
        for k in range(1, min(cut_cap, piece.circuit.num_qubits) + 1):
            for combo in itertools.combinations(positions, k):
                wires = [w for w, _ in combo]
                if len(set(wires)) != len(wires):
                    continue
                try:
                    out.append(_split_piece(piece, combo, group))
                except CutError:
                    continue
        return out

    def recurse(pieces: "list[_Piece]", specs: "list[CutSpec]", used: int):
        sig = frozenset(frozenset(p.inst_orig) for p in pieces)
        if sig in seen:
            return
        if len(seen) >= _MAX_EXHAUSTIVE_STATES:
            raise CutError(
                "exhaustive cut search exceeded its state cap "
                f"({_MAX_EXHAUSTIVE_STATES} partitions); use "
                'engine="greedy" for circuits this size'
            )
        seen.add(sig)
        n = len(pieces)
        over_budget = sum(
            1 for p in pieces if p.circuit.num_qubits > ctx.budget
        )
        if n >= 2 and not over_budget and (
            ctx.num_fragments is None or n == ctx.num_fragments
        ):
            scored = ctx.evaluate(specs, pieces)
            if scored is not None and (
                best[0] is None or scored[0] < best[0][0]
            ):
                best[0] = scored
        remaining = ctx.max_cuts - used
        if remaining <= 0:
            return
        if ctx.num_fragments is not None and n >= ctx.num_fragments:
            return
        # every over-budget piece (and every missing fragment) still costs
        # at least one cut
        if over_budget > remaining:
            return
        if (
            ctx.num_fragments is not None
            and ctx.num_fragments - n > remaining
        ):
            return
        indices = [n - 1] if ctx.topology == "chain" else range(n)
        for j in indices:
            for spec, halves in piece_splits(pieces[j], len(specs), remaining):
                recurse(
                    pieces[:j] + halves + pieces[j + 1 :],
                    specs + [spec],
                    used + spec.num_cuts,
                )

    recurse([ctx.root_piece()], [], 0)
    return best[0]


# ---------------------------------------------------------------------------
# greedy heuristic engine
# ---------------------------------------------------------------------------


def _biased_topological_order(
    circuit: Circuit, dag: CircuitDag, prefer: "set[int]"
) -> list[int]:
    """Kahn's algorithm listing gates confined to ``prefer`` qubits first.

    Prefix cuts of this order approximate the Kernighan–Lin qubit
    bisection: the preferred half's gates drain before anything touching
    the other half, so the crossing boundary sits near the min-cut.
    """
    import heapq

    indegree = {node: dag.graph.in_degree(node) for node in dag.graph}

    def rank(node: int) -> tuple[int, int]:
        inside = all(q in prefer for q in circuit[node].qubits)
        return (0 if inside else 1, node)

    heap = [rank(n) for n, d in indegree.items() if d == 0]
    heapq.heapify(heap)
    order: list[int] = []
    while heap:
        _, node = heapq.heappop(heap)
        order.append(node)
        for succ in dag.successors(node):
            indegree[succ] -= 1
            if indegree[succ] == 0:
                heapq.heappush(heap, rank(succ))
    return order


def _prefix_splits(ctx: _SearchContext, piece: _Piece, group: int):
    """Ranked candidate splits of one piece from topological prefixes.

    Any prefix of a topological instruction order is downward-closed, so
    it induces a valid bipartition whose cut points are the last prefix
    instruction on each crossing wire; enumerating prefixes of a few
    well-chosen orders covers balanced and min-cut-shaped splits without
    combinatorial blowup.
    """
    circuit = piece.circuit
    num_qubits = circuit.num_qubits
    dag = CircuitDag(circuit)
    segments = [dag.wire_segments(w) for w in range(num_qubits)]

    orders = [list(range(len(circuit)))]
    if num_qubits >= 4:
        half_a, half_b = dag.balanced_qubit_bisection(seed=ctx.seed or 0)
        orders.append(_biased_topological_order(circuit, dag, half_a))
        orders.append(_biased_topological_order(circuit, dag, half_b))

    seen: set = set()
    candidates = []
    for order in orders:
        prefix: set[int] = set()
        for node in order[:-1]:
            prefix.add(node)
            points = []
            for wire in range(num_qubits):
                in_prefix = [i for i in segments[wire] if i in prefix]
                if in_prefix and len(in_prefix) < len(segments[wire]):
                    points.append((wire, in_prefix[-1]))
            if not points or len(points) > ctx.max_cuts:
                continue
            try:
                spec, halves = _split_piece(piece, points, group)
            except CutError:
                continue
            signature = frozenset(halves[0].inst_orig)
            if signature in seen:
                continue
            seen.add(signature)
            widths = [h.circuit.num_qubits for h in halves]
            key = (
                spec.num_cuts,
                max(widths),
                abs(widths[0] - widths[1]),
                len(candidates),
            )
            candidates.append((key, spec, halves))
    candidates.sort(key=lambda c: c[0])
    return [(spec, halves) for _, spec, halves in candidates]


def _complete_greedily(
    ctx: _SearchContext,
    pieces: "list[_Piece]",
    specs: "list[CutSpec]",
    used: int,
):
    """Best-first completion of a partial partition, with backtracking."""
    n = len(pieces)
    widths = [p.circuit.num_qubits for p in pieces]
    need = [j for j in range(n) if widths[j] > ctx.budget]
    if ctx.topology == "chain" and any(j != n - 1 for j in need):
        return None  # an interior chain piece can never be re-split
    if not need and ctx.num_fragments is not None and n < ctx.num_fragments:
        # budget satisfied but more fragments demanded: split the widest
        need = [n - 1 if ctx.topology == "chain" else widths.index(max(widths))]
    if not need:
        if ctx.num_fragments is not None and n != ctx.num_fragments:
            return None
        return list(specs)
    remaining = ctx.max_cuts - used
    if remaining <= 0 or len(need) > remaining:
        return None
    if (
        ctx.num_fragments is not None
        and n >= ctx.num_fragments
    ):
        return None
    j = max(need, key=lambda i: widths[i])
    for spec, halves in _prefix_splits(ctx, pieces[j], len(specs))[
        :_BRANCH_WIDTH
    ]:
        if spec.num_cuts > remaining:
            continue
        done = _complete_greedily(
            ctx,
            pieces[:j] + halves + pieces[j + 1 :],
            specs + [spec],
            used + spec.num_cuts,
        )
        if done is not None:
            return done
    return None


def _hill_climb(ctx: _SearchContext, scored):
    """First-improvement local search over cut-point positions.

    Moves: shift one cut point to the previous/next instruction on its
    wire (original coordinates), or drop one whole cut group.  Every move
    is re-validated through :func:`partition_tree`, so only
    feasibility-preserving improvements are accepted.
    """
    dag = CircuitDag(ctx.circuit)
    segments = [dag.wire_segments(w) for w in range(ctx.circuit.num_qubits)]

    def moves(specs: "list[CutSpec]"):
        for gi, spec in enumerate(specs):
            if len(specs) > 1:
                yield specs[:gi] + specs[gi + 1 :]
            for ci, cut in enumerate(spec.cuts):
                seg = segments[cut.wire]
                pos = seg.index(cut.gate_index)
                for step in (-1, 1):
                    if not 0 <= pos + step < len(seg) - 1:
                        continue  # stay off the last-on-wire position
                    shifted = CutPoint(cut.wire, seg[pos + step])
                    new_cuts = list(spec.cuts)
                    new_cuts[ci] = shifted
                    yield (
                        specs[:gi]
                        + [CutSpec(tuple(new_cuts))]
                        + specs[gi + 1 :]
                    )

    for _ in range(_HILL_CLIMB_ROUNDS):
        improved = False
        for candidate in moves(scored[1]):
            rescored = ctx.evaluate(candidate)
            if rescored is not None and rescored[0] < scored[0]:
                scored = rescored
                improved = True
                break
        if not improved:
            break
    return scored


def _greedy(ctx: _SearchContext):
    """Beam over first splits, greedy completion, objective pick, climb."""
    root = ctx.root_piece()
    solutions: list = []
    for spec, halves in _prefix_splits(ctx, root, 0)[:_BEAM_WIDTH]:
        completed = _complete_greedily(ctx, halves, [spec], spec.num_cuts)
        if completed is not None:
            solutions.append(completed)
    best = None
    for specs in solutions:
        scored = ctx.evaluate(specs)
        if scored is not None and (best is None or scored[0] < best[0]):
            best = scored
    if best is None:
        return None
    return _hill_climb(ctx, best)
