"""Sparse / top-k support for the tree reconstruction (ROADMAP item 4).

Dense reconstruction carries a full ``2^n`` vector to the root, which is
the repo's memory wall.  NISQ workloads that benefit from cutting are
dominated by near-deterministic, *sparse* outcome distributions, so the
contraction can prune outcome columns as it goes — the same escape hatch
as CutQC's "dynamic definition" recursion, here in a single pass with a
rigorous error bound.

**Pruning measure.**  Every pruning decision ranks outcomes by their
*mixed-input subtree marginal*: the probability the partially contracted
subtree would assign to the outcome if its entering cut wires carried the
maximally mixed state.  This is exactly the all-``I`` basis row of the
accumulated tensor (an ``I`` on the entering side sums the preparation
eigenstates, on an exiting side it marginalises the cut bits), so it is
free — no extra contraction.  Since any entering state ``ρ`` satisfies
``ρ ≤ 2^{K_in}·(I/2^{K_in})`` as an operator inequality and the rest of
the reconstruction is a completely positive map on that input, the true
final mass of an outcome is at most ``2^{K_in}`` times its mixed-input
marginal.  Summing that bound over every discarded outcome at every
pruning step gives ``prune_bound`` — on exact fragment data a rigorous
upper bound on the L1 (and hence total-variation) error of the sparse
result.  On finite-shot data the operator inequality applies to the
*expected* records: shot noise perturbs discarded entries like kept
ones, so the bound is exact in expectation and the fluctuation is
covered by the delta-method sampling term
(``tv_bound = sampling_stddev + prune_bound`` on
:class:`~repro.core.pipeline.TreeRunResult`).  The additive
composition over steps is a union bound, first-order equal to the
multiplicative kept-mass product ``1 − Π_i (1 − ε_i)`` along the tree.

Policies receive the *normalised* scores (mixed-input marginals, which
sum to ≈ 1 on exact data), so ``threshold(1e-4)`` means "drop outcomes a
maximally mixed input would see with probability below 1e-4" at every
level of the tree.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.exceptions import ReconstructionError
from repro.utils.bits import format_bitstring

__all__ = [
    "PrunePolicy",
    "SparseDistribution",
    "postprocess_sparse",
    "threshold",
    "top_k",
]


class PrunePolicy:
    """Base class of pruning policies (see :func:`threshold` / :func:`top_k`).

    A policy is a callable rule ``select(scores) -> kept indices``; scores
    are mixed-input subtree marginals (module docstring).  Policies never
    return an empty selection — if nothing qualifies, the single largest
    score survives, so the reconstruction always has support.
    """

    def select(self, scores: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    @staticmethod
    def _non_empty(kept: np.ndarray, scores: np.ndarray) -> np.ndarray:
        if kept.size == 0:
            kept = np.array([int(np.argmax(scores))])
        return np.sort(kept).astype(np.int64)


@dataclass(frozen=True)
class _Threshold(PrunePolicy):
    eps: float

    def select(self, scores: np.ndarray) -> np.ndarray:
        return self._non_empty(np.nonzero(scores >= self.eps)[0], scores)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"threshold({self.eps!r})"


@dataclass(frozen=True)
class _TopK(PrunePolicy):
    k: int

    def select(self, scores: np.ndarray) -> np.ndarray:
        if scores.size <= self.k:
            return np.arange(scores.size, dtype=np.int64)
        # stable sort so ties break on the lower index, deterministically
        kept = np.argsort(-scores, kind="stable")[: self.k]
        return self._non_empty(kept, scores)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"top_k({self.k!r})"


def threshold(eps: float) -> PrunePolicy:
    """Drop outcomes whose mixed-input subtree marginal is below ``eps``.

    ``eps = 0`` keeps everything with non-negative score (exact zeros
    included), so it degrades gracefully to the dense result.
    """
    if eps < 0:
        raise ReconstructionError(f"threshold eps must be >= 0, got {eps}")
    return _Threshold(float(eps))


def top_k(k: int) -> PrunePolicy:
    """Keep the ``k`` largest-scoring outcomes at every pruning step.

    ``top_k(2^n)`` (or larger) keeps everything and is bit-identical to
    the dense path.
    """
    if k < 1:
        raise ReconstructionError(f"top_k k must be >= 1, got {k}")
    return _TopK(int(k))


@dataclass
class SparseDistribution:
    """A pruned reconstruction: kept outcomes only, never the dense vector.

    ``indices`` are little-endian basis indices over the original circuit's
    ``num_qubits`` register (unique, sorted ascending), ``values`` the
    reconstructed quasi-probabilities aligned with them.  ``prune_bound``
    is the accumulated L1 error bound of everything discarded (module
    docstring); the dense reconstruction of the same data differs from
    :meth:`to_dense` by at most that much in L1, hence at most that much
    in total variation.
    """

    num_qubits: int
    indices: np.ndarray
    values: np.ndarray
    prune_bound: float = 0.0

    def __post_init__(self) -> None:
        self.indices = np.asarray(self.indices, dtype=np.int64)
        self.values = np.asarray(self.values)
        if self.indices.ndim != 1 or self.indices.shape != self.values.shape:
            raise ReconstructionError(
                "indices and values must be 1-D arrays of equal length"
            )
        if self.indices.size and (
            self.indices.min() < 0
            or self.indices.max() >= (1 << self.num_qubits)
        ):
            raise ReconstructionError("sparse index out of register range")

    @property
    def nnz(self) -> int:
        """Number of kept outcomes."""
        return int(self.indices.size)

    @property
    def nbytes(self) -> int:
        """Memory footprint of the kept representation."""
        return int(self.indices.nbytes + self.values.nbytes)

    def sum(self) -> float:
        return float(self.values.sum())

    def to_dense(self) -> np.ndarray:
        """Scatter into the full ``2^n`` vector (small-n diagnostics only)."""
        out = np.zeros(1 << self.num_qubits, dtype=self.values.dtype)
        out[self.indices] = self.values
        return out

    def as_dict(self) -> dict[str, float]:
        """Display-bitstring → value (qubit 0 leftmost, as everywhere)."""
        return {
            format_bitstring(int(i), self.num_qubits): float(v)
            for i, v in zip(self.indices, self.values)
        }

    def tv_against(self, truth: "dict[int, float] | np.ndarray") -> float:
        """Total-variation distance to a reference distribution.

        ``truth`` is either a dense vector or a ``{index: probability}``
        dict — the latter never densifies, so it works at 20+ qubits.
        """
        if isinstance(truth, dict):
            mine = dict(zip((int(i) for i in self.indices), self.values))
            keys = set(mine) | set(truth)
            return 0.5 * sum(
                abs(float(mine.get(k, 0.0)) - float(truth.get(k, 0.0)))
                for k in keys
            )
        truth = np.asarray(truth, dtype=np.float64)
        return float(0.5 * np.abs(self.to_dense() - truth).sum())

    # ------------------------------------------------------------- sampling
    def _normalised(self) -> np.ndarray:
        p = np.clip(np.asarray(self.values, dtype=np.float64), 0.0, None)
        total = p.sum()
        tol = max(1e-6, float(self.prune_bound))
        if abs(total - 1.0) > tol:
            raise ReconstructionError(
                f"sparse values sum to {total}, outside the pruning "
                f"tolerance {tol} of 1 — postprocess before sampling"
            )
        if total <= 0:
            raise ReconstructionError("sparse distribution has zero mass")
        return p / total

    def sample_counts(
        self, shots: int, seed: "int | np.random.Generator | None" = None
    ) -> dict[str, int]:
        """Multinomial counts over the kept outcomes — no dense vector.

        One ``rng.multinomial`` draw over ``nnz`` entries: O(nnz + shots),
        matching the law of :func:`repro.sim.sampler.sample_counts` on the
        dense scatter restricted to the kept support.
        """
        from repro.sim.sampler import sample_sparse_counts

        return sample_sparse_counts(
            self.indices, self._normalised(), shots, self.num_qubits, seed
        )

    def to_counts(self, shots: int) -> dict[str, int]:
        """Deterministic expected counts (sparse analogue of
        :func:`repro.sim.sampler.probs_to_counts`)."""
        raw = np.round(np.asarray(self.values, dtype=np.float64) * shots)
        hit = np.nonzero(raw > 0)[0]
        return {
            format_bitstring(int(self.indices[j]), self.num_qubits): int(
                raw[j]
            )
            for j in hit
        }


def postprocess_sparse(sd: SparseDistribution, mode: str) -> SparseDistribution:
    """Sparse analogue of the dense ``_postprocess`` modes.

    ``clip`` clips negatives and renormalises over the *kept* support;
    ``simplex`` projects the kept values onto the probability simplex of
    the kept support (discarded outcomes stay exactly zero, consistent
    with the pruning decision).  Either way the result sums to 1 over the
    kept outcomes; ``prune_bound`` still bounds how much mass the raw
    reconstruction had outside them.
    """
    if mode == "raw":
        return sd
    if mode == "clip":
        out = np.clip(sd.values, 0.0, None)
        s = out.sum()
        if s <= 0:
            raise ReconstructionError("reconstruction clipped to zero mass")
        return replace(sd, values=out / s)
    if mode == "simplex":
        from repro.cutting.reconstruction import project_to_simplex

        return replace(sd, values=project_to_simplex(sd.values))
    raise ReconstructionError(f"unknown postprocess mode {mode!r}")
