"""Shot-noise variance of the reconstruction estimator.

The paper's §IV notes that online golden detection "would require further
statistical analysis of acceptable error and the amplification of error
through tensor contraction".  This module supplies that analysis for the
reconstruction itself: a first-order (delta-method) variance estimate of
every reconstructed probability.

Model.  The estimator is ``p̂(b₁,b₂) = 2^{-K} Σ_M Â[M,b₁] B̂[M,b₂]`` where
Â rows are eigenvalue-weighted multinomial estimates and B̂ rows are signed
sums over *independent* preparation runs.  For one multinomial sample of
size N, a signed sum ``Δ̂ = Σ_r c_r p̂_r`` with ``c_r ∈ {−1,0,+1}`` has

    Var(Δ̂) = (Σ_r c_r² p_r − (Σ_r c_r p_r)²) / N.

Treating Â and B̂ as independent (they come from different devices runs)
and ignoring covariance *between basis rows* (rows share settings, so this
is a heuristic — benchmarked against empirical variance in the test suite,
where it tracks within a small factor):

    Var(p̂) ≈ 4^{-K} Σ_M [ Â² Var(B̂) + B̂² Var(Â) + Var(Â) Var(B̂) ].

Golden cuts drop rows and therefore variance terms — one quantitative
reason the method costs no accuracy at equal per-variant shots.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.cutting.execution import FragmentData
from repro.cutting.reconstruction import (
    _basis_rows,
    _chain_row_runs,
    _chain_rows,
    _contract_network,
    _contract_tree,
    _normalise_bases,
    _resolve_plan,
    _signs_for,
    _tree_of,
    build_tree_fragment_tensor,
)
from repro.exceptions import ReconstructionError
from repro.utils.bits import permute_probability_axes

__all__ = [
    "chain_predicted_stddev_tv",
    "chain_reconstruction_variance",
    "predicted_stddev_tv",
    "reconstruction_variance",
    "tree_predicted_stddev_tv",
    "tree_reconstruction_variance",
    "tree_tv_bound",
]

_PREP_OF = {
    "I": ("Z+", "Z-"),
    "Z": ("Z+", "Z-"),
    "X": ("X+", "X-"),
    "Y": ("Y+", "Y-"),
}


def _upstream_row_stats(
    data: FragmentData, rows: list[tuple[str, ...]]
) -> tuple[np.ndarray, np.ndarray]:
    """Means and variances of Â rows: each shape (R, 2^{n1_out})."""
    K = data.pair.num_cuts
    N = max(data.shots_per_variant, 1)
    settings = data.upstream_settings()
    pools = [sorted({s[k] for s in settings}) for k in range(K)]
    fallback = ["Z" if "Z" in p else p[0] for p in pools]
    means, variances = [], []
    for row in rows:
        setting = tuple(
            m if m != "I" else fallback[k] for k, m in enumerate(row)
        )
        A = data.upstream.get(setting)
        if A is None:
            raise ReconstructionError(f"missing upstream setting {setting}")
        mask = sum(1 << k for k, m in enumerate(row) if m != "I")
        signs = _signs_for(mask, K)
        mean = A @ signs
        # Var = (Σ c² p − (Σ c p)²)/N with c = signs (all ±1 here)
        var = (A.sum(axis=1) - mean**2) / N
        means.append(mean)
        variances.append(np.clip(var, 0.0, None))
    return np.array(means), np.array(variances)


def _downstream_row_stats(
    data: FragmentData, rows: list[tuple[str, ...]]
) -> tuple[np.ndarray, np.ndarray]:
    """Means and variances of B̂ rows: each shape (R, 2^{n2})."""
    K = data.pair.num_cuts
    N = max(data.shots_per_variant, 1)
    n_down = data.pair.n_down
    means = np.zeros((len(rows), 1 << n_down))
    variances = np.zeros_like(means)
    for i, row in enumerate(rows):
        for s in range(1 << K):
            init = tuple(_PREP_OF[m][(s >> k) & 1] for k, m in enumerate(row))
            vec = data.downstream.get(init)
            if vec is None:
                raise ReconstructionError(f"missing downstream init {init}")
            mask = sum(1 << k for k, m in enumerate(row) if m != "I")
            sign = 1.0 - 2.0 * (bin(s & mask).count("1") & 1)
            means[i] += sign * vec
            # independent run: Var(±p̂) = p(1−p)/N
            variances[i] += vec * (1.0 - vec) / N
    return means, variances


def reconstruction_variance(
    data: FragmentData,
    bases: Sequence[Sequence[str]] | None = None,
) -> np.ndarray:
    """Per-bitstring variance estimate of the reconstructed distribution.

    Returns a vector aligned with
    :func:`repro.cutting.reconstruction.reconstruct_distribution` output
    (little-endian over the full register).  Exact data (``shots=0``)
    yields zeros.
    """
    if data.shots_per_variant <= 0:
        n = len(data.pair.output_order())
        return np.zeros(1 << n)
    K = data.pair.num_cuts
    bases = _normalise_bases(bases, K)
    rows = _basis_rows(bases)
    A, var_a = _upstream_row_stats(data, rows)
    B, var_b = _downstream_row_stats(data, rows)
    # Var(XY) for independent X,Y: x²Var(Y) + y²Var(X) + Var(X)Var(Y);
    # rows summed as if independent (documented approximation).
    var_joint = (
        np.einsum("ri,rj->ij", A**2, var_b)
        + np.einsum("ri,rj->ij", var_a, B**2)
        + np.einsum("ri,rj->ij", var_a, var_b)
    ) / float(4**K)
    v = var_joint.ravel(order="F")
    return permute_probability_axes(v, data.pair.output_order())


def predicted_stddev_tv(
    data: FragmentData, bases: Sequence[Sequence[str]] | None = None
) -> float:
    """Predicted E[TV error] proxy: ``½ Σ_b σ(b)`` under the variance model.

    A half-normal first moment would multiply by √(2/π); we keep the plain
    half-sum as a conservative scalar summary for shot-budget planning.
    """
    var = reconstruction_variance(data, bases)
    return float(0.5 * np.sqrt(np.clip(var, 0, None)).sum())


# ---------------------------------------------------------------------------
# Tree variance (chains are the one-child case).  The estimator is a product
# of N independent fragment tensors, so the first-order delta method gives,
# per basis-row combination,
#
#     Var(Π_i T_i) ≈ Σ_i (Π_{j≠i} T_j²) · Var(T_i)
#
# (higher-order Var·Var cross terms are dropped; the pair version keeps its
# single cross term, so the two models agree to first order on N = 2).  Per
# fragment and row, the variance follows the same multinomial/signed-sum
# rules as the pair stats: one independent run per (init, setting) record,
# ``Var = (Σ c² p − mean²)/N`` within a run, variances adding across the
# ``2^{K_prev}`` preparation eigenstate runs a row consumes.  The
# substituted products are contracted with the same leaves-to-root kernel
# as the reconstruction itself.


def _tree_row_stats(data, index: int, bases=None):
    """Means and variances of one node's reduced tensor rows.

    Record resolution (``I``-fallback, eigenstate expansion, signs) comes
    from the shared :func:`~repro.cutting.reconstruction._chain_row_runs`
    iterator over the node's *flat* exiting rows, so the variance model
    consumes exactly the runs the reconstruction does.  Per independent run
    the multinomial signed-sum rule gives ``Var = (Σ c² p − mean²)/N``;
    entering-side signs square away and run variances add.  Both returned
    arrays carry one row axis per child group, ready for the tree
    contraction.
    """
    frag, records, _, _, rows_prev, rows_next, fallback = _chain_rows(
        data, index, bases
    )
    N = max(data.shots_per_variant, 1)
    means, _, _ = build_tree_fragment_tensor(data, index, bases)
    flat = np.zeros((len(rows_prev), len(rows_next), 1 << frag.n_out))
    for a, b, _sign, signs_n, A in _chain_row_runs(
        index, frag, records, rows_prev, rows_next, fallback
    ):
        run_mean = A @ signs_n
        flat[a, b] += np.clip(A.sum(axis=1) - run_mean**2, 0.0, None) / N
    return means, flat.reshape(means.shape)


#: chains are linear trees; the historical name remains for its importers
_chain_row_stats = _tree_row_stats


def tree_reconstruction_variance(data, bases=None) -> np.ndarray:
    """Per-bitstring variance estimate of a tree reconstruction.

    Aligned with :func:`repro.cutting.reconstruction.reconstruct_tree_distribution`
    output; exact data (``shots=0``) yields zeros.  For each fragment the
    tree is re-contracted with that fragment's variance tensor substituted
    and every other tensor squared (first-order delta method).
    """
    tree = _tree_of(data)
    n_total = len(tree.output_order())
    if data.shots_per_variant <= 0:
        return np.zeros(1 << n_total)
    stats = [
        _tree_row_stats(data, i, bases) for i in range(tree.num_fragments)
    ]
    plan = _resolve_plan(tree, bases, None)
    scale = 1.0 / float(4**tree.total_cuts)
    total = np.zeros(1 << n_total)
    for v in range(tree.num_fragments):
        tensors = [
            stats[i][1] if i == v else np.square(stats[i][0])
            for i in range(tree.num_fragments)
        ]
        if plan is None:
            vec, order = _contract_tree(tensors, tree)
        else:
            vec, order = _contract_network(tensors, tree, plan, bases)
        total += permute_probability_axes(vec, order)
    return scale * total


def tree_predicted_stddev_tv(data, bases=None) -> float:
    """Tree analogue of :func:`predicted_stddev_tv`."""
    var = tree_reconstruction_variance(data, bases)
    return float(0.5 * np.sqrt(np.clip(var, 0, None)).sum())


def tree_tv_bound(
    data, bases=None, prune_bound: float = 0.0, degradation_bound: float = 0.0
) -> float:
    """Total predicted TV error of a (possibly pruned) tree reconstruction.

    The delta-method sampling stddev summary plus the rigorous L1 bound
    on the mass a ``prune=`` policy discarded (see
    :mod:`repro.cutting.sparse`): the two error sources are independent —
    shot noise perturbs the kept entries, pruning removes entries — so
    the total TV error is bounded (to first order in each) by their sum.
    ``degradation_bound`` adds the superoperator-norm penalty for basis
    rows graceful degradation demoted after permanent backend failures
    (see :func:`~repro.cutting.resilience.degradation_tv_penalty`) — a
    third independent error source: demotion removes channel terms the
    surviving rows never see.  The variance model densifies
    intermediates, so call this for small-``n`` diagnostics; on exact
    fragment data the sampling term is exactly zero and the structural
    bounds alone bound the TV error.
    """
    return (
        tree_predicted_stddev_tv(data, bases)
        + float(prune_bound)
        + float(degradation_bound)
    )


def chain_reconstruction_variance(data, bases=None) -> np.ndarray:
    """Chain alias of :func:`tree_reconstruction_variance` (linear tree)."""
    return tree_reconstruction_variance(data, bases)


def chain_predicted_stddev_tv(data, bases=None) -> float:
    """Chain alias of :func:`tree_predicted_stddev_tv` (linear tree)."""
    return tree_predicted_stddev_tv(data, bases)
