"""Content-addressed fragment identity.

Two cut requests that share a fragment *body* — same local circuit, same
entering/exiting cut-group layout, same device physics — should share one
warmed simulation cache, even when the :class:`~repro.cutting.tree
.TreeFragment` objects are distinct (two callers cutting the same circuit
build independent trees).  This module defines that identity: a canonical
SHA-256 fingerprint over

* the fragment's local circuit (instruction names, qubit tuples, exact
  parameter bytes),
* the flat preparation/measurement layouts and their group decomposition
  (``in_groups``/``prep_local_by_group``, ``meas_groups``/
  ``cut_local_by_group``) — the part of fragment identity the cut protocol
  reads,
* the executing backend's physics: device class, coupling graph, noise
  model (rules' gate names, qubit restrictions and exact Kraus bytes;
  readout confusion entries), timing constants, and knobs like
  ``num_trajectories``.

Transpilation is deterministic given (circuit, coupling), so hashing the
*logical* body plus the coupling map addresses the transpiled body without
paying for a transpile per lookup.

:class:`FragmentStore` is the content-addressed cache built on these
fingerprints: ``get_or_create`` returns a warmed-once-per-body cache
rebound to the caller's fragment object (backends verify ``cache.fragment
is frag`` before serving), and ``pool_for`` assembles a whole tree's
:class:`~repro.cutting.cache.TreeCachePool` from the store so concurrent
requests over overlapping circuits transpile each distinct body exactly
once per process.
"""

from __future__ import annotations

import hashlib
import threading

import numpy as np

from repro.cutting.cache import TreeCachePool

__all__ = [
    "FragmentStore",
    "backend_fingerprint",
    "circuit_fingerprint",
    "coupling_fingerprint",
    "fragment_fingerprint",
    "noise_fingerprint",
]


def _hash(parts) -> str:
    h = hashlib.sha256()
    for part in parts:
        if isinstance(part, bytes):
            h.update(part)
        else:
            h.update(repr(part).encode())
        h.update(b"\x1f")  # unit separator: ("ab","c") != ("a","bc")
    return h.hexdigest()


def circuit_fingerprint(circuit) -> str:
    """Canonical hash of a circuit: width + exact instruction stream.

    Parameters are hashed as float64 bytes, so gates that differ only in
    the last ulp of an angle hash differently — content addressing must
    never conflate distributions that the simulator would distinguish.
    """
    parts = [b"circuit", circuit.num_qubits]
    for inst in circuit:
        parts.append(inst.name)
        parts.append(inst.qubits)
        parts.append(np.asarray(inst.params, dtype=np.float64).tobytes())
    return _hash(parts)


def noise_fingerprint(noise_model) -> str:
    """Canonical hash of a noise model: rules in order + readout entries."""
    parts = [b"noise"]
    for rule in noise_model.rules:
        parts.append(rule.gate_names)
        parts.append(rule.qubits)
        parts.append(rule.channel.name)
        for op in rule.channel.operators:
            parts.append(np.ascontiguousarray(op, dtype=np.complex128).tobytes())
    for qubit in sorted(noise_model.readout):
        err = noise_model.readout[qubit]
        parts.append((qubit, float(err.p01), float(err.p10)))
    return _hash(parts)


def coupling_fingerprint(coupling) -> str:
    """Canonical hash of a coupling map: qubit count + sorted edge set."""
    return _hash([b"coupling", coupling.num_qubits, sorted(coupling.edges())])


def _timing_parts(timing) -> tuple:
    return (
        float(timing.gate_time_1q),
        float(timing.gate_time_2q),
        float(timing.readout_time),
        float(timing.reset_time),
        float(timing.job_overhead),
    )


def backend_fingerprint(backend) -> str:
    """Canonical hash of the physics a backend would apply to a fragment.

    Covers the backend's class, and — where present — its coupling map,
    noise model, timing constants and trajectory count.  Fault-injection
    wrappers are transparent here on purpose: injected faults perturb
    *executions*, not the cached body physics, and the wrapper delegates
    cache construction to its inner backend.
    """
    inner = getattr(backend, "inner", None)
    if inner is not None:  # fault wrapper: cache physics is the inner device's
        return backend_fingerprint(inner)
    parts: list = [b"backend", type(backend).__name__]
    coupling = getattr(backend, "coupling", None)
    if coupling is not None:
        parts.append(coupling_fingerprint(coupling))
    noise = getattr(backend, "noise_model", None)
    if noise is not None:
        parts.append(noise_fingerprint(noise))
    timing = getattr(backend, "timing", None)
    if timing is not None:
        parts.append(_timing_parts(timing))
    trajectories = getattr(backend, "num_trajectories", None)
    if trajectories is not None:
        parts.append(int(trajectories))
    return _hash(parts)


def fragment_fingerprint(fragment, backend, dtype=np.float64) -> str:
    """Content address of one fragment body under one backend's physics."""
    parts = [
        b"fragment",
        circuit_fingerprint(fragment.circuit),
        tuple(fragment.prep_local),
        tuple(fragment.cut_local),
        tuple(fragment.out_local),
        tuple(fragment.in_groups),
        tuple(
            (g, tuple(fragment.prep_local_by_group[g]))
            for g in sorted(fragment.prep_local_by_group)
        ),
        tuple(fragment.meas_groups),
        tuple(
            (g, tuple(fragment.cut_local_by_group[g]))
            for g in sorted(fragment.cut_local_by_group)
        ),
        backend_fingerprint(backend),
        np.dtype(dtype).str,
    ]
    return _hash(parts)


class FragmentStore:
    """Process-wide content-addressed store of warmed fragment caches.

    One canonical cache lives in the store per distinct
    :func:`fragment_fingerprint`; every consumer receives a
    :meth:`~repro.cutting.cache.TreeFragmentSimCache.rebind` view bound to
    its own fragment object (satisfying the backends' ``cache.fragment is
    frag`` identity check) that shares the canonical cache's memoised
    arrays — and, for noisy caches, its stats counters, so the
    transpile-once-per-body law is observable across requests.

    Thread-safe; intended to be shared by every request of a
    :class:`~repro.parallel.service.CutRunService`.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._caches: dict[str, object] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._caches)

    def get_or_create(self, fragment, backend, dtype=np.float64):
        """The shared cache for ``fragment`` under ``backend``, or ``None``.

        ``None`` means the backend builds no cache for this fragment type
        (e.g. :class:`~repro.backends.trajectory.TrajectoryBackend`) — the
        caller should execute uncached, and nothing is stored.
        """
        key = fragment_fingerprint(fragment, backend, dtype)
        with self._lock:
            cache = self._caches.get(key)
            if cache is not None:
                self.hits += 1
                return cache.rebind(fragment)
            cache = backend.make_tree_fragment_cache(fragment, dtype=dtype)
            if cache is None:
                return None
            self._caches[key] = cache
            self.misses += 1
            return cache  # freshly built around this very fragment object

    def pool_for(self, tree, backend, dtype=np.float64):
        """A :class:`TreeCachePool` for ``tree`` served from the store.

        Returns ``None`` when the backend caches none of the fragments
        (matching ``backend.make_tree_cache_pool`` semantics).
        """
        caches = [
            self.get_or_create(frag, backend, dtype) for frag in tree.fragments
        ]
        if any(cache is None for cache in caches):
            return None
        return TreeCachePool(tree, caches)

    def stats(self) -> dict:
        with self._lock:
            return {
                "bodies": len(self._caches),
                "hits": self.hits,
                "misses": self.misses,
            }
