"""Searched contraction plans over the fragment network.

The reconstruction of a fragment tree/DAG is a tensor-network
contraction: fragment ``i`` is a tensor with one *row axis per incident
cut group* (each group's axis appears on exactly two fragments — the
group's source and destination) plus a free output axis of width
``2^{n_out}``.  Contracting the whole network pairwise — repeatedly
merging two clusters of fragments over the group axes they share — yields
the joint output distribution; the *order* of the merges does not change
the result but changes the intermediate sizes, exactly as in
``opt_einsum``-style einsum path optimisation.

This module makes that order an explicit, serialisable
:class:`ContractionPlan`:

* :func:`fixed_plan` — the historical leaves-to-root order (reverse
  topological, children merged in ascending group order), the baseline
  the benchmarks compare against; on a pure tree it is the very sequence
  the pre-DAG kernel ran;
* :func:`greedy_plan` — repeatedly merge the adjacent cluster pair with
  the cheapest :func:`pairwise cost <merge_cost>` (deterministic
  tie-breaks), linear-ish and good on almost every real shape;
* :func:`dp_plan` — exact dynamic programming over subsets (optimal
  pairwise order, ``O(3^N)``; capped at :data:`DP_MAX_NODES` nodes);
* :func:`search_plan` with ``method="auto"`` — DP when the network is
  small enough, greedy otherwise.

Plans are built from a :class:`NetworkSpec` — a pure shape description
(nodes, ``(src, dst, rows)`` per group edge, per-node output widths) —
so planners can be unit-tested on hand-built worst cases without any
fragment data; :func:`network_spec_for_tree` derives the spec of a real
:class:`~repro.cutting.tree.FragmentTree` under given (possibly
golden-reduced) basis pools.  The cost model prices one merge as

    ``prod(result dims) × prod(shared group rows)``

i.e. the FLOP count of the ``tensordot`` the executor will issue —
``D_a · D_b · Π_{g open on either side} R_g``.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass

from repro.exceptions import ReconstructionError

__all__ = [
    "DP_MAX_NODES",
    "ContractionPlan",
    "NetworkSpec",
    "dp_plan",
    "fixed_plan",
    "greedy_plan",
    "merge_cost",
    "network_spec_for_tree",
    "plan_cost",
    "search_plan",
]

#: largest network the exact DP planner will take on (``O(3^N)`` subsets)
DP_MAX_NODES = 12


@dataclass(frozen=True)
class NetworkSpec:
    """Pure shape of a fragment network.

    ``edges[g] = (src, dst, rows)``: cut group ``g`` links fragment
    ``src`` to fragment ``dst`` with a basis-row axis of length ``rows``
    (the product of the group's per-cut pool sizes).  ``out_dims[i]`` is
    fragment ``i``'s free output width (``2^{n_out}``).
    """

    num_nodes: int
    edges: tuple[tuple[int, int, int], ...]
    out_dims: tuple[int, ...]

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ReconstructionError("a network needs at least one node")
        if len(self.out_dims) != self.num_nodes:
            raise ReconstructionError("out_dims length != num_nodes")
        for g, (s, d, r) in enumerate(self.edges):
            if not (0 <= s < self.num_nodes and 0 <= d < self.num_nodes):
                raise ReconstructionError(f"edge {g} endpoint out of range")
            if s == d:
                raise ReconstructionError(f"edge {g} is a self-loop")
            if r < 1:
                raise ReconstructionError(f"edge {g} has no basis rows")

    def incident(self, node: int) -> list[int]:
        """Group ids touching one node."""
        return [
            g for g, (s, d, _) in enumerate(self.edges) if node in (s, d)
        ]


@dataclass(frozen=True)
class ContractionPlan:
    """A pairwise merge sequence over fragment clusters.

    ``steps[t] = (a, b)``: merge the cluster currently containing
    fragment ``a`` with the one containing fragment ``b`` (they must be
    distinct clusters); the merged cluster is afterwards addressed by
    either member.  A valid plan for an ``N``-node connected network has
    exactly ``N - 1`` steps and ends with a single cluster.  ``cost`` is
    the planner's total predicted FLOPs under its spec (informational —
    re-derive with :func:`plan_cost` after reduction changes pool sizes).
    """

    num_nodes: int
    steps: tuple[tuple[int, int], ...]
    method: str = "explicit"
    cost: float = 0.0

    def validate(self, num_nodes: "int | None" = None) -> None:
        """Check the steps form a full pairwise merge of ``num_nodes``."""
        n = self.num_nodes if num_nodes is None else num_nodes
        if self.num_nodes != n:
            raise ReconstructionError(
                f"plan covers {self.num_nodes} fragments, network has {n}"
            )
        if len(self.steps) != n - 1:
            raise ReconstructionError(
                f"a {n}-node network needs {n - 1} merge steps, "
                f"plan has {len(self.steps)}"
            )
        cluster = list(range(n))

        def find(x: int) -> int:
            while cluster[x] != x:
                cluster[x] = cluster[cluster[x]]
                x = cluster[x]
            return x

        for a, b in self.steps:
            if not (0 <= a < n and 0 <= b < n):
                raise ReconstructionError(f"merge step ({a}, {b}) out of range")
            ra, rb = find(a), find(b)
            if ra == rb:
                raise ReconstructionError(
                    f"merge step ({a}, {b}) joins a cluster with itself"
                )
            cluster[rb] = ra

    # -- serialisation ------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "num_nodes": self.num_nodes,
            "steps": [list(s) for s in self.steps],
            "method": self.method,
            "cost": self.cost,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, payload: dict) -> "ContractionPlan":
        plan = cls(
            num_nodes=int(payload["num_nodes"]),
            steps=tuple(
                (int(a), int(b)) for a, b in payload["steps"]
            ),
            method=str(payload.get("method", "explicit")),
            cost=float(payload.get("cost", 0.0)),
        )
        plan.validate()
        return plan

    @classmethod
    def from_json(cls, text: str) -> "ContractionPlan":
        return cls.from_dict(json.loads(text))


def network_spec_for_tree(tree, bases=None) -> NetworkSpec:
    """The :class:`NetworkSpec` of a fragment tree/DAG under basis pools.

    ``bases[g][k]`` is cut ``k`` of group ``g``'s reconstruction pool
    (``None`` = full ``{I, X, Y, Z}`` everywhere), so golden neglect
    shrinks the edge row counts the planner prices — a heavily neglected
    group is a cheaper axis and the searched order adapts to it.
    """
    edges = []
    for g, k in enumerate(tree.group_sizes):
        rows = 1
        for c in range(k):
            rows *= 4 if bases is None else max(len(bases[g][c]), 1)
        edges.append((tree.group_src[g], tree.group_dst[g], rows))
    return NetworkSpec(
        num_nodes=tree.num_fragments,
        edges=tuple(edges),
        out_dims=tuple(1 << f.n_out for f in tree.fragments),
    )


# ---------------------------------------------------------------------------
# cost model
# ---------------------------------------------------------------------------


class _Cluster:
    """Mutable merge state: member set, open group ids, output width."""

    __slots__ = ("members", "open", "dim")

    def __init__(self, members: set, open_groups: set, dim: float):
        self.members = members
        self.open = open_groups
        self.dim = dim


def _initial_clusters(spec: NetworkSpec) -> dict[int, _Cluster]:
    return {
        i: _Cluster({i}, set(spec.incident(i)), float(spec.out_dims[i]))
        for i in range(spec.num_nodes)
    }


def merge_cost(spec: NetworkSpec, a: _Cluster, b: _Cluster) -> float:
    """Predicted FLOPs of merging two clusters.

    ``D_a · D_b · Π R_g`` over every group open on either side — the
    element count of the tensordot's implicit loop nest (shared axes are
    summed over, surviving axes materialise in the result).
    """
    cost = a.dim * b.dim
    for g in a.open | b.open:
        cost *= spec.edges[g][2]
    return cost


def _merge(a: _Cluster, b: _Cluster) -> _Cluster:
    return _Cluster(
        a.members | b.members, a.open ^ b.open, a.dim * b.dim
    )


def plan_cost(spec: NetworkSpec, plan: ContractionPlan) -> float:
    """Total predicted FLOPs of running ``plan`` on ``spec``."""
    plan.validate(spec.num_nodes)
    clusters = _initial_clusters(spec)
    rep = list(range(spec.num_nodes))

    def find(x: int) -> int:
        while rep[x] != x:
            rep[x] = rep[rep[x]]
            x = rep[x]
        return x

    total = 0.0
    for a, b in plan.steps:
        ra, rb = find(a), find(b)
        total += merge_cost(spec, clusters[ra], clusters[rb])
        clusters[ra] = _merge(clusters[ra], clusters.pop(rb))
        rep[rb] = ra
    return total


# ---------------------------------------------------------------------------
# planners
# ---------------------------------------------------------------------------


def fixed_plan(spec: NetworkSpec) -> ContractionPlan:
    """The historical fixed leaves-to-root order as an explicit plan.

    Nodes are visited in reverse index (= reverse topological) order and
    each node's exiting groups are merged in ascending group order — on a
    pure tree this is exactly the merge sequence of the pre-DAG
    contraction kernel; on a DAG it is the naive baseline the searched
    plans are benchmarked against.  Groups whose endpoints already share
    a cluster (the closing edge of a diamond) are skipped.
    """
    rep = list(range(spec.num_nodes))

    def find(x: int) -> int:
        while rep[x] != x:
            rep[x] = rep[rep[x]]
            x = rep[x]
        return x

    steps: list[tuple[int, int]] = []
    for i in reversed(range(spec.num_nodes)):
        for g, (s, d, _) in enumerate(spec.edges):
            if s != i:
                continue
            ra, rb = find(i), find(d)
            if ra == rb:
                continue
            steps.append((i, d))
            rep[rb] = ra
    plan = ContractionPlan(
        num_nodes=spec.num_nodes, steps=tuple(steps), method="fixed"
    )
    plan.validate(spec.num_nodes)
    return ContractionPlan(
        num_nodes=spec.num_nodes,
        steps=tuple(steps),
        method="fixed",
        cost=plan_cost(spec, plan),
    )


def greedy_plan(spec: NetworkSpec) -> ContractionPlan:
    """Cheapest-adjacent-pair greedy search.

    At every step the two clusters sharing at least one open group with
    the lowest :func:`merge_cost` are merged (ties broken by the lowest
    member indices, so the plan is deterministic).  Disconnected
    remainders — possible only on specs that are not a connected
    fragment graph — fall back to outer-product merges.
    """
    clusters = _initial_clusters(spec)
    steps: list[tuple[int, int]] = []
    while len(clusters) > 1:
        best = None
        for ra, rb in itertools.combinations(sorted(clusters), 2):
            a, b = clusters[ra], clusters[rb]
            if not (a.open & b.open):
                continue
            key = (merge_cost(spec, a, b), ra, rb)
            if best is None or key < best:
                best = key
        if best is None:
            ra, rb = sorted(clusters)[:2]
        else:
            _, ra, rb = best
        steps.append((min(clusters[ra].members), min(clusters[rb].members)))
        clusters[ra] = _merge(clusters[ra], clusters.pop(rb))
    plan = ContractionPlan(
        num_nodes=spec.num_nodes, steps=tuple(steps), method="greedy"
    )
    return ContractionPlan(
        num_nodes=spec.num_nodes,
        steps=tuple(steps),
        method="greedy",
        cost=plan_cost(spec, plan),
    )


def dp_plan(spec: NetworkSpec) -> ContractionPlan:
    """Optimal pairwise order by dynamic programming over subsets.

    ``best[S]`` is the cheapest cost of contracting the node subset ``S``
    into one cluster; every split of ``S`` into two non-empty halves is
    considered (``O(3^N)`` submask enumeration), so the result is the
    true optimum over pairwise merge orders.  Raises beyond
    :data:`DP_MAX_NODES` nodes — use :func:`search_plan` to fall back to
    greedy automatically.
    """
    n = spec.num_nodes
    if n > DP_MAX_NODES:
        raise ReconstructionError(
            f"dp planner is capped at {DP_MAX_NODES} fragments (got {n}); "
            'use search_plan(spec, method="auto")'
        )
    # open-group product and output-dim product per subset, O(2^N · G)
    dims = [0.0] * (1 << n)
    opens = [0] * (1 << n)  # bitmask over groups
    for S in range(1, 1 << n):
        low = S & -S
        i = low.bit_length() - 1
        rest = S ^ low
        dims[S] = spec.out_dims[i] * (dims[rest] if rest else 1.0)
        mask = 0
        for g, (s, d, _) in enumerate(spec.edges):
            inside = ((S >> s) & 1) + ((S >> d) & 1)
            if inside == 1:
                mask |= 1 << g
        opens[S] = mask

    def pair_cost(A: int, B: int) -> float:
        cost = dims[A] * dims[B]
        m = opens[A] | opens[B]
        g = 0
        while m:
            if m & 1:
                cost *= spec.edges[g][2]
            m >>= 1
            g += 1
        return cost

    best = [0.0] * (1 << n)
    split = [0] * (1 << n)
    full = (1 << n) - 1
    for S in range(1, full + 1):
        if S & (S - 1) == 0:  # singleton
            continue
        best[S] = float("inf")
        # canonical halves: A always contains S's lowest node
        low = S & -S
        A = (S - 1) & S
        while A:
            if A & low:
                B = S ^ A
                c = best[A] + best[B] + pair_cost(A, B)
                if c < best[S]:
                    best[S] = c
                    split[S] = A
            A = (A - 1) & S
    # unwind the split tree into a post-order pairwise step list
    steps: list[tuple[int, int]] = []

    def emit(S: int) -> int:
        if S & (S - 1) == 0:
            return S.bit_length() - 1
        A = split[S]
        ra = emit(A)
        rb = emit(S ^ A)
        steps.append((ra, rb))
        return min(ra, rb)

    emit(full)
    plan = ContractionPlan(
        num_nodes=n, steps=tuple(steps), method="dp", cost=best[full]
    )
    plan.validate(n)
    return plan


def search_plan(
    spec: NetworkSpec, method: str = "auto"
) -> ContractionPlan:
    """Front door: pick a contraction plan for one network shape.

    ``method``: ``"fixed"`` (historical order), ``"greedy"``, ``"dp"``
    (exact, ≤ :data:`DP_MAX_NODES` nodes) or ``"auto"`` — DP when small
    enough, greedy otherwise, never worse than the fixed order (the
    fixed plan is kept when it prices below the search result, so
    ``auto`` is a pure improvement).
    """
    if method == "fixed":
        return fixed_plan(spec)
    if method == "greedy":
        return greedy_plan(spec)
    if method == "dp":
        return dp_plan(spec)
    if method != "auto":
        raise ReconstructionError(
            f'contraction method must be "auto"/"fixed"/"greedy"/"dp", '
            f"got {method!r}"
        )
    searched = (
        dp_plan(spec)
        if spec.num_nodes <= DP_MAX_NODES
        else greedy_plan(spec)
    )
    baseline = fixed_plan(spec)
    return searched if searched.cost <= baseline.cost else baseline
