"""Bipartitioning a circuit along a cut specification.

Given a :class:`~repro.cutting.cut.CutSpec`, instructions are classified as
*downstream* (DAG descendants of any cut point) or *upstream* (everything
else).  The split is validated wire by wire: a wire crossing from upstream
to downstream must be cut exactly at its crossing point, and no wire may
flow downstream→upstream (that would need time travel — i.e. the cut set
does not induce a bipartition).

The result is a :class:`FragmentPair` holding two local circuits plus the
book-keeping needed to reassemble measurement records:

* which local qubits of the upstream fragment are *cut wires* (measured in
  tomography bases) vs *outputs* (measured in Z for the final distribution),
* which local qubits of the downstream fragment receive *preparation states*,
* the original-qubit labels of each fragment's outputs, so reconstruction
  can permute the joint distribution back to the uncut register order.

Untouched original qubits (no gates at all) are assigned to the downstream
fragment as idle wires.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.circuits.circuit import Circuit
from repro.circuits.dag import CircuitDag
from repro.cutting.cut import CutSpec
from repro.exceptions import CutError

__all__ = ["FragmentPair", "bipartition"]


@dataclass
class FragmentPair:
    """Everything reconstruction needs to know about one bipartition."""

    #: local upstream circuit (width = number of upstream original qubits)
    upstream: Circuit
    #: local downstream circuit
    downstream: Circuit
    #: number of cuts K (cut index k refers to CutSpec order)
    num_cuts: int
    #: upstream local qubit of cut k (measured in the tomography basis)
    up_cut_local: list[int]
    #: downstream local qubit of cut k (initialised to preparation states)
    down_cut_local: list[int]
    #: upstream local output qubits, ordered by original label
    up_out_local: list[int]
    #: original labels of the upstream outputs (same order as up_out_local)
    up_out_original: list[int]
    #: downstream local output qubits (all of them), ordered by original label
    down_out_local: list[int]
    #: original labels of the downstream outputs
    down_out_original: list[int]
    #: the cut spec this pair was built from
    spec: CutSpec = field(repr=False, default=None)  # type: ignore[assignment]
    #: instruction indices (in the parent circuit) that went downstream, in
    #: the order they appear in ``downstream`` — local instruction ``j`` of
    #: the downstream fragment is parent instruction ``down_node_indices[j]``.
    #: Consumed by :func:`repro.cutting.chain.partition_chain` to translate
    #: later cut specs into the remainder's coordinates.
    down_node_indices: tuple[int, ...] = field(repr=False, default=())

    # ------------------------------------------------------------------
    @property
    def n_up(self) -> int:
        return self.upstream.num_qubits

    @property
    def n_down(self) -> int:
        return self.downstream.num_qubits

    @property
    def n_up_out(self) -> int:
        return len(self.up_out_local)

    @property
    def n_down_out(self) -> int:
        return len(self.down_out_local)

    def output_order(self) -> list[int]:
        """Original qubit labels in (upstream outputs, downstream outputs) order."""
        return list(self.up_out_original) + list(self.down_out_original)

    def describe(self) -> str:
        return (
            f"FragmentPair(K={self.num_cuts}, upstream {self.n_up}q/"
            f"{len(self.upstream)} ops, downstream {self.n_down}q/"
            f"{len(self.downstream)} ops, outputs {self.n_up_out}+{self.n_down_out})"
        )


def _downstream_closure(
    circuit: Circuit, dag: CircuitDag, spec: CutSpec
) -> set[int]:
    """Smallest consistent downstream instruction set.

    Seeded with the DAG descendants of every cut point, then closed under
    two rules until a fixpoint:

    * *reachability*: anything depending on a downstream instruction is
      downstream;
    * *wire integrity*: a non-cut wire with any downstream instruction is
      downstream in its entirety (wires cannot straddle the bipartition
      unless they are cut).

    The second rule is what places gates that merely *share a wire* with the
    downstream block (but do not depend on the cut) into the downstream
    fragment — e.g. an early gate acting only on the downstream register.
    """
    cut_wires = {c.wire for c in spec.cuts}
    segs = {w: dag.wire_segments(w) for w in range(circuit.num_qubits)}
    down: set[int] = set()
    for cut in spec.cuts:
        down |= dag.downstream_of_cut(cut.wire, cut.gate_index)
    while True:
        # reachability closure: one pass over topological order
        for node in dag.topological_order():
            if node not in down and any(
                p in down for p in dag.predecessors(node)
            ):
                down.add(node)
        # wire-integrity closure
        added = False
        for w, seq in segs.items():
            if w in cut_wires:
                continue
            if any(i in down for i in seq):
                for i in seq:
                    if i not in down:
                        down.add(i)
                        added = True
        if not added:
            return down


def bipartition(circuit: Circuit, spec: CutSpec) -> FragmentPair:
    """Split ``circuit`` into upstream/downstream fragments along ``spec``."""
    spec.validate(circuit)
    dag = CircuitDag(circuit)

    # 1. downstream = closure of the cut points' dependents
    down_nodes = _downstream_closure(circuit, dag, spec)
    up_nodes = set(range(len(circuit))) - down_nodes

    # cut anchors must be upstream (otherwise the cuts are mutually cyclic)
    for cut in spec.cuts:
        if cut.gate_index in down_nodes:
            raise CutError(
                f"cut ({cut.wire},{cut.gate_index}) lies downstream of "
                "another cut; the cut set does not induce a bipartition"
            )

    # 2. per-wire validation: clean U-prefix / D-suffix split, crossing
    #    wires must be cut at the boundary.
    cut_by_wire = {c.wire: c for c in spec.cuts}
    for wire in range(circuit.num_qubits):
        segs = dag.wire_segments(wire)
        labels = ["U" if i in up_nodes else "D" for i in segs]
        # must be U...U D...D — scan once, remembering the boundary
        seen_d = False
        last_u = None
        for i, lab in zip(segs, labels):
            if lab == "D":
                seen_d = True
            else:
                if seen_d:
                    raise CutError(
                        f"wire {wire} flows downstream→upstream at "
                        f"instruction {i}; cut set invalid"
                    )
                last_u = i
        crosses = ("U" in labels) and ("D" in labels)
        if crosses:
            cut = cut_by_wire.get(wire)
            if cut is None:
                raise CutError(
                    f"wire {wire} crosses the bipartition but is not cut"
                )
            if cut.gate_index != last_u:
                raise CutError(
                    f"cut on wire {wire} sits at instruction "
                    f"{cut.gate_index}, but the bipartition boundary is "
                    f"after instruction {last_u}"
                )
        elif wire in cut_by_wire:
            raise CutError(
                f"wire {wire} is cut but does not cross the bipartition "
                "(nothing downstream on that wire)"
            )

    # 3. fragment qubit sets
    q_up = sorted({q for i in up_nodes for q in circuit[i].qubits})
    q_down_used = {q for i in down_nodes for q in circuit[i].qubits}
    touched = set(q_up) | q_down_used
    untouched = [q for q in range(circuit.num_qubits) if q not in touched]
    q_down = sorted(q_down_used | set(untouched))

    cut_wires = set(spec.wires)
    overlap = set(q_up) & set(q_down)
    if overlap != cut_wires:
        raise CutError(
            f"fragments share wires {sorted(overlap)} but cuts are on "
            f"{sorted(cut_wires)}"
        )

    up_map = {orig: loc for loc, orig in enumerate(q_up)}
    down_map = {orig: loc for loc, orig in enumerate(q_down)}

    upstream = Circuit(len(q_up), name=f"{circuit.name}_up")
    for i in sorted(up_nodes):
        upstream.append(circuit[i].remap(up_map))
    downstream = Circuit(len(q_down), name=f"{circuit.name}_down")
    for i in sorted(down_nodes):
        downstream.append(circuit[i].remap(down_map))

    up_out_original = [q for q in q_up if q not in cut_wires]
    down_out_original = list(q_down)

    return FragmentPair(
        upstream=upstream,
        downstream=downstream,
        num_cuts=spec.num_cuts,
        up_cut_local=[up_map[c.wire] for c in spec.cuts],
        down_cut_local=[down_map[c.wire] for c in spec.cuts],
        up_out_local=[up_map[q] for q in up_out_original],
        up_out_original=up_out_original,
        down_out_local=[down_map[q] for q in down_out_original],
        down_out_original=down_out_original,
        spec=spec,
        down_node_indices=tuple(sorted(down_nodes)),
    )
