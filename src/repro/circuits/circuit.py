"""The :class:`Circuit` container — the package's central IR.

A circuit is an ordered list of :class:`~repro.circuits.instruction.Instruction`
objects over ``num_qubits`` wires.  Builder methods (``h``, ``cx``, ``rx`` …)
append gates fluently; structural methods (``compose``, ``remap``,
``inverse``, ``slice``) produce new circuits.  Measurement is *not* part of
the IR — backends measure every qubit at the end of a run, which matches the
paper's experiments (full computational-basis sampling) and keeps the cutter
simple.  Mid-circuit measurement is not needed for wire cutting: the cut
protocol's measurements always terminate the upstream fragment.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Sequence


from repro.circuits.gates import Gate, get_gate_def
from repro.circuits.instruction import Instruction
from repro.exceptions import CircuitError

__all__ = ["Circuit"]


class Circuit:
    """An n-qubit gate list with fluent builder methods.

    Examples
    --------
    >>> qc = Circuit(2).h(0).cx(0, 1)
    >>> qc.depth()
    2
    >>> len(qc)
    2
    """

    __slots__ = ("num_qubits", "_instructions", "name")

    def __init__(
        self,
        num_qubits: int,
        instructions: Iterable[Instruction] = (),
        name: str = "circuit",
    ) -> None:
        if num_qubits <= 0:
            raise CircuitError(f"num_qubits must be positive, got {num_qubits}")
        self.num_qubits = int(num_qubits)
        self.name = name
        self._instructions: list[Instruction] = []
        for inst in instructions:
            self._check(inst)
            self._instructions.append(inst)

    # ------------------------------------------------------------------ core
    def _check(self, inst: Instruction) -> None:
        if any(q >= self.num_qubits for q in inst.qubits):
            raise CircuitError(
                f"instruction {inst} exceeds circuit width {self.num_qubits}"
            )

    def append(self, inst: Instruction) -> "Circuit":
        """Append an instruction in place and return self (chainable)."""
        self._check(inst)
        self._instructions.append(inst)
        return self

    def add_gate(
        self, name: str, qubits: Sequence[int], params: Sequence[float] = ()
    ) -> "Circuit":
        """Append a gate by name; validates arity/parameters eagerly."""
        get_gate_def(name)  # raises for unknown names
        return self.append(Instruction(Gate(name, tuple(params)), tuple(qubits)))

    @property
    def instructions(self) -> tuple[Instruction, ...]:
        return tuple(self._instructions)

    def __len__(self) -> int:
        return len(self._instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self._instructions)

    def __getitem__(self, i: int) -> Instruction:
        return self._instructions[i]

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Circuit)
            and self.num_qubits == other.num_qubits
            and self._instructions == other._instructions
        )

    # -------------------------------------------------------- builder methods
    def _g1(self, name: str, q: int, *params: float) -> "Circuit":
        return self.add_gate(name, (q,), params)

    def _g2(self, name: str, a: int, b: int, *params: float) -> "Circuit":
        return self.add_gate(name, (a, b), params)

    def id(self, q: int) -> "Circuit":
        return self._g1("id", q)

    def x(self, q: int) -> "Circuit":
        return self._g1("x", q)

    def y(self, q: int) -> "Circuit":
        return self._g1("y", q)

    def z(self, q: int) -> "Circuit":
        return self._g1("z", q)

    def h(self, q: int) -> "Circuit":
        return self._g1("h", q)

    def s(self, q: int) -> "Circuit":
        return self._g1("s", q)

    def sdg(self, q: int) -> "Circuit":
        return self._g1("sdg", q)

    def t(self, q: int) -> "Circuit":
        return self._g1("t", q)

    def tdg(self, q: int) -> "Circuit":
        return self._g1("tdg", q)

    def sx(self, q: int) -> "Circuit":
        return self._g1("sx", q)

    def sxdg(self, q: int) -> "Circuit":
        return self._g1("sxdg", q)

    def rx(self, theta: float, q: int) -> "Circuit":
        return self._g1("rx", q, theta)

    def ry(self, theta: float, q: int) -> "Circuit":
        return self._g1("ry", q, theta)

    def rz(self, theta: float, q: int) -> "Circuit":
        return self._g1("rz", q, theta)

    def p(self, theta: float, q: int) -> "Circuit":
        return self._g1("p", q, theta)

    def u3(self, theta: float, phi: float, lam: float, q: int) -> "Circuit":
        return self._g1("u3", q, theta, phi, lam)

    def cx(self, control: int, target: int) -> "Circuit":
        return self._g2("cx", control, target)

    def cy(self, control: int, target: int) -> "Circuit":
        return self._g2("cy", control, target)

    def cz(self, a: int, b: int) -> "Circuit":
        return self._g2("cz", a, b)

    def ch(self, control: int, target: int) -> "Circuit":
        return self._g2("ch", control, target)

    def swap(self, a: int, b: int) -> "Circuit":
        return self._g2("swap", a, b)

    def iswap(self, a: int, b: int) -> "Circuit":
        return self._g2("iswap", a, b)

    def crz(self, theta: float, control: int, target: int) -> "Circuit":
        return self._g2("crz", control, target, theta)

    def cp(self, theta: float, a: int, b: int) -> "Circuit":
        return self._g2("cp", a, b, theta)

    def rzz(self, theta: float, a: int, b: int) -> "Circuit":
        return self._g2("rzz", a, b, theta)

    def rxx(self, theta: float, a: int, b: int) -> "Circuit":
        return self._g2("rxx", a, b, theta)

    def ryy(self, theta: float, a: int, b: int) -> "Circuit":
        return self._g2("ryy", a, b, theta)

    def ccx(self, c1: int, c2: int, target: int) -> "Circuit":
        return self.add_gate("ccx", (c1, c2, target))

    def cswap(self, control: int, a: int, b: int) -> "Circuit":
        return self.add_gate("cswap", (control, a, b))

    def barrier(self, *qubits: int) -> "Circuit":
        """Accepted for API compatibility; carries no semantics here."""
        return self

    # ----------------------------------------------------------- structure
    def compose(
        self, other: "Circuit", qubits: Sequence[int] | None = None
    ) -> "Circuit":
        """Append ``other`` onto this circuit (returns a new circuit).

        ``qubits[i]`` gives the wire of ``self`` that ``other``'s qubit ``i``
        maps to; default is the identity mapping.
        """
        if qubits is None:
            if other.num_qubits > self.num_qubits:
                raise CircuitError("composed circuit is wider than target")
            qubits = list(range(other.num_qubits))
        if len(qubits) != other.num_qubits:
            raise CircuitError("qubit mapping length mismatch in compose")
        out = self.copy()
        for inst in other:
            out.append(inst.remap(list(qubits)))
        return out

    def remap(self, mapping: Sequence[int], num_qubits: int | None = None) -> "Circuit":
        """Relabel qubits: wire ``i`` becomes ``mapping[i]``."""
        n = num_qubits if num_qubits is not None else self.num_qubits
        out = Circuit(n, name=self.name)
        for inst in self:
            out.append(inst.remap(list(mapping)))
        return out

    def inverse(self) -> "Circuit":
        """Adjoint circuit (reversed order, inverted gates)."""
        out = Circuit(self.num_qubits, name=f"{self.name}_dg")
        for inst in reversed(self._instructions):
            out.append(inst.inverse())
        return out

    def copy(self) -> "Circuit":
        return Circuit(self.num_qubits, self._instructions, name=self.name)

    def slice(self, start: int, stop: int) -> "Circuit":
        """Sub-circuit of instructions ``start <= i < stop``."""
        return Circuit(self.num_qubits, self._instructions[start:stop], name=self.name)

    def filtered(self, predicate: Callable[[Instruction], bool]) -> "Circuit":
        """Circuit keeping only instructions for which ``predicate`` holds."""
        return Circuit(
            self.num_qubits,
            [i for i in self if predicate(i)],
            name=self.name,
        )

    # ----------------------------------------------------------- analysis
    def depth(self) -> int:
        """Critical-path length counting every gate as one time step."""
        level = [0] * self.num_qubits
        for inst in self:
            t = max(level[q] for q in inst.qubits) + 1
            for q in inst.qubits:
                level[q] = t
        return max(level, default=0)

    def count_ops(self) -> dict[str, int]:
        """Histogram of gate names."""
        out: dict[str, int] = {}
        for inst in self:
            out[inst.name] = out.get(inst.name, 0) + 1
        return out

    def num_two_qubit_gates(self) -> int:
        return sum(1 for i in self if len(i.qubits) == 2)

    def qubits_used(self) -> tuple[int, ...]:
        used = sorted({q for inst in self for q in inst.qubits})
        return tuple(used)

    def is_real(self) -> bool:
        """True iff every gate matrix is real (preserves real amplitudes).

        Real circuits acting on ``|0...0⟩`` produce real statevectors, which
        is the structural origin of Y-golden cutting points (DESIGN.md §1).
        """
        return all(get_gate_def(i.name).real for i in self)

    def parameters(self) -> list[float]:
        """All gate parameters in program order (for ansatz workflows)."""
        return [p for inst in self for p in inst.params]

    def __str__(self) -> str:
        body = "; ".join(str(i) for i in self._instructions[:8])
        more = "" if len(self) <= 8 else f"; ... ({len(self)} ops)"
        return f"Circuit<{self.name}, {self.num_qubits}q>[{body}{more}]"

    __repr__ = __str__
