"""Circuit intermediate representation: gates, circuits, DAGs, generators."""

from repro.circuits.gates import Gate, GateDef, get_gate_def, gate_matrix, GATE_REGISTRY
from repro.circuits.instruction import Instruction
from repro.circuits.circuit import Circuit
from repro.circuits.dag import CircuitDag
from repro.circuits.random import random_circuit, random_real_circuit, random_rx_layer
from repro.circuits.library import (
    ghz_circuit,
    hardware_efficient_ansatz,
    qaoa_maxcut_circuit,
    qft_circuit,
    real_amplitudes_ansatz,
)
from repro.circuits.qasm import circuit_from_qasm, circuit_to_qasm
from repro.circuits.visualize import draw

__all__ = [
    "Gate",
    "GateDef",
    "GATE_REGISTRY",
    "get_gate_def",
    "gate_matrix",
    "Instruction",
    "Circuit",
    "CircuitDag",
    "random_circuit",
    "random_real_circuit",
    "random_rx_layer",
    "ghz_circuit",
    "qft_circuit",
    "hardware_efficient_ansatz",
    "real_amplitudes_ansatz",
    "qaoa_maxcut_circuit",
    "circuit_from_qasm",
    "circuit_to_qasm",
    "draw",
]
