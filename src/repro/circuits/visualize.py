"""ASCII circuit drawer.

Renders a circuit as one text row per qubit with gates placed into ASAP
layers, e.g.::

    q0: ─H──●─────
    q1: ────X──●──
    q2: ───────X──

Multi-qubit gates draw ``●`` on controls and the gate mnemonic on targets
(for symmetric gates such as CZ/SWAP every endpoint gets the mnemonic).
Purely a debugging/reporting aid; no consumer parses this output.
"""

from __future__ import annotations

from repro.circuits.circuit import Circuit
from repro.circuits.dag import CircuitDag

__all__ = ["draw"]

_CONTROLLED = {"cx": "X", "cy": "Y", "cz": "Z", "ch": "H", "crz": "Rz", "cp": "P",
               "ccx": "X", "cswap": "x"}
_SYMMETRIC = {"cz", "cp", "swap", "iswap", "rzz", "rxx", "ryy"}


def _cell(inst, qubit_pos: int) -> str:
    name = inst.name
    if len(inst.qubits) == 1:
        label = name.upper() if not inst.params else f"{name.upper()}"
        return label
    if name in _SYMMETRIC:
        return "x" if name == "swap" else name.upper()
    # controlled family: all but the last listed qubit are controls
    if qubit_pos < len(inst.qubits) - 1:
        return "●"
    return _CONTROLLED.get(name, name.upper())


def draw(circuit: Circuit, max_width: int = 120) -> str:
    """Return the ASCII drawing of ``circuit``."""
    dag = CircuitDag(circuit)
    layers = dag.layers()
    n = circuit.num_qubits
    rows: list[list[str]] = [[] for _ in range(n)]
    for layer in layers:
        cells = [""] * n
        for idx in layer:
            inst = circuit[idx]
            for pos, q in enumerate(inst.qubits):
                cells[q] = _cell(inst, pos)
        width = max((len(c) for c in cells if c), default=1)
        for q in range(n):
            c = cells[q]
            pad = c.center(width, "─") if c else "─" * width
            rows[q].append(pad)
    lines = []
    for q in range(n):
        body = "──".join(rows[q]) if rows[q] else ""
        line = f"q{q}: ─{body}─"
        if len(line) > max_width:
            line = line[: max_width - 1] + "…"
        lines.append(line)
    return "\n".join(lines)
