"""A small circuit zoo used by examples, tests and benchmarks.

These are *workload* circuits — the kind the paper's introduction motivates
(variational ansätze, combinatorial optimisation) — used to exercise the
public cutting API on realistic structures beyond the paper's Fig. 2 family.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np
import networkx as nx

from repro.circuits.circuit import Circuit
from repro.utils.rng import as_generator

__all__ = [
    "ghz_circuit",
    "qft_circuit",
    "hardware_efficient_ansatz",
    "real_amplitudes_ansatz",
    "qaoa_maxcut_circuit",
]


def ghz_circuit(num_qubits: int) -> Circuit:
    """GHZ state preparation: H on qubit 0 followed by a CX ladder."""
    qc = Circuit(num_qubits, name=f"ghz{num_qubits}")
    qc.h(0)
    for q in range(num_qubits - 1):
        qc.cx(q, q + 1)
    return qc


def qft_circuit(num_qubits: int, swaps: bool = True) -> Circuit:
    """Quantum Fourier transform with controlled-phase ladder.

    In the package's little-endian convention the descending qubit order
    below (plus the terminal swap network) makes the unitary equal the DFT
    matrix ``U[j,k] = ω^{jk}/√N`` exactly (verified against the dense DFT
    in the tests).
    """
    qc = Circuit(num_qubits, name=f"qft{num_qubits}")
    for j in reversed(range(num_qubits)):
        qc.h(j)
        for k in reversed(range(j)):
            qc.cp(math.pi / (1 << (j - k)), k, j)
    if swaps:
        for j in range(num_qubits // 2):
            qc.swap(j, num_qubits - 1 - j)
    return qc


def hardware_efficient_ansatz(
    num_qubits: int,
    reps: int,
    params: Sequence[float] | None = None,
    seed: "int | np.random.Generator | None" = None,
    entangler: str = "cx",
) -> Circuit:
    """RY+RZ rotation layers alternating with a linear entangling ladder.

    ``params`` supplies the ``2 * num_qubits * (reps + 1)`` rotation angles;
    if omitted they are drawn uniformly from [0, 2π) with ``seed``.
    """
    need = 2 * num_qubits * (reps + 1)
    if params is None:
        rng = as_generator(seed)
        params = rng.uniform(0.0, 2.0 * math.pi, size=need).tolist()
    if len(params) != need:
        raise ValueError(f"expected {need} parameters, got {len(params)}")
    it = iter(params)
    qc = Circuit(num_qubits, name=f"hea{num_qubits}x{reps}")
    for rep in range(reps + 1):
        for q in range(num_qubits):
            qc.ry(next(it), q)
            qc.rz(next(it), q)
        if rep < reps:
            for q in range(num_qubits - 1):
                qc.add_gate(entangler, (q, q + 1))
    return qc


def real_amplitudes_ansatz(
    num_qubits: int,
    reps: int,
    params: Sequence[float] | None = None,
    seed: "int | np.random.Generator | None" = None,
) -> Circuit:
    """RY-only ansatz with CX entanglers — a *real* circuit.

    Widely used in QML; because every gate is real, any cut of this ansatz is
    Y-golden for diagonal observables (paper §IV singles out quantum machine
    learning circuits as the natural golden-cutting-point candidates).
    """
    need = num_qubits * (reps + 1)
    if params is None:
        rng = as_generator(seed)
        params = rng.uniform(0.0, 2.0 * math.pi, size=need).tolist()
    if len(params) != need:
        raise ValueError(f"expected {need} parameters, got {len(params)}")
    it = iter(params)
    qc = Circuit(num_qubits, name=f"real_amplitudes{num_qubits}x{reps}")
    for rep in range(reps + 1):
        for q in range(num_qubits):
            qc.ry(next(it), q)
        if rep < reps:
            for q in range(num_qubits - 1):
                qc.cx(q, q + 1)
    return qc


def qaoa_maxcut_circuit(
    graph: nx.Graph,
    gammas: Sequence[float],
    betas: Sequence[float],
) -> Circuit:
    """QAOA ansatz for MaxCut on ``graph`` (p = len(gammas) rounds).

    Cost layers are RZZ on edges; mixer layers are RX columns.  Nodes must be
    integers ``0..n-1``.
    """
    if len(gammas) != len(betas):
        raise ValueError("gammas and betas must have equal length")
    n = graph.number_of_nodes()
    if sorted(graph.nodes) != list(range(n)):
        raise ValueError("graph nodes must be 0..n-1")
    qc = Circuit(n, name=f"qaoa_maxcut_p{len(gammas)}")
    for q in range(n):
        qc.h(q)
    for gamma, beta in zip(gammas, betas):
        for u, v in graph.edges:
            qc.rzz(2.0 * gamma, u, v)
        for q in range(n):
            qc.rx(2.0 * beta, q)
    return qc
