"""Dependency DAG over circuit instructions.

Nodes are instruction indices; there is an edge ``i -> j`` when instruction
``j`` is the next consumer of a wire written by ``i``.  The DAG drives:

* the transpiler passes (finding runs of single-qubit gates),
* the **cutter** (deciding which instructions sit upstream/downstream of a
  wire cut — the central structural operation of the whole reproduction),
* layering for the ASCII drawer and depth computations.

Built on :mod:`networkx` so partition searches can reuse graph algorithms.
"""

from __future__ import annotations

from typing import Iterable

import networkx as nx

from repro.circuits.circuit import Circuit
from repro.exceptions import CutError

__all__ = ["CircuitDag"]


class CircuitDag:
    """Wire-dependency DAG of a :class:`Circuit`.

    Edges are labelled with the wire (qubit index) that induces the
    dependency; multiple wires between the same pair of instructions produce
    parallel labels collected in the edge attribute ``wires``.
    """

    def __init__(self, circuit: Circuit) -> None:
        self.circuit = circuit
        g = nx.DiGraph()
        g.add_nodes_from(range(len(circuit)))
        last_writer: dict[int, int] = {}
        for idx, inst in enumerate(circuit):
            for q in inst.qubits:
                if q in last_writer:
                    src = last_writer[q]
                    if g.has_edge(src, idx):
                        g[src][idx]["wires"].add(q)
                    else:
                        g.add_edge(src, idx, wires={q})
                last_writer[q] = idx
        self.graph = g
        self._last_writer = last_writer

    # ------------------------------------------------------------------
    def predecessors(self, node: int) -> Iterable[int]:
        return self.graph.predecessors(node)

    def successors(self, node: int) -> Iterable[int]:
        return self.graph.successors(node)

    def topological_order(self) -> list[int]:
        return list(nx.topological_sort(self.graph))

    def layers(self) -> list[list[int]]:
        """Greedy ASAP layering: each layer holds mutually independent ops."""
        level: dict[int, int] = {}
        for node in self.topological_order():
            preds = list(self.graph.predecessors(node))
            level[node] = 1 + max((level[p] for p in preds), default=-1)
        out: list[list[int]] = []
        for node, lv in sorted(level.items()):
            while len(out) <= lv:
                out.append([])
            out[lv].append(node)
        return out

    # ------------------------------------------------------------------
    def wire_segments(self, qubit: int) -> list[int]:
        """Instruction indices touching ``qubit`` in program order."""
        return [i for i, inst in enumerate(self.circuit) if qubit in inst.qubits]

    def downstream_of_cut(self, qubit: int, after_index: int) -> set[int]:
        """Instructions reachable from the cut on ``qubit`` after ``after_index``.

        The cut severs wire ``qubit`` *after* instruction ``after_index``
        (which must act on that qubit).  Returns the set of instruction
        indices that depend — directly through that wire or transitively —
        on the cut point.  These form the candidate downstream fragment.
        """
        if qubit not in self.circuit[after_index].qubits:
            raise CutError(
                f"instruction {after_index} does not act on qubit {qubit}"
            )
        segs = self.wire_segments(qubit)
        pos = segs.index(after_index)
        if pos == len(segs) - 1:
            raise CutError(
                f"cut after the final gate on qubit {qubit} severs nothing"
            )
        first_downstream = segs[pos + 1]
        reach = nx.descendants(self.graph, first_downstream)
        reach.add(first_downstream)
        return reach

    def upstream_closure(self, nodes: Iterable[int]) -> set[int]:
        """All ancestors of ``nodes`` (plus the nodes themselves)."""
        out: set[int] = set()
        for n in nodes:
            out |= nx.ancestors(self.graph, n)
            out.add(n)
        return out
