"""Dependency DAG over circuit instructions.

Nodes are instruction indices; there is an edge ``i -> j`` when instruction
``j`` is the next consumer of a wire written by ``i``.  The DAG drives:

* the transpiler passes (finding runs of single-qubit gates),
* the **cutter** (deciding which instructions sit upstream/downstream of a
  wire cut — the central structural operation of the whole reproduction),
* layering for the ASCII drawer and depth computations.

Built on :mod:`networkx` so partition searches can reuse graph algorithms.
"""

from __future__ import annotations

import itertools
from typing import Iterable

import networkx as nx

from repro.circuits.circuit import Circuit
from repro.exceptions import CutError

__all__ = ["CircuitDag"]


class CircuitDag:
    """Wire-dependency DAG of a :class:`Circuit`.

    Edges are labelled with the wire (qubit index) that induces the
    dependency; multiple wires between the same pair of instructions produce
    parallel labels collected in the edge attribute ``wires``.
    """

    def __init__(self, circuit: Circuit) -> None:
        self.circuit = circuit
        g = nx.DiGraph()
        g.add_nodes_from(range(len(circuit)))
        last_writer: dict[int, int] = {}
        for idx, inst in enumerate(circuit):
            for q in inst.qubits:
                if q in last_writer:
                    src = last_writer[q]
                    if g.has_edge(src, idx):
                        g[src][idx]["wires"].add(q)
                    else:
                        g.add_edge(src, idx, wires={q})
                last_writer[q] = idx
        self.graph = g
        self._last_writer = last_writer

    # ------------------------------------------------------------------
    def predecessors(self, node: int) -> Iterable[int]:
        return self.graph.predecessors(node)

    def successors(self, node: int) -> Iterable[int]:
        return self.graph.successors(node)

    def topological_order(self) -> list[int]:
        return list(nx.topological_sort(self.graph))

    def layers(self) -> list[list[int]]:
        """Greedy ASAP layering: each layer holds mutually independent ops."""
        level: dict[int, int] = {}
        for node in self.topological_order():
            preds = list(self.graph.predecessors(node))
            level[node] = 1 + max((level[p] for p in preds), default=-1)
        out: list[list[int]] = []
        for node, lv in sorted(level.items()):
            while len(out) <= lv:
                out.append([])
            out[lv].append(node)
        return out

    # ------------------------------------------------------------------
    def wire_segments(self, qubit: int) -> list[int]:
        """Instruction indices touching ``qubit`` in program order."""
        return [i for i, inst in enumerate(self.circuit) if qubit in inst.qubits]

    def downstream_of_cut(self, qubit: int, after_index: int) -> set[int]:
        """Instructions reachable from the cut on ``qubit`` after ``after_index``.

        The cut severs wire ``qubit`` *after* instruction ``after_index``
        (which must act on that qubit).  Returns the set of instruction
        indices that depend — directly through that wire or transitively —
        on the cut point.  These form the candidate downstream fragment.
        """
        if qubit not in self.circuit[after_index].qubits:
            raise CutError(
                f"instruction {after_index} does not act on qubit {qubit}"
            )
        segs = self.wire_segments(qubit)
        pos = segs.index(after_index)
        if pos == len(segs) - 1:
            raise CutError(
                f"cut after the final gate on qubit {qubit} severs nothing"
            )
        first_downstream = segs[pos + 1]
        reach = nx.descendants(self.graph, first_downstream)
        reach.add(first_downstream)
        return reach

    def upstream_closure(self, nodes: Iterable[int]) -> set[int]:
        """All ancestors of ``nodes`` (plus the nodes themselves)."""
        out: set[int] = set()
        for n in nodes:
            out |= nx.ancestors(self.graph, n)
            out.add(n)
        return out

    # ------------------------------------------------------------------
    # cut-search helpers
    # ------------------------------------------------------------------
    def wire_cut_positions(self) -> list[tuple[int, int]]:
        """Every valid ``(wire, gate_index)`` cut position of the circuit.

        A wire can be severed after any instruction touching it except the
        last (cutting after the final gate severs nothing), so this is the
        candidate pool the cut searchers enumerate.  Returned as plain
        tuples, not :class:`~repro.cutting.cut.CutPoint`, to keep this
        module free of cutting imports.
        """
        out: list[tuple[int, int]] = []
        for wire in range(self.circuit.num_qubits):
            segs = self.wire_segments(wire)
            out.extend((wire, g) for g in segs[:-1])
        return out

    def qubit_interaction_graph(self) -> nx.Graph:
        """Weighted qubit-coupling graph of the circuit.

        Nodes are qubits; an edge ``(a, b)`` carries ``weight`` = the number
        of multi-qubit instructions acting on both ``a`` and ``b``.  A
        balanced min-cut of this graph is a natural seed for cut-point
        search: cheap edges are wires few gates entangle.
        """
        g = nx.Graph()
        g.add_nodes_from(range(self.circuit.num_qubits))
        for inst in self.circuit:
            for a, b in itertools.combinations(sorted(set(inst.qubits)), 2):
                weight = g.get_edge_data(a, b, default={}).get("weight", 0)
                g.add_edge(a, b, weight=weight + 1)
        return g

    def balanced_qubit_bisection(
        self, seed: "int | None" = None
    ) -> tuple[set[int], set[int]]:
        """Balanced min-cut-style bisection of the qubit set.

        Kernighan–Lin on :meth:`qubit_interaction_graph` — the two halves
        are equal-sized (±1) and the total weight of gates crossing them is
        locally minimal.  ``seed`` makes the heuristic's tie-breaks
        deterministic.
        """
        from networkx.algorithms.community import kernighan_lin_bisection

        graph = self.qubit_interaction_graph()
        a, b = kernighan_lin_bisection(graph, weight="weight", seed=seed)
        return set(a), set(b)
