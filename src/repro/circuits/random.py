"""Random-circuit generators.

The paper's workloads (§III) are built from "collections of RX gates with the
rotation angle chosen uniformly at random from [0, 6.28], as well as random
gates generated using the ``random_circuit()`` function in Qiskit".  We
reproduce both:

* :func:`random_rx_layer` — the RX column,
* :func:`random_circuit` — a Qiskit-style random circuit drawing uniformly
  from 1- and 2-qubit gate families with random angles,
* :func:`random_real_circuit` — the *real-gate* restriction (RY/X/Z/H/CX/CZ)
  that keeps statevectors real; this is the family that provably produces
  Y-golden cutting points and is used for the upstream blocks of the golden
  ansatz (DESIGN.md §1).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.circuits.circuit import Circuit
from repro.utils.rng import as_generator

__all__ = ["random_circuit", "random_real_circuit", "random_rx_layer"]

#: Gate families mirroring Qiskit's ``random_circuit`` defaults (those we support).
_ONE_QUBIT = ("x", "y", "z", "h", "s", "sdg", "t", "tdg", "rx", "ry", "rz", "p")
_TWO_QUBIT = ("cx", "cz", "cy", "swap", "crz", "cp", "rzz", "rxx", "ryy")

#: Real-matrix families (preserve real amplitudes).
_ONE_QUBIT_REAL = ("x", "z", "h", "ry")
_TWO_QUBIT_REAL = ("cx", "cz", "ch", "swap")

_PARAMETRIC = {"rx", "ry", "rz", "p", "crz", "cp", "rzz", "rxx", "ryy"}


def _angle(rng: np.random.Generator) -> float:
    """Rotation angle drawn uniformly from [0, 6.28] — the paper's interval."""
    return float(rng.uniform(0.0, 6.28))


def random_circuit(
    num_qubits: int,
    depth: int,
    seed: "int | np.random.Generator | None" = None,
    two_qubit_prob: float = 0.5,
    gate_pool_1q: Sequence[str] = _ONE_QUBIT,
    gate_pool_2q: Sequence[str] = _TWO_QUBIT,
) -> Circuit:
    """Qiskit-style random circuit.

    Each of the ``depth`` layers greedily fills the wires with randomly
    chosen 1- or 2-qubit gates on randomly chosen disjoint qubits, so every
    qubit is acted on once per layer (matching ``qiskit.circuit.random.
    random_circuit`` semantics closely enough for workload purposes).
    """
    rng = as_generator(seed)
    qc = Circuit(num_qubits, name=f"random[{num_qubits}x{depth}]")
    for _ in range(depth):
        free = list(rng.permutation(num_qubits))
        while free:
            if len(free) >= 2 and rng.random() < two_qubit_prob:
                a, b = free.pop(), free.pop()
                name = str(rng.choice(gate_pool_2q))
                params = (_angle(rng),) if name in _PARAMETRIC else ()
                qc.add_gate(name, (int(a), int(b)), params)
            else:
                q = free.pop()
                name = str(rng.choice(gate_pool_1q))
                params = (_angle(rng),) if name in _PARAMETRIC else ()
                qc.add_gate(name, (int(q),), params)
    return qc


def random_real_circuit(
    num_qubits: int,
    depth: int,
    seed: "int | np.random.Generator | None" = None,
    two_qubit_prob: float = 0.5,
) -> Circuit:
    """Random circuit restricted to real-matrix gates.

    Acting on ``|0..0⟩`` (or any real state) the output statevector stays
    real, so any wire cut of the result is Y-golden for diagonal observables.
    """
    qc = random_circuit(
        num_qubits,
        depth,
        seed=seed,
        two_qubit_prob=two_qubit_prob,
        gate_pool_1q=_ONE_QUBIT_REAL,
        gate_pool_2q=_TWO_QUBIT_REAL,
    )
    qc.name = f"random_real[{num_qubits}x{depth}]"
    return qc


def random_rx_layer(
    num_qubits: int,
    seed: "int | np.random.Generator | None" = None,
    qubits: Sequence[int] | None = None,
) -> Circuit:
    """One column of RX(θ) gates, θ ~ U[0, 6.28] — paper Fig. 2's front layer."""
    rng = as_generator(seed)
    qc = Circuit(num_qubits, name="rx_layer")
    targets = range(num_qubits) if qubits is None else qubits
    for q in targets:
        qc.rx(_angle(rng), q)
    return qc
