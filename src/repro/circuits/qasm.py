"""Plain-text circuit serialisation (an OpenQASM-2-like dialect).

The format is line-oriented::

    qubits 5
    h 0
    rx(1.5707963) 2
    cx 0 1

Parameters are comma-separated inside parentheses.  Round-trips exactly
(``circuit_from_qasm(circuit_to_qasm(qc)) == qc`` up to float printing
precision); used to persist experiment workloads next to their results so a
benchmark run is fully reconstructable.
"""

from __future__ import annotations

import re

from repro.circuits.circuit import Circuit
from repro.exceptions import CircuitError

__all__ = ["circuit_to_qasm", "circuit_from_qasm"]

_LINE = re.compile(
    r"^(?P<name>[a-z][a-z0-9]*)"
    r"(?:\((?P<params>[^)]*)\))?"
    r"\s+(?P<qubits>\d+(?:\s+\d+)*)$"
)


def circuit_to_qasm(circuit: Circuit) -> str:
    """Serialise a circuit to the text dialect (always ends with newline)."""
    lines = [f"qubits {circuit.num_qubits}"]
    for inst in circuit:
        if inst.params:
            ps = ",".join(repr(p) for p in inst.params)
            head = f"{inst.name}({ps})"
        else:
            head = inst.name
        lines.append(f"{head} {' '.join(map(str, inst.qubits))}")
    return "\n".join(lines) + "\n"


def circuit_from_qasm(text: str) -> Circuit:
    """Parse the text dialect back into a :class:`Circuit`."""
    lines = [ln.strip() for ln in text.splitlines()]
    lines = [ln for ln in lines if ln and not ln.startswith("#")]
    if not lines or not lines[0].startswith("qubits "):
        raise CircuitError("serialised circuit must start with 'qubits N'")
    try:
        n = int(lines[0].split()[1])
    except (IndexError, ValueError) as exc:
        raise CircuitError(f"bad header {lines[0]!r}") from exc
    qc = Circuit(n)
    for ln in lines[1:]:
        m = _LINE.match(ln)
        if not m:
            raise CircuitError(f"cannot parse line {ln!r}")
        params = ()
        if m.group("params"):
            params = tuple(float(x) for x in m.group("params").split(","))
        qubits = tuple(int(x) for x in m.group("qubits").split())
        qc.add_gate(m.group("name"), qubits, params)
    return qc
