"""Gate registry: names, arities, parameter counts and matrix builders.

The registry is the single source of truth for gate semantics.  Each entry is
a :class:`GateDef` that knows how to produce the unitary matrix given the
gate's parameters.  Matrices follow the little-endian convention: for a
two-qubit gate applied to ``(control, target) = (q0, q1)`` the matrix acts on
the 4-dimensional space with basis index ``bit(q0) + 2*bit(q1)`` — i.e. the
*first listed qubit is the least-significant index*.

The set covers everything the paper's workloads need (RX columns, random
circuits drawn from a broad gate family, basis rotations for tomography) plus
the native set of the fake IBM-like hardware (``rz``, ``sx``, ``x``, ``cx``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.config import COMPLEX_DTYPE
from repro.exceptions import GateError

__all__ = ["Gate", "GateDef", "GATE_REGISTRY", "get_gate_def", "gate_matrix"]


@lru_cache(maxsize=4096)
def _cached_matrix(name: str, params: tuple[float, ...]) -> np.ndarray:
    """Shared read-only matrix for a (name, params) pair.

    Gate matrices are requested once per instruction per simulation; caching
    them turns repeated variant runs into dictionary lookups.  The arrays are
    frozen so the cache cannot be corrupted through a returned reference.
    """
    mat = get_gate_def(name).matrix(params)
    mat.setflags(write=False)
    return mat


@dataclass(frozen=True)
class GateDef:
    """Static definition of a gate type.

    Attributes
    ----------
    name:
        Canonical lowercase mnemonic (``"cx"``, ``"rx"``, ...).
    num_qubits:
        Gate arity.
    num_params:
        Number of real parameters (rotation angles).
    matrix_fn:
        Callable mapping a parameter tuple to the unitary.
    self_inverse:
        Whether ``G² = I`` (used by the cancellation transpiler pass).
    real:
        Whether the matrix is real for all parameter values.  Real gates
        preserve real statevectors, which is exactly the structural property
        that creates Y-golden cutting points (DESIGN.md §1).
    diagonal:
        Whether the matrix is diagonal for all parameter values.
    """

    name: str
    num_qubits: int
    num_params: int
    matrix_fn: Callable[[tuple[float, ...]], np.ndarray]
    self_inverse: bool = False
    real: bool = False
    diagonal: bool = False

    def matrix(self, params: Sequence[float] = ()) -> np.ndarray:
        if len(params) != self.num_params:
            raise GateError(
                f"gate {self.name!r} takes {self.num_params} parameter(s), "
                f"got {len(params)}"
            )
        mat = self.matrix_fn(tuple(float(p) for p in params))
        return np.asarray(mat, dtype=COMPLEX_DTYPE)


@dataclass(frozen=True)
class Gate:
    """A gate *instance*: a definition bound to concrete parameters."""

    name: str
    params: tuple[float, ...] = ()

    @property
    def definition(self) -> GateDef:
        return get_gate_def(self.name)

    @property
    def num_qubits(self) -> int:
        return self.definition.num_qubits

    def matrix(self) -> np.ndarray:
        """Unitary of this gate instance (cached, read-only)."""
        return _cached_matrix(self.name, self.params)

    def inverse(self) -> "Gate":
        """Gate instance implementing the adjoint."""
        d = self.definition
        if d.self_inverse and not d.num_params:
            return self
        if self.name == "u3":
            theta, phi, lam = self.params
            return Gate("u3", (-theta, -lam, -phi))
        if d.num_params:
            return Gate(self.name, tuple(-p for p in self.params))
        inverse_names = {"s": "sdg", "sdg": "s", "t": "tdg", "tdg": "t",
                         "sx": "sxdg", "sxdg": "sx"}
        if self.name in inverse_names:
            return Gate(inverse_names[self.name])
        raise GateError(f"no inverse rule for gate {self.name!r}")

    def __str__(self) -> str:
        if self.params:
            inner = ",".join(f"{p:.6g}" for p in self.params)
            return f"{self.name}({inner})"
        return self.name


# --------------------------------------------------------------------------
# matrix builders
# --------------------------------------------------------------------------

_SQ2 = 1.0 / math.sqrt(2.0)


def _m(rows) -> np.ndarray:
    return np.array(rows, dtype=COMPLEX_DTYPE)


def _fixed(rows) -> Callable[[tuple[float, ...]], np.ndarray]:
    mat = _m(rows)
    mat.setflags(write=False)
    return lambda _p: mat


def _rx(p: tuple[float, ...]) -> np.ndarray:
    c, s = math.cos(p[0] / 2), math.sin(p[0] / 2)
    return _m([[c, -1j * s], [-1j * s, c]])


def _ry(p: tuple[float, ...]) -> np.ndarray:
    c, s = math.cos(p[0] / 2), math.sin(p[0] / 2)
    return _m([[c, -s], [s, c]])


def _rz(p: tuple[float, ...]) -> np.ndarray:
    e = np.exp(-0.5j * p[0])
    return _m([[e, 0], [0, e.conjugate()]])


def _phase(p: tuple[float, ...]) -> np.ndarray:
    return _m([[1, 0], [0, np.exp(1j * p[0])]])


def _u3(p: tuple[float, ...]) -> np.ndarray:
    theta, phi, lam = p
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return _m(
        [
            [c, -np.exp(1j * lam) * s],
            [np.exp(1j * phi) * s, np.exp(1j * (phi + lam)) * c],
        ]
    )


def _crz(p: tuple[float, ...]) -> np.ndarray:
    e = np.exp(-0.5j * p[0])
    # control = qubit a (LSB), target = qubit b; basis order 00,10,01,11
    return _m([[1, 0, 0, 0], [0, e, 0, 0], [0, 0, 1, 0], [0, 0, 0, e.conjugate()]])


def _cphase(p: tuple[float, ...]) -> np.ndarray:
    return _m([[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 1, 0], [0, 0, 0, np.exp(1j * p[0])]])


def _rzz(p: tuple[float, ...]) -> np.ndarray:
    e = np.exp(-0.5j * p[0])
    return np.diag([e, e.conjugate(), e.conjugate(), e]).astype(COMPLEX_DTYPE)


def _rxx(p: tuple[float, ...]) -> np.ndarray:
    c, s = math.cos(p[0] / 2), math.sin(p[0] / 2)
    out = np.eye(4, dtype=COMPLEX_DTYPE) * c
    anti = -1j * s
    out[0, 3] = out[3, 0] = out[1, 2] = out[2, 1] = anti
    return out


def _ryy(p: tuple[float, ...]) -> np.ndarray:
    c, s = math.cos(p[0] / 2), math.sin(p[0] / 2)
    out = np.eye(4, dtype=COMPLEX_DTYPE) * c
    out[0, 3] = out[3, 0] = 1j * s
    out[1, 2] = out[2, 1] = -1j * s
    return out


# Two-qubit fixed gates.  Convention: first listed qubit is index LSB.
# CX(control=a, target=b): flips b when a==1.
#   basis order (bit_a, bit_b): 00 -> 00, 10 -> 11, 01 -> 01, 11 -> 10
_CX = [[1, 0, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0], [0, 1, 0, 0]]
_CZ = [[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 1, 0], [0, 0, 0, -1]]
_SWAP = [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]]
_ISWAP = [[1, 0, 0, 0], [0, 0, 1j, 0], [0, 1j, 0, 0], [0, 0, 0, 1]]
_CY = [[1, 0, 0, 0], [0, 0, 0, -1j], [0, 0, 1, 0], [0, 1j, 0, 0]]
_CH = [
    [1, 0, 0, 0],
    [0, _SQ2, 0, _SQ2],
    [0, 0, 1, 0],
    [0, _SQ2, 0, -_SQ2],
]

# CCX(control a, control b, target c) with index = bit_a + 2 bit_b + 4 bit_c.
_CCX = np.eye(8)
_CCX[[3, 7], :] = 0.0
_CCX[3, 7] = _CCX[7, 3] = 1.0
_CSWAP = np.eye(8)
# swap b<->c when a==1: indices with bit_a=1: 1,3,5,7 -> swap (bit_b,bit_c)
_CSWAP[[3, 5], :] = 0.0
_CSWAP[3, 5] = _CSWAP[5, 3] = 1.0


def _register() -> dict[str, GateDef]:
    reg: dict[str, GateDef] = {}

    def add(name, nq, npar, fn, **kw):
        reg[name] = GateDef(name, nq, npar, fn, **kw)

    add("id", 1, 0, _fixed([[1, 0], [0, 1]]), self_inverse=True, real=True, diagonal=True)
    add("x", 1, 0, _fixed([[0, 1], [1, 0]]), self_inverse=True, real=True)
    add("y", 1, 0, _fixed([[0, -1j], [1j, 0]]), self_inverse=True)
    add("z", 1, 0, _fixed([[1, 0], [0, -1]]), self_inverse=True, real=True, diagonal=True)
    add("h", 1, 0, _fixed([[_SQ2, _SQ2], [_SQ2, -_SQ2]]), self_inverse=True, real=True)
    add("s", 1, 0, _fixed([[1, 0], [0, 1j]]), diagonal=True)
    add("sdg", 1, 0, _fixed([[1, 0], [0, -1j]]), diagonal=True)
    add("t", 1, 0, _fixed([[1, 0], [0, np.exp(0.25j * math.pi)]]), diagonal=True)
    add("tdg", 1, 0, _fixed([[1, 0], [0, np.exp(-0.25j * math.pi)]]), diagonal=True)
    add("sx", 1, 0, _fixed([[0.5 + 0.5j, 0.5 - 0.5j], [0.5 - 0.5j, 0.5 + 0.5j]]))
    add("sxdg", 1, 0, _fixed([[0.5 - 0.5j, 0.5 + 0.5j], [0.5 + 0.5j, 0.5 - 0.5j]]))
    add("rx", 1, 1, _rx)
    add("ry", 1, 1, _ry, real=True)
    add("rz", 1, 1, _rz, diagonal=True)
    add("p", 1, 1, _phase, diagonal=True)
    add("u3", 1, 3, _u3)

    add("cx", 2, 0, _fixed(_CX), self_inverse=True, real=True)
    add("cy", 2, 0, _fixed(_CY), self_inverse=True)
    add("cz", 2, 0, _fixed(_CZ), self_inverse=True, real=True, diagonal=True)
    add("ch", 2, 0, _fixed(_CH), self_inverse=True, real=True)
    add("swap", 2, 0, _fixed(_SWAP), self_inverse=True, real=True)
    add("iswap", 2, 0, _fixed(_ISWAP))
    add("crz", 2, 1, _crz, diagonal=True)
    add("cp", 2, 1, _cphase, diagonal=True)
    add("rzz", 2, 1, _rzz, diagonal=True)
    add("rxx", 2, 1, _rxx)
    add("ryy", 2, 1, _ryy)

    add("ccx", 3, 0, _fixed(_CCX), self_inverse=True, real=True)
    add("cswap", 3, 0, _fixed(_CSWAP), self_inverse=True, real=True)
    return reg


#: name -> GateDef for every supported gate.
GATE_REGISTRY: Mapping[str, GateDef] = _register()


def get_gate_def(name: str) -> GateDef:
    """Look up a gate definition by canonical name."""
    try:
        return GATE_REGISTRY[name]
    except KeyError:
        raise GateError(
            f"unknown gate {name!r}; known gates: {sorted(GATE_REGISTRY)}"
        ) from None


def gate_matrix(name: str, params: Sequence[float] = ()) -> np.ndarray:
    """Convenience: matrix of a named gate with parameters (cached, read-only)."""
    return _cached_matrix(name, tuple(float(p) for p in params))
