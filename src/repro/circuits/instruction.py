"""A single circuit operation: a gate bound to qubit positions.

Instructions are immutable; circuits are lists of instructions plus a qubit
count.  Keeping the instruction type tiny and hashable lets the DAG, the
transpiler and the cutter treat circuits as plain data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.circuits.gates import Gate
from repro.exceptions import CircuitError

__all__ = ["Instruction"]


@dataclass(frozen=True)
class Instruction:
    """A gate applied to an ordered tuple of qubits.

    ``qubits`` ordering matters: for ``cx`` the first entry is the control.
    A special pseudo-gate name ``"barrier"`` (zero-qubit semantics on any
    subset) is accepted for alignment/annotation; simulators skip it.
    """

    gate: Gate
    qubits: tuple[int, ...]

    def __post_init__(self) -> None:
        if self.gate.name != "barrier":
            expected = self.gate.num_qubits
            if len(self.qubits) != expected:
                raise CircuitError(
                    f"gate {self.gate.name!r} expects {expected} qubits, "
                    f"got {self.qubits}"
                )
        if len(set(self.qubits)) != len(self.qubits):
            raise CircuitError(f"duplicate qubit in {self.qubits}")
        if any(q < 0 for q in self.qubits):
            raise CircuitError(f"negative qubit index in {self.qubits}")

    @property
    def name(self) -> str:
        return self.gate.name

    @property
    def params(self) -> tuple[float, ...]:
        return self.gate.params

    def remap(self, mapping: Sequence[int] | dict[int, int]) -> "Instruction":
        """Return the same operation on relabelled qubits."""
        if isinstance(mapping, dict):
            qubits = tuple(mapping[q] for q in self.qubits)
        else:
            qubits = tuple(mapping[q] for q in self.qubits)
        return Instruction(self.gate, qubits)

    def inverse(self) -> "Instruction":
        return Instruction(self.gate.inverse(), self.qubits)

    def __str__(self) -> str:
        qs = ",".join(map(str, self.qubits))
        return f"{self.gate} q[{qs}]"
