"""Device noise models: which channel fires after which gate on which qubits.

A :class:`NoiseModel` is a collection of :class:`GateNoise` rules plus an
optional per-qubit readout error.  The fake-hardware backend walks a
transpiled circuit instruction by instruction, applies the ideal unitary,
then every matching noise rule.  This mirrors how Qiskit Aer noise models
are built from device calibration data, at the granularity the paper's
experiments need (gate-dependent depolarizing/damping + readout error).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.exceptions import NoiseError
from repro.linalg.channels import KrausChannel
from repro.noise.readout import ReadoutError

__all__ = ["GateNoise", "NoiseModel"]


@dataclass(frozen=True)
class GateNoise:
    """One noise rule.

    Attributes
    ----------
    gate_names:
        Gate mnemonics the rule applies to; ``("*",)`` matches every gate of
        the right arity.
    channel:
        The Kraus channel to apply after the gate.  Its arity must be 1 (the
        rule then fires on *each* qubit the gate touches) or equal to the
        gate arity (fires once on the gate's qubit tuple).
    qubits:
        Restrict the rule to gates acting on exactly these qubits
        (``None`` = any qubits).
    """

    gate_names: tuple[str, ...]
    channel: KrausChannel
    qubits: tuple[int, ...] | None = None

    def matches(self, name: str, qubits: Sequence[int]) -> bool:
        if "*" not in self.gate_names and name not in self.gate_names:
            return False
        if self.qubits is not None and tuple(qubits) != self.qubits:
            return False
        return True


@dataclass
class NoiseModel:
    """A full device error model.

    Examples
    --------
    >>> from repro.noise import depolarizing, NoiseModel
    >>> nm = NoiseModel()
    >>> nm.add_gate_noise(["cx"], depolarizing(0.01))
    """

    rules: list[GateNoise] = field(default_factory=list)
    readout: dict[int, ReadoutError] = field(default_factory=dict)

    def add_gate_noise(
        self,
        gate_names: Iterable[str],
        channel: KrausChannel,
        qubits: Sequence[int] | None = None,
    ) -> "NoiseModel":
        self.rules.append(
            GateNoise(
                tuple(gate_names),
                channel,
                tuple(qubits) if qubits is not None else None,
            )
        )
        return self

    def add_readout_error(self, qubit: int, error: ReadoutError) -> "NoiseModel":
        self.readout[qubit] = error
        return self

    def channels_for(self, name: str, qubits: Sequence[int]):
        """Yield ``(channel, qubit_tuple)`` pairs to apply after a gate.

        Single-qubit channels attached to multi-qubit gates fire once per
        touched qubit; channel arity equal to the gate arity fires once.
        """
        for rule in self.rules:
            if not rule.matches(name, qubits):
                continue
            ch = rule.channel
            if ch.num_qubits == len(qubits):
                yield ch, tuple(qubits)
            elif ch.num_qubits == 1:
                for q in qubits:
                    yield ch, (q,)
            else:
                raise NoiseError(
                    f"channel arity {ch.num_qubits} incompatible with gate "
                    f"{name!r} on {qubits}"
                )

    def is_trivial(self) -> bool:
        return not self.rules and not self.readout
