"""Standard Kraus channels used by the fake-hardware noise models.

All constructors return :class:`~repro.linalg.channels.KrausChannel`.  The
parameterisations follow the textbook conventions (Nielsen & Chuang §8.3);
probabilities are validated to lie in the physical range.
"""

from __future__ import annotations

import math

import numpy as np

from repro.config import COMPLEX_DTYPE
from repro.exceptions import NoiseError
from repro.linalg.channels import KrausChannel
from repro.linalg.paulis import PAULI_MATRICES

__all__ = [
    "depolarizing",
    "two_qubit_depolarizing",
    "amplitude_damping",
    "phase_damping",
    "bit_flip",
    "phase_flip",
    "pauli_channel",
    "thermal_relaxation",
]


def _check_prob(p: float, name: str, upper: float = 1.0) -> None:
    if not 0.0 <= p <= upper:
        raise NoiseError(f"{name} probability {p} outside [0, {upper}]")


def depolarizing(p: float) -> KrausChannel:
    """Single-qubit depolarizing channel: ρ → (1−p)ρ + p·I/2.

    Kraus form: ``sqrt(1-3p/4) I, sqrt(p/4) X, sqrt(p/4) Y, sqrt(p/4) Z``.
    """
    _check_prob(p, "depolarizing", upper=4.0 / 3.0)
    ops = [
        math.sqrt(1.0 - 3.0 * p / 4.0) * PAULI_MATRICES["I"],
        math.sqrt(p / 4.0) * PAULI_MATRICES["X"],
        math.sqrt(p / 4.0) * PAULI_MATRICES["Y"],
        math.sqrt(p / 4.0) * PAULI_MATRICES["Z"],
    ]
    return KrausChannel(tuple(ops), name=f"depolarizing({p:g})")


def two_qubit_depolarizing(p: float) -> KrausChannel:
    """Two-qubit depolarizing channel over the 16-element Pauli basis."""
    _check_prob(p, "two_qubit_depolarizing", upper=16.0 / 15.0)
    ops = []
    labels = ["I", "X", "Y", "Z"]
    for a in labels:
        for b in labels:
            # qubit order: first listed qubit = LSB -> kron(second, first)
            mat = np.kron(PAULI_MATRICES[b], PAULI_MATRICES[a])
            if a == b == "I":
                w = math.sqrt(1.0 - 15.0 * p / 16.0)
            else:
                w = math.sqrt(p / 16.0)
            ops.append(w * mat)
    return KrausChannel(tuple(ops), name=f"depolarizing2({p:g})")


def amplitude_damping(gamma: float) -> KrausChannel:
    """T1 decay: |1⟩ relaxes to |0⟩ with probability gamma."""
    _check_prob(gamma, "amplitude damping")
    k0 = np.array([[1, 0], [0, math.sqrt(1 - gamma)]], dtype=COMPLEX_DTYPE)
    k1 = np.array([[0, math.sqrt(gamma)], [0, 0]], dtype=COMPLEX_DTYPE)
    return KrausChannel((k0, k1), name=f"amp_damp({gamma:g})")


def phase_damping(lam: float) -> KrausChannel:
    """Pure dephasing (T2 without relaxation)."""
    _check_prob(lam, "phase damping")
    k0 = np.array([[1, 0], [0, math.sqrt(1 - lam)]], dtype=COMPLEX_DTYPE)
    k1 = np.array([[0, 0], [0, math.sqrt(lam)]], dtype=COMPLEX_DTYPE)
    return KrausChannel((k0, k1), name=f"phase_damp({lam:g})")


def bit_flip(p: float) -> KrausChannel:
    """X error with probability p."""
    return pauli_channel(px=p, py=0.0, pz=0.0)


def phase_flip(p: float) -> KrausChannel:
    """Z error with probability p."""
    return pauli_channel(px=0.0, py=0.0, pz=p)


def pauli_channel(px: float, py: float, pz: float) -> KrausChannel:
    """General single-qubit Pauli channel."""
    for v, nm in ((px, "px"), (py, "py"), (pz, "pz")):
        _check_prob(v, nm)
    p_id = 1.0 - px - py - pz
    if p_id < -1e-12:
        raise NoiseError(f"Pauli channel probabilities sum to {px+py+pz} > 1")
    p_id = max(p_id, 0.0)
    ops = [math.sqrt(p_id) * PAULI_MATRICES["I"]]
    for p, lbl in ((px, "X"), (py, "Y"), (pz, "Z")):
        if p > 0:
            ops.append(math.sqrt(p) * PAULI_MATRICES[lbl])
    return KrausChannel(tuple(ops), name=f"pauli({px:g},{py:g},{pz:g})")


def thermal_relaxation(t1: float, t2: float, gate_time: float) -> KrausChannel:
    """Thermal relaxation for a gate of duration ``gate_time``.

    Composes amplitude damping with rate ``1 - exp(-t/T1)`` and pure
    dephasing chosen so the total coherence decay matches ``exp(-t/T2)``
    (requires the physical constraint ``T2 ≤ 2·T1``).
    """
    if t1 <= 0 or t2 <= 0 or gate_time < 0:
        raise NoiseError("T1, T2 must be positive and gate_time non-negative")
    if t2 > 2 * t1 + 1e-12:
        raise NoiseError(f"unphysical T2={t2} > 2*T1={2*t1}")
    gamma = 1.0 - math.exp(-gate_time / t1)
    # total off-diagonal decay target: exp(-t/T2); amplitude damping alone
    # contributes sqrt(1-gamma) = exp(-t/2T1).
    target = math.exp(-gate_time / t2)
    from_ad = math.sqrt(1.0 - gamma)
    residual = target / from_ad if from_ad > 0 else 0.0
    residual = min(max(residual, 0.0), 1.0)
    lam = 1.0 - residual**2
    chan = amplitude_damping(gamma).compose(phase_damping(lam))
    return KrausChannel(chan.operators, name=f"thermal(t1={t1:g},t2={t2:g},t={gate_time:g})")
