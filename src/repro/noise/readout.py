"""Classical readout (measurement assignment) error.

Readout error on superconducting devices is well modelled by a per-qubit
confusion matrix: ``P(measured m | true t)``.  Applying it to a probability
vector is a linear map — one 2x2 matrix contraction per qubit on the
probability *tensor*, vectorised exactly like a gate application but in
probability space.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import NoiseError

__all__ = ["ReadoutError", "apply_readout_error"]


@dataclass(frozen=True)
class ReadoutError:
    """Per-qubit confusion matrix.

    Parameters
    ----------
    p01:
        Probability of reading 1 when the true state is 0.
    p10:
        Probability of reading 0 when the true state is 1 (typically larger
        on real devices because of T1 decay during readout).
    """

    p01: float
    p10: float

    def __post_init__(self) -> None:
        for v, nm in ((self.p01, "p01"), (self.p10, "p10")):
            if not 0.0 <= v <= 1.0:
                raise NoiseError(f"{nm}={v} outside [0,1]")

    def matrix(self) -> np.ndarray:
        """Column-stochastic confusion matrix ``M[measured, true]``."""
        return np.array(
            [[1.0 - self.p01, self.p10], [self.p01, 1.0 - self.p10]],
            dtype=np.float64,
        )


def apply_readout_error(
    probs: np.ndarray, errors: dict[int, ReadoutError], num_qubits: int
) -> np.ndarray:
    """Push a probability vector through per-qubit confusion matrices.

    ``errors`` maps qubit index to its :class:`ReadoutError`; qubits absent
    from the dict are read out perfectly.
    """
    if probs.size != 1 << num_qubits:
        raise NoiseError("probability vector length mismatch")
    if not errors:
        return probs
    n = num_qubits
    rev = tuple(range(n - 1, -1, -1))
    tensor = probs.reshape((2,) * n).transpose(rev)  # axis i = qubit i
    for q, err in errors.items():
        if not 0 <= q < n:
            raise NoiseError(f"readout error on unknown qubit {q}")
        m = err.matrix()
        tensor = np.moveaxis(
            np.tensordot(m, tensor, axes=([1], [q])), 0, q
        )
    out = tensor.transpose(rev).reshape(-1)
    # guard against accumulated negatives from float error
    np.clip(out, 0.0, None, out=out)
    s = out.sum()
    if s <= 0:
        raise NoiseError("readout error annihilated the distribution")
    return out / s
