"""Noise channels, device noise models and readout error."""

from repro.noise.kraus import (
    amplitude_damping,
    bit_flip,
    depolarizing,
    pauli_channel,
    phase_damping,
    phase_flip,
    thermal_relaxation,
    two_qubit_depolarizing,
)
from repro.noise.model import GateNoise, NoiseModel
from repro.noise.readout import ReadoutError, apply_readout_error
from repro.noise.mitigation import ReadoutMitigator, calibrate_readout

__all__ = [
    "amplitude_damping",
    "bit_flip",
    "depolarizing",
    "pauli_channel",
    "phase_damping",
    "phase_flip",
    "thermal_relaxation",
    "two_qubit_depolarizing",
    "GateNoise",
    "NoiseModel",
    "ReadoutError",
    "apply_readout_error",
    "ReadoutMitigator",
    "calibrate_readout",
]
