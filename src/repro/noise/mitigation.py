"""Measurement-error mitigation by confusion-matrix inversion.

The paper's Fig. 3 compares raw hardware distributions against noiseless
ground truth; production pipelines almost always insert readout mitigation
first (and the paper's ref [21] studies cutting *as* a mitigation method).
This module provides the standard tensored mitigator:

* calibrate per-qubit confusion matrices ``M_q = P(measured | true)`` from
  the two computational basis-state preparation circuits (or take them from
  a known :class:`~repro.noise.readout.ReadoutError`),
* apply the regularised inverse to an observed distribution, then project
  back onto the probability simplex (plain inversion can leave negative
  entries).

Because the correction is a tensor product of 2×2 inverses it costs
``O(n · 2^n)`` — same shape as a gate application, vectorised the same way.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.circuits.circuit import Circuit
from repro.exceptions import NoiseError
from repro.noise.readout import ReadoutError
from repro.utils.rng import as_generator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (noise <- backends)
    from repro.backends.base import Backend

__all__ = ["ReadoutMitigator", "calibrate_readout"]


class ReadoutMitigator:
    """Tensored readout-error corrector for ``num_qubits`` qubits."""

    def __init__(self, matrices: dict[int, np.ndarray], num_qubits: int) -> None:
        self.num_qubits = num_qubits
        self.matrices: dict[int, np.ndarray] = {}
        self.inverses: dict[int, np.ndarray] = {}
        for q, m in matrices.items():
            if not 0 <= q < num_qubits:
                raise NoiseError(f"qubit {q} outside register of {num_qubits}")
            m = np.asarray(m, dtype=np.float64)
            if m.shape != (2, 2) or np.any(m < -1e-9):
                raise NoiseError(f"invalid confusion matrix for qubit {q}")
            if not np.allclose(m.sum(axis=0), 1.0, atol=1e-6):
                raise NoiseError(
                    f"confusion matrix for qubit {q} is not column-stochastic"
                )
            det = float(np.linalg.det(m))
            if abs(det) < 1e-6:
                raise NoiseError(
                    f"confusion matrix for qubit {q} is singular — readout "
                    "error too strong to invert"
                )
            self.matrices[q] = m
            self.inverses[q] = np.linalg.inv(m)

    @classmethod
    def from_readout_errors(
        cls, errors: dict[int, ReadoutError], num_qubits: int
    ) -> "ReadoutMitigator":
        """Build from known error parameters (no calibration circuits)."""
        return cls({q: e.matrix() for q, e in errors.items()}, num_qubits)

    # ------------------------------------------------------------------
    def apply(self, probs: np.ndarray, project: bool = True) -> np.ndarray:
        """Correct an observed distribution.

        ``project=True`` (default) maps the quasi-distribution produced by
        the inversion back onto the simplex; ``False`` returns it raw for
        diagnostics.
        """
        if probs.size != 1 << self.num_qubits:
            raise NoiseError("distribution length mismatch")
        n = self.num_qubits
        rev = tuple(range(n - 1, -1, -1))
        tensor = probs.reshape((2,) * n).transpose(rev)  # axis i = qubit i
        for q, inv in self.inverses.items():
            tensor = np.moveaxis(
                np.tensordot(inv, tensor, axes=([1], [q])), 0, q
            )
        out = tensor.transpose(rev).reshape(-1)
        if project:
            # local import: cutting depends on backends depends on noise
            from repro.cutting.reconstruction import project_to_simplex

            return project_to_simplex(out)
        return np.ascontiguousarray(out)


def calibrate_readout(
    backend: "Backend",
    num_qubits: int,
    shots: int = 8192,
    seed: "int | np.random.Generator | None" = None,
) -> ReadoutMitigator:
    """Estimate per-qubit confusion matrices from two calibration circuits.

    Prepares ``|0...0⟩`` and ``|1...1⟩``, reads each qubit's marginal error
    rates, and assembles the tensored mitigator.  (The tensored scheme
    assumes uncorrelated readout error — exactly the model the fake devices
    implement; on correlated hardware a full 2^n calibration would be
    needed.)
    """
    rng = as_generator(seed)
    zeros = Circuit(num_qubits, name="cal_zeros")
    for q in range(num_qubits):
        zeros.id(q)
    ones = Circuit(num_qubits, name="cal_ones")
    for q in range(num_qubits):
        ones.x(q)
    res0, res1 = backend.run([zeros, ones], shots=shots, seed=rng)
    p0 = res0.probabilities()
    p1 = res1.probabilities()
    idx = np.arange(1 << num_qubits)
    matrices = {}
    for q in range(num_qubits):
        bit = (idx >> q) & 1
        p01 = float(p0[bit == 1].sum())  # read 1 when prepared 0
        p10 = float(p1[bit == 0].sum())  # read 0 when prepared 1
        matrices[q] = np.array([[1 - p01, p10], [p01, 1 - p10]])
    return ReadoutMitigator(matrices, num_qubits)
