"""Device execution-time model.

IBM-era cloud devices spend wall time in three places per job:

* fixed per-job overhead (compilation, loading, queue handoff),
* per-shot execution: circuit duration (gate times × depth) + readout + reset,
* result marshalling (roughly constant).

The paper's Fig. 5 reports ~18.84 s for 9 fragment-variant jobs × 50 trials
of 1000 shots and ~12.61 s for the golden variant's 6 jobs — i.e. wall time
scales with (jobs × shots) plus overheads.  :class:`DeviceTimingModel`
reproduces exactly that structure; the defaults are calibrated so the
standard/golden *ratio* lands where the paper's does, with absolute numbers
in the same ballpark (see ``benchmarks/bench_fig5_hardware.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuits.circuit import Circuit

__all__ = ["DeviceTimingModel"]


@dataclass(frozen=True)
class DeviceTimingModel:
    """Linear wall-time model for one job of ``shots`` shots.

    Defaults approximate a 2022-era IBM superconducting device:
    1q gate 35 ns, 2q gate 300 ns, readout 4 µs, reset 250 µs (passive),
    per-job overhead 1.8 s (compile + load + marshalling).  With 1000-shot
    jobs this puts one job at ~2.05 s, so the paper's 9-job standard run
    models at ~18.5 s and the 6-job golden run at ~12.3 s — matching the
    reported 18.84 s / 12.61 s to within a few percent, with the 2/3 ratio
    exact by construction.
    """

    gate_time_1q: float = 35e-9
    gate_time_2q: float = 300e-9
    readout_time: float = 4e-6
    reset_time: float = 250e-6
    job_overhead: float = 1.8

    def circuit_duration(self, circuit: Circuit) -> float:
        """Critical-path duration of one shot of ``circuit`` (seconds)."""
        level = [0.0] * circuit.num_qubits
        for inst in circuit:
            if inst.name == "barrier":
                continue
            dt = self.gate_time_2q if len(inst.qubits) >= 2 else self.gate_time_1q
            t = max(level[q] for q in inst.qubits) + dt
            for q in inst.qubits:
                level[q] = t
        return max(level, default=0.0)

    def job_seconds(self, circuit: Circuit, shots: int) -> float:
        """Total modelled wall time for one job."""
        per_shot = self.circuit_duration(circuit) + self.readout_time + self.reset_time
        return self.job_overhead + shots * per_shot
