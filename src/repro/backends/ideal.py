"""Ideal (noiseless) sampling backend — the Aer-simulator stand-in.

Simulates the exact statevector, then draws multinomial samples.  An
``exact=True`` mode returns the true distribution as "counts" scaled to the
shot budget, handy for separating algorithmic error from shot noise in
tests and ablations.
"""

from __future__ import annotations

import numpy as np

from repro.backends.base import Backend, ExecutionResult
from repro.circuits.circuit import Circuit
from repro.sim.sampler import probs_to_counts, sample_counts
from repro.sim.statevector import simulate_statevector

__all__ = ["IdealBackend"]


class IdealBackend(Backend):
    """Noiseless statevector sampler.

    Parameters
    ----------
    exact:
        When True, skip sampling and report expected counts (rounded
        ``p * shots``) — an infinite-shot idealisation.
    """

    name = "ideal"

    def __init__(self, exact: bool = False, max_qubits: int | None = 24) -> None:
        super().__init__()
        self.exact = exact
        self.max_qubits = max_qubits

    def _execute(
        self, circuit: Circuit, shots: int, rng: np.random.Generator
    ) -> ExecutionResult:
        probs = simulate_statevector(circuit).probabilities()
        if self.exact:
            counts = probs_to_counts(probs, shots, circuit.num_qubits)
        else:
            counts = sample_counts(probs, shots, seed=rng, num_qubits=circuit.num_qubits)
        return ExecutionResult(
            counts=counts,
            shots=shots,
            num_qubits=circuit.num_qubits,
            seconds=0.0,
            metadata={"backend": self.name, "exact": self.exact},
        )

    def exact_probabilities(self, circuit: Circuit) -> np.ndarray:
        """Ground-truth distribution (used for Fig. 3's reference)."""
        return simulate_statevector(circuit).probabilities()
