"""Ideal (noiseless) sampling backend — the Aer-simulator stand-in.

Simulates the exact statevector, then draws multinomial samples.  An
``exact=True`` mode returns the true distribution as "counts" scaled to the
shot budget, handy for separating algorithmic error from shot noise in
tests and ablations.

Fragment variants take a fast path: :meth:`IdealBackend.run_variants` pulls
every variant's exact distribution from a shared
:class:`~repro.cutting.cache.FragmentSimCache` (one body simulation plus
``2^K`` batched basis initialisations instead of ``3^K + 6^K`` full circuit
runs) and only then samples — the per-variant RNG streams are spawned
exactly as the circuit-level path would, so results stay reproducible.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.backends.base import Backend, ExecutionResult
from repro.circuits.circuit import Circuit
from repro.exceptions import BackendError
from repro.sim.sampler import probs_to_counts, sample_counts
from repro.sim.statevector import simulate_statevector
from repro.utils.rng import spawn_rngs

__all__ = ["IdealBackend"]


class IdealBackend(Backend):
    """Noiseless statevector sampler.

    Parameters
    ----------
    exact:
        When True, skip sampling and report expected counts (rounded
        ``p * shots``) — an infinite-shot idealisation.
    """

    name = "ideal"

    def __init__(self, exact: bool = False, max_qubits: int | None = 24) -> None:
        super().__init__()
        self.exact = exact
        self.max_qubits = max_qubits

    def _execute(
        self, circuit: Circuit, shots: int, rng: np.random.Generator
    ) -> ExecutionResult:
        probs = simulate_statevector(circuit).probabilities()
        return self._result_from_probs(probs, circuit.num_qubits, shots, rng)

    def _result_from_probs(
        self, probs: np.ndarray, num_qubits: int, shots: int, rng
    ) -> ExecutionResult:
        if self.exact:
            counts = probs_to_counts(probs, shots, num_qubits)
        else:
            counts = sample_counts(probs, shots, seed=rng, num_qubits=num_qubits)
        return ExecutionResult(
            counts=counts,
            shots=shots,
            num_qubits=num_qubits,
            seconds=0.0,
            metadata={"backend": self.name, "exact": self.exact},
        )

    def make_variant_cache(self, pair):
        """Fragment variants are served from a :class:`FragmentSimCache`."""
        from repro.cutting.cache import FragmentSimCache

        return FragmentSimCache(pair)

    def run_variants(
        self,
        pair,
        settings: Sequence[tuple[str, ...]],
        inits: Sequence[tuple[str, ...]],
        shots: int = 1000,
        seed: "int | np.random.Generator | None" = None,
        cache=None,
    ) -> list[ExecutionResult]:
        """Serve all fragment variants from one shared simulation cache."""
        from repro.cutting.cache import FragmentSimCache

        if shots <= 0:
            raise BackendError(f"shots must be positive, got {shots}")
        for width in (pair.n_up if settings else 0, pair.n_down if inits else 0):
            if self.max_qubits is not None and width > self.max_qubits:
                raise BackendError(
                    f"{self.name}: circuit width {width} exceeds "
                    f"device size {self.max_qubits}"
                )
        # None, a foreign cache flavour, or a cache built for another pair
        if not isinstance(cache, FragmentSimCache) or cache.pair is not pair:
            cache = FragmentSimCache(pair)
        rngs = spawn_rngs(seed, len(settings) + len(inits))
        if inits:
            cache.downstream_probabilities_batch(inits)  # one GEMM for all
        out = [
            self._result_from_probs(
                cache.upstream_probabilities(s), pair.n_up, shots, rng
            )
            for s, rng in zip(settings, rngs)
        ]
        out += [
            self._result_from_probs(
                cache.downstream_probabilities(i), pair.n_down, shots, rng
            )
            for i, rng in zip(inits, rngs[len(settings) :])
        ]
        return out

    def make_tree_fragment_cache(self, fragment, dtype=np.float64):
        """A :class:`TreeFragmentSimCache` bound to ``fragment``.

        ``dtype`` sets the precision of the cached probability records
        (float32 is the memory-halving fast path; simulation itself stays
        complex — see :class:`~repro.cutting.cache.TreeFragmentSimCache`).
        The pool assembled by the base ``make_tree_cache_pool`` holds one
        of these per tree fragment.
        """
        from repro.cutting.cache import TreeFragmentSimCache

        return TreeFragmentSimCache(fragment, dtype=dtype)

    def restore_tree_fragment_cache(self, fragment, arrays, meta):
        """Rebuild a warmed :class:`TreeFragmentSimCache` in a pool worker."""
        from repro.cutting.cache import TreeFragmentSimCache

        return TreeFragmentSimCache.from_arrays(fragment, arrays, meta)

    def run_tree_variants(
        self,
        tree,
        index: int,
        combos,
        shots: int = 1000,
        seed: "int | np.random.Generator | None" = None,
        cache=None,
    ) -> list[ExecutionResult]:
        """Serve one tree fragment's variants from its shared cache."""
        from repro.cutting.cache import TreeFragmentSimCache

        if shots <= 0:
            raise BackendError(f"shots must be positive, got {shots}")
        frag = tree.fragments[index]
        if self.max_qubits is not None and frag.num_qubits > self.max_qubits:
            raise BackendError(
                f"{self.name}: circuit width {frag.num_qubits} exceeds "
                f"device size {self.max_qubits}"
            )
        if (
            not isinstance(cache, TreeFragmentSimCache)
            or cache.fragment is not frag
        ):
            cache = TreeFragmentSimCache(frag)
        rngs = spawn_rngs(seed, len(combos))
        return [
            self._result_from_probs(
                cache.probabilities(a, s), frag.num_qubits, shots, rng
            )
            for (a, s), rng in zip(combos, rngs)
        ]

    def run_chain_variants(
        self,
        chain,
        index: int,
        combos,
        shots: int = 1000,
        seed: "int | np.random.Generator | None" = None,
        cache=None,
    ) -> list[ExecutionResult]:
        """Chain alias of :meth:`run_tree_variants` (a linear tree)."""
        return self.run_tree_variants(
            chain, index, combos, shots=shots, seed=seed, cache=cache
        )

    def exact_probabilities(self, circuit: Circuit) -> np.ndarray:
        """Ground-truth distribution (used for Fig. 3's reference)."""
        return simulate_statevector(circuit).probabilities()
