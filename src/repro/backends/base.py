"""Backend abstraction.

A backend turns circuits into measurement counts.  The interface is
deliberately tiny — ``run(circuits, shots, seed) -> [ExecutionResult]`` —
because that is all wire cutting needs: the cutter submits fragment
variants, the reconstructor consumes counts.

Backends also expose :attr:`Backend.clock`, a
:class:`~repro.utils.timing.VirtualClock` accumulating *modelled* execution
time.  The ideal backend charges nothing; fake hardware charges per-job
overhead and per-shot latency (DESIGN.md §2), which is how the paper's
Fig. 5 wall-time comparison is reproduced deterministically.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.circuits.circuit import Circuit
from repro.exceptions import BackendError, CorruptedResultError
from repro.sim.sampler import counts_to_probs
from repro.utils.timing import VirtualClock

__all__ = ["Backend", "ExecutionResult", "validate_execution_result"]


@dataclass
class ExecutionResult:
    """Counts (and metadata) from running one circuit.

    Attributes
    ----------
    counts:
        Display-bitstring → occurrences (qubit 0 leftmost).
    shots:
        Total number of shots (equals ``sum(counts.values())``).
    num_qubits:
        Width of the measured register.
    seconds:
        Modelled device seconds charged for this job.
    """

    counts: dict[str, int]
    shots: int
    num_qubits: int
    seconds: float = 0.0
    metadata: dict = field(default_factory=dict)

    def probabilities(self) -> np.ndarray:
        """Empirical distribution as a little-endian vector."""
        return counts_to_probs(self.counts, self.num_qubits)

    def validate(
        self, expected_shots: int | None = None, expected_qubits: int | None = None
    ) -> "ExecutionResult":
        """Boundary-check the payload; see :func:`validate_execution_result`."""
        validate_execution_result(self, expected_shots, expected_qubits)
        return self


def validate_execution_result(
    result: ExecutionResult,
    expected_shots: int | None = None,
    expected_qubits: int | None = None,
) -> None:
    """Validate a counts payload at the backend boundary.

    Raises :class:`~repro.exceptions.CorruptedResultError` (retryable —
    re-execution re-samples) if any counts key is not an ``n``-bit string
    over ``{0,1}``, any count is negative or non-integer, the shot total
    does not match ``result.shots``, or the declared shots/width disagree
    with what the caller requested.  Exact-mode results (metadata
    ``exact=True``) round ``p * shots`` per outcome, so their totals may
    legitimately miss ``shots`` by rounding; only the total check is
    skipped for them.
    """
    n = result.num_qubits
    if expected_qubits is not None and n != expected_qubits:
        raise CorruptedResultError(
            f"result width {n} != requested width {expected_qubits}"
        )
    if expected_shots is not None and result.shots != expected_shots:
        raise CorruptedResultError(
            f"result declares {result.shots} shots, {expected_shots} requested"
        )
    total = 0
    for key, count in result.counts.items():
        if len(key) != n or any(ch not in "01" for ch in key):
            raise CorruptedResultError(
                f"counts key {key!r} is not a {n}-bit string"
            )
        if not isinstance(count, (int, np.integer)) or count < 0:
            raise CorruptedResultError(
                f"count {count!r} for key {key!r} is negative or non-integer"
            )
        total += int(count)
    if not result.metadata.get("exact") and total != result.shots:
        raise CorruptedResultError(
            f"counts total {total} != declared shots {result.shots}"
        )


class Backend(abc.ABC):
    """Abstract circuit-execution service."""

    #: human-readable backend name
    name: str = "backend"
    #: maximum circuit width accepted (None = unlimited)
    max_qubits: int | None = None

    def __init__(self) -> None:
        self.clock = VirtualClock()

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _execute(
        self, circuit: Circuit, shots: int, rng: np.random.Generator
    ) -> ExecutionResult:
        """Run one circuit; subclasses implement the physics."""

    def run(
        self,
        circuits: "Circuit | Sequence[Circuit]",
        shots: int = 1000,
        seed: "int | np.random.Generator | None" = None,
    ) -> list[ExecutionResult]:
        """Execute one or more circuits, returning one result per circuit.

        Each circuit gets an independent RNG child stream derived from
        ``seed``, so results are order-independent and reproducible.
        """
        from repro.utils.rng import spawn_rngs

        single = isinstance(circuits, Circuit)
        batch = [circuits] if single else list(circuits)
        if not batch:
            return []
        for qc in batch:
            if self.max_qubits is not None and qc.num_qubits > self.max_qubits:
                raise BackendError(
                    f"{self.name}: circuit width {qc.num_qubits} exceeds "
                    f"device size {self.max_qubits}"
                )
            if shots <= 0:
                raise BackendError(f"shots must be positive, got {shots}")
        rngs = spawn_rngs(seed, len(batch))
        out = []
        for qc, rng in zip(batch, rngs):
            res = self._execute(qc, shots, rng)
            res.validate(expected_shots=shots, expected_qubits=qc.num_qubits)
            out.append(res)
        return out

    def run_one(
        self,
        circuit: Circuit,
        shots: int = 1000,
        seed: "int | np.random.Generator | None" = None,
    ) -> ExecutionResult:
        """Convenience wrapper returning a single result."""
        return self.run(circuit, shots, seed)[0]

    def make_variant_cache(self, pair):
        """Build the per-pair simulation cache :meth:`run_variants` consumes.

        Returns ``None`` for backends that really execute circuits.  The
        ideal backend returns a
        :class:`~repro.cutting.cache.FragmentSimCache`; the fake-hardware
        backend a
        :class:`~repro.cutting.noisy_cache.NoisyFragmentSimCache` bound to
        its coupling map and noise model.  Callers
        (:func:`~repro.core.pipeline.cut_and_run`,
        :func:`~repro.parallel.executor.run_fragments_parallel`) build one
        cache here and thread it through every stage, so fragment bodies
        are transpiled/simulated exactly once per pipeline invocation.
        """
        return None

    def run_variants(
        self,
        pair,
        settings: Sequence[tuple[str, ...]],
        inits: Sequence[tuple[str, ...]],
        shots: int = 1000,
        seed: "int | np.random.Generator | None" = None,
        cache=None,
    ) -> list[ExecutionResult]:
        """Execute fragment variants (upstream settings first, then inits).

        The default implementation materialises the physical variant
        circuits and submits them through :meth:`run` — each variant draws
        its own child RNG stream, exactly as a plain batched run would.
        Backends with an exact simulation engine override this to serve
        every variant from the shared cache built by
        :meth:`make_variant_cache` (``cache`` is ignored here, where
        circuits must really be executed).
        """
        from repro.cutting.variants import downstream_variant, upstream_variant

        circuits = [upstream_variant(pair, s) for s in settings] + [
            downstream_variant(pair, i) for i in inits
        ]
        return self.run(circuits, shots=shots, seed=seed)

    def make_tree_fragment_cache(self, fragment, dtype=np.float64):
        """Build one tree fragment's simulation cache (``None`` = none).

        The per-fragment unit the pool, the process-pool workers, and the
        content-addressed fragment store all build on: backends with an
        exact engine return a warmable cache bound to ``fragment`` (ideal →
        :class:`~repro.cutting.cache.TreeFragmentSimCache`, fake hardware →
        :class:`~repro.cutting.noisy_cache.NoisyTreeFragmentSimCache`);
        backends that really execute circuits return ``None``.
        """
        return None

    def restore_tree_fragment_cache(self, fragment, arrays, meta):
        """Rebuild a warmed fragment cache from ``export_arrays`` output.

        The process-pool executor exports each warmed cache's numeric banks
        into shared memory in the parent and calls this hook in every
        worker, so warming happens once per body rather than once per
        worker.  Backends without a cache return ``None`` (workers then
        execute circuits directly, which is their whole point).
        """
        return None

    def make_tree_cache_pool(self, tree, dtype=np.float64):
        """Build the per-fragment cache pool :meth:`run_tree_variants` uses.

        The tree analogue of :meth:`make_variant_cache`: ``None`` for
        backends that really execute circuits; one cache per tree fragment
        (wrapped in a :class:`~repro.cutting.cache.TreeCachePool`) for the
        ideal and fake-hardware backends, so every fragment body is
        transpiled/simulated exactly once per pipeline invocation —
        the exactly-``N``-body-transpiles law for an ``N``-node tree.
        ``dtype`` is the requested precision of the cached *probability*
        records (simulation itself stays complex); backends whose caches
        do not support it may ignore the request.

        Assembled from :meth:`make_tree_fragment_cache`, the per-fragment
        hook backends actually override.
        """
        from repro.cutting.cache import TreeCachePool

        caches = [
            self.make_tree_fragment_cache(f, dtype=dtype)
            for f in tree.fragments
        ]
        if any(c is None for c in caches):
            return None
        return TreeCachePool(tree, caches)

    def make_chain_cache_pool(self, chain, dtype=np.float64):
        """Chain alias of :meth:`make_tree_cache_pool` (a linear tree)."""
        return self.make_tree_cache_pool(chain, dtype=dtype)

    def run_tree_variants(
        self,
        tree,
        index: int,
        combos: Sequence[tuple[tuple[str, ...], tuple[str, ...]]],
        shots: int = 1000,
        seed: "int | np.random.Generator | None" = None,
        cache=None,
    ) -> list[ExecutionResult]:
        """Execute one tree fragment's ``(inits, setting)`` variants.

        The default implementation materialises each combined variant
        circuit (:func:`~repro.cutting.variants.tree_variant`) and submits
        the batch through :meth:`run` — these are the reference semantics
        the cached fast paths must reproduce bit-identically.  ``cache`` is
        ignored here, where circuits must really be executed.
        """
        from repro.cutting.variants import tree_variant

        circuits = [tree_variant(tree, index, a, s) for a, s in combos]
        return self.run(circuits, shots=shots, seed=seed)

    def run_chain_variants(
        self,
        chain,
        index: int,
        combos: Sequence[tuple[tuple[str, ...], tuple[str, ...]]],
        shots: int = 1000,
        seed: "int | np.random.Generator | None" = None,
        cache=None,
    ) -> list[ExecutionResult]:
        """Chain alias of :meth:`run_tree_variants` (a linear tree).

        Deliberately pinned to the *base* tree implementation:
        ``Backend.run_chain_variants(dev, ...)`` is how tests obtain the
        per-circuit reference semantics on a backend whose own methods take
        the cached fast path, and that contract must not dispatch
        virtually.  Cached backends override this alias alongside
        :meth:`run_tree_variants`.
        """
        return Backend.run_tree_variants(
            self, chain, index, combos, shots=shots, seed=seed, cache=cache
        )
