"""Seeded, deterministic fault injection for backends.

:class:`FaultInjectionBackend` wraps any backend and perturbs its behaviour
according to a :class:`FaultPlan`: transient exceptions, latency spikes
(modelled-seconds charges, which a retry policy's ``attempt_timeout`` reads
as hangs), shot shortfalls, and corrupted-counts payloads.  Every decision
is a pure function of ``(plan.seed, site, attempt)`` where ``site``
identifies the variant being executed and ``attempt`` counts invocations of
that site on this wrapper instance — so a fault schedule is exactly
reproducible across runs, across serial/threaded executors, and across
retries (attempt 2 of a site rolls fresh dice, letting transients clear).

The wrapper preserves the bit-identity contract: each variant of a batched
call is forwarded to the inner backend individually with the *same*
per-variant RNG stream the inner backend would have spawned for the whole
batch (via :func:`~repro.utils.rng.spawn_rngs` list passthrough).  With an
all-zero plan the wrapper is transparent — counts are bit-identical to the
unwrapped backend.

:class:`DeadVariantFamily` marks a permanently dead family — e.g. "every
variant of fragment 2 whose measurement setting has ``Y`` at cut 0" — which
always raises, modelling a basis rotation the hardware cannot calibrate.
This is what the graceful-degradation path in
:mod:`repro.cutting.resilience` recovers from.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.backends.base import Backend, ExecutionResult
from repro.circuits.circuit import Circuit
from repro.exceptions import TransientBackendError
from repro.utils.rng import spawn_rngs

__all__ = [
    "DeadVariantFamily",
    "FaultInjectionBackend",
    "FaultPlan",
    "FaultyBackendFactory",
]


@dataclass(frozen=True)
class DeadVariantFamily:
    """A permanently failing variant family of one tree fragment.

    ``side="setting"`` matches variants whose measurement setting has
    ``letter`` at flat cut ``position``; ``side="prep"`` matches variants
    whose entering preparation at cut ``position`` is an eigenstate of
    ``letter`` (``X`` matches ``X+`` and ``X-``).
    """

    fragment: int
    letter: str
    position: int
    side: str = "setting"

    def __post_init__(self) -> None:
        if self.side not in ("setting", "prep"):
            raise ValueError(f"side must be 'setting' or 'prep', got {self.side!r}")

    def matches(self, site: tuple) -> bool:
        if len(site) != 4 or site[0] != "tree" or site[1] != self.fragment:
            return False
        inits, setting = site[2], site[3]
        if self.side == "setting":
            return len(setting) > self.position and setting[self.position] == self.letter
        return (
            len(inits) > self.position
            and inits[self.position][0] == self.letter
        )


@dataclass(frozen=True)
class FaultPlan:
    """Seeded description of which faults fire where.

    Rates are independent per-site-per-attempt probabilities, evaluated in
    a fixed order (transient, latency, shortfall, corrupt) from a stream
    keyed by ``(seed, site, attempt)`` — at most one fault fires per
    invocation.  ``max_consecutive_transients`` caps how many attempts in a
    row a site's transient can fire, bounding worst-case retry depth in
    soak tests.  ``dead`` lists :class:`DeadVariantFamily` matchers that
    always raise regardless of rates.
    """

    seed: int = 0
    transient_rate: float = 0.0
    latency_rate: float = 0.0
    latency_seconds: float = 5.0
    shortfall_rate: float = 0.0
    corrupt_rate: float = 0.0
    max_consecutive_transients: int | None = None
    dead: tuple = field(default_factory=tuple)

    def __post_init__(self) -> None:
        for name in ("transient_rate", "latency_rate", "shortfall_rate", "corrupt_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.latency_seconds < 0:
            raise ValueError("latency_seconds must be non-negative")
        object.__setattr__(self, "dead", tuple(self.dead))

    # ------------------------------------------------------------------
    def _rng(self, site: tuple, attempt: int, salt: str = "") -> np.random.Generator:
        payload = repr((self.seed, site, attempt, salt)).encode()
        digest = hashlib.sha256(payload).digest()
        return np.random.default_rng(int.from_bytes(digest[:8], "little"))

    def action(self, site: tuple, attempt: int) -> "tuple[str, float] | None":
        """The fault (if any) for invocation ``attempt`` of ``site``."""
        for family in self.dead:
            if family.matches(site):
                return ("dead", 0.0)
        draws = self._rng(site, attempt).uniform(size=4)
        if draws[0] < self.transient_rate and (
            self.max_consecutive_transients is None
            or attempt <= self.max_consecutive_transients
        ):
            return ("transient", 0.0)
        if draws[1] < self.latency_rate:
            return ("latency", self.latency_seconds)
        if draws[2] < self.shortfall_rate:
            return ("shortfall", 0.0)
        if draws[3] < self.corrupt_rate:
            return ("corrupt", 0.0)
        return None


class FaultInjectionBackend(Backend):
    """Wrap ``inner`` so executions fail according to ``plan``.

    Batched entry points are split into per-variant forwards with explicit
    per-variant streams (bit-identical to the inner backend's own batch
    spawning), so a fault on one variant never disturbs its siblings'
    counts.  Cache construction, the virtual clock, and any extra
    attributes (``exact_probabilities``, ``coupling``, ...) delegate to the
    inner backend.
    """

    def __init__(self, inner: Backend, plan: FaultPlan) -> None:
        self.inner = inner
        self.plan = plan
        self._lock = threading.Lock()
        self._invocations: dict[tuple, int] = {}

    # -- delegation ----------------------------------------------------
    @property
    def clock(self):
        return self.inner.clock

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"faulty({self.inner.name})"

    @property
    def max_qubits(self):  # type: ignore[override]
        return self.inner.max_qubits

    def __getattr__(self, attr):
        # only reached when normal lookup fails: exact_probabilities, ...
        if attr == "inner":
            raise AttributeError(attr)
        return getattr(self.inner, attr)

    def make_variant_cache(self, pair):
        return self.inner.make_variant_cache(pair)

    def make_tree_cache_pool(self, tree, dtype=np.float64):
        return self.inner.make_tree_cache_pool(tree, dtype=dtype)

    def make_tree_fragment_cache(self, fragment, dtype=np.float64):
        return self.inner.make_tree_fragment_cache(fragment, dtype=dtype)

    def restore_tree_fragment_cache(self, fragment, arrays, meta):
        return self.inner.restore_tree_fragment_cache(fragment, arrays, meta)

    def _execute(self, circuit, shots, rng):  # pragma: no cover - delegated
        return self.inner._execute(circuit, shots, rng)

    # -- fault machinery -----------------------------------------------
    def _next_attempt(self, site: tuple) -> int:
        with self._lock:
            attempt = self._invocations.get(site, 0) + 1
            self._invocations[site] = attempt
            return attempt

    def _faulted(self, site: tuple, call, shots: int) -> ExecutionResult:
        attempt = self._next_attempt(site)
        action = self.plan.action(site, attempt)
        if action is not None and action[0] in ("dead", "transient"):
            kind = action[0]
            raise TransientBackendError(
                f"injected {kind} fault at {site!r} (attempt {attempt})",
                site=site,
                attempt=attempt,
            )
        result = call()
        if action is None:
            return result
        kind, seconds = action
        counts = dict(result.counts)
        metadata = {**result.metadata, "injected_fault": kind}
        if kind == "latency":
            self.inner.clock.charge(seconds, label=f"fault:latency:{site[0]}")
            return ExecutionResult(
                counts=counts,
                shots=result.shots,
                num_qubits=result.num_qubits,
                seconds=result.seconds + seconds,
                metadata=metadata,
            )
        if kind == "shortfall":
            top = max(counts, key=counts.get)
            counts[top] = max(0, counts[top] - max(1, result.shots // 10))
        else:  # corrupt
            mode = int(self.plan._rng(site, attempt, salt="corrupt").integers(3))
            top = max(counts, key=counts.get)
            if mode == 0:
                counts["2" * result.num_qubits] = 1
            elif mode == 1:
                counts[top] = -counts[top] if counts[top] else -1
            else:
                counts[top] = counts[top] + 13
        metadata.pop("exact", None)  # corrupted payloads must not dodge totals checks
        return ExecutionResult(
            counts=counts,
            shots=result.shots,
            num_qubits=result.num_qubits,
            seconds=result.seconds,
            metadata=metadata,
        )

    # -- execution entry points ----------------------------------------
    def run(
        self,
        circuits: "Circuit | Sequence[Circuit]",
        shots: int = 1000,
        seed=None,
    ) -> list[ExecutionResult]:
        single = isinstance(circuits, Circuit)
        batch = [circuits] if single else list(circuits)
        if not batch:
            return []
        streams = spawn_rngs(seed, len(batch))
        out = []
        for j, (qc, stream) in enumerate(zip(batch, streams)):
            site = ("circuit", j, qc.name)
            out.append(
                self._faulted(
                    site,
                    lambda qc=qc, stream=stream: self.inner.run(
                        qc, shots=shots, seed=[stream]
                    )[0],
                    shots,
                )
            )
        return out

    def run_variants(
        self,
        pair,
        settings,
        inits,
        shots: int = 1000,
        seed=None,
        cache=None,
    ) -> list[ExecutionResult]:
        jobs = [("up", s) for s in settings] + [("down", a) for a in inits]
        streams = spawn_rngs(seed, len(jobs))
        if cache is None:
            cache = self.inner.make_variant_cache(pair)
        out = []
        for (kind, label), stream in zip(jobs, streams):
            site = ("pair", kind, label)
            ups = [label] if kind == "up" else []
            downs = [label] if kind == "down" else []
            out.append(
                self._faulted(
                    site,
                    lambda ups=ups, downs=downs, stream=stream: self.inner.run_variants(
                        pair, ups, downs, shots=shots, seed=[stream], cache=cache
                    )[0],
                    shots,
                )
            )
        return out

    def run_tree_variants(
        self,
        tree,
        index: int,
        combos,
        shots: int = 1000,
        seed=None,
        cache=None,
    ) -> list[ExecutionResult]:
        streams = spawn_rngs(seed, len(combos))
        if cache is None and len(combos) > 1:
            pool = self.inner.make_tree_cache_pool(tree)
            cache = pool[index] if pool is not None else None
        out = []
        for combo, stream in zip(combos, streams):
            site = ("tree", index, combo[0], combo[1])
            out.append(
                self._faulted(
                    site,
                    lambda combo=combo, stream=stream: self.inner.run_tree_variants(
                        tree, index, [combo], shots=shots, seed=[stream], cache=cache
                    )[0],
                    shots,
                )
            )
        return out

    def run_chain_variants(
        self,
        chain,
        index: int,
        combos,
        shots: int = 1000,
        seed=None,
        cache=None,
    ) -> list[ExecutionResult]:
        return self.run_tree_variants(
            chain, index, combos, shots=shots, seed=seed, cache=cache
        )


@dataclass(frozen=True)
class FaultyBackendFactory:
    """Picklable zero-arg factory of fault-injected backends.

    The process-pool executor pickles its ``backend_factory`` into every
    worker, where lambdas (the natural way to write
    ``lambda: FaultInjectionBackend(IdealBackend(), plan)``) cannot go.
    This dataclass closes over a picklable ``inner_factory`` (a backend
    class, a module-level function such as
    :func:`~repro.backends.devices.fake_5q_device`, or a
    ``functools.partial`` of one) plus the :class:`FaultPlan`, and builds a
    fresh wrapped backend per call — one per worker process, each with its
    own per-site invocation counters, exactly like the thread executor's
    per-worker wrappers.
    """

    inner_factory: object
    plan: FaultPlan

    def __call__(self) -> FaultInjectionBackend:
        return FaultInjectionBackend(self.inner_factory(), self.plan)
