"""Execution backends: ideal simulator and noisy fake hardware."""

from repro.backends.base import Backend, ExecutionResult
from repro.backends.ideal import IdealBackend
from repro.backends.timing import DeviceTimingModel
from repro.backends.fake_hardware import FakeHardwareBackend
from repro.backends.devices import fake_5q_device, fake_7q_device, fake_device

__all__ = [
    "Backend",
    "ExecutionResult",
    "IdealBackend",
    "DeviceTimingModel",
    "FakeHardwareBackend",
    "fake_5q_device",
    "fake_7q_device",
    "fake_device",
]
