"""Execution backends: ideal simulator, noisy fake hardware, fault injection."""

from repro.backends.base import Backend, ExecutionResult, validate_execution_result
from repro.backends.ideal import IdealBackend
from repro.backends.timing import DeviceTimingModel
from repro.backends.fake_hardware import FakeHardwareBackend
from repro.backends.faults import (
    DeadVariantFamily,
    FaultInjectionBackend,
    FaultPlan,
    FaultyBackendFactory,
)
from repro.backends.devices import fake_5q_device, fake_7q_device, fake_device
from repro.backends.trajectory import TrajectoryBackend, trajectory_5q_device

__all__ = [
    "Backend",
    "ExecutionResult",
    "IdealBackend",
    "DeviceTimingModel",
    "FakeHardwareBackend",
    "DeadVariantFamily",
    "FaultInjectionBackend",
    "FaultPlan",
    "FaultyBackendFactory",
    "TrajectoryBackend",
    "fake_5q_device",
    "fake_7q_device",
    "fake_device",
    "trajectory_5q_device",
    "validate_execution_result",
]
