"""Noisy fake-hardware backend (the IBM-device stand-in).

Pipeline per job:

1. transpile the logical circuit to the device (native basis + routing),
2. evolve a density matrix, interleaving the noise model's channels after
   each gate,
3. push the outcome distribution through the readout confusion matrices,
4. un-permute the routed layout back to logical wires,
5. sample multinomial counts and charge the timing model to the virtual
   clock.

Everything is deterministic given a seed.  The noise strength scales with
transpiled gate counts, so deeper/wider circuits degrade more — the property
Fig. 3 exercises.

Fragment variants take a fast path: :meth:`FakeHardwareBackend.run_variants`
serves every measurement/preparation variant of a fragment pair from a
shared :class:`~repro.cutting.noisy_cache.NoisyFragmentSimCache` — each
fragment body is transpiled once and evolved ``1 + 4^K`` times total instead
of once per variant — while charging the timing model per variant job
exactly as circuit-level execution would.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.backends.base import Backend, ExecutionResult
from repro.backends.timing import DeviceTimingModel
from repro.circuits.circuit import Circuit
from repro.exceptions import BackendError, SimulationError
from repro.noise.model import NoiseModel
from repro.noise.readout import apply_readout_error
from repro.sim.density import (
    evolve_noisy_tensor,
    probabilities_from_tensor,
    zero_density_tensor,
)
from repro.sim.sampler import sample_counts
from repro.transpile.coupling import CouplingMap
from repro.transpile.pipeline import transpile
from repro.utils.bits import marginalize_probs, permute_probability_axes
from repro.utils.rng import spawn_rngs

__all__ = ["FakeHardwareBackend", "finalize_physical_probs"]


def finalize_physical_probs(
    probs: np.ndarray,
    readout: dict,
    layout: Sequence[int],
    logical_width: int,
) -> np.ndarray:
    """Post-process a physical-register distribution into logical results.

    Readout confusion matrices → layout un-permutation → marginalisation of
    unused physical wires.  This is *the* definition of steps 3–4 of the
    job pipeline, shared by per-circuit execution and the noisy fragment
    cache so the two paths cannot drift.
    """
    n_phys = int(np.log2(probs.size))
    probs = apply_readout_error(probs, readout, n_phys)
    # Physical wire layout[i] holds logical wire i: permute back, then
    # marginalise away unused physical wires beyond the logical width.
    perm = [0] * n_phys
    for logical, phys in enumerate(layout):
        perm[phys] = logical
    probs = permute_probability_axes(probs, perm)
    if logical_width < n_phys:
        probs = marginalize_probs(probs, range(logical_width), n_phys)
    return probs


class FakeHardwareBackend(Backend):
    """Density-matrix simulation of a noisy, connectivity-limited device.

    Parameters
    ----------
    coupling:
        Physical topology; jobs are routed onto it.
    noise_model:
        Gate/readout error model (may be trivial for "noise-free hardware").
    timing:
        Wall-time model charged to :attr:`clock` per job.
    name:
        Device name for reports.
    """

    def __init__(
        self,
        coupling: CouplingMap,
        noise_model: NoiseModel,
        timing: DeviceTimingModel | None = None,
        name: str = "fake_device",
    ) -> None:
        super().__init__()
        self.coupling = coupling
        self.noise_model = noise_model
        self.timing = timing or DeviceTimingModel()
        self.name = name
        self.max_qubits = coupling.num_qubits

    # ------------------------------------------------------------------
    def _noisy_probabilities(self, physical: Circuit) -> np.ndarray:
        """Exact outcome distribution of the noisy physical circuit."""
        n = physical.num_qubits
        t = evolve_noisy_tensor(
            zero_density_tensor(n), physical, self.noise_model, n
        )
        probs = probabilities_from_tensor(t, n)
        total = probs.sum()
        if abs(total - 1.0) > 1e-6:
            # CPTP channels preserve trace; drift means a bug upstream.
            raise SimulationError(f"noisy simulation lost trace: {total}")
        return probs / total

    def _execute(
        self, circuit: Circuit, shots: int, rng: np.random.Generator
    ) -> ExecutionResult:
        physical, layout = transpile(circuit, self.coupling)
        probs = self._noisy_probabilities(physical)
        probs = finalize_physical_probs(
            probs, self.noise_model.readout, layout, circuit.num_qubits
        )
        counts = sample_counts(probs, shots, seed=rng, num_qubits=circuit.num_qubits)
        seconds = self._charge(physical, circuit.name, shots)
        return ExecutionResult(
            counts=counts,
            shots=shots,
            num_qubits=circuit.num_qubits,
            seconds=seconds,
            metadata=self._job_metadata(physical, layout),
        )

    def _charge(self, physical: Circuit, label: str, shots: int) -> float:
        seconds = self.timing.job_seconds(physical, shots)
        self.clock.charge(seconds, label=f"job:{label}")
        return seconds

    def _job_metadata(self, physical: Circuit, layout: Sequence[int]) -> dict:
        # barriers are zero-duration fences (the timing model skips them);
        # report only real gates in the op/depth bookkeeping
        gates = [inst for inst in physical if inst.name != "barrier"]
        return {
            "backend": self.name,
            "transpiled_ops": len(gates),
            "transpiled_depth": Circuit(physical.num_qubits, gates).depth(),
            "layout": list(layout),
        }

    # ------------------------------------------------------------------
    def make_variant_cache(self, pair):
        """Fragment variants are served from a :class:`NoisyFragmentSimCache`."""
        from repro.cutting.noisy_cache import NoisyFragmentSimCache

        return NoisyFragmentSimCache(pair, self.coupling, self.noise_model)

    def run_variants(
        self,
        pair,
        settings: Sequence[tuple[str, ...]],
        inits: Sequence[tuple[str, ...]],
        shots: int = 1000,
        seed: "int | np.random.Generator | None" = None,
        cache=None,
    ) -> list[ExecutionResult]:
        """Serve all fragment variants from one shared noisy-body cache.

        Distributions come from the cache (one transpile + one noisy
        evolution per upstream body, one transpile + a batched ``4^K``
        response evolution per downstream body); sampling, RNG streams and
        virtual-clock charges mirror circuit-level execution per variant.
        A ``cache`` of the wrong type or built for a different pair is
        replaced by a fresh one; device *equivalence* cannot be checked and
        is the caller's contract — the ``cache`` must come from
        :meth:`make_variant_cache` of this or an identically configured
        device (as in :func:`~repro.parallel.executor.run_fragments_parallel`,
        where worker backends share the probe's cache), otherwise the
        served physics is the cache's device, not this one.
        """
        from repro.cutting.noisy_cache import NoisyFragmentSimCache

        if shots <= 0:
            raise BackendError(f"shots must be positive, got {shots}")
        for width in (pair.n_up if settings else 0, pair.n_down if inits else 0):
            if self.max_qubits is not None and width > self.max_qubits:
                raise BackendError(
                    f"{self.name}: circuit width {width} exceeds "
                    f"device size {self.max_qubits}"
                )
        if not isinstance(cache, NoisyFragmentSimCache) or cache.pair is not pair:
            cache = self.make_variant_cache(pair)
        rngs = spawn_rngs(seed, len(settings) + len(inits))
        out: list[ExecutionResult] = []
        jobs = [("up", s) for s in settings] + [("down", i) for i in inits]
        for (kind, label), rng in zip(jobs, rngs):
            if kind == "up":
                probs = cache.upstream_probabilities(label)
                physical = cache.upstream_physical(label)
                layout = cache.upstream_layout()
                width = pair.n_up
            else:
                probs = cache.downstream_probabilities(label)
                physical = cache.downstream_physical(label)
                layout = cache.downstream_layout()
                width = pair.n_down
            counts = sample_counts(probs, shots, seed=rng, num_qubits=width)
            seconds = self._charge(physical, physical.name, shots)
            out.append(
                ExecutionResult(
                    counts=counts,
                    shots=shots,
                    num_qubits=width,
                    seconds=seconds,
                    metadata=self._job_metadata(physical, layout),
                )
            )
        return out

    def make_tree_fragment_cache(self, fragment, dtype=np.float64):
        """A :class:`NoisyTreeFragmentSimCache` bound to ``fragment``.

        ``dtype`` is accepted for interface parity but ignored: noisy
        caches serve finite-shot sampling, where shot noise dwarfs any
        float32 rounding, and the density-matrix pipeline is not worth
        complicating for it.  The pool assembled by the base
        ``make_tree_cache_pool`` holds one of these per tree fragment.
        """
        from repro.cutting.noisy_cache import NoisyTreeFragmentSimCache

        return NoisyTreeFragmentSimCache(
            fragment, self.coupling, self.noise_model
        )

    def restore_tree_fragment_cache(self, fragment, arrays, meta):
        """Rebuild a warmed device cache in a pool worker (zero transpiles)."""
        from repro.cutting.noisy_cache import NoisyTreeFragmentSimCache

        return NoisyTreeFragmentSimCache.from_arrays(
            fragment, self.coupling, self.noise_model, arrays, meta
        )

    def run_tree_variants(
        self,
        tree,
        index: int,
        combos,
        shots: int = 1000,
        seed: "int | np.random.Generator | None" = None,
        cache=None,
    ) -> list[ExecutionResult]:
        """Serve one tree fragment's variants from its shared noisy cache.

        Distributions come from the per-fragment cache (one transpile and
        one batched Hermitian-basis response evolution per body, one batched
        rotation pass per distinct setting); sampling, RNG streams and
        virtual-clock charges mirror circuit-level execution per variant,
        so counts are bit-identical to submitting each
        :func:`~repro.cutting.variants.tree_variant` through :meth:`run`.
        The device-equivalence contract on a foreign ``cache`` matches
        :meth:`run_variants`.
        """
        from repro.cutting.noisy_cache import NoisyTreeFragmentSimCache

        if shots <= 0:
            raise BackendError(f"shots must be positive, got {shots}")
        frag = tree.fragments[index]
        if self.max_qubits is not None and frag.num_qubits > self.max_qubits:
            raise BackendError(
                f"{self.name}: circuit width {frag.num_qubits} exceeds "
                f"device size {self.max_qubits}"
            )
        if (
            not isinstance(cache, NoisyTreeFragmentSimCache)
            or cache.fragment is not frag
        ):
            cache = NoisyTreeFragmentSimCache(
                frag, self.coupling, self.noise_model
            )
        rngs = spawn_rngs(seed, len(combos))
        out: list[ExecutionResult] = []
        for (inits, setting), rng in zip(combos, rngs):
            probs = cache.probabilities(inits, setting)
            physical = cache.physical(inits, setting)
            layout = cache.layout()
            counts = sample_counts(
                probs, shots, seed=rng, num_qubits=frag.num_qubits
            )
            seconds = self._charge(physical, physical.name, shots)
            out.append(
                ExecutionResult(
                    counts=counts,
                    shots=shots,
                    num_qubits=frag.num_qubits,
                    seconds=seconds,
                    metadata=self._job_metadata(physical, layout),
                )
            )
        return out

    def run_chain_variants(
        self,
        chain,
        index: int,
        combos,
        shots: int = 1000,
        seed: "int | np.random.Generator | None" = None,
        cache=None,
    ) -> list[ExecutionResult]:
        """Chain alias of :meth:`run_tree_variants` (a linear tree)."""
        return self.run_tree_variants(
            chain, index, combos, shots=shots, seed=seed, cache=cache
        )
