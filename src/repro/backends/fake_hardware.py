"""Noisy fake-hardware backend (the IBM-device stand-in).

Pipeline per job:

1. transpile the logical circuit to the device (native basis + routing),
2. evolve a density matrix, interleaving the noise model's channels after
   each gate,
3. push the outcome distribution through the readout confusion matrices,
4. un-permute the routed layout back to logical wires,
5. sample multinomial counts and charge the timing model to the virtual
   clock.

Everything is deterministic given a seed.  The noise strength scales with
transpiled gate counts, so deeper/wider circuits degrade more — the property
Fig. 3 exercises.
"""

from __future__ import annotations

import numpy as np

from repro.backends.base import Backend, ExecutionResult
from repro.backends.timing import DeviceTimingModel
from repro.circuits.circuit import Circuit
from repro.noise.model import NoiseModel
from repro.noise.readout import apply_readout_error
from repro.sim.density import DensityMatrix
from repro.sim.sampler import sample_counts
from repro.transpile.coupling import CouplingMap
from repro.transpile.pipeline import transpile
from repro.utils.bits import marginalize_probs, permute_probability_axes

__all__ = ["FakeHardwareBackend"]


class FakeHardwareBackend(Backend):
    """Density-matrix simulation of a noisy, connectivity-limited device.

    Parameters
    ----------
    coupling:
        Physical topology; jobs are routed onto it.
    noise_model:
        Gate/readout error model (may be trivial for "noise-free hardware").
    timing:
        Wall-time model charged to :attr:`clock` per job.
    name:
        Device name for reports.
    """

    def __init__(
        self,
        coupling: CouplingMap,
        noise_model: NoiseModel,
        timing: DeviceTimingModel | None = None,
        name: str = "fake_device",
    ) -> None:
        super().__init__()
        self.coupling = coupling
        self.noise_model = noise_model
        self.timing = timing or DeviceTimingModel()
        self.name = name
        self.max_qubits = coupling.num_qubits

    # ------------------------------------------------------------------
    def _noisy_probabilities(self, physical: Circuit) -> np.ndarray:
        """Exact outcome distribution of the noisy physical circuit."""
        dm = DensityMatrix(physical.num_qubits)
        for inst in physical:
            if inst.name == "barrier":
                continue
            dm.apply_matrix(inst.gate.matrix(), inst.qubits)
            for channel, qubits in self.noise_model.channels_for(
                inst.name, inst.qubits
            ):
                dm.apply_channel(channel, qubits)
        probs = dm.probabilities()
        total = probs.sum()
        if abs(total - 1.0) > 1e-6:
            # CPTP channels preserve trace; drift means a bug upstream.
            raise RuntimeError(f"noisy simulation lost trace: {total}")
        return probs / total

    def _execute(
        self, circuit: Circuit, shots: int, rng: np.random.Generator
    ) -> ExecutionResult:
        physical, layout = transpile(circuit, self.coupling)
        probs = self._noisy_probabilities(physical)
        probs = apply_readout_error(
            probs, self.noise_model.readout, physical.num_qubits
        )
        # Physical wire layout[i] holds logical wire i: permute back, then
        # marginalise away unused physical wires beyond the logical width.
        perm = [0] * physical.num_qubits
        for logical, phys in enumerate(layout):
            perm[phys] = logical
        probs = permute_probability_axes(probs, perm)
        if circuit.num_qubits < physical.num_qubits:
            probs = marginalize_probs(
                probs, range(circuit.num_qubits), physical.num_qubits
            )
        counts = sample_counts(probs, shots, seed=rng, num_qubits=circuit.num_qubits)
        seconds = self.timing.job_seconds(physical, shots)
        self.clock.charge(seconds, label=f"job:{circuit.name}")
        return ExecutionResult(
            counts=counts,
            shots=shots,
            num_qubits=circuit.num_qubits,
            seconds=seconds,
            metadata={
                "backend": self.name,
                "transpiled_ops": len(physical),
                "transpiled_depth": physical.depth(),
                "layout": list(layout),
            },
        )
