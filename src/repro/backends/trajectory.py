"""Monte-Carlo trajectory backend — the CPU-bound noisy workload.

:class:`TrajectoryBackend` executes every job by averaging stochastic
pure-state trajectories (:mod:`repro.sim.trajectories`) instead of evolving
a density matrix.  Each trajectory is a Python-level per-gate loop — Kraus
branch sampling, small-matrix applications — that holds the GIL almost the
whole time, so this backend is the realistic stand-in for workloads where
thread pools cannot scale and the process-pool executor
(:func:`repro.parallel.executor.run_tree_fragments_parallel` with
``mode="process"``) earns its keep.  It deliberately builds **no** variant
cache: every variant is a genuine physical execution, exactly the regime
the thread-vs-process benchmark (``benchmarks/bench_process_executor.py``)
measures.

Determinism: each job consumes only its own per-circuit RNG stream —
trajectory Kraus draws first, then the multinomial count draw — so counts
are bit-identical across serial, thread, and process executors, which
derive those streams from global task indices.
"""

from __future__ import annotations

import numpy as np

from repro.backends.base import Backend, ExecutionResult
from repro.backends.fake_hardware import finalize_physical_probs
from repro.backends.timing import DeviceTimingModel
from repro.circuits.circuit import Circuit
from repro.noise.model import NoiseModel
from repro.sim.sampler import sample_counts
from repro.sim.trajectories import trajectory_probabilities
from repro.transpile.coupling import CouplingMap
from repro.transpile.pipeline import transpile

__all__ = ["TrajectoryBackend", "trajectory_5q_device"]


class TrajectoryBackend(Backend):
    """Noisy device simulated by quantum-trajectory sampling.

    Same job pipeline as :class:`~repro.backends.fake_hardware
    .FakeHardwareBackend` — transpile, noisy evolution, readout confusion,
    layout un-permutation, multinomial sampling, timing charge — with the
    density-matrix engine swapped for ``num_trajectories`` averaged
    stochastic trajectories.  Results carry Monte-Carlo noise of order
    ``1/sqrt(num_trajectories)`` on top of shot noise; they remain exactly
    reproducible per seed.
    """

    def __init__(
        self,
        coupling: CouplingMap,
        noise_model: NoiseModel,
        num_trajectories: int = 48,
        timing: DeviceTimingModel | None = None,
        name: str = "trajectory_device",
    ) -> None:
        super().__init__()
        self.coupling = coupling
        self.noise_model = noise_model
        self.num_trajectories = int(num_trajectories)
        self.timing = timing or DeviceTimingModel()
        self.name = name
        self.max_qubits = coupling.num_qubits

    def _execute(
        self, circuit: Circuit, shots: int, rng: np.random.Generator
    ) -> ExecutionResult:
        physical, layout = transpile(circuit, self.coupling)
        probs = trajectory_probabilities(
            physical, self.noise_model, self.num_trajectories, seed=rng
        )
        probs = finalize_physical_probs(
            probs, self.noise_model.readout, layout, circuit.num_qubits
        )
        # trajectory averages carry Monte-Carlo noise; renormalise before
        # the multinomial draw so sampling sees an exact distribution
        probs = np.clip(probs, 0.0, None)
        probs = probs / probs.sum()
        counts = sample_counts(
            probs, shots, seed=rng, num_qubits=circuit.num_qubits
        )
        seconds = self.timing.job_seconds(physical, shots)
        self.clock.charge(seconds, label=f"job:{circuit.name}")
        return ExecutionResult(
            counts=counts,
            shots=shots,
            num_qubits=circuit.num_qubits,
            seconds=seconds,
            metadata={
                "backend": self.name,
                "num_trajectories": self.num_trajectories,
                "layout": list(layout),
            },
        )


def trajectory_5q_device(
    num_trajectories: int = 48,
    p1: float = 3e-4,
    p2: float = 1e-2,
    p01: float = 0.015,
    p10: float = 0.03,
) -> TrajectoryBackend:
    """5-qubit T-topology trajectory device (module-level, hence picklable).

    The process-pool executor pickles its ``backend_factory`` into worker
    processes; ``functools.partial(trajectory_5q_device, num_trajectories=N)``
    is the intended spelling there.
    """
    from repro.backends.devices import _standard_noise

    return TrajectoryBackend(
        CouplingMap.ibm_t_shape_5q(),
        _standard_noise(5, p1, p2, p01, p10),
        num_trajectories=num_trajectories,
        name="trajectory_lima_5q",
    )
