"""Catalog of fake devices mirroring the paper's experimental platforms.

The paper ran on "superconducting IBM Quantum devices … machines of two
different sizes — a 5-qubit device … and a 7-qubit device" [§III-A].  The
two factories below build matching stand-ins: real 5q/7q IBM topologies,
calibration-like error rates, and the wall-time model of
:class:`~repro.backends.timing.DeviceTimingModel`.

Error-rate defaults are typical Falcon-era medians: 1q depolarizing 3e-4,
2q depolarizing 1e-2, readout p01 ≈ 1.5 %, p10 ≈ 3 %.
"""

from __future__ import annotations

from repro.backends.fake_hardware import FakeHardwareBackend
from repro.backends.timing import DeviceTimingModel
from repro.exceptions import BackendError
from repro.noise.kraus import (
    depolarizing,
    thermal_relaxation,
    two_qubit_depolarizing,
)
from repro.noise.model import NoiseModel
from repro.noise.readout import ReadoutError
from repro.transpile.coupling import CouplingMap

__all__ = ["fake_5q_device", "fake_7q_device", "fake_device", "thermal_noise_model"]


def _standard_noise(
    num_qubits: int,
    p1: float,
    p2: float,
    p01: float,
    p10: float,
) -> NoiseModel:
    nm = NoiseModel()
    if p1 > 0:
        nm.add_gate_noise(["sx", "x", "rz"], depolarizing(p1))
    if p2 > 0:
        nm.add_gate_noise(["cx"], two_qubit_depolarizing(p2))
    if p01 > 0 or p10 > 0:
        for q in range(num_qubits):
            nm.add_readout_error(q, ReadoutError(p01=p01, p10=p10))
    return nm


def thermal_noise_model(
    num_qubits: int,
    t1: float = 100e-6,
    t2: float = 80e-6,
    timing: DeviceTimingModel | None = None,
    p01: float = 0.015,
    p10: float = 0.03,
) -> NoiseModel:
    """Calibration-style noise: T1/T2 relaxation scaled by native gate times.

    Every native gate is followed by a thermal-relaxation channel of the
    gate's duration (1q and 2q durations from ``timing``); CX additionally
    picks up a small coherent-error depolarizing component, mirroring how
    device calibration data decomposes into incoherent + coherent parts.
    """
    tm = timing or DeviceTimingModel()
    nm = NoiseModel()
    nm.add_gate_noise(
        ["sx", "x", "rz"], thermal_relaxation(t1, t2, tm.gate_time_1q)
    )
    nm.add_gate_noise(["cx"], thermal_relaxation(t1, t2, tm.gate_time_2q))
    nm.add_gate_noise(["cx"], two_qubit_depolarizing(5e-3))
    for q in range(num_qubits):
        nm.add_readout_error(q, ReadoutError(p01=p01, p10=p10))
    return nm


def fake_5q_device(
    p1: float = 3e-4,
    p2: float = 1e-2,
    p01: float = 0.015,
    p10: float = 0.03,
    timing: DeviceTimingModel | None = None,
    noise: str = "depolarizing",
) -> FakeHardwareBackend:
    """5-qubit T-topology device (ibmq_lima class).

    ``noise``: ``"depolarizing"`` (rate-based, default), ``"thermal"``
    (T1/T2 relaxation scaled by gate durations) or ``"none"``.
    """
    coupling = CouplingMap.ibm_t_shape_5q()
    return FakeHardwareBackend(
        coupling,
        _pick_noise(5, noise, p1, p2, p01, p10, timing),
        timing=timing,
        name=f"fake_lima_5q[{noise}]",
    )


def fake_7q_device(
    p1: float = 3e-4,
    p2: float = 1e-2,
    p01: float = 0.015,
    p10: float = 0.03,
    timing: DeviceTimingModel | None = None,
    noise: str = "depolarizing",
) -> FakeHardwareBackend:
    """7-qubit H-topology device (ibm_casablanca class)."""
    coupling = CouplingMap.ibm_h_shape_7q()
    return FakeHardwareBackend(
        coupling,
        _pick_noise(7, noise, p1, p2, p01, p10, timing),
        timing=timing,
        name=f"fake_casablanca_7q[{noise}]",
    )


def _pick_noise(
    num_qubits: int,
    noise: str,
    p1: float,
    p2: float,
    p01: float,
    p10: float,
    timing: DeviceTimingModel | None,
) -> NoiseModel:
    if noise == "depolarizing":
        return _standard_noise(num_qubits, p1, p2, p01, p10)
    if noise == "thermal":
        return thermal_noise_model(num_qubits, timing=timing, p01=p01, p10=p10)
    if noise == "none":
        return NoiseModel()
    raise BackendError(
        f"unknown noise preset {noise!r}; use depolarizing/thermal/none"
    )


def fake_device(num_qubits: int, **kwargs) -> FakeHardwareBackend:
    """Device of the requested size (5 or 7 qubits, like the paper's)."""
    if num_qubits <= 5:
        return fake_5q_device(**kwargs)
    if num_qubits <= 7:
        return fake_7q_device(**kwargs)
    raise BackendError(
        f"no fake device with {num_qubits} qubits (the paper used 5q and 7q "
        "machines); build a custom FakeHardwareBackend instead"
    )
