"""Cost model for standard vs golden reconstruction (paper §II-B, §III-B).

Closed-form counts:

===================  =======================  ==============================
quantity             standard                 with golden cuts
===================  =======================  ==============================
reconstruction rows  ``4^K``                  ``4^{K_r} · 3^{K_g}``
upstream settings    ``3^K``                  ``Π (3 or 2)``
downstream inits     ``6^K``                  ``Π (6, or 4 if X/Y-golden)``
circuit executions   ``(3^K + 6^K) · shots``  reduced product · shots
===================  =======================  ==============================

For the paper's single Y-golden cut: variants 9 → 6, hence executions
``4.5·10⁵ → 3.0·10⁵`` at 50 trials × 1000 shots, and the ~33 % wall-time
drop of Figs. 4–5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.backends.timing import DeviceTimingModel
from repro.core.neglect import (
    reduced_bases,
    reduced_init_tuples,
    reduced_setting_tuples,
)
from repro.cutting.variants import downstream_init_tuples, upstream_setting_tuples

__all__ = ["CostReport", "cost_report", "predicted_speedup"]


@dataclass(frozen=True)
class CostReport:
    """Variant/term/shot counts for one configuration."""

    num_cuts: int
    golden: dict
    reconstruction_rows: int
    upstream_settings: int
    downstream_inits: int
    shots_per_variant: int

    @property
    def num_variants(self) -> int:
        return self.upstream_settings + self.downstream_inits

    @property
    def total_executions(self) -> int:
        return self.num_variants * self.shots_per_variant

    def as_row(self) -> dict:
        return {
            "K": self.num_cuts,
            "golden": dict(self.golden),
            "rows": self.reconstruction_rows,
            "upstream": self.upstream_settings,
            "downstream": self.downstream_inits,
            "variants": self.num_variants,
            "executions": self.total_executions,
        }


def cost_report(
    num_cuts: int,
    golden: Mapping[int, str] | None = None,
    shots_per_variant: int = 1000,
) -> CostReport:
    """Count rows/settings/inits for ``K`` cuts with the given golden map."""
    golden = dict(golden or {})
    if golden:
        rows = 1
        for pool in reduced_bases(num_cuts, golden):
            rows *= len(pool)
        ups = len(reduced_setting_tuples(num_cuts, golden))
        downs = len(reduced_init_tuples(num_cuts, golden))
    else:
        rows = 4**num_cuts
        ups = len(upstream_setting_tuples(num_cuts))
        downs = len(downstream_init_tuples(num_cuts))
    return CostReport(
        num_cuts=num_cuts,
        golden=golden,
        reconstruction_rows=rows,
        upstream_settings=ups,
        downstream_inits=downs,
        shots_per_variant=shots_per_variant,
    )


def predicted_speedup(
    num_cuts: int,
    golden: Mapping[int, str],
    shots_per_variant: int = 1000,
    timing: DeviceTimingModel | None = None,
    circuit_seconds: float = 0.0,
) -> float:
    """Predicted device wall-time ratio ``standard / golden`` (> 1 is a win).

    With a timing model, each variant costs ``job_overhead + shots ·
    (circuit_seconds + readout + reset)``; otherwise the ratio of raw
    execution counts is returned (the paper's 4.5/3.0 = 1.5 for one
    Y-golden cut).
    """
    std = cost_report(num_cuts, None, shots_per_variant)
    gld = cost_report(num_cuts, golden, shots_per_variant)
    if timing is None:
        return std.total_executions / gld.total_executions
    per_shot = circuit_seconds + timing.readout_time + timing.reset_time
    per_job = timing.job_overhead + shots_per_variant * per_shot
    return (std.num_variants * per_job) / (gld.num_variants * per_job)
