"""Circuit families with built-in golden cutting points (paper Figs. 1–2).

Why these circuits are golden (DESIGN.md §1, paper §III): if the upstream
fragment's state has *real amplitudes* and the upstream observable factor is
real/diagonal (computational-basis projectors), then for the cut qubit

.. math::

    \\sum_r r\\, \\mathrm{tr}(O_{f1}\\, \\rho_{f1}(Y^r))
        = \\langle\\psi| (O_{f1} \\otimes Y) |\\psi\\rangle = 0,

because ``O ⊗ Y`` is Hermitian with purely imaginary entries while ``ψ`` is
real — the paper's "components of equal magnitudes … systematically cancel".
Appending ``S`` (resp. ``S`` then ``H``) to the cut wire transports the
cancellation from Y to X (resp. Z), so :func:`golden_ansatz` can target any
basis.

The generated family mirrors paper Fig. 2: a rotation column with angles
``θ ~ U[0, 6.28]``, a randomised upstream block ``U1``, the cut, and a fully
random downstream block ``U2``.  The paper's RX column is kept verbatim on
the downstream register; the upstream register uses the real rotation family
(RY) so the golden structure is *provable* rather than incidental — the
substitution is documented in DESIGN.md §2.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuits.circuit import Circuit
from repro.circuits.random import random_circuit, random_real_circuit
from repro.cutting.cut import CutPoint, CutSpec
from repro.exceptions import CutError
from repro.utils.rng import as_generator

__all__ = ["GoldenAnsatzSpec", "golden_ansatz", "three_qubit_example"]


@dataclass(frozen=True)
class GoldenAnsatzSpec:
    """A generated golden-ansatz instance plus its cut metadata.

    Attributes
    ----------
    circuit:
        The full uncut circuit.
    cut_spec:
        The single-wire cut with the golden point.
    golden_basis:
        The Pauli basis guaranteed negligible at the cut.
    cut_wire:
        Original wire carrying the cut (middle qubit).
    upstream_qubits / downstream_qubits:
        The registers of the two blocks (cut wire appears in both).
    """

    circuit: Circuit
    cut_spec: CutSpec
    golden_basis: str
    cut_wire: int
    upstream_qubits: tuple[int, ...]
    downstream_qubits: tuple[int, ...]


def golden_ansatz(
    num_qubits: int,
    depth: int = 3,
    golden_basis: str = "Y",
    seed: "int | np.random.Generator | None" = None,
    rx_layer: bool = True,
) -> GoldenAnsatzSpec:
    """Generate a paper-Fig.-2-style circuit with one golden cutting point.

    Parameters
    ----------
    num_qubits:
        Total width (the paper uses odd 5 or 7, split into 3+3 / 4+4 qubit
        fragments; any width ≥ 3 works).
    depth:
        Depth of each random block.
    golden_basis:
        Which Pauli basis is negligible at the cut (``"Y"`` natively;
        ``"X"``/``"Z"`` via the S / S·H frame change on the cut wire).
    rx_layer:
        Include the paper's random-angle RX column on the downstream block.

    Returns
    -------
    GoldenAnsatzSpec
        Circuit + cut with ``golden_basis`` provably negligible for
        computational-basis (diagonal) observables.
    """
    if num_qubits < 3:
        raise CutError("golden ansatz needs at least 3 qubits")
    if golden_basis not in ("X", "Y", "Z"):
        raise CutError(f"golden_basis must be X/Y/Z, got {golden_basis!r}")
    rng = as_generator(seed)
    m = num_qubits // 2  # cut wire: last qubit of the upstream block
    up_qubits = tuple(range(m + 1))
    down_qubits = tuple(range(m, num_qubits))

    qc = Circuit(num_qubits, name=f"golden{golden_basis}[{num_qubits}q]")

    # upstream block U1: real gates only -> real statevector on (0..m)
    u1 = random_real_circuit(len(up_qubits), depth, seed=rng)
    qc = qc.compose(u1, qubits=list(up_qubits))
    if not any(m in inst.qubits for inst in qc):
        # degenerate draw: anchor the cut wire with a real rotation
        qc.ry(float(rng.uniform(0.0, 6.28)), m)

    # frame change making `golden_basis` the negligible one
    if golden_basis == "X":
        qc.s(m)
    elif golden_basis == "Z":
        qc.s(m).h(m)
    cut_gate_index = len(qc) - 1  # last upstream instruction on the cut wire
    if golden_basis == "Y":
        # ensure the final upstream instruction acts on the cut wire so the
        # cut position is well-defined; add an explicit identity anchor if
        # U1's last gate on wire m is buried earlier.
        cut_gate_index = max(
            i for i, inst in enumerate(qc) if m in inst.qubits
        )

    # downstream: paper's RX column (random angles on [0, 6.28]), an
    # entangling ladder carrying the cut wire through the whole downstream
    # register (Fig. 2's "wire continues into U2" structure — this also
    # pins the fragment shapes to the paper's 3+3 / 4+4 split), then U2.
    down_local = list(down_qubits)
    if rx_layer:
        for q in down_local[1:]:  # not on the cut wire: keep it upstream-pure
            qc.rx(float(rng.uniform(0.0, 6.28)), q)
    for a, b in zip(down_local, down_local[1:]):
        qc.cx(a, b)
    if len(down_local) == 1:
        # degenerate 1-wire downstream: give the cut wire a continuation
        qc.rx(float(rng.uniform(0.0, 6.28)), m)
    u2 = random_circuit(len(down_local), depth, seed=rng)
    qc = qc.compose(u2, qubits=down_local)

    spec = CutSpec((CutPoint(wire=m, gate_index=cut_gate_index),))
    spec.validate(qc)
    return GoldenAnsatzSpec(
        circuit=qc,
        cut_spec=spec,
        golden_basis=golden_basis,
        cut_wire=m,
        upstream_qubits=up_qubits,
        downstream_qubits=down_qubits,
    )


def three_qubit_example(
    seed: "int | np.random.Generator | None" = None,
    golden: bool = True,
) -> GoldenAnsatzSpec:
    """The paper's Fig.-1 three-qubit circuit ``U23 U12 |000⟩``.

    ``U12`` acts on qubits (0, 1), the wire between the blocks (qubit 1) is
    cut, and ``U23`` acts on qubits (1, 2).  With ``golden=True`` the
    ``U12`` block is drawn from the real gate family so the cut is Y-golden;
    otherwise both blocks are arbitrary random circuits (a regular cut).
    """
    rng = as_generator(seed)
    qc = Circuit(3, name="fig1_3q")
    u12 = (
        random_real_circuit(2, 3, seed=rng) if golden else random_circuit(2, 3, seed=rng)
    )
    qc = qc.compose(u12, qubits=[0, 1])
    if not any(1 in inst.qubits for inst in qc):
        qc.ry(float(rng.uniform(0, 6.28)), 1)
    cut_gate_index = max(i for i, inst in enumerate(qc) if 1 in inst.qubits)
    qc.cx(1, 2)  # the cut wire continues into the U23 block
    u23 = random_circuit(2, 3, seed=rng)
    qc = qc.compose(u23, qubits=[1, 2])
    spec = CutSpec((CutPoint(wire=1, gate_index=cut_gate_index),))
    return GoldenAnsatzSpec(
        circuit=qc,
        cut_spec=spec,
        golden_basis="Y" if golden else "",
        cut_wire=1,
        upstream_qubits=(0, 1),
        downstream_qubits=(1, 2),
    )
