"""Reduced basis/variant sets for golden cuts — the actual "neglecting".

Given a map ``{cut index: golden basis or bases}`` these helpers produce:

* the reconstruction basis pools (golden bases removed → the
  ``4^{K_r} 3^{K_g}``-term sum of paper §II-B, or smaller when a cut has
  *several* negligible bases),
* the upstream measurement settings actually worth running (each golden
  basis's setting is skipped; if every basis is golden one setting is kept
  so the ``I`` row — the outcome marginal — can still be estimated),
* the downstream preparation tuples actually worth running (golden-basis
  eigenstates are skipped — *unless* the basis is ``Z``, whose eigenstates
  are shared with ``I`` and must stay; this asymmetry is captured
  faithfully and surfaced by the cost model).

Multiple golden bases per cut are supported because they occur naturally:
a cut qubit left in a computational basis state carries no X *or* Y
information (both bases golden, 4 → 2 reconstruction terms), and a cut
qubit in a product state with the rest of the fragment can have all three
Paulis negligible (the cut then contributes a single ``I`` term).
"""

from __future__ import annotations

import itertools
from typing import Mapping, Sequence, Union

from repro.cutting.reconstruction import FULL_BASES
from repro.cutting.variants import (
    MEASUREMENT_SETTINGS,
    downstream_init_tuples,
    preparations_for_bases,
    upstream_setting_tuples,
)
from repro.exceptions import CutError

__all__ = [
    "GoldenMap",
    "normalize_golden_map",
    "reduced_bases",
    "reduced_setting_tuples",
    "reduced_init_tuples",
    "spanning_init_tuples",
    "chain_pilot_combos",
    "tree_pilot_combos",
    "tree_reduced_variants",
]

#: cut index -> one golden basis or several
GoldenMap = Mapping[int, Union[str, Sequence[str]]]


def normalize_golden_map(
    num_cuts: int, golden: GoldenMap
) -> dict[int, tuple[str, ...]]:
    """Validate and canonicalise a golden map to ``{cut: (bases...)}``."""
    out: dict[int, tuple[str, ...]] = {}
    for k, value in golden.items():
        if not 0 <= k < num_cuts:
            raise CutError(f"golden cut index {k} out of range (K={num_cuts})")
        bases = (value,) if isinstance(value, str) else tuple(value)
        if not bases:
            raise CutError(f"cut {k} has an empty golden-basis list")
        seen: list[str] = []
        for b in bases:
            if b not in ("X", "Y", "Z"):
                raise CutError(
                    f"golden basis must be X/Y/Z, got {b!r} for cut {k}"
                )
            if b not in seen:
                seen.append(b)
        out[k] = tuple(seen)
    return out


def reduced_bases(num_cuts: int, golden: GoldenMap) -> list[tuple[str, ...]]:
    """Reconstruction basis pool per cut with golden bases removed.

    A regular cut keeps ``(I, X, Y, Z)``; each golden basis removes one
    element (paper: terms ``4^K → 4^{K_r} 3^{K_g}`` for one basis per
    golden cut).  ``I`` always remains, so pools are never empty.
    """
    gm = normalize_golden_map(num_cuts, golden)
    return [
        tuple(b for b in FULL_BASES if b not in gm.get(k, ()))
        for k in range(num_cuts)
    ]


def reduced_setting_tuples(
    num_cuts: int, golden: GoldenMap
) -> list[tuple[str, ...]]:
    """Upstream measurement settings skipping golden bases.

    Every golden basis removes its setting (3 → 2 per single-basis golden
    cut): for X/Y-golden the basis is simply not measured; for Z-golden the
    ``I`` row falls back to another setting's outcome marginal (handled by
    :func:`repro.cutting.reconstruction.build_upstream_tensor`).  If all
    three bases are golden, one setting (Z) is retained purely for the
    ``I``-row marginal.
    """
    gm = normalize_golden_map(num_cuts, golden)
    allowed = []
    for k in range(num_cuts):
        pool = tuple(s for s in MEASUREMENT_SETTINGS if s not in gm.get(k, ()))
        if not pool:
            pool = ("Z",)  # marginal-only cut still needs one measurement
        allowed.append(pool)
    return upstream_setting_tuples(num_cuts, allowed)


def reduced_init_tuples(
    num_cuts: int, golden: GoldenMap
) -> list[tuple[str, ...]]:
    """Downstream preparations skipping golden-basis eigenstates.

    X/Y-golden cuts drop two preparation states each (6 → 4 → 2, the
    paper's circuit-evaluation saving); Z-golden cuts keep ``|0⟩,|1⟩``
    because they still serve the ``I`` component.
    """
    gm = normalize_golden_map(num_cuts, golden)
    allowed = [
        tuple(b for b in FULL_BASES if b not in gm.get(k, ()))
        for k in range(num_cuts)
    ]
    return downstream_init_tuples(num_cuts, allowed)


#: negative-eigenstate codes redundant for *spanning* purposes: the density
#: matrices satisfy ``X− = Z+ + Z− − X+`` and ``Y− = Z+ + Z− − Y+``, so
#: dropping them changes no operator span, only the shot bill.
_REDUNDANT_PREPS = ("X-", "Y-")


def spanning_init_tuples(
    num_cuts: int, golden: "GoldenMap | None" = None
) -> list[tuple[str, ...]]:
    """A minimal preparation-tuple pool spanning the kept operator space.

    Per cut, the states whose density matrices span the same Hermitian
    subspace as the full (or golden-reduced) preparation pool: ``X−`` and
    ``Y−`` are linear combinations of the rest, so the standard 6 states
    shrink to ``(Z+, Z−, X+, Y+)`` — the chain caches' ``4^K`` Hermitian
    framing — and a Y-golden cut to ``(Z+, Z−, X+)``.  Because fragment
    response is *linear* in the entering state, a deviation that vanishes on
    this pool vanishes for every preparation the reconstruction can inject;
    pilot detection and the analytic chain finder therefore probe only
    these contexts (``6^K → 4^K`` pilot variants per entering group).
    """
    gm = normalize_golden_map(num_cuts, golden) if golden else {}
    allowed = [
        tuple(b for b in FULL_BASES if b not in gm.get(k, ()))
        for k in range(num_cuts)
    ]
    pools = [
        tuple(
            code
            for code in preparations_for_bases(b)
            if code not in _REDUNDANT_PREPS
        )
        for b in allowed
    ]
    # pools are never empty: "I" survives any golden map, contributing Z±
    return list(itertools.product(*pools))


def tree_pilot_combos(
    num_prep: int, num_meas: int, golden_prev: "GoldenMap | None" = None
) -> list[tuple[tuple[str, ...], tuple[str, ...]]]:
    """The ``(prep context, setting)`` combos one tree fragment pilots.

    The single definition of the detection sweep's probe pool, shared by
    the analytic finder, the pilot pipeline and the benches so they cannot
    drift apart: the spanning preparation contexts of the *entering* group
    (conditioned on its committed neglect ``golden_prev``) crossed with
    every measurement setting over the fragment's flat exiting cuts — on a
    branching node that covers every child group at once, so one pilot run
    serves all of them.  The root and leaves degenerate naturally (no preps
    → one empty context; no exiting cuts → nothing to pilot, one empty
    setting).
    """
    contexts = (
        spanning_init_tuples(num_prep, golden_prev) if num_prep else [()]
    )
    settings = (
        upstream_setting_tuples(num_meas) if num_meas else [()]
    )
    return [(a, s) for a in contexts for s in settings]


def tree_reduced_variants(
    tree, golden_used: "Sequence[GoldenMap | None]"
) -> tuple[list, list]:
    """The full variant plan of a tree under committed per-group neglect.

    ``golden_used[g]`` is the golden map committed for cut group ``g`` (or
    ``None``).  Returns ``(bases, variants)``:

    * ``bases[g]`` — the reconstruction basis pool per cut of group ``g``
      (full ``(I, X, Y, Z)`` where nothing was neglected);
    * ``variants[i]`` — fragment ``i``'s ``(inits, setting)`` combos: the
      entering group's reduced preparations crossed with the reduced
      settings over the node's *flat* cut layout, each exiting group's map
      re-addressed at its :meth:`~repro.cutting.tree.TreeFragment
      .group_offset`.

    This is the single definition shared by the production pipeline
    (:func:`repro.core.pipeline.cut_and_run_tree`) and the cut searcher's
    cost objective, so the searcher prices exactly the variant set the
    pipeline would run.
    """
    if len(golden_used) != tree.num_groups:
        raise CutError("need one golden map (or None) per cut group")
    bases = [
        reduced_bases(tree.group_sizes[g], gm)
        if gm
        else [tuple(FULL_BASES)] * tree.group_sizes[g]
        for g, gm in enumerate(golden_used)
    ]
    variants = []
    for frag in tree.fragments:
        kp = frag.num_prep
        kn = frag.num_meas
        # per-group golden maps re-addressed in the node's flat prep
        # layout (entering groups concatenated in group order — joint-prep
        # DAG nodes have several)
        gm_prev: dict = {}
        for h in frag.in_groups:
            gm = golden_used[h]
            if gm:
                off = frag.prep_offset(h)
                for k, v in gm.items():
                    gm_prev[off + k] = v
        if not kp:
            inits = [()]
        elif gm_prev:
            inits = reduced_init_tuples(kp, gm_prev)
        else:
            inits = downstream_init_tuples(kp)
        if not kn:
            settings = [()]
        else:
            # per-group golden maps re-addressed in the node's flat cut
            # layout (child groups concatenated in group order)
            flat_gm: dict = {}
            for h in frag.meas_groups:
                gm = golden_used[h]
                if gm:
                    off = frag.group_offset(h)
                    for k, v in gm.items():
                        flat_gm[off + k] = v
            if flat_gm:
                settings = reduced_setting_tuples(kn, flat_gm)
            else:
                settings = upstream_setting_tuples(kn)
        variants.append([(a, s) for a in inits for s in settings])
    return bases, variants


#: chains are linear trees; the chain name remains an alias
chain_pilot_combos = tree_pilot_combos
