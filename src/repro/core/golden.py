"""Analytic (exact) golden-cutting-point finder — Definition 1 of the paper.

A basis ``M*`` is golden at cut ``k*`` when

.. math::

    \\sum_{r_{c(k^*)}} r_{c(k^*)}\\,\\mathrm{tr}(O_{f1} \\rho_{f1}(M^r)) = 0

for *every* value of the remaining indices (other cuts' bases and outcomes,
and — for the distribution workload — every upstream output projector).

The exact finder evaluates the upstream fragment's statevector for every
measurement setting and checks the weighted outcome differences pointwise.
This is the "golden cutting point known a priori" mode of the paper's
experiments; the finite-shot detector lives in
:mod:`repro.core.detection`.
"""

from __future__ import annotations


import numpy as np

from repro.config import ATOL
from repro.cutting.execution import FragmentData, exact_fragment_data
from repro.cutting.fragments import FragmentPair
from repro.exceptions import DetectionError

__all__ = [
    "definition1_deviation",
    "is_golden_analytic",
    "find_golden_bases_analytic",
]


def definition1_deviation(
    data: FragmentData, cut: int, basis: str
) -> float:
    """Max |Σ_r r · p(b₁, r)| over all contexts — 0 iff Definition 1 holds.

    ``data`` may be exact or finite-shot; the returned deviation is the
    worst-case absolute value of the eigenvalue-weighted outcome difference
    on cut ``cut`` in basis ``basis``, maximised over upstream outputs
    ``b₁``, the other cuts' measurement settings, and the other cuts' raw
    outcomes (the strongest, pointwise form of the definition).
    """
    if basis not in ("X", "Y", "Z"):
        raise DetectionError(f"golden candidates are X/Y/Z, got {basis!r}")
    K = data.pair.num_cuts
    if not 0 <= cut < K:
        raise DetectionError(f"cut index {cut} out of range (K={K})")
    worst = 0.0
    relevant = [s for s in data.upstream if s[cut] == basis]
    if not relevant:
        raise DetectionError(
            f"no upstream setting measures cut {cut} in basis {basis}"
        )
    r = np.arange(1 << K)
    lo = np.nonzero(((r >> cut) & 1) == 0)[0]
    hi = lo | (1 << cut)
    for setting in relevant:
        A = data.upstream[setting]  # (2^{n_out}, 2^K)
        delta = A[:, lo] - A[:, hi]
        worst = max(worst, float(np.max(np.abs(delta))))
    return worst


def is_golden_analytic(
    pair: FragmentPair,
    cut: int,
    basis: str,
    atol: float = ATOL,
    data: FragmentData | None = None,
    cache=None,
) -> bool:
    """Exact Definition-1 check for one (cut, basis) pair.

    ``data`` may be supplied to reuse a precomputed
    :func:`~repro.cutting.execution.exact_fragment_data`; otherwise the
    upstream fragment is simulated here (downstream runs are skipped — the
    definition only involves the upstream fragment).  ``cache`` optionally
    shares a :class:`~repro.cutting.cache.FragmentSimCache` with the
    execution stage, so finding golden bases costs no extra simulation.
    """
    if data is None:
        data = exact_fragment_data(pair, inits=_NO_INITS, cache=cache)
    return definition1_deviation(data, cut, basis) <= atol


#: sentinel: skip downstream executions entirely (the analytic finder only
#: needs upstream data).  A single trivial init keeps FragmentData valid.
_NO_INITS: tuple[tuple[str, ...], ...] = ()


def find_golden_bases_analytic(
    pair: FragmentPair, atol: float = ATOL, cache=None
) -> dict[int, list[str]]:
    """Exact golden bases per cut: ``{cut index: [bases...]}``.

    Evaluates every (cut, basis) candidate from one shared upstream body
    simulation (the ``3^K`` settings are cheap axis rotations of the cached
    state — see :mod:`repro.cutting.cache`).  Empty lists mean the cut
    is regular.  Deviations below ``atol`` count as exact zeros — the
    default is the package's analytic tolerance, far below any physical
    amplitude of the circuit families used here.  Pass the pipeline's
    ``cache`` to share the body simulation with fragment execution.
    """
    data = exact_fragment_data(
        pair, inits=_single_trivial_init(pair), cache=cache
    )
    out: dict[int, list[str]] = {}
    for k in range(pair.num_cuts):
        golden = [
            b
            for b in ("X", "Y", "Z")
            if definition1_deviation(data, k, b) <= atol
        ]
        out[k] = golden
    return out


def _single_trivial_init(pair: FragmentPair) -> list[tuple[str, ...]]:
    """Cheapest valid init set (the finder never reads downstream data)."""
    return [("Z+",) * pair.num_cuts]
