"""Analytic (exact) golden-cutting-point finder — Definition 1 of the paper.

A basis ``M*`` is golden at cut ``k*`` when

.. math::

    \\sum_{r_{c(k^*)}} r_{c(k^*)}\\,\\mathrm{tr}(O_{f1} \\rho_{f1}(M^r)) = 0

for *every* value of the remaining indices (other cuts' bases and outcomes,
and — for the distribution workload — every upstream output projector).

The exact finder evaluates the upstream fragment's statevector for every
measurement setting and checks the weighted outcome differences pointwise.
This is the "golden cutting point known a priori" mode of the paper's
experiments; the finite-shot detector lives in
:mod:`repro.core.detection`.
"""

from __future__ import annotations


import numpy as np

from repro.config import ATOL
from repro.cutting.execution import FragmentData, exact_fragment_data
from repro.cutting.fragments import FragmentPair
from repro.exceptions import DetectionError

__all__ = [
    "chain_definition1_deviation",
    "definition1_deviation",
    "find_chain_golden_bases_analytic",
    "find_golden_bases_analytic",
    "find_tree_golden_bases_analytic",
    "is_golden_analytic",
    "iter_chain_cut_deltas",
    "select_all_golden",
    "tree_definition1_deviation",
]


def definition1_deviation(
    data: FragmentData, cut: int, basis: str
) -> float:
    """Max |Σ_r r · p(b₁, r)| over all contexts — 0 iff Definition 1 holds.

    ``data`` may be exact or finite-shot; the returned deviation is the
    worst-case absolute value of the eigenvalue-weighted outcome difference
    on cut ``cut`` in basis ``basis``, maximised over upstream outputs
    ``b₁``, the other cuts' measurement settings, and the other cuts' raw
    outcomes (the strongest, pointwise form of the definition).
    """
    if basis not in ("X", "Y", "Z"):
        raise DetectionError(f"golden candidates are X/Y/Z, got {basis!r}")
    K = data.pair.num_cuts
    if not 0 <= cut < K:
        raise DetectionError(f"cut index {cut} out of range (K={K})")
    worst = 0.0
    relevant = [s for s in data.upstream if s[cut] == basis]
    if not relevant:
        raise DetectionError(
            f"no upstream setting measures cut {cut} in basis {basis}"
        )
    r = np.arange(1 << K)
    lo = np.nonzero(((r >> cut) & 1) == 0)[0]
    hi = lo | (1 << cut)
    for setting in relevant:
        A = data.upstream[setting]  # (2^{n_out}, 2^K)
        delta = A[:, lo] - A[:, hi]
        worst = max(worst, float(np.max(np.abs(delta))))
    return worst


def is_golden_analytic(
    pair: FragmentPair,
    cut: int,
    basis: str,
    atol: float = ATOL,
    data: FragmentData | None = None,
    cache=None,
) -> bool:
    """Exact Definition-1 check for one (cut, basis) pair.

    ``data`` may be supplied to reuse a precomputed
    :func:`~repro.cutting.execution.exact_fragment_data`; otherwise the
    upstream fragment is simulated here (downstream runs are skipped — the
    definition only involves the upstream fragment).  ``cache`` optionally
    shares a :class:`~repro.cutting.cache.FragmentSimCache` with the
    execution stage, so finding golden bases costs no extra simulation.
    """
    if data is None:
        data = exact_fragment_data(pair, inits=_NO_INITS, cache=cache)
    return definition1_deviation(data, cut, basis) <= atol


#: sentinel: skip downstream executions entirely (the analytic finder only
#: needs upstream data).  A single trivial init keeps FragmentData valid.
_NO_INITS: tuple[tuple[str, ...], ...] = ()


def find_golden_bases_analytic(
    pair: FragmentPair, atol: float = ATOL, cache=None
) -> dict[int, list[str]]:
    """Exact golden bases per cut: ``{cut index: [bases...]}``.

    Evaluates every (cut, basis) candidate from one shared upstream body
    simulation (the ``3^K`` settings are cheap axis rotations of the cached
    state — see :mod:`repro.cutting.cache`).  Empty lists mean the cut
    is regular.  Deviations below ``atol`` count as exact zeros — the
    default is the package's analytic tolerance, far below any physical
    amplitude of the circuit families used here.  Pass the pipeline's
    ``cache`` to share the body simulation with fragment execution.
    """
    data = exact_fragment_data(
        pair, inits=_single_trivial_init(pair), cache=cache
    )
    out: dict[int, list[str]] = {}
    for k in range(pair.num_cuts):
        golden = [
            b
            for b in ("X", "Y", "Z")
            if definition1_deviation(data, k, b) <= atol
        ]
        out[k] = golden
    return out


def _single_trivial_init(pair: FragmentPair) -> list[tuple[str, ...]]:
    """Cheapest valid init set (the finder never reads downstream data)."""
    return [("Z+",) * pair.num_cuts]


# --------------------------------------------------------------------------
# chain generalisation: Definition 1 per cut group
# --------------------------------------------------------------------------


def iter_chain_cut_deltas(records, K: int, cut: int, basis: str):
    """Yield ``(delta, mass)`` arrays per relevant variant of one candidate.

    The shared kernel of the analytic chain deviation and the chain
    detector's z-statistic: for every ``(inits, setting)`` record whose
    setting measures ``cut`` in ``basis``, the eigenvalue-weighted outcome
    differences ``A[:, r_cut=0] − A[:, r_cut=1]`` and the corresponding
    total masses, over all ``(b_out, r_{-cut})`` cells.  Keeping both
    consumers on one kernel pins them to the same record layout and cut-bit
    convention.
    """
    if basis not in ("X", "Y", "Z"):
        raise DetectionError(f"golden candidates are X/Y/Z, got {basis!r}")
    if not 0 <= cut < K:
        raise DetectionError(f"cut index {cut} out of range (K={K})")
    relevant = [combo for combo in records if combo[1][cut] == basis]
    if not relevant:
        raise DetectionError(
            f"no variant measures cut {cut} in basis {basis}"
        )
    r = np.arange(1 << K)
    lo = np.nonzero(((r >> cut) & 1) == 0)[0]
    hi = lo | (1 << cut)
    for combo in relevant:
        A = records[combo]  # (2^{n_out}, 2^{K})
        yield A[:, lo] - A[:, hi], A[:, lo] + A[:, hi]


def _tree_group_frame(data, group: int, cut: int):
    """Resolve one tree cut-group candidate into its source node's frame.

    Returns ``(records, K_flat, flat_cut)``: the source fragment's records,
    its flat exiting cut count and the candidate cut's position in the flat
    layout (the group's offset plus the in-group cut index).  On a chain
    the source node *is* the group and the offset is zero, so this
    degenerates to the pre-tree bookkeeping exactly.
    """
    tree = data.tree
    if not 0 <= group < tree.num_groups:
        raise DetectionError(
            f"cut group {group} out of range ({tree.num_groups} groups)"
        )
    if not 0 <= cut < tree.group_sizes[group]:
        raise DetectionError(
            f"cut index {cut} out of range (K={tree.group_sizes[group]})"
        )
    src = tree.group_src[group]
    frag = tree.fragments[src]
    return data.records[src], frag.num_meas, frag.group_offset(group) + cut


def tree_definition1_deviation(
    data, group: int, cut: int, basis: str
) -> float:
    """Max |Σ_r r · p| over all contexts of one tree cut group — the
    per-group generalisation of :func:`definition1_deviation`.

    ``data`` is a :class:`~repro.cutting.execution.TreeFragmentData` (exact
    or finite-shot); the tested fragment is the group's **source node**
    (``data.records[tree.group_src[group]]``), and the candidate cut is
    addressed within that node's *flat* cut layout — at a branching node
    the contexts therefore also include the sibling groups' settings and
    raw outcomes.  Interior fragments are additionally downstream of their
    entering group, so the deviation is maximised over the **preparation
    contexts** entering from the parent in addition to the pair notion's
    contexts (outputs ``b_out``, the node's other measurement settings, and
    their raw outcomes).  Fragment response is linear in the entering
    state, so a deviation of zero on a context pool spanning the parent
    group's kept operator space (see
    :func:`repro.core.neglect.spanning_init_tuples`) certifies Definition 1
    for *every* preparation the reconstruction can inject there.
    """
    records, K_flat, flat_cut = _tree_group_frame(data, group, cut)
    worst = 0.0
    for delta, _ in iter_chain_cut_deltas(records, K_flat, flat_cut, basis):
        worst = max(worst, float(np.max(np.abs(delta))))
    return worst


def chain_definition1_deviation(
    data, group: int, cut: int, basis: str
) -> float:
    """Chain alias of :func:`tree_definition1_deviation` (linear tree)."""
    return tree_definition1_deviation(data, group, cut, basis)


def select_all_golden(found: "dict[int, list[str]]") -> dict[int, tuple[str, ...]]:
    """Default selection policy: neglect every analytically-found basis."""
    return {k: tuple(bases) for k, bases in found.items() if bases}


def find_tree_golden_bases_analytic(
    tree, atol: float = ATOL, pool=None, select=None
) -> "tuple[list[dict[int, list[str]]], list[dict | None]]":
    """Exact golden bases per cut group of a fragment tree.

    Sweeps the tree **root to leaves** (a BFS in topological node order —
    on a chain this is exactly the left-to-right sweep).  Each node with
    exiting cuts is evaluated over every ``(prep context, setting)`` combo,
    where the prep contexts span exactly the operator space its *parent*
    group still injects after its own committed neglect: a basis kept at
    the parent widens the context pool, a neglected one shrinks it.  A
    joint-prep DAG node conditions on the flat union of *all* entering
    groups' committed maps (offset by :meth:`TreeFragment.prep_offset`).  That
    conditioning is what makes e.g. a real-amplitude tree jointly Y-golden
    — a fragment fed a ``Y`` row is *not* Y-golden pointwise, but once the
    parent group neglects ``Y`` that context never arises.  The sweep must
    therefore commit to a selection per group before descending:
    ``select`` maps ``{cut: [found bases]}`` to the golden map actually
    neglected (default: neglect everything found, the maximal reduction).
    A branching node verdicts all of its child groups from the same
    evaluation — its settings run over the flat cut union, so each group's
    deviation is maximised over the sibling groups' settings and outcomes
    too.

    Returns ``(found, selected)``: per cut group (spec order), the bases
    passing Definition 1 on the conditioned contexts, and the golden map
    the sweep committed to (``None`` where nothing was selected).  ``pool``
    may share the pipeline's ideal
    :class:`~repro.cutting.cache.TreeCachePool`, so the finder costs no
    simulation beyond the N cached bodies.
    """
    from repro.core.neglect import tree_pilot_combos
    from repro.cutting.execution import exact_tree_data

    if select is None:
        select = select_all_golden
    if pool is None:
        from repro.cutting.cache import TreeCachePool, TreeFragmentSimCache

        pool = TreeCachePool(
            tree, [TreeFragmentSimCache(f) for f in tree.fragments]
        )
    found_per_group: "list[dict[int, list[str]] | None]" = (
        [None] * tree.num_groups
    )
    selected: "list[dict | None]" = [None] * tree.num_groups
    for i, frag in enumerate(tree.fragments):
        if not frag.num_meas:
            continue  # leaves have nothing to test
        prev: dict = {}
        for h in frag.in_groups:
            sel_h = selected[h]
            if sel_h:
                off = frag.prep_offset(h)
                for k, v in sel_h.items():
                    prev[off + k] = v
        combos = tree_pilot_combos(
            frag.num_prep, frag.num_meas, prev or None
        )
        variants: "list[list | None]" = [None] * tree.num_fragments
        variants[i] = combos
        data = exact_tree_data(tree, variants=variants, pool=pool)
        for g in frag.meas_groups:
            found: dict[int, list[str]] = {}
            for k in range(tree.group_sizes[g]):
                found[k] = [
                    b
                    for b in ("X", "Y", "Z")
                    if tree_definition1_deviation(data, g, k, b) <= atol
                ]
            found_per_group[g] = found
            sel = select(found)
            selected[g] = dict(sel) if sel else None
    return found_per_group, selected


def find_chain_golden_bases_analytic(
    chain, atol: float = ATOL, pool=None, select=None
) -> "tuple[list[dict[int, list[str]]], list[dict | None]]":
    """Chain alias of :func:`find_tree_golden_bases_analytic`.

    On a linear tree the root-to-leaves BFS *is* the left-to-right chain
    sweep (fragment ``g`` verdicts group ``g``, conditioned on group
    ``g − 1``'s committed neglect), so the chain entry point is a thin
    wrapper over the single tree engine.
    """
    return find_tree_golden_bases_analytic(
        chain, atol=atol, pool=pool, select=select
    )
