"""One-call golden-cutting pipeline: cut, execute, (detect,) reconstruct.

:func:`cut_and_run` is the library's main entry point, covering the four
operating modes of the reproduction:

* ``golden="off"`` — the standard CutQC-style baseline (paper ref [18]);
* ``golden="known"`` — the paper's experimental mode ("we assumed the golden
  cutting point was known a priori", §III-B) with ``golden_map`` supplied;
* ``golden="analytic"`` — find golden bases exactly by simulating the
  upstream fragment (cheap: 3^K small statevector runs);
* ``golden="detect"`` — the paper's §IV future-work mode: spend a pilot
  budget on upstream measurements, run the hypothesis-test detector, then
  execute the reduced variant set.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.backends.base import Backend
from repro.config import DEFAULT_ALPHA
from repro.core.costs import CostReport, cost_report
from repro.core.detection import (
    detect_golden_bases,
    detect_tree_golden_bases,
)
from repro.core.golden import find_golden_bases_analytic
from repro.core.neglect import (
    normalize_golden_map,
    reduced_bases,
    reduced_init_tuples,
    reduced_setting_tuples,
    tree_reduced_variants,
)
from repro.circuits.circuit import Circuit
from repro.cutting.cache import FragmentSimCache
from repro.cutting.cut import CutSpec, find_cuts
from repro.cutting.execution import FragmentData, run_fragments
from repro.cutting.fragments import FragmentPair, bipartition
from repro.cutting.reconstruction import reconstruct_distribution
from repro.exceptions import CutError
from repro.utils.rng import as_generator, derive_rng
from repro.utils.timing import Stopwatch

__all__ = [
    "ChainRunResult",
    "CutRunResult",
    "TreeRunResult",
    "cut_and_run",
    "cut_and_run_chain",
    "cut_and_run_tree",
]

#: preference order when several bases are golden at one cut — X/Y save
#: downstream circuit executions, Z only saves upstream settings and terms.
_BASIS_PRIORITY = ("Y", "X", "Z")


@dataclass
class CutRunResult:
    """Everything produced by one :func:`cut_and_run` invocation."""

    #: reconstructed output distribution (little-endian over the full register)
    probabilities: np.ndarray
    #: the bipartition used
    pair: FragmentPair
    #: golden bases actually exploited, cut index → basis
    golden_used: dict[int, str]
    #: raw fragment measurement data
    data: FragmentData
    #: variant/term/shot accounting
    costs: CostReport
    #: modelled device seconds (fragment jobs + pilot, if any)
    device_seconds: float
    #: real seconds spent in classical reconstruction
    reconstruction_seconds: float
    #: pilot-detection metadata (empty unless golden="detect")
    detection: list = field(default_factory=list)
    #: reconstruction basis pools actually used (None = full {I,X,Y,Z}^K)
    bases: "list[tuple[str, ...]] | None" = None

    @property
    def total_executions(self) -> int:
        return self.costs.total_executions

    def expectation(self, diagonal: np.ndarray) -> float:
        """Expectation of a diagonal observable under the reconstruction."""
        return float(np.dot(self.probabilities, np.asarray(diagonal)))

    def variance(self) -> np.ndarray:
        """Delta-method shot-noise variance of each reconstructed entry."""
        from repro.cutting.variance import reconstruction_variance

        return reconstruction_variance(self.data, bases=self.bases)

    def predicted_stddev_tv(self) -> float:
        """Scalar shot-noise summary (see :mod:`repro.cutting.variance`)."""
        from repro.cutting.variance import predicted_stddev_tv

        return predicted_stddev_tv(self.data, bases=self.bases)


@dataclass
class TreeRunResult:
    """Everything produced by one :func:`cut_and_run_tree` invocation.

    ``ChainRunResult`` is an alias — a chain is a linear tree and
    :func:`cut_and_run_chain` runs through the same engine.
    """

    #: reconstructed output distribution — a dense little-endian vector, or
    #: a :class:`~repro.cutting.sparse.SparseDistribution` when ``prune=``
    #: was set on the run
    probabilities: np.ndarray
    #: the fragment tree used
    tree: object
    #: golden maps actually exploited, one per cut group (spec order)
    golden_used: list
    #: raw tree fragment measurement data
    data: object
    #: per-fragment variant counts and total executions
    costs: dict
    #: modelled device seconds
    device_seconds: float
    #: real seconds spent in classical reconstruction
    reconstruction_seconds: float
    #: per-group reconstruction basis pools (None = full {I,X,Y,Z} everywhere)
    bases: "list | None" = None
    #: pilot-detection metadata, one list of
    #: :class:`~repro.core.detection.GoldenDetectionResult` per cut group
    #: (empty unless golden="detect")
    detection: list = field(default_factory=list)
    #: accumulated L1 bound on the mass discarded by pruning (0.0 on the
    #: dense path — see :mod:`repro.cutting.sparse`)
    prune_bound: float = 0.0
    #: rigorous TV widening for basis rows graceful degradation demoted
    #: after permanent backend failures (0.0 on a healthy run — see
    #: :func:`~repro.cutting.resilience.degradation_tv_penalty`)
    degradation_bound: float = 0.0
    #: exhausted variants that were demoted, as ``(fragment, (inits,
    #: setting))`` pairs (empty on a healthy run)
    degraded: list = field(default_factory=list)

    @property
    def chain(self):
        """Alias of :attr:`tree` for chain-shaped runs."""
        return self.tree

    @property
    def total_executions(self) -> int:
        return self.costs["total_executions"]

    @property
    def pilot_executions(self) -> int:
        """Pilot shot bill of the detection sweep (0 without a pilot)."""
        return self.costs.get("pilot_executions", 0)

    def expectation(self, diagonal: np.ndarray) -> float:
        """Expectation of a diagonal observable under the reconstruction."""
        from repro.cutting.sparse import SparseDistribution

        diagonal = np.asarray(diagonal)
        if isinstance(self.probabilities, SparseDistribution):
            return float(
                np.dot(
                    self.probabilities.values,
                    diagonal[self.probabilities.indices],
                )
            )
        return float(np.dot(self.probabilities, diagonal))

    def variance(self) -> np.ndarray:
        """Delta-method shot-noise variance of each reconstructed entry."""
        from repro.cutting.variance import tree_reconstruction_variance

        return tree_reconstruction_variance(self.data, bases=self.bases)

    def predicted_stddev_tv(self) -> float:
        """Scalar shot-noise summary (see :mod:`repro.cutting.variance`)."""
        from repro.cutting.variance import tree_predicted_stddev_tv

        return tree_predicted_stddev_tv(self.data, bases=self.bases)

    def tv_bound(self) -> float:
        """Predicted TV error: shot noise + pruning loss + degradation.

        ``predicted_stddev_tv() + prune_bound + degradation_bound`` — the
        delta-method sampling stddev, the rigorous L1 bound on everything
        the ``prune=`` policy discarded (see :mod:`repro.cutting.sparse`),
        and the superoperator-norm penalty for basis rows graceful
        degradation demoted after permanent backend failures (see
        :mod:`repro.cutting.resilience`).  The variance model densifies
        intermediate factors, so this is a small-``n`` diagnostic; at 20+
        qubits report the structural bounds directly (with exact fragment
        data the sampling term is zero).
        """
        from repro.cutting.variance import tree_tv_bound

        return tree_tv_bound(
            self.data,
            bases=self.bases,
            prune_bound=self.prune_bound,
            degradation_bound=self.degradation_bound,
        )


#: chains are linear trees; the chain result type is the tree result type
ChainRunResult = TreeRunResult


def _resolve_tree_specs(
    circuit: Circuit,
    specs,
    cuts,
    max_fragment_qubits: "int | None",
    num_fragments: "int | None",
    max_cuts: "int | None",
    search_objective: str,
    topology: str,
):
    """Normalise the multi-fragment entry points' cut arguments.

    ``cuts`` aliases ``specs``; a bare :class:`CutSpec` becomes a one-group
    list; ``None`` triggers the automatic searcher with the same default
    width budget as :func:`cut_and_run` (``ceil(n/2) + 1``).
    """
    if specs is not None and cuts is not None:
        raise CutError("pass the cut specs once: cuts= is an alias of specs=")
    if specs is None:
        specs = cuts
    if specs is None:
        from repro.cutting.search import find_cut_specs

        budget = max_fragment_qubits or (circuit.num_qubits + 1) // 2 + 1
        return find_cut_specs(
            circuit,
            budget,
            num_fragments=num_fragments,
            max_cuts=max_cuts,
            objective=search_objective,
            topology=topology,
        )
    if isinstance(specs, CutSpec):
        return [specs]
    return list(specs)


def cut_and_run_tree(
    circuit: Circuit,
    backend: Backend,
    specs=None,
    shots: int = 1000,
    golden: str = "off",
    golden_maps: "list | None" = None,
    postprocess: str = "clip",
    seed: "int | np.random.Generator | None" = None,
    alpha: float = DEFAULT_ALPHA,
    pilot_shots: int | None = None,
    exploit_all: bool = False,
    prune=None,
    dtype=np.float64,
    retry=None,
    on_exhausted: str = "raise",
    checkpoint=None,
    ledger=None,
    cuts=None,
    max_fragment_qubits: "int | None" = None,
    num_fragments: "int | None" = None,
    max_cuts: "int | None" = None,
    search_objective: str = "width",
    plan=None,
    executor: str = "serial",
    max_workers: "int | None" = None,
    runner=None,
    fragment_store=None,
    _tree=None,
) -> TreeRunResult:
    """Cut ``circuit`` into a fragment tree, run it, reconstruct.

    The topology-general analogue of :func:`cut_and_run`: ``specs`` lists
    one :class:`~repro.cutting.cut.CutSpec` per cut group (original-circuit
    coordinates, see :func:`repro.cutting.tree.partition_tree`; branched
    topologies welcome).  ``cuts`` is an alias for ``specs`` (matching
    :func:`cut_and_run`); leaving both ``None`` triggers automatic cut
    search (:func:`repro.cutting.search.find_cut_specs`) constrained by
    ``max_fragment_qubits`` (default ``ceil(n/2) + 1``), ``num_fragments``
    and ``max_cuts``, optimising ``search_objective`` (``"width"`` or
    ``"cost"``).  A bare :class:`~repro.cutting.cut.CutSpec` is accepted
    as a one-group tree.  Golden modes, per cut group:

    * ``"off"`` runs the full CutQC-style variant products;
    * ``"known"`` takes ``golden_maps`` — one
      :data:`~repro.core.neglect.GoldenMap` (or ``None``) per cut group —
      and neglects those bases group by group: each fragment then runs the
      reduced ``inits(entering group) × settings(flat exiting cuts)``
      product and the reconstruction drops the corresponding rows of each
      group's factors;
    * ``"analytic"`` finds each group's golden bases exactly with
      :func:`~repro.core.golden.find_tree_golden_bases_analytic` (a
      root-to-leaves BFS whose interior-fragment contexts honour the
      *parent* group's committed neglect), selected per group by the same
      policy as :func:`cut_and_run` (``exploit_all``);
    * ``"detect"`` spends ``pilot_shots`` per pilot variant (default
      ``max(100, shots // 4)``) on a sequential root-to-leaves detection
      sweep: each node with exiting cuts measures its spanning prep
      contexts × full flat settings, the hypothesis-test detector
      (:func:`~repro.core.detection.detect_tree_golden_bases`, level
      ``alpha`` per candidate) rules on each of the node's child groups,
      and the verdicts condition the children's contexts.  A branching
      node's single pilot serves all of its child groups; leaves have no
      exiting cuts and never run a pilot.

    One cache pool (:meth:`~repro.backends.base.Backend.make_tree_cache_pool`)
    serves the pilot sweep *and* the production run, so each fragment body
    is transpiled/simulated exactly once — an N-node tree costs N body
    transpiles no matter the mode.

    ``prune`` (a :class:`~repro.cutting.sparse.PrunePolicy`, e.g.
    ``threshold(1e-4)`` or ``top_k(256)``) switches the reconstruction to
    the sparse path: the result's ``probabilities`` is then a
    :class:`~repro.cutting.sparse.SparseDistribution` and ``prune_bound``
    carries the accumulated L1 bound on the discarded mass, so
    :meth:`TreeRunResult.tv_bound` = sampling stddev + prune bound.
    ``dtype=np.float32`` is the memory-halving fast path (probability
    records and contraction only — simulation and sampling stay exact, so
    RNG streams are unchanged); the float64 default is bit-identical to
    the pre-knob pipeline.

    ``specs`` may describe a fragment *DAG* — several groups entering one
    fragment (joint preparations) are legal and route through the same
    pipeline.  ``plan`` controls the reconstruction's contraction order
    (see :func:`~repro.cutting.reconstruction.reconstruct_tree_distribution`):
    ``None`` keeps the bit-identical tree kernels on trees and searches a
    pairwise :class:`~repro.cutting.contraction.ContractionPlan`
    automatically on DAGs; a method string (``"auto"``/``"fixed"``/
    ``"greedy"``/``"dp"``) or an explicit plan forces the network path.

    Resilience knobs (see :mod:`repro.cutting.resilience`):

    * ``retry`` — a :class:`~repro.cutting.resilience.RetryPolicy`.
      Transient backend faults are retried with backoff; the healthy path
      stays bit-identical to the retry-free run (same RNG streams, same
      counts).  Attempts land in ``ledger`` (an
      :class:`~repro.cutting.resilience.AttemptLedger`; one is created
      when omitted) and its summary in ``costs["retry"]``.
    * ``on_exhausted="degrade"`` — a permanently dead variant family does
      not abort the run: its basis rows are demoted out of the
      reconstruction pools (:func:`~repro.cutting.resilience
      .plan_degradation`), the result records the demotions and carries
      ``degradation_bound``, and :meth:`TreeRunResult.tv_bound` widens
      accordingly — a degraded answer is still a bounded answer.
      ``costs["reallocation"]`` reports the boosted per-variant budget
      that would keep total device time flat on a re-run.
    * ``checkpoint`` — a :class:`~repro.cutting.io.TreeCheckpoint`;
      completed fragments persist as they finish, and a resumed run
      splices them in (bit-identically) instead of re-executing.

    Execution-scaling knobs (see :mod:`repro.parallel`):

    * ``executor`` — ``"serial"`` (default, the historical in-process
      path), ``"thread"`` or ``"process"``.  Non-serial modes route the
      production run through :func:`~repro.parallel.executor
      .run_tree_fragments_parallel` with ``mode=executor`` and require
      ``backend`` to be a **zero-arg factory** (a backend class,
      module-level function or ``functools.partial`` — picklable for
      ``"process"``); pilot sweeps still run on one probe instance
      (they are sequential by construction).  ``checkpoint`` requires
      ``executor="serial"``.  ``max_workers`` caps the pool.
    * ``runner`` — a drop-in replacement for
      :func:`~repro.cutting.execution.run_tree_fragments` used for the
      pilot *and* (serial) production calls; this is how
      :class:`~repro.parallel.service.CutRunService` routes requests
      through its coalescer.
    * ``fragment_store`` — a :class:`~repro.cutting.fingerprint
      .FragmentStore`; the cache pool is drawn from the store's
      content-addressed warmed caches, so repeated runs over circuits
      sharing fragment bodies transpile each distinct body once per
      store, not once per call.
    """
    from repro.cutting.cache import TreeCachePool, TreeFragmentSimCache
    from repro.cutting.execution import run_tree_fragments
    from repro.cutting.reconstruction import reconstruct_tree_distribution
    from repro.cutting.shots import (
        allocate_tree_pilot_shots,
        allocate_tree_shots,
    )
    from repro.cutting.tree import partition_tree
    from repro.core.golden import find_tree_golden_bases_analytic

    rng = as_generator(seed)
    if executor not in ("serial", "thread", "process"):
        raise CutError(
            f'executor must be "serial"/"thread"/"process", got {executor!r}'
        )
    backend_factory = None
    if executor != "serial":
        if not callable(backend):
            raise CutError(
                f'executor="{executor}" needs a zero-arg backend factory, '
                f"got a {type(backend).__name__} instance"
            )
        if checkpoint is not None:
            raise CutError('checkpoint requires executor="serial"')
        backend_factory = backend
        backend = backend_factory()
    run = runner if runner is not None else run_tree_fragments
    if _tree is not None:
        tree = _tree
    else:
        specs = _resolve_tree_specs(
            circuit,
            specs,
            cuts,
            max_fragment_qubits,
            num_fragments,
            max_cuts,
            search_objective,
            topology="tree",
        )
        tree = partition_tree(circuit, specs)
    if fragment_store is not None:
        pool = fragment_store.pool_for(tree, backend, dtype)
    else:
        pool = backend.make_tree_cache_pool(tree, dtype=dtype)

    if retry is not None and ledger is None:
        from repro.cutting.resilience import AttemptLedger

        ledger = AttemptLedger()

    detection: list = []
    pilot_report: "dict | None" = None
    pilot_seconds = 0.0

    if golden == "off":
        golden_used = [None] * tree.num_groups
    elif golden == "known":
        if golden_maps is None:
            raise CutError('golden="known" requires golden_maps')
        if len(golden_maps) != tree.num_groups:
            raise CutError("need one golden map (or None) per cut group")
        golden_used = [
            dict(normalize_golden_map(tree.group_sizes[g], gm)) if gm else None
            for g, gm in enumerate(golden_maps)
        ]
    elif golden == "analytic":
        # The finder works on *ideal* states: reuse the backend's pool when
        # it is an ideal one, otherwise build a finder-only ideal pool (no
        # transpiles — the noisy production pool is untouched).
        if pool is not None and all(
            isinstance(c, TreeFragmentSimCache) for c in pool
        ):
            finder_pool = pool
        else:
            finder_pool = TreeCachePool(
                tree, [TreeFragmentSimCache(f) for f in tree.fragments]
            )
        _, selected = find_tree_golden_bases_analytic(
            tree,
            pool=finder_pool,
            select=lambda found: _select_golden(found, exploit_all),
        )
        golden_used = [sel if sel else None for sel in selected]
    elif golden == "detect":
        from repro.core.neglect import tree_pilot_combos

        pilot_counts = [0] * tree.num_fragments
        pilot: "int | None" = None
        golden_used = [None] * tree.num_groups
        detection = [[] for _ in range(tree.num_groups)]
        for i, frag in enumerate(tree.fragments):
            if not frag.num_meas:
                continue  # leaves have nothing to pilot
            # entering golden maps re-addressed in the node's flat prep
            # layout (joint-prep DAG nodes merge several groups' maps)
            gm_prev: dict = {}
            for h in frag.in_groups:
                gm = golden_used[h]
                if gm:
                    off = frag.prep_offset(h)
                    for k, v in gm.items():
                        gm_prev[off + k] = v
            combos = tree_pilot_combos(
                frag.num_prep,
                frag.num_meas,
                gm_prev or None,
            )
            pilot_counts[i] = len(combos)
            if pilot is None:
                # the sweep is sequential, so the per-variant pilot budget
                # is fixed before the root runs
                pilot, _ = allocate_tree_pilot_shots(
                    pilot_counts,
                    shots_per_variant=shots,
                    pilot_shots=pilot_shots,
                )
            pilot_variants: list = [None] * tree.num_fragments
            pilot_variants[i] = combos
            pilot_data = run(
                tree,
                backend,
                shots=pilot,
                variants=pilot_variants,
                seed=derive_rng(rng, 0x70 + i),
                pool=pool,
                retry=retry,
                ledger=ledger,
            )
            pilot_seconds += pilot_data.modeled_seconds
            # one pilot verdicts every child group of this node
            for g in frag.meas_groups:
                results = detect_tree_golden_bases(pilot_data, g, alpha=alpha)
                detection[g] = results
                found: dict[int, list[str]] = {
                    k: [] for k in range(tree.group_sizes[g])
                }
                for res in results:
                    if res.is_golden:
                        found[res.cut].append(res.basis)
                golden_used[g] = _select_golden(found, exploit_all) or None
        _, pilot_report = allocate_tree_pilot_shots(
            pilot_counts, shots_per_variant=shots, pilot_shots=pilot
        )
    else:
        raise CutError(
            'golden must be "off"/"known"/"analytic"/"detect" for trees, '
            f"got {golden!r}"
        )

    if any(golden_used):
        bases, variants = tree_reduced_variants(tree, golden_used)
    else:
        bases = None
        variants = None

    if backend_factory is not None:
        from repro.parallel.executor import run_tree_fragments_parallel

        data = run_tree_fragments_parallel(
            tree,
            backend_factory,
            shots,
            variants=variants,
            seed=derive_rng(rng, 0x53),
            max_workers=max_workers,
            mode=executor,
            dtype=dtype,
            retry=retry,
            ledger=ledger,
            on_exhausted=on_exhausted,
        )
    else:
        data = run(
            tree,
            backend,
            shots=shots,
            variants=variants,
            seed=derive_rng(rng, 0x53),
            pool=pool,
            dtype=dtype,
            retry=retry,
            ledger=ledger,
            on_exhausted=on_exhausted,
            checkpoint=checkpoint,
        )

    degraded_sites = list(data.metadata.get("degraded_sites", []))
    degradation_bound = 0.0
    demotions: dict = {}
    if degraded_sites:
        from repro.cutting.resilience import plan_degradation

        pools = (
            [list(group) for group in bases]
            if bases is not None
            else [[("I", "X", "Y", "Z")] * k for k in tree.group_sizes]
        )
        bases, demotions, degradation_bound = plan_degradation(
            tree, data.records, pools, degraded_sites
        )

    with Stopwatch() as sw:
        probs = reconstruct_tree_distribution(
            data,
            bases=bases,
            postprocess=postprocess,
            prune=prune,
            dtype=dtype,
            plan=plan,
        )

    counts = [len(r) for r in data.records]
    _, costs = allocate_tree_shots(counts, shots_per_variant=shots)
    if pilot_report is not None:
        costs = {**costs, **pilot_report}
    if degraded_sites:
        from repro.cutting.shots import reallocate_shots

        failed = [0] * tree.num_fragments
        for i, _ in degraded_sites:
            failed[i] += 1
        executed = [
            len(data.records[i]) + failed[i] for i in range(tree.num_fragments)
        ]
        _, realloc = reallocate_shots(executed, failed, shots)
        costs = {
            **costs,
            "degraded_variants": len(degraded_sites),
            "demoted_bases": {
                f"group{g}/cut{c}": list(letters)
                for (g, c), letters in sorted(demotions.items())
            },
            "reallocation": realloc,
        }
    if ledger is not None:
        costs = {**costs, "retry": ledger.summary()}
    return TreeRunResult(
        probabilities=probs,
        tree=tree,
        golden_used=golden_used,
        data=data,
        costs=costs,
        device_seconds=data.modeled_seconds + pilot_seconds,
        reconstruction_seconds=sw.elapsed,
        bases=bases,
        detection=detection,
        prune_bound=float(getattr(probs, "prune_bound", 0.0)),
        degradation_bound=degradation_bound,
        degraded=degraded_sites,
    )


def cut_and_run_chain(
    circuit: Circuit,
    backend: Backend,
    specs=None,
    shots: int = 1000,
    golden: str = "off",
    golden_maps: "list | None" = None,
    postprocess: str = "clip",
    seed: "int | np.random.Generator | None" = None,
    alpha: float = DEFAULT_ALPHA,
    pilot_shots: int | None = None,
    exploit_all: bool = False,
    prune=None,
    dtype=np.float64,
    retry=None,
    on_exhausted: str = "raise",
    checkpoint=None,
    ledger=None,
    cuts=None,
    max_fragment_qubits: "int | None" = None,
    num_fragments: "int | None" = None,
    max_cuts: "int | None" = None,
    search_objective: str = "width",
) -> TreeRunResult:
    """Cut ``circuit`` into a fragment chain, run it, reconstruct.

    Thin wrapper over :func:`cut_and_run_tree`: the specs are partitioned
    with :func:`~repro.cutting.chain.partition_chain` (which enforces the
    linear shape and points branched specs to ``partition_tree``) and the
    run proceeds on the single tree engine — on a chain the root-to-leaves
    BFS *is* the left-to-right sweep, per-fragment RNG streams included, so
    results are bit-identical to the pre-tree chain pipeline.  ``cuts`` /
    ``max_fragment_qubits`` / ``num_fragments`` / ``max_cuts`` /
    ``search_objective`` mirror :func:`cut_and_run_tree`'s auto mode, with
    the search constrained to linear topologies
    (``find_cut_specs(..., topology="chain")``).
    """
    from repro.cutting.chain import partition_chain
    from repro.cutting.execution import ChainFragmentData

    specs = _resolve_tree_specs(
        circuit,
        specs,
        cuts,
        max_fragment_qubits,
        num_fragments,
        max_cuts,
        search_objective,
        topology="chain",
    )
    chain = partition_chain(circuit, specs)
    res = cut_and_run_tree(
        circuit,
        backend,
        specs,
        shots=shots,
        golden=golden,
        golden_maps=golden_maps,
        postprocess=postprocess,
        seed=seed,
        alpha=alpha,
        pilot_shots=pilot_shots,
        exploit_all=exploit_all,
        prune=prune,
        dtype=dtype,
        retry=retry,
        on_exhausted=on_exhausted,
        checkpoint=checkpoint,
        ledger=ledger,
        _tree=chain,
    )
    res.data = ChainFragmentData._from_tree_data(res.data)
    return res


def _select_golden(
    found: dict[int, list[str]], exploit_all: bool
) -> dict[int, "str | tuple[str, ...]"]:
    """Choose which detected golden bases to exploit.

    Default (``exploit_all=False``) picks one basis per cut in the
    paper's spirit, preferring bases with downstream savings; with
    ``exploit_all=True`` every detected basis is neglected (multi-basis
    cuts shrink further: 4 → 2 or even 1 term).
    """
    out: dict[int, "str | tuple[str, ...]"] = {}
    for k, bases in found.items():
        if not bases:
            continue
        if exploit_all:
            out[k] = tuple(bases)
            continue
        for b in _BASIS_PRIORITY:
            if b in bases:
                out[k] = b
                break
    return out


def cut_and_run(
    circuit: Circuit,
    backend: Backend,
    cuts: CutSpec | None = None,
    shots: int = 1000,
    golden: str = "off",
    golden_map: "dict[int, str | tuple[str, ...]] | None" = None,
    max_fragment_qubits: int | None = None,
    postprocess: str = "clip",
    seed: "int | np.random.Generator | None" = None,
    alpha: float = DEFAULT_ALPHA,
    pilot_shots: int | None = None,
    exploit_all: bool = False,
    retry=None,
    ledger=None,
) -> CutRunResult:
    """Cut ``circuit``, run the fragments on ``backend``, reconstruct.

    Parameters mirror the paper's experimental knobs; see the module
    docstring for the ``golden`` modes.  ``cuts=None`` triggers automatic
    cut search constrained by ``max_fragment_qubits`` (default:
    ``ceil(n/2) + 1``, the paper's balanced-bipartition shape).
    ``retry`` / ``ledger`` enable the resilient execution path for both
    the pilot and production runs (see
    :mod:`repro.cutting.resilience`); exhaustion raises — graceful
    degradation is a tree-pipeline notion.
    """
    if retry is not None and ledger is None:
        from repro.cutting.resilience import AttemptLedger

        ledger = AttemptLedger()
    rng = as_generator(seed)
    if cuts is None:
        budget = max_fragment_qubits or (circuit.num_qubits + 1) // 2 + 1
        cuts = find_cuts(circuit, budget)
    pair = bipartition(circuit, cuts)
    K = pair.num_cuts

    # One simulation cache shared by pilot detection and the production
    # run: each fragment body is transpiled/simulated exactly once per
    # cut_and_run invocation when the backend consumes a cache (ideal →
    # FragmentSimCache, fake hardware → NoisyFragmentSimCache).  The
    # analytic golden finder always works on *ideal* states, so it keeps
    # its own FragmentSimCache unless the backend's cache already is one.
    cache = backend.make_variant_cache(pair)
    if golden == "analytic":
        finder_cache = cache if isinstance(cache, FragmentSimCache) else FragmentSimCache(pair)

    detection: list = []
    device_seconds = 0.0

    if golden == "off":
        golden_used: dict = {}
    elif golden == "known":
        if not golden_map:
            raise CutError('golden="known" requires golden_map')
        normalize_golden_map(K, golden_map)  # validate eagerly
        golden_used = dict(golden_map)
    elif golden == "analytic":
        golden_used = _select_golden(
            find_golden_bases_analytic(pair, cache=finder_cache), exploit_all
        )
    elif golden == "detect":
        pilot = pilot_shots if pilot_shots is not None else max(100, shots // 4)
        pilot_data = run_fragments(
            pair,
            backend,
            shots=pilot,
            inits=[("Z+",) * K],  # pilot only needs upstream statistics
            seed=derive_rng(rng, 0x51),
            cache=cache,
            retry=retry,
            ledger=ledger,
        )
        device_seconds += pilot_data.modeled_seconds
        detection = detect_golden_bases(pilot_data, alpha=alpha)
        found: dict[int, list[str]] = {k: [] for k in range(K)}
        for res in detection:
            if res.is_golden:
                found[res.cut].append(res.basis)
        golden_used = _select_golden(found, exploit_all)
    else:
        raise CutError(
            f'golden must be "off"/"known"/"analytic"/"detect", got {golden!r}'
        )

    if golden_used:
        settings = reduced_setting_tuples(K, golden_used)
        inits = reduced_init_tuples(K, golden_used)
        bases = reduced_bases(K, golden_used)
    else:
        settings = None
        inits = None
        bases = None

    data = run_fragments(
        pair,
        backend,
        shots=shots,
        settings=settings,
        inits=inits,
        seed=derive_rng(rng, 0x52),
        cache=cache,
        retry=retry,
        ledger=ledger,
    )
    device_seconds += data.modeled_seconds

    with Stopwatch() as sw:
        probs = reconstruct_distribution(data, bases=bases, postprocess=postprocess)

    costs = cost_report(K, golden_used or None, shots_per_variant=shots)
    return CutRunResult(
        probabilities=probs,
        pair=pair,
        golden_used=golden_used,
        data=data,
        costs=costs,
        device_seconds=device_seconds,
        reconstruction_seconds=sw.elapsed,
        detection=detection,
        bases=bases,
    )
