"""Empirical golden-cut detection from finite-shot measurements.

The paper's §IV poses online detection as future work; this module provides
the statistical machinery: given upstream fragment data with ``N`` shots per
setting, test H₀ "basis ``M*`` is golden at cut ``k``" (all weighted outcome
differences are zero) against the observed deviations.

Test statistic.  For each context (setting ``S`` with ``S_k = M*``, output
``b₁``, other-cut outcomes ``r₋ₖ``) the estimator

.. math::

    \\hat\\Delta = \\hat p(b_1, r_k{=}0, r_{-k}) - \\hat p(b_1, r_k{=}1, r_{-k})

has, under H₀ (true Δ = 0), variance ``(p₀ + p₁)/N`` where ``p₀+p₁`` is the
context's total probability — estimated by the observed mass.  We form
per-context z-scores and apply a Bonferroni correction over the ``m``
contexts tested: the basis is declared golden when ``max |z| <
Φ⁻¹(1 − α/(2m))``.  Bonferroni keeps the family-wise false-*rejection* rate
(declaring a truly-golden basis non-golden) below α; the miss direction
(keeping a non-golden basis) only costs shots, never correctness.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.config import DEFAULT_ALPHA
from repro.cutting.execution import FragmentData
from repro.exceptions import DetectionError

__all__ = [
    "GoldenDetectionResult",
    "detect_chain_golden_bases",
    "detect_golden_bases",
    "detect_tree_golden_bases",
]


@dataclass(frozen=True)
class GoldenDetectionResult:
    """Verdict for one (cut, basis) candidate."""

    cut: int
    basis: str
    is_golden: bool
    max_z: float
    threshold: float
    num_contexts: int
    alpha: float
    #: cut group the candidate belongs to (0 for bipartitions)
    group: int = 0

    @property
    def p_value(self) -> float:
        """Bonferroni-adjusted p-value of the observed maximum |z|."""
        tail = 2.0 * (1.0 - stats.norm.cdf(self.max_z))
        return float(min(1.0, tail * self.num_contexts))


def _candidate_z_scores(
    data: FragmentData, cut: int, basis: str, shots: int
) -> np.ndarray:
    """Vector of per-context |z| statistics for one candidate."""
    K = data.pair.num_cuts
    relevant = [s for s in data.upstream if s[cut] == basis]
    if not relevant:
        raise DetectionError(
            f"no upstream setting measures cut {cut} in basis {basis}"
        )
    r = np.arange(1 << K)
    lo = np.nonzero(((r >> cut) & 1) == 0)[0]
    hi = lo | (1 << cut)
    zs = []
    for setting in relevant:
        A = data.upstream[setting]
        delta = A[:, lo] - A[:, hi]
        mass = A[:, lo] + A[:, hi]
        sigma = np.sqrt(np.maximum(mass, 1.0 / shots) / shots)
        zs.append(np.abs(delta) / sigma)
    return np.concatenate([z.ravel() for z in zs])


def detect_golden_bases(
    data: FragmentData,
    alpha: float = DEFAULT_ALPHA,
    cuts: "list[int] | None" = None,
    bases: tuple[str, ...] = ("X", "Y", "Z"),
) -> list[GoldenDetectionResult]:
    """Test every (cut, basis) candidate on measured fragment data.

    Parameters
    ----------
    data:
        Finite-shot fragment data (``shots_per_variant`` must be > 0).
    alpha:
        Family-wise significance level *per candidate*.
    cuts:
        Cut indices to test (default: all).
    bases:
        Candidate bases (default X, Y, Z; ``I`` can never be golden for
        positive-mass observables since its weighted sum is the marginal).

    Returns
    -------
    list of :class:`GoldenDetectionResult`, one per candidate, in
    (cut, basis) order.
    """
    if data.shots_per_variant <= 0:
        raise DetectionError(
            "detection needs finite-shot data; for exact data use "
            "repro.core.golden.find_golden_bases_analytic"
        )
    shots = data.shots_per_variant
    if cuts is None:
        cuts = list(range(data.pair.num_cuts))
    out: list[GoldenDetectionResult] = []
    for k in cuts:
        for b in bases:
            z = _candidate_z_scores(data, k, b, shots)
            out.append(_verdict(z, k, b, alpha, group=0))
    return out


def _verdict(
    z: np.ndarray, cut: int, basis: str, alpha: float, group: int
) -> GoldenDetectionResult:
    """Bonferroni verdict from one candidate's vector of |z| statistics."""
    m = int(z.size)
    threshold = float(stats.norm.ppf(1.0 - alpha / (2.0 * m)))
    max_z = float(z.max()) if m else 0.0
    return GoldenDetectionResult(
        cut=cut,
        basis=basis,
        is_golden=bool(max_z < threshold),
        max_z=max_z,
        threshold=threshold,
        num_contexts=m,
        alpha=alpha,
        group=group,
    )


def _tree_candidate_z_scores(
    data, group: int, cut: int, basis: str, shots: int
) -> np.ndarray:
    """Per-context |z| statistics for one tree cut-group candidate.

    Contexts run over every ``(prep context, setting)`` variant of the
    group's **source node** whose setting measures the candidate cut (in
    the node's flat layout) in ``basis``, times that variant's
    ``(b_out, r_{-cut})`` cells — the tree analogue of
    :func:`_candidate_z_scores` with the parent group's entering
    preparations, and at a branching node the sibling groups' settings,
    counted into the Bonferroni family.
    """
    from repro.core.golden import _tree_group_frame, iter_chain_cut_deltas

    records, K_flat, flat_cut = _tree_group_frame(data, group, cut)
    zs = []
    for delta, mass in iter_chain_cut_deltas(records, K_flat, flat_cut, basis):
        sigma = np.sqrt(np.maximum(mass, 1.0 / shots) / shots)
        zs.append((np.abs(delta) / sigma).ravel())
    return np.concatenate(zs)


def detect_tree_golden_bases(
    data,
    group: int,
    alpha: float = DEFAULT_ALPHA,
    cuts: "list[int] | None" = None,
    bases: tuple[str, ...] = ("X", "Y", "Z"),
) -> list[GoldenDetectionResult]:
    """Test every (cut, basis) candidate of one tree cut group.

    ``data`` is finite-shot :class:`~repro.cutting.execution.TreeFragmentData`
    whose source-node records hold the pilot measurements (interior
    fragments: one variant per *prep context × setting* over the node's
    flat cut union; pilot pipelines pass the spanning context pool of
    :func:`repro.core.neglect.spanning_init_tuples`, conditioned on the
    parent group's verdict — see
    :func:`~repro.core.golden.find_tree_golden_bases_analytic` for why the
    sweep is a sequential root-to-leaves BFS).  The per-candidate
    hypothesis test is the same Bonferroni-corrected max-|z| machinery as
    :func:`detect_golden_bases`, with the prep contexts (and sibling
    groups' settings, at a branching node) multiplying the corrected
    family size, so the family-wise false-rejection guarantee (≤ ``alpha``
    per candidate) is preserved group by group.
    """
    if data.shots_per_variant <= 0:
        raise DetectionError(
            "detection needs finite-shot data; for exact data use "
            "repro.core.golden.find_tree_golden_bases_analytic"
        )
    tree = data.tree
    if not 0 <= group < tree.num_groups:
        raise DetectionError(
            f"cut group {group} out of range ({tree.num_groups} groups)"
        )
    shots = data.shots_per_variant
    if cuts is None:
        cuts = list(range(tree.group_sizes[group]))
    out: list[GoldenDetectionResult] = []
    for k in cuts:
        for b in bases:
            z = _tree_candidate_z_scores(data, group, k, b, shots)
            out.append(_verdict(z, k, b, alpha, group=group))
    return out


def detect_chain_golden_bases(
    data,
    group: int,
    alpha: float = DEFAULT_ALPHA,
    cuts: "list[int] | None" = None,
    bases: tuple[str, ...] = ("X", "Y", "Z"),
) -> list[GoldenDetectionResult]:
    """Chain alias of :func:`detect_tree_golden_bases` (linear tree)."""
    return detect_tree_golden_bases(
        data, group, alpha=alpha, cuts=cuts, bases=bases
    )
