"""Sequential (staged) golden-cut detection with early stopping.

Refines :mod:`repro.core.detection` toward the paper's §IV vision of
detecting golden points "online during the execution of the circuit cutting
procedure through sequential empirical measurements": the pilot budget is
spent in stages, candidates are *rejected* as soon as their z-statistic
exceeds the threshold (informative bases show up early), and the whole
pilot stops after the first stage in which every candidate is rejected —
generic circuits without golden points pay only the first, cheapest stage.
Acceptance (actually neglecting a basis) is only declared after the full
budget, because confirming a zero needs all the statistics.

Measurement records from successive stages are merged exactly (probability
arrays combined with shot weights), so no pilot shot is wasted; the merged
record is returned for reuse in the final reconstruction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.backends.base import Backend
from repro.config import DEFAULT_ALPHA
from repro.core.detection import GoldenDetectionResult, _candidate_z_scores
from repro.cutting.execution import FragmentData, run_fragments
from repro.cutting.fragments import FragmentPair
from repro.exceptions import DetectionError
from repro.utils.rng import as_generator, derive_rng
from scipy import stats

__all__ = ["AdaptiveDetectionResult", "StageLog", "sequential_detect", "merge_fragment_data"]


@dataclass(frozen=True)
class StageLog:
    """What happened in one detection stage."""

    stage: int
    shots_this_stage: int
    cumulative_shots: int
    rejected: tuple[tuple[int, str], ...]
    still_open: tuple[tuple[int, str], ...]


@dataclass
class AdaptiveDetectionResult:
    """Outcome of a sequential detection run."""

    #: final verdicts, one per candidate (same shape as detect_golden_bases)
    results: list[GoldenDetectionResult]
    #: per-stage progress log
    stages: list[StageLog] = field(default_factory=list)
    #: pilot shots actually spent (Σ stage shots × settings still measured)
    shots_spent: int = 0
    #: merged upstream data (reusable by the main run)
    data: FragmentData | None = None

    def golden_map(self) -> dict[int, list[str]]:
        out: dict[int, list[str]] = {}
        for r in self.results:
            if r.is_golden:
                out.setdefault(r.cut, []).append(r.basis)
        return out


def merge_fragment_data(a: FragmentData, b: FragmentData) -> FragmentData:
    """Pool two measurement records of the same fragment pair.

    Probability arrays are combined with shot weights — exactly equivalent
    to having run ``a.shots + b.shots`` shots in one go.  The upstream
    variant sets must match (detection stages always measure the same
    grid); a downstream variant present in only one input keeps its own
    statistics, which slightly understates its shot count — acceptable
    because the merged record's downstream side is only used when the
    caller reuses pilot data, never for variance estimates.
    """
    if a.pair is not b.pair:
        raise DetectionError("cannot merge data from different fragment pairs")
    if set(a.upstream) != set(b.upstream):
        raise DetectionError("merging requires identical upstream settings")
    na, nb = a.shots_per_variant, b.shots_per_variant
    if na <= 0 or nb <= 0:
        raise DetectionError("merging requires finite-shot data")
    w = na + nb
    upstream = {
        k: (na * a.upstream[k] + nb * b.upstream[k]) / w for k in a.upstream
    }
    downstream = dict(b.downstream)
    for k, vec in a.downstream.items():
        if k in downstream:
            downstream[k] = (na * vec + nb * downstream[k]) / w
        else:
            downstream[k] = vec
    return FragmentData(
        pair=a.pair,
        upstream=upstream,
        downstream=downstream,
        shots_per_variant=w,
        modeled_seconds=a.modeled_seconds + b.modeled_seconds,
        metadata={"merged": True},
    )


def sequential_detect(
    pair: FragmentPair,
    backend: Backend,
    stage_shots: Sequence[int] = (500, 2000, 8000),
    alpha: float = DEFAULT_ALPHA,
    bases: tuple[str, ...] = ("X", "Y", "Z"),
    seed: "int | np.random.Generator | None" = None,
) -> AdaptiveDetectionResult:
    """Run staged detection, dropping rejected candidates between stages.

    Returns verdicts for every (cut, basis) candidate plus the merged
    upstream data, which the caller can feed into reconstruction so pilot
    shots contribute to the final estimate.
    """
    if not stage_shots or any(s <= 0 for s in stage_shots):
        raise DetectionError("stage_shots must be positive")
    rng = as_generator(seed)
    K = pair.num_cuts
    candidates: list[tuple[int, str]] = [
        (k, b) for k in range(K) for b in bases
    ]
    rejected: dict[tuple[int, str], GoldenDetectionResult] = {}
    merged: FragmentData | None = None
    stages: list[StageLog] = []
    shots_spent = 0
    trivial_inits = [("Z+",) * K]

    for stage, shots in enumerate(stage_shots):
        # measure every setting that some open candidate still needs (the
        # full 3^K grid is needed anyway for the final reconstruction, so
        # we keep all settings; the saving is in *stage count*, not grid)
        fresh = run_fragments(
            pair, backend, shots=shots, inits=trivial_inits,
            seed=derive_rng(rng, 0xAD, stage),
        )
        shots_spent += shots * len(fresh.upstream)
        merged = fresh if merged is None else merge_fragment_data(merged, fresh)

        newly_rejected = []
        open_candidates = []
        for cand in candidates:
            if cand in rejected:
                continue
            k, b = cand
            z = _candidate_z_scores(merged, k, b, merged.shots_per_variant)
            m = int(z.size)
            threshold = float(stats.norm.ppf(1.0 - alpha / (2.0 * m)))
            max_z = float(z.max()) if m else 0.0
            verdict = GoldenDetectionResult(
                cut=k, basis=b, is_golden=bool(max_z < threshold),
                max_z=max_z, threshold=threshold, num_contexts=m, alpha=alpha,
            )
            if not verdict.is_golden:
                rejected[cand] = verdict
                newly_rejected.append(cand)
            else:
                open_candidates.append(cand)
        stages.append(
            StageLog(
                stage=stage,
                shots_this_stage=shots,
                cumulative_shots=merged.shots_per_variant,
                rejected=tuple(newly_rejected),
                still_open=tuple(open_candidates),
            )
        )
        if not open_candidates:
            break  # everything rejected: no golden points, stop early

    # final verdicts: survivors are accepted with the full pooled statistics
    results: list[GoldenDetectionResult] = []
    for cand in candidates:
        if cand in rejected:
            results.append(rejected[cand])
            continue
        k, b = cand
        z = _candidate_z_scores(merged, k, b, merged.shots_per_variant)
        m = int(z.size)
        threshold = float(stats.norm.ppf(1.0 - alpha / (2.0 * m)))
        max_z = float(z.max()) if m else 0.0
        results.append(
            GoldenDetectionResult(
                cut=k, basis=b, is_golden=bool(max_z < threshold),
                max_z=max_z, threshold=threshold, num_contexts=m, alpha=alpha,
            )
        )
    return AdaptiveDetectionResult(
        results=results, stages=stages, shots_spent=shots_spent, data=merged
    )
