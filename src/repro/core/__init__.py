"""The paper's contribution: golden cutting points (neglecting basis elements).

Layered on the :mod:`repro.cutting` baseline:

* :mod:`repro.core.ansatz` — circuit families with built-in golden cuts
  (paper Figs. 1–2),
* :mod:`repro.core.golden` — the exact (analytic) Definition-1 finder,
* :mod:`repro.core.detection` — the empirical finite-shot detector
  (paper §IV "online detection" future work),
* :mod:`repro.core.neglect` — reduced variant/basis sets for golden cuts,
* :mod:`repro.core.costs` — the O(4^{K_r}3^{K_g}) / O(6^{K_r}4^{K_g}) cost
  model,
* :mod:`repro.core.pipeline` — the one-call ``cut_and_run`` API.
"""

from repro.core.ansatz import (
    golden_ansatz,
    three_qubit_example,
    GoldenAnsatzSpec,
)
from repro.core.golden import (
    chain_definition1_deviation,
    definition1_deviation,
    find_chain_golden_bases_analytic,
    find_golden_bases_analytic,
    find_tree_golden_bases_analytic,
    is_golden_analytic,
    select_all_golden,
    tree_definition1_deviation,
)
from repro.core.detection import (
    GoldenDetectionResult,
    detect_chain_golden_bases,
    detect_golden_bases,
    detect_tree_golden_bases,
)
from repro.core.adaptive import (
    AdaptiveDetectionResult,
    merge_fragment_data,
    sequential_detect,
)
from repro.core.neglect import (
    GoldenMap,
    chain_pilot_combos,
    normalize_golden_map,
    tree_pilot_combos,
    reduced_bases,
    reduced_init_tuples,
    reduced_setting_tuples,
    spanning_init_tuples,
)
from repro.core.costs import CostReport, cost_report, predicted_speedup
from repro.core.pipeline import (
    ChainRunResult,
    CutRunResult,
    TreeRunResult,
    cut_and_run,
    cut_and_run_chain,
    cut_and_run_tree,
)

__all__ = [
    "golden_ansatz",
    "three_qubit_example",
    "GoldenAnsatzSpec",
    "chain_definition1_deviation",
    "tree_definition1_deviation",
    "definition1_deviation",
    "find_chain_golden_bases_analytic",
    "find_tree_golden_bases_analytic",
    "find_golden_bases_analytic",
    "is_golden_analytic",
    "select_all_golden",
    "GoldenDetectionResult",
    "detect_chain_golden_bases",
    "detect_tree_golden_bases",
    "detect_golden_bases",
    "AdaptiveDetectionResult",
    "sequential_detect",
    "merge_fragment_data",
    "GoldenMap",
    "normalize_golden_map",
    "reduced_bases",
    "reduced_setting_tuples",
    "reduced_init_tuples",
    "spanning_init_tuples",
    "chain_pilot_combos",
    "tree_pilot_combos",
    "CostReport",
    "cost_report",
    "predicted_speedup",
    "CutRunResult",
    "cut_and_run",
    "ChainRunResult",
    "TreeRunResult",
    "cut_and_run_chain",
    "cut_and_run_tree",
]
