"""Pauli algebra: matrices, eigen-decompositions, Pauli strings.

This module is the mathematical backbone of wire cutting.  The cut identity
(paper Eq. 3/13) expands the state on a cut wire in the Pauli basis
``B = {I, X, Y, Z}`` and the measurement/preparation scheme is driven by the
eigen-decomposition ``M = Σ_r r |M^r⟩⟨M^r|`` (paper Eq. 6).  Everything the
cutting code needs about Paulis — matrices, eigenvalues, eigenvectors, the
basis-change circuit mapping a Pauli measurement onto a Z measurement — is
defined here once.

Conventions
-----------
* Pauli labels are single characters ``"I" "X" "Y" "Z"``; the canonical basis
  order is ``PAULI_LABELS = ("I", "X", "Y", "Z")`` and indices into
  reconstruction tensors follow that order.
* For ``X``/``Y``/``Z`` the two eigenpairs are ordered ``(+1, -1)``.
  For ``I`` the "eigen-decomposition" used by the cut identity is
  ``I = (+1)|0⟩⟨0| + (+1)|1⟩⟨1|`` — two eigenstates, both with weight ``+1``
  (paper §II-A treats this case implicitly; see DESIGN.md §1).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import reduce
from typing import Iterator, Sequence

import numpy as np

from repro.config import ATOL, COMPLEX_DTYPE
from repro.exceptions import GateError

__all__ = [
    "PAULI_LABELS",
    "PAULI_MATRICES",
    "PAULI_EIGENBASES",
    "pauli_matrix",
    "pauli_eigenpairs",
    "pauli_basis_change",
    "PauliString",
]

_I = np.eye(2, dtype=COMPLEX_DTYPE)
_X = np.array([[0, 1], [1, 0]], dtype=COMPLEX_DTYPE)
_Y = np.array([[0, -1j], [1j, 0]], dtype=COMPLEX_DTYPE)
_Z = np.array([[1, 0], [0, -1]], dtype=COMPLEX_DTYPE)

#: Canonical basis-order for reconstruction tensors (paper Eq. 1).
PAULI_LABELS: tuple[str, ...] = ("I", "X", "Y", "Z")

#: label -> 2x2 matrix
PAULI_MATRICES: dict[str, np.ndarray] = {"I": _I, "X": _X, "Y": _Y, "Z": _Z}

# Eigenvectors (columns) for each Pauli, ordered (+1 eigenstate, -1 eigenstate).
_SQ2 = 1.0 / np.sqrt(2.0)
_EIG_VECS: dict[str, np.ndarray] = {
    "I": np.array([[1, 0], [0, 1]], dtype=COMPLEX_DTYPE),  # |0>, |1>
    "X": np.array([[_SQ2, _SQ2], [_SQ2, -_SQ2]], dtype=COMPLEX_DTYPE),  # |+>, |->
    "Y": np.array([[_SQ2, _SQ2], [1j * _SQ2, -1j * _SQ2]], dtype=COMPLEX_DTYPE),
    "Z": np.array([[1, 0], [0, 1]], dtype=COMPLEX_DTYPE),  # |0>, |1>
}
_EIG_VALS: dict[str, tuple[int, int]] = {
    "I": (+1, +1),
    "X": (+1, -1),
    "Y": (+1, -1),
    "Z": (+1, -1),
}

#: label -> (eigenvalues length-2 tuple, eigenvector matrix with vectors as columns)
PAULI_EIGENBASES: dict[str, tuple[tuple[int, int], np.ndarray]] = {
    lbl: (_EIG_VALS[lbl], _EIG_VECS[lbl]) for lbl in PAULI_LABELS
}


def pauli_matrix(label: str) -> np.ndarray:
    """Return the 2x2 matrix of a single-qubit Pauli label."""
    try:
        return PAULI_MATRICES[label]
    except KeyError:
        raise GateError(f"unknown Pauli label {label!r}") from None


def pauli_eigenpairs(label: str) -> list[tuple[int, np.ndarray]]:
    """Eigen-decomposition of a Pauli as ``[(eigenvalue, ket), ...]``.

    The kets are normalised column vectors; the order is (+1, -1) for
    X/Y/Z and (|0>, |1>) — both with eigenvalue +1 — for I.  Satisfies
    ``M = Σ r |v⟩⟨v|`` exactly (verified by tests).
    """
    vals, vecs = PAULI_EIGENBASES[label]
    return [(vals[k], vecs[:, k].copy()) for k in range(2)]


def pauli_basis_change(label: str) -> np.ndarray:
    """Unitary ``V`` mapping a ``label`` measurement onto a Z measurement.

    Measuring Pauli ``label`` on ``ρ`` is equivalent to applying ``V`` and
    measuring Z: outcome bit 0 ↔ eigenvalue +1, bit 1 ↔ eigenvalue −1.
    Formally ``V @ v_k = |k⟩`` for the k-th eigenvector, i.e. ``V = W†``
    where ``W`` has the eigenvectors as columns.  For ``I`` (and ``Z``)
    this is the identity: the computational measurement already resolves
    the eigenstates.
    """
    _, vecs = PAULI_EIGENBASES[label]
    return vecs.conj().T.astype(COMPLEX_DTYPE)


_MULT_TABLE: dict[tuple[str, str], tuple[complex, str]] = {
    ("I", "I"): (1, "I"), ("I", "X"): (1, "X"), ("I", "Y"): (1, "Y"), ("I", "Z"): (1, "Z"),
    ("X", "I"): (1, "X"), ("X", "X"): (1, "I"), ("X", "Y"): (1j, "Z"), ("X", "Z"): (-1j, "Y"),
    ("Y", "I"): (1, "Y"), ("Y", "X"): (-1j, "Z"), ("Y", "Y"): (1, "I"), ("Y", "Z"): (1j, "X"),
    ("Z", "I"): (1, "Z"), ("Z", "X"): (1j, "Y"), ("Z", "Y"): (-1j, "X"), ("Z", "Z"): (1, "I"),
}


@dataclass(frozen=True)
class PauliString:
    """An n-qubit Pauli operator ``phase * P_0 ⊗ P_1 ⊗ ... ⊗ P_{n-1}``.

    ``labels[i]`` acts on qubit ``i`` (tensor axis ``i``); the matrix
    representation therefore uses our little-endian index convention, built
    by :meth:`to_matrix`.

    Supports multiplication, commutation checks and expectation-friendly
    queries, enough to decompose observables across cut fragments.
    """

    labels: tuple[str, ...]
    phase: complex = 1.0 + 0.0j

    def __post_init__(self) -> None:
        for c in self.labels:
            if c not in PAULI_LABELS:
                raise GateError(f"invalid Pauli label {c!r} in {self.labels}")

    # -- constructors ------------------------------------------------------
    @classmethod
    def from_label(cls, text: str, phase: complex = 1.0) -> "PauliString":
        """Build from a string like ``"XIZY"`` (char i acts on qubit i)."""
        return cls(tuple(text), phase)

    @classmethod
    def identity(cls, num_qubits: int) -> "PauliString":
        return cls(("I",) * num_qubits)

    # -- basic queries -----------------------------------------------------
    @property
    def num_qubits(self) -> int:
        return len(self.labels)

    @property
    def weight(self) -> int:
        """Number of non-identity tensor factors."""
        return sum(1 for c in self.labels if c != "I")

    @property
    def support(self) -> tuple[int, ...]:
        """Qubits on which the operator acts non-trivially."""
        return tuple(i for i, c in enumerate(self.labels) if c != "I")

    def is_identity(self) -> bool:
        return self.weight == 0

    def is_diagonal(self) -> bool:
        """True iff the matrix is diagonal (labels drawn from {I, Z})."""
        return all(c in "IZ" for c in self.labels)

    def is_real(self) -> bool:
        """True iff the matrix has purely real entries (even number of Ys)."""
        ys = sum(1 for c in self.labels if c == "Y")
        return (ys % 2 == 0) and abs(self.phase.imag) < ATOL

    # -- algebra -----------------------------------------------------------
    def __mul__(self, other: "PauliString") -> "PauliString":
        if self.num_qubits != other.num_qubits:
            raise GateError("PauliString size mismatch in product")
        phase = self.phase * other.phase
        labels = []
        for a, b in zip(self.labels, other.labels):
            ph, lbl = _MULT_TABLE[(a, b)]
            phase *= ph
            labels.append(lbl)
        return PauliString(tuple(labels), phase)

    def commutes_with(self, other: "PauliString") -> bool:
        """Pauli strings either commute or anticommute; True if they commute."""
        anti = 0
        for a, b in zip(self.labels, other.labels):
            if a != "I" and b != "I" and a != b:
                anti += 1
        return anti % 2 == 0

    def restricted_to(self, qubits: Sequence[int]) -> "PauliString":
        """Sub-string acting on the listed qubits, in the order listed."""
        return PauliString(tuple(self.labels[q] for q in qubits), self.phase)

    # -- dense form ---------------------------------------------------------
    def to_matrix(self) -> np.ndarray:
        """Dense ``2^n x 2^n`` matrix in the little-endian convention.

        Because qubit 0 is the least-significant bit, the Kronecker product
        is taken with the *last* qubit leftmost: ``P_{n-1} ⊗ ... ⊗ P_0``.
        """
        mats = [PAULI_MATRICES[c] for c in self.labels]
        full = reduce(np.kron, reversed(mats)) if mats else np.eye(1, dtype=COMPLEX_DTYPE)
        return self.phase * full

    def diagonal(self) -> np.ndarray:
        """Diagonal of :meth:`to_matrix` without building the full matrix.

        Only valid for diagonal strings (labels in {I, Z}).  Vectorised:
        O(n · 2^n) instead of O(4^n).
        """
        if not self.is_diagonal():
            raise GateError("diagonal() requires an {I,Z} string")
        n = self.num_qubits
        diag = np.ones(1 << n, dtype=COMPLEX_DTYPE)
        idx = np.arange(1 << n)
        for q, c in enumerate(self.labels):
            if c == "Z":
                diag *= 1.0 - 2.0 * ((idx >> q) & 1)
        return self.phase * diag

    # -- misc ----------------------------------------------------------------
    def __str__(self) -> str:
        ph = "" if self.phase == 1 else f"({self.phase}) "
        return ph + "".join(self.labels)

    def __iter__(self) -> Iterator[str]:
        return iter(self.labels)
