"""Kraus-operator quantum channels.

A channel is a list of Kraus operators ``{K_i}`` with ``Σ K_i† K_i = I``;
its action on a density matrix is ``ρ → Σ K_i ρ K_i†``.  The noise module
builds concrete channels (depolarizing, damping, ...) from these primitives
and the density-matrix simulator applies them with the same tensordot kernel
used for gates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.config import COMPLEX_DTYPE
from repro.exceptions import NoiseError
from repro.linalg.tensor import apply_matrix_to_axes

__all__ = ["KrausChannel", "apply_channel", "is_cptp", "channel_fidelity_bound"]


@dataclass(frozen=True)
class KrausChannel:
    """A CPTP map given by Kraus operators on ``num_qubits`` qubits.

    Parameters
    ----------
    operators:
        Sequence of square matrices of identical shape ``(2^k, 2^k)``.
    name:
        Human-readable tag used in noise-model reports.
    """

    operators: tuple[np.ndarray, ...]
    name: str = "kraus"

    def __post_init__(self) -> None:
        if not self.operators:
            raise NoiseError("channel needs at least one Kraus operator")
        dim = self.operators[0].shape[0]
        for op in self.operators:
            if op.shape != (dim, dim):
                raise NoiseError("Kraus operators must share a square shape")
        if dim & (dim - 1):
            raise NoiseError(f"Kraus dimension {dim} is not a power of two")
        object.__setattr__(
            self,
            "operators",
            tuple(np.asarray(op, dtype=COMPLEX_DTYPE) for op in self.operators),
        )
        if not is_cptp(self.operators):
            raise NoiseError(f"channel {self.name!r} is not trace preserving")

    @property
    def num_qubits(self) -> int:
        return int(np.log2(self.operators[0].shape[0]))

    def superoperator(self) -> np.ndarray:
        """Dense superoperator ``S = Σ_i conj(K_i) ⊗ K_i`` (cached, read-only).

        Row/column indices are little-endian over the combined
        ``(ket, bra)`` index pair (ket fastest), matching what
        :func:`apply_channel` feeds to
        :func:`repro.linalg.tensor.apply_matrix_to_axes` when it contracts
        the ket and bra axes of a density tensor in one pass.
        """
        cached = getattr(self, "_superop", None)
        if cached is not None:
            return cached
        dim = self.operators[0].shape[0]
        s = np.zeros((dim * dim, dim * dim), dtype=COMPLEX_DTYPE)
        for op in self.operators:
            s += np.kron(op.conj(), op)
        s.setflags(write=False)
        object.__setattr__(self, "_superop", s)
        return s

    def gram_matrices(self) -> tuple[np.ndarray, ...]:
        """The small positive matrices ``K_i† K_i`` (cached, read-only).

        Branch probabilities of a stochastic unravelling are
        ``⟨ψ|K_i†K_i|ψ⟩``, so trajectory simulation needs these — not the
        ``K_i|ψ⟩`` branches themselves — to pick a Kraus term.
        """
        cached = getattr(self, "_grams", None)
        if cached is not None:
            return cached
        grams = []
        for op in self.operators:
            g = op.conj().T @ op
            g.setflags(write=False)
            grams.append(g)
        out = tuple(grams)
        object.__setattr__(self, "_grams", out)
        return out

    def is_unital(self, atol: float = 1e-9) -> bool:
        """True iff the channel maps I to I (``Σ K_i K_i† = I``)."""
        dim = self.operators[0].shape[0]
        acc = sum(op @ op.conj().T for op in self.operators)
        return np.allclose(acc, np.eye(dim), atol=atol)

    def compose(self, other: "KrausChannel") -> "KrausChannel":
        """Channel equal to applying ``self`` then ``other``."""
        if self.num_qubits != other.num_qubits:
            raise NoiseError("cannot compose channels of different arity")
        ops = tuple(b @ a for a in self.operators for b in other.operators)
        return KrausChannel(ops, name=f"{other.name}∘{self.name}")

    def tensor(self, other: "KrausChannel") -> "KrausChannel":
        """Tensor product channel ``self ⊗ other`` (self on lower qubits)."""
        ops = tuple(
            np.kron(b, a) for a in self.operators for b in other.operators
        )
        return KrausChannel(ops, name=f"{self.name}⊗{other.name}")


def is_cptp(operators: Sequence[np.ndarray], atol: float = 1e-8) -> bool:
    """Check the trace-preservation condition ``Σ K† K = I``."""
    dim = operators[0].shape[0]
    acc = np.zeros((dim, dim), dtype=COMPLEX_DTYPE)
    for op in operators:
        acc += op.conj().T @ op
    return np.allclose(acc, np.eye(dim), atol=atol)


def apply_channel(
    rho_tensor: np.ndarray,
    channel: KrausChannel,
    qubits: Sequence[int],
    num_qubits: int,
) -> np.ndarray:
    """Apply a channel to a rank-2n density tensor on the given qubits.

    ``rho_tensor`` has ket axes ``0..n-1`` and bra axes ``n..2n-1`` (extra
    trailing axes are batch dimensions).  All Kraus terms are applied in one
    contraction: the channel's cached :meth:`KrausChannel.superoperator`
    acts on the combined ``(ket, bra)`` axes, so the cost is a single
    tensordot instead of two per operator plus an accumulation pass.  A
    single-operator channel (a plain unitary in Kraus clothing) keeps the
    two-small-contraction path, which touches ``4^k`` fewer entries.
    """
    ket_axes = list(qubits)
    bra_axes = [q + num_qubits for q in qubits]
    if len(channel.operators) == 1:
        op = channel.operators[0]
        term = apply_matrix_to_axes(rho_tensor, op, ket_axes)
        return apply_matrix_to_axes(term, op.conj(), bra_axes)
    return apply_matrix_to_axes(
        rho_tensor, channel.superoperator(), ket_axes + bra_axes
    )


def channel_fidelity_bound(channel: KrausChannel) -> float:
    """Lower bound on average gate fidelity from the leading Kraus term.

    Useful for sanity checks in noise-model reports: for a channel written
    as ``K_0 ≈ sqrt(1-p) I`` plus error terms, returns ``|tr K_0|² / d²``,
    the standard entanglement-fidelity estimate of the identity component.
    """
    d = channel.operators[0].shape[0]
    best = max(abs(np.trace(op)) ** 2 for op in channel.operators)
    return float(best / d**2)
