"""Tensor kernels shared by the simulators.

The statevector and density-matrix simulators represent n-qubit objects as
rank-n (rank-2n) arrays of shape ``(2,)*n`` with **axis i = qubit i**.
Applying a k-qubit gate is a tensordot over the targeted axes followed by a
``moveaxis`` — no data-sized Python loops and no materialisation of
``2^n x 2^n`` matrices, per the HPC guide ("vectorise; use views, not
copies").

Endianness
----------
The package's *flat* convention is little-endian (qubit 0 = least-significant
bit of a basis index, see :mod:`repro.utils.bits`), while NumPy's C-order
``reshape`` makes axis 0 the *most* significant position.  The two explicit
converters below are therefore the only sanctioned flat↔tensor bridges:

* :func:`tensor_from_flat` — flat vector → rank-n tensor with axis i = qubit i,
* :func:`flat_from_tensor` — the inverse.

Gate matrices index their rows/columns little-endian in the *listed qubit
order* (first listed qubit = least-significant bit), matching
:mod:`repro.circuits.gates`.
"""

from __future__ import annotations

from functools import reduce
from typing import Sequence

import numpy as np

from repro.config import COMPLEX_DTYPE
from repro.exceptions import SimulationError

__all__ = [
    "apply_matrix_to_axes",
    "embed_unitary",
    "flat_from_tensor",
    "kron_all",
    "operator_on_qubits",
    "tensor_from_flat",
]


def tensor_from_flat(vec: np.ndarray, num_qubits: int) -> np.ndarray:
    """Reshape a little-endian flat vector into axis-i=qubit-i tensor form.

    Returns a view when possible (transpose of a reshape).
    """
    if vec.size != 1 << num_qubits:
        raise SimulationError(f"vector size {vec.size} != 2^{num_qubits}")
    return vec.reshape((2,) * num_qubits).transpose(
        tuple(range(num_qubits - 1, -1, -1))
    )


def flat_from_tensor(tensor: np.ndarray) -> np.ndarray:
    """Flatten an axis-i=qubit-i tensor back to a little-endian vector."""
    n = tensor.ndim
    return tensor.transpose(tuple(range(n - 1, -1, -1))).reshape(-1)


def apply_matrix_to_axes(
    tensor: np.ndarray, matrix: np.ndarray, axes: Sequence[int]
) -> np.ndarray:
    """Contract ``matrix`` (shape ``(2^k, 2^k)``) into ``tensor`` on ``axes``.

    The matrix's row/column index is little-endian over ``axes`` in listed
    order (first axis in ``axes`` ↔ least-significant bit).  The result has
    the matrix's output index split back onto the same axis positions.  This
    is the single hot kernel behind every gate application in the package.

    Two layouts are used internally:

    * single-qubit gates on a C-contiguous tensor take a zero-transpose fast
      path — a ``(left, 2, right)`` reshape *view* plus four scalar-vector
      products writing a contiguous result in one pass (the dominant case:
      multi-qubit gates return contiguous arrays here, and
      :func:`repro.sim.statevector.apply_circuit_to_tensor` fuses 1q runs);
    * the general k-qubit path is a tensordot (transpose + GEMM) plus a
      view-only ``moveaxis`` — forcing its output contiguous measured
      slower than letting the next contraction absorb the layout.

    Extra trailing axes beyond the targeted ones are treated as batch
    dimensions (used by the fragment-simulation cache to push all ``2^K``
    basis initialisations through a circuit at once).
    """
    axes = list(axes)
    k = len(axes)
    if matrix.shape != (1 << k, 1 << k):
        raise SimulationError(
            f"matrix shape {matrix.shape} does not match {k} target axes"
        )
    if k == 1 and tensor.flags.c_contiguous:
        q = axes[0]
        shape = tensor.shape
        left = int(np.prod(shape[:q], dtype=np.int64))
        right = int(np.prod(shape[q + 1 :], dtype=np.int64))
        v = tensor.reshape(left, 2, right)
        out = np.empty(v.shape, dtype=np.result_type(matrix.dtype, v.dtype))
        v0, v1 = v[:, 0, :], v[:, 1, :]
        np.add(matrix[0, 0] * v0, matrix[0, 1] * v1, out=out[:, 0, :])
        np.add(matrix[1, 0] * v0, matrix[1, 1] * v1, out=out[:, 1, :])
        return out.reshape(shape)
    gate = matrix.reshape((2,) * (2 * k))
    # C-order reshape: gate column axis (2k-1-j) is the bit of axes[j]; pair
    # them so the least-significant gate axis meets the first listed qubit.
    in_axes = list(range(2 * k - 1, k - 1, -1))
    moved = np.tensordot(gate, tensor, axes=(in_axes, axes))
    # Output axes 0..k-1 are the gate's row axes, most-significant first,
    # i.e. row axis j carries qubit axes[k-1-j]; move each one home.
    return np.moveaxis(moved, range(k), list(reversed(axes)))


def kron_all(matrices: Sequence[np.ndarray]) -> np.ndarray:
    """Kronecker product of a sequence (left-to-right)."""
    if not matrices:
        return np.eye(1, dtype=COMPLEX_DTYPE)
    return reduce(np.kron, matrices)


def operator_on_qubits(
    op: np.ndarray, qubits: Sequence[int], num_qubits: int
) -> np.ndarray:
    """Embed a k-qubit operator as a ``2^n x 2^n`` matrix (little-endian).

    Used only for cross-checks and small exact computations (tests, the
    analytic golden-cut finder); simulators never build these.  Implemented
    by batching the identity's columns through the gate kernel so the result
    is guaranteed to agree with the simulators' convention.
    """
    k = len(qubits)
    if op.shape != (1 << k, 1 << k):
        raise SimulationError(f"operator shape {op.shape} mismatch for {k} qubits")
    if len(set(qubits)) != k:
        raise SimulationError(f"duplicate qubits in {qubits}")
    if any(q < 0 or q >= num_qubits for q in qubits):
        raise SimulationError(f"qubits {qubits} out of range for n={num_qubits}")
    dim = 1 << num_qubits
    # Rows as a batch of basis columns: axis i = qubit i, final axis = column.
    eye = np.eye(dim, dtype=COMPLEX_DTYPE)
    batch = eye.reshape((2,) * num_qubits + (dim,))
    batch = batch.transpose(tuple(range(num_qubits - 1, -1, -1)) + (num_qubits,))
    out = apply_matrix_to_axes(batch, np.asarray(op, dtype=COMPLEX_DTYPE), qubits)
    out = out.transpose(tuple(range(num_qubits - 1, -1, -1)) + (num_qubits,))
    return np.ascontiguousarray(out.reshape(dim, dim))


def embed_unitary(
    small: np.ndarray, qubits: Sequence[int], num_qubits: int
) -> np.ndarray:
    """Alias of :func:`operator_on_qubits` restricted to unitaries."""
    return operator_on_qubits(small, qubits, num_qubits)
