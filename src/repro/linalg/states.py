"""Quantum-state helper functions: construction, comparison, reduction.

These operate on flat vectors (shape ``(2^n,)``) and flat density matrices
(shape ``(2^n, 2^n)``) using the package's little-endian convention.  The
simulators keep their own rank-n internal layout and convert at the edges.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.config import COMPLEX_DTYPE
from repro.exceptions import SimulationError
from repro.utils.bits import bitstring_to_index

__all__ = [
    "ket",
    "state_to_density",
    "partial_trace",
    "fidelity",
    "purity",
    "is_density_matrix",
    "bloch_vector",
]


def ket(label: str | int, num_qubits: int | None = None) -> np.ndarray:
    """Computational basis ket.

    ``label`` is either a display bitstring (``"010"`` — qubit 0 leftmost) or
    an integer index (``num_qubits`` then required).
    """
    if isinstance(label, str):
        index = bitstring_to_index(label)
        n = len(label)
    else:
        if num_qubits is None:
            raise ValueError("num_qubits required when label is an int")
        index, n = int(label), num_qubits
    vec = np.zeros(1 << n, dtype=COMPLEX_DTYPE)
    vec[index] = 1.0
    return vec


def state_to_density(state: np.ndarray) -> np.ndarray:
    """Outer product ``|ψ⟩⟨ψ|`` of a flat statevector."""
    state = np.asarray(state, dtype=COMPLEX_DTYPE).reshape(-1)
    return np.outer(state, state.conj())


def partial_trace(
    rho: np.ndarray, keep: Iterable[int], num_qubits: int | None = None
) -> np.ndarray:
    """Partial trace of a density matrix onto the qubits in ``keep``.

    The output is ordered little-endian over ``keep`` *in the order given*.
    Implemented with one reshape + einsum, no loops.
    """
    keep = list(keep)
    if num_qubits is None:
        num_qubits = int(np.log2(rho.shape[0]))
    if rho.shape != (1 << num_qubits, 1 << num_qubits):
        raise SimulationError(f"density matrix shape {rho.shape} mismatch")
    n = num_qubits
    # Convert little-endian flat labels to axis-i=qubit-i tensor layout.
    rev = tuple(range(n - 1, -1, -1))
    tensor = rho.reshape((2,) * (2 * n)).transpose(rev + tuple(2 * n - 1 - i for i in range(n)))
    drop = [q for q in range(n) if q not in keep]
    # einsum: sum ket/bra indices of dropped qubits against each other.
    ket_idx = list(range(n))
    bra_idx = list(range(n, 2 * n))
    for q in drop:
        bra_idx[q] = ket_idx[q]  # tie bra index to ket index -> trace
    # Output axes: kept qubits in caller order, reversed per block so the
    # C-order flatten is little-endian over `keep`.
    out_ket = [ket_idx[q] for q in reversed(keep)]
    out_bra = [bra_idx[q] for q in reversed(keep)]
    reduced = np.einsum(tensor, ket_idx + bra_idx, out_ket + out_bra)
    dim = 1 << len(keep)
    return np.ascontiguousarray(reduced.reshape(dim, dim))


def fidelity(a: np.ndarray, b: np.ndarray) -> float:
    """State fidelity between two pure states or a pure state and a ρ.

    * two vectors: ``|⟨a|b⟩|²``
    * vector and matrix (either order): ``⟨ψ|ρ|ψ⟩``
    * two matrices: Uhlmann fidelity via the sqrtm-free eigen route.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    if a.ndim == 1 and b.ndim == 1:
        return float(abs(np.vdot(a, b)) ** 2)
    if a.ndim == 1:
        return float(np.real(np.vdot(a, b @ a)))
    if b.ndim == 1:
        return float(np.real(np.vdot(b, a @ b)))
    # general mixed-state fidelity: (tr sqrt(sqrt(a) b sqrt(a)))^2
    wa, va = np.linalg.eigh(a)
    wa = np.clip(wa, 0.0, None)
    sqrt_a = (va * np.sqrt(wa)) @ va.conj().T
    inner = sqrt_a @ b @ sqrt_a
    w = np.linalg.eigvalsh(inner)
    w = np.clip(w, 0.0, None)
    return float(np.sum(np.sqrt(w)) ** 2)


def purity(rho: np.ndarray) -> float:
    """``tr(ρ²)`` — 1 for pure states, 1/2^n for the maximally mixed state."""
    return float(np.real(np.einsum("ij,ji->", rho, rho)))


def is_density_matrix(rho: np.ndarray, atol: float = 1e-8) -> bool:
    """Check Hermiticity, unit trace and positive semidefiniteness."""
    if rho.ndim != 2 or rho.shape[0] != rho.shape[1]:
        return False
    if not np.allclose(rho, rho.conj().T, atol=atol):
        return False
    if abs(np.trace(rho).real - 1.0) > atol:
        return False
    w = np.linalg.eigvalsh(rho)
    return bool(w.min() > -atol)


def bloch_vector(rho: np.ndarray) -> np.ndarray:
    """Bloch vector ``(⟨X⟩, ⟨Y⟩, ⟨Z⟩)`` of a single-qubit density matrix."""
    if rho.shape != (2, 2):
        raise SimulationError("bloch_vector needs a 2x2 density matrix")
    x = 2.0 * np.real(rho[0, 1])
    y = 2.0 * np.imag(rho[1, 0])
    z = np.real(rho[0, 0] - rho[1, 1])
    return np.array([x, y, z])
