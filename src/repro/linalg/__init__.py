"""Dense linear-algebra substrate: Pauli algebra, state helpers, channels."""

from repro.linalg.paulis import (
    PAULI_EIGENBASES,
    PAULI_LABELS,
    PAULI_MATRICES,
    PauliString,
    pauli_basis_change,
    pauli_eigenpairs,
    pauli_matrix,
)
from repro.linalg.states import (
    bloch_vector,
    fidelity,
    is_density_matrix,
    ket,
    partial_trace,
    purity,
    state_to_density,
)
from repro.linalg.tensor import (
    apply_matrix_to_axes,
    embed_unitary,
    kron_all,
    operator_on_qubits,
)
from repro.linalg.channels import (
    KrausChannel,
    apply_channel,
    channel_fidelity_bound,
    is_cptp,
)

__all__ = [
    "PAULI_EIGENBASES",
    "PAULI_LABELS",
    "PAULI_MATRICES",
    "PauliString",
    "pauli_basis_change",
    "pauli_eigenpairs",
    "pauli_matrix",
    "bloch_vector",
    "fidelity",
    "is_density_matrix",
    "ket",
    "partial_trace",
    "purity",
    "state_to_density",
    "apply_matrix_to_axes",
    "embed_unitary",
    "kron_all",
    "operator_on_qubits",
    "KrausChannel",
    "apply_channel",
    "channel_fidelity_bound",
    "is_cptp",
]
