"""Exception hierarchy for :mod:`repro`.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures without catching unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class CircuitError(ReproError):
    """Malformed circuit construction (bad qubit index, arity mismatch, ...)."""


class GateError(CircuitError):
    """Unknown gate name or invalid gate parameters."""


class SimulationError(ReproError):
    """Simulator-level failure (non-normalised state, bad shape, ...)."""


class NoiseError(ReproError):
    """Invalid noise channel or noise model configuration."""


class BackendError(ReproError):
    """Backend cannot execute the requested job (too many qubits, ...)."""


class TranspileError(ReproError):
    """Circuit cannot be lowered to the target device."""


class CutError(ReproError):
    """Invalid cut specification (cyclic fragments, unknown wire, ...)."""


class ReconstructionError(ReproError):
    """Fragment data is inconsistent with the requested reconstruction."""


class DetectionError(ReproError):
    """Golden-cut detection was asked for data it does not have."""
