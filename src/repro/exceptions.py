"""Exception hierarchy for :mod:`repro`.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures without catching unrelated bugs.

Every class here pickle-round-trips losslessly (type, message, and extra
attributes such as ``site``/``attempt``).  The process-pool executor relies
on this: a worker's typed failure crosses the process boundary intact
instead of degrading to an opaque ``RuntimeError``, so the parent's retry
and degradation logic sees exactly what the serial path would have seen.
Classes whose ``__init__`` stores state outside ``args`` define
``__reduce__`` accordingly.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class CircuitError(ReproError):
    """Malformed circuit construction (bad qubit index, arity mismatch, ...)."""


class GateError(CircuitError):
    """Unknown gate name or invalid gate parameters."""


class SimulationError(ReproError):
    """Simulator-level failure (non-normalised state, bad shape, ...)."""


class NoiseError(ReproError):
    """Invalid noise channel or noise model configuration."""


class BackendError(ReproError):
    """Backend cannot execute the requested job (too many qubits, ...)."""


class TransientBackendError(BackendError):
    """A backend failure expected to succeed on retry (queue hiccup, lost
    job, injected fault).  Carries the execution ``site`` — the
    (fragment, variant)-style key the retry engine uses — and the attempt
    number when known, so ledgers and error messages can pinpoint it.
    """

    def __init__(self, message: str = "", site=None, attempt=None) -> None:
        super().__init__(message)
        self.site = site
        self.attempt = attempt

    def __reduce__(self):
        # site/attempt live outside args; rebuild with them so pickling
        # across the process-pool boundary keeps the retry engine's context
        return (
            type(self),
            (self.args[0] if self.args else "", self.site, self.attempt),
        )


class CorruptedResultError(TransientBackendError):
    """An :class:`~repro.backends.base.ExecutionResult` payload failed
    boundary validation (counts key outside ``2^n``, negative count, shot
    total mismatch).  Retryable: re-executing the variant re-samples.
    """


class RetryExhaustedError(BackendError):
    """A variant kept failing through every attempt the policy allowed."""

    def __init__(self, message: str = "", site=None) -> None:
        super().__init__(message)
        self.site = site

    def __reduce__(self):
        return (type(self), (self.args[0] if self.args else "", self.site))


class DeadlineExceededError(BackendError):
    """The retry policy's wall-clock (modelled-seconds) budget ran out."""


class CircuitBreakerOpenError(BackendError):
    """Too many consecutive failures on one fragment; failing fast."""


class TranspileError(ReproError):
    """Circuit cannot be lowered to the target device."""


class CutError(ReproError):
    """Invalid cut specification (cyclic fragments, unknown wire, ...)."""


class ReconstructionError(ReproError):
    """Fragment data is inconsistent with the requested reconstruction."""


class DetectionError(ReproError):
    """Golden-cut detection was asked for data it does not have."""
