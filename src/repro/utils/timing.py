"""Wall-clock and virtual-clock instrumentation.

Two timing facilities are provided:

:class:`Stopwatch`
    Measures real elapsed process time (``perf_counter``).  Used to time the
    classical reconstruction stage (paper Fig. 4).

:class:`VirtualClock`
    Accumulates *modelled* time without sleeping.  The fake-hardware backend
    charges per-job overhead and per-shot latency to a virtual clock so the
    paper's device wall-time experiment (Fig. 5: 18.84 s vs 12.61 s) can be
    reproduced in milliseconds of real compute.  Virtual time is additive and
    deterministic, which also makes the runtime benches assertable in tests.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["Stopwatch", "VirtualClock"]


class Stopwatch:
    """Context-manager stopwatch measuring real elapsed seconds.

    Examples
    --------
    >>> with Stopwatch() as sw:
    ...     _ = sum(range(1000))
    >>> sw.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start: float | None = None
        self.elapsed: float = 0.0

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        assert self._start is not None
        self.elapsed += time.perf_counter() - self._start
        self._start = None

    def reset(self) -> None:
        self._start = None
        self.elapsed = 0.0


@dataclass
class VirtualClock:
    """Deterministic accumulator of modelled execution time (seconds).

    Components charge time with :meth:`charge`; experiment harnesses read
    :attr:`now` to report modelled wall time.  A log of ``(label, seconds)``
    entries is kept for per-stage breakdowns in the benchmark reports.
    """

    now: float = 0.0
    log: list[tuple[str, float]] = field(default_factory=list)

    def charge(self, seconds: float, label: str = "") -> float:
        """Advance the clock by ``seconds`` (must be non-negative)."""
        if seconds < 0:
            raise ValueError(f"cannot charge negative time: {seconds}")
        self.now += seconds
        self.log.append((label, seconds))
        return self.now

    def reset(self) -> None:
        self.now = 0.0
        self.log.clear()

    def total(self, label_prefix: str = "") -> float:
        """Sum of charged time whose label starts with ``label_prefix``."""
        return sum(s for lbl, s in self.log if lbl.startswith(label_prefix))
