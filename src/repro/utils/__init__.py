"""Shared low-level utilities: bit manipulation, RNG handling, timing."""

from repro.utils.bits import (
    bit_at,
    bits_to_index,
    bitstring_to_index,
    format_bitstring,
    index_to_bits,
    index_to_bitstring,
    marginalize_probs,
    permute_probability_axes,
    split_index,
)
from repro.utils.rng import as_generator, derive_rng, spawn_rngs
from repro.utils.timing import Stopwatch, VirtualClock

__all__ = [
    "bit_at",
    "bits_to_index",
    "bitstring_to_index",
    "format_bitstring",
    "index_to_bits",
    "index_to_bitstring",
    "marginalize_probs",
    "permute_probability_axes",
    "split_index",
    "as_generator",
    "derive_rng",
    "spawn_rngs",
    "Stopwatch",
    "VirtualClock",
]
