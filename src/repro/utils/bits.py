"""Vectorised bit-manipulation helpers.

Conventions (used consistently across the whole library, see DESIGN.md §5):

* Qubit ``i`` corresponds to tensor axis ``i`` of a state array.
* The flat integer index of a computational basis state is **little-endian**
  in the qubit index: ``index = sum_i bit_i * 2**i`` — qubit 0 is the least
  significant bit.
* Bitstrings are displayed with qubit 0 leftmost: ``"b0 b1 ... b(n-1)"``
  (without spaces).  This avoids the endianness confusion familiar from
  other toolkits; :func:`format_bitstring` / :func:`bitstring_to_index` are
  the only sanctioned converters.

All hot-path helpers are vectorised over NumPy arrays of indices, per the
HPC guide ("vectorising for loops").
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "bit_at",
    "bits_to_index",
    "bitstring_to_index",
    "format_bitstring",
    "index_to_bits",
    "index_to_bitstring",
    "marginalize_probs",
    "permute_probability_axes",
    "split_index",
]


def bit_at(indices: np.ndarray | int, qubit: int) -> np.ndarray | int:
    """Extract the bit of ``qubit`` from little-endian basis ``indices``.

    Works elementwise on arrays so callers can classify a whole sampled
    outcome vector in one shot.
    """
    return (np.asarray(indices) >> qubit) & 1


def index_to_bits(index: int, num_qubits: int) -> np.ndarray:
    """Expand a little-endian basis index into a bit array of length ``n``.

    ``result[i]`` is the bit of qubit ``i``.
    """
    if index < 0 or index >= (1 << num_qubits):
        raise ValueError(f"index {index} out of range for {num_qubits} qubits")
    return (index >> np.arange(num_qubits)) & 1


def bits_to_index(bits: Sequence[int] | np.ndarray) -> int:
    """Pack a bit array (``bits[i]`` = bit of qubit ``i``) into a flat index."""
    bits = np.asarray(bits, dtype=np.int64)
    if bits.ndim != 1:
        raise ValueError("bits must be one-dimensional")
    if np.any((bits != 0) & (bits != 1)):
        raise ValueError("bits must contain only 0/1")
    return int(np.dot(bits, 1 << np.arange(bits.size, dtype=np.int64)))


def format_bitstring(index: int, num_qubits: int) -> str:
    """Render a basis index as the canonical display string (qubit 0 first)."""
    return "".join(str(int(b)) for b in index_to_bits(index, num_qubits))


def index_to_bitstring(index: int, num_qubits: int) -> str:
    """Alias of :func:`format_bitstring` for symmetry with the inverse."""
    return format_bitstring(index, num_qubits)


def bitstring_to_index(bitstring: str) -> int:
    """Parse the canonical display string back into a little-endian index."""
    if not bitstring or any(c not in "01" for c in bitstring):
        raise ValueError(f"invalid bitstring {bitstring!r}")
    return bits_to_index([int(c) for c in bitstring])


def split_index(
    indices: np.ndarray | int,
    groups: Sequence[Sequence[int]],
) -> tuple[np.ndarray, ...]:
    """Split basis ``indices`` over ``n`` qubits into sub-indices per group.

    ``groups`` is a partition (or subset selection) of qubit positions.  For
    each group ``g = [q0, q1, ...]`` the returned sub-index is little-endian
    in the *order the group lists the qubits*:  ``sub = sum_j bit(q_j) 2**j``.

    This is the workhorse for separating "output bits" from "cut-wire bits"
    in fragment measurement records; it is fully vectorised.
    """
    indices = np.asarray(indices)
    out: list[np.ndarray] = []
    for group in groups:
        sub = np.zeros_like(indices)
        for j, q in enumerate(group):
            sub = sub | (((indices >> q) & 1) << j)
        out.append(sub)
    return tuple(out)


def permute_probability_axes(
    probs: np.ndarray, permutation: Sequence[int]
) -> np.ndarray:
    """Reorder the qubits of a flat probability vector.

    ``permutation[i]`` gives the *new* position of qubit ``i``.  The returned
    vector satisfies ``out[index with bit(new_pos)=b] = in[index with
    bit(i)=b]``.  Implemented as a reshape/transpose (views + one copy on
    ravel), never a Python loop over the 2**n entries.
    """
    n = int(np.log2(probs.size))
    if probs.size != 1 << n:
        raise ValueError("probability vector length is not a power of two")
    perm = list(permutation)
    if sorted(perm) != list(range(n)):
        raise ValueError(f"invalid permutation {permutation} for {n} qubits")
    rev = tuple(range(n - 1, -1, -1))
    # little-endian flat -> tensor with axis i = qubit i
    tensor = probs.reshape((2,) * n).transpose(rev)
    # We want output axis j to hold the qubit i with perm[i] == j, i.e.
    # output axis j comes from input axis perm^{-1}(j).
    inverse = np.argsort(perm)
    out = np.transpose(tensor, axes=inverse)
    # tensor (axis i = output qubit i) -> little-endian flat
    return out.transpose(rev).reshape(-1)


def marginalize_probs(
    probs: np.ndarray, keep: Iterable[int], num_qubits: int | None = None
) -> np.ndarray:
    """Marginalise a probability vector onto the qubits in ``keep``.

    The output is little-endian over ``keep`` *in the order given*.
    """
    if num_qubits is None:
        num_qubits = int(np.log2(probs.size))
    keep = list(keep)
    if probs.size != 1 << num_qubits:
        raise ValueError("probability vector length mismatch")
    n = num_qubits
    # little-endian flat -> tensor with axis i = qubit i
    tensor = probs.reshape((2,) * n).transpose(tuple(range(n - 1, -1, -1)))
    drop = tuple(q for q in range(n) if q not in keep)
    marg = tensor.sum(axis=drop) if drop else tensor
    # marg axes are the kept qubits in increasing qubit order; reorder so
    # axis j = keep[j], then flatten little-endian (reverse axes first).
    increasing = sorted(keep)
    order = [increasing.index(q) for q in keep]
    marg = np.transpose(marg, axes=order)
    k = len(keep)
    return marg.transpose(tuple(range(k - 1, -1, -1))).reshape(-1)
