"""Random-number-generator plumbing.

Every stochastic component of the library (random circuits, samplers, noise
injection, shot allocation) takes a ``seed`` argument that may be ``None``,
an ``int``, or an existing :class:`numpy.random.Generator`.  These helpers
normalise the three cases and derive independent child streams so that
parallel fragment executions are statistically independent yet reproducible.
"""

from __future__ import annotations

import numpy as np

__all__ = ["as_generator", "derive_rng", "spawn_rngs", "spawn_seed_sequences"]

SeedLike = "int | np.random.Generator | None"


def as_generator(seed: "int | np.random.Generator | None") -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Passing an existing generator returns it unchanged (shared stream);
    passing ``None`` produces a fresh OS-seeded stream.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def derive_rng(rng: np.random.Generator, *tags: int) -> np.random.Generator:
    """Derive a child generator deterministically identified by ``tags``.

    The child stream is independent of (future draws from) the parent: we
    seed it from the parent's bit generator state combined with the tags via
    SeedSequence, without consuming parent entropy in a data-dependent way.
    """
    salt = [int(t) & 0xFFFFFFFF for t in tags]
    base = int(rng.integers(0, 2**63 - 1))
    return np.random.default_rng(np.random.SeedSequence([base, *salt]))


def spawn_seed_sequences(
    seed: "int | np.random.Generator | None", n: int
) -> list[np.random.SeedSequence]:
    """The ``n`` SeedSequence children behind :func:`spawn_rngs`.

    ``np.random.default_rng(spawn_seed_sequences(seed, n)[j])`` is exactly
    the generator ``spawn_rngs(seed, n)[j]`` would be — including the one
    parent draw consumed when ``seed`` is a Generator.  The retry engine
    uses this to rebuild variant ``j``'s stream fresh on every attempt, so
    a retried execution samples the same counts the retry-free batch would.
    """
    if isinstance(seed, np.random.Generator):
        base = int(seed.integers(0, 2**63 - 1))
        ss = np.random.SeedSequence(base)
    else:
        ss = np.random.SeedSequence(seed)
    return list(ss.spawn(n))


def spawn_rngs(
    seed: "int | np.random.Generator | None | list | tuple", n: int
) -> list[np.random.Generator]:
    """Create ``n`` independent child generators from one seed.

    Used by the parallel executor: each fragment variant gets its own stream
    so results do not depend on execution order.  A list/tuple of pre-built
    Generators passes through unchanged (length-checked) — how the retry
    engine and fault-injection wrapper hand a backend the exact per-variant
    streams a batched call would have spawned itself.
    """
    if isinstance(seed, (list, tuple)):
        if len(seed) != n:
            raise ValueError(
                f"need {n} pre-built generators, got {len(seed)}"
            )
        if not all(isinstance(g, np.random.Generator) for g in seed):
            raise ValueError("seed list must contain numpy Generators only")
        return list(seed)
    return [np.random.default_rng(child) for child in spawn_seed_sequences(seed, n)]
