"""Diagonal observables and bitstring projectors.

The paper's experiments estimate "the expectation of the projector observable
``Π_b = |b⟩⟨b|``" for every bitstring ``b`` (Eq. 16) — i.e. the full output
distribution.  A :class:`DiagonalObservable` is any real diagonal operator
(stored as its diagonal vector); :class:`BitstringProjector` is the special
case with a single 1.  Both split trivially across a cut (Eq. 16:
``Π_b = Π_b1 ⊗ Π_b2``), implemented in
:mod:`repro.observables.decompose`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ReproError
from repro.utils.bits import bitstring_to_index, format_bitstring

__all__ = ["DiagonalObservable", "BitstringProjector", "all_bitstring_projectors"]


@dataclass(frozen=True)
class DiagonalObservable:
    """A real diagonal operator on ``num_qubits`` qubits.

    ``diagonal[i]`` is the eigenvalue on basis state ``i`` (little-endian).
    """

    diagonal: np.ndarray
    num_qubits: int

    def __post_init__(self) -> None:
        d = np.asarray(self.diagonal, dtype=np.float64)
        if d.shape != (1 << self.num_qubits,):
            raise ReproError(
                f"diagonal length {d.shape} mismatch for {self.num_qubits} qubits"
            )
        object.__setattr__(self, "diagonal", d)

    def expectation(self, probs: np.ndarray) -> float:
        """``Σ_b diag[b] p[b]`` given an outcome distribution."""
        if probs.shape != self.diagonal.shape:
            raise ReproError("probability vector shape mismatch")
        return float(np.dot(probs, self.diagonal))

    @classmethod
    def parity(cls, num_qubits: int) -> "DiagonalObservable":
        """The all-Z Pauli string ``Z⊗...⊗Z`` as a diagonal observable."""
        idx = np.arange(1 << num_qubits)
        # popcount parity, vectorised
        bits = idx.copy()
        parity = np.zeros_like(idx)
        for q in range(num_qubits):
            parity ^= (bits >> q) & 1
        return cls(1.0 - 2.0 * parity, num_qubits)

    @classmethod
    def from_function(cls, fn, num_qubits: int) -> "DiagonalObservable":
        """Build from a callable ``fn(basis_index) -> float``."""
        d = np.array([fn(i) for i in range(1 << num_qubits)], dtype=np.float64)
        return cls(d, num_qubits)


class BitstringProjector(DiagonalObservable):
    """``Π_b = |b⟩⟨b|`` for a display bitstring ``b`` (qubit 0 leftmost)."""

    def __init__(self, bitstring: str) -> None:
        n = len(bitstring)
        d = np.zeros(1 << n, dtype=np.float64)
        d[bitstring_to_index(bitstring)] = 1.0
        super().__init__(d, n)
        object.__setattr__(self, "bitstring", bitstring)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BitstringProjector({self.bitstring!r})"


def all_bitstring_projectors(num_qubits: int) -> list[BitstringProjector]:
    """Every ``Π_b`` — jointly equivalent to the full output distribution."""
    return [
        BitstringProjector(format_bitstring(i, num_qubits))
        for i in range(1 << num_qubits)
    ]
