"""Splitting observables across a circuit bipartition.

A diagonal observable factorises across a cut iff its diagonal is (a sum of)
tensor products over the two fragments' output qubits (paper Eq. 16).  Pure
tensor factors are recovered with a rank-1 check on the reshaped diagonal:
reshape the length-2^n diagonal into a (2^{n1} × 2^{n2}) matrix over the two
fragments' index groups; the observable is separable iff that matrix has
rank 1, and the factors are the leading singular vectors.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ReproError
from repro.observables.projector import DiagonalObservable
from repro.utils.bits import split_index

__all__ = ["split_diagonal_observable"]


def split_diagonal_observable(
    observable: DiagonalObservable,
    group1: list[int],
    group2: list[int],
) -> tuple[np.ndarray, np.ndarray]:
    """Factor a diagonal observable over two qubit groups.

    Parameters
    ----------
    observable:
        Diagonal observable on the full register.
    group1, group2:
        Original qubit labels owned by fragment 1 / fragment 2 (a partition
        of ``range(n)``); each factor is little-endian *in the order given*.

    Returns
    -------
    (diag1, diag2):
        Vectors with ``diag[b_full] = diag1[b1] * diag2[b2]`` where ``b1``
        and ``b2`` are the group sub-indices of ``b_full``.

    Raises
    ------
    ReproError
        If the observable does not factor across the groups (rank > 1).
    """
    n = observable.num_qubits
    if sorted(group1 + group2) != list(range(n)):
        raise ReproError("groups must partition the qubit register")
    d = observable.diagonal
    idx = np.arange(d.size)
    sub1, sub2 = split_index(idx, [group1, group2])
    mat = np.zeros((1 << len(group1), 1 << len(group2)))
    mat[sub1, sub2] = d
    # rank-1 factorisation via SVD of the (small) matrix
    u, s, vt = np.linalg.svd(mat, full_matrices=False)
    if s.size > 1 and s[1] > 1e-9 * max(s[0], 1.0):
        raise ReproError(
            "observable does not factor across the cut (rank "
            f">= 2, singular values {s[:3]})"
        )
    diag1 = u[:, 0] * np.sqrt(s[0])
    diag2 = vt[0, :] * np.sqrt(s[0])
    # fix sign indeterminacy: make the largest |entry| of diag1 positive
    k = int(np.argmax(np.abs(diag1)))
    if diag1[k] < 0:
        diag1, diag2 = -diag1, -diag2
    return diag1, diag2
