"""Observables: diagonal projectors, Pauli strings, fragment decomposition."""

from repro.observables.projector import (
    BitstringProjector,
    DiagonalObservable,
    all_bitstring_projectors,
)
from repro.observables.decompose import split_diagonal_observable
from repro.observables.pauli_obs import PauliSumObservable, maxcut_hamiltonian

__all__ = [
    "BitstringProjector",
    "DiagonalObservable",
    "all_bitstring_projectors",
    "split_diagonal_observable",
    "PauliSumObservable",
    "maxcut_hamiltonian",
]
