"""Weighted sums of Pauli strings (Hamiltonians / cost functions).

Covers the observables the paper's motivating applications use: Ising-type
cost Hamiltonians for combinatorial optimisation (QAOA MaxCut), parity
checks, and general diagonal operators.  Diagonal sums (labels in {I, Z})
evaluate directly on reconstructed distributions — i.e. they compose with
wire cutting for free via :meth:`PauliSumObservable.diagonal`.

Non-diagonal sums are supported for *exact* evaluation (via the statevector
simulator) and for measurement planning (grouping into mutually commuting
qubit-wise bases), which is what a VQE-style driver would need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import networkx as nx
import numpy as np

from repro.circuits.circuit import Circuit
from repro.exceptions import ReproError
from repro.linalg.paulis import PauliString
from repro.observables.projector import DiagonalObservable
from repro.sim.expectation import expectation_of_observable

__all__ = ["PauliSumObservable", "maxcut_hamiltonian"]


@dataclass(frozen=True)
class PauliSumObservable:
    """``H = Σ_j c_j P_j`` with real coefficients and Pauli-string terms."""

    terms: tuple[tuple[float, PauliString], ...]

    def __post_init__(self) -> None:
        if not self.terms:
            raise ReproError("PauliSumObservable needs at least one term")
        n = self.terms[0][1].num_qubits
        for c, p in self.terms:
            if p.num_qubits != n:
                raise ReproError("all terms must share the qubit count")

    # ------------------------------------------------------------- builders
    @classmethod
    def from_list(
        cls, entries: Iterable[tuple[float, str]]
    ) -> "PauliSumObservable":
        """Build from ``[(coeff, "ZZI"), ...]`` label pairs."""
        return cls(
            tuple((float(c), PauliString.from_label(s)) for c, s in entries)
        )

    # ------------------------------------------------------------- queries
    @property
    def num_qubits(self) -> int:
        return self.terms[0][1].num_qubits

    @property
    def num_terms(self) -> int:
        return len(self.terms)

    def is_diagonal(self) -> bool:
        """True iff every term uses only {I, Z} — evaluates on distributions."""
        return all(p.is_diagonal() for _, p in self.terms)

    def diagonal(self) -> np.ndarray:
        """Dense diagonal of a diagonal sum (vectorised, O(terms · 2^n))."""
        if not self.is_diagonal():
            raise ReproError("diagonal() requires a {I,Z}-only sum")
        out = np.zeros(1 << self.num_qubits, dtype=np.float64)
        for c, p in self.terms:
            out += c * p.diagonal().real
        return out

    def as_diagonal_observable(self) -> DiagonalObservable:
        return DiagonalObservable(self.diagonal(), self.num_qubits)

    # ---------------------------------------------------------- evaluation
    def expectation_from_probs(self, probs: np.ndarray) -> float:
        """⟨H⟩ from an outcome distribution (diagonal sums only)."""
        return float(np.dot(self.diagonal(), probs))

    def expectation_exact(self, circuit: Circuit) -> float:
        """Exact ⟨ψ|H|ψ⟩ for the output of ``circuit`` (any Pauli sum)."""
        return float(
            sum(c * expectation_of_observable(circuit, p) for c, p in self.terms)
        )

    # ------------------------------------------------- measurement planning
    def measurement_groups(self) -> list[list[int]]:
        """Greedy qubit-wise-commuting grouping of term indices.

        Two strings are qubit-wise compatible when at every position their
        labels agree or one is ``I`` — such a group is measurable with a
        single basis setting.  Greedy first-fit is the standard heuristic
        (optimal grouping is graph colouring).
        """
        groups: list[tuple[list[int], list[str]]] = []
        for idx, (_, p) in enumerate(self.terms):
            placed = False
            for members, basis in groups:
                if all(
                    a == "I" or b == "I" or a == b
                    for a, b in zip(p.labels, basis)
                ):
                    members.append(idx)
                    for q, a in enumerate(p.labels):
                        if a != "I":
                            basis[q] = a
                    placed = True
                    break
            if not placed:
                groups.append(([idx], list(p.labels)))
        return [members for members, _ in groups]

    def __str__(self) -> str:
        parts = [f"{c:+g}·{''.join(p.labels)}" for c, p in self.terms[:6]]
        more = "" if self.num_terms <= 6 else f" ... ({self.num_terms} terms)"
        return " ".join(parts) + more


def maxcut_hamiltonian(graph: nx.Graph) -> PauliSumObservable:
    """MaxCut cost observable ``C = Σ_{(u,v)∈E} (1 − Z_u Z_v)/2``.

    ``⟨C⟩`` is the expected cut size; maximising it solves MaxCut.  Nodes
    must be ``0..n-1``.  Diagonal, so it composes with wire cutting.
    """
    n = graph.number_of_nodes()
    if sorted(graph.nodes) != list(range(n)):
        raise ReproError("graph nodes must be 0..n-1")
    terms: list[tuple[float, PauliString]] = [
        (0.5 * graph.number_of_edges(), PauliString.identity(n))
    ]
    for u, v in graph.edges:
        labels = ["I"] * n
        labels[u] = labels[v] = "Z"
        terms.append((-0.5, PauliString(tuple(labels))))
    return PauliSumObservable(tuple(terms))
