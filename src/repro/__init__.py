"""repro — reproduction of *Efficient Quantum Circuit Cutting by Neglecting
Basis Elements* (Chen, Hansen et al., IPPS 2023, arXiv:2304.04093).

The package implements Pauli-basis wire cutting from scratch (circuit IR,
statevector/density simulators, noisy fake hardware) plus the paper's
contribution: **golden cutting points**, cut locations where a basis element
provably carries no information and can be neglected — reducing
reconstruction terms from ``4^K`` to ``4^{K_r} 3^{K_g}`` and circuit
executions from ``O(6^K)`` to ``O(6^{K_r} 4^{K_g})``.

Quickstart
----------
>>> from repro import golden_ansatz, cut_and_run, IdealBackend
>>> spec = golden_ansatz(5, seed=1)                      # paper Fig. 2 family
>>> backend = IdealBackend()
>>> result = cut_and_run(spec.circuit, backend, cuts=spec.cut_spec,
...                      shots=1000, golden="analytic", seed=1)
>>> result.golden_used
{0: 'Y'}

See ``examples/`` for runnable walkthroughs and ``benchmarks/`` for the
reproduction of every figure in the paper.
"""

from repro.backends import (
    Backend,
    DeviceTimingModel,
    ExecutionResult,
    FakeHardwareBackend,
    IdealBackend,
    fake_5q_device,
    fake_7q_device,
    fake_device,
)
from repro.circuits import (
    Circuit,
    draw,
    ghz_circuit,
    qaoa_maxcut_circuit,
    qft_circuit,
    random_circuit,
    random_real_circuit,
    real_amplitudes_ansatz,
)
from repro.core import (
    CutRunResult,
    GoldenDetectionResult,
    cost_report,
    cut_and_run,
    detect_golden_bases,
    find_golden_bases_analytic,
    golden_ansatz,
    predicted_speedup,
    three_qubit_example,
)
from repro.cutting import (
    CutPoint,
    CutSearchResult,
    CutSpec,
    FragmentChain,
    FragmentPair,
    FragmentTree,
    bipartition,
    find_cut_specs,
    find_cuts,
    partition_chain,
    partition_tree,
    reconstruct_chain_distribution,
    reconstruct_distribution,
    reconstruct_expectation,
    reconstruct_tree_distribution,
    run_chain_fragments,
    run_fragments,
    run_tree_fragments,
)
from repro.cutting.execution import (
    exact_chain_data,
    exact_fragment_data,
    exact_tree_data,
)
from repro.exceptions import ReproError
from repro.metrics import total_variation, weighted_distance
from repro.observables import BitstringProjector, DiagonalObservable
from repro.sim import simulate_statevector

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # backends
    "Backend",
    "ExecutionResult",
    "IdealBackend",
    "FakeHardwareBackend",
    "DeviceTimingModel",
    "fake_5q_device",
    "fake_7q_device",
    "fake_device",
    # circuits
    "Circuit",
    "draw",
    "ghz_circuit",
    "qft_circuit",
    "random_circuit",
    "random_real_circuit",
    "real_amplitudes_ansatz",
    "qaoa_maxcut_circuit",
    # core (the paper's contribution)
    "golden_ansatz",
    "three_qubit_example",
    "cut_and_run",
    "CutRunResult",
    "find_golden_bases_analytic",
    "detect_golden_bases",
    "GoldenDetectionResult",
    "cost_report",
    "predicted_speedup",
    # cutting baseline
    "CutPoint",
    "CutSpec",
    "CutSearchResult",
    "find_cut_specs",
    "FragmentPair",
    "FragmentChain",
    "FragmentTree",
    "bipartition",
    "partition_chain",
    "partition_tree",
    "find_cuts",
    "run_fragments",
    "run_chain_fragments",
    "run_tree_fragments",
    "exact_fragment_data",
    "exact_chain_data",
    "exact_tree_data",
    "reconstruct_distribution",
    "reconstruct_chain_distribution",
    "reconstruct_tree_distribution",
    "reconstruct_expectation",
    # observables / metrics / sim
    "BitstringProjector",
    "DiagonalObservable",
    "weighted_distance",
    "total_variation",
    "simulate_statevector",
    "ReproError",
]
