"""Lowering circuits to device constraints: basis gates, connectivity."""

from repro.transpile.coupling import CouplingMap
from repro.transpile.basis import decompose_to_basis, HARDWARE_BASIS
from repro.transpile.passes import cancel_adjacent_inverses, merge_single_qubit_runs
from repro.transpile.routing import route_circuit
from repro.transpile.pipeline import transpile

__all__ = [
    "CouplingMap",
    "HARDWARE_BASIS",
    "decompose_to_basis",
    "merge_single_qubit_runs",
    "cancel_adjacent_inverses",
    "route_circuit",
    "transpile",
]
