"""Lower arbitrary gates to the IBM-style native basis ``{rz, sx, x, cx}``.

Two stages:

1. every multi-qubit gate is rewritten into CX + single-qubit gates using
   textbook identities (recursively for Toffoli/Fredkin);
2. every single-qubit gate is replaced by the ZSX Euler sequence
   ``rz(λ) · sx · rz(θ+π) · sx · rz(φ+π)`` obtained from its ZYZ angles.

Global phase is dropped — harmless because the basis translation is applied
to complete circuits only, never to controlled sub-blocks.
"""

from __future__ import annotations

import cmath
import math

import numpy as np

from repro.circuits.circuit import Circuit
from repro.circuits.instruction import Instruction
from repro.exceptions import TranspileError

__all__ = ["HARDWARE_BASIS", "decompose_to_basis", "zyz_angles"]

#: Native gate set of the fake IBM-style devices.
HARDWARE_BASIS: frozenset[str] = frozenset({"rz", "sx", "x", "cx"})

_ATOL = 1e-10


def zyz_angles(u: np.ndarray) -> tuple[float, float, float]:
    """ZYZ Euler angles ``(theta, phi, lam)`` with ``U ∝ Rz(φ)Ry(θ)Rz(λ)``."""
    if u.shape != (2, 2):
        raise TranspileError("zyz_angles needs a 2x2 matrix")
    det = u[0, 0] * u[1, 1] - u[0, 1] * u[1, 0]
    su = u / cmath.sqrt(det)  # now in SU(2) up to ±1
    theta = 2.0 * math.atan2(abs(su[1, 0]), abs(su[0, 0]))
    if abs(su[0, 0]) < _ATOL:  # θ = π: only φ−λ is defined
        phi = 2.0 * cmath.phase(su[1, 0])
        lam = 0.0
    elif abs(su[1, 0]) < _ATOL:  # θ = 0: only φ+λ is defined
        phi = 2.0 * cmath.phase(su[1, 1])
        lam = 0.0
    else:
        plus = 2.0 * cmath.phase(su[1, 1])
        minus = 2.0 * cmath.phase(su[1, 0])
        phi = (plus + minus) / 2.0
        lam = (plus - minus) / 2.0
    return theta, phi, lam


def _emit_1q(out: Circuit, q: int, u: np.ndarray) -> None:
    """Append the ZSX realisation of a single-qubit unitary to ``out``."""
    theta, phi, lam = zyz_angles(u)
    # Special-case (near-)diagonal gates: a single rz suffices.
    if abs(theta) < 1e-9:
        angle = phi + lam
        if abs(_wrap(angle)) > 1e-9:
            out.rz(_wrap(angle), q)
        return
    out.rz(_wrap(lam), q)
    out.sx(q)
    out.rz(_wrap(theta + math.pi), q)
    out.sx(q)
    out.rz(_wrap(phi + math.pi), q)


def _wrap(angle: float) -> float:
    """Wrap to (−π, π] for tidy output."""
    a = math.fmod(angle + math.pi, 2.0 * math.pi)
    if a <= 0:
        a += 2.0 * math.pi
    return a - math.pi


# -- multi-qubit rewriting --------------------------------------------------

def _expand(inst: Instruction, out: Circuit) -> bool:
    """Rewrite a multi-qubit non-CX gate onto ``out``; False if untouched."""
    name = inst.name
    q = inst.qubits
    p = inst.params
    if name == "cx":
        return False
    if name == "cz":
        a, b = q
        out.h(b).cx(a, b).h(b)
    elif name == "cy":
        a, b = q
        out.sdg(b).cx(a, b).s(b)
    elif name == "ch":
        a, b = q
        # CH = (I⊗W) CX (I⊗W†) with W = e^{iπ/4}-ish Ry(π/4) combination:
        out.s(b).h(b).t(b).cx(a, b).tdg(b).h(b).sdg(b)
    elif name == "swap":
        a, b = q
        out.cx(a, b).cx(b, a).cx(a, b)
    elif name == "iswap":
        a, b = q
        out.s(a).s(b).h(a).cx(a, b).cx(b, a).h(b)
    elif name == "crz":
        a, b = q
        out.rz(p[0] / 2, b).cx(a, b).rz(-p[0] / 2, b).cx(a, b)
    elif name == "cp":
        a, b = q
        out.p(p[0] / 2, a).p(p[0] / 2, b).cx(a, b).p(-p[0] / 2, b).cx(a, b)
    elif name == "rzz":
        a, b = q
        out.cx(a, b).rz(p[0], b).cx(a, b)
    elif name == "rxx":
        a, b = q
        out.h(a).h(b).cx(a, b).rz(p[0], b).cx(a, b).h(a).h(b)
    elif name == "ryy":
        a, b = q
        # Ry eigenbasis: conjugate by Rx(π/2)
        out.rx(math.pi / 2, a).rx(math.pi / 2, b)
        out.cx(a, b).rz(p[0], b).cx(a, b)
        out.rx(-math.pi / 2, a).rx(-math.pi / 2, b)
    elif name == "ccx":
        c1, c2, t = q
        out.h(t).cx(c2, t).tdg(t).cx(c1, t).t(t).cx(c2, t).tdg(t)
        out.cx(c1, t).t(c2).t(t).h(t).cx(c1, c2).t(c1).tdg(c2).cx(c1, c2)
    elif name == "cswap":
        # Fredkin = CX(b,a) · CCX(c,a,b) · CX(b,a)
        from repro.circuits.gates import Gate

        c, a, b = q
        out.cx(b, a)
        _expand(Instruction(Gate("ccx"), (c, a, b)), out)
        out.cx(b, a)
    else:
        raise TranspileError(f"no decomposition rule for gate {name!r}")
    return True


def decompose_to_basis(circuit: Circuit) -> Circuit:
    """Return an equivalent circuit using only ``{rz, sx, x, cx}`` gates.

    Equivalence is up to global phase; the round-trip is property-tested
    against the exact unitary in the test suite.
    """
    # Stage 1: multi-qubit gates -> CX + arbitrary 1q gates.
    stage1 = Circuit(circuit.num_qubits, name=f"{circuit.name}_basis")
    for inst in circuit:
        if inst.name == "barrier":
            stage1.append(inst)  # fences survive lowering
            continue
        if len(inst.qubits) == 1:
            stage1.append(inst)
        elif _expand(inst, stage1):
            pass
        else:
            stage1.append(inst)  # cx passes through
    # Stage 2: 1q gates -> rz/sx (x kept as-is; id dropped).
    out = Circuit(circuit.num_qubits, name=stage1.name)
    for inst in stage1:
        if inst.name == "barrier":
            out.append(inst)
            continue
        if len(inst.qubits) == 2:
            out.append(inst)
            continue
        if inst.name == "id":
            continue
        if inst.name in ("rz", "sx", "x"):
            out.append(inst)
            continue
        _emit_1q(out, inst.qubits[0], inst.gate.matrix())
    return out
