"""Peephole optimisation passes.

Lightweight cleanups run before basis translation so the fake hardware sees
realistic gate counts:

* :func:`merge_single_qubit_runs` — collapse maximal runs of single-qubit
  gates on a wire into one matrix (later re-expanded to at most 5 native
  gates by the ZSX decomposition, bounding depth).
* :func:`cancel_adjacent_inverses` — drop ``G G†`` pairs (including
  self-inverse gates repeated twice, e.g. ``cx cx``).
"""

from __future__ import annotations

import numpy as np

from repro.circuits.circuit import Circuit
from repro.circuits.gates import get_gate_def
from repro.circuits.instruction import Instruction
from repro.transpile.basis import _emit_1q

__all__ = ["merge_single_qubit_runs", "cancel_adjacent_inverses"]


def merge_single_qubit_runs(circuit: Circuit) -> Circuit:
    """Collapse consecutive 1q gates per wire into a single ZSX sequence.

    Multi-qubit gates act as barriers on their wires, and explicit
    ``barrier`` instructions fence their listed wires: pending runs are
    flushed and the barrier is kept, so gates on opposite sides of a fence
    are never merged.  That invariant is what lets the noisy fragment cache
    (:mod:`repro.cutting.noisy_cache`) share one transpiled body across all
    measurement/preparation variants.  The merged unitary is re-emitted
    through the ZSX basis immediately, so the output contains only
    ``rz``/``sx`` (plus the untouched multi-qubit gates and barriers); this
    pass therefore also functions as a 1q basis translator.
    """
    n = circuit.num_qubits
    pending: dict[int, np.ndarray] = {}
    out = Circuit(n, name=circuit.name)

    def flush(q: int) -> None:
        u = pending.pop(q, None)
        if u is not None:
            _emit_1q(out, q, u)

    for inst in circuit:
        if inst.name == "barrier":
            # sorted, like the terminal flush, so a trailing fence emits the
            # same gate order as no fence at all
            for q in sorted(inst.qubits):
                flush(q)
            out.append(inst)
            continue
        if len(inst.qubits) == 1:
            q = inst.qubits[0]
            u = inst.gate.matrix()
            pending[q] = u @ pending.get(q, np.eye(2, dtype=u.dtype))
        else:
            for q in inst.qubits:
                flush(q)
            out.append(inst)
    for q in sorted(pending):
        flush(q)
    return out


def cancel_adjacent_inverses(circuit: Circuit) -> Circuit:
    """Remove adjacent ``G G†`` pairs on identical qubit tuples.

    Runs to a fixed point: cancelling one pair may make two other gates
    adjacent.  Only exact structural inverses are recognised (self-inverse
    gates, s/sdg, t/tdg, sx/sxdg and parametric gates with negated angles).
    """
    insts = list(circuit)
    changed = True
    while changed:
        changed = False
        out: list[Instruction] = []
        # last instruction per wire stack for adjacency across wires
        i = 0
        while i < len(insts):
            cur = insts[i]
            if out:
                prev = out[-1]
                if _are_inverse(prev, cur) and prev.qubits == cur.qubits:
                    # ensure true adjacency: no intervening op touches the wires
                    out.pop()
                    i += 1
                    changed = True
                    continue
            out.append(cur)
            i += 1
        insts = out
    return Circuit(circuit.num_qubits, insts, name=circuit.name)


def _are_inverse(a: Instruction, b: Instruction) -> bool:
    if a.name == "barrier" or b.name == "barrier":
        return False
    if a.qubits != b.qubits:
        return False
    da = get_gate_def(a.name)
    if da.self_inverse and a.name == b.name and not a.params:
        return True
    pairs = {("s", "sdg"), ("sdg", "s"), ("t", "tdg"), ("tdg", "t"),
             ("sx", "sxdg"), ("sxdg", "sx")}
    if (a.name, b.name) in pairs:
        return True
    if a.name == b.name and da.num_params:
        return all(abs(pa + pb) < 1e-12 for pa, pb in zip(a.params, b.params))
    return False
