"""Device connectivity graphs.

A :class:`CouplingMap` wraps an undirected :mod:`networkx` graph whose nodes
are physical qubits and whose edges are allowed two-qubit gate placements.
Includes the topologies of the IBM devices the paper used: 5-qubit "T"/"V"
layouts (ibmq_lima / ibmq_quito class) and the 7-qubit "H" layout
(ibm_casablanca / ibm_lagos class).
"""

from __future__ import annotations

from typing import Iterable

import networkx as nx

from repro.exceptions import TranspileError

__all__ = ["CouplingMap"]


class CouplingMap:
    """Undirected qubit-connectivity graph with shortest-path queries."""

    def __init__(self, edges: Iterable[tuple[int, int]], num_qubits: int | None = None):
        g = nx.Graph()
        edges = [tuple(sorted(e)) for e in edges]
        g.add_edges_from(edges)
        if num_qubits is None:
            num_qubits = (max(g.nodes) + 1) if g.nodes else 0
        g.add_nodes_from(range(num_qubits))
        self.graph = g
        self.num_qubits = num_qubits
        if g.nodes and max(g.nodes) >= num_qubits:
            raise TranspileError("edge endpoint exceeds declared qubit count")

    # ------------------------------------------------------------------
    @classmethod
    def linear(cls, n: int) -> "CouplingMap":
        """A line of n qubits: 0-1-2-...-(n-1)."""
        return cls([(i, i + 1) for i in range(n - 1)], n)

    @classmethod
    def ring(cls, n: int) -> "CouplingMap":
        edges = [(i, (i + 1) % n) for i in range(n)]
        return cls(edges, n)

    @classmethod
    def grid(cls, rows: int, cols: int) -> "CouplingMap":
        edges = []
        for r in range(rows):
            for c in range(cols):
                q = r * cols + c
                if c + 1 < cols:
                    edges.append((q, q + 1))
                if r + 1 < rows:
                    edges.append((q, q + cols))
        return cls(edges, rows * cols)

    @classmethod
    def ibm_t_shape_5q(cls) -> "CouplingMap":
        """5-qubit 'T' layout (ibmq_lima / belem / quito):

        ::

            0 - 1 - 3 - 4
                |
                2
        """
        return cls([(0, 1), (1, 2), (1, 3), (3, 4)], 5)

    @classmethod
    def ibm_h_shape_7q(cls) -> "CouplingMap":
        """7-qubit 'H' layout (ibm_casablanca / lagos / perth):

        ::

            0 - 1 - 3 - 5 - 6
                |       |
                2       4
        """
        return cls([(0, 1), (1, 2), (1, 3), (3, 5), (4, 5), (5, 6)], 7)

    # ------------------------------------------------------------------
    def allowed(self, a: int, b: int) -> bool:
        return self.graph.has_edge(a, b)

    def distance(self, a: int, b: int) -> int:
        try:
            return nx.shortest_path_length(self.graph, a, b)
        except nx.NetworkXNoPath:
            raise TranspileError(f"qubits {a},{b} are disconnected") from None

    def shortest_path(self, a: int, b: int) -> list[int]:
        try:
            return nx.shortest_path(self.graph, a, b)
        except nx.NetworkXNoPath:
            raise TranspileError(f"qubits {a},{b} are disconnected") from None

    def edges(self) -> list[tuple[int, int]]:
        return [tuple(sorted(e)) for e in self.graph.edges]

    def is_connected(self) -> bool:
        return nx.is_connected(self.graph) if self.graph.nodes else True

    def __repr__(self) -> str:
        return f"CouplingMap({self.num_qubits}q, {self.edges()})"
