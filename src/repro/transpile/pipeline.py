"""The full transpilation pipeline used by the fake-hardware backend.

Order of passes::

    cancel adjacent inverses      (cheap cleanup)
    decompose to {rz, sx, x, cx}  (multi-qubit rules + ZSX)
    route on the coupling map     (SWAP insertion; SWAPs re-lowered to CX)
    merge single-qubit runs       (final 1q compaction)

The output satisfies: every gate is in :data:`HARDWARE_BASIS` and every 2q
gate acts on a coupled pair.  ``transpile`` returns the physical circuit and
the final logical→physical layout for result un-permutation.

``barrier`` instructions are preserved end to end and act as optimisation
fences: no merging or cancellation crosses one.  Fragment variant circuits
exploit this — the tomography rotations / preparation gates are fenced off
from the fragment body, so one transpiled body is shared verbatim by every
variant (the invariant behind
:class:`repro.cutting.noisy_cache.NoisyFragmentSimCache`).
"""

from __future__ import annotations

from repro.circuits.circuit import Circuit
from repro.transpile.basis import HARDWARE_BASIS, decompose_to_basis
from repro.transpile.coupling import CouplingMap
from repro.transpile.passes import cancel_adjacent_inverses, merge_single_qubit_runs
from repro.transpile.routing import route_circuit

__all__ = ["transpile"]


def transpile(
    circuit: Circuit,
    coupling: CouplingMap | None = None,
    optimize: bool = True,
) -> tuple[Circuit, list[int]]:
    """Lower ``circuit`` to native gates and (optionally) a coupling map.

    Returns ``(physical_circuit, final_layout)``; with ``coupling=None`` the
    layout is the identity and only basis translation happens.
    """
    qc = cancel_adjacent_inverses(circuit) if optimize else circuit
    qc = decompose_to_basis(qc)
    if coupling is None:
        layout = list(range(qc.num_qubits))
    else:
        qc, layout = route_circuit(qc, coupling)
        # routing introduces `swap` gates -> lower them again
        qc = decompose_to_basis(qc)
    if optimize:
        qc = merge_single_qubit_runs(qc)
        qc = cancel_adjacent_inverses(qc)
    assert all(
        inst.name in HARDWARE_BASIS or inst.name == "barrier" for inst in qc
    ), "transpile produced non-native gates"
    return qc, layout
