"""SWAP-insertion routing for limited device connectivity.

A simple, predictable router: walk the circuit in program order keeping a
logical→physical layout; when a two-qubit gate touches non-adjacent physical
qubits, move one endpoint along the shortest path with SWAPs, updating the
layout.  Not SABRE — but deterministic and adequate for the ≤ 7-qubit
devices the paper runs on, and its inserted-SWAP count is asserted in tests
so regressions are visible.
"""

from __future__ import annotations

from repro.circuits.circuit import Circuit
from repro.exceptions import TranspileError
from repro.transpile.coupling import CouplingMap

__all__ = ["route_circuit"]


def route_circuit(
    circuit: Circuit, coupling: CouplingMap
) -> tuple[Circuit, list[int]]:
    """Insert SWAPs so every 2q gate acts on coupled physical qubits.

    Returns ``(routed_circuit, final_layout)`` where ``final_layout[logical]``
    is the physical qubit holding logical wire ``logical`` at the end.  The
    routed circuit is expressed on *physical* wires; measurement results must
    be un-permuted with ``final_layout`` (the backend does this).
    """
    if circuit.num_qubits > coupling.num_qubits:
        raise TranspileError(
            f"circuit needs {circuit.num_qubits} qubits, device has "
            f"{coupling.num_qubits}"
        )
    n_phys = coupling.num_qubits
    layout = list(range(n_phys))  # layout[logical] = physical
    out = Circuit(n_phys, name=f"{circuit.name}_routed")

    for inst in circuit:
        if inst.name == "barrier":
            # fences travel with their wires' current physical positions
            out.append(inst.remap(layout))
            continue
        if len(inst.qubits) == 1:
            out.add_gate(inst.name, (layout[inst.qubits[0]],), inst.params)
            continue
        if len(inst.qubits) > 2:
            raise TranspileError(
                "route 3q+ gates after basis decomposition (got "
                f"{inst.name!r})"
            )
        a, b = (layout[q] for q in inst.qubits)
        if not coupling.allowed(a, b):
            path = coupling.shortest_path(a, b)
            # bubble endpoint a along the path until adjacent to b
            for nxt in path[1:-1]:
                out.swap(a, nxt)
                # update layout: physical a and nxt exchange logical contents
                la = layout.index(a)
                lb = layout.index(nxt)
                layout[la], layout[lb] = layout[lb], layout[la]
                a = nxt
        out.add_gate(inst.name, (a, b), inst.params)
    return out, layout
