"""Distribution distances and trial statistics for the experiment harness."""

from repro.metrics.distances import (
    hellinger_distance,
    kl_divergence,
    total_variation,
    weighted_distance,
)
from repro.metrics.stats import TrialStats, mean_confidence_interval, summarize_trials

__all__ = [
    "weighted_distance",
    "total_variation",
    "hellinger_distance",
    "kl_divergence",
    "TrialStats",
    "mean_confidence_interval",
    "summarize_trials",
]
