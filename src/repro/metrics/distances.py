"""Distribution distance functions.

The paper compares distributions with the *weighted distance* (Eq. 17)

.. math::

    d_w(p; q) = \\sum_{x \\in X} \\frac{(p(x) - q(x))^2}{q(x)},

a chi-squared-style divergence that "penalises large percentage deviations
more than other metrics such as the total variational distance".  ``q`` is
the ground truth; the sum runs over the support of ``q``.  Mass that ``p``
places outside ``q``'s support has no finite penalty under Eq. 17 — we
follow the convention of restricting to the support (the paper's ``X``),
and additionally expose the out-of-support mass so callers can report it.

Total variation, Hellinger and KL are provided for the extended analyses.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ReproError

__all__ = [
    "weighted_distance",
    "total_variation",
    "hellinger_distance",
    "kl_divergence",
    "out_of_support_mass",
]

_EPS = 1e-12


def _check(p: np.ndarray, q: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    p = np.asarray(p, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64)
    if p.shape != q.shape:
        raise ReproError(f"distribution shapes differ: {p.shape} vs {q.shape}")
    if np.any(p < -1e-9) or np.any(q < -1e-9):
        raise ReproError("distributions must be non-negative")
    return np.clip(p, 0.0, None), np.clip(q, 0.0, None)


def weighted_distance(p: np.ndarray, q: np.ndarray) -> float:
    """Paper Eq. 17: ``Σ_{x∈supp(q)} (p(x)−q(x))²/q(x)``.

    ``p`` is the test distribution, ``q`` the ground truth.
    """
    p, q = _check(p, q)
    support = q > _EPS
    diff = p[support] - q[support]
    return float(np.sum(diff * diff / q[support]))


def out_of_support_mass(p: np.ndarray, q: np.ndarray) -> float:
    """Probability mass ``p`` assigns where ``q`` is (numerically) zero."""
    p, q = _check(p, q)
    return float(p[q <= _EPS].sum())


def total_variation(p: np.ndarray, q: np.ndarray) -> float:
    """``½ Σ |p − q|`` — the standard statistical distance."""
    p, q = _check(p, q)
    return float(0.5 * np.abs(p - q).sum())


def hellinger_distance(p: np.ndarray, q: np.ndarray) -> float:
    """``sqrt(1 − Σ sqrt(p q))`` (Hellinger, in [0, 1])."""
    p, q = _check(p, q)
    bc = np.sum(np.sqrt(p * q))
    return float(np.sqrt(max(0.0, 1.0 - bc)))


def kl_divergence(p: np.ndarray, q: np.ndarray) -> float:
    """``Σ p log(p/q)`` over the common support (natural log).

    Infinite when ``p`` has mass where ``q`` does not; returns ``np.inf``
    in that case rather than raising, since shot noise makes this common.
    """
    p, q = _check(p, q)
    if np.any((p > _EPS) & (q <= _EPS)):
        return float("inf")
    mask = p > _EPS
    return float(np.sum(p[mask] * np.log(p[mask] / q[mask])))
