"""Trial statistics: means, confidence intervals, experiment summaries.

The paper reports bar heights with 95 % confidence intervals over 10–1000
independent trials (Figs. 3–5).  :func:`mean_confidence_interval` uses the
Student-t interval (correct at the paper's small trial counts);
:func:`summarize_trials` packages a metric series into the
:class:`TrialStats` rows the benchmark tables print.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import stats as sps

from repro.exceptions import ReproError

__all__ = ["TrialStats", "mean_confidence_interval", "summarize_trials"]


@dataclass(frozen=True)
class TrialStats:
    """Summary of one experimental series."""

    label: str
    n: int
    mean: float
    std: float
    ci_low: float
    ci_high: float
    confidence: float = 0.95

    @property
    def ci_halfwidth(self) -> float:
        return (self.ci_high - self.ci_low) / 2.0

    def as_row(self) -> dict:
        return {
            "label": self.label,
            "n": self.n,
            "mean": self.mean,
            "std": self.std,
            "ci95_low": self.ci_low,
            "ci95_high": self.ci_high,
        }

    def __str__(self) -> str:
        return (
            f"{self.label}: {self.mean:.4g} ± {self.ci_halfwidth:.2g} "
            f"(95% CI, n={self.n})"
        )


def mean_confidence_interval(
    values: Sequence[float], confidence: float = 0.95
) -> tuple[float, float, float]:
    """``(mean, ci_low, ci_high)`` via the Student-t interval.

    A single observation yields a degenerate interval at the mean.
    """
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ReproError("cannot summarise an empty series")
    mean = float(arr.mean())
    if arr.size == 1:
        return mean, mean, mean
    sem = float(arr.std(ddof=1) / np.sqrt(arr.size))
    if sem == 0.0:
        return mean, mean, mean
    half = float(sps.t.ppf(0.5 + confidence / 2.0, df=arr.size - 1) * sem)
    return mean, mean - half, mean + half


def summarize_trials(
    label: str, values: Sequence[float], confidence: float = 0.95
) -> TrialStats:
    """Build a :class:`TrialStats` row from a metric series."""
    arr = np.asarray(list(values), dtype=np.float64)
    mean, lo, hi = mean_confidence_interval(arr, confidence)
    std = float(arr.std(ddof=1)) if arr.size > 1 else 0.0
    return TrialStats(
        label=label,
        n=int(arr.size),
        mean=mean,
        std=std,
        ci_low=lo,
        ci_high=hi,
        confidence=confidence,
    )
