"""Request coalescing: many concurrent cut runs, one execution per body.

:class:`CutRunService` fronts one backend with a shared
:class:`~repro.cutting.fingerprint.FragmentStore` and a single dispatcher
thread.  Concurrent :meth:`~CutRunService.run`/:meth:`~CutRunService.submit`
calls are decomposed into **fragment jobs** — one per (fragment body,
variant list, shots, RNG stream, retry policy) — and jobs whose content
address matches an in-flight or completed job attach to it instead of
executing again: two callers cutting the same circuit with the same seed
cost one set of device executions, not two.  Jobs that are genuinely
distinct still share the store's warmed caches, so at minimum each distinct
fragment body is transpiled once per service, not once per request.

The dispatcher drains every job that arrived within ``batch_window``
seconds of the first pending one in a single cycle, so variant executions
for the same backend batch across requests (``stats()["dispatch_batches"]``
counts the cycles).  Execution inside a job replicates
:func:`~repro.cutting.execution.run_tree_fragments` exactly — same batched
:meth:`~repro.backends.base.Backend.run_tree_variants` call, same RNG
stream handling on both the plain and the retry path — so a solo request
through the service is bit-identical (records, attempt ledger,
``modeled_seconds``) to calling the plain function.

Coalescing identity is *content*, not object identity: the job key hashes
the fragment fingerprint (circuit + cut-group layouts + backend physics),
the exact variant combos, the shot budget, the SHA-256 of the request's
per-fragment RNG state, the retry policy and the exhaustion mode.  Requests
differing in any of these run separately.
"""

from __future__ import annotations

import hashlib
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.cutting.execution import (
    TreeFragmentData,
    _split_joint_probs,
    _tree_variant_lists,
)
from repro.cutting.fingerprint import FragmentStore, fragment_fingerprint
from repro.exceptions import CutError

__all__ = ["CutRunService"]


def _rng_state_key(rng) -> str:
    """Stable digest of a Generator's full bit-generator state."""
    state = rng.bit_generator.state
    return hashlib.sha256(repr(sorted(state.items())).encode()).hexdigest()


@dataclass
class _FragmentJob:
    """One coalescable unit of device work: a fragment's variant family."""

    key: tuple
    tree: object
    index: int
    combos: list
    shots: int
    rng: object  # the submitting request's frag_rng (identical across joiners)
    cache: object
    policy: object
    on_exhausted: str
    done: threading.Event = field(default_factory=threading.Event)
    probs: "list | None" = None  # flat per-variant vectors (None = degraded)
    dead: list = field(default_factory=list)
    seconds: float = 0.0
    records: list = field(default_factory=list)  # AttemptRecords, task order
    error: "BaseException | None" = None


class CutRunService:
    """Coalescing front end for concurrent cut-and-run requests.

    Parameters
    ----------
    backend:
        The device every request executes on.  All device work happens on
        the service's single dispatcher thread, so the backend needs no
        internal locking.
    batch_window:
        Seconds the dispatcher waits after the first pending job before
        draining, letting concurrent requests land in the same dispatch
        batch (and coalesce if identical).
    store:
        The shared :class:`~repro.cutting.fingerprint.FragmentStore`
        (a fresh one by default).

    Use as a context manager or call :meth:`close` to stop the dispatcher.
    """

    def __init__(self, backend, batch_window: float = 0.01, store=None) -> None:
        self.backend = backend
        self.batch_window = float(batch_window)
        self.store = store if store is not None else FragmentStore()
        self._lock = threading.Lock()
        self._jobs: dict[tuple, _FragmentJob] = {}
        self._pending: list[_FragmentJob] = []
        self._wake = threading.Event()
        self._closed = False
        self.stats_requests = 0
        self.stats_fragment_jobs = 0
        self.stats_coalesced = 0
        self.stats_dispatch_batches = 0
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="cutrun-dispatcher", daemon=True
        )
        self._dispatcher.start()

    # -- lifecycle -----------------------------------------------------
    def __enter__(self) -> "CutRunService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Stop the dispatcher thread (idempotent)."""
        with self._lock:
            self._closed = True
        self._wake.set()
        self._dispatcher.join(timeout=5.0)

    def stats(self) -> dict:
        with self._lock:
            return {
                "requests": self.stats_requests,
                "fragment_jobs": self.stats_fragment_jobs,
                "coalesced": self.stats_coalesced,
                "dispatch_batches": self.stats_dispatch_batches,
                **{f"store_{k}": v for k, v in self.store.stats().items()},
            }

    # -- request API ---------------------------------------------------
    def run(self, circuit, **kwargs):
        """Cut, execute and reconstruct ``circuit`` through the service.

        A blocking :func:`~repro.core.pipeline.cut_and_run_tree` call with
        the service's backend, fragment store and coalescing runner wired
        in; accepts the same keyword arguments (``specs``, ``shots``,
        ``golden``, ``seed``, ``retry``, ...).
        """
        from repro.core.pipeline import cut_and_run_tree

        with self._lock:
            self.stats_requests += 1
        return cut_and_run_tree(
            circuit,
            self.backend,
            runner=self.run_fragments,
            fragment_store=self.store,
            **kwargs,
        )

    def submit(self, circuit, **kwargs):
        """Start :meth:`run` on a worker thread; returns a joinable handle.

        The handle's ``result()`` blocks until the request finishes and
        re-raises any failure.  Submitting several identical requests
        within ``batch_window`` is the intended coalescing pattern.
        """
        return _Request(self, circuit, kwargs)

    def run_many(self, requests):
        """Run many requests concurrently; returns results in order.

        ``requests`` is an iterable of ``(circuit, kwargs)`` pairs.  All
        are submitted before any is joined, so identical requests coalesce.
        """
        handles = [self.submit(circuit, **kwargs) for circuit, kwargs in requests]
        return [handle.result() for handle in handles]

    # -- the coalescing runner (run_tree_fragments drop-in) ------------
    def run_fragments(
        self,
        tree,
        backend,
        shots: int,
        variants=None,
        seed=None,
        pool=None,
        dtype=np.float64,
        retry=None,
        ledger=None,
        on_exhausted: str = "raise",
        checkpoint=None,
    ) -> TreeFragmentData:
        """Coalescing drop-in for :func:`~repro.cutting.execution
        .run_tree_fragments`.

        Same signature, records, RNG streams and metadata; fragment
        families whose content address matches an in-flight or completed
        job are served from that job's results without re-executing.
        ``backend`` must be the service's backend (the dispatcher owns all
        device work); ``checkpoint`` is unsupported here — checkpointing a
        coalesced execution would persist another request's work.
        """
        from repro.utils.rng import as_generator, derive_rng

        if backend is not self.backend:
            raise CutError("CutRunService.run_fragments requires the service backend")
        if checkpoint is not None:
            raise CutError("checkpointing is not supported through CutRunService")
        if on_exhausted not in ("raise", "degrade"):
            raise CutError(
                f"on_exhausted must be 'raise' or 'degrade', got {on_exhausted!r}"
            )
        if on_exhausted == "degrade" and retry is None:
            raise CutError("on_exhausted='degrade' requires a retry policy")
        variants = _tree_variant_lists(tree, variants)
        if pool is None:
            pool = self.store.pool_for(tree, self.backend, dtype)
        if retry is not None and ledger is None:
            from repro.cutting.resilience import AttemptLedger

            ledger = AttemptLedger()

        rng = as_generator(seed)
        jobs: list["_FragmentJob | None"] = []
        for i, combos in enumerate(variants):
            # burn fragment i's stream even on skips — exactly like the
            # serial runner, so stream derivation never shifts
            frag_rng = derive_rng(rng, 0x60 + i)
            if combos is None:
                jobs.append(None)
                continue
            frag = tree.fragments[i]
            key = (
                fragment_fingerprint(frag, self.backend, dtype),
                tuple(combos),
                int(shots),
                _rng_state_key(frag_rng),
                retry,
                on_exhausted,
                np.dtype(dtype).str,
            )
            cache = pool[i] if pool is not None else None
            jobs.append(
                self._submit_job(
                    key, tree, i, combos, shots, frag_rng, cache, retry, on_exhausted
                )
            )

        records: list[dict] = []
        degraded: list[tuple[int, tuple]] = []
        seconds = 0.0
        for i, job in enumerate(jobs):
            if job is None:
                records.append({})
                continue
            job.done.wait()
            if job.error is not None:
                raise job.error
            frag = tree.fragments[i]
            combos = variants[i]
            records.append(
                {
                    combo: _split_joint_probs(
                        probs, frag.out_local, frag.cut_local, dtype
                    )
                    for combo, probs in zip(combos, job.probs)
                    if probs is not None
                }
            )
            degraded.extend((i, combo) for combo in job.dead)
            seconds += job.seconds
            if ledger is not None:
                for r in job.records:
                    ledger.record(
                        r.site,
                        r.attempt,
                        r.outcome,
                        latency=r.latency,
                        backoff=r.backoff,
                        error=r.error,
                    )

        metadata = {
            "backend": getattr(self.backend, "name", "backend"),
            "variants_per_fragment": [
                0 if c is None else len(c) for c in variants
            ],
        }
        if degraded:
            metadata["degraded_sites"] = degraded
        if ledger is not None:
            metadata["retry"] = ledger.summary()
        return TreeFragmentData(
            tree=tree,
            records=records,
            shots_per_variant=shots,
            modeled_seconds=seconds,
            metadata=metadata,
        )

    # -- job plumbing --------------------------------------------------
    def _submit_job(
        self, key, tree, index, combos, shots, rng, cache, policy, on_exhausted
    ) -> _FragmentJob:
        with self._lock:
            job = self._jobs.get(key)
            if job is not None:
                self.stats_coalesced += 1
                return job
            job = _FragmentJob(
                key=key,
                tree=tree,
                index=index,
                combos=list(combos),
                shots=shots,
                rng=rng,
                cache=cache,
                policy=policy,
                on_exhausted=on_exhausted,
            )
            self._jobs[key] = job
            self._pending.append(job)
            self.stats_fragment_jobs += 1
        self._wake.set()
        return job

    def _dispatch_loop(self) -> None:
        while True:
            self._wake.wait()
            with self._lock:
                if self._closed:
                    return
                self._wake.clear()
            # let concurrent requests land in this batch
            if self.batch_window > 0:
                time.sleep(self.batch_window)
            with self._lock:
                batch, self._pending = self._pending, []
                if batch:
                    self.stats_dispatch_batches += 1
            for job in batch:
                try:
                    self._execute(job)
                except BaseException as exc:  # delivered to every waiter
                    job.error = exc
                finally:
                    job.done.set()

    def _execute(self, job: _FragmentJob) -> None:
        backend = self.backend
        frag = job.tree.fragments[job.index]
        t0 = backend.clock.now
        if job.policy is None:
            results = backend.run_tree_variants(
                job.tree,
                job.index,
                job.combos,
                shots=job.shots,
                seed=job.rng,
                cache=job.cache,
            )
            job.probs = [res.probabilities() for res in results]
        else:
            from repro.cutting.resilience import RetryEngine
            from repro.utils.rng import spawn_seed_sequences

            engine = RetryEngine(job.policy)
            children = spawn_seed_sequences(job.rng, len(job.combos))
            sites = [("tree", job.index, a, s) for a, s in job.combos]

            def batch_call(streams):
                return backend.run_tree_variants(
                    job.tree,
                    job.index,
                    job.combos,
                    shots=job.shots,
                    seed=streams,
                    cache=job.cache,
                )

            def single_call(j, stream):
                return backend.run_tree_variants(
                    job.tree,
                    job.index,
                    [job.combos[j]],
                    shots=job.shots,
                    seed=[stream],
                    cache=job.cache,
                )[0]

            results, dead_idx = engine.run_batch(
                sites,
                children,
                batch_call,
                single_call,
                expected_shots=job.shots,
                expected_qubits=frag.num_qubits,
                clock=backend.clock,
                breaker_key=job.index,
                on_exhausted=job.on_exhausted,
            )
            job.probs = [
                None if res is None else res.probabilities() for res in results
            ]
            job.dead = [job.combos[j] for j in dead_idx]
            job.records = list(engine.ledger.records)
        job.seconds = backend.clock.now - t0


class _Request:
    """A submitted request: joins the worker thread and re-raises."""

    def __init__(self, service: CutRunService, circuit, kwargs: dict) -> None:
        self._result = None
        self._error: "BaseException | None" = None

        def work() -> None:
            try:
                self._result = service.run(circuit, **kwargs)
            except BaseException as exc:
                self._error = exc

        self._thread = threading.Thread(target=work, daemon=True)
        self._thread.start()

    def result(self):
        self._thread.join()
        if self._error is not None:
            raise self._error
        return self._result
