"""Process-pool fan-out with shared-memory cache banks.

The machinery behind ``mode="process"`` in
:func:`repro.parallel.executor.run_tree_fragments_parallel`:

* the parent warms the probe backend's
  :class:`~repro.cutting.cache.TreeCachePool` exactly once (the same
  warm-once law the thread executor enforces), exports each cache's large
  numeric banks — body response tensors, rotation banks, memoised
  distributions — into **one shared-memory segment per fragment**
  (:class:`SharedArrayBank`), and ships only the small picklable manifests
  to the workers;
* each worker process builds one backend from the picklable
  ``backend_factory``, maps the shared segments zero-copy/read-only, and
  rebuilds real cache instances around its own fragment objects via
  :meth:`~repro.backends.base.Backend.restore_tree_fragment_cache` — so
  fragment bodies are transpiled/simulated once *per body*, never once per
  worker;
* each task executes in the worker exactly as the thread executor's
  ``run_task`` would — same per-task RNG stream (a pickled Generator, or a
  SeedSequence child rebuilt per retry attempt), same
  :meth:`~repro.cutting.resilience.RetryEngine.run_single` call shape —
  and returns its probabilities, its worker-clock delta, and its
  :class:`~repro.cutting.resilience.AttemptRecord` list, which the parent
  merges into the caller's ledger in deterministic task order.

Start method: ``forkserver`` where available (Linux), else ``spawn``; both
re-import modules rather than forking arbitrary parent state, so the pool
is safe under threads.  Override with the ``REPRO_MP_START`` environment
variable (``fork``/``forkserver``/``spawn``) when debugging.

Typed exceptions raised in workers cross the boundary intact — every class
in :mod:`repro.exceptions` pickle-round-trips (site/attempt attributes
included), so the parent sees exactly the failure the serial path would
have raised.
"""

from __future__ import annotations

import multiprocessing
import os
from multiprocessing import shared_memory
from typing import Callable, Sequence

import numpy as np

__all__ = [
    "SharedArrayBank",
    "export_cache_pool",
    "resolve_start_method",
    "run_tree_tasks_process",
]

_ALIGN = 64


class SharedArrayBank:
    """Named read-only numpy arrays packed into one shared-memory segment.

    :meth:`pack` (parent side) lays every array out 64-byte aligned in a
    fresh :class:`multiprocessing.shared_memory.SharedMemory` block and
    returns the bank plus a small picklable ``manifest``; :meth:`attach`
    (worker side) maps the segment and rebuilds zero-copy read-only views.
    The parent owns the segment's lifetime: workers only ``close()`` their
    mapping, the parent ``unlink()``\\ s after the pool is done.
    """

    def __init__(self, shm, manifest: dict) -> None:
        self._shm = shm
        self.manifest = manifest

    @classmethod
    def pack(cls, arrays: "dict[str, np.ndarray]") -> "SharedArrayBank":
        entries = []
        offset = 0
        for key in sorted(arrays):
            arr = np.ascontiguousarray(arrays[key])
            entries.append((key, offset, arr.shape, arr.dtype.str))
            offset += arr.nbytes
            offset += (-offset) % _ALIGN
        shm = shared_memory.SharedMemory(create=True, size=max(offset, 1))
        for (key, off, shape, dt), src in zip(
            entries, (arrays[k] for k in sorted(arrays))
        ):
            dst = np.ndarray(shape, dtype=dt, buffer=shm.buf, offset=off)
            dst[...] = src
        return cls(shm, {"shm": shm.name, "entries": entries})

    @classmethod
    def attach(cls, manifest: dict) -> "SharedArrayBank":  # pragma: no cover
        # worker-side only: executes in pool subprocesses, invisible to
        # coverage (exercised by the process-mode equivalence tests).
        # Attaching re-registers the name with the (shared) resource
        # tracker — a set-add no-op; the parent's unlink() performs the one
        # matching unregister, so no tracker warnings or double-unlinks.
        return cls(shared_memory.SharedMemory(name=manifest["shm"]), manifest)

    def arrays(self) -> "dict[str, np.ndarray]":
        out = {}
        for key, off, shape, dt in self.manifest["entries"]:
            view = np.ndarray(
                tuple(shape), dtype=dt, buffer=self._shm.buf, offset=off
            )
            view.flags.writeable = False
            out[key] = view
        return out

    def close(self) -> None:
        self._shm.close()

    def unlink(self) -> None:
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass


def export_cache_pool(pool) -> tuple:
    """Export a warmed cache pool as picklable per-fragment manifests.

    Returns ``(entries, banks)``: ``entries[i]`` is ``None`` for a
    cache-less fragment or ``(bank_manifest, meta)`` pairing the shared
    segment with the cache's pickled manifest; ``banks`` are the live
    :class:`SharedArrayBank` handles the parent must keep until the pool
    of workers is done, then release.  A pool whose caches cannot export
    (no ``export_arrays``) yields ``(None, [])`` — workers then warm
    locally, which is correct, just not shared.
    """
    if pool is None:
        return None, []
    entries: list = []
    banks: list[SharedArrayBank] = []
    for cache in pool:
        export = getattr(cache, "export_arrays", None)
        if export is None:
            for bank in banks:
                bank.close()
                bank.unlink()
            return None, []
        arrays, meta = export()
        bank = SharedArrayBank.pack(arrays)
        banks.append(bank)
        entries.append((bank.manifest, meta))
    return entries, banks


# ----------------------------------------------------------------------
# Worker side.  One module-level dict per worker process, filled by the
# pool initializer; Pool.map then streams small task tuples at it.  These
# functions run only inside pool subprocesses, so coverage cannot see
# them — the process-mode bit-identity tests are their real gate.

_WORKER: dict = {}


def _worker_init(payload: dict) -> None:  # pragma: no cover
    backend = payload["backend_factory"]()
    tree = payload["tree"]
    caches = None
    banks = []
    if payload["cache_entries"] is not None:
        caches = []
        for frag, entry in zip(tree.fragments, payload["cache_entries"]):
            if entry is None:
                caches.append(None)
                continue
            manifest, meta = entry
            bank = SharedArrayBank.attach(manifest)
            banks.append(bank)  # keep the mapping alive for process life
            caches.append(
                backend.restore_tree_fragment_cache(frag, bank.arrays(), meta)
            )
    elif payload["warm_variants"] is not None:
        # caches exist but could not be exported: warm per worker
        pool = backend.make_tree_cache_pool(tree, dtype=payload["dtype"])
        if pool is not None:
            pool.warm(payload["warm_variants"])
            caches = list(pool)
    _WORKER.update(
        backend=backend,
        tree=tree,
        caches=caches,
        banks=banks,
        shots=payload["shots"],
        retry=payload["retry"],
        on_exhausted=payload["on_exhausted"],
    )


def _worker_run(task) -> tuple:  # pragma: no cover
    index, combo, stream = task
    backend = _WORKER["backend"]
    tree = _WORKER["tree"]
    shots = _WORKER["shots"]
    caches = _WORKER["caches"]
    cache = caches[index] if caches is not None else None
    policy = _WORKER["retry"]
    start = backend.clock.now
    if policy is None:
        res = backend.run_tree_variants(
            tree, index, [combo], shots=shots, seed=stream, cache=cache
        )[0]
        return res.probabilities(), backend.clock.now - start, []

    from repro.cutting.resilience import RetryEngine

    engine = RetryEngine(policy)
    site = ("tree", index, combo[0], combo[1])

    def call():
        # fresh generator per attempt: the backend draws the same sampling
        # child the retry-free task would (stream is a SeedSequence here)
        return backend.run_tree_variants(
            tree,
            index,
            [combo],
            shots=shots,
            seed=np.random.default_rng(stream),
            cache=cache,
        )[0]

    res = engine.run_single(
        site,
        call,
        expected_shots=shots,
        expected_qubits=tree.fragments[index].num_qubits,
        clock=backend.clock,
        breaker_key=index,
        on_exhausted=_WORKER["on_exhausted"],
    )
    probs = None if res is None else res.probabilities()
    return probs, backend.clock.now - start, engine.ledger.records


# ----------------------------------------------------------------------
# Parent side.


def resolve_start_method(start_method: "str | None" = None) -> str:
    """The pool's start method: explicit arg > ``REPRO_MP_START`` > default.

    Default is ``forkserver`` where available (Linux), else ``spawn`` —
    both are safe in threaded parents, which plain ``fork`` is not.
    """
    method = start_method or os.environ.get("REPRO_MP_START")
    if method is None:
        available = multiprocessing.get_all_start_methods()
        method = "forkserver" if "forkserver" in available else "spawn"
    return method


def run_tree_tasks_process(
    backend_factory: Callable,
    tree,
    tasks: Sequence[tuple],
    streams: Sequence,
    shots: int,
    pool=None,
    dtype=np.float64,
    retry=None,
    on_exhausted: str = "raise",
    max_workers: "int | None" = None,
    warm_variants=None,
    start_method: "str | None" = None,
) -> tuple:
    """Execute tree-fragment tasks on a process pool.

    ``tasks`` are ``(fragment_index, combo)`` pairs and ``streams`` their
    per-task RNG sources, exactly as the thread executor builds them —
    Generators on the plain path, SeedSequence children on the retry path —
    so results are bit-identical to serial and thread modes.  Returns
    ``(results, seconds, num_workers, records)`` where ``results[t]`` is
    the task's flat probability vector (``None`` for a variant degraded
    under ``on_exhausted="degrade"``), ``seconds`` sums every worker-clock
    delta (the device-time ledger), and ``records`` is the per-task list
    of :class:`~repro.cutting.resilience.AttemptRecord` lists for the
    parent to merge into its ledger.
    """
    entries, banks = export_cache_pool(pool)
    payload = {
        "backend_factory": backend_factory,
        "tree": tree,
        "shots": shots,
        "dtype": dtype,
        "retry": retry,
        "on_exhausted": on_exhausted,
        "cache_entries": entries,
        "warm_variants": warm_variants if entries is None else None,
    }
    num_workers = max_workers or os.cpu_count() or 1
    num_workers = max(1, min(num_workers, len(tasks)))
    ctx = multiprocessing.get_context(resolve_start_method(start_method))
    work = [
        (index, combo, stream)
        for (index, combo), stream in zip(tasks, streams)
    ]
    try:
        with ctx.Pool(
            processes=num_workers,
            initializer=_worker_init,
            initargs=(payload,),
        ) as mp_pool:
            out = mp_pool.map(_worker_run, work, chunksize=1)
    finally:
        for bank in banks:
            bank.close()
            bank.unlink()
    results = [probs for probs, _, _ in out]
    seconds = float(sum(delta for _, delta, _ in out))
    records = [recs for _, _, recs in out]
    return results, seconds, num_workers, records
