"""Parallel execution helpers for fragment variants."""

from repro.parallel.executor import (
    parallel_map,
    run_chain_fragments_parallel,
    run_fragments_parallel,
    run_tree_fragments_parallel,
)

__all__ = [
    "parallel_map",
    "run_chain_fragments_parallel",
    "run_fragments_parallel",
    "run_tree_fragments_parallel",
]
