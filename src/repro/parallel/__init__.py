"""Parallel execution helpers for fragment variants.

Three layers, each usable alone:

* :mod:`repro.parallel.executor` — thread/process fan-out of fragment
  variant tasks with worker-count-independent RNG streams;
* :mod:`repro.parallel.pool` — the process-pool machinery: shared-memory
  cache banks and the worker protocol behind ``mode="process"``;
* :mod:`repro.parallel.service` — :class:`CutRunService`, the request
  coalescer that dedupes concurrent cut runs sharing fragment bodies.
"""

from repro.parallel.executor import (
    parallel_map,
    run_chain_fragments_parallel,
    run_fragments_parallel,
    run_tree_fragments_parallel,
)
from repro.parallel.pool import (
    SharedArrayBank,
    export_cache_pool,
    resolve_start_method,
    run_tree_tasks_process,
)
from repro.parallel.service import CutRunService

__all__ = [
    "CutRunService",
    "SharedArrayBank",
    "export_cache_pool",
    "parallel_map",
    "resolve_start_method",
    "run_chain_fragments_parallel",
    "run_fragments_parallel",
    "run_tree_fragments_parallel",
    "run_tree_tasks_process",
]
