"""Parallel fan-out over fragment variants.

The paper notes that circuit fragments "can be simulated independently …
run fragments in parallel" (§II-A).  Variants are embarrassingly parallel:
each is an independent simulation with its own RNG stream.  We use a thread
pool — NumPy's kernels release the GIL inside BLAS/tensordot, so threads
scale for the density-matrix workloads — with a serial fallback that keeps
results bit-identical (each variant's RNG is derived from its index, not
from execution order).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Sequence, TypeVar

import numpy as np

from repro.backends.base import Backend
from repro.cutting.execution import FragmentData, _split_upstream_probs
from repro.cutting.fragments import FragmentPair
from repro.cutting.variants import (
    downstream_init_tuples,
    downstream_variant,
    upstream_setting_tuples,
    upstream_variant,
)
from repro.utils.rng import spawn_rngs

T = TypeVar("T")
U = TypeVar("U")

__all__ = ["parallel_map", "run_fragments_parallel"]


def parallel_map(
    fn: Callable[[T], U],
    items: Sequence[T],
    max_workers: int | None = None,
    mode: str = "thread",
) -> list[U]:
    """Order-preserving map, optionally threaded.

    ``mode="serial"`` executes in the calling thread (useful for debugging
    and for backends that are not thread-safe); results are identical in
    both modes because work items carry their own RNG streams.
    """
    if mode == "serial" or len(items) <= 1:
        return [fn(x) for x in items]
    if mode != "thread":
        raise ValueError(f"unknown parallel mode {mode!r}")
    with ThreadPoolExecutor(max_workers=max_workers) as pool:
        return list(pool.map(fn, items))


def run_fragments_parallel(
    pair: FragmentPair,
    backend_factory: Callable[[], Backend],
    shots: int,
    settings: Sequence[tuple[str, ...]] | None = None,
    inits: Sequence[tuple[str, ...]] | None = None,
    seed: "int | np.random.Generator | None" = None,
    max_workers: int | None = None,
) -> FragmentData:
    """Threaded equivalent of :func:`repro.cutting.execution.run_fragments`.

    ``backend_factory`` builds one backend per worker task (backends keep a
    mutable virtual clock, so sharing one across threads would race); the
    modelled seconds of all task-local clocks are summed, preserving the
    device-time ledger.
    """
    if settings is None:
        settings = upstream_setting_tuples(pair.num_cuts)
    if inits is None:
        inits = downstream_init_tuples(pair.num_cuts)
    circuits = [upstream_variant(pair, s) for s in settings] + [
        downstream_variant(pair, i) for i in inits
    ]
    rngs = spawn_rngs(seed, len(circuits))

    def job(arg):
        circuit, rng = arg
        backend = backend_factory()
        res = backend.run_one(circuit, shots=shots, seed=rng)
        return res, backend.clock.now

    results = parallel_map(job, list(zip(circuits, rngs)), max_workers=max_workers)
    seconds = sum(s for _, s in results)
    upstream = {
        tuple(s): _split_upstream_probs(res.probabilities(), pair)
        for s, (res, _) in zip(settings, results[: len(settings)])
    }
    downstream = {
        tuple(i): res.probabilities()
        for i, (res, _) in zip(inits, results[len(settings) :])
    }
    return FragmentData(
        pair=pair,
        upstream=upstream,
        downstream=downstream,
        shots_per_variant=shots,
        modeled_seconds=seconds,
        metadata={"parallel": True, "num_variants": len(circuits)},
    )
