"""Parallel fan-out over fragment variants.

The paper notes that circuit fragments "can be simulated independently …
run fragments in parallel" (§II-A).  Variants are embarrassingly parallel:
each is an independent execution with its own RNG stream.  We use a thread
pool — NumPy's kernels release the GIL inside BLAS/tensordot, so threads
scale for the density-matrix workloads — with a serial fallback that keeps
results bit-identical (each variant's RNG is derived from its index, not
from execution order).

Two structural optimisations over a naive per-task fan-out:

* **worker-local backends** — each pool thread builds one backend from
  ``backend_factory`` and reuses it for every task it picks up (backends
  keep a mutable virtual clock, so they cannot be shared *across* threads;
  the per-worker clocks are summed into the device-time ledger);
* **shared simulation cache** — when the backend builds one
  (:meth:`~repro.backends.base.Backend.make_variant_cache`), a single
  per-pair cache — :class:`~repro.cutting.cache.FragmentSimCache` for the
  ideal backend, :class:`~repro.cutting.noisy_cache.NoisyFragmentSimCache`
  for fake hardware — is warmed up front, so workers only draw samples
  from cached exact distributions instead of re-transpiling and
  re-simulating the fragment body per variant.

Fragment trees — chains included — fan out the same way
(:func:`run_tree_fragments_parallel` /
:func:`run_chain_fragments_parallel`): the probe backend builds one
:class:`~repro.cutting.cache.TreeCachePool` — one per-fragment cache per
tree node — warms every fragment's variants up front (batching each
node's distinct measurement settings into one stacked rotation pass on
the ideal path), and the pool is then shared **read-only** across all
worker threads; each worker samples any (fragment, variant) task straight
from the warmed distributions, so fragment bodies are
transpiled/simulated exactly once however many workers run.

``mode="process"`` (tree/chain executors) swaps the thread pool for a
fork-server/spawn-safe process pool (:mod:`repro.parallel.pool`): the
parent warms the cache pool once, exports each cache's numeric banks into
shared memory, and every worker process rebuilds real cache instances
around zero-copy read-only views — warming stays once per *body*, never
once per worker.  Results are bit-identical across all three modes
because each task's RNG stream is derived from its global index.

Choosing a mode:

* **thread** — BLAS/tensordot-bound workloads (statevector and
  density-matrix backends): NumPy releases the GIL inside its kernels,
  threads share the warmed pool without any serialisation cost.
* **process** — CPU-bound Python workloads (per-gate trajectory loops
  such as :class:`~repro.backends.trajectory.TrajectoryBackend`, heavy
  per-variant Python bookkeeping): the GIL serialises threads, so fan
  out across processes; the shared-memory cache banks keep the
  per-worker cost at one attach instead of one warm-up.
  (Benchmarked in ``benchmarks/bench_process_executor.py``.)
* **serial** — debugging and single-core runs; also the reference the
  equivalence suites pin both pools against.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Sequence, TypeVar

import numpy as np

from repro.backends.base import Backend
from repro.cutting.execution import (
    FragmentData,
    TreeFragmentData,
    _split_joint_probs,
    _split_upstream_probs,
    _tree_variant_lists,
)
from repro.cutting.fragments import FragmentPair
from repro.cutting.variants import (
    downstream_init_tuples,
    upstream_setting_tuples,
)
from repro.utils.rng import spawn_rngs, spawn_seed_sequences

T = TypeVar("T")
U = TypeVar("U")

__all__ = [
    "parallel_map",
    "run_chain_fragments_parallel",
    "run_fragments_parallel",
    "run_tree_fragments_parallel",
]


def parallel_map(
    fn: Callable[[T], U],
    items: Sequence[T],
    max_workers: int | None = None,
    mode: str = "thread",
) -> list[U]:
    """Order-preserving map, optionally threaded.

    ``mode="serial"`` executes in the calling thread (useful for debugging
    and for backends that are not thread-safe); results are identical in
    all modes because work items carry their own RNG streams.
    ``mode="process"`` fans out over a process pool — ``fn`` and the items
    must then be picklable (module-level functions, not closures); the
    fragment executors below use the richer
    :mod:`repro.parallel.pool` machinery instead, which also ships warmed
    caches through shared memory.
    """
    if mode == "serial" or len(items) <= 1:
        return [fn(x) for x in items]
    if mode == "process":
        import multiprocessing
        from concurrent.futures import ProcessPoolExecutor

        from repro.parallel.pool import resolve_start_method

        ctx = multiprocessing.get_context(resolve_start_method())
        with ProcessPoolExecutor(max_workers=max_workers, mp_context=ctx) as pool:
            return list(pool.map(fn, items))
    if mode != "thread":
        raise ValueError(f"unknown parallel mode {mode!r}")
    with ThreadPoolExecutor(max_workers=max_workers) as pool:
        return list(pool.map(fn, items))


def _fan_out(
    backend_factory: Callable[[], Backend],
    probe: Backend,
    tasks: Sequence,
    run_task: Callable,
    streams: Sequence,
    max_workers: int | None,
    mode: str,
) -> tuple[list, float, int]:
    """Shared worker scaffolding of both parallel executors.

    Each pool thread lazily builds one backend from ``backend_factory`` and
    reuses it for every task it picks up; ``run_task(backend, task,
    streams[t])`` executes one variant.  ``streams`` carries one RNG source
    per task — Generators on the plain path, SeedSequence children on the
    retry path (each attempt rebuilds its Generator fresh so a retry
    re-samples the same stream).  Returns the ordered results plus the
    summed worker-clock seconds (the device-time ledger).  Results are
    independent of worker count and of ``mode`` because every task's RNG
    stream is derived from its index.
    """
    rngs = list(streams)
    backends = [probe]
    local = threading.local()
    local.backend = probe  # the calling thread reuses the probe
    lock = threading.Lock()

    def worker_backend() -> Backend:
        backend = getattr(local, "backend", None)
        if backend is None:
            backend = backend_factory()
            local.backend = backend
            with lock:
                backends.append(backend)
        return backend

    def job(arg):
        task, rng = arg
        return run_task(worker_backend(), task, rng)

    results = parallel_map(
        job, list(zip(tasks, rngs)), max_workers=max_workers, mode=mode
    )
    return results, sum(b.clock.now for b in backends), len(backends)


def run_fragments_parallel(
    pair: FragmentPair,
    backend_factory: Callable[[], Backend],
    shots: int,
    settings: Sequence[tuple[str, ...]] | None = None,
    inits: Sequence[tuple[str, ...]] | None = None,
    seed: "int | np.random.Generator | None" = None,
    max_workers: int | None = None,
    mode: str = "thread",
) -> FragmentData:
    """Threaded equivalent of :func:`repro.cutting.execution.run_fragments`.

    ``backend_factory`` builds one backend per *worker thread* (not per
    task); the modelled seconds accumulated by all worker clocks are summed,
    preserving the device-time ledger.  Results are independent of worker
    count and of ``mode`` because every variant's RNG stream is derived from
    its index.
    """
    if mode == "process":
        raise ValueError(
            "mode='process' is implemented for the tree executors "
            "(run_tree_fragments_parallel / run_chain_fragments_parallel); "
            "the legacy pair path stays serial/thread"
        )
    if settings is None:
        settings = upstream_setting_tuples(pair.num_cuts)
    if inits is None:
        inits = downstream_init_tuples(pair.num_cuts)
    settings = [tuple(s) for s in settings]
    inits = [tuple(i) for i in inits]
    variants = [("up", s) for s in settings] + [("down", i) for i in inits]

    probe = backend_factory()
    # Warm every entry eagerly: afterwards the cache is read-only, so
    # worker threads can share it without locking.  The probe decides the
    # cache flavour (ideal → FragmentSimCache, noisy → the per-device
    # NoisyFragmentSimCache); worker backends built by the same factory
    # consume it as an equivalent device's cache.
    cache = probe.make_variant_cache(pair)
    if cache is not None:
        cache.warm(settings, inits)

    def run_task(backend, task, rng):
        kind, label = task
        up = [label] if kind == "up" else []
        down = [label] if kind == "down" else []
        return backend.run_variants(
            pair, up, down, shots=shots, seed=rng, cache=cache
        )[0]

    results, seconds, num_backends = _fan_out(
        backend_factory,
        probe,
        variants,
        run_task,
        spawn_rngs(seed, len(variants)),
        max_workers,
        mode,
    )
    upstream = {
        s: _split_upstream_probs(res.probabilities(), pair)
        for s, res in zip(settings, results[: len(settings)])
    }
    downstream = {
        i: res.probabilities() for i, res in zip(inits, results[len(settings) :])
    }
    return FragmentData(
        pair=pair,
        upstream=upstream,
        downstream=downstream,
        shots_per_variant=shots,
        modeled_seconds=seconds,
        metadata={
            "parallel": True,
            "num_variants": len(variants),
            "num_worker_backends": num_backends,
            "cached": cache is not None,
        },
    )


def run_tree_fragments_parallel(
    tree,
    backend_factory: Callable[[], Backend],
    shots: int,
    variants: "Sequence[Sequence[tuple]] | None" = None,
    seed: "int | np.random.Generator | None" = None,
    max_workers: int | None = None,
    mode: str = "thread",
    dtype=np.float64,
    retry=None,
    ledger=None,
    on_exhausted: str = "raise",
) -> TreeFragmentData:
    """Threaded equivalent of :func:`repro.cutting.execution.run_tree_fragments`.

    Every (fragment, variant) task across the whole tree is one work item;
    the probe backend's :class:`~repro.cutting.cache.TreeCachePool` is
    warmed **once** eagerly and then shared read-only by all workers, so
    each fragment body is transpiled/simulated exactly once regardless of
    worker count.  Results are independent of worker count and of ``mode``
    (``"serial"``/``"thread"``/``"process"``) because every task's RNG
    stream is derived from its global index.  ``mode="process"`` ships the
    warmed pool to worker processes through shared memory
    (:mod:`repro.parallel.pool`) and merges per-worker attempt records back
    into ``ledger`` in task order; retry policies carrying a shared
    ``deadline`` or ``breaker_threshold`` are rejected there (their meters
    cannot span processes — use ``mode="thread"``).  ``dtype`` sets the
    record precision (sampling happens in float64 before the cast, so RNG
    streams are unchanged).

    ``retry`` (a :class:`~repro.cutting.resilience.RetryPolicy`) routes
    every task through the same :class:`~repro.cutting.resilience
    .RetryEngine` the serial path uses: each attempt rebuilds the task's
    generator from its SeedSequence child, so with no fault the counts are
    bit-identical to the retry-free run in both modes, and a retried
    variant re-samples its original stream.  Attempts land in ``ledger``
    (order nondeterministic under threads — compare ``canonical()`` forms).
    ``on_exhausted="degrade"`` records exhausted variants in metadata
    ``degraded_sites`` instead of raising.
    """
    variants = _tree_variant_lists(tree, variants)
    tasks = [
        (i, combo)
        for i, combos in enumerate(variants)
        if combos is not None  # None = fragment skipped (partial pass)
        for combo in combos
    ]

    probe = backend_factory()
    pool = probe.make_tree_cache_pool(tree, dtype=dtype)
    if pool is not None:
        pool.warm(variants)

    engine = None
    if retry is not None:
        from repro.cutting.resilience import RetryEngine

        engine = RetryEngine(retry, ledger=ledger)
        streams = spawn_seed_sequences(seed, len(tasks))
    elif on_exhausted != "raise":
        raise ValueError("on_exhausted='degrade' requires a retry policy")
    else:
        streams = spawn_rngs(seed, len(tasks))

    if mode == "process":
        if retry is not None and (
            retry.deadline is not None or retry.breaker_threshold is not None
        ):
            raise ValueError(
                "mode='process' cannot share a deadline meter or circuit "
                "breaker across worker processes; use mode='thread' for "
                "policies with deadline/breaker_threshold"
            )
        from repro.parallel.pool import run_tree_tasks_process

        probs_list, seconds, num_backends, task_records = (
            run_tree_tasks_process(
                backend_factory,
                tree,
                tasks,
                streams,
                shots,
                pool=pool,
                dtype=dtype,
                retry=retry,
                on_exhausted=on_exhausted,
                max_workers=max_workers,
                warm_variants=variants,
            )
        )
        if engine is not None:
            # merge worker ledgers in deterministic task order; canonical()
            # forms then match serial/thread runs exactly
            for recs in task_records:
                for r in recs:
                    engine.ledger.record(
                        r.site,
                        r.attempt,
                        r.outcome,
                        latency=r.latency,
                        backoff=r.backoff,
                        error=r.error,
                    )
    else:

        def run_task(backend, task, stream):
            index, combo = task
            cache = pool[index] if pool is not None else None
            if engine is None:
                return backend.run_tree_variants(
                    tree, index, [combo], shots=shots, seed=stream, cache=cache
                )[0]
            site = ("tree", index, combo[0], combo[1])

            def call():
                # fresh generator per attempt: the backend draws the same
                # sampling child the retry-free task would
                return backend.run_tree_variants(
                    tree,
                    index,
                    [combo],
                    shots=shots,
                    seed=np.random.default_rng(stream),
                    cache=cache,
                )[0]

            return engine.run_single(
                site,
                call,
                expected_shots=shots,
                expected_qubits=tree.fragments[index].num_qubits,
                clock=backend.clock,
                breaker_key=index,
                on_exhausted=on_exhausted,
            )

        results, seconds, num_backends = _fan_out(
            backend_factory, probe, tasks, run_task, streams, max_workers, mode
        )
        probs_list = [
            None if res is None else res.probabilities() for res in results
        ]
    records: list[dict] = [{} for _ in tree.fragments]
    degraded = []
    for (index, combo), probs in zip(tasks, probs_list):
        if probs is None:  # exhausted under on_exhausted="degrade"
            degraded.append((index, combo))
            continue
        frag = tree.fragments[index]
        records[index][combo] = _split_joint_probs(
            probs, frag.out_local, frag.cut_local, dtype
        )
    metadata = {
        "parallel": True,
        "num_variants": len(tasks),
        "num_worker_backends": num_backends,
        "cached": pool is not None,
    }
    if degraded:
        metadata["degraded_sites"] = degraded
    if engine is not None:
        metadata["retry"] = engine.ledger.summary()
    return TreeFragmentData(
        tree=tree,
        records=records,
        shots_per_variant=shots,
        modeled_seconds=seconds,
        metadata=metadata,
    )


def run_chain_fragments_parallel(
    chain,
    backend_factory: Callable[[], Backend],
    shots: int,
    variants: "Sequence[Sequence[tuple]] | None" = None,
    seed: "int | np.random.Generator | None" = None,
    max_workers: int | None = None,
    mode: str = "thread",
    dtype=np.float64,
    retry=None,
    ledger=None,
    on_exhausted: str = "raise",
) -> TreeFragmentData:
    """Chain alias of :func:`run_tree_fragments_parallel` (a linear tree)."""
    from repro.cutting.execution import ChainFragmentData

    return ChainFragmentData._from_tree_data(
        run_tree_fragments_parallel(
            chain,
            backend_factory,
            shots,
            variants=variants,
            seed=seed,
            max_workers=max_workers,
            mode=mode,
            dtype=dtype,
            retry=retry,
            ledger=ledger,
            on_exhausted=on_exhausted,
        )
    )
