"""Reproduction of paper Fig. 4 — algorithm runtime on the simulator.

The experiment "recorded the time taken for gathering fragment data and
reconstructing them on a randomly generated circuit", with and without the
golden-cutting-point optimisation, for 1000 trials × 1000 shots.  On a
noiseless simulator the saving comes from running 6 instead of 9 fragment
variants and contracting 12 instead of 16 reconstruction terms.

We measure real wall time (``perf_counter``) of the full
gather-and-reconstruct pipeline per trial.  The bench defaults to fewer
trials than the paper's 1000 to keep CI fast; pass ``trials=1000`` for the
full protocol.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.backends.ideal import IdealBackend
from repro.core.ansatz import golden_ansatz
from repro.core.pipeline import cut_and_run
from repro.harness.experiment import run_trials
from repro.metrics.stats import TrialStats, summarize_trials
from repro.utils.timing import Stopwatch

__all__ = ["Fig4Result", "run_fig4"]


@dataclass
class Fig4Result:
    standard: TrialStats
    golden: TrialStats
    speedup: float
    raw_standard: list[float]
    raw_golden: list[float]

    def rows(self) -> list[dict]:
        return [
            {**self.standard.as_row(), "series": "standard"},
            {**self.golden.as_row(), "series": "golden"},
            {
                "label": "speedup (standard/golden)",
                "n": self.standard.n,
                "mean": self.speedup,
                "std": 0.0,
                "ci95_low": "",
                "ci95_high": "",
                "series": "ratio",
            },
        ]


def run_fig4(
    num_qubits: int = 5,
    trials: int = 50,
    shots: int = 1000,
    seed: int = 404,
    depth: int = 3,
) -> Fig4Result:
    """Time standard vs golden gather+reconstruct on the ideal simulator."""
    backend = IdealBackend()

    def trial(i: int, s: int) -> tuple[float, float]:
        spec = golden_ansatz(num_qubits, depth=depth, golden_basis="Y", seed=s)
        with Stopwatch() as sw_std:
            cut_and_run(
                spec.circuit, backend, cuts=spec.cut_spec, shots=shots,
                golden="off", seed=s,
            )
        with Stopwatch() as sw_gld:
            cut_and_run(
                spec.circuit, backend, cuts=spec.cut_spec, shots=shots,
                golden="known", golden_map={0: spec.golden_basis}, seed=s,
            )
        return sw_std.elapsed, sw_gld.elapsed

    outcomes = run_trials(trial, trials, seed=seed)
    std_series = [o[0] for o in outcomes]
    gld_series = [o[1] for o in outcomes]
    std = summarize_trials("standard runtime [s]", std_series)
    gld = summarize_trials("golden runtime [s]", gld_series)
    return Fig4Result(
        standard=std,
        golden=gld,
        speedup=std.mean / gld.mean if gld.mean > 0 else float("inf"),
        raw_standard=std_series,
        raw_golden=gld_series,
    )
