"""Run every paper experiment from the command line.

Usage::

    python -m repro.harness                 # CI-sized run of every figure
    python -m repro.harness --paper-scale   # the paper's full protocol
    python -m repro.harness --only fig5     # one experiment

Prints the same tables the benchmark suite registers, without pytest.
"""

from __future__ import annotations

import argparse
import sys

from repro.harness.fig3_accuracy import run_fig3
from repro.harness.fig4_runtime import run_fig4
from repro.harness.fig5_hardware import run_fig5
from repro.harness.report import print_table
from repro.harness.scaling import run_scaling


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Reproduce the evaluation of arXiv:2304.04093.",
    )
    parser.add_argument(
        "--paper-scale",
        action="store_true",
        help="run the paper's full trial counts (slow)",
    )
    parser.add_argument(
        "--only",
        choices=["fig3", "fig4", "fig5", "scaling"],
        help="run a single experiment",
    )
    parser.add_argument("--seed", type=int, default=2023)
    args = parser.parse_args(argv)

    full = args.paper_scale
    want = lambda name: args.only in (None, name)  # noqa: E731

    if want("fig3"):
        r3 = run_fig3(
            sizes=(5, 7),
            trials=10 if full else 4,
            shots=10_000 if full else 4_000,
            seed=args.seed,
        )
        print_table(
            r3.rows(),
            columns=["label", "n", "mean", "ci95_low", "ci95_high"],
            title="Fig. 3 — weighted distance to noiseless ground truth",
        )

    if want("fig4"):
        r4 = run_fig4(trials=1000 if full else 30, shots=1000, seed=args.seed)
        print_table(
            r4.rows(),
            columns=["series", "n", "mean", "ci95_low", "ci95_high"],
            title="Fig. 4 — simulator runtime (s), standard vs golden",
        )

    if want("fig5"):
        r5 = run_fig5(trials=50 if full else 10, shots=1000, seed=args.seed)
        print_table(r5.rows(), title="Fig. 5 — modeled device wall time")

    if want("scaling"):
        rows = run_scaling(max_cuts=3, repeats=3, seed=args.seed)
        print_table(rows, title="§II-B scaling — terms / variants / time")

    return 0


if __name__ == "__main__":
    sys.exit(main())
