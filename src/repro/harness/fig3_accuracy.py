"""Reproduction of paper Fig. 3 — reconstruction accuracy on noisy hardware.

The experiment: for 5-qubit and 7-qubit golden-ansatz circuits,

* ground truth ``q`` = a noiseless *finite-shot* sample of the uncut
  circuit (the paper's Aer reference, 10 000 shots).  Sampling matters:
  with the exact distribution as reference, basis states of vanishing but
  non-zero probability enter Eq. 17's support and shot/hardware noise on
  them diverges; an empirical reference zeroes those bins, which is what
  keeps the paper's reported d_w values O(1);
* configuration A ("uncut"): run the full circuit on the (fake) hardware,
  measure ``d_w(p_hw; q)`` (paper Eq. 17);
* configuration B ("golden cut"): cut with the known golden point, run the
  fragments on the same hardware, reconstruct, measure ``d_w(p_rec; q)``.

10 trials × 10 000 shots per (sub)circuit, 95 % CI — the paper's protocol.
The paper's finding is a *null result*: the golden-cut reconstruction is as
accurate as full execution within confidence intervals; the benches assert
exactly that shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field


from repro.backends.devices import fake_device
from repro.backends.ideal import IdealBackend
from repro.core.ansatz import golden_ansatz
from repro.core.pipeline import cut_and_run
from repro.harness.experiment import run_trials
from repro.metrics.distances import total_variation, weighted_distance
from repro.metrics.stats import TrialStats, summarize_trials

__all__ = ["Fig3Result", "run_fig3"]


@dataclass
class Fig3Result:
    """All series of the Fig. 3 bar chart."""

    stats: list[TrialStats]
    raw: dict[str, list[float]] = field(default_factory=dict)

    def rows(self) -> list[dict]:
        return [s.as_row() for s in self.stats]

    def by_label(self) -> dict[str, TrialStats]:
        return {s.label: s for s in self.stats}


def _one_size(
    num_qubits: int,
    trials: int,
    shots: int,
    seed: int,
    depth: int,
    device_factory,
) -> dict[str, list[float]]:
    ideal = IdealBackend()

    def trial(i: int, s: int) -> tuple[float, float, float, float]:
        spec = golden_ansatz(num_qubits, depth=depth, golden_basis="Y", seed=s)
        # paper protocol: the reference is itself a 10k-shot noiseless run
        truth = ideal.run_one(spec.circuit, shots=shots, seed=s ^ 0xA5A5).probabilities()

        device = device_factory(num_qubits)
        res_uncut = device.run_one(spec.circuit, shots=shots, seed=s)
        p_uncut = res_uncut.probabilities()

        run = cut_and_run(
            spec.circuit,
            device,
            cuts=spec.cut_spec,
            shots=shots,
            golden="known",
            golden_map={0: spec.golden_basis},
            seed=s,
        )
        p_cut = run.probabilities
        return (
            weighted_distance(p_uncut, truth),
            weighted_distance(p_cut, truth),
            total_variation(p_uncut, truth),
            total_variation(p_cut, truth),
        )

    outcomes = run_trials(trial, trials, seed=seed)
    return {
        f"{num_qubits}q uncut on hardware (d_w)": [o[0] for o in outcomes],
        f"{num_qubits}q golden cut on hardware (d_w)": [o[1] for o in outcomes],
        f"{num_qubits}q uncut on hardware (TV)": [o[2] for o in outcomes],
        f"{num_qubits}q golden cut on hardware (TV)": [o[3] for o in outcomes],
    }


def run_fig3(
    sizes: tuple[int, ...] = (5, 7),
    trials: int = 10,
    shots: int = 10_000,
    seed: int = 2023,
    depth: int = 3,
    device_factory=None,
) -> Fig3Result:
    """Run the Fig. 3 experiment; defaults follow the paper's protocol.

    ``device_factory(num_qubits)`` may be overridden (e.g. noise-free
    devices for calibration tests); default is the catalog's fake 5q/7q
    IBM-like machines.
    """
    if device_factory is None:
        device_factory = lambda n: fake_device(n)  # noqa: E731
    raw: dict[str, list[float]] = {}
    for n in sizes:
        raw.update(_one_size(n, trials, shots, seed + n, depth, device_factory))
    stats = [summarize_trials(label, series) for label, series in raw.items()]
    return Fig3Result(stats=stats, raw=raw)
