"""Trial orchestration shared by all experiment reproductions.

Each figure's experiment is "repeat a stochastic measurement N times,
summarise with mean ± 95 % CI".  :func:`run_trials` drives that loop with
per-trial derived seeds so every experiment is reproducible end to end and
individual trials can be re-run in isolation (``trial_seeds`` exposes the
exact seed of trial *i*).
"""

from __future__ import annotations

from typing import Callable, TypeVar

import numpy as np

T = TypeVar("T")

__all__ = ["run_trials", "trial_seeds"]


def trial_seeds(seed: int | None, num_trials: int) -> list[int]:
    """Deterministic per-trial seeds derived from a master seed."""
    ss = np.random.SeedSequence(seed)
    return [int(child.generate_state(1)[0]) for child in ss.spawn(num_trials)]


def run_trials(
    trial_fn: Callable[[int, int], T],
    num_trials: int,
    seed: int | None = 0,
    progress: bool = False,
) -> list[T]:
    """Run ``trial_fn(trial_index, trial_seed)`` ``num_trials`` times.

    ``progress=True`` prints a one-line counter every 10 % — useful for the
    paper-scale runs (1000 trials in Fig. 4).
    """
    seeds = trial_seeds(seed, num_trials)
    out: list[T] = []
    step = max(1, num_trials // 10)
    for i, s in enumerate(seeds):
        out.append(trial_fn(i, s))
        if progress and (i + 1) % step == 0:
            print(f"  trial {i + 1}/{num_trials}")
    return out
