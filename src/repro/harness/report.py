"""ASCII table rendering for benchmark reports.

All experiment reproductions print their results through these helpers so
``pytest benchmarks/ --benchmark-only`` output contains the same rows the
paper's figures plot (EXPERIMENTS.md records a captured copy).
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["format_table", "print_table"]


def _fmt(v) -> str:
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1e5 or abs(v) < 1e-3:
            return f"{v:.3e}"
        return f"{v:.4g}"
    return str(v)


def format_table(
    rows: Sequence[Mapping], columns: Sequence[str] | None = None, title: str = ""
) -> str:
    """Render dict-rows as a fixed-width ASCII table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    cells = [[_fmt(r.get(c, "")) for c in columns] for r in rows]
    widths = [
        max(len(c), *(len(row[j]) for row in cells)) for j, c in enumerate(columns)
    ]
    sep = "-+-".join("-" * w for w in widths)
    header = " | ".join(c.ljust(w) for c, w in zip(columns, widths))
    body = "\n".join(
        " | ".join(cell.ljust(w) for cell, w in zip(row, widths)) for row in cells
    )
    out = f"{header}\n{sep}\n{body}"
    if title:
        out = f"{title}\n{out}"
    return out


def print_table(
    rows: Sequence[Mapping], columns: Sequence[str] | None = None, title: str = ""
) -> None:
    print()
    print(format_table(rows, columns, title))
