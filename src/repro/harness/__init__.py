"""Experiment harness reproducing every figure of the paper's evaluation."""

from repro.harness.experiment import run_trials, trial_seeds
from repro.harness.report import format_table, print_table
from repro.harness.fig3_accuracy import Fig3Result, run_fig3
from repro.harness.fig4_runtime import Fig4Result, run_fig4
from repro.harness.fig5_hardware import Fig5Result, run_fig5
from repro.harness.scaling import run_scaling

__all__ = [
    "run_trials",
    "trial_seeds",
    "format_table",
    "print_table",
    "Fig3Result",
    "run_fig3",
    "Fig4Result",
    "run_fig4",
    "Fig5Result",
    "run_fig5",
    "run_scaling",
]
