"""Multi-cut scaling ablation (paper §II-B's complexity claims).

The paper derives — but does not measure — the scaling
``O(4^{K_r} 3^{K_g})`` reconstruction terms and ``O(6^{K_r} 4^{K_g})``
circuit evaluations for ``K = K_r + K_g`` cuts.  This experiment measures
it: for each ``K`` and each number of golden cuts ``K_g``, build a circuit
whose cuts are all golden by construction, mark only ``K_g`` of them, and
record predicted counts plus the measured reconstruction wall time on exact
fragment data.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.circuit import Circuit
from repro.circuits.random import random_circuit, random_real_circuit
from repro.core.costs import cost_report
from repro.core.neglect import (
    reduced_bases,
    reduced_init_tuples,
    reduced_setting_tuples,
)
from repro.cutting.cut import CutPoint, CutSpec
from repro.cutting.execution import exact_fragment_data
from repro.cutting.fragments import bipartition
from repro.cutting.reconstruction import reconstruct_distribution
from repro.utils.rng import as_generator
from repro.utils.timing import Stopwatch

__all__ = [
    "chain_cut_circuit",
    "dag_cut_circuit",
    "ghz_star_circuit",
    "ghz_star_truth",
    "golden_chain_circuit",
    "golden_tree_circuit",
    "multi_cut_golden_circuit",
    "run_scaling",
    "tree_cut_circuit",
]


def _tree_children(parents: "list[int]") -> dict[int, list[int]]:
    """Builder-node → ordered child builder-nodes, validating the shape."""
    N = len(parents) + 1
    children: dict[int, list[int]] = {i: [] for i in range(N)}
    for child in range(1, N):
        p = parents[child - 1]
        if not 0 <= p < child:
            raise ValueError(
                f"parents[{child - 1}] = {p} must name an earlier node "
                f"(0..{child - 1})"
            )
        children[p].append(child)
    return children


def multi_cut_golden_circuit(
    num_cuts: int,
    extra_up: int = 1,
    extra_down: int = 1,
    depth: int = 2,
    seed: "int | None" = None,
) -> tuple[Circuit, CutSpec]:
    """A circuit whose ``K`` cut wires are all Y-golden.

    Upstream: a *real* random block on ``extra_up + K`` qubits (so the state
    before every cut is real → every cut is Y-golden for diagonal
    observables).  Downstream: an arbitrary random block on the ``K`` cut
    wires plus ``extra_down`` fresh qubits.
    """
    rng = as_generator(seed)
    n_up = extra_up + num_cuts
    n = n_up + extra_down
    cut_wires = list(range(extra_up, extra_up + num_cuts))
    qc = Circuit(n, name=f"scaling[K={num_cuts}]")
    qc = qc.compose(random_real_circuit(n_up, depth, seed=rng), qubits=list(range(n_up)))
    for w in cut_wires:  # anchor every cut wire upstream
        if not any(w in inst.qubits for inst in qc):
            qc.ry(float(rng.uniform(0, 6.28)), w)
    boundary = {w: max(i for i, inst in enumerate(qc) if w in inst.qubits) for w in cut_wires}
    down_qubits = cut_wires + list(range(n_up, n))
    # entangling ladder: every cut wire continues and the downstream
    # register is coupled, pinning the bipartition shape
    for a, b in zip(down_qubits, down_qubits[1:]):
        qc.cx(a, b)
    if len(down_qubits) == 1:
        qc.rx(float(rng.uniform(0, 6.28)), down_qubits[0])
    qc = qc.compose(random_circuit(len(down_qubits), depth, seed=rng), qubits=down_qubits)
    spec = CutSpec(tuple(CutPoint(w, boundary[w]) for w in cut_wires))
    return qc, spec


def chain_cut_circuit(
    num_fragments: int,
    cuts_per_group: "int | list[int]" = 1,
    fresh_per_fragment: int = 1,
    depth: int = 2,
    seed: "int | None" = None,
    real_blocks: bool = False,
):
    """A CutQC-style chain circuit with ``num_fragments − 1`` cut groups.

    Fragment block ``i`` acts on ``fresh_per_fragment`` fresh qubits plus
    the ``cuts_per_group[i-1]`` wires entering from block ``i − 1``; groups
    only share wires with their immediate neighbours, so the cut specs
    induce a genuine chain.  Returns ``(circuit, specs)`` with one
    :class:`~repro.cutting.cut.CutSpec` per group, all in original-circuit
    coordinates — ready for :func:`repro.cutting.chain.partition_chain`.

    ``real_blocks=True`` keeps every block real-amplitude, making every cut
    wire Y-golden (the chain analogue of :func:`multi_cut_golden_circuit`).
    """
    if num_fragments < 2:
        raise ValueError("a chain needs at least two fragments")
    if isinstance(cuts_per_group, int):
        cuts_per_group = [cuts_per_group] * (num_fragments - 1)
    if len(cuts_per_group) != num_fragments - 1:
        raise ValueError("need one cut count per adjacent fragment pair")
    rng = as_generator(seed)
    block = random_real_circuit if real_blocks else random_circuit

    # qubit layout: block i receives the K_{i-1} carried wires (its first
    # wires) and owns max(fresh, K_i) new ones; its *last* K_i wires — all
    # inside the new part, so incoming and outgoing sets stay disjoint —
    # carry on into block i + 1.
    widths = []
    starts = []
    n = 0
    for i in range(num_fragments):
        carry_in = cuts_per_group[i - 1] if i > 0 else 0
        carry_out = cuts_per_group[i] if i < num_fragments - 1 else 0
        width = carry_in + max(fresh_per_fragment, carry_out)
        starts.append(n - carry_in)
        widths.append(width)
        n += width - carry_in
    qc = Circuit(n, name=f"chain[N={num_fragments}]")

    specs = []
    for i in range(num_fragments):
        qubits = list(range(starts[i], starts[i] + widths[i]))
        before = len(qc)
        # entangling ladder: couples the entering wires through the whole
        # block, pinning the intended chain shape (without it a random
        # block may leave wires uncoupled and the bipartition cascade would
        # assign them elsewhere); cx is real, so Y-goldenness survives
        for a, b in zip(qubits, qubits[1:]):
            qc.cx(a, b)
        qc = qc.compose(block(len(qubits), depth, seed=rng), qubits=qubits)
        if i < num_fragments - 1:
            cut_wires = qubits[-cuts_per_group[i] :]
            for w in cut_wires:  # every cut wire needs an anchor in block i
                if not any(
                    w in qc[j].qubits for j in range(before, len(qc))
                ):
                    angle = float(rng.uniform(0, 6.28))
                    if real_blocks:
                        qc.ry(angle, w)
                    else:
                        qc.rx(angle, w)
            boundary = {
                w: max(j for j, inst in enumerate(qc) if w in inst.qubits)
                for w in cut_wires
            }
            specs.append(
                CutSpec(tuple(CutPoint(w, boundary[w]) for w in cut_wires))
            )
    return qc, specs


def tree_cut_circuit(
    parents: "list[int]",
    cuts_per_group: "int | list[int]" = 1,
    fresh_per_fragment: int = 1,
    depth: int = 2,
    seed: "int | None" = None,
    real_blocks: bool = False,
):
    """A branched CutQC-style circuit with an explicit fragment-tree shape.

    ``parents[g]`` names the builder-node feeding cut group ``g`` into
    builder-node ``g + 1`` (so ``parents = [0, 0]`` is a Y — one root with
    two children — and ``[0, 0, 1, 1]`` a 5-node two-level tree).  Block
    ``i`` acts on the wires entering from its parent plus
    ``max(fresh_per_fragment, outgoing cuts)`` fresh qubits; each child
    group's cut wires are distinct fresh qubits of the parent block, so
    sibling subtrees only share wires through their common ancestor and
    the specs induce a genuine tree.  Returns ``(circuit, specs)`` with
    one :class:`~repro.cutting.cut.CutSpec` per group in original-circuit
    coordinates — ready for :func:`repro.cutting.tree.partition_tree`.
    ``parents = [0, 1, 2, ...]`` degenerates to a chain.

    ``real_blocks=True`` keeps every block real-amplitude, making every
    cut wire Y-golden (the tree analogue of
    :func:`multi_cut_golden_circuit`).
    """
    parents = list(parents)
    if not parents:
        raise ValueError("a tree needs at least one cut group")
    N = len(parents) + 1
    children = _tree_children(parents)
    if isinstance(cuts_per_group, int):
        cuts_per_group = [cuts_per_group] * (N - 1)
    if len(cuts_per_group) != N - 1:
        raise ValueError("need one cut count per tree edge")
    rng = as_generator(seed)
    block = random_real_circuit if real_blocks else random_circuit

    # fresh-qubit allocation: node i owns max(fresh, outgoing cuts) wires
    fresh_of: dict[int, list[int]] = {}
    n = 0
    for i in range(N):
        total_out = sum(cuts_per_group[c - 1] for c in children[i])
        width = max(fresh_per_fragment, total_out)
        fresh_of[i] = list(range(n, n + width))
        n += width
    qc = Circuit(n, name=f"tree[N={N}]")

    edge_wires: dict[int, list[int]] = {}  # child node -> entering wires
    specs_by_child: dict[int, CutSpec] = {}
    for i in range(N):
        qubits = edge_wires.get(i, []) + fresh_of[i]
        before = len(qc)
        # entangling ladder: couples the entering wires through the whole
        # block, pinning the intended tree shape; cx is real, so
        # Y-goldenness survives real_blocks
        for a, b in zip(qubits, qubits[1:]):
            qc.cx(a, b)
        qc = qc.compose(block(len(qubits), depth, seed=rng), qubits=qubits)
        # each child group takes distinct wires off the end of the fresh set
        pos = len(fresh_of[i])
        for c in reversed(children[i]):
            k = cuts_per_group[c - 1]
            edge_wires[c] = fresh_of[i][pos - k : pos]
            pos -= k
        for c in children[i]:
            for w in edge_wires[c]:  # every cut wire needs an anchor here
                if not any(
                    w in qc[j].qubits for j in range(before, len(qc))
                ):
                    angle = float(rng.uniform(0, 6.28))
                    if real_blocks:
                        qc.ry(angle, w)
                    else:
                        qc.rx(angle, w)
            boundary = {
                w: max(j for j, inst in enumerate(qc) if w in inst.qubits)
                for w in edge_wires[c]
            }
            specs_by_child[c] = CutSpec(
                tuple(CutPoint(w, boundary[w]) for w in edge_wires[c])
            )
    return qc, [specs_by_child[c] for c in range(1, N)]


def dag_cut_circuit(
    edges: "list[tuple[int, int]]",
    cuts_per_group: "int | list[int]" = 1,
    fresh_per_fragment: int = 1,
    depth: int = 2,
    seed: "int | None" = None,
    real_blocks: bool = False,
):
    """A branched circuit whose cut specs induce an explicit fragment DAG.

    The DAG generalisation of :func:`tree_cut_circuit`: ``edges[g] =
    (src, dst)`` feeds cut group ``g`` from builder-node ``src`` into
    builder-node ``dst`` (``src < dst``; nodes are ``0..max(dst)``).  A
    node with several in-edges becomes a *joint-prep* fragment — exactly
    the shape the old tree engine rejected with "a DAG, not a tree".
    Block ``i`` acts on the wires entering from all of its parents plus
    ``max(fresh_per_fragment, outgoing cut wires)`` fresh qubits; every
    out-edge takes distinct fresh qubits, so wires only meet where the
    DAG says they do.  Returns ``(circuit, specs)`` with one
    :class:`~repro.cutting.cut.CutSpec` per edge in original-circuit
    coordinates — ready for :func:`repro.cutting.tree.partition_tree`.
    ``edges = [(i, i + 1), ...]`` degenerates to a chain and a
    single-parent edge set to a tree.

    ``real_blocks=True`` keeps every block real-amplitude, making every
    cut wire Y-golden.
    """
    edges = [tuple(e) for e in edges]
    if not edges:
        raise ValueError("a DAG needs at least one cut group")
    N = max(dst for _, dst in edges) + 1
    for g, (src, dst) in enumerate(edges):
        if not 0 <= src < dst < N:
            raise ValueError(
                f"edges[{g}] = {(src, dst)} must satisfy 0 <= src < dst"
            )
    if isinstance(cuts_per_group, int):
        cuts_per_group = [cuts_per_group] * len(edges)
    if len(cuts_per_group) != len(edges):
        raise ValueError("need one cut count per edge")
    in_edges: dict[int, list[int]] = {i: [] for i in range(N)}
    out_edges: dict[int, list[int]] = {i: [] for i in range(N)}
    for g, (src, dst) in enumerate(edges):
        out_edges[src].append(g)
        in_edges[dst].append(g)
    rng = as_generator(seed)
    block = random_real_circuit if real_blocks else random_circuit

    # fresh-qubit allocation: node i owns max(fresh, outgoing cuts) wires
    fresh_of: dict[int, list[int]] = {}
    n = 0
    for i in range(N):
        total_out = sum(cuts_per_group[g] for g in out_edges[i])
        width = max(fresh_per_fragment, total_out)
        fresh_of[i] = list(range(n, n + width))
        n += width
    qc = Circuit(n, name=f"dag[N={N}]")

    edge_wires: dict[int, list[int]] = {}  # edge id -> its cut wires
    specs_by_edge: dict[int, CutSpec] = {}
    for i in range(N):
        entering = [w for g in in_edges[i] for w in edge_wires[g]]
        qubits = entering + fresh_of[i]
        before = len(qc)
        # entangling ladder: couples all entering wires through the whole
        # block, pinning the intended DAG shape; cx is real, so
        # Y-goldenness survives real_blocks
        for a, b in zip(qubits, qubits[1:]):
            qc.cx(a, b)
        qc = qc.compose(block(len(qubits), depth, seed=rng), qubits=qubits)
        # each out-edge takes distinct wires off the end of the fresh set
        pos = len(fresh_of[i])
        for g in reversed(out_edges[i]):
            k = cuts_per_group[g]
            edge_wires[g] = fresh_of[i][pos - k : pos]
            pos -= k
        for g in out_edges[i]:
            for w in edge_wires[g]:  # every cut wire needs an anchor here
                if not any(
                    w in qc[j].qubits for j in range(before, len(qc))
                ):
                    angle = float(rng.uniform(0, 6.28))
                    if real_blocks:
                        qc.ry(angle, w)
                    else:
                        qc.rx(angle, w)
            boundary = {
                w: max(j for j, inst in enumerate(qc) if w in inst.qubits)
                for w in edge_wires[g]
            }
            specs_by_edge[g] = CutSpec(
                tuple(CutPoint(w, boundary[w]) for w in edge_wires[g])
            )
    return qc, [specs_by_edge[g] for g in range(len(edges))]


def ghz_star_circuit(
    children: int = 3,
    fresh_per_child: int = 7,
    angles: "tuple[float, ...] | None" = None,
):
    """A wide GHZ-star with one cut per child — the 20+-qubit workload.

    The root fragment prepares a ``(1 + children)``-qubit GHZ state (one
    anchor, one carrier per child) and every carrier wire is cut right
    after its entangling ``cx``; child fragment ``i`` extends its carrier
    over ``fresh_per_child`` fresh qubits with a ``cx`` ladder, so the
    full circuit is a ``1 + children·(1 + fresh_per_child)``-qubit GHZ
    state — e.g. ``(3, 7)`` is 25 qubits cut into fragments of ≤ 8.
    Fragments stay statevector-simulable while the *dense* reconstruction
    would need a ``2^n`` float vector; the sparse path reconstructs it in
    O(kept outcomes).

    ``angles[i]`` (optional, one per child) appends ``ry(angle)`` to the
    last qubit of child ``i`` **after** its ladder, flipping that qubit
    with probability ``sin²(angle/2)`` independently per child — the
    distribution stays analytically known (:func:`ghz_star_truth`,
    ``2^{children + 1}`` outcomes) but is no longer two spikes, so
    ``threshold`` pruning has genuine small mass to discard.

    Returns ``(circuit, specs)`` ready for
    :func:`~repro.cutting.tree.partition_tree` (a star: ``parents =
    [0] * children``).
    """
    if children < 1 or fresh_per_child < 1:
        raise ValueError("need at least one child and one fresh qubit")
    if angles is not None and len(angles) != children:
        raise ValueError("need one perturbation angle per child")
    n = 1 + children * (1 + fresh_per_child)
    qc = Circuit(n, name=f"ghz_star[{children}x{fresh_per_child}]")
    qc.h(0)
    for i in range(1, children + 1):
        qc.cx(0, i)  # gate index i — the carrier's cut point
    specs = [
        CutSpec((CutPoint(i, i),)) for i in range(1, children + 1)
    ]
    for i in range(1, children + 1):
        block = [i] + [
            children + (i - 1) * fresh_per_child + 1 + j
            for j in range(fresh_per_child)
        ]
        for a, b in zip(block, block[1:]):
            qc.cx(a, b)
        if angles is not None:
            qc.ry(float(angles[i - 1]), block[-1])
    return qc, specs


def ghz_star_truth(
    children: int = 3,
    fresh_per_child: int = 7,
    angles: "tuple[float, ...] | None" = None,
) -> dict[int, float]:
    """Exact output distribution of :func:`ghz_star_circuit`, as a sparse
    ``{little-endian index: probability}`` dict — never a dense vector.

    Each GHZ branch ``b ∈ {0, 1}`` has weight 1/2; within a branch the
    ``ry`` on child ``i``'s last qubit flips it with probability
    ``sin²(angles[i]/2)``, independently across children (the branches are
    orthogonal on the unperturbed qubits, so there is no interference).
    """
    n = 1 + children * (1 + fresh_per_child)
    if angles is None:
        angles = (0.0,) * children
    flip = [float(np.sin(a / 2.0) ** 2) for a in angles]
    last = [children + i * fresh_per_child for i in range(1, children + 1)]
    truth: dict[int, float] = {}
    for b in (0, 1):
        base = (1 << n) - 1 if b else 0
        for subset in range(1 << children):
            p = 0.5
            idx = base
            for i in range(children):
                if (subset >> i) & 1:
                    p *= flip[i]
                    idx ^= 1 << last[i]
                else:
                    p *= 1.0 - flip[i]
            if p > 0.0:
                truth[idx] = truth.get(idx, 0.0) + p
    return truth


def golden_tree_circuit(
    parents: "list[int]",
    planted_groups: "tuple[int, ...] | list[int]" = (),
    fresh_per_fragment: int = 2,
    depth: int = 2,
    seed: "int | None" = None,
):
    """A tree circuit with X/Y-golden cut groups planted where asked.

    The tree analogue of :func:`golden_chain_circuit` — ``parents``
    encodes the topology exactly as in :func:`tree_cut_circuit`, one cut
    per group.  A *planted* group's cut wire is driven only by Z-diagonal
    gates (``rz``/``cz``/``t``) from ``|0⟩``, so the state entering that
    cut carries no X or Y information **for every preparation context**
    the parent group can inject — both bases are golden at that cut
    unconditionally, while Z stays maximally informative.  A *regular*
    group's cut wire is mixed into the block with generic complex
    rotations and an entangling gate, so generically no basis is golden
    there.

    Returns ``(circuit, specs, planted_maps)``: ``planted_maps[g]`` is
    ``{0: ("X", "Y")}`` for planted groups and ``None`` otherwise — ready
    to compare ``golden="detect"`` verdicts (or feed ``golden="known"``)
    in :func:`repro.core.pipeline.cut_and_run_tree`.
    """
    parents = list(parents)
    if not parents:
        raise ValueError("a tree needs at least one cut group")
    N = len(parents) + 1
    children = _tree_children(parents)
    planted = set(planted_groups)
    if planted - set(range(N - 1)):
        raise ValueError(
            f"planted groups {sorted(planted)} out of range "
            f"(tree has {N - 1} groups)"
        )
    for i in range(N):
        if fresh_per_fragment < len(children[i]) + 1:
            raise ValueError(
                f"node {i} has {len(children[i])} children; needs "
                f"fresh_per_fragment >= {len(children[i]) + 1}"
            )
    rng = as_generator(seed)
    n = fresh_per_fragment * N
    qc = Circuit(n, name=f"golden_tree[N={N}]")
    edge_wire: dict[int, int] = {}  # child node -> its entering wire
    specs_by_child: dict[int, CutSpec] = {}
    for i in range(N):
        fresh = list(
            range(i * fresh_per_fragment, (i + 1) * fresh_per_fragment)
        )
        qubits = ([edge_wire[i]] if i > 0 else []) + fresh
        # the *last* fresh qubits carry on, one per child
        outs = fresh[len(fresh) - len(children[i]) :] if children[i] else []
        body = [q for q in qubits if q not in outs]
        before = len(qc)
        qc = qc.compose(
            random_circuit(len(body), depth, seed=rng), qubits=body
        )
        if i > 0 and not any(  # anchor the entering wire in this block
            qubits[0] in qc[j].qubits for j in range(before, len(qc))
        ):
            qc.cx(qubits[0], body[1])
        for w, c in zip(outs, children[i]):
            if c - 1 in planted:
                # Z-diagonal drive only: the cut wire stays |0⟩ exactly, so
                # X and Y are golden for every entering preparation
                qc.rz(float(rng.uniform(0, 6.28)), w)
                qc.cz(w, body[0])
                qc.t(w)
            else:
                qc.ry(float(rng.uniform(0.5, 2.6)), w)
                qc.cx(body[0], w)
                qc.rx(float(rng.uniform(0.5, 2.6)), w)
            boundary = max(
                j for j, inst in enumerate(qc) if w in inst.qubits
            )
            specs_by_child[c] = CutSpec((CutPoint(w, boundary),))
            edge_wire[c] = w
    planted_maps = [
        {0: ("X", "Y")} if g in planted else None for g in range(N - 1)
    ]
    return qc, [specs_by_child[c] for c in range(1, N)], planted_maps


def golden_chain_circuit(
    num_fragments: int,
    planted_groups: "tuple[int, ...] | list[int]" = (),
    fresh_per_fragment: int = 2,
    depth: int = 2,
    seed: "int | None" = None,
):
    """A chain circuit with X/Y-golden cut groups planted where asked.

    One cut per group.  A *planted* group's cut wire is driven only by
    Z-diagonal gates (``rz``/``t``/``cz``) from ``|0⟩``, so the state
    entering that cut carries no X or Y information **for every
    preparation context** the previous group can inject — both bases are
    golden at that cut unconditionally, while Z stays maximally informative
    (the wire sits in a computational eigenstate).  A *regular* group's cut
    wire is mixed into the block with generic complex rotations and an
    entangling gate, so generically no basis is golden there; detection
    tests verify the induced deviations analytically before relying on
    them.

    Returns ``(circuit, specs, planted_maps)``: ``planted_maps[g]`` is
    ``{0: ("X", "Y")}`` for planted groups and ``None`` otherwise — ready
    to compare ``golden="detect"`` verdicts (or feed ``golden="known"``)
    in :func:`repro.core.pipeline.cut_and_run_chain`.
    """
    if num_fragments < 2:
        raise ValueError("a chain needs at least two fragments")
    if fresh_per_fragment < 2:
        raise ValueError("need at least two fresh qubits per fragment")
    planted = set(planted_groups)
    if planted - set(range(num_fragments - 1)):
        raise ValueError(
            f"planted groups {sorted(planted)} out of range "
            f"(chain has {num_fragments - 1} groups)"
        )
    rng = as_generator(seed)
    n = fresh_per_fragment * num_fragments
    qc = Circuit(n, name=f"golden_chain[N={num_fragments}]")
    specs = []
    start = 0
    for i in range(num_fragments):
        carry_in = 1 if i > 0 else 0
        qubits = list(range(start - carry_in, start + fresh_per_fragment))
        start += fresh_per_fragment
        last_group = i == num_fragments - 1
        # the *last* local qubit carries on into block i + 1
        cut_wire = None if last_group else qubits[-1]
        body = [q for q in qubits if q != cut_wire]
        before = len(qc)
        qc = qc.compose(
            random_circuit(len(body), depth, seed=rng), qubits=body
        )
        if i > 0 and not any(  # anchor the entering wire in this block
            qubits[0] in qc[j].qubits for j in range(before, len(qc))
        ):
            qc.cx(qubits[0], body[1])
        if cut_wire is None:
            continue
        if i in planted:
            # Z-diagonal drive only: the cut wire stays |0⟩ exactly, so X
            # and Y are golden for every entering preparation
            qc.rz(float(rng.uniform(0, 6.28)), cut_wire)
            qc.cz(cut_wire, body[0])
            qc.t(cut_wire)
        else:
            qc.ry(float(rng.uniform(0.5, 2.6)), cut_wire)
            qc.cx(body[0], cut_wire)
            qc.rx(float(rng.uniform(0.5, 2.6)), cut_wire)
        boundary = max(j for j, inst in enumerate(qc) if cut_wire in inst.qubits)
        specs.append(CutSpec((CutPoint(cut_wire, boundary),)))
    planted_maps = [
        {0: ("X", "Y")} if g in planted else None
        for g in range(num_fragments - 1)
    ]
    return qc, specs, planted_maps


def run_scaling(max_cuts: int = 3, depth: int = 2, seed: int = 777, repeats: int = 3) -> list[dict]:
    """Measure terms/variants/reconstruction-time across (K, K_g) grid."""
    rows: list[dict] = []
    for K in range(1, max_cuts + 1):
        qc, spec = multi_cut_golden_circuit(K, depth=depth, seed=seed + K)
        pair = bipartition(qc, spec)
        for kg in range(K + 1):
            golden = {k: "Y" for k in range(kg)}
            report = cost_report(K, golden or None, shots_per_variant=1000)
            settings = reduced_setting_tuples(K, golden) if golden else None
            inits = reduced_init_tuples(K, golden) if golden else None
            bases = reduced_bases(K, golden) if golden else None
            data = exact_fragment_data(pair, settings=settings, inits=inits)
            sw = Stopwatch()
            for _ in range(repeats):
                with sw:
                    reconstruct_distribution(data, bases=bases, postprocess="raw")
            rows.append(
                {
                    "K": K,
                    "K_golden": kg,
                    "rows(4^Kr*3^Kg)": report.reconstruction_rows,
                    "upstream": report.upstream_settings,
                    "downstream": report.downstream_inits,
                    "variants": report.num_variants,
                    "reconstruct_ms": 1e3 * sw.elapsed / repeats,
                }
            )
    return rows
