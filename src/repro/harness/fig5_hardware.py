"""Reproduction of paper Fig. 5 — circuit-cutting runtime on (fake) devices.

The paper's headline result: on IBM hardware, standard reconstruction
averaged **18.84 s** per trial and the golden-cutting-point method
**12.61 s** — a 33 % reduction driven by executing 3.0·10⁵ instead of
4.5·10⁵ circuits over 50 trials of 1000 shots (9 variants → 6).

Real queue seconds are unavailable offline, so the fake device charges its
:class:`~repro.backends.timing.DeviceTimingModel` to a virtual clock
(DESIGN.md §2).  The *ratio* standard/golden is the physics of the method —
variant count × shots — and is asserted in tests; absolute seconds land near
the paper's with the default calibration.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.backends.devices import fake_device
from repro.core.ansatz import golden_ansatz
from repro.core.pipeline import cut_and_run
from repro.harness.experiment import run_trials
from repro.metrics.stats import TrialStats, summarize_trials

__all__ = ["Fig5Result", "run_fig5"]

#: the paper's reported means, for side-by-side printing
PAPER_STANDARD_SECONDS = 18.84
PAPER_GOLDEN_SECONDS = 12.61
PAPER_STANDARD_EXECUTIONS = 450_000
PAPER_GOLDEN_EXECUTIONS = 300_000


@dataclass
class Fig5Result:
    standard: TrialStats
    golden: TrialStats
    speedup: float
    executions_standard: int
    executions_golden: int

    def rows(self) -> list[dict]:
        return [
            {
                "series": "standard",
                "modeled s/trial": self.standard.mean,
                "ci95": self.standard.ci_halfwidth,
                "paper s/trial": PAPER_STANDARD_SECONDS,
                "executions": self.executions_standard,
                "paper executions": PAPER_STANDARD_EXECUTIONS,
            },
            {
                "series": "golden",
                "modeled s/trial": self.golden.mean,
                "ci95": self.golden.ci_halfwidth,
                "paper s/trial": PAPER_GOLDEN_SECONDS,
                "executions": self.executions_golden,
                "paper executions": PAPER_GOLDEN_EXECUTIONS,
            },
            {
                "series": "ratio std/golden",
                "modeled s/trial": self.speedup,
                "ci95": "",
                "paper s/trial": PAPER_STANDARD_SECONDS / PAPER_GOLDEN_SECONDS,
                "executions": "",
                "paper executions": "",
            },
        ]


def run_fig5(
    num_qubits: int = 5,
    trials: int = 50,
    shots: int = 1000,
    seed: int = 505,
    depth: int = 3,
) -> Fig5Result:
    """Modelled device wall time, standard vs golden, paper protocol."""

    def trial(i: int, s: int) -> tuple[float, float, int, int]:
        spec = golden_ansatz(num_qubits, depth=depth, golden_basis="Y", seed=s)
        dev_std = fake_device(num_qubits)
        r_std = cut_and_run(
            spec.circuit, dev_std, cuts=spec.cut_spec, shots=shots,
            golden="off", seed=s,
        )
        dev_gld = fake_device(num_qubits)
        r_gld = cut_and_run(
            spec.circuit, dev_gld, cuts=spec.cut_spec, shots=shots,
            golden="known", golden_map={0: spec.golden_basis}, seed=s,
        )
        return (
            r_std.device_seconds,
            r_gld.device_seconds,
            r_std.total_executions,
            r_gld.total_executions,
        )

    outcomes = run_trials(trial, trials, seed=seed)
    std = summarize_trials("standard device seconds", [o[0] for o in outcomes])
    gld = summarize_trials("golden device seconds", [o[1] for o in outcomes])
    return Fig5Result(
        standard=std,
        golden=gld,
        speedup=std.mean / gld.mean,
        executions_standard=sum(o[2] for o in outcomes),
        executions_golden=sum(o[3] for o in outcomes),
    )
