"""Global configuration for the :mod:`repro` package.

Centralises numerical defaults so every subsystem (simulators, cutting,
backends) agrees on dtype, tolerances and seeding conventions.  Keeping these
in one module avoids the classic reproduction bug where two modules compare
floats with different tolerances and tests flake.
"""

from __future__ import annotations

import numpy as np

#: Complex dtype used for every statevector / density matrix / unitary.
COMPLEX_DTYPE = np.complex128

#: Real dtype used for probability vectors and reconstruction tensors.
REAL_DTYPE = np.float64

#: Absolute tolerance for "is this amplitude/probability zero" decisions
#: in *exact* (noiseless, analytic) computations.
ATOL = 1e-10

#: Looser tolerance for decisions driven by finite-shot estimates.
SHOT_ATOL = 1e-6

#: Default number of measurement shots when a caller does not specify one.
DEFAULT_SHOTS = 1000

#: Default significance level for the empirical golden-cut detector.
DEFAULT_ALPHA = 1e-3


def tolerance_for(shots: int | None) -> float:
    """Return a sensible zero-tolerance given a shot budget.

    ``shots=None`` means an analytic (infinite-shot) computation, for which
    :data:`ATOL` applies.  Otherwise the standard error of a Bernoulli
    estimate, ``~1/sqrt(shots)``, sets the natural scale; we allow five
    standard errors before calling something non-zero.
    """
    if shots is None:
        return ATOL
    if shots <= 0:
        raise ValueError(f"shots must be positive, got {shots}")
    return 5.0 / np.sqrt(float(shots))
