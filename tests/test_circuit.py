"""Unit tests for the Circuit IR: builders, structure, analysis, QASM."""

import numpy as np
import pytest

from repro.circuits import Circuit, circuit_from_qasm, circuit_to_qasm, draw
from repro.circuits.gates import Gate
from repro.circuits.instruction import Instruction
from repro.exceptions import CircuitError
from repro.sim import circuit_unitary

from tests.helpers import phase_equal


class TestConstruction:
    def test_builder_chaining(self):
        qc = Circuit(2).h(0).cx(0, 1).rz(0.5, 1)
        assert len(qc) == 3
        assert qc[0].name == "h"
        assert qc[2].params == (0.5,)

    def test_zero_qubits_rejected(self):
        with pytest.raises(CircuitError):
            Circuit(0)

    def test_out_of_range_qubit(self):
        with pytest.raises(CircuitError):
            Circuit(2).h(2)

    def test_duplicate_qubits_rejected(self):
        with pytest.raises(CircuitError):
            Circuit(2).cx(1, 1)

    def test_wrong_arity(self):
        with pytest.raises(CircuitError):
            Instruction(Gate("cx"), (0,))

    def test_unknown_gate_rejected_eagerly(self):
        from repro.exceptions import GateError

        with pytest.raises(GateError):
            Circuit(2).add_gate("nope", (0,))

    def test_barrier_is_noop(self):
        qc = Circuit(2).h(0).barrier().cx(0, 1)
        assert len(qc) == 2

    def test_equality(self):
        a = Circuit(2).h(0).cx(0, 1)
        b = Circuit(2).h(0).cx(0, 1)
        c = Circuit(2).h(1).cx(0, 1)
        assert a == b
        assert a != c


class TestStructure:
    def test_compose_identity_mapping(self):
        a = Circuit(3).h(0)
        b = Circuit(2).cx(0, 1)
        c = a.compose(b)
        assert len(c) == 2
        assert c[1].qubits == (0, 1)

    def test_compose_with_mapping(self):
        a = Circuit(3)
        b = Circuit(2).cx(0, 1)
        c = a.compose(b, qubits=[2, 0])
        assert c[0].qubits == (2, 0)

    def test_compose_width_check(self):
        with pytest.raises(CircuitError):
            Circuit(1).compose(Circuit(2).h(0))

    def test_remap(self):
        qc = Circuit(3).cx(0, 1)
        out = qc.remap([2, 0, 1])
        assert out[0].qubits == (2, 0)

    def test_inverse_is_unitary_inverse(self):
        from repro.circuits import random_circuit

        qc = random_circuit(3, 4, seed=3)
        u = circuit_unitary(qc)
        ui = circuit_unitary(qc.inverse())
        np.testing.assert_allclose(ui @ u, np.eye(8), atol=1e-10)

    def test_copy_is_independent(self):
        a = Circuit(2).h(0)
        b = a.copy()
        b.x(1)
        assert len(a) == 1 and len(b) == 2

    def test_slice(self):
        qc = Circuit(2).h(0).x(1).cx(0, 1)
        assert [i.name for i in qc.slice(1, 3)] == ["x", "cx"]

    def test_filtered(self):
        qc = Circuit(2).h(0).x(1).cx(0, 1)
        only_1q = qc.filtered(lambda i: len(i.qubits) == 1)
        assert len(only_1q) == 2


class TestAnalysis:
    def test_depth_parallel_gates(self):
        qc = Circuit(3).h(0).h(1).h(2)
        assert qc.depth() == 1

    def test_depth_serial(self):
        qc = Circuit(2).h(0).cx(0, 1).h(1)
        assert qc.depth() == 3

    def test_depth_empty(self):
        assert Circuit(2).depth() == 0

    def test_count_ops(self):
        qc = Circuit(2).h(0).h(1).cx(0, 1)
        assert qc.count_ops() == {"h": 2, "cx": 1}

    def test_num_two_qubit_gates(self):
        qc = Circuit(3).h(0).cx(0, 1).cz(1, 2)
        assert qc.num_two_qubit_gates() == 2

    def test_qubits_used(self):
        qc = Circuit(5).h(1).cx(3, 1)
        assert qc.qubits_used() == (1, 3)

    def test_is_real(self):
        assert Circuit(2).h(0).cx(0, 1).ry(0.3, 1).is_real()
        assert not Circuit(2).h(0).s(1).is_real()
        assert not Circuit(1).rx(0.2, 0).is_real()

    def test_parameters(self):
        qc = Circuit(2).rx(0.1, 0).u3(0.2, 0.3, 0.4, 1)
        assert qc.parameters() == [0.1, 0.2, 0.3, 0.4]


class TestQasmRoundtrip:
    def test_roundtrip_preserves_semantics(self):
        from repro.circuits import random_circuit

        qc = random_circuit(4, 5, seed=9)
        back = circuit_from_qasm(circuit_to_qasm(qc))
        assert back.num_qubits == qc.num_qubits
        assert phase_equal(circuit_unitary(back), circuit_unitary(qc))

    def test_roundtrip_structure(self):
        qc = Circuit(2).h(0).rx(1.25, 1).cx(0, 1)
        back = circuit_from_qasm(circuit_to_qasm(qc))
        assert [i.name for i in back] == ["h", "rx", "cx"]
        assert back[1].params == (1.25,)

    def test_bad_header(self):
        with pytest.raises(CircuitError):
            circuit_from_qasm("h 0\n")

    def test_bad_line(self):
        with pytest.raises(CircuitError):
            circuit_from_qasm("qubits 2\nh zero\n")

    def test_comments_and_blanks_ignored(self):
        text = "qubits 2\n\n# comment\nh 0\n"
        qc = circuit_from_qasm(text)
        assert len(qc) == 1


class TestDraw:
    def test_draw_contains_all_wires(self):
        art = draw(Circuit(3).h(0).cx(0, 2))
        assert art.count("\n") == 2
        assert "H" in art and "●" in art and "X" in art

    def test_draw_empty(self):
        art = draw(Circuit(2))
        assert "q0:" in art and "q1:" in art
