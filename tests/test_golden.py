"""Tests for golden cutting points: ansatz guarantees, analytic finder,
and the central theorem — reduced reconstruction loses nothing.
"""

import numpy as np
import pytest

from repro.circuits import Circuit
from repro.core import (
    find_golden_bases_analytic,
    golden_ansatz,
    three_qubit_example,
)
from repro.core.golden import definition1_deviation, is_golden_analytic
from repro.core.neglect import (
    reduced_bases,
    reduced_init_tuples,
    reduced_setting_tuples,
)
from repro.cutting import bipartition
from repro.cutting.execution import exact_fragment_data
from repro.cutting.reconstruction import reconstruct_distribution
from repro.exceptions import CutError, DetectionError
from repro.sim import simulate_statevector

from tests.helpers import two_block_circuit


class TestGoldenAnsatz:
    @pytest.mark.parametrize("basis", ["X", "Y", "Z"])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_designed_basis_is_golden(self, basis, seed):
        spec = golden_ansatz(5, depth=3, golden_basis=basis, seed=seed)
        pair = bipartition(spec.circuit, spec.cut_spec)
        assert is_golden_analytic(pair, 0, basis)

    @pytest.mark.parametrize("n", [3, 4, 5, 6, 7])
    def test_widths(self, n):
        spec = golden_ansatz(n, depth=2, seed=n)
        pair = bipartition(spec.circuit, spec.cut_spec)
        assert is_golden_analytic(pair, 0, "Y")
        assert sorted(pair.output_order()) == list(range(n))

    def test_fragment_shapes_match_paper(self):
        """5q -> 3+3 fragments, 7q -> 4+4 (paper §III)."""
        for n, frag in ((5, 3), (7, 4)):
            spec = golden_ansatz(n, depth=3, seed=1)
            pair = bipartition(spec.circuit, spec.cut_spec)
            assert pair.n_up == frag and pair.n_down == frag

    def test_too_small_rejected(self):
        with pytest.raises(CutError):
            golden_ansatz(2)

    def test_invalid_basis_rejected(self):
        with pytest.raises(CutError):
            golden_ansatz(5, golden_basis="I")

    def test_without_rx_layer(self):
        spec = golden_ansatz(5, seed=3, rx_layer=False)
        pair = bipartition(spec.circuit, spec.cut_spec)
        assert is_golden_analytic(pair, 0, "Y")

    def test_three_qubit_example_golden(self):
        spec = three_qubit_example(seed=4, golden=True)
        pair = bipartition(spec.circuit, spec.cut_spec)
        assert is_golden_analytic(pair, 0, "Y")

    def test_reproducible(self):
        a = golden_ansatz(5, seed=9).circuit
        b = golden_ansatz(5, seed=9).circuit
        assert a == b


class TestDefinitionOne:
    def test_deviation_zero_for_golden(self):
        spec = golden_ansatz(5, seed=2)
        pair = bipartition(spec.circuit, spec.cut_spec)
        data = exact_fragment_data(pair, inits=[("Z+",)])
        assert definition1_deviation(data, 0, "Y") < 1e-10

    def test_deviation_positive_for_regular(self):
        """A generic (complex) upstream block is not Y-golden."""
        qc, spec = two_block_circuit(3, [0, 1], [1, 2], seed=17)
        pair = bipartition(qc, spec)
        devs = {
            b: definition1_deviation(
                exact_fragment_data(pair, inits=[("Z+",)]), 0, b
            )
            for b in ("X", "Y", "Z")
        }
        # at least one basis must carry information for a generic circuit
        assert max(devs.values()) > 1e-3

    def test_invalid_basis(self, simple_cut_pair):
        _, _, pair = simple_cut_pair
        data = exact_fragment_data(pair)
        with pytest.raises(DetectionError):
            definition1_deviation(data, 0, "I")

    def test_invalid_cut_index(self, simple_cut_pair):
        _, _, pair = simple_cut_pair
        data = exact_fragment_data(pair)
        with pytest.raises(DetectionError):
            definition1_deviation(data, 3, "Y")

    def test_missing_setting(self, simple_cut_pair):
        _, _, pair = simple_cut_pair
        data = exact_fragment_data(pair, settings=[("Z",)])
        with pytest.raises(DetectionError):
            definition1_deviation(data, 0, "Y")


class TestAnalyticFinder:
    def test_finds_only_real_golden_bases(self):
        spec = golden_ansatz(5, depth=3, golden_basis="Y", seed=11)
        pair = bipartition(spec.circuit, spec.cut_spec)
        found = find_golden_bases_analytic(pair)
        assert "Y" in found[0]

    def test_multi_cut_mixed(self):
        """Two cuts: both are Y-golden for a real upstream block."""
        qc, spec = two_block_circuit(
            5, [0, 1, 2], [1, 2, 3, 4], seed=4, real_upstream=True
        )
        pair = bipartition(qc, spec)
        found = find_golden_bases_analytic(pair)
        assert "Y" in found[0] and "Y" in found[1]

    def test_bell_correlated_cuts_are_not_y_golden(self):
        """The multi-cut subtlety: ⟨Y⊗Y⟩ of a real state is real and can
        be nonzero (Bell pair: −1), so Y is *not* golden at either cut even
        though the upstream circuit is real.  Only rows with an odd number
        of Ys vanish structurally; the pointwise Definition-1 finder must
        therefore reject Y here."""
        from repro.circuits import Circuit
        from repro.cutting import CutPoint, CutSpec

        qc = Circuit(4)
        qc.h(1).cx(1, 2)        # Bell pair spanning the two cut wires
        qc.ry(0.4, 0).cx(0, 1)  # upstream out qubit
        qc.cx(1, 3).cx(2, 3)    # downstream
        spec = CutSpec((CutPoint(1, 3), CutPoint(2, 1)))
        pair = bipartition(qc, spec)
        found = find_golden_bases_analytic(pair)
        assert "Y" not in found[0] and "Y" not in found[1]
        # single-cut restriction of the same state *is* Y-golden: the odd-Y
        # expectation ψᵀ(D ⊗ Y)ψ vanishes for real ψ
        dev = definition1_deviation(
            exact_fragment_data(pair, inits=[("Z+", "Z+")]), 0, "Y"
        )
        assert dev > 0.1  # driven by the (Y, Y) measurement context

    def test_regular_cut_can_be_empty(self):
        # deep complex upstream: generically nothing is golden (shallow
        # draws from the diagonal-heavy pool often leave the cut qubit in a
        # Z eigenstate, which *is* X/Y-golden — a real effect, so we use
        # depth 6 to land on generic states)
        for seed in range(10):
            qc, spec = two_block_circuit(
                3, [0, 1], [1, 2], depth=6, seed=100 + seed
            )
            pair = bipartition(qc, spec)
            found = find_golden_bases_analytic(pair)
            if not found[0]:
                return  # found a generic regular cut
        pytest.fail("every random circuit accidentally golden — improbable")

    def test_shallow_diagonal_circuit_is_xy_golden(self):
        """Documenting the diagonal-pool effect: a cut qubit left in |0⟩
        carries no X/Y information — both bases are genuinely golden."""
        from repro.circuits import Circuit
        from repro.cutting import CutPoint, CutSpec

        qc = Circuit(2)
        qc.rz(0.8, 0).t(0)  # cut wire stays |0>
        qc.cx(0, 1)
        pair = bipartition(qc, CutSpec((CutPoint(0, 1),)))
        found = find_golden_bases_analytic(pair)
        assert set(found[0]) == {"X", "Y"}


class TestGoldenReconstructionExactness:
    """The core claim: neglecting a golden basis does not change the result."""

    @pytest.mark.parametrize("basis", ["X", "Y", "Z"])
    def test_reduced_equals_truth(self, basis):
        spec = golden_ansatz(5, depth=3, golden_basis=basis, seed=23)
        pair = bipartition(spec.circuit, spec.cut_spec)
        golden = {0: basis}
        data = exact_fragment_data(
            pair,
            settings=reduced_setting_tuples(1, golden),
            inits=reduced_init_tuples(1, golden),
        )
        p = reconstruct_distribution(
            data, bases=reduced_bases(1, golden), postprocess="raw"
        )
        truth = simulate_statevector(spec.circuit).probabilities()
        np.testing.assert_allclose(p, truth, atol=1e-9)

    def test_two_golden_cuts(self):
        qc, spec = two_block_circuit(
            5, [0, 1, 2], [1, 2, 3, 4], seed=6, real_upstream=True
        )
        pair = bipartition(qc, spec)
        golden = {0: "Y", 1: "Y"}
        data = exact_fragment_data(
            pair,
            settings=reduced_setting_tuples(2, golden),
            inits=reduced_init_tuples(2, golden),
        )
        p = reconstruct_distribution(
            data, bases=reduced_bases(2, golden), postprocess="raw"
        )
        truth = simulate_statevector(qc).probabilities()
        np.testing.assert_allclose(p, truth, atol=1e-9)

    def test_mixed_golden_regular(self):
        """One golden + one regular cut in the same bipartition."""
        qc, spec = two_block_circuit(
            5, [0, 1, 2], [1, 2, 3, 4], seed=8, real_upstream=True
        )
        pair = bipartition(qc, spec)
        golden = {0: "Y"}  # treat only cut 0 as golden
        data = exact_fragment_data(
            pair,
            settings=reduced_setting_tuples(2, golden),
            inits=reduced_init_tuples(2, golden),
        )
        p = reconstruct_distribution(
            data, bases=reduced_bases(2, golden), postprocess="raw"
        )
        truth = simulate_statevector(qc).probabilities()
        np.testing.assert_allclose(p, truth, atol=1e-9)

    def test_wrongly_neglecting_nongolden_breaks(self):
        """Sanity: dropping a *non*-golden basis corrupts the answer."""
        for seed in range(6):
            qc, spec = two_block_circuit(
                3, [0, 1], [1, 2], depth=6, seed=200 + seed
            )
            pair = bipartition(qc, spec)
            dev = definition1_deviation(
                exact_fragment_data(pair, inits=[("Z+",)]), 0, "Y"
            )
            if dev < 1e-3:
                continue  # basis accidentally (near) golden; pick another
            golden = {0: "Y"}
            data = exact_fragment_data(
                pair,
                settings=reduced_setting_tuples(1, golden),
                inits=reduced_init_tuples(1, golden),
            )
            p = reconstruct_distribution(
                data, bases=reduced_bases(1, golden), postprocess="raw"
            )
            truth = simulate_statevector(qc).probabilities()
            assert not np.allclose(p, truth, atol=1e-6)
            return
        pytest.fail("no genuinely non-golden circuit found")
