"""Tests for distribution distances (paper Eq. 17) and trial statistics."""

import numpy as np
import pytest

from repro.exceptions import ReproError
from repro.metrics import (
    hellinger_distance,
    kl_divergence,
    mean_confidence_interval,
    summarize_trials,
    total_variation,
    weighted_distance,
)
from repro.metrics.distances import out_of_support_mass


class TestWeightedDistance:
    def test_identical_is_zero(self, rng):
        q = rng.random(8)
        q /= q.sum()
        assert weighted_distance(q, q) == pytest.approx(0.0)

    def test_formula(self):
        q = np.array([0.5, 0.5])
        p = np.array([0.6, 0.4])
        # (0.1^2)/0.5 + (0.1^2)/0.5 = 0.04
        assert weighted_distance(p, q) == pytest.approx(0.04)

    def test_penalises_relative_error(self):
        """Same absolute deviation costs more on small-probability outcomes."""
        q1 = np.array([0.5, 0.5])
        q2 = np.array([0.95, 0.05])
        p1 = q1 + np.array([0.04, -0.04])
        p2 = q2 + np.array([0.04, -0.04])
        assert weighted_distance(p2, q2) > weighted_distance(p1, q1)

    def test_support_restriction(self):
        q = np.array([1.0, 0.0])
        p = np.array([0.9, 0.1])
        # only x=0 is in support: (0.1)^2 / 1.0
        assert weighted_distance(p, q) == pytest.approx(0.01)
        assert out_of_support_mass(p, q) == pytest.approx(0.1)

    def test_asymmetric(self):
        p = np.array([0.7, 0.3])
        q = np.array([0.4, 0.6])
        assert weighted_distance(p, q) != weighted_distance(q, p)

    def test_shape_mismatch(self):
        with pytest.raises(ReproError):
            weighted_distance(np.ones(2) / 2, np.ones(4) / 4)

    def test_negative_rejected(self):
        with pytest.raises(ReproError):
            weighted_distance(np.array([-0.1, 1.1]), np.array([0.5, 0.5]))


class TestOtherDistances:
    def test_total_variation_bounds(self, rng):
        p = rng.random(16); p /= p.sum()
        q = rng.random(16); q /= q.sum()
        tv = total_variation(p, q)
        assert 0.0 <= tv <= 1.0

    def test_total_variation_disjoint(self):
        assert total_variation(np.array([1.0, 0]), np.array([0, 1.0])) == 1.0

    def test_hellinger_bounds(self):
        assert hellinger_distance(np.array([1.0, 0]), np.array([0, 1.0])) == pytest.approx(1.0)
        q = np.ones(4) / 4
        assert hellinger_distance(q, q) == pytest.approx(0.0)

    def test_kl_zero_for_identical(self, rng):
        p = rng.random(8); p /= p.sum()
        assert kl_divergence(p, p) == pytest.approx(0.0)

    def test_kl_infinite_outside_support(self):
        assert kl_divergence(np.array([0.5, 0.5]), np.array([1.0, 0.0])) == np.inf

    def test_kl_nonnegative(self, rng):
        p = rng.random(8); p /= p.sum()
        q = rng.random(8); q /= q.sum()
        assert kl_divergence(p, q) >= -1e-12


class TestTrialStats:
    def test_mean_ci_contains_mean(self, rng):
        vals = rng.normal(10.0, 1.0, size=30)
        mean, lo, hi = mean_confidence_interval(vals)
        assert lo < mean < hi
        assert mean == pytest.approx(vals.mean())

    def test_ci_narrows_with_samples(self, rng):
        small = rng.normal(0, 1, size=5)
        big = rng.normal(0, 1, size=500)
        _, lo_s, hi_s = mean_confidence_interval(small)
        _, lo_b, hi_b = mean_confidence_interval(big)
        assert (hi_b - lo_b) < (hi_s - lo_s)

    def test_single_value_degenerate(self):
        mean, lo, hi = mean_confidence_interval([3.0])
        assert mean == lo == hi == 3.0

    def test_constant_series(self):
        mean, lo, hi = mean_confidence_interval([2.0, 2.0, 2.0])
        assert mean == lo == hi == 2.0

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            mean_confidence_interval([])

    def test_summarize(self):
        s = summarize_trials("x", [1.0, 2.0, 3.0])
        assert s.n == 3 and s.mean == pytest.approx(2.0)
        assert "x" in str(s)
        row = s.as_row()
        assert row["label"] == "x" and row["n"] == 3

    def test_coverage_property(self, rng):
        """~95% of 95% CIs over N(0,1) samples should contain 0."""
        hits = 0
        n_rep = 200
        for _ in range(n_rep):
            vals = rng.normal(0.0, 1.0, size=10)
            _, lo, hi = mean_confidence_interval(vals)
            hits += int(lo <= 0.0 <= hi)
        assert hits > 0.85 * n_rep
