"""Shared test helpers (imported as ``from tests.helpers import ...``)."""

from __future__ import annotations

import numpy as np

from repro.circuits import Circuit, random_circuit
from repro.cutting import CutPoint, CutSpec
from repro.utils.rng import as_generator


def phase_equal(a: np.ndarray, b: np.ndarray, tol: float = 1e-8) -> bool:
    """True iff matrices/vectors agree up to a global phase."""
    a = np.asarray(a)
    b = np.asarray(b)
    if a.shape != b.shape:
        return False
    k = np.unravel_index(int(np.argmax(np.abs(b))), b.shape)
    if abs(b[k]) < 1e-12:
        return bool(np.allclose(a, b, atol=tol))
    ph = a[k] / b[k]
    return bool(abs(abs(ph) - 1.0) < tol and np.allclose(a, ph * b, atol=tol))


def two_block_circuit(
    n_total: int,
    up_qubits: list[int],
    down_qubits: list[int],
    depth: int = 3,
    seed=0,
    real_upstream: bool = False,
):
    """Compose U1 on ``up_qubits`` then U2 on ``down_qubits``.

    Returns ``(circuit, cut_spec)`` cutting every wire shared by the two
    blocks at the upstream boundary.
    """
    from repro.circuits.random import random_real_circuit

    r = as_generator(seed)
    gen = random_real_circuit if real_upstream else random_circuit
    qc = Circuit(n_total, name="two_block")
    qc = qc.compose(gen(len(up_qubits), depth, seed=r), qubits=up_qubits)
    shared = [q for q in up_qubits if q in down_qubits]
    for w in shared:  # anchor shared wires upstream
        if not any(w in inst.qubits for inst in qc):
            qc.ry(float(r.uniform(0, 6.28)), w)
    n_up = len(qc)
    qc = qc.compose(random_circuit(len(down_qubits), depth, seed=r), qubits=down_qubits)
    for w in shared:  # guarantee downstream usage of every shared wire
        if not any(w in inst.qubits for inst in qc.instructions[n_up:]):
            other = next(q for q in down_qubits if q != w)
            qc.cx(w, other)
    cuts = []
    for w in shared:
        boundary = max(i for i in range(n_up) if w in qc[i].qubits)
        cuts.append(CutPoint(w, boundary))
    return qc, CutSpec(tuple(cuts))
