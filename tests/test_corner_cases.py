"""Corner-case coverage across modules: report formatting, shot edge
cases, observable conversions, drawer symbols, pipeline guards."""

import numpy as np
import pytest

from repro.backends import IdealBackend
from repro.circuits import Circuit, draw
from repro.core import cost_report, golden_ansatz, predicted_speedup
from repro.cutting import CutPoint, CutSpec, bipartition
from repro.cutting.execution import exact_fragment_data
from repro.cutting.reconstruction import reconstruct_distribution
from repro.harness.report import format_table
from repro.observables import DiagonalObservable, PauliSumObservable
from repro.sim import simulate_statevector


class TestReportFormatting:
    def test_scientific_notation_for_extremes(self):
        out = format_table([{"v": 1234567.0}, {"v": 0.0000012}])
        assert "e+06" in out or "1.235e" in out
        assert "e-06" in out

    def test_zero_renders_compactly(self):
        assert "0" in format_table([{"v": 0.0}])

    def test_missing_columns_blank(self):
        out = format_table([{"a": 1}, {"b": 2}], columns=["a", "b"])
        lines = out.splitlines()
        assert len(lines) == 4

    def test_column_subset(self):
        out = format_table([{"a": 1, "b": 2}], columns=["b"])
        assert "a" not in out.splitlines()[0]


class TestDrawer:
    def test_symmetric_gate_symbols(self):
        art = draw(Circuit(2).cz(0, 1).swap(0, 1))
        assert "CZ" in art
        assert "x" in art

    def test_parametric_gate_label(self):
        art = draw(Circuit(1).rx(0.5, 0))
        assert "RX" in art

    def test_width_truncation(self):
        qc = Circuit(1)
        for _ in range(200):
            qc.h(0)
        art = draw(qc, max_width=60)
        assert all(len(line) <= 60 for line in art.splitlines())


class TestObservableConversions:
    def test_pauli_sum_as_diagonal_observable(self):
        h = PauliSumObservable.from_list([(2.0, "ZI"), (1.0, "IZ")])
        obs = h.as_diagonal_observable()
        assert isinstance(obs, DiagonalObservable)
        np.testing.assert_allclose(obs.diagonal, h.diagonal())

    def test_parity_observable_on_uniform_state(self):
        obs = DiagonalObservable.parity(3)
        uniform = np.full(8, 1 / 8)
        assert obs.expectation(uniform) == pytest.approx(0.0)


class TestCostEdgeCases:
    def test_zero_golden_map_is_standard(self):
        assert cost_report(2, {}).reconstruction_rows == 16

    def test_speedup_without_golden_is_one(self):
        assert predicted_speedup(2, {}) == pytest.approx(1.0)

    def test_cost_report_row_dict(self):
        row = cost_report(1, {0: "Y"}).as_row()
        assert row["variants"] == 6 and row["K"] == 1


class TestDegenerateCuts:
    def test_minimal_two_qubit_circuit(self):
        """Smallest possible cut: 2 qubits, 1 cut, 1 gate per side."""
        qc = Circuit(2).ry(0.8, 0).cx(0, 1).rx(0.3, 0)
        # wire 0: ry (up), cx, rx — cut after ry
        pair = bipartition(qc, CutSpec((CutPoint(0, 0),)))
        data = exact_fragment_data(pair)
        p = reconstruct_distribution(data, postprocess="raw")
        truth = simulate_statevector(qc).probabilities()
        np.testing.assert_allclose(p, truth, atol=1e-9)

    def test_upstream_single_wire(self):
        """Upstream fragment is exactly the cut wire (one qubit)."""
        qc = Circuit(3).h(0)
        qc.cx(0, 1).cx(1, 2)
        pair = bipartition(qc, CutSpec((CutPoint(0, 0),)))
        assert pair.n_up == 1 and pair.n_up_out == 0
        data = exact_fragment_data(pair)
        p = reconstruct_distribution(data, postprocess="raw")
        truth = simulate_statevector(qc).probabilities()
        np.testing.assert_allclose(p, truth, atol=1e-9)


class TestPipelineGuards:
    def test_golden_map_validated_eagerly(self):
        from repro.exceptions import CutError

        spec = golden_ansatz(5, seed=1)
        with pytest.raises(CutError):
            from repro.core import cut_and_run

            cut_and_run(
                spec.circuit, IdealBackend(), cuts=spec.cut_spec,
                golden="known", golden_map={7: "Y"},
            )

    def test_detection_list_only_in_detect_mode(self):
        from repro.core import cut_and_run

        spec = golden_ansatz(5, seed=2)
        r = cut_and_run(
            spec.circuit, IdealBackend(), cuts=spec.cut_spec,
            shots=500, golden="off", seed=0,
        )
        assert r.detection == []

    def test_bases_attribute_reflects_mode(self):
        from repro.core import cut_and_run

        spec = golden_ansatz(5, seed=3)
        std = cut_and_run(
            spec.circuit, IdealBackend(), cuts=spec.cut_spec,
            shots=500, golden="off", seed=0,
        )
        gld = cut_and_run(
            spec.circuit, IdealBackend(), cuts=spec.cut_spec,
            shots=500, golden="known", golden_map={0: "Y"}, seed=0,
        )
        assert std.bases is None
        assert gld.bases == [("I", "X", "Z")]
