"""Unit tests for linalg state helpers and Kraus channel machinery."""

import numpy as np
import pytest

from repro.circuits import Circuit, ghz_circuit
from repro.exceptions import NoiseError, SimulationError
from repro.linalg.channels import KrausChannel, is_cptp
from repro.linalg.states import (
    bloch_vector,
    fidelity,
    is_density_matrix,
    ket,
    partial_trace,
    purity,
    state_to_density,
)
from repro.linalg.tensor import kron_all, operator_on_qubits
from repro.noise.kraus import depolarizing
from repro.sim import simulate_statevector


class TestKet:
    def test_from_bitstring(self):
        v = ket("010")
        assert v[2] == 1.0  # qubit 1 set -> index 2

    def test_from_index(self):
        v = ket(5, num_qubits=3)
        assert v[5] == 1.0

    def test_index_needs_width(self):
        with pytest.raises(ValueError):
            ket(3)


class TestPartialTrace:
    def test_product_state(self):
        v = np.kron(np.array([0, 1.0]), np.array([1.0, 0]))  # q1=|0>,q0=|1>... little-endian kron
        rho = state_to_density(v)
        r0 = partial_trace(rho, [0], 2)
        # index: v[k] has qubit0 = k&1; v = kron(b, a) means a on qubit 0
        np.testing.assert_allclose(np.trace(r0).real, 1.0)

    def test_bell_reduced_is_mixed(self):
        v = simulate_statevector(ghz_circuit(2)).vector()
        rho = state_to_density(v)
        for q in (0, 1):
            np.testing.assert_allclose(partial_trace(rho, [q], 2), np.eye(2) / 2, atol=1e-12)

    def test_keep_order(self):
        qc = Circuit(3).x(0).h(2)
        rho = state_to_density(simulate_statevector(qc).vector())
        r = partial_trace(rho, [2, 0], 3)
        # qubit 2 is bit 0 of the reduced index, qubit 0 is bit 1
        probs = np.real(np.diag(r))
        # qubit0=1 always -> bit1 set; qubit2 = |+>: bits 0/1 equal
        np.testing.assert_allclose(probs, [0, 0, 0.5, 0.5], atol=1e-12)

    def test_trace_all_keeps_everything(self, rng):
        v = rng.normal(size=8) + 1j * rng.normal(size=8)
        v /= np.linalg.norm(v)
        rho = state_to_density(v)
        np.testing.assert_allclose(partial_trace(rho, [0, 1, 2], 3), rho, atol=1e-12)

    def test_consistency_with_kron(self):
        a = np.array([0.6, 0.8])
        b = np.array([1.0, 0.0])
        v = np.kron(b, a)  # little-endian: a on qubit 0
        rho = state_to_density(v)
        np.testing.assert_allclose(
            partial_trace(rho, [0], 2), state_to_density(a), atol=1e-12
        )


class TestFidelityPurity:
    def test_fidelity_identical(self, rng):
        v = rng.normal(size=4) + 1j * rng.normal(size=4)
        v /= np.linalg.norm(v)
        assert np.isclose(fidelity(v, v), 1.0)

    def test_fidelity_orthogonal(self):
        assert np.isclose(fidelity(ket("0"), ket("1")), 0.0)

    def test_fidelity_vector_matrix(self):
        v = ket("0")
        rho = np.eye(2) / 2
        assert np.isclose(fidelity(v, rho), 0.5)

    def test_fidelity_mixed_mixed(self):
        rho = np.eye(2) / 2
        assert np.isclose(fidelity(rho, rho), 1.0)

    def test_purity(self):
        assert np.isclose(purity(np.eye(4) / 4), 0.25)
        assert np.isclose(purity(state_to_density(ket("00"))), 1.0)

    def test_is_density_matrix(self):
        assert is_density_matrix(np.eye(2) / 2)
        assert not is_density_matrix(np.eye(2))  # trace 2
        assert not is_density_matrix(np.array([[1.5, 0], [0, -0.5]]))  # negative

    def test_bloch_vector(self):
        plus = state_to_density(np.array([1, 1]) / np.sqrt(2))
        np.testing.assert_allclose(bloch_vector(plus), [1, 0, 0], atol=1e-12)
        zero = state_to_density(ket("0"))
        np.testing.assert_allclose(bloch_vector(zero), [0, 0, 1], atol=1e-12)


class TestKrausChannel:
    def test_cptp_enforced(self):
        with pytest.raises(NoiseError):
            KrausChannel((np.eye(2) * 0.5,))

    def test_valid_channel(self):
        ch = depolarizing(0.1)
        assert is_cptp(ch.operators)
        assert ch.num_qubits == 1

    def test_unital_check(self):
        assert depolarizing(0.3).is_unital()
        from repro.noise.kraus import amplitude_damping

        assert not amplitude_damping(0.3).is_unital()

    def test_compose(self):
        a = depolarizing(0.1)
        b = depolarizing(0.2)
        c = a.compose(b)
        assert is_cptp(c.operators)
        assert len(c.operators) == 16

    def test_tensor(self):
        t = depolarizing(0.1).tensor(depolarizing(0.2))
        assert t.num_qubits == 2
        assert is_cptp(t.operators)

    def test_compose_arity_mismatch(self):
        from repro.noise.kraus import two_qubit_depolarizing

        with pytest.raises(NoiseError):
            depolarizing(0.1).compose(two_qubit_depolarizing(0.1))

    def test_empty_channel_rejected(self):
        with pytest.raises(NoiseError):
            KrausChannel(())


class TestOperatorEmbedding:
    def test_single_qubit_embed(self):
        z = np.diag([1, -1]).astype(complex)
        full = operator_on_qubits(z, (1,), 3)
        expected = kron_all([np.eye(2), z, np.eye(2)])  # little-endian: q2 ⊗ q1 ⊗ q0
        np.testing.assert_allclose(full, expected)

    def test_two_qubit_embed_matches_simulator(self):
        from repro.circuits.gates import gate_matrix
        from repro.sim import circuit_unitary

        cx = gate_matrix("cx")
        full = operator_on_qubits(cx, (2, 0), 3)
        qc = Circuit(3).cx(2, 0)
        np.testing.assert_allclose(full, circuit_unitary(qc), atol=1e-12)

    def test_duplicate_qubits_rejected(self):
        with pytest.raises(SimulationError):
            operator_on_qubits(np.eye(4), (0, 0), 3)

    def test_out_of_range_rejected(self):
        with pytest.raises(SimulationError):
            operator_on_qubits(np.eye(2), (3,), 3)
