"""Content-addressed fragment identity and the request coalescer.

Covers :mod:`repro.cutting.fingerprint` (canonical fragment/backend
fingerprints, the shared :class:`FragmentStore`) and
:mod:`repro.parallel.service` (:class:`CutRunService`): the tentpole
acceptance law is that two concurrent identical requests execute each
shared fragment body exactly once — pinned by call count, not by timing.
"""

import threading

import numpy as np
import pytest

from repro.backends import FakeHardwareBackend, IdealBackend, fake_5q_device
from repro.circuits import Circuit
from repro.core import cut_and_run_tree
from repro.cutting import (
    CutPoint,
    CutSpec,
    FragmentStore,
    RetryPolicy,
    backend_fingerprint,
    circuit_fingerprint,
    fragment_fingerprint,
    noise_fingerprint,
    partition_tree,
    run_tree_fragments,
)
from repro.exceptions import CutError
from repro.parallel import CutRunService


def _circuit(theta=0.7):
    qc = Circuit(4, name="ghz4")
    qc.h(0).cx(0, 1).ry(theta, 1).cx(1, 2).cx(2, 3)
    return qc


SPEC = CutSpec((CutPoint(1, 2),))


def _tree(theta=0.7):
    return partition_tree(_circuit(theta), [SPEC])


class CountingBackend(FakeHardwareBackend):
    """fake_5q_device that counts batched variant executions."""

    def __init__(self):
        dev = fake_5q_device()
        super().__init__(dev.coupling, dev.noise_model, timing=dev.timing)
        self.tree_variant_calls = 0
        self._count_lock = threading.Lock()

    def run_tree_variants(self, *args, **kwargs):
        with self._count_lock:
            self.tree_variant_calls += 1
        return super().run_tree_variants(*args, **kwargs)


class TestFingerprints:
    def test_circuit_fingerprint_content_not_identity(self):
        assert circuit_fingerprint(_circuit()) == circuit_fingerprint(_circuit())
        assert circuit_fingerprint(_circuit()) != circuit_fingerprint(_circuit(0.71))

    def test_parameter_last_ulp_distinguished(self):
        theta = 0.7
        assert circuit_fingerprint(_circuit(theta)) != circuit_fingerprint(
            _circuit(np.nextafter(theta, 1.0))
        )

    def test_noise_fingerprint_tracks_rates(self):
        a = fake_5q_device(p2=1e-2).noise_model
        b = fake_5q_device(p2=1e-2).noise_model
        c = fake_5q_device(p2=2e-2).noise_model
        assert noise_fingerprint(a) == noise_fingerprint(b)
        assert noise_fingerprint(a) != noise_fingerprint(c)

    def test_backend_fingerprint_dispatch(self):
        assert backend_fingerprint(fake_5q_device()) == backend_fingerprint(
            fake_5q_device()
        )
        assert backend_fingerprint(fake_5q_device()) != backend_fingerprint(
            IdealBackend()
        )
        assert backend_fingerprint(fake_5q_device()) != backend_fingerprint(
            fake_5q_device(p01=0.5)
        )

    def test_fault_wrapper_is_transparent(self):
        from repro.backends import FaultInjectionBackend, FaultPlan

        inner = fake_5q_device()
        wrapped = FaultInjectionBackend(inner, FaultPlan(seed=3))
        assert backend_fingerprint(wrapped) == backend_fingerprint(inner)

    def test_fragment_fingerprint_spans_trees(self):
        t1, t2 = _tree(), _tree()
        be = fake_5q_device()
        for f1, f2 in zip(t1.fragments, t2.fragments):
            assert f1 is not f2
            assert fragment_fingerprint(f1, be) == fragment_fingerprint(f2, be)
        # different fragments of one tree never collide
        prints = {fragment_fingerprint(f, be) for f in t1.fragments}
        assert len(prints) == t1.num_fragments

    def test_fragment_fingerprint_tracks_dtype(self):
        frag = _tree().fragments[0]
        be = IdealBackend()
        assert fragment_fingerprint(frag, be, np.float64) != fragment_fingerprint(
            frag, be, np.float32
        )


class TestFragmentStore:
    def test_pool_rebinds_to_each_consumer(self):
        t1, t2 = _tree(), _tree()
        be = fake_5q_device()
        store = FragmentStore()
        p1, p2 = store.pool_for(t1, be), store.pool_for(t2, be)
        for i in range(t1.num_fragments):
            assert p1[i].fragment is t1.fragments[i]
            assert p2[i].fragment is t2.fragments[i]
        assert store.stats() == {
            "bodies": t1.num_fragments,
            "hits": t1.num_fragments,
            "misses": t1.num_fragments,
        }

    def test_transpile_once_across_requests(self):
        """The cross-request law: N distinct bodies cost N transpiles no
        matter how many store-served requests execute them — and the
        records stay bit-identical to independent execution."""
        t1, t2 = _tree(), _tree()
        store = FragmentStore()
        be1, be2 = fake_5q_device(), fake_5q_device()
        d1 = run_tree_fragments(
            t1, be1, shots=200, seed=5, pool=store.pool_for(t1, be1)
        )
        pool2 = store.pool_for(t2, be2)
        d2 = run_tree_fragments(t2, be2, shots=200, seed=5, pool=pool2)
        assert [pool2[i].stats["transpiles"] for i in range(t2.num_fragments)] == [
            1
        ] * t2.num_fragments
        for r1, r2 in zip(d1.records, d2.records):
            assert set(r1) == set(r2)
            for k in r1:
                np.testing.assert_array_equal(r1[k], r2[k])

    def test_rebind_before_warm_still_shares(self):
        """A clone handed out before anyone warmed the canonical cache
        must still see the warm-up (the shared-box law)."""
        t1, t2 = _tree(), _tree()
        be = IdealBackend()
        store = FragmentStore()
        p1 = store.pool_for(t1, be)
        p2 = store.pool_for(t2, be)  # cloned while everything is cold
        run_tree_fragments(t1, be, shots=100, seed=1, pool=p1)
        assert p2[0]._columns is not None
        assert p2[0]._columns is p1[0]._columns

    def test_uncacheable_backend_yields_none(self):
        from repro.backends import trajectory_5q_device

        store = FragmentStore()
        assert store.pool_for(_tree(), trajectory_5q_device(6)) is None
        assert store.stats()["bodies"] == 0


class TestCutRunService:
    def test_solo_request_bit_identical_to_plain_pipeline(self):
        plain = cut_and_run_tree(
            _circuit(), fake_5q_device(), [SPEC], shots=300, seed=7
        )
        with CutRunService(fake_5q_device()) as svc:
            solo = svc.run(_circuit(), specs=[SPEC], shots=300, seed=7)
        np.testing.assert_array_equal(plain.probabilities, solo.probabilities)
        assert plain.device_seconds == solo.device_seconds
        assert plain.costs == solo.costs

    def test_identical_concurrent_requests_execute_bodies_once(self):
        """Tentpole acceptance: two concurrent identical requests execute
        each shared fragment body exactly once — pinned by the backend's
        batched-call count, one per fragment."""
        backend = CountingBackend()
        plain = cut_and_run_tree(
            _circuit(), fake_5q_device(), [SPEC], shots=300, seed=7
        )
        with CutRunService(backend, batch_window=0.05) as svc:
            kwargs = dict(specs=[SPEC], shots=300, seed=7)
            a, b = svc.run_many([(_circuit(), kwargs), (_circuit(), kwargs)])
            stats = svc.stats()
        num_fragments = a.tree.num_fragments
        assert backend.tree_variant_calls == num_fragments  # once per body
        assert stats["fragment_jobs"] == num_fragments
        assert stats["coalesced"] == num_fragments  # request B joined every job
        np.testing.assert_array_equal(a.probabilities, b.probabilities)
        np.testing.assert_array_equal(a.probabilities, plain.probabilities)
        assert a.device_seconds == b.device_seconds

    def test_different_seeds_do_not_coalesce(self):
        backend = CountingBackend()
        with CutRunService(backend, batch_window=0.05) as svc:
            a, b = svc.run_many(
                [
                    (_circuit(), dict(specs=[SPEC], shots=300, seed=7)),
                    (_circuit(), dict(specs=[SPEC], shots=300, seed=8)),
                ]
            )
            stats = svc.stats()
        assert stats["coalesced"] == 0
        assert backend.tree_variant_calls == 2 * a.tree.num_fragments
        assert not np.array_equal(a.probabilities, b.probabilities)

    def test_coalesced_retry_requests_share_ledgers(self):
        policy = RetryPolicy(max_attempts=3)
        plain = cut_and_run_tree(
            _circuit(), fake_5q_device(), [SPEC], shots=200, seed=4, retry=policy
        )
        with CutRunService(fake_5q_device(), batch_window=0.05) as svc:
            kwargs = dict(specs=[SPEC], shots=200, seed=4, retry=policy)
            a, b = svc.run_many([(_circuit(), kwargs), (_circuit(), kwargs)])
        np.testing.assert_array_equal(plain.probabilities, a.probabilities)
        np.testing.assert_array_equal(a.probabilities, b.probabilities)
        assert a.costs["retry"] == plain.costs["retry"]

    def test_request_errors_propagate_to_every_joiner(self):
        with CutRunService(fake_5q_device()) as svc:
            with pytest.raises(CutError):
                svc.run(_circuit(), specs=[SPEC], shots=100, on_exhausted="degrade")

    def test_runner_rejects_foreign_backend_and_checkpoint(self):
        with CutRunService(fake_5q_device()) as svc:
            with pytest.raises(CutError, match="service backend"):
                svc.run_fragments(_tree(), fake_5q_device(), shots=10)
            with pytest.raises(CutError, match="checkpoint"):
                svc.run_fragments(
                    _tree(), svc.backend, shots=10, checkpoint=object()
                )


class TestPipelineExecutorKnob:
    def test_serial_default_unchanged(self):
        a = cut_and_run_tree(_circuit(), fake_5q_device(), [SPEC], shots=300, seed=7)
        b = cut_and_run_tree(
            _circuit(),
            fake_5q_device(),
            [SPEC],
            shots=300,
            seed=7,
            executor="serial",
        )
        np.testing.assert_array_equal(a.probabilities, b.probabilities)

    def test_thread_equals_process(self):
        runs = {
            mode: cut_and_run_tree(
                _circuit(),
                fake_5q_device,
                [SPEC],
                shots=300,
                seed=7,
                executor=mode,
                max_workers=2,
            )
            for mode in ("thread", "process")
        }
        np.testing.assert_array_equal(
            runs["thread"].probabilities, runs["process"].probabilities
        )
        assert np.isclose(
            runs["thread"].device_seconds, runs["process"].device_seconds
        )

    def test_non_factory_backend_rejected(self):
        with pytest.raises(CutError, match="factory"):
            cut_and_run_tree(
                _circuit(), fake_5q_device(), [SPEC], shots=50, executor="thread"
            )

    def test_checkpoint_requires_serial(self, tmp_path):
        from repro.cutting.io import TreeCheckpoint

        tree = _tree()
        with pytest.raises(CutError, match="serial"):
            cut_and_run_tree(
                _circuit(),
                fake_5q_device,
                [SPEC],
                shots=50,
                executor="thread",
                checkpoint=TreeCheckpoint(tmp_path / "ck", tree, 50),
            )

    def test_unknown_executor_rejected(self):
        with pytest.raises(CutError, match="executor"):
            cut_and_run_tree(
                _circuit(), fake_5q_device(), [SPEC], shots=50, executor="mpi"
            )

    def test_fragment_store_knob_shares_across_calls(self):
        store = FragmentStore()
        be = fake_5q_device()
        a = cut_and_run_tree(
            _circuit(), be, [SPEC], shots=300, seed=7, fragment_store=store
        )
        hits_after_first = store.stats()["hits"]
        b = cut_and_run_tree(
            _circuit(), be, [SPEC], shots=300, seed=7, fragment_store=store
        )
        np.testing.assert_array_equal(a.probabilities, b.probabilities)
        assert store.stats()["hits"] > hits_after_first
        assert store.stats()["bodies"] == a.tree.num_fragments
