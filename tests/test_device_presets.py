"""Tests for the device noise presets (depolarizing / thermal / none)."""

import numpy as np
import pytest

from repro.backends import fake_5q_device, fake_7q_device
from repro.backends.devices import thermal_noise_model
from repro.circuits import ghz_circuit
from repro.exceptions import BackendError
from repro.metrics import total_variation
from repro.sim import simulate_statevector


class TestPresets:
    def test_none_preset_is_ideal(self):
        dev = fake_5q_device(noise="none")
        res = dev.run_one(ghz_circuit(4), shots=100_000, seed=1)
        truth = simulate_statevector(ghz_circuit(4)).probabilities()
        assert total_variation(res.probabilities(), truth) < 0.01

    def test_thermal_preset_noisier_than_none(self):
        qc = ghz_circuit(5)
        truth = simulate_statevector(qc).probabilities()
        d_none = total_variation(
            fake_5q_device(noise="none").run_one(qc, shots=50_000, seed=2).probabilities(),
            truth,
        )
        d_thermal = total_variation(
            fake_5q_device(noise="thermal").run_one(qc, shots=50_000, seed=2).probabilities(),
            truth,
        )
        assert d_thermal > d_none

    def test_unknown_preset(self):
        with pytest.raises(BackendError):
            fake_5q_device(noise="cosmic_rays")

    def test_preset_in_name(self):
        assert "thermal" in fake_7q_device(noise="thermal").name

    def test_thermal_model_structure(self):
        nm = thermal_noise_model(3)
        # 1q rule + 2 cx rules, readout on every qubit
        assert len(nm.rules) == 3
        assert set(nm.readout) == {0, 1, 2}

    def test_thermal_model_is_cptp(self):
        from repro.linalg.channels import is_cptp

        nm = thermal_noise_model(2)
        for rule in nm.rules:
            assert is_cptp(rule.channel.operators)

    def test_thermal_amplitude_bias(self):
        """T1 decay biases |1…1⟩ toward |0…0⟩ — asymmetric, unlike
        depolarizing noise.  Prepare |11111⟩ and check the leak direction."""
        from repro.circuits import Circuit

        qc = Circuit(5)
        for q in range(5):
            qc.x(q)
        # amplify decay: long effective schedule via slow gates
        from repro.backends import DeviceTimingModel

        slow = DeviceTimingModel(gate_time_1q=3e-6, gate_time_2q=3e-5)
        dev = fake_5q_device(noise="thermal", timing=slow, p01=0.0, p10=0.0)
        res = dev.run_one(qc, shots=50_000, seed=3)
        p = res.probabilities()
        # some population decays toward states with fewer 1s
        assert p[31] < 1.0
        idx = np.arange(32)
        ones = np.zeros(32)
        for q in range(5):
            ones += (idx >> q) & 1
        mean_ones = float(np.dot(p, ones))
        assert mean_ones < 5.0
