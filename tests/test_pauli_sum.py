"""Tests for Pauli-sum observables and the MaxCut Hamiltonian."""

import networkx as nx
import numpy as np
import pytest

from repro.circuits import Circuit, qaoa_maxcut_circuit
from repro.exceptions import ReproError
from repro.linalg.paulis import PauliString
from repro.observables import PauliSumObservable, maxcut_hamiltonian
from repro.sim import simulate_statevector


class TestConstruction:
    def test_from_list(self):
        h = PauliSumObservable.from_list([(1.0, "ZZ"), (-0.5, "XI")])
        assert h.num_qubits == 2 and h.num_terms == 2

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            PauliSumObservable(())

    def test_width_mismatch_rejected(self):
        with pytest.raises(ReproError):
            PauliSumObservable.from_list([(1.0, "Z"), (1.0, "ZZ")])

    def test_str(self):
        h = PauliSumObservable.from_list([(1.0, "ZZ")])
        assert "ZZ" in str(h)


class TestDiagonal:
    def test_is_diagonal(self):
        assert PauliSumObservable.from_list([(1.0, "ZIZ")]).is_diagonal()
        assert not PauliSumObservable.from_list([(1.0, "XZ")]).is_diagonal()

    def test_diagonal_matches_dense(self):
        h = PauliSumObservable.from_list([(0.7, "ZZ"), (-0.2, "IZ"), (1.5, "II")])
        dense = sum(c * p.to_matrix() for c, p in h.terms)
        np.testing.assert_allclose(h.diagonal(), np.real(np.diag(dense)), atol=1e-12)

    def test_diagonal_rejects_offdiagonal(self):
        with pytest.raises(ReproError):
            PauliSumObservable.from_list([(1.0, "XZ")]).diagonal()

    def test_expectation_from_probs(self):
        h = PauliSumObservable.from_list([(1.0, "Z")])
        assert h.expectation_from_probs(np.array([1.0, 0.0])) == pytest.approx(1.0)
        assert h.expectation_from_probs(np.array([0.0, 1.0])) == pytest.approx(-1.0)


class TestExactExpectation:
    def test_matches_dense_computation(self):
        h = PauliSumObservable.from_list(
            [(0.8, "XY"), (-0.3, "ZZ"), (0.1, "IX")]
        )
        qc = Circuit(2).h(0).cx(0, 1).ry(0.4, 1).t(0)
        v = simulate_statevector(qc).vector()
        dense = sum(c * p.to_matrix() for c, p in h.terms)
        expected = float(np.real(np.vdot(v, dense @ v)))
        assert h.expectation_exact(qc) == pytest.approx(expected, abs=1e-10)

    def test_identity_term(self):
        h = PauliSumObservable.from_list([(2.5, "II")])
        assert h.expectation_exact(Circuit(2).h(0)) == pytest.approx(2.5)


class TestMeasurementGroups:
    def test_compatible_terms_grouped(self):
        h = PauliSumObservable.from_list(
            [(1.0, "ZI"), (1.0, "IZ"), (1.0, "ZZ")]
        )
        groups = h.measurement_groups()
        assert len(groups) == 1  # all qubit-wise compatible (Z basis)

    def test_incompatible_terms_split(self):
        h = PauliSumObservable.from_list([(1.0, "XI"), (1.0, "ZI")])
        assert len(h.measurement_groups()) == 2

    def test_groups_cover_all_terms(self):
        h = PauliSumObservable.from_list(
            [(1.0, "XX"), (1.0, "YY"), (1.0, "ZZ"), (1.0, "XI")]
        )
        groups = h.measurement_groups()
        flat = sorted(i for g in groups for i in g)
        assert flat == list(range(4))


class TestMaxCut:
    def test_hamiltonian_counts_cut_edges(self):
        g = nx.path_graph(3)  # edges (0,1), (1,2)
        h = maxcut_hamiltonian(g)
        # bitstring 010 cuts both edges
        diag = h.diagonal()
        from repro.utils.bits import bitstring_to_index

        assert diag[bitstring_to_index("010")] == pytest.approx(2.0)
        assert diag[bitstring_to_index("000")] == pytest.approx(0.0)
        assert diag[bitstring_to_index("100")] == pytest.approx(1.0)

    def test_max_value_is_maxcut(self):
        g = nx.cycle_graph(4)
        h = maxcut_hamiltonian(g)
        assert h.diagonal().max() == pytest.approx(4.0)  # even cycle: cut all

    def test_qaoa_energy_pipeline(self):
        """⟨C⟩ of a QAOA state via distribution == exact expectation."""
        g = nx.cycle_graph(4)
        h = maxcut_hamiltonian(g)
        qc = qaoa_maxcut_circuit(g, gammas=[0.7], betas=[0.4])
        probs = simulate_statevector(qc).probabilities()
        assert h.expectation_from_probs(probs) == pytest.approx(
            h.expectation_exact(qc), abs=1e-9
        )

    def test_bad_nodes_rejected(self):
        g = nx.Graph()
        g.add_edge(2, 3)
        with pytest.raises(ReproError):
            maxcut_hamiltonian(g)
