"""Tests for the reconstruction kernel — the package's correctness core.

The key integration invariant: for *exact* fragment data, the reconstructed
distribution equals the uncut circuit's distribution to machine precision,
for any number of cuts and any circuit family.
"""

import numpy as np
import pytest

from repro.cutting import bipartition
from repro.cutting.execution import exact_fragment_data, run_fragments
from repro.cutting.reconstruction import (
    FULL_BASES,
    build_downstream_tensor,
    build_upstream_tensor,
    project_to_simplex,
    reconstruct_distribution,
    reconstruct_expectation,
)
from repro.backends import IdealBackend
from repro.exceptions import ReconstructionError
from repro.metrics import total_variation
from repro.observables import DiagonalObservable, split_diagonal_observable
from repro.sim import simulate_statevector

from tests.helpers import two_block_circuit


class TestExactReconstruction:
    @pytest.mark.parametrize("seed", range(6))
    def test_single_cut_matches_truth(self, seed):
        qc, spec = two_block_circuit(4, [0, 1], [1, 2, 3], seed=seed)
        pair = bipartition(qc, spec)
        data = exact_fragment_data(pair)
        p = reconstruct_distribution(data, postprocess="raw")
        truth = simulate_statevector(qc).probabilities()
        np.testing.assert_allclose(p, truth, atol=1e-9)

    @pytest.mark.parametrize("seed", range(4))
    def test_two_cuts_match_truth(self, seed):
        qc, spec = two_block_circuit(5, [0, 1, 2], [1, 2, 3, 4], seed=seed + 10)
        pair = bipartition(qc, spec)
        data = exact_fragment_data(pair)
        p = reconstruct_distribution(data, postprocess="raw")
        truth = simulate_statevector(qc).probabilities()
        np.testing.assert_allclose(p, truth, atol=1e-9)

    def test_three_cuts_match_truth(self):
        qc, spec = two_block_circuit(6, [0, 1, 2, 3], [1, 2, 3, 4, 5], seed=3)
        pair = bipartition(qc, spec)
        data = exact_fragment_data(pair)
        p = reconstruct_distribution(data, postprocess="raw")
        truth = simulate_statevector(qc).probabilities()
        np.testing.assert_allclose(p, truth, atol=1e-9)

    @pytest.mark.parametrize("seed", range(3))
    def test_unbalanced_fragments(self, seed):
        qc, spec = two_block_circuit(5, [0, 1, 2, 3], [3, 4], seed=seed + 30)
        pair = bipartition(qc, spec)
        data = exact_fragment_data(pair)
        p = reconstruct_distribution(data, postprocess="raw")
        truth = simulate_statevector(qc).probabilities()
        np.testing.assert_allclose(p, truth, atol=1e-9)

    def test_real_upstream_family(self):
        qc, spec = two_block_circuit(
            4, [0, 1], [1, 2, 3], seed=5, real_upstream=True
        )
        pair = bipartition(qc, spec)
        data = exact_fragment_data(pair)
        p = reconstruct_distribution(data, postprocess="raw")
        truth = simulate_statevector(qc).probabilities()
        np.testing.assert_allclose(p, truth, atol=1e-9)


class TestExpectationReconstruction:
    @pytest.mark.parametrize("seed", range(3))
    def test_parity(self, seed):
        qc, spec = two_block_circuit(4, [0, 1], [1, 2, 3], seed=seed + 50)
        pair = bipartition(qc, spec)
        data = exact_fragment_data(pair)
        obs = DiagonalObservable.parity(4)
        d1, d2 = split_diagonal_observable(
            obs, pair.up_out_original, pair.down_out_original
        )
        e = reconstruct_expectation(data, d1, d2)
        truth = obs.expectation(simulate_statevector(qc).probabilities())
        assert np.isclose(e, truth, atol=1e-9)

    def test_projector_expectations_sum_to_one(self):
        qc, spec = two_block_circuit(3, [0, 1], [1, 2], seed=8)
        pair = bipartition(qc, spec)
        data = exact_fragment_data(pair)
        from repro.observables import all_bitstring_projectors

        total = 0.0
        for proj in all_bitstring_projectors(3):
            d1, d2 = split_diagonal_observable(
                proj, pair.up_out_original, pair.down_out_original
            )
            total += reconstruct_expectation(data, d1, d2)
        assert np.isclose(total, 1.0, atol=1e-9)

    def test_shape_validation(self, simple_cut_pair):
        _, _, pair = simple_cut_pair
        data = exact_fragment_data(pair)
        with pytest.raises(ReconstructionError):
            reconstruct_expectation(data, np.zeros(3), np.zeros(4))


class TestTensors:
    def test_upstream_tensor_identity_row_is_marginal(self, simple_cut_pair):
        _, _, pair = simple_cut_pair
        data = exact_fragment_data(pair)
        A, rows = build_upstream_tensor(data)
        i_row = A[rows.index(("I",))]
        # I row = marginal over the cut outcome = reduced distribution
        z_joint = data.upstream[("Z",)]
        np.testing.assert_allclose(i_row, z_joint.sum(axis=1), atol=1e-12)

    def test_upstream_rows_bounded_by_one(self, simple_cut_pair):
        _, _, pair = simple_cut_pair
        data = exact_fragment_data(pair)
        A, _ = build_upstream_tensor(data)
        assert np.all(np.abs(A) <= 1.0 + 1e-9)

    def test_downstream_identity_row_sums_inits(self, simple_cut_pair):
        _, _, pair = simple_cut_pair
        data = exact_fragment_data(pair)
        B, rows = build_downstream_tensor(data)
        i_row = B[rows.index(("I",))]
        expected = data.downstream[("Z+",)] + data.downstream[("Z-",)]
        np.testing.assert_allclose(i_row, expected, atol=1e-12)

    def test_missing_setting_raises(self, simple_cut_pair):
        _, _, pair = simple_cut_pair
        data = exact_fragment_data(pair, settings=[("X",), ("Z",)])
        with pytest.raises(ReconstructionError):
            build_upstream_tensor(data)  # Y row unavailable

    def test_missing_init_raises(self, simple_cut_pair):
        _, _, pair = simple_cut_pair
        data = exact_fragment_data(pair, inits=[("Z+",), ("Z-",)])
        with pytest.raises(ReconstructionError):
            build_downstream_tensor(data)

    def test_invalid_basis_pool(self, simple_cut_pair):
        _, _, pair = simple_cut_pair
        data = exact_fragment_data(pair)
        with pytest.raises(ReconstructionError):
            build_upstream_tensor(data, bases=[("Q",)])
        with pytest.raises(ReconstructionError):
            build_upstream_tensor(data, bases=[("I",), ("X",)])  # wrong K


class TestPostprocessing:
    def test_clip_normalises(self, simple_cut_pair):
        qc, spec, pair = simple_cut_pair
        data = run_fragments(pair, IdealBackend(), shots=200, seed=0)
        p = reconstruct_distribution(data, postprocess="clip")
        assert np.all(p >= 0) and np.isclose(p.sum(), 1.0)

    def test_simplex_is_distribution(self, simple_cut_pair):
        qc, spec, pair = simple_cut_pair
        data = run_fragments(pair, IdealBackend(), shots=200, seed=1)
        p = reconstruct_distribution(data, postprocess="simplex")
        assert np.all(p >= -1e-12) and np.isclose(p.sum(), 1.0)

    def test_raw_can_be_negative_but_sums_to_one(self, simple_cut_pair):
        qc, spec, pair = simple_cut_pair
        data = run_fragments(pair, IdealBackend(), shots=100, seed=2)
        p = reconstruct_distribution(data, postprocess="raw")
        assert np.isclose(p.sum(), 1.0, atol=1e-9)

    def test_unknown_mode(self, simple_cut_pair):
        _, _, pair = simple_cut_pair
        data = exact_fragment_data(pair)
        with pytest.raises(ReconstructionError):
            reconstruct_distribution(data, postprocess="magic")


class TestSimplexProjection:
    def test_already_on_simplex(self):
        v = np.array([0.2, 0.3, 0.5])
        np.testing.assert_allclose(project_to_simplex(v), v, atol=1e-12)

    def test_clips_negative(self):
        out = project_to_simplex(np.array([1.2, -0.2]))
        assert np.isclose(out.sum(), 1.0) and np.all(out >= 0)

    def test_is_closest_point(self, rng):
        """Projection must beat any random feasible point in L2 distance."""
        v = rng.normal(size=6)
        p = project_to_simplex(v)
        assert np.isclose(p.sum(), 1.0) and np.all(p >= -1e-12)
        for _ in range(50):
            q = rng.random(6)
            q /= q.sum()
            assert np.linalg.norm(v - p) <= np.linalg.norm(v - q) + 1e-9

    def test_extreme_vector(self):
        out = project_to_simplex(np.array([-5.0, -7.0, -6.0]))
        assert np.isclose(out.sum(), 1.0)
        assert out[0] == max(out)


class TestFiniteShotConvergence:
    def test_tv_shrinks_with_shots(self, simple_cut_pair):
        qc, spec, pair = simple_cut_pair
        truth = simulate_statevector(qc).probabilities()
        tvs = []
        for shots in (100, 10_000):
            data = run_fragments(pair, IdealBackend(), shots=shots, seed=42)
            p = reconstruct_distribution(data, postprocess="clip")
            tvs.append(total_variation(p, truth))
        assert tvs[1] < tvs[0]

    def test_high_shot_accuracy(self, simple_cut_pair):
        qc, spec, pair = simple_cut_pair
        truth = simulate_statevector(qc).probabilities()
        data = run_fragments(pair, IdealBackend(), shots=100_000, seed=3)
        p = reconstruct_distribution(data, postprocess="clip")
        assert total_variation(p, truth) < 0.01
