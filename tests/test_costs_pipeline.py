"""Tests for the cost model (paper §II-B/§III-B) and the one-call pipeline."""

import numpy as np
import pytest

from repro.backends import IdealBackend, fake_5q_device
from repro.core import cost_report, cut_and_run, golden_ansatz, predicted_speedup
from repro.core.neglect import (
    reduced_bases,
    reduced_init_tuples,
    reduced_setting_tuples,
)
from repro.cutting import bipartition
from repro.exceptions import CutError
from repro.metrics import total_variation
from repro.sim import simulate_statevector


class TestCostModel:
    def test_standard_counts(self):
        for K in (1, 2, 3):
            r = cost_report(K, None, 1000)
            assert r.reconstruction_rows == 4**K
            assert r.upstream_settings == 3**K
            assert r.downstream_inits == 6**K

    def test_paper_headline_numbers(self):
        """One Y-golden cut: 9 -> 6 variants; 4.5e5 -> 3.0e5 over 50 trials."""
        std = cost_report(1, None, 1000)
        gld = cost_report(1, {0: "Y"}, 1000)
        assert std.num_variants == 9 and gld.num_variants == 6
        assert 50 * std.total_executions == 450_000
        assert 50 * gld.total_executions == 300_000
        assert std.reconstruction_rows == 4 and gld.reconstruction_rows == 3

    def test_formula_4kr_3kg(self):
        for K in (2, 3):
            for kg in range(K + 1):
                golden = {k: "Y" for k in range(kg)}
                r = cost_report(K, golden or None)
                assert r.reconstruction_rows == 4 ** (K - kg) * 3**kg
                assert r.downstream_inits == 6 ** (K - kg) * 4**kg
                assert r.upstream_settings == 3 ** (K - kg) * 2**kg

    def test_z_golden_asymmetry(self):
        """Z-golden saves terms and upstream settings but no downstream runs."""
        r = cost_report(1, {0: "Z"})
        assert r.reconstruction_rows == 3
        assert r.upstream_settings == 2
        assert r.downstream_inits == 6

    def test_predicted_speedup_matches_paper(self):
        assert predicted_speedup(1, {0: "Y"}) == pytest.approx(1.5)
        from repro.backends import DeviceTimingModel

        s = predicted_speedup(1, {0: "Y"}, timing=DeviceTimingModel())
        assert s == pytest.approx(1.5)

    def test_reduced_sets_validation(self):
        with pytest.raises(CutError):
            reduced_bases(1, {2: "Y"})
        with pytest.raises(CutError):
            reduced_setting_tuples(1, {0: "I"})
        with pytest.raises(CutError):
            reduced_init_tuples(1, {0: "Q"})


class TestPipeline:
    @pytest.fixture(scope="class")
    def spec(self):
        return golden_ansatz(5, depth=3, golden_basis="Y", seed=55)

    @pytest.fixture(scope="class")
    def truth(self, spec):
        return simulate_statevector(spec.circuit).probabilities()

    def test_off_mode(self, spec, truth):
        r = cut_and_run(
            spec.circuit, IdealBackend(), cuts=spec.cut_spec,
            shots=30_000, golden="off", seed=1,
        )
        assert r.golden_used == {}
        assert r.costs.num_variants == 9
        assert total_variation(r.probabilities, truth) < 0.03

    def test_known_mode(self, spec, truth):
        r = cut_and_run(
            spec.circuit, IdealBackend(), cuts=spec.cut_spec,
            shots=30_000, golden="known", golden_map={0: "Y"}, seed=1,
        )
        assert r.costs.num_variants == 6
        assert total_variation(r.probabilities, truth) < 0.03

    def test_analytic_mode(self, spec, truth):
        r = cut_and_run(
            spec.circuit, IdealBackend(), cuts=spec.cut_spec,
            shots=30_000, golden="analytic", seed=1,
        )
        assert r.golden_used == {0: "Y"}
        assert total_variation(r.probabilities, truth) < 0.03

    def test_detect_mode(self, spec, truth):
        r = cut_and_run(
            spec.circuit, IdealBackend(), cuts=spec.cut_spec,
            shots=30_000, golden="detect", seed=1, pilot_shots=5_000,
        )
        assert r.golden_used == {0: "Y"}
        assert len(r.detection) == 3
        assert total_variation(r.probabilities, truth) < 0.03

    def test_known_requires_map(self, spec):
        with pytest.raises(CutError):
            cut_and_run(
                spec.circuit, IdealBackend(), cuts=spec.cut_spec, golden="known"
            )

    def test_invalid_mode(self, spec):
        with pytest.raises(CutError):
            cut_and_run(
                spec.circuit, IdealBackend(), cuts=spec.cut_spec, golden="maybe"
            )

    def test_auto_cut_search(self, truth, spec):
        r = cut_and_run(
            spec.circuit, IdealBackend(), cuts=None, shots=30_000,
            golden="off", seed=2, max_fragment_qubits=4,
        )
        assert max(r.pair.n_up, r.pair.n_down) <= 4
        assert total_variation(r.probabilities, truth) < 0.05

    def test_on_fake_hardware_charges_time(self, spec):
        dev = fake_5q_device()
        r = cut_and_run(
            spec.circuit, dev, cuts=spec.cut_spec, shots=1000,
            golden="known", golden_map={0: "Y"}, seed=0,
        )
        assert r.device_seconds > 0
        assert np.isclose(r.device_seconds, dev.clock.now)

    def test_golden_time_saving_on_hardware(self, spec):
        dev_std = fake_5q_device()
        r_std = cut_and_run(
            spec.circuit, dev_std, cuts=spec.cut_spec, shots=1000,
            golden="off", seed=0,
        )
        dev_gld = fake_5q_device()
        r_gld = cut_and_run(
            spec.circuit, dev_gld, cuts=spec.cut_spec, shots=1000,
            golden="known", golden_map={0: "Y"}, seed=0,
        )
        ratio = r_std.device_seconds / r_gld.device_seconds
        assert 1.3 < ratio < 1.7  # paper: 18.84 / 12.61 ≈ 1.49

    def test_expectation_helper(self, spec, truth):
        r = cut_and_run(
            spec.circuit, IdealBackend(), cuts=spec.cut_spec,
            shots=50_000, golden="analytic", seed=4,
        )
        diag = np.ones(32)
        assert r.expectation(diag) == pytest.approx(1.0, abs=1e-9)

    def test_reconstruction_time_recorded(self, spec):
        r = cut_and_run(
            spec.circuit, IdealBackend(), cuts=spec.cut_spec, shots=500, seed=5
        )
        assert r.reconstruction_seconds >= 0.0
