"""Unit tests for the bit-manipulation helpers (endianness contract)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils.bits import (
    bit_at,
    bits_to_index,
    bitstring_to_index,
    format_bitstring,
    index_to_bits,
    marginalize_probs,
    permute_probability_axes,
    split_index,
)


class TestBitAt:
    def test_scalar(self):
        assert bit_at(0b101, 0) == 1
        assert bit_at(0b101, 1) == 0
        assert bit_at(0b101, 2) == 1

    def test_array(self):
        arr = np.array([0, 1, 2, 3])
        np.testing.assert_array_equal(bit_at(arr, 0), [0, 1, 0, 1])
        np.testing.assert_array_equal(bit_at(arr, 1), [0, 0, 1, 1])


class TestIndexBits:
    def test_little_endian(self):
        # index 1 = qubit 0 set
        np.testing.assert_array_equal(index_to_bits(1, 3), [1, 0, 0])
        # index 4 = qubit 2 set
        np.testing.assert_array_equal(index_to_bits(4, 3), [0, 0, 1])

    def test_roundtrip(self):
        for i in range(16):
            assert bits_to_index(index_to_bits(i, 4)) == i

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            index_to_bits(8, 3)
        with pytest.raises(ValueError):
            index_to_bits(-1, 3)

    def test_bits_validation(self):
        with pytest.raises(ValueError):
            bits_to_index([0, 2])
        with pytest.raises(ValueError):
            bits_to_index(np.zeros((2, 2)))


class TestBitstrings:
    def test_format_qubit0_leftmost(self):
        assert format_bitstring(1, 3) == "100"
        assert format_bitstring(4, 3) == "001"
        assert format_bitstring(0, 3) == "000"

    def test_parse_roundtrip(self):
        for i in range(32):
            assert bitstring_to_index(format_bitstring(i, 5)) == i

    def test_parse_invalid(self):
        with pytest.raises(ValueError):
            bitstring_to_index("01x")
        with pytest.raises(ValueError):
            bitstring_to_index("")


class TestSplitIndex:
    def test_basic(self):
        # 3-qubit index with groups [0,2] and [1]
        idx = 0b101  # qubits 0 and 2 set
        (a, b) = split_index(idx, [[0, 2], [1]])
        assert a == 0b11  # bit0 of group = qubit 0 (set), bit1 = qubit 2 (set)
        assert b == 0

    def test_group_order_matters(self):
        idx = 0b001  # qubit 0 set
        (a,) = split_index(idx, [[2, 0]])
        assert a == 0b10  # qubit 0 is the *second* listed -> bit 1

    def test_vectorized(self):
        idx = np.arange(8)
        (a, b) = split_index(idx, [[0], [1, 2]])
        np.testing.assert_array_equal(a, idx & 1)
        np.testing.assert_array_equal(b, idx >> 1)


class TestPermute:
    def test_identity(self):
        p = np.arange(8.0)
        np.testing.assert_allclose(permute_probability_axes(p, [0, 1, 2]), p)

    def test_swap_endpoints(self):
        v = np.zeros(8)
        v[1] = 1.0  # |100> (qubit 0 set)
        out = permute_probability_axes(v, [2, 1, 0])
        assert out[4] == 1.0  # qubit 0 moved to position 2

    def test_cycle(self):
        v = np.zeros(8)
        v[1] = 1.0
        out = permute_probability_axes(v, [1, 2, 0])  # qubit0 -> position1
        assert out[2] == 1.0

    def test_mass_preserved(self, rng):
        p = rng.random(16)
        out = permute_probability_axes(p, [3, 1, 0, 2])
        assert np.isclose(out.sum(), p.sum())

    def test_invalid_permutation(self):
        with pytest.raises(ValueError):
            permute_probability_axes(np.zeros(8), [0, 0, 1])

    def test_non_power_of_two(self):
        with pytest.raises(ValueError):
            permute_probability_axes(np.zeros(6), [0, 1])


class TestMarginalize:
    def test_single_qubit(self):
        v = np.zeros(8)
        v[1] = 0.25  # |100>
        v[7] = 0.75  # |111>
        np.testing.assert_allclose(marginalize_probs(v, [0], 3), [0.0, 1.0])
        np.testing.assert_allclose(marginalize_probs(v, [2], 3), [0.25, 0.75])

    def test_keep_order(self):
        v = np.zeros(8)
        v[1] = 1.0  # qubit 0 set
        # keep (2, 0): qubit 0 is bit 1 of the output
        np.testing.assert_allclose(marginalize_probs(v, [2, 0], 3), [0, 0, 1, 0])

    def test_keep_all(self, rng):
        p = rng.random(8)
        np.testing.assert_allclose(marginalize_probs(p, [0, 1, 2], 3), p)

    def test_mass_preserved(self, rng):
        p = rng.random(32)
        assert np.isclose(marginalize_probs(p, [1, 3], 5).sum(), p.sum())


@given(st.integers(min_value=0, max_value=255))
def test_roundtrip_property(i):
    assert bitstring_to_index(format_bitstring(i, 8)) == i


@given(
    st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=8, max_size=8),
    st.permutations(list(range(3))),
)
def test_permute_is_bijection(vals, perm):
    v = np.asarray(vals)
    out = permute_probability_axes(v, perm)
    # applying the inverse permutation restores the vector
    inv = list(np.argsort(perm))
    back = permute_probability_axes(out, inv)
    np.testing.assert_allclose(back, v, atol=1e-12)
