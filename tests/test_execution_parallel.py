"""Tests for fragment execution, shot allocation and the parallel executor."""

import numpy as np
import pytest

from repro.backends import IdealBackend, fake_5q_device
from repro.cutting import allocate_shots, bipartition
from repro.cutting.execution import exact_fragment_data, run_fragments
from repro.cutting.reconstruction import reconstruct_distribution
from repro.exceptions import CutError
from repro.metrics import total_variation
from repro.parallel import parallel_map, run_fragments_parallel
from repro.sim import simulate_statevector


class TestRunFragments:
    def test_default_variant_counts(self, simple_cut_pair):
        _, _, pair = simple_cut_pair
        data = run_fragments(pair, IdealBackend(), shots=100, seed=0)
        assert len(data.upstream) == 3
        assert len(data.downstream) == 6
        assert data.num_variants == 9
        assert data.total_shots == 900

    def test_upstream_arrays_shape_and_mass(self, simple_cut_pair):
        _, _, pair = simple_cut_pair
        data = run_fragments(pair, IdealBackend(), shots=1000, seed=1)
        for arr in data.upstream.values():
            assert arr.shape == (1 << pair.n_up_out, 1 << pair.num_cuts)
            assert np.isclose(arr.sum(), 1.0)

    def test_downstream_vectors(self, simple_cut_pair):
        _, _, pair = simple_cut_pair
        data = run_fragments(pair, IdealBackend(), shots=1000, seed=2)
        for vec in data.downstream.values():
            assert vec.shape == (1 << pair.n_down,)
            assert np.isclose(vec.sum(), 1.0)

    def test_custom_variant_sets(self, simple_cut_pair):
        _, _, pair = simple_cut_pair
        data = run_fragments(
            pair, IdealBackend(), shots=100,
            settings=[("X",)], inits=[("Z+",), ("Z-",)], seed=3,
        )
        assert set(data.upstream) == {("X",)}
        assert set(data.downstream) == {("Z+",), ("Z-",)}

    def test_empty_variants_rejected(self, simple_cut_pair):
        _, _, pair = simple_cut_pair
        with pytest.raises(CutError):
            run_fragments(pair, IdealBackend(), shots=10, settings=[], seed=0)

    def test_exact_matches_high_shot_limit(self, simple_cut_pair):
        _, _, pair = simple_cut_pair
        exact = exact_fragment_data(pair)
        sampled = run_fragments(pair, IdealBackend(), shots=300_000, seed=4)
        for key in exact.upstream:
            assert np.abs(exact.upstream[key] - sampled.upstream[key]).max() < 0.01

    def test_device_seconds_tracked(self, simple_cut_pair):
        _, _, pair = simple_cut_pair
        dev = fake_5q_device()
        data = run_fragments(pair, dev, shots=100, seed=5)
        assert data.modeled_seconds > 0
        assert np.isclose(data.modeled_seconds, dev.clock.now)


class TestAllocateShots:
    def test_uniform(self):
        per, report = allocate_shots(3, 6, shots_per_variant=1000)
        assert per == 1000
        assert report["total_executions"] == 9000

    def test_fixed_total(self):
        per, report = allocate_shots(3, 6, total_shots=9000, scheme="fixed_total")
        assert per == 1000

    def test_exactly_one_budget_arg(self):
        with pytest.raises(CutError):
            allocate_shots(3, 6)
        with pytest.raises(CutError):
            allocate_shots(3, 6, shots_per_variant=10, total_shots=100)

    def test_budget_too_small(self):
        with pytest.raises(CutError):
            allocate_shots(3, 6, total_shots=5)

    def test_unknown_scheme(self):
        with pytest.raises(CutError):
            allocate_shots(3, 6, shots_per_variant=10, scheme="greedy")


class TestProportionalAllocation:
    """The row-fan-in weighted scheme the module docstring documents."""

    def test_k1_full_pools(self):
        # K=1: settings weigh 2 each (total 6); preps weigh 2 (Z±) and
        # 1 (X±/Y±), total 6 + 8 = 14.  Budget 1400 -> unit weight 100.
        per, report = allocate_shots(
            3, 6, total_shots=1400, scheme="proportional"
        )
        assert report["upstream_shots"] == [200, 200, 200]
        down = report["downstream_shots"]
        assert down[("Z+",)] == down[("Z-",)] == 200
        for code in ("X+", "X-", "Y+", "Y-"):
            assert down[(code,)] == 100
        assert report["total_executions"] == 1400
        assert per == 100  # the scalar is the smallest share

    def test_budget_conserved_with_rounding(self):
        _, report = allocate_shots(
            3, 6, total_shots=1000, scheme="proportional"
        )
        assert (
            sum(report["upstream_shots"])
            + sum(report["downstream_shots"].values())
            == 1000
        )

    def test_explicit_inits_reduced_pool(self):
        # a Y-golden cut drops Y±: 4 preps left, weights Z±=2, X±=1
        inits = [("Z+",), ("Z-",), ("X+",), ("X-",)]
        per, report = allocate_shots(
            3, 4, total_shots=1200, scheme="proportional", inits=inits
        )
        down = report["downstream_shots"]
        assert down[("Z+",)] == 2 * down[("X+",)]
        assert report["total_executions"] == 1200

    def test_requires_total_shots(self):
        with pytest.raises(CutError, match="total_shots"):
            allocate_shots(
                3, 6, shots_per_variant=100, scheme="proportional"
            )

    def test_non_pool_counts_need_inits(self):
        with pytest.raises(CutError, match="inits"):
            allocate_shots(3, 5, total_shots=1000, scheme="proportional")

    def test_inits_length_mismatch(self):
        with pytest.raises(CutError, match="preparation tuples"):
            allocate_shots(
                3,
                6,
                total_shots=1000,
                scheme="proportional",
                inits=[("Z+",)],
            )

    def test_budget_too_small(self):
        with pytest.raises(CutError, match="too small"):
            allocate_shots(3, 6, total_shots=8, scheme="proportional")

    def test_tree_allocation_rejects_proportional(self):
        from repro.cutting.shots import allocate_tree_shots

        with pytest.raises(CutError, match="proportional"):
            allocate_tree_shots([3, 6], total_shots=900, scheme="proportional")


class TestParallel:
    def test_parallel_map_order(self):
        out = parallel_map(lambda x: x * x, list(range(20)))
        assert out == [x * x for x in range(20)]

    def test_serial_mode(self):
        out = parallel_map(lambda x: x + 1, [1, 2, 3], mode="serial")
        assert out == [2, 3, 4]

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            parallel_map(lambda x: x, [1, 2], mode="gpu")

    def test_parallel_fragments_match_serial_reconstruction(self, simple_cut_pair):
        qc, _, pair = simple_cut_pair
        truth = simulate_statevector(qc).probabilities()
        data = run_fragments_parallel(
            pair, IdealBackend, shots=100_000, seed=9, max_workers=4
        )
        p = reconstruct_distribution(data, postprocess="clip")
        assert total_variation(p, truth) < 0.01

    def test_parallel_sums_device_time(self, simple_cut_pair):
        _, _, pair = simple_cut_pair
        data = run_fragments_parallel(
            pair, fake_5q_device, shots=100, seed=1, max_workers=2
        )
        assert data.modeled_seconds > 0
        assert data.metadata["parallel"] is True


class TestChainParallelExecutor:
    """Regression (ROADMAP/docstring contract): chain fragments share the
    warmed cache pool read-only across workers, so ``mode="serial"`` and
    ``mode="thread"`` are bit-identical for chains."""

    @staticmethod
    def _chain(seed=81, **kwargs):
        from repro.cutting import partition_chain
        from repro.harness.scaling import chain_cut_circuit

        qc, specs = chain_cut_circuit(
            3, 1, fresh_per_fragment=2, depth=2, seed=seed, **kwargs
        )
        return qc, partition_chain(qc, specs)

    @staticmethod
    def _assert_identical(a, b):
        for i in range(a.chain.num_fragments):
            assert set(a.records[i]) == set(b.records[i])
            for k in a.records[i]:
                np.testing.assert_array_equal(a.records[i][k], b.records[i][k])

    @pytest.mark.parametrize("factory", [IdealBackend, fake_5q_device])
    def test_serial_equals_thread(self, factory):
        from repro.parallel import run_chain_fragments_parallel

        _, chain = self._chain()
        a = run_chain_fragments_parallel(
            chain, factory, shots=400, seed=5, max_workers=4, mode="thread"
        )
        b = run_chain_fragments_parallel(
            chain, factory, shots=400, seed=5, mode="serial"
        )
        self._assert_identical(a, b)
        assert a.metadata["cached"] and b.metadata["cached"]

    def test_parallel_chain_reconstructs_truth(self):
        from repro.cutting.reconstruction import reconstruct_chain_distribution
        from repro.parallel import run_chain_fragments_parallel

        qc, chain = self._chain(seed=82)
        truth = simulate_statevector(qc).probabilities()
        data = run_chain_fragments_parallel(
            chain, IdealBackend, shots=100_000, seed=9, max_workers=4
        )
        p = reconstruct_chain_distribution(data, postprocess="clip")
        assert total_variation(p, truth) < 0.02
        assert data.modeled_seconds >= 0
        assert data.metadata["parallel"] is True


class TestTreeParallelExecutor:
    """Satellite (PR 5): the tree cache pool is warmed once by the probe
    backend and shared read-only across workers, so ``mode="serial"`` and
    ``mode="thread"`` are bit-identical for branched fragment trees —
    mirroring the chain regression above."""

    @staticmethod
    def _tree(seed=83, parents=(0, 0, 1, 1)):
        from repro.cutting import partition_tree
        from repro.harness.scaling import tree_cut_circuit

        qc, specs = tree_cut_circuit(
            list(parents), 1, fresh_per_fragment=2, depth=2, seed=seed
        )
        return qc, partition_tree(qc, specs)

    @staticmethod
    def _assert_identical(a, b):
        for i in range(a.tree.num_fragments):
            assert set(a.records[i]) == set(b.records[i])
            for k in a.records[i]:
                np.testing.assert_array_equal(a.records[i][k], b.records[i][k])

    @pytest.mark.parametrize("factory", [IdealBackend, fake_5q_device])
    def test_serial_equals_thread(self, factory):
        from repro.parallel import run_tree_fragments_parallel

        _, tree = self._tree(parents=(0, 0))
        a = run_tree_fragments_parallel(
            tree, factory, shots=400, seed=5, max_workers=4, mode="thread"
        )
        b = run_tree_fragments_parallel(
            tree, factory, shots=400, seed=5, mode="serial"
        )
        self._assert_identical(a, b)
        assert a.metadata["cached"] and b.metadata["cached"]

    def test_retry_serial_equals_thread_under_faults(self):
        """Satellite (ISSUE 7): with a seeded transient fault plan and a
        retry policy, serial and threaded execution stay bit-identical to
        each other *and* to the fault-free retry-free run, and their
        attempt ledgers agree in canonical (order-insensitive) form."""
        from repro.backends import FaultInjectionBackend, FaultPlan
        from repro.cutting import AttemptLedger, RetryPolicy
        from repro.parallel import run_tree_fragments_parallel

        _, tree = self._tree(parents=(0, 0))
        plan = FaultPlan(seed=11, transient_rate=0.3, max_consecutive_transients=2)
        policy = RetryPolicy(max_attempts=4)
        clean = run_tree_fragments_parallel(
            tree, IdealBackend, shots=300, seed=5, mode="serial"
        )
        ledgers = {}
        runs = {}
        for mode in ("serial", "thread"):
            ledgers[mode] = AttemptLedger()
            runs[mode] = run_tree_fragments_parallel(
                tree,
                lambda: FaultInjectionBackend(IdealBackend(), plan),
                shots=300,
                seed=5,
                max_workers=4,
                mode=mode,
                retry=policy,
                ledger=ledgers[mode],
            )
        self._assert_identical(clean, runs["serial"])
        self._assert_identical(clean, runs["thread"])
        assert ledgers["serial"].canonical() == ledgers["thread"].canonical()
        assert ledgers["serial"].summary()["failures"] > 0  # faults fired

    def test_retry_healthy_parallel_is_bit_identical(self):
        from repro.cutting import AttemptLedger, RetryPolicy
        from repro.parallel import run_tree_fragments_parallel

        _, tree = self._tree(parents=(0, 0))
        clean = run_tree_fragments_parallel(
            tree, IdealBackend, shots=300, seed=5, mode="serial"
        )
        ledger = AttemptLedger()
        guarded = run_tree_fragments_parallel(
            tree,
            IdealBackend,
            shots=300,
            seed=5,
            max_workers=4,
            mode="thread",
            retry=RetryPolicy(),
            ledger=ledger,
        )
        self._assert_identical(clean, guarded)
        assert ledger.summary()["retries"] == 0
        assert ledger.summary()["failures"] == 0

    def test_degrade_without_retry_rejected(self):
        from repro.parallel import run_tree_fragments_parallel

        _, tree = self._tree(parents=(0, 0))
        with pytest.raises(ValueError):
            run_tree_fragments_parallel(
                tree, IdealBackend, shots=100, seed=0, on_exhausted="degrade"
            )

    def test_parallel_tree_reconstructs_truth(self):
        from repro.cutting.reconstruction import reconstruct_tree_distribution
        from repro.parallel import run_tree_fragments_parallel

        qc, tree = self._tree(seed=84)
        truth = simulate_statevector(qc).probabilities()
        data = run_tree_fragments_parallel(
            tree, IdealBackend, shots=100_000, seed=9, max_workers=4
        )
        p = reconstruct_tree_distribution(data, postprocess="clip")
        assert total_variation(p, truth) < 0.02
        assert data.metadata["parallel"] is True


class TestTreeProcessExecutor:
    """Tentpole (ISSUE 10): ``mode="process"`` ships the warmed cache pool
    to worker processes through shared memory and stays bit-identical to
    serial and thread execution — counts, RNG streams, clocks (to float
    summation order) — healthy and fault-injected alike."""

    _tree = staticmethod(TestTreeParallelExecutor._tree)
    _assert_identical = staticmethod(TestTreeParallelExecutor._assert_identical)

    @pytest.mark.parametrize("factory", [IdealBackend, fake_5q_device])
    def test_serial_thread_process_identical(self, factory):
        from repro.parallel import run_tree_fragments_parallel

        _, tree = self._tree(parents=(0, 0))
        runs = {
            mode: run_tree_fragments_parallel(
                tree, factory, shots=400, seed=5, max_workers=2, mode=mode
            )
            for mode in ("serial", "thread", "process")
        }
        self._assert_identical(runs["serial"], runs["process"])
        self._assert_identical(runs["thread"], runs["process"])
        assert np.isclose(
            runs["serial"].modeled_seconds, runs["process"].modeled_seconds
        )
        assert runs["process"].metadata["cached"]

    def test_retry_ledger_canonical_across_all_modes(self):
        """Satellite: under a seeded fault plan, process-mode per-worker
        ledgers merged in task order agree with serial/thread ledgers in
        canonical form, and the counts still match the fault-free run."""
        from repro.backends import FaultPlan, FaultyBackendFactory
        from repro.cutting import AttemptLedger, RetryPolicy
        from repro.parallel import run_tree_fragments_parallel

        _, tree = self._tree(parents=(0, 0))
        plan = FaultPlan(seed=11, transient_rate=0.3, max_consecutive_transients=2)
        factory = FaultyBackendFactory(IdealBackend, plan)
        policy = RetryPolicy(max_attempts=4)
        clean = run_tree_fragments_parallel(
            tree, IdealBackend, shots=300, seed=5, mode="serial"
        )
        ledgers = {}
        for mode in ("serial", "thread", "process"):
            ledgers[mode] = AttemptLedger()
            run = run_tree_fragments_parallel(
                tree,
                factory,
                shots=300,
                seed=5,
                max_workers=2,
                mode=mode,
                retry=policy,
                ledger=ledgers[mode],
            )
            self._assert_identical(clean, run)
        assert (
            ledgers["serial"].canonical()
            == ledgers["thread"].canonical()
            == ledgers["process"].canonical()
        )
        assert ledgers["process"].summary()["failures"] > 0  # faults fired

    def test_uncached_backend_runs_in_process_mode(self):
        """A backend with no cache hooks (trajectory sampling) executes
        every variant for real in the workers, still bit-identically."""
        from functools import partial

        from repro.backends import trajectory_5q_device
        from repro.parallel import run_tree_fragments_parallel

        factory = partial(trajectory_5q_device, num_trajectories=6)
        _, tree = self._tree(parents=(0,))
        a = run_tree_fragments_parallel(
            tree, factory, shots=200, seed=3, mode="serial"
        )
        b = run_tree_fragments_parallel(
            tree, factory, shots=200, seed=3, max_workers=2, mode="process"
        )
        self._assert_identical(a, b)
        assert not b.metadata["cached"]

    def test_process_rejects_cross_process_meters(self):
        from repro.cutting import RetryPolicy
        from repro.parallel import run_tree_fragments_parallel

        _, tree = self._tree(parents=(0,))
        for policy in (
            RetryPolicy(deadline=60.0),
            RetryPolicy(breaker_threshold=3),
        ):
            with pytest.raises(ValueError, match="process"):
                run_tree_fragments_parallel(
                    tree,
                    IdealBackend,
                    shots=100,
                    seed=0,
                    mode="process",
                    retry=policy,
                )

    def test_run_fragments_parallel_rejects_process(self, simple_cut_pair):
        _, _, pair = simple_cut_pair
        with pytest.raises(ValueError, match="tree"):
            run_fragments_parallel(
                pair, IdealBackend, shots=100, seed=0, mode="process"
            )
