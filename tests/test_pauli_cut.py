"""Tests for cutting with general Pauli observables (Eq. 14's full scope)."""

import numpy as np
import pytest

from repro.backends import IdealBackend
from repro.circuits import Circuit, random_circuit
from repro.cutting import bipartition
from repro.cutting.pauli_cut import (
    cut_pauli_expectation,
    cut_pauli_sum_expectation,
    fragment_diagonals,
    rotated_fragment_pair,
)
from repro.exceptions import ReproError
from repro.linalg.paulis import PauliString
from repro.observables import PauliSumObservable
from repro.sim.expectation import expectation_of_observable

from tests.helpers import two_block_circuit


@pytest.fixture(scope="module")
def workload():
    qc, spec = two_block_circuit(4, [0, 1], [1, 2, 3], depth=3, seed=42)
    return qc, spec, bipartition(qc, spec)


# a high-shot ideal backend keeps statistical error ~1e-2
_SHOTS = 200_000


class TestRotatedPair:
    def test_rotations_only_on_output_wires(self, workload):
        _, _, pair = workload
        obs = PauliString.from_label("XYZI")
        rot = rotated_fragment_pair(pair, obs)
        extra_up = len(rot.upstream) - len(pair.upstream)
        extra_down = len(rot.downstream) - len(pair.downstream)
        # upstream output = qubit 0 (X -> 1 gate); downstream outputs
        # qubits 1,2,3 (Y -> 2 gates, Z/I -> none)
        assert extra_up == 1
        assert extra_down == 2
        # cut wires untouched: none of the appended gates acts on them
        for inst in rot.upstream.instructions[len(pair.upstream):]:
            assert inst.qubits[0] not in rot.up_cut_local

    def test_width_mismatch(self, workload):
        _, _, pair = workload
        with pytest.raises(ReproError):
            rotated_fragment_pair(pair, PauliString.from_label("XX"))

    def test_diagonals_shapes(self, workload):
        _, _, pair = workload
        obs = PauliString.from_label("ZXYI")
        d1, d2 = fragment_diagonals(pair, obs)
        assert d1.shape == (1 << pair.n_up_out,)
        assert d2.shape == (1 << pair.n_down,)

    def test_phase_goes_upstream(self, workload):
        _, _, pair = workload
        obs = PauliString.from_label("ZIII", phase=-3.0)
        d1, _ = fragment_diagonals(pair, obs)
        assert d1.max() == pytest.approx(3.0)

    def test_imaginary_phase_rejected(self, workload):
        _, _, pair = workload
        with pytest.raises(ReproError):
            fragment_diagonals(pair, PauliString.from_label("ZIII", phase=1j))


class TestPauliExpectation:
    @pytest.mark.parametrize(
        "label", ["ZZZZ", "XIII", "IYII", "XYZI", "YYXX", "IIII", "XXXX"]
    )
    def test_matches_exact(self, workload, label):
        qc, spec, _ = workload
        obs = PauliString.from_label(label)
        exact = expectation_of_observable(qc, obs)
        est = cut_pauli_expectation(
            qc, spec, IdealBackend(), obs, shots=_SHOTS, seed=5
        )
        assert est == pytest.approx(exact, abs=0.02)

    def test_golden_mode_on_real_upstream(self):
        qc, spec = two_block_circuit(
            4, [0, 1], [1, 2, 3], depth=3, seed=77, real_upstream=True
        )
        obs = PauliString.from_label("ZIZZ")
        exact = expectation_of_observable(qc, obs)
        est = cut_pauli_expectation(
            qc, spec, IdealBackend(), obs, shots=_SHOTS, golden="analytic", seed=6
        )
        assert est == pytest.approx(exact, abs=0.02)

    def test_invalid_golden_mode(self, workload):
        qc, spec, _ = workload
        from repro.exceptions import CutError

        with pytest.raises(CutError):
            cut_pauli_expectation(
                qc, spec, IdealBackend(), PauliString.from_label("ZZZZ"),
                golden="detect",
            )

    def test_random_observables_property(self, workload, rng):
        qc, spec, _ = workload
        labels = ["I", "X", "Y", "Z"]
        for trial in range(4):
            lab = "".join(rng.choice(labels, 4))
            obs = PauliString.from_label(lab)
            exact = expectation_of_observable(qc, obs)
            est = cut_pauli_expectation(
                qc, spec, IdealBackend(), obs, shots=_SHOTS, seed=100 + trial
            )
            assert est == pytest.approx(exact, abs=0.03), lab


class TestPauliSumExpectation:
    def test_transverse_ising_energy(self, workload):
        qc, spec, _ = workload
        h = PauliSumObservable.from_list(
            [
                (1.0, "ZZII"), (1.0, "IZZI"), (1.0, "IIZZ"),
                (-0.7, "XIII"), (-0.7, "IXII"), (-0.7, "IIXI"), (-0.7, "IIIX"),
            ]
        )
        exact = h.expectation_exact(qc)
        est, info = cut_pauli_sum_expectation(
            qc, spec, IdealBackend(), h, shots=_SHOTS // 4, seed=9
        )
        assert est == pytest.approx(exact, abs=0.05)
        # ZZ terms group together; X terms qubit-wise commute with each
        # other but not with the ZZ group
        assert info["num_groups"] == 2
        assert info["num_terms"] == 7

    def test_grouping_saves_executions(self, workload):
        qc, spec, _ = workload
        h = PauliSumObservable.from_list(
            [(0.5, "ZZII"), (0.5, "IZZI"), (0.5, "ZIZI")]
        )
        _, info = cut_pauli_sum_expectation(
            qc, spec, IdealBackend(), h, shots=1000, seed=1
        )
        assert info["num_groups"] == 1  # one run serves all three terms

    def test_width_mismatch(self, workload):
        qc, spec, _ = workload
        h = PauliSumObservable.from_list([(1.0, "ZZ")])
        with pytest.raises(ReproError):
            cut_pauli_sum_expectation(qc, spec, IdealBackend(), h)
