"""CLI smoke tests and wide-circuit integration tests."""

import subprocess
import sys

import numpy as np
import pytest

from repro.backends import IdealBackend
from repro.circuits import Circuit, random_circuit
from repro.core import cut_and_run, find_golden_bases_analytic
from repro.cutting import bipartition, find_cuts
from repro.cutting.execution import exact_fragment_data
from repro.cutting.reconstruction import reconstruct_distribution
from repro.metrics import total_variation
from repro.sim import simulate_statevector

from tests.helpers import two_block_circuit


class TestHarnessCli:
    def test_scaling_subcommand(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.harness", "--only", "scaling"],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert proc.returncode == 0, proc.stderr[-1500:]
        assert "§II-B scaling" in proc.stdout
        assert "4^Kr*3^Kg" in proc.stdout

    def test_fig5_subcommand(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.harness", "--only", "fig5"],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert proc.returncode == 0, proc.stderr[-1500:]
        assert "modeled device wall time" in proc.stdout

    def test_bad_flag(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.harness", "--only", "fig9"],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert proc.returncode != 0


class TestWideCircuits:
    """The library must scale past the paper's 5/7-qubit experiments."""

    def test_ten_qubit_exact_reconstruction(self):
        qc, spec = two_block_circuit(
            10, list(range(6)), list(range(5, 10)), depth=2, seed=3
        )
        pair = bipartition(qc, spec)
        data = exact_fragment_data(pair)
        p = reconstruct_distribution(data, postprocess="raw")
        truth = simulate_statevector(qc).probabilities()
        np.testing.assert_allclose(p, truth, atol=1e-8)

    def test_nine_qubit_golden_pipeline(self):
        from repro.core import golden_ansatz

        spec = golden_ansatz(9, depth=2, seed=4)
        pair = bipartition(spec.circuit, spec.cut_spec)
        assert pair.n_up == 5 and pair.n_down == 5
        run = cut_and_run(
            spec.circuit, IdealBackend(), cuts=spec.cut_spec,
            shots=20_000, golden="analytic", seed=4,
        )
        assert "Y" in str(run.golden_used.get(0, ""))
        truth = simulate_statevector(spec.circuit).probabilities()
        assert total_variation(run.probabilities, truth) < 0.1

    def test_cut_search_on_wide_random_circuit(self):
        qc, _ = two_block_circuit(
            8, list(range(5)), list(range(4, 8)), depth=2, seed=6
        )
        spec = find_cuts(qc, max_fragment_qubits=6, max_cuts=2)
        pair = bipartition(qc, spec)
        assert max(pair.n_up, pair.n_down) <= 6


class TestCutRunResultVarianceApi:
    def test_variance_vector_shape(self):
        qc, spec = two_block_circuit(4, [0, 1], [1, 2, 3], seed=8)
        run = cut_and_run(qc, IdealBackend(), cuts=spec, shots=1000, seed=1)
        var = run.variance()
        assert var.shape == run.probabilities.shape
        assert np.all(var >= 0)

    def test_variance_respects_golden_bases(self):
        from repro.core import golden_ansatz

        spec = golden_ansatz(5, seed=31)
        run = cut_and_run(
            spec.circuit, IdealBackend(), cuts=spec.cut_spec, shots=1000,
            golden="known", golden_map={0: "Y"}, seed=2,
        )
        # must not raise despite the missing Y setting, and stay finite
        assert np.isfinite(run.variance()).all()
        assert run.predicted_stddev_tv() > 0
