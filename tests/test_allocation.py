"""Tests for variance-aware shot-allocation planning."""

import numpy as np
import pytest

from repro.backends import IdealBackend
from repro.core import golden_ansatz
from repro.cutting import bipartition
from repro.cutting.allocation import suggest_allocation
from repro.cutting.execution import exact_fragment_data, run_fragments
from repro.exceptions import CutError


@pytest.fixture(scope="module")
def pilot():
    spec = golden_ansatz(5, depth=3, seed=17)
    pair = bipartition(spec.circuit, spec.cut_spec)
    return run_fragments(pair, IdealBackend(), shots=2000, seed=3)


class TestSuggestAllocation:
    def test_budget_conserved(self, pilot):
        plan = suggest_allocation(pilot, total_shots=9000)
        total = sum(plan.upstream.values()) + sum(plan.downstream.values())
        assert total == 9000

    def test_every_variant_funded(self, pilot):
        plan = suggest_allocation(pilot, total_shots=9000, min_shots=50)
        assert len(plan.upstream) == 3 and len(plan.downstream) == 6
        for v in list(plan.upstream.values()) + list(plan.downstream.values()):
            assert v >= 50

    def test_never_worse_than_uniform(self, pilot):
        """Neyman allocation minimises the modelled variance, so the plan
        can only beat (or tie) the uniform split it is compared against."""
        plan = suggest_allocation(pilot, total_shots=9000)
        assert plan.predicted_variance <= plan.uniform_variance * 1.0001
        assert plan.improvement >= 0.999

    def test_nonuniform_when_coefficients_differ(self, pilot):
        plan = suggest_allocation(pilot, total_shots=18_000)
        counts = list(plan.upstream.values()) + list(plan.downstream.values())
        assert max(counts) > min(counts)  # uniform would be a coincidence

    def test_budget_floor_enforced(self, pilot):
        with pytest.raises(CutError):
            suggest_allocation(pilot, total_shots=10, min_shots=16)

    def test_exact_pilot_rejected(self):
        spec = golden_ansatz(5, depth=2, seed=18)
        pair = bipartition(spec.circuit, spec.cut_spec)
        with pytest.raises(CutError):
            suggest_allocation(exact_fragment_data(pair), total_shots=900)

    def test_rows_renderable(self, pilot):
        plan = suggest_allocation(pilot, total_shots=9000)
        rows = plan.as_rows()
        assert len(rows) == 9
        assert all("shots" in r for r in rows)

    def test_plan_respects_reduced_bases(self, pilot):
        """Planning over a golden-reduced protocol only sees its variants."""
        from repro.core.neglect import (
            reduced_bases,
            reduced_init_tuples,
            reduced_setting_tuples,
        )

        spec = golden_ansatz(5, depth=3, seed=17)
        pair = bipartition(spec.circuit, spec.cut_spec)
        golden = {0: "Y"}
        reduced_pilot = run_fragments(
            pair, IdealBackend(), shots=2000, seed=4,
            settings=reduced_setting_tuples(1, golden),
            inits=reduced_init_tuples(1, golden),
        )
        plan = suggest_allocation(
            reduced_pilot, total_shots=6000, bases=reduced_bases(1, golden)
        )
        assert len(plan.upstream) == 2 and len(plan.downstream) == 4

    def test_weighted_execution_improves_empirical_error(self, pilot):
        """End-to-end: spending the planned budgets beats uniform on the
        measured TV error (averaged over repetitions)."""
        from repro.cutting.execution import run_fragments
        from repro.cutting.reconstruction import reconstruct_distribution
        from repro.metrics import total_variation
        from repro.sim import simulate_statevector

        spec = golden_ansatz(5, depth=3, seed=17)
        pair = bipartition(spec.circuit, spec.cut_spec)
        truth = simulate_statevector(spec.circuit).probabilities()
        plan = suggest_allocation(pilot, total_shots=2700, min_shots=32)

        def run_with(allocation: dict, seed: int):
            # per-variant runs with individual budgets, merged by hand
            upstream = {}
            downstream = {}
            for i, (s, n) in enumerate(allocation["up"].items()):
                d = run_fragments(
                    pair, IdealBackend(), shots=n, settings=[s],
                    inits=[("Z+",)], seed=seed * 997 + i,
                )
                upstream[s] = d.upstream[s]
            for j, (t, n) in enumerate(allocation["down"].items()):
                d = run_fragments(
                    pair, IdealBackend(), shots=n, settings=[("Z",)],
                    inits=[t], seed=seed * 991 + 100 + j,
                )
                downstream[t] = d.downstream[t]
            from repro.cutting.execution import FragmentData

            return FragmentData(
                pair=pair, upstream=upstream, downstream=downstream,
                shots_per_variant=min(
                    list(allocation["up"].values())
                    + list(allocation["down"].values())
                ),
            )

        planned = {"up": plan.upstream, "down": plan.downstream}
        uniform = {
            "up": {k: 300 for k in plan.upstream},
            "down": {k: 300 for k in plan.downstream},
        }
        err_planned, err_uniform = [], []
        for rep in range(8):
            dp = run_with(planned, seed=rep + 1)
            du = run_with(uniform, seed=rep + 1)
            err_planned.append(
                total_variation(reconstruct_distribution(dp), truth)
            )
            err_uniform.append(
                total_variation(reconstruct_distribution(du), truth)
            )
        # planned mean error should not be noticeably worse than uniform
        assert np.mean(err_planned) < np.mean(err_uniform) * 1.25
