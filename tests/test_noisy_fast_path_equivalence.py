"""Equivalence of the noisy fragment cache against per-variant execution.

:class:`repro.cutting.noisy_cache.NoisyFragmentSimCache` must be a pure
performance change: every distribution the fake-hardware fast path serves
has to match transpiling and density-evolving each physical variant circuit
from scratch (the per-variant ``_execute`` reference semantics) to ≤ 1e-9 —
across random circuits, ``K ∈ {1, 2, 3}``, full and reduced/neglected
variant pools, trivial and depolarizing+amplitude-damping noise, and with
readout error on and off.  The cost side of the contract is pinned too:
exactly one transpile per fragment body and ``1 + 4^K`` noisy body
evolutions per (pair, device), no matter how many variants are served.
"""

import numpy as np
import pytest

from repro.backends.fake_hardware import FakeHardwareBackend
from repro.core.neglect import reduced_init_tuples, reduced_setting_tuples
from repro.core.pipeline import cut_and_run
from repro.cutting import NoisyFragmentSimCache, bipartition
from repro.cutting.execution import run_fragments
from repro.cutting.variants import (
    downstream_init_tuples,
    downstream_variant,
    upstream_setting_tuples,
    upstream_variant,
)
from repro.noise.kraus import (
    amplitude_damping,
    depolarizing,
    two_qubit_depolarizing,
)
from repro.noise.model import NoiseModel
from repro.noise.readout import ReadoutError, apply_readout_error
from repro.parallel import run_fragments_parallel
from repro.transpile.coupling import CouplingMap
from repro.transpile.pipeline import transpile
from repro.utils.bits import marginalize_probs, permute_probability_axes
from test_fast_path_equivalence import random_cut_circuit

TOL = 1e-9

#: noise configurations the satellite demands: trivial, gate noise without
#: readout error, gate noise with readout error
NOISE_CONFIGS = ("trivial", "gates", "gates+readout")


def make_noise(config: str, num_qubits: int = 5) -> NoiseModel:
    nm = NoiseModel()
    if config == "trivial":
        return nm
    # depolarizing + amplitude damping, including on the rz/sx gates the
    # variant rotations lower to — the fast path must carry the variant
    # gates' own noise, not just the body's
    nm.add_gate_noise(["sx", "x", "rz"], depolarizing(2e-3))
    nm.add_gate_noise(["sx", "x"], amplitude_damping(1.5e-3))
    nm.add_gate_noise(["cx"], two_qubit_depolarizing(8e-3))
    if config == "gates+readout":
        for q in range(num_qubits):
            nm.add_readout_error(q, ReadoutError(p01=0.015, p10=0.03))
    return nm


def make_device(config: str, topology: str = "linear") -> FakeHardwareBackend:
    coupling = (
        CouplingMap.linear(5)
        if topology == "linear"
        else CouplingMap.ibm_t_shape_5q()
    )
    return FakeHardwareBackend(
        coupling, make_noise(config), name=f"test[{config},{topology}]"
    )


def reference_variant_probs(dev: FakeHardwareBackend, circuit) -> np.ndarray:
    """The exact distribution ``_execute`` samples from (pre-cache semantics):
    transpile the full variant circuit, evolve the noisy density matrix,
    readout error, layout un-permutation, marginalisation."""
    physical, layout = transpile(circuit, dev.coupling)
    probs = dev._noisy_probabilities(physical)
    probs = apply_readout_error(probs, dev.noise_model.readout, physical.num_qubits)
    perm = [0] * physical.num_qubits
    for logical, phys in enumerate(layout):
        perm[phys] = logical
    probs = permute_probability_axes(probs, perm)
    if circuit.num_qubits < physical.num_qubits:
        probs = marginalize_probs(
            probs, range(circuit.num_qubits), physical.num_qubits
        )
    return probs


def pair_for(K: int, seed: int):
    qc, spec = random_cut_circuit(K, seed)
    return bipartition(qc, spec)


class TestCacheMatchesPerVariantExecution:
    @pytest.mark.parametrize("K", [1, 2, 3])
    @pytest.mark.parametrize("config", NOISE_CONFIGS)
    def test_full_variant_pools(self, K, config):
        pair = pair_for(K, 1100 + K)
        dev = make_device(config)
        cache = dev.make_variant_cache(pair)
        for s in upstream_setting_tuples(K):
            ref = reference_variant_probs(dev, upstream_variant(pair, s))
            np.testing.assert_allclose(
                cache.upstream_probabilities(s), ref, atol=TOL
            )
        for i in downstream_init_tuples(K):
            ref = reference_variant_probs(dev, downstream_variant(pair, i))
            np.testing.assert_allclose(
                cache.downstream_probabilities(i), ref, atol=TOL
            )

    @pytest.mark.parametrize("K", [1, 2, 3])
    @pytest.mark.parametrize("config", ["gates+readout"])
    def test_reduced_and_neglected_pools(self, K, config):
        """Golden pipelines pass reduced pools; the cache must serve them."""
        pair = pair_for(K, 1200 + K)
        golden = {0: "Y"} if K == 1 else {0: "Y", K - 1: ("X", "Z")}
        dev = make_device(config)
        cache = dev.make_variant_cache(pair)
        for s in reduced_setting_tuples(K, golden):
            ref = reference_variant_probs(dev, upstream_variant(pair, s))
            np.testing.assert_allclose(
                cache.upstream_probabilities(s), ref, atol=TOL
            )
        for i in reduced_init_tuples(K, golden):
            ref = reference_variant_probs(dev, downstream_variant(pair, i))
            np.testing.assert_allclose(
                cache.downstream_probabilities(i), ref, atol=TOL
            )

    @pytest.mark.parametrize("config", NOISE_CONFIGS)
    def test_routed_topology(self, config):
        """SWAP insertion and layout permutation survive the factorisation."""
        K = 2
        pair = pair_for(K, 1300 + K)
        dev = make_device(config, topology="t_shape")
        cache = dev.make_variant_cache(pair)
        for s in upstream_setting_tuples(K):
            ref = reference_variant_probs(dev, upstream_variant(pair, s))
            np.testing.assert_allclose(
                cache.upstream_probabilities(s), ref, atol=TOL
            )
        for i in downstream_init_tuples(K):
            ref = reference_variant_probs(dev, downstream_variant(pair, i))
            np.testing.assert_allclose(
                cache.downstream_probabilities(i), ref, atol=TOL
            )

    def test_physical_circuits_match_transpile(self):
        """The cache's assembled physical circuits equal a fresh transpile,
        instruction for instruction — the invariant behind one-transpile."""
        K = 2
        pair = pair_for(K, 1400 + K)
        dev = make_device("gates", topology="t_shape")
        cache = dev.make_variant_cache(pair)
        variants = [
            (cache.upstream_physical(s), upstream_variant(pair, s))
            for s in upstream_setting_tuples(K)
        ] + [
            (cache.downstream_physical(i), downstream_variant(pair, i))
            for i in downstream_init_tuples(K)
        ]
        for assembled, logical in variants:
            physical, _ = transpile(logical, dev.coupling)
            assert len(assembled) == len(physical)
            for a, b in zip(assembled, physical):
                assert a.name == b.name
                assert a.qubits == b.qubits
                assert a.params == pytest.approx(b.params, abs=1e-12)


class TestRunVariantsFastPath:
    def test_counts_and_clock_identical_to_execution(self):
        """Same RNG streams + same distributions ⇒ identical counts, and the
        timing model charges exactly what per-variant jobs would."""
        K = 2
        pair = pair_for(K, 1500 + K)
        settings = upstream_setting_tuples(K)
        inits = downstream_init_tuples(K)
        fast_dev = make_device("gates+readout")
        fast = fast_dev.run_variants(pair, settings, inits, shots=4000, seed=17)
        ref_dev = make_device("gates+readout")
        circuits = [upstream_variant(pair, s) for s in settings] + [
            downstream_variant(pair, i) for i in inits
        ]
        ref = ref_dev.run(circuits, shots=4000, seed=17)
        assert len(fast) == len(ref)
        for f, r in zip(fast, ref):
            assert f.counts == r.counts
            assert f.shots == r.shots
            assert f.num_qubits == r.num_qubits
            assert f.seconds == pytest.approx(r.seconds, rel=1e-12)
            assert f.metadata["transpiled_ops"] == r.metadata["transpiled_ops"]
            assert f.metadata["layout"] == r.metadata["layout"]
        assert fast_dev.clock.now == pytest.approx(ref_dev.clock.now, rel=1e-12)
        # the virtual-clock ledger labels must match per-variant jobs too
        assert [lbl for lbl, _ in fast_dev.clock.log] == [
            lbl for lbl, _ in ref_dev.clock.log
        ]

    def test_run_fragments_uses_fast_path(self):
        """run_fragments on fake hardware == per-variant circuit submission."""
        K = 1
        pair = pair_for(K, 1600 + K)
        dev = make_device("gates")
        data = run_fragments(pair, dev, shots=2000, seed=5)
        ref_dev = make_device("gates")
        settings = upstream_setting_tuples(K)
        inits = downstream_init_tuples(K)
        circuits = [upstream_variant(pair, s) for s in settings] + [
            downstream_variant(pair, i) for i in inits
        ]
        results = ref_dev.run(circuits, shots=2000, seed=5)
        from repro.cutting.execution import _split_upstream_probs

        for s, res in zip(settings, results[: len(settings)]):
            np.testing.assert_allclose(
                data.upstream[s],
                _split_upstream_probs(res.probabilities(), pair),
                atol=TOL,
            )
        for i, res in zip(inits, results[len(settings) :]):
            np.testing.assert_allclose(
                data.downstream[i], res.probabilities(), atol=TOL
            )

    def test_parallel_matches_serial_and_shares_cache(self):
        K = 2
        pair = pair_for(K, 1700 + K)
        factory = lambda: make_device("gates+readout")  # noqa: E731
        a = run_fragments_parallel(
            pair, factory, shots=500, seed=3, max_workers=4, mode="thread"
        )
        b = run_fragments_parallel(pair, factory, shots=500, seed=3, mode="serial")
        assert set(a.upstream) == set(b.upstream)
        for k in a.upstream:
            np.testing.assert_array_equal(a.upstream[k], b.upstream[k])
        for k in a.downstream:
            np.testing.assert_array_equal(a.downstream[k], b.downstream[k])
        assert a.metadata["cached"]


class TestSimCallCounts:
    """The ``2 transpiles + (1 + 4^K) evolutions`` law, however many variants."""

    @pytest.mark.parametrize("K", [1, 2, 3])
    def test_full_pools_hit_the_law(self, K, monkeypatch):
        import repro.cutting.noisy_cache as nc

        calls = []
        real = nc.transpile
        monkeypatch.setattr(
            nc, "transpile", lambda *a, **k: calls.append(1) or real(*a, **k)
        )
        pair = pair_for(K, 1800 + K)
        dev = make_device("gates+readout")
        cache = dev.make_variant_cache(pair)
        dev.run_variants(
            pair,
            upstream_setting_tuples(K),
            downstream_init_tuples(K),
            shots=100,
            seed=0,
            cache=cache,
        )
        assert len(calls) == 2  # one per fragment body
        assert cache.stats == {
            "transpiles": 2,
            "up_evolutions": 1,
            "down_columns": 4**K,
        }
        # serving the same pools again costs nothing new
        dev.run_variants(
            pair,
            upstream_setting_tuples(K),
            downstream_init_tuples(K),
            shots=100,
            seed=1,
            cache=cache,
        )
        assert len(calls) == 2
        assert cache.stats["up_evolutions"] == 1
        assert cache.stats["down_columns"] == 4**K

    def test_cut_and_run_shares_one_cache_across_stages(self, monkeypatch):
        """Pilot detection + production execution = still one transpile per
        fragment body and one set of body evolutions."""
        import repro.cutting.noisy_cache as nc

        calls = []
        real = nc.transpile
        monkeypatch.setattr(
            nc, "transpile", lambda *a, **k: calls.append(1) or real(*a, **k)
        )
        from repro.harness.scaling import multi_cut_golden_circuit

        qc, spec = multi_cut_golden_circuit(
            1, extra_up=1, extra_down=1, depth=2, seed=42
        )
        dev = make_device("gates+readout")
        result = cut_and_run(
            qc, dev, cuts=spec, shots=2000, golden="detect", seed=7
        )
        assert len(calls) == 2
        assert result.probabilities.sum() == pytest.approx(1.0, abs=1e-6)


class TestChainSimCallCounts:
    """The chain extension of the call-count law: an N-fragment chain costs
    exactly N body transpiles on the noisy path — one per fragment, shared
    by every ``(inits, setting)`` variant through the cache pool — with
    ``4^{K_prev}`` body evolutions and ``3^{K}`` batched rotation passes per
    fragment."""

    @pytest.mark.parametrize("num_fragments", [3, 4])
    def test_chain_pool_hits_n_transpile_law(self, num_fragments, monkeypatch):
        import repro.cutting.noisy_cache as nc

        from repro.cutting.chain import partition_chain
        from repro.cutting.execution import run_chain_fragments
        from repro.harness.scaling import chain_cut_circuit

        calls = []
        real = nc.transpile
        monkeypatch.setattr(
            nc, "transpile", lambda *a, **k: calls.append(1) or real(*a, **k)
        )
        qc, specs = chain_cut_circuit(
            num_fragments, 1, fresh_per_fragment=2, depth=2,
            seed=2100 + num_fragments,
        )
        chain = partition_chain(qc, specs)
        dev = make_device("gates+readout")
        pool = dev.make_chain_cache_pool(chain)
        run_chain_fragments(chain, dev, shots=100, seed=0, pool=pool)
        assert len(calls) == num_fragments  # one per fragment body
        for i, cache in enumerate(pool):
            frag = chain.fragments[i]
            assert cache.stats == {
                "transpiles": 1,
                "body_evolutions": 4**frag.num_prep,
                "rotation_evolutions": 3**frag.num_meas if frag.num_meas else 0,
            }
        # serving the same variants again costs nothing new
        run_chain_fragments(chain, dev, shots=100, seed=1, pool=pool)
        assert len(calls) == num_fragments

    def test_cut_and_run_chain_shares_the_pool(self, monkeypatch):
        """cut_and_run_chain builds one pool: N transpiles total."""
        import repro.cutting.noisy_cache as nc

        from repro.core.pipeline import cut_and_run_chain
        from repro.harness.scaling import chain_cut_circuit

        calls = []
        real = nc.transpile
        monkeypatch.setattr(
            nc, "transpile", lambda *a, **k: calls.append(1) or real(*a, **k)
        )
        qc, specs = chain_cut_circuit(
            3, 1, fresh_per_fragment=2, depth=2, seed=2200
        )
        dev = make_device("gates+readout")
        result = cut_and_run_chain(qc, dev, specs, shots=500, seed=7)
        assert len(calls) == 3
        assert result.probabilities.sum() == pytest.approx(1.0, abs=1e-6)

    @pytest.mark.parametrize("mode", ["detect", "analytic"])
    def test_chain_pilot_and_production_share_the_pool(self, mode, monkeypatch):
        """Golden detection keeps the law: the pilot sweep and the
        production run are served by the same pool, so an N-fragment chain
        still costs exactly N body transpiles (the analytic finder works on
        a transpile-free ideal pool)."""
        import repro.cutting.noisy_cache as nc

        from repro.core.pipeline import cut_and_run_chain
        from repro.harness.scaling import golden_chain_circuit

        calls = []
        real = nc.transpile
        monkeypatch.setattr(
            nc, "transpile", lambda *a, **k: calls.append(1) or real(*a, **k)
        )
        qc, specs, _ = golden_chain_circuit(
            3, planted_groups=(0,), seed=2300
        )
        dev = make_device("gates+readout")
        result = cut_and_run_chain(
            qc, dev, specs, shots=400, golden=mode, pilot_shots=800,
            seed=7, exploit_all=True,
        )
        assert len(calls) == 3  # pilot + production: one per fragment body
        assert result.probabilities.sum() == pytest.approx(1.0, abs=1e-6)
        if mode == "detect":
            assert result.pilot_executions > 0
            assert [len(d) for d in result.detection] == [3, 3]


class TestPreparationNoiseIsExact:
    def test_noisy_prep_coefficients_reproduce_prep_state(self):
        """The Hermitian-basis expansion must carry the preparation gates'
        own noise: coefficients rebuild the exact noisy 2×2 state."""
        from repro.cutting.noisy_cache import HERMITIAN_BASIS_STATES

        pair = pair_for(1, 1900)
        dev = make_device("gates")
        cache = dev.make_variant_cache(pair)
        q = pair.down_cut_local[0]
        for code in ("Z+", "Z-", "X+", "X-", "Y+", "Y-"):
            c = cache._prep_coefficients(code, q)
            rebuilt = sum(
                ci * b for ci, b in zip(c, HERMITIAN_BASIS_STATES)
            )
            # evolve the lowered prep gates + noise directly
            from repro.linalg.channels import apply_channel

            rho = np.zeros((2, 2), dtype=complex)
            rho[0, 0] = 1.0
            for inst in cache._lowered_prep(code):
                m = inst.gate.matrix()
                rho = m @ rho @ m.conj().T
                for channel, _ in dev.noise_model.channels_for(inst.name, (q,)):
                    rho = apply_channel(rho, channel, (0,), 1)
            np.testing.assert_allclose(rebuilt, rho, atol=TOL)
            assert abs(c.sum() - np.trace(rho).real) < TOL
