"""Unit tests for Pauli algebra and eigen-decompositions."""

import numpy as np
import pytest

from repro.exceptions import GateError
from repro.linalg.paulis import (
    PAULI_LABELS,
    PAULI_MATRICES,
    PauliString,
    pauli_basis_change,
    pauli_eigenpairs,
    pauli_matrix,
)


class TestPauliMatrices:
    @pytest.mark.parametrize("label", PAULI_LABELS)
    def test_hermitian(self, label):
        m = pauli_matrix(label)
        np.testing.assert_allclose(m, m.conj().T)

    @pytest.mark.parametrize("label", PAULI_LABELS)
    def test_unitary(self, label):
        m = pauli_matrix(label)
        np.testing.assert_allclose(m @ m.conj().T, np.eye(2), atol=1e-12)

    @pytest.mark.parametrize("label", ["X", "Y", "Z"])
    def test_traceless(self, label):
        assert abs(np.trace(pauli_matrix(label))) < 1e-12

    def test_unknown_label(self):
        with pytest.raises(GateError):
            pauli_matrix("W")

    def test_anticommutation(self):
        X, Y, Z = (PAULI_MATRICES[l] for l in "XYZ")
        np.testing.assert_allclose(X @ Y + Y @ X, np.zeros((2, 2)), atol=1e-12)
        np.testing.assert_allclose(X @ Y, 1j * Z, atol=1e-12)


class TestEigenpairs:
    @pytest.mark.parametrize("label", PAULI_LABELS)
    def test_reconstruction(self, label):
        """M = Σ_r r |v><v| — the identity the cut expansion relies on."""
        m = sum(r * np.outer(v, v.conj()) for r, v in pauli_eigenpairs(label))
        np.testing.assert_allclose(m, pauli_matrix(label), atol=1e-12)

    @pytest.mark.parametrize("label", PAULI_LABELS)
    def test_eigenstates_normalised(self, label):
        for _, v in pauli_eigenpairs(label):
            assert np.isclose(np.vdot(v, v).real, 1.0)

    @pytest.mark.parametrize("label", ["X", "Y", "Z"])
    def test_eigenstates_orthogonal(self, label):
        pairs = pauli_eigenpairs(label)
        assert abs(np.vdot(pairs[0][1], pairs[1][1])) < 1e-12

    @pytest.mark.parametrize("label", ["X", "Y", "Z"])
    def test_eigenvalue_equation(self, label):
        m = pauli_matrix(label)
        for r, v in pauli_eigenpairs(label):
            np.testing.assert_allclose(m @ v, r * v, atol=1e-12)

    def test_identity_weights(self):
        pairs = pauli_eigenpairs("I")
        assert [r for r, _ in pairs] == [1, 1]


class TestBasisChange:
    @pytest.mark.parametrize("label", PAULI_LABELS)
    def test_maps_eigenvectors_to_computational(self, label):
        v = pauli_basis_change(label)
        for k, (_, ket) in enumerate(pauli_eigenpairs(label)):
            mapped = v @ ket
            expected = np.zeros(2, dtype=complex)
            expected[k] = 1.0
            # equality up to phase
            ph = mapped[np.argmax(np.abs(mapped))]
            np.testing.assert_allclose(mapped / ph * abs(ph), expected, atol=1e-12)

    @pytest.mark.parametrize("label", PAULI_LABELS)
    def test_unitary(self, label):
        v = pauli_basis_change(label)
        np.testing.assert_allclose(v @ v.conj().T, np.eye(2), atol=1e-12)


class TestPauliString:
    def test_from_label(self):
        p = PauliString.from_label("XIZ")
        assert p.num_qubits == 3
        assert p.weight == 2
        assert p.support == (0, 2)

    def test_invalid_label(self):
        with pytest.raises(GateError):
            PauliString.from_label("XQ")

    def test_matrix_little_endian(self):
        """labels[0] acts on qubit 0 = least-significant index bit."""
        p = PauliString.from_label("XI")
        expected = np.kron(np.eye(2), PAULI_MATRICES["X"])
        np.testing.assert_allclose(p.to_matrix(), expected)

    def test_matrix_phase(self):
        p = PauliString.from_label("Z", phase=-2.0)
        np.testing.assert_allclose(p.to_matrix(), -2.0 * PAULI_MATRICES["Z"])

    def test_product(self):
        a = PauliString.from_label("XY")
        b = PauliString.from_label("YX")
        c = a * b
        # X*Y = iZ on qubit 0; Y*X = -iZ on qubit 1 -> phase i * -i = 1
        assert c.labels == ("Z", "Z")
        assert np.isclose(c.phase, 1.0)

    def test_product_matrix_consistency(self, rng):
        labels = ["I", "X", "Y", "Z"]
        for _ in range(10):
            la = "".join(rng.choice(labels, 3))
            lb = "".join(rng.choice(labels, 3))
            a, b = PauliString.from_label(la), PauliString.from_label(lb)
            np.testing.assert_allclose(
                (a * b).to_matrix(), a.to_matrix() @ b.to_matrix(), atol=1e-12
            )

    def test_commutes(self):
        assert PauliString.from_label("XX").commutes_with(PauliString.from_label("ZZ"))
        assert not PauliString.from_label("XI").commutes_with(
            PauliString.from_label("ZI")
        )

    def test_diagonal_fast_path(self):
        p = PauliString.from_label("ZIZ")
        np.testing.assert_allclose(p.diagonal(), np.diag(p.to_matrix()))

    def test_diagonal_rejects_offdiagonal(self):
        with pytest.raises(GateError):
            PauliString.from_label("XZ").diagonal()

    def test_is_real(self):
        assert PauliString.from_label("XZ").is_real()
        assert PauliString.from_label("YY").is_real()
        assert not PauliString.from_label("YI").is_real()

    def test_restricted_to(self):
        p = PauliString.from_label("XYZ")
        assert p.restricted_to([2, 0]).labels == ("Z", "X")

    def test_identity(self):
        p = PauliString.identity(4)
        assert p.is_identity()
        np.testing.assert_allclose(p.to_matrix(), np.eye(16))

    def test_size_mismatch_product(self):
        with pytest.raises(GateError):
            PauliString.from_label("X") * PauliString.from_label("XX")
