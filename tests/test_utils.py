"""Tests for RNG plumbing, timing utilities and the config module."""

import numpy as np
import pytest

from repro.config import tolerance_for
from repro.utils.rng import as_generator, derive_rng, spawn_rngs
from repro.utils.timing import Stopwatch, VirtualClock


class TestRng:
    def test_as_generator_from_int(self):
        a = as_generator(5)
        b = as_generator(5)
        assert a.integers(0, 100) == b.integers(0, 100)

    def test_as_generator_passthrough(self):
        g = np.random.default_rng(1)
        assert as_generator(g) is g

    def test_as_generator_none(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_spawn_independent_streams(self):
        streams = spawn_rngs(42, 3)
        draws = [g.integers(0, 1 << 30) for g in streams]
        assert len(set(draws)) == 3

    def test_spawn_deterministic(self):
        a = [g.integers(0, 1 << 30) for g in spawn_rngs(7, 4)]
        b = [g.integers(0, 1 << 30) for g in spawn_rngs(7, 4)]
        assert a == b

    def test_spawn_from_generator(self):
        g = np.random.default_rng(3)
        streams = spawn_rngs(g, 2)
        assert len(streams) == 2

    def test_derive_rng_tags_matter(self):
        base1 = np.random.default_rng(1)
        base2 = np.random.default_rng(1)
        a = derive_rng(base1, 1).integers(0, 1 << 30)
        b = derive_rng(base2, 2).integers(0, 1 << 30)
        assert a != b


class TestStopwatch:
    def test_measures_elapsed(self):
        with Stopwatch() as sw:
            sum(range(10_000))
        assert sw.elapsed > 0

    def test_accumulates(self):
        sw = Stopwatch()
        with sw:
            pass
        first = sw.elapsed
        with sw:
            sum(range(10_000))
        assert sw.elapsed > first

    def test_reset(self):
        sw = Stopwatch()
        with sw:
            pass
        sw.reset()
        assert sw.elapsed == 0.0


class TestVirtualClock:
    def test_charge_advances(self):
        clk = VirtualClock()
        clk.charge(1.5, "a")
        clk.charge(2.5, "b")
        assert clk.now == pytest.approx(4.0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock().charge(-1.0)

    def test_label_totals(self):
        clk = VirtualClock()
        clk.charge(1.0, "job:a")
        clk.charge(2.0, "job:b")
        clk.charge(5.0, "other")
        assert clk.total("job:") == pytest.approx(3.0)

    def test_reset(self):
        clk = VirtualClock()
        clk.charge(1.0)
        clk.reset()
        assert clk.now == 0.0 and clk.log == []


class TestConfig:
    def test_tolerance_exact(self):
        assert tolerance_for(None) < 1e-9

    def test_tolerance_scales_with_shots(self):
        assert tolerance_for(100) > tolerance_for(10_000)

    def test_tolerance_invalid(self):
        with pytest.raises(ValueError):
            tolerance_for(0)
