"""Unit tests for the density-matrix simulator."""

import numpy as np
import pytest

from repro.circuits import Circuit, ghz_circuit, random_circuit
from repro.exceptions import SimulationError
from repro.linalg.states import partial_trace
from repro.noise.kraus import amplitude_damping, depolarizing
from repro.sim import DensityMatrix, simulate_density, simulate_statevector


class TestInitialisation:
    def test_default_ground_state(self):
        dm = DensityMatrix(2)
        m = dm.matrix()
        assert m[0, 0] == 1.0 and np.isclose(np.trace(m).real, 1.0)

    def test_from_statevector(self):
        v = np.array([1, 0, 0, 1]) / np.sqrt(2)
        dm = DensityMatrix.from_statevector(v)
        np.testing.assert_allclose(dm.matrix(), np.outer(v, v.conj()))

    def test_from_matrix(self, rng):
        v = rng.normal(size=4) + 1j * rng.normal(size=4)
        v /= np.linalg.norm(v)
        rho = np.outer(v, v.conj())
        dm = DensityMatrix(2, rho)
        np.testing.assert_allclose(dm.matrix(), rho)

    def test_bad_shape(self):
        with pytest.raises(SimulationError):
            DensityMatrix(2, np.eye(3))


class TestUnitaryEvolution:
    def test_agrees_with_statevector(self):
        qc = random_circuit(4, 5, seed=17)
        v = simulate_statevector(qc).vector()
        dm = simulate_density(qc)
        np.testing.assert_allclose(dm.matrix(), np.outer(v, v.conj()), atol=1e-10)

    def test_probabilities_agree(self):
        qc = random_circuit(3, 6, seed=5)
        np.testing.assert_allclose(
            simulate_density(qc).probabilities(),
            simulate_statevector(qc).probabilities(),
            atol=1e-10,
        )

    def test_purity_of_pure_state(self):
        dm = simulate_density(ghz_circuit(3))
        assert np.isclose(dm.purity(), 1.0)

    def test_trace_preserved(self):
        dm = simulate_density(random_circuit(4, 6, seed=2))
        assert np.isclose(dm.trace(), 1.0)

    def test_width_mismatch(self):
        with pytest.raises(SimulationError):
            DensityMatrix(2).apply_circuit(Circuit(3).h(0))


class TestChannelEvolution:
    def test_full_depolarizing_gives_maximally_mixed(self):
        dm = DensityMatrix(1)
        dm.apply_matrix(np.array([[0, 1], [1, 0]], dtype=complex), (0,))
        dm.apply_channel(depolarizing(1.0), (0,))
        np.testing.assert_allclose(dm.matrix(), np.eye(2) / 2, atol=1e-12)

    def test_depolarizing_reduces_purity(self):
        dm = simulate_density(ghz_circuit(2))
        dm.apply_channel(depolarizing(0.2), (0,))
        assert dm.purity() < 1.0

    def test_amplitude_damping_fixed_point(self):
        dm = DensityMatrix(1)
        dm.apply_matrix(np.array([[0, 1], [1, 0]], dtype=complex), (0,))  # |1>
        dm.apply_channel(amplitude_damping(1.0), (0,))
        np.testing.assert_allclose(dm.probabilities(), [1.0, 0.0], atol=1e-12)

    def test_channel_on_second_qubit_only(self):
        dm = simulate_density(Circuit(2).h(0))
        dm.apply_channel(depolarizing(1.0), (1,))
        # qubit 0 superposition untouched
        reduced = partial_trace(dm.matrix(), [0], 2)
        np.testing.assert_allclose(reduced[0, 1], 0.5, atol=1e-12)

    def test_trace_preserved_under_channels(self):
        dm = simulate_density(random_circuit(3, 4, seed=7))
        for q in range(3):
            dm.apply_channel(depolarizing(0.1), (q,))
            dm.apply_channel(amplitude_damping(0.05), (q,))
        assert np.isclose(dm.trace(), 1.0)

    def test_expectation(self):
        dm = simulate_density(Circuit(2).x(1))
        z = np.diag([1, -1]).astype(complex)
        assert np.isclose(dm.expectation(z, (1,)).real, -1.0)
