"""Unit tests for execution backends (ideal + fake hardware + timing)."""

import numpy as np
import pytest

from repro.backends import (
    DeviceTimingModel,
    FakeHardwareBackend,
    IdealBackend,
    fake_5q_device,
    fake_7q_device,
    fake_device,
)
from repro.circuits import Circuit, ghz_circuit
from repro.exceptions import BackendError
from repro.metrics import total_variation
from repro.noise import NoiseModel
from repro.sim import simulate_statevector
from repro.transpile import CouplingMap


class TestIdealBackend:
    def test_counts_sum_to_shots(self):
        res = IdealBackend().run_one(ghz_circuit(3), shots=500, seed=1)
        assert sum(res.counts.values()) == 500
        assert res.num_qubits == 3

    def test_exact_mode(self):
        res = IdealBackend(exact=True).run_one(ghz_circuit(2), shots=1000, seed=1)
        assert res.counts == {"00": 500, "11": 500}

    def test_reproducible(self):
        a = IdealBackend().run_one(ghz_circuit(3), shots=200, seed=7)
        b = IdealBackend().run_one(ghz_circuit(3), shots=200, seed=7)
        assert a.counts == b.counts

    def test_batch_independent_of_order(self):
        qcs = [ghz_circuit(2), Circuit(2).h(0)]
        r1 = IdealBackend().run(qcs, shots=100, seed=3)
        r2 = IdealBackend().run(list(reversed(qcs)), shots=100, seed=3)
        # same seed, per-circuit streams -> first circuit results differ in
        # general (streams are positional); just check validity
        assert sum(r1[0].counts.values()) == 100
        assert sum(r2[1].counts.values()) == 100

    def test_large_sample_converges(self):
        qc = ghz_circuit(3)
        res = IdealBackend().run_one(qc, shots=200_000, seed=5)
        truth = simulate_statevector(qc).probabilities()
        assert total_variation(res.probabilities(), truth) < 0.01

    def test_invalid_shots(self):
        with pytest.raises(BackendError):
            IdealBackend().run_one(ghz_circuit(2), shots=0)

    def test_width_limit(self):
        be = IdealBackend(max_qubits=3)
        with pytest.raises(BackendError):
            be.run_one(ghz_circuit(4), shots=10)

    def test_charges_no_time(self):
        be = IdealBackend()
        be.run_one(ghz_circuit(2), shots=10, seed=0)
        assert be.clock.now == 0.0

    def test_empty_batch(self):
        assert IdealBackend().run([], shots=10) == []


class TestFakeHardware:
    def test_noise_free_device_matches_ideal(self):
        dev = FakeHardwareBackend(
            CouplingMap.linear(3), NoiseModel(), name="clean"
        )
        res = dev.run_one(ghz_circuit(3), shots=100_000, seed=2)
        truth = simulate_statevector(ghz_circuit(3)).probabilities()
        assert total_variation(res.probabilities(), truth) < 0.01

    def test_noise_degrades_ghz(self):
        dev = fake_5q_device()
        res = dev.run_one(ghz_circuit(5), shots=50_000, seed=3)
        p = res.probabilities()
        # noise leaks mass outside the two GHZ peaks, but peaks dominate
        assert p[0] + p[31] < 0.99
        assert p[0] + p[31] > 0.5

    def test_deeper_circuits_noisier(self):
        """Transpiled gate count drives error (each vs its own ideal truth)."""
        from repro.circuits import random_circuit

        shallow = random_circuit(5, 2, seed=9, two_qubit_prob=0.8)
        deep = random_circuit(5, 14, seed=9, two_qubit_prob=0.8)
        d = []
        for qc in (shallow, deep):
            truth = simulate_statevector(qc).probabilities()
            res = fake_5q_device().run_one(qc, shots=100_000, seed=1)
            d.append(total_variation(res.probabilities(), truth))
        assert d[1] > d[0]

    def test_device_width_limit(self):
        with pytest.raises(BackendError):
            fake_5q_device().run_one(ghz_circuit(6), shots=10)

    def test_charges_virtual_time(self):
        dev = fake_5q_device()
        res = dev.run_one(ghz_circuit(3), shots=1000, seed=0)
        assert res.seconds > 0
        assert np.isclose(dev.clock.now, res.seconds)

    def test_catalog_factory(self):
        assert fake_device(5).max_qubits == 5
        assert fake_device(7).max_qubits == 7
        with pytest.raises(BackendError):
            fake_device(9)

    def test_metadata_reports_transpilation(self):
        res = fake_7q_device().run_one(ghz_circuit(7), shots=100, seed=0)
        assert res.metadata["transpiled_ops"] >= 7
        assert len(res.metadata["layout"]) == 7

    def test_reproducible(self):
        a = fake_5q_device().run_one(ghz_circuit(4), shots=500, seed=11)
        b = fake_5q_device().run_one(ghz_circuit(4), shots=500, seed=11)
        assert a.counts == b.counts


class TestTimingModel:
    def test_job_seconds_structure(self):
        tm = DeviceTimingModel()
        qc = ghz_circuit(3)
        one = tm.job_seconds(qc, 1)
        thousand = tm.job_seconds(qc, 1000)
        # linear in shots with a fixed offset
        assert np.isclose(thousand - one, 999 * (one - tm.job_overhead))

    def test_circuit_duration_critical_path(self):
        tm = DeviceTimingModel(gate_time_1q=1.0, gate_time_2q=10.0)
        qc = Circuit(3).h(0).h(1).cx(0, 1)
        assert np.isclose(tm.circuit_duration(qc), 11.0)

    def test_empty_circuit(self):
        assert DeviceTimingModel().circuit_duration(Circuit(2)) == 0.0

    def test_paper_calibration_ballpark(self):
        """9 jobs of 1000 shots ≈ paper's 18.84 s; 6 jobs ≈ 12.61 s."""
        tm = DeviceTimingModel()
        qc = ghz_circuit(3)
        nine = 9 * tm.job_seconds(qc, 1000)
        six = 6 * tm.job_seconds(qc, 1000)
        assert 15 < nine < 23
        assert 10 < six < 16
        assert np.isclose(nine / six, 1.5)
