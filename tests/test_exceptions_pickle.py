"""Every typed exception must pickle-round-trip losslessly.

The process-pool executor (:mod:`repro.parallel.pool`) ships worker
failures back to the parent through pickle; an exception class that loses
its message or extra attributes in transit (the classic trap for
``__init__`` signatures that don't match ``args``) would turn a precise
``TransientBackendError(site=..., attempt=...)`` into a bare crash.  This
suite walks the *entire* hierarchy reflectively, so any future exception
class is covered the day it is added.
"""

import pickle

import pytest

import repro.exceptions as exc_mod
from repro.exceptions import (
    ReproError,
    RetryExhaustedError,
    TransientBackendError,
)


def _all_exception_types():
    """Every exception class defined in :mod:`repro.exceptions`."""
    found = [
        obj
        for obj in vars(exc_mod).values()
        if isinstance(obj, type) and issubclass(obj, ReproError)
    ]
    assert len(found) >= 13  # the hierarchy, not a lucky subset
    return found


def _make_instance(cls):
    """A maximally-populated instance of ``cls``."""
    if issubclass(cls, TransientBackendError):
        return cls("boom at site", site=("tree", 1, ("Z+",), ("X",)), attempt=3)
    if issubclass(cls, RetryExhaustedError):
        return cls("gave up", site=("tree", 0, (), ("Y",)))
    return cls("plain message")


@pytest.mark.parametrize("cls", _all_exception_types(), ids=lambda c: c.__name__)
def test_pickle_round_trip(cls):
    original = _make_instance(cls)
    clone = pickle.loads(pickle.dumps(original))
    assert type(clone) is cls
    assert str(clone) == str(original)
    assert clone.args == original.args
    for attr in ("site", "attempt"):
        assert getattr(clone, attr, None) == getattr(original, attr, None)


def test_site_and_attempt_survive_default_args():
    """The keyword-only extras survive even with an empty message."""
    err = TransientBackendError(site=("pair", "up", ("X",)), attempt=2)
    clone = pickle.loads(pickle.dumps(err))
    assert clone.site == ("pair", "up", ("X",))
    assert clone.attempt == 2
    err2 = RetryExhaustedError(site=("tree", 2, (), ()))
    clone2 = pickle.loads(pickle.dumps(err2))
    assert clone2.site == ("tree", 2, (), ())


def test_cause_chain_is_reraisable():
    """A worker-side raise-from survives a round trip well enough to re-raise."""
    try:
        try:
            raise ValueError("root cause")
        except ValueError as inner:
            raise TransientBackendError("wrapped", site=("s",), attempt=1) from inner
    except TransientBackendError as outer:
        clone = pickle.loads(pickle.dumps(outer))
    with pytest.raises(TransientBackendError, match="wrapped"):
        raise clone
