"""Shared fixtures for the repro test suite (helpers live in tests/helpers.py)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits import Circuit
from repro.cutting import CutPoint, CutSpec, bipartition


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def simple_cut_pair():
    """A 3-qubit single-cut bipartition with known structure."""
    qc = Circuit(3, name="simple")
    qc.h(0).cx(0, 1).ry(0.7, 1)
    qc.cx(1, 2).rz(0.3, 2)
    spec = CutSpec((CutPoint(1, 2),))
    return qc, spec, bipartition(qc, spec)
