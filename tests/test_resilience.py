"""Tests for fault injection, retry/backoff/deadline, and degradation.

The contracts under test (ISSUE 7):

* boundary validation rejects corrupted payloads at ``Backend.run``;
* a seeded :class:`FaultPlan` is deterministic per (site, attempt);
* with transient faults and a retry policy, ``run_tree_fragments`` /
  ``cut_and_run_tree`` complete **bit-identical** to the fault-free run;
* a permanently dead variant family degrades gracefully: its basis rows
  are demoted, the answer carries a rigorous widened ``tv_bound()``;
* deadlines and circuit breakers bound how long failure can burn;
* checkpoints resume aborted tree runs without re-executing (or shifting
  the RNG streams of) finished fragments.
"""

import numpy as np
import pytest

from repro.backends import (
    DeadVariantFamily,
    FaultInjectionBackend,
    FaultPlan,
    IdealBackend,
    fake_5q_device,
    validate_execution_result,
)
from repro.backends.base import Backend, ExecutionResult
from repro.circuits import Circuit
from repro.cutting import (
    AttemptLedger,
    CircuitBreaker,
    RetryPolicy,
    TreeCheckpoint,
    degradation_tv_penalty,
    partition_tree,
    plan_degradation,
    reallocate_shots,
    required_tree_variants,
    run_tree_fragments,
    tree_run_signature,
)
from repro.core import cut_and_run_tree
from repro.exceptions import (
    BackendError,
    CorruptedResultError,
    DeadlineExceededError,
    ReconstructionError,
    ReproError,
    RetryExhaustedError,
    TransientBackendError,
)
from repro.metrics import total_variation
from repro.sim import simulate_statevector


def _tree(seed=83, parents=(0, 0)):
    from repro.harness.scaling import tree_cut_circuit

    qc, specs = tree_cut_circuit(
        list(parents), 1, fresh_per_fragment=2, depth=2, seed=seed
    )
    return qc, specs, partition_tree(qc, specs)


def _assert_identical_records(a, b):
    for i in range(a.tree.num_fragments):
        assert set(a.records[i]) == set(b.records[i])
        for k in a.records[i]:
            np.testing.assert_array_equal(a.records[i][k], b.records[i][k])


class TestExceptionHierarchy:
    def test_transient_is_backend_error(self):
        exc = TransientBackendError("boom", site=("tree", 0), attempt=2)
        assert isinstance(exc, BackendError)
        assert isinstance(exc, ReproError)
        assert exc.site == ("tree", 0)
        assert exc.attempt == 2

    def test_corrupted_is_retryable(self):
        assert issubclass(CorruptedResultError, TransientBackendError)

    def test_exhausted_carries_site(self):
        exc = RetryExhaustedError("gone", site=("tree", 1))
        assert isinstance(exc, BackendError)
        assert exc.site == ("tree", 1)


class TestValidation:
    def _result(self, **overrides):
        kwargs = dict(counts={"00": 60, "11": 40}, shots=100, num_qubits=2)
        kwargs.update(overrides)
        return ExecutionResult(**kwargs)

    def test_valid_payload_passes(self):
        validate_execution_result(self._result(), 100, 2)

    def test_bad_key_characters(self):
        with pytest.raises(CorruptedResultError):
            validate_execution_result(self._result(counts={"2!": 100}), 100, 2)

    def test_bad_key_width(self):
        with pytest.raises(CorruptedResultError):
            validate_execution_result(self._result(counts={"000": 100}), 100, 2)

    def test_negative_count(self):
        with pytest.raises(CorruptedResultError):
            validate_execution_result(
                self._result(counts={"00": -1, "11": 101}), 100, 2
            )

    def test_non_integer_count(self):
        with pytest.raises(CorruptedResultError):
            validate_execution_result(
                self._result(counts={"00": 50.0, "11": 50}), 100, 2
            )

    def test_total_mismatch(self):
        with pytest.raises(CorruptedResultError):
            validate_execution_result(self._result(counts={"00": 99}), 100, 2)

    def test_declared_shots_mismatch(self):
        with pytest.raises(CorruptedResultError):
            validate_execution_result(self._result(), 200, 2)

    def test_width_mismatch(self):
        with pytest.raises(CorruptedResultError):
            validate_execution_result(self._result(), 100, 3)

    def test_exact_mode_total_exemption(self):
        res = self._result(counts={"00": 99}, metadata={"exact": True})
        validate_execution_result(res, 100, 2)  # rounding may lose shots

    def test_backend_run_boundary(self):
        class LossyBackend(Backend):
            name = "lossy"

            def _execute(self, circuit, shots, rng):
                return ExecutionResult(
                    counts={"0" * circuit.num_qubits: shots - 3},
                    shots=shots,
                    num_qubits=circuit.num_qubits,
                )

        qc = Circuit(1).h(0)
        with pytest.raises(CorruptedResultError):
            LossyBackend().run(qc, shots=100, seed=0)


class TestRetryPolicy:
    def test_field_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=2.0, max_delay=1.0)
        with pytest.raises(ValueError):
            RetryPolicy(deadline=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(attempt_timeout=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(breaker_threshold=0)

    def test_backoff_deterministic_and_bounded(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=1.0, jitter_seed=7)
        site = ("tree", 2, (), ("Y",))
        prev = 0.0
        for attempt in range(1, 6):
            d1 = policy.backoff_delay(site, attempt, prev)
            d2 = policy.backoff_delay(site, attempt, prev)
            assert d1 == d2  # pure function of (seed, site, attempt)
            hi = max(0.1, min(1.0, max(prev, 0.1) * 3.0))
            assert 0.1 <= d1 <= hi
            prev = d1

    def test_backoff_varies_across_sites(self):
        policy = RetryPolicy()
        a = policy.backoff_delay(("tree", 0, (), ("X",)), 1, 0.0)
        b = policy.backoff_delay(("tree", 1, (), ("X",)), 1, 0.0)
        assert a != b


class TestFaultPlan:
    def test_rate_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(transient_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(latency_seconds=-1.0)

    def test_action_deterministic(self):
        plan = FaultPlan(seed=3, transient_rate=0.5, corrupt_rate=0.3)
        site = ("tree", 1, (("Z+",),), ("X",))
        for attempt in (1, 2, 3):
            assert plan.action(site, attempt) == plan.action(site, attempt)

    def test_zero_plan_never_fires(self):
        plan = FaultPlan(seed=5)
        for attempt in range(1, 20):
            assert plan.action(("tree", 0, (), ("Z",)), attempt) is None

    def test_consecutive_transient_cap(self):
        plan = FaultPlan(seed=0, transient_rate=1.0, max_consecutive_transients=2)
        site = ("tree", 0, (), ("X",))
        assert plan.action(site, 1) == ("transient", 0.0)
        assert plan.action(site, 2) == ("transient", 0.0)
        assert plan.action(site, 3) is None

    def test_dead_family_setting_side(self):
        fam = DeadVariantFamily(2, "Y", 1)
        assert fam.matches(("tree", 2, (("Z+",),), ("X", "Y")))
        assert not fam.matches(("tree", 2, (("Z+",),), ("Y", "X")))
        assert not fam.matches(("tree", 1, (("Z+",),), ("X", "Y")))
        assert not fam.matches(("pair", "up", ("Y", "Y")))

    def test_dead_family_prep_side(self):
        fam = DeadVariantFamily(1, "X", 0, side="prep")
        assert fam.matches(("tree", 1, ("X+",), ("Z",)))
        assert fam.matches(("tree", 1, ("X-",), ("Z",)))
        assert not fam.matches(("tree", 1, ("Z+",), ("X",)))

    def test_dead_family_side_validation(self):
        with pytest.raises(ValueError):
            DeadVariantFamily(0, "Y", 0, side="both")

    def test_dead_family_overrides_rates(self):
        fam = DeadVariantFamily(0, "Y", 0)
        plan = FaultPlan(seed=1, dead=(fam,))
        site = ("tree", 0, (), ("Y",))
        for attempt in range(1, 10):
            assert plan.action(site, attempt) == ("dead", 0.0)


class TestFaultBackendTransparency:
    @pytest.mark.parametrize("factory", [IdealBackend, fake_5q_device])
    def test_zero_plan_is_bit_identical(self, factory):
        _, _, tree = _tree()
        bare = run_tree_fragments(tree, factory(), shots=300, seed=9)
        wrapped = run_tree_fragments(
            tree, FaultInjectionBackend(factory(), FaultPlan()), shots=300, seed=9
        )
        _assert_identical_records(bare, wrapped)

    def test_healthy_retry_path_is_bit_identical(self):
        _, _, tree = _tree()
        bare = run_tree_fragments(tree, IdealBackend(), shots=300, seed=9)
        ledger = AttemptLedger()
        guarded = run_tree_fragments(
            tree,
            FaultInjectionBackend(IdealBackend(), FaultPlan()),
            shots=300,
            seed=9,
            retry=RetryPolicy(),
            ledger=ledger,
        )
        _assert_identical_records(bare, guarded)
        summary = ledger.summary()
        assert summary["retries"] == 0
        assert summary["failures"] == 0
        assert summary["attempts"] == guarded.num_variants
        assert guarded.metadata["retry"]["failures"] == 0

    def test_wrapper_name_and_delegation(self):
        inner = fake_5q_device()
        wrapped = FaultInjectionBackend(inner, FaultPlan())
        assert wrapped.name == f"faulty({inner.name})"
        assert wrapped.max_qubits == inner.max_qubits
        assert wrapped.clock is inner.clock


class TestRetryBitIdentity:
    """Acceptance: a transient-fault run completes bit-identical to the
    fault-free run — every retried attempt re-samples its variant's
    original RNG stream."""

    PLAN = FaultPlan(seed=11, transient_rate=0.3, max_consecutive_transients=2)
    POLICY = RetryPolicy(max_attempts=4)

    @pytest.mark.parametrize("factory", [IdealBackend, fake_5q_device])
    def test_tree_records_identical(self, factory):
        _, _, tree = _tree()
        clean = run_tree_fragments(tree, factory(), shots=300, seed=7)
        ledger = AttemptLedger()
        faulted = run_tree_fragments(
            tree,
            FaultInjectionBackend(factory(), self.PLAN),
            shots=300,
            seed=7,
            retry=self.POLICY,
            ledger=ledger,
        )
        _assert_identical_records(clean, faulted)
        assert ledger.summary()["failures"] > 0  # faults really fired

    def test_pipeline_probabilities_identical(self):
        qc, specs, _ = _tree()
        clean = cut_and_run_tree(qc, IdealBackend(), specs, shots=300, seed=7)
        faulted = cut_and_run_tree(
            qc,
            FaultInjectionBackend(IdealBackend(), self.PLAN),
            specs,
            shots=300,
            seed=7,
            retry=self.POLICY,
        )
        np.testing.assert_array_equal(clean.probabilities, faulted.probabilities)
        assert faulted.degradation_bound == 0.0
        assert faulted.costs["retry"]["failures"] > 0
        assert faulted.tv_bound() == clean.tv_bound()

    def test_latency_faults_keep_counts_but_charge_time(self):
        _, _, tree = _tree()
        plan = FaultPlan(seed=2, latency_rate=0.5, latency_seconds=3.0)
        clean = run_tree_fragments(tree, IdealBackend(), shots=200, seed=4)
        slow = run_tree_fragments(
            tree, FaultInjectionBackend(IdealBackend(), plan), shots=200, seed=4
        )
        _assert_identical_records(clean, slow)
        assert slow.modeled_seconds > clean.modeled_seconds

    def test_unretried_transient_propagates(self):
        _, _, tree = _tree()
        plan = FaultPlan(seed=1, transient_rate=1.0)
        with pytest.raises(TransientBackendError):
            run_tree_fragments(
                tree, FaultInjectionBackend(IdealBackend(), plan), shots=100, seed=0
            )


class TestDeadlineAndBreaker:
    def test_deadline_exceeded(self):
        _, _, tree = _tree()
        plan = FaultPlan(seed=0, transient_rate=1.0)
        policy = RetryPolicy(
            max_attempts=50, base_delay=1.0, max_delay=2.0, deadline=3.0
        )
        with pytest.raises(DeadlineExceededError):
            run_tree_fragments(
                tree,
                FaultInjectionBackend(IdealBackend(), plan),
                shots=100,
                seed=0,
                retry=policy,
            )

    def test_breaker_fails_fast_into_degradation(self):
        _, _, tree = _tree()
        plan = FaultPlan(seed=0, transient_rate=1.0)
        policy = RetryPolicy(max_attempts=2, breaker_threshold=1)
        ledger = AttemptLedger()
        data = run_tree_fragments(
            tree,
            FaultInjectionBackend(IdealBackend(), plan),
            shots=100,
            seed=0,
            retry=policy,
            ledger=ledger,
            on_exhausted="degrade",
        )
        outcomes = ledger.summary()["outcomes"]
        assert outcomes.get("breaker_open", 0) > 0
        # every variant degraded, none recorded
        assert data.num_variants == 0
        assert len(data.metadata["degraded_sites"]) > 0
        assert all(not rec for rec in data.records)

    def test_breaker_unit(self):
        breaker = CircuitBreaker(2)
        assert not breaker.is_open("f0")
        breaker.failure("f0")
        assert not breaker.is_open("f0")
        breaker.failure("f0")
        assert breaker.is_open("f0")
        breaker.success("f0")
        assert not breaker.is_open("f0")
        assert not CircuitBreaker(None).is_open("anything")


class TestLedger:
    def test_elapsed_and_summary(self):
        ledger = AttemptLedger()
        ledger.record(("tree", 0), 1, "transient", latency=0.5, backoff=1.0)
        ledger.record(("tree", 0), 2, "ok", latency=0.25)
        ledger.record(("tree", 1), 1, "ok", latency=0.25)
        assert len(ledger) == 3
        assert ledger.elapsed() == pytest.approx(2.0)
        assert len(ledger.attempts_for(("tree", 0))) == 2
        summary = ledger.summary()
        assert summary["attempts"] == 3
        assert summary["sites"] == 2
        assert summary["retries"] == 1
        assert summary["failures"] == 1
        assert summary["outcomes"] == {"transient": 1, "ok": 2}

    def test_canonical_is_order_insensitive(self):
        a, b = AttemptLedger(), AttemptLedger()
        a.record(("tree", 0), 1, "ok", latency=0.1)
        a.record(("tree", 1), 1, "ok", latency=0.2)
        b.record(("tree", 1), 1, "ok", latency=0.2)
        b.record(("tree", 0), 1, "ok", latency=0.1)
        assert a.canonical() == b.canonical()


class TestDegradation:
    def test_penalty_arithmetic(self):
        assert degradation_tv_penalty({}) == 0.0
        assert degradation_tv_penalty({(0, 0): ("Y",)}) == 0.5
        assert degradation_tv_penalty({(0, 0): ("Y",), (1, 0): ("X",)}) == 1.5
        assert degradation_tv_penalty({(0, 0): ("X", "Y")}) == 1.0

    def test_reallocate_shots_arithmetic(self):
        per, report = reallocate_shots([9, 6], [3, 0], 100)
        assert per == 125  # 1500 shots over 12 survivors
        assert report["survivors"] == 12
        assert report["failed"] == 3
        assert report["boost_factor"] == pytest.approx(1.25)

    def test_reallocate_shots_errors(self):
        from repro.exceptions import CutError

        with pytest.raises(CutError):
            reallocate_shots([9], [1, 2], 100)
        with pytest.raises(CutError):
            reallocate_shots([9, 6], [10, 0], 100)
        with pytest.raises(CutError):
            reallocate_shots([9, 6], [9, 0], 100)  # fragment left empty
        with pytest.raises(CutError):
            reallocate_shots([9, 6], [1, 0], 0)

    def test_required_variants_subset_of_full_run(self):
        _, _, tree = _tree()
        data = run_tree_fragments(tree, IdealBackend(), shots=100, seed=3)
        pools = [[("I", "X", "Y", "Z")] * k for k in tree.group_sizes]
        for i in range(tree.num_fragments):
            frag = tree.fragments[i]
            required = required_tree_variants(
                tree, i, pools, ["Z"] * frag.num_meas
            )
            assert required <= set(data.records[i])

    def test_plan_degradation_single_dead_setting(self):
        _, _, tree = _tree()
        data = run_tree_fragments(tree, IdealBackend(), shots=100, seed=3)
        pools = [[("I", "X", "Y", "Z")] * k for k in tree.group_sizes]
        dead = [
            (0, combo)
            for combo in data.records[0]
            if combo[1] and combo[1][0] == "Y"
        ]
        assert dead
        records = [dict(r) for r in data.records]
        for _, combo in dead:
            del records[0][combo]
        new_pools, demotions, penalty = plan_degradation(
            tree, records, pools, dead
        )
        group = tree.fragments[0].meas_groups[0]
        assert "Y" not in new_pools[group][0]
        assert demotions == {(group, 0): ("Y",)}
        assert penalty == 0.5

    def test_pipeline_degrades_with_rigorous_bound(self):
        qc, specs, tree = _tree()
        truth = simulate_statevector(qc).probabilities()
        plan = FaultPlan(seed=0, dead=(DeadVariantFamily(0, "Y", 0),))
        result = cut_and_run_tree(
            qc,
            FaultInjectionBackend(IdealBackend(), plan),
            specs,
            shots=4000,
            seed=21,
            retry=RetryPolicy(max_attempts=2),
            on_exhausted="degrade",
        )
        assert result.degradation_bound == 0.5
        assert result.degraded  # the dead family really was demoted
        group = tree.fragments[0].meas_groups[0]
        assert result.costs["demoted_bases"] == {f"group{group}/cut0": ["Y"]}
        assert result.costs["reallocation"]["boost_factor"] > 1.0
        assert result.costs["degraded_variants"] == len(result.degraded)
        measured = total_variation(np.asarray(result.probabilities), truth)
        assert measured <= result.tv_bound()
        assert result.tv_bound() >= 0.5

    def test_dead_z_preparation_is_unrecoverable(self):
        qc, specs, tree = _tree()
        child = next(
            i
            for i, f in enumerate(tree.fragments)
            if f.in_group is not None and f.num_prep
        )
        plan = FaultPlan(
            seed=0, dead=(DeadVariantFamily(child, "Z", 0, side="prep"),)
        )
        with pytest.raises(RetryExhaustedError):
            cut_and_run_tree(
                qc,
                FaultInjectionBackend(IdealBackend(), plan),
                specs,
                shots=200,
                seed=21,
                retry=RetryPolicy(max_attempts=2),
                on_exhausted="degrade",
            )

    def test_degrade_requires_retry_policy(self):
        from repro.exceptions import CutError

        _, _, tree = _tree()
        with pytest.raises(CutError):
            run_tree_fragments(
                tree, IdealBackend(), shots=100, seed=0, on_exhausted="degrade"
            )


class TestCheckpoint:
    def test_signature_pins_tree_and_shots(self):
        _, _, tree = _tree()
        assert tree_run_signature(tree, 400) == tree_run_signature(tree, 400)
        assert tree_run_signature(tree, 400) != tree_run_signature(tree, 500)

    def test_manifest_mismatch_raises(self, tmp_path):
        _, _, tree = _tree()
        TreeCheckpoint(tmp_path / "ck", tree, 400)
        with pytest.raises(ReconstructionError):
            TreeCheckpoint(tmp_path / "ck", tree, 500)

    def test_variant_plan_mismatch_raises(self, tmp_path):
        _, _, tree = _tree()
        ck = TreeCheckpoint(tmp_path / "ck", tree, 100)
        combos = [((), ("X",)), ((), ("Y",))]
        ck.save_fragment(0, {combos[0]: np.zeros((2, 2))})
        with pytest.raises(ReconstructionError):
            ck.load_fragment(0, combos)

    def test_save_load_roundtrip_with_dead(self, tmp_path):
        _, _, tree = _tree()
        ck = TreeCheckpoint(tmp_path / "ck", tree, 100)
        combos = [((), ("X",)), ((), ("Y",))]
        arr = np.arange(4.0).reshape(2, 2)
        ck.save_fragment(1, {combos[0]: arr}, dead=[combos[1]])
        records, dead = ck.load_fragment(1, combos)
        np.testing.assert_array_equal(records[combos[0]], arr)
        assert dead == [combos[1]]
        assert ck.completed_fragments() == [1]
        ck.clear()
        assert ck.completed_fragments() == []

    def test_resume_never_reexecutes(self, tmp_path):
        _, _, tree = _tree()
        ck = TreeCheckpoint(tmp_path / "ck", tree, 300)
        first = run_tree_fragments(
            tree, IdealBackend(), shots=300, seed=9, checkpoint=ck
        )
        # every fragment is checkpointed: a resume must not execute at all,
        # so even an always-failing backend completes bit-identically
        poisoned = FaultInjectionBackend(
            IdealBackend(), FaultPlan(seed=0, transient_rate=1.0)
        )
        resumed = run_tree_fragments(
            tree,
            poisoned,
            shots=300,
            seed=9,
            checkpoint=TreeCheckpoint(tmp_path / "ck", tree, 300),
        )
        _assert_identical_records(first, resumed)

    def test_partial_resume_is_bit_identical(self, tmp_path):
        _, _, tree = _tree()
        uninterrupted = run_tree_fragments(tree, IdealBackend(), shots=300, seed=9)
        ck = TreeCheckpoint(tmp_path / "ck", tree, 300)
        run_tree_fragments(tree, IdealBackend(), shots=300, seed=9, checkpoint=ck)
        # simulate an abort after fragment 0: drop later fragments
        for i in ck.completed_fragments():
            if i != 0:
                (ck.path / f"fragment_{i}.npz").unlink()
        resumed = run_tree_fragments(
            tree,
            IdealBackend(),
            shots=300,
            seed=9,
            checkpoint=TreeCheckpoint(tmp_path / "ck", tree, 300),
        )
        # skipped fragment 0 still burned its RNG stream, so re-executed
        # fragments sample exactly what the uninterrupted run did
        _assert_identical_records(uninterrupted, resumed)

    def test_pipeline_checkpoint_resume(self, tmp_path):
        qc, specs, tree = _tree()
        clean = cut_and_run_tree(
            qc,
            IdealBackend(),
            specs,
            shots=300,
            seed=7,
            checkpoint=TreeCheckpoint(tmp_path / "ck", tree, 300),
        )
        poisoned = FaultInjectionBackend(
            IdealBackend(), FaultPlan(seed=0, transient_rate=1.0)
        )
        resumed = cut_and_run_tree(
            qc,
            poisoned,
            specs,
            shots=300,
            seed=7,
            checkpoint=TreeCheckpoint(tmp_path / "ck", tree, 300),
        )
        np.testing.assert_array_equal(clean.probabilities, resumed.probabilities)


class TestProcessModeResilience:
    """Tentpole (ISSUE 10): the resilience contract crosses the process
    boundary — per-worker retry engines replay transient faults exactly as
    one shared engine would, graceful degradation survives pickling, and
    the merged ledgers agree with thread mode in canonical form."""

    PLAN = FaultPlan(seed=11, transient_rate=0.3, max_consecutive_transients=2)
    POLICY = RetryPolicy(max_attempts=4)

    def test_faulted_process_run_matches_clean_serial(self):
        from repro.backends import FaultyBackendFactory
        from repro.parallel import run_tree_fragments_parallel

        _, _, tree = _tree()
        clean = run_tree_fragments_parallel(
            tree, IdealBackend, shots=300, seed=7, mode="serial"
        )
        ledger = AttemptLedger()
        faulted = run_tree_fragments_parallel(
            tree,
            FaultyBackendFactory(IdealBackend, self.PLAN),
            shots=300,
            seed=7,
            max_workers=2,
            mode="process",
            retry=self.POLICY,
            ledger=ledger,
        )
        _assert_identical_records(clean, faulted)
        assert ledger.summary()["failures"] > 0

    def test_degradation_crosses_the_process_boundary(self):
        """A permanently dead variant family degrades identically in
        thread and process mode: same surviving records, same
        ``degraded_sites``, canonical-equal ledgers."""
        from repro.backends import FaultyBackendFactory
        from repro.parallel import run_tree_fragments_parallel

        _, _, tree = _tree()
        plan = FaultPlan(dead=(DeadVariantFamily(0, "Y", 0),))
        factory = FaultyBackendFactory(IdealBackend, plan)
        runs = {}
        ledgers = {}
        for mode in ("thread", "process"):
            ledgers[mode] = AttemptLedger()
            runs[mode] = run_tree_fragments_parallel(
                tree,
                factory,
                shots=200,
                seed=3,
                max_workers=2,
                mode=mode,
                retry=RetryPolicy(max_attempts=2),
                ledger=ledgers[mode],
                on_exhausted="degrade",
            )
        _assert_identical_records(runs["thread"], runs["process"])
        assert sorted(runs["thread"].metadata["degraded_sites"]) == sorted(
            runs["process"].metadata["degraded_sites"]
        )
        assert runs["process"].metadata["degraded_sites"]
        assert ledgers["thread"].canonical() == ledgers["process"].canonical()

    def test_worker_exception_arrives_typed(self):
        """An unretried transient raised inside a worker process reaches
        the parent as the same typed exception, site and attempt intact."""
        from repro.backends import FaultyBackendFactory
        from repro.parallel import run_tree_fragments_parallel

        _, _, tree = _tree()
        factory = FaultyBackendFactory(
            IdealBackend, FaultPlan(seed=1, transient_rate=1.0)
        )
        with pytest.raises(TransientBackendError) as info:
            run_tree_fragments_parallel(
                tree, factory, shots=100, seed=0, max_workers=2, mode="process"
            )
        assert info.value.site is not None
        assert info.value.attempt == 1
