"""Unit tests for the statevector simulator."""

import numpy as np
import pytest

from repro.circuits import Circuit, ghz_circuit, qft_circuit, random_circuit
from repro.exceptions import SimulationError
from repro.sim import Statevector, circuit_unitary, simulate_statevector


class TestInitialisation:
    def test_default_is_all_zeros(self):
        sv = Statevector(3)
        v = sv.vector()
        assert v[0] == 1.0 and np.allclose(v[1:], 0.0)

    def test_from_vector_roundtrip(self, rng):
        raw = rng.normal(size=8) + 1j * rng.normal(size=8)
        raw /= np.linalg.norm(raw)
        sv = Statevector.from_vector(raw)
        np.testing.assert_allclose(sv.vector(), raw)

    def test_bad_length(self):
        with pytest.raises(SimulationError):
            Statevector(2, np.zeros(3))

    def test_copy_independent(self):
        a = Statevector(2)
        b = a.copy()
        b.apply_matrix(np.array([[0, 1], [1, 0]], dtype=complex), (0,))
        assert a.vector()[0] == 1.0
        assert b.vector()[1] == 1.0


class TestGateApplication:
    def test_x_on_each_qubit(self):
        for q in range(4):
            qc = Circuit(4).x(q)
            probs = simulate_statevector(qc).probabilities()
            assert probs[1 << q] == 1.0

    def test_h_superposition(self):
        probs = simulate_statevector(Circuit(1).h(0)).probabilities()
        np.testing.assert_allclose(probs, [0.5, 0.5])

    def test_bell_state(self):
        probs = simulate_statevector(Circuit(2).h(0).cx(0, 1)).probabilities()
        np.testing.assert_allclose(probs, [0.5, 0, 0, 0.5], atol=1e-12)

    def test_ghz_endpoints(self):
        probs = simulate_statevector(ghz_circuit(4)).probabilities()
        assert np.isclose(probs[0], 0.5) and np.isclose(probs[15], 0.5)

    def test_cx_direction(self):
        # control=1 (unset) -> no flip
        probs = simulate_statevector(Circuit(2).x(0).cx(1, 0)).probabilities()
        assert probs[1] == 1.0

    def test_three_qubit_gate(self):
        qc = Circuit(3).x(0).x(1).ccx(0, 1, 2)
        probs = simulate_statevector(qc).probabilities()
        assert probs[7] == 1.0

    def test_width_mismatch(self):
        with pytest.raises(SimulationError):
            Statevector(2).apply_circuit(Circuit(3).h(0))

    def test_matches_unitary_column(self):
        qc = random_circuit(4, 5, seed=21)
        np.testing.assert_allclose(
            simulate_statevector(qc).vector(), circuit_unitary(qc)[:, 0], atol=1e-10
        )

    def test_norm_preserved(self):
        qc = random_circuit(5, 8, seed=4)
        assert np.isclose(simulate_statevector(qc).norm(), 1.0)


class TestQueries:
    def test_qft_uniform(self):
        probs = simulate_statevector(qft_circuit(4)).probabilities()
        np.testing.assert_allclose(probs, np.full(16, 1 / 16), atol=1e-12)

    def test_expectation_z(self):
        sv = simulate_statevector(Circuit(2).x(1))
        z = np.diag([1, -1]).astype(complex)
        assert np.isclose(sv.expectation(z, (1,)).real, -1.0)
        assert np.isclose(sv.expectation(z, (0,)).real, 1.0)

    def test_expectation_two_qubit(self):
        sv = simulate_statevector(Circuit(2).h(0).cx(0, 1))
        zz = np.diag([1, -1, -1, 1]).astype(complex)
        assert np.isclose(sv.expectation(zz, (0, 1)).real, 1.0)

    def test_is_real_for_real_circuit(self):
        from repro.circuits import random_real_circuit

        sv = simulate_statevector(random_real_circuit(3, 4, seed=1))
        assert sv.is_real()

    def test_is_real_detects_complex(self):
        sv = simulate_statevector(Circuit(2).h(0).s(0).cx(0, 1))
        assert not sv.is_real()

    def test_is_real_ignores_global_phase(self):
        sv = simulate_statevector(Circuit(1).h(0))
        sv._tensor = sv._tensor * np.exp(0.3j)
        assert sv.is_real()

    def test_project(self):
        sv = simulate_statevector(Circuit(2).h(0))
        p = sv.project(0, 0)
        assert np.isclose(p, 0.5)
        assert np.isclose(sv.probabilities()[0], 0.5)

    def test_project_renormalize(self):
        sv = simulate_statevector(Circuit(2).h(0).cx(0, 1))
        sv.project(0, 1, renormalize=True)
        probs = sv.probabilities()
        assert np.isclose(probs[3], 1.0)

    def test_project_zero_branch_raises(self):
        sv = Statevector(1)
        with pytest.raises(SimulationError):
            sv.project(0, 1, renormalize=True)

    def test_normalize_zero_raises(self):
        sv = Statevector(1)
        sv._tensor = np.zeros_like(sv._tensor)
        with pytest.raises(SimulationError):
            sv.normalize()
