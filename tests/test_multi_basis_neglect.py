"""Tests for neglecting *multiple* basis elements at one cut.

Beyond the paper's single-basis golden points: a cut qubit left in a
computational basis state is both X- and Y-golden (4 → 2 terms), and a cut
qubit in a product state with the rest of the fragment can have all three
Paulis negligible (the cut degenerates to its ``I`` marginal).
"""

import numpy as np
import pytest

from repro.backends import IdealBackend
from repro.circuits import Circuit
from repro.core import (
    cut_and_run,
    find_golden_bases_analytic,
    normalize_golden_map,
)
from repro.core.costs import cost_report
from repro.core.neglect import (
    reduced_bases,
    reduced_init_tuples,
    reduced_setting_tuples,
)
from repro.cutting import CutPoint, CutSpec, bipartition
from repro.cutting.execution import exact_fragment_data
from repro.cutting.reconstruction import reconstruct_distribution
from repro.exceptions import CutError
from repro.metrics import total_variation
from repro.sim import simulate_statevector


def _xy_golden_circuit():
    """Cut qubit stays |0⟩-diagonal upstream: X and Y are both golden."""
    qc = Circuit(3, name="xy_golden")
    qc.ry(0.9, 0)
    qc.cz(0, 1)        # diagonal coupling: wire 1 stays in a Z eigenstate
    qc.cx(1, 2).ry(0.4, 2).cx(1, 2)
    spec = CutSpec((CutPoint(1, 1),))
    return qc, spec


def _product_zero_circuit():
    """Cut qubit is |0⟩ and unentangled: X and Y golden, Z is not.

    (Z-golden would need ⟨Z⟩ = 0 conditioned on every output — i.e. a
    conditionally maximally-mixed cut qubit, impossible for a pure
    fragment whose other qubits are all measured.  |0⟩ has ⟨Z⟩ = +1.)
    """
    qc = Circuit(3, name="product_zero")
    qc.ry(1.1, 0)
    qc.id(1)
    qc.cx(1, 2).rx(0.7, 2)
    spec = CutSpec((CutPoint(1, 1),))
    return qc, spec


class TestNormalize:
    def test_string_and_sequence(self):
        assert normalize_golden_map(2, {0: "Y", 1: ("X", "Y")}) == {
            0: ("Y",),
            1: ("X", "Y"),
        }

    def test_dedupes(self):
        assert normalize_golden_map(1, {0: ("Y", "Y")}) == {0: ("Y",)}

    def test_rejects_invalid(self):
        with pytest.raises(CutError):
            normalize_golden_map(1, {0: ()})
        with pytest.raises(CutError):
            normalize_golden_map(1, {0: ("I",)})
        with pytest.raises(CutError):
            normalize_golden_map(1, {1: "Y"})


class TestReducedSets:
    def test_two_bases_dropped(self):
        golden = {0: ("X", "Y")}
        assert reduced_bases(1, golden) == [("I", "Z")]
        assert reduced_setting_tuples(1, golden) == [("Z",)]
        assert len(reduced_init_tuples(1, golden)) == 2  # Z+ Z-

    def test_all_bases_dropped_keeps_marginal_path(self):
        golden = {0: ("X", "Y", "Z")}
        assert reduced_bases(1, golden) == [("I",)]
        # one setting survives purely for the I-row marginal
        assert reduced_setting_tuples(1, golden) == [("Z",)]
        assert len(reduced_init_tuples(1, golden)) == 2

    def test_cost_report_multi(self):
        rep = cost_report(1, {0: ("X", "Y")}, shots_per_variant=1000)
        assert rep.reconstruction_rows == 2
        assert rep.num_variants == 1 + 2
        rep_all = cost_report(1, {0: ("X", "Y", "Z")})
        assert rep_all.reconstruction_rows == 1


class TestExactness:
    def test_xy_golden_detected(self):
        qc, spec = _xy_golden_circuit()
        pair = bipartition(qc, spec)
        found = find_golden_bases_analytic(pair)
        assert set(found[0]) >= {"X", "Y"}

    def test_xy_reduced_reconstruction_exact(self):
        qc, spec = _xy_golden_circuit()
        pair = bipartition(qc, spec)
        golden = {0: ("X", "Y")}
        data = exact_fragment_data(
            pair,
            settings=reduced_setting_tuples(1, golden),
            inits=reduced_init_tuples(1, golden),
        )
        p = reconstruct_distribution(
            data, bases=reduced_bases(1, golden), postprocess="raw"
        )
        truth = simulate_statevector(qc).probabilities()
        np.testing.assert_allclose(p, truth, atol=1e-9)

    def test_product_zero_cut_is_exactly_xy_golden(self):
        """The finder reports exactly {X, Y}: Z carries the population bit."""
        qc, spec = _product_zero_circuit()
        pair = bipartition(qc, spec)
        found = find_golden_bases_analytic(pair)
        assert set(found[0]) == {"X", "Y"}
        golden = {0: tuple(found[0])}
        data = exact_fragment_data(
            pair,
            settings=reduced_setting_tuples(1, golden),
            inits=reduced_init_tuples(1, golden),
        )
        p = reconstruct_distribution(
            data, bases=reduced_bases(1, golden), postprocess="raw"
        )
        truth = simulate_statevector(qc).probabilities()
        np.testing.assert_allclose(p, truth, atol=1e-9)


class TestPipelineExploitAll:
    def test_analytic_exploit_all(self):
        qc, spec = _xy_golden_circuit()
        truth = simulate_statevector(qc).probabilities()
        r = cut_and_run(
            qc, IdealBackend(), cuts=spec, shots=30_000,
            golden="analytic", exploit_all=True, seed=0,
        )
        assert set(r.golden_used[0]) >= {"X", "Y"}
        assert r.costs.num_variants <= 3
        assert total_variation(r.probabilities, truth) < 0.03

    def test_known_mode_accepts_tuples(self):
        qc, spec = _xy_golden_circuit()
        truth = simulate_statevector(qc).probabilities()
        r = cut_and_run(
            qc, IdealBackend(), cuts=spec, shots=30_000,
            golden="known", golden_map={0: ("X", "Y")}, seed=1,
        )
        assert r.costs.reconstruction_rows == 2
        assert total_variation(r.probabilities, truth) < 0.03

    def test_detect_exploit_all(self):
        qc, spec = _xy_golden_circuit()
        truth = simulate_statevector(qc).probabilities()
        r = cut_and_run(
            qc, IdealBackend(), cuts=spec, shots=30_000,
            golden="detect", exploit_all=True, pilot_shots=10_000, seed=2,
        )
        assert "X" in r.golden_used.get(0, ()) and "Y" in r.golden_used.get(0, ())
        assert total_variation(r.probabilities, truth) < 0.03

    def test_default_mode_still_single_basis(self):
        qc, spec = _xy_golden_circuit()
        r = cut_and_run(
            qc, IdealBackend(), cuts=spec, shots=5_000,
            golden="analytic", seed=3,
        )
        assert isinstance(r.golden_used[0], str)
