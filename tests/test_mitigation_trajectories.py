"""Tests for readout mitigation and the trajectory simulator."""

import numpy as np
import pytest

from repro.backends import FakeHardwareBackend, fake_5q_device
from repro.circuits import Circuit, ghz_circuit, random_circuit
from repro.exceptions import NoiseError, SimulationError
from repro.metrics import total_variation
from repro.noise import NoiseModel, ReadoutError, depolarizing, amplitude_damping
from repro.noise.mitigation import ReadoutMitigator, calibrate_readout
from repro.sim import simulate_statevector
from repro.sim.density import DensityMatrix
from repro.sim.trajectories import simulate_trajectory, trajectory_probabilities
from repro.transpile import CouplingMap


class TestMitigatorConstruction:
    def test_from_readout_errors(self):
        m = ReadoutMitigator.from_readout_errors(
            {0: ReadoutError(0.02, 0.05)}, num_qubits=2
        )
        assert 0 in m.inverses

    def test_rejects_singular(self):
        with pytest.raises(NoiseError):
            ReadoutMitigator.from_readout_errors(
                {0: ReadoutError(0.5, 0.5)}, num_qubits=1
            )

    def test_rejects_bad_shape(self):
        with pytest.raises(NoiseError):
            ReadoutMitigator({0: np.eye(3)}, 1)

    def test_rejects_out_of_range_qubit(self):
        with pytest.raises(NoiseError):
            ReadoutMitigator({5: np.eye(2)}, 2)

    def test_rejects_non_stochastic(self):
        with pytest.raises(NoiseError):
            ReadoutMitigator({0: np.array([[0.9, 0.3], [0.2, 0.7]])}, 1)


class TestMitigationAccuracy:
    def _noisy_readout_device(self, p01=0.04, p10=0.08):
        nm = NoiseModel()
        for q in range(3):
            nm.add_readout_error(q, ReadoutError(p01, p10))
        return FakeHardwareBackend(
            CouplingMap.linear(3), nm, name="readout_only"
        )

    def test_exact_inversion_recovers_truth(self):
        """With known matrices and exact distributions, recovery is exact."""
        from repro.noise.readout import apply_readout_error

        truth = simulate_statevector(ghz_circuit(3)).probabilities()
        errors = {q: ReadoutError(0.03, 0.07) for q in range(3)}
        corrupted = apply_readout_error(truth, errors, 3)
        mit = ReadoutMitigator.from_readout_errors(errors, 3)
        recovered = mit.apply(corrupted)
        np.testing.assert_allclose(recovered, truth, atol=1e-9)

    def test_mitigation_improves_device_distribution(self):
        dev = self._noisy_readout_device()
        truth = simulate_statevector(ghz_circuit(3)).probabilities()
        res = dev.run_one(ghz_circuit(3), shots=100_000, seed=1)
        raw = res.probabilities()
        errors = {q: ReadoutError(0.04, 0.08) for q in range(3)}
        mit = ReadoutMitigator.from_readout_errors(errors, 3)
        fixed = mit.apply(raw)
        assert total_variation(fixed, truth) < total_variation(raw, truth) / 2

    def test_calibration_learns_matrices(self):
        dev = self._noisy_readout_device(p01=0.05, p10=0.10)
        mit = calibrate_readout(dev, 3, shots=200_000, seed=3)
        for q in range(3):
            m = mit.matrices[q]
            assert m[1, 0] == pytest.approx(0.05, abs=0.01)  # p01
            assert m[0, 1] == pytest.approx(0.10, abs=0.01)  # p10

    def test_calibrated_mitigation_end_to_end(self):
        dev = self._noisy_readout_device()
        truth = simulate_statevector(ghz_circuit(3)).probabilities()
        mit = calibrate_readout(dev, 3, shots=100_000, seed=4)
        raw = dev.run_one(ghz_circuit(3), shots=100_000, seed=5).probabilities()
        fixed = mit.apply(raw)
        assert total_variation(fixed, truth) < total_variation(raw, truth)

    def test_projection_keeps_simplex(self):
        errors = {0: ReadoutError(0.3, 0.3)}
        mit = ReadoutMitigator.from_readout_errors(errors, 1)
        out = mit.apply(np.array([0.98, 0.02]))
        assert np.all(out >= -1e-12) and np.isclose(out.sum(), 1.0)

    def test_raw_mode_can_be_negative(self):
        errors = {0: ReadoutError(0.3, 0.3)}
        mit = ReadoutMitigator.from_readout_errors(errors, 1)
        out = mit.apply(np.array([0.98, 0.02]), project=False)
        assert out.min() < 0  # inversion overshoots without projection


class TestTrajectories:
    def test_noiseless_trajectory_matches_statevector(self):
        qc = random_circuit(3, 4, seed=9)
        probs = trajectory_probabilities(qc, NoiseModel(), seed=0)
        np.testing.assert_allclose(
            probs, simulate_statevector(qc).probabilities(), atol=1e-10
        )

    def test_converges_to_density_matrix(self):
        """The headline cross-check: two independent noisy engines agree."""
        qc = Circuit(2).h(0).cx(0, 1).ry(0.6, 1)
        nm = NoiseModel()
        nm.add_gate_noise(["h", "ry"], depolarizing(0.08))
        nm.add_gate_noise(["cx"], depolarizing(0.05))

        dm = DensityMatrix(2)
        for inst in qc:
            dm.apply_matrix(inst.gate.matrix(), inst.qubits)
            for ch, qs in nm.channels_for(inst.name, inst.qubits):
                dm.apply_channel(ch, qs)
        reference = dm.probabilities()

        est = trajectory_probabilities(qc, nm, num_trajectories=3000, seed=1)
        assert total_variation(est, reference) < 0.03

    def test_amplitude_damping_trajectories(self):
        """Non-unital channel: branch weights are state-dependent."""
        qc = Circuit(1).x(0)
        nm = NoiseModel().add_gate_noise(["x"], amplitude_damping(0.35))
        est = trajectory_probabilities(qc, nm, num_trajectories=4000, seed=2)
        np.testing.assert_allclose(est, [0.35, 0.65], atol=0.03)

    def test_single_trajectory_is_pure(self):
        qc = Circuit(2).h(0).cx(0, 1)
        nm = NoiseModel().add_gate_noise(["cx"], depolarizing(0.5))
        sv = simulate_trajectory(qc, nm, np.random.default_rng(3))
        assert np.isclose(sv.norm(), 1.0)

    def test_invalid_trajectory_count(self):
        with pytest.raises(SimulationError):
            trajectory_probabilities(Circuit(1).h(0), NoiseModel(), 0)

    def test_trivial_noise_uses_single_trajectory(self):
        qc = ghz_circuit(2)
        a = trajectory_probabilities(qc, NoiseModel(), num_trajectories=1, seed=4)
        b = trajectory_probabilities(qc, NoiseModel(), num_trajectories=500, seed=5)
        np.testing.assert_allclose(a, b, atol=1e-12)
